// Figure 13: effect of the number of negative samples.
//
// Reproduces the paper's Figure 13: HR@10 vs neg ∈ {4..64} under (q, C)
// settings. The paper observes a 'U'-shaped (inverted-U in accuracy)
// dependency peaking at neg = 16: too few negatives slow training (few
// weights update per step), too many inflate the gradient norm so clipping
// destroys the update.
//
// Usage: fig13_negative_samples [--scale=small|paper] [--full] [--seed=N]

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace plp::bench {
namespace {

void Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchOptions(argc, argv);
  const Workload workload = BuildWorkload(options);
  PrintBanner("Figure 13: effect of negative samples", options, workload);

  struct Setting {
    double q;
    double clip;
  };
  const std::vector<Setting> settings =
      options.full
          ? std::vector<Setting>{{0.06, 0.5}, {0.06, 0.3}, {0.10, 0.5},
                                 {0.10, 0.3}}
          : std::vector<Setting>{{0.06, 0.5}, {0.06, 0.3}};
  const std::vector<int64_t> negatives = {4, 8, 16, 32, 64};

  std::printf("eps=2 sigma=2.5 lambda=4, random floor HR@10=%.4f\n\n",
              RandomFloorHr10(workload, 50, options.seed));
  TablePrinter table({"q", "C", "neg", "steps", "HR@10"});
  for (const Setting& s : settings) {
    for (int64_t neg : negatives) {
      core::PlpConfig config = DefaultPlpConfig(options);
      config.sampling_probability = s.q;
      config.clip_norm = s.clip;
      config.sgns.negatives = static_cast<int32_t>(neg);
      const RunOutcome outcome =
          RunPrivate(config, workload, options.seed + 1);
      table.NewRow()
          .AddCell(s.q, 2)
          .AddCell(s.clip, 1)
          .AddCell(neg)
          .AddCell(outcome.steps)
          .AddCell(outcome.hit_rate_at_10);
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n\n");
  table.PrintAligned(std::cout);
  std::printf(
      "\nPaper shape: inverted-'U' accuracy with a maximum near neg=16 — "
      "too few negatives update too little per step, too many inflate the "
      "gradient norm and clipping obliterates the signal.\n");
}

}  // namespace
}  // namespace plp::bench

int main(int argc, char** argv) {
  plp::bench::Run(argc, argv);
  return 0;
}
