// Figure 8: PLP vs DP-SGD while varying the user sampling probability q.
//
// Reproduces the paper's Figure 8: HR@10 at a fixed budget ε = 2 as q grows
// from 4% to 12%. A higher q consumes budget faster (privacy amplification
// weakens), so fewer steps execute and accuracy drops; PLP degrades
// gracefully while DP-SGD drops sharply.
//
// Usage: fig08_sampling_ratio [--scale=small|paper] [--full] [--seed=N]
//                             [--eps=2] [--sigma=2.5]
//                             [--q=0.04,0.06,0.08,0.10,0.12]

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace plp::bench {
namespace {

void Run(int argc, char** argv) {
  auto flags = FlagParser::Parse(argc, argv);
  PLP_CHECK_OK(flags.status());
  const BenchOptions options = ParseBenchOptions(argc, argv);
  const Workload workload = BuildWorkload(options);
  PrintBanner("Figure 8: PLP vs DP-SGD, varying sampling ratio", options,
              workload);

  const double eps = flags->GetDouble("eps", 2.0);
  const double sigma = flags->GetDouble("sigma", 2.5);
  const std::vector<double> q_grid = flags->GetDoubleList(
      "q", options.full
               ? std::vector<double>{0.04, 0.06, 0.08, 0.10, 0.12}
               : std::vector<double>{0.04, 0.06, 0.10, 0.12});

  struct Method {
    const char* name;
    int32_t lambda;
    bool single_gradient;
  };
  // DP-SGD is the baseline of Section 5.2: per-user single clipped
  // gradients (no grouping, no local optimization).
  const std::vector<Method> methods = {{"PLP(l=6)", 6, false},
                                       {"PLP(l=4)", 4, false},
                                       {"DP-SGD", 1, true}};

  std::printf("eps=%.1f sigma=%.2f, random floor HR@10=%.4f\n\n", eps,
              sigma, RandomFloorHr10(workload, 50, options.seed));
  TablePrinter table({"q", "method", "steps", "HR@10"});
  for (double q : q_grid) {
    for (const Method& method : methods) {
      core::PlpConfig config = DefaultPlpConfig(options);
      config.sampling_probability = q;
      config.noise_scale = sigma;
      config.epsilon_budget = eps;
      config.grouping_factor = method.lambda;
      if (method.single_gradient) {
        config.local_update = core::LocalUpdateMode::kSingleGradient;
      }
      const RunOutcome outcome = RunAndEvaluate(
          StageConfig::Private(config), workload, options.seed + 1);
      table.NewRow()
          .AddCell(q, 2)
          .AddCell(std::string(method.name))
          .AddCell(outcome.steps)
          .AddCell(outcome.hit_rate_at_10);
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n\n");
  table.PrintAligned(std::cout);
  std::printf(
      "\nPaper shape: fewer steps (hence lower HR@10) as q grows; PLP "
      "degrades gracefully, DP-SGD drops sharply; larger lambda is better "
      "except at the smallest q.\n");
}

}  // namespace
}  // namespace plp::bench

int main(int argc, char** argv) {
  plp::bench::Run(argc, argv);
  return 0;
}
