// Ablation A1 (Section 4.2, Case 2): splitting a user's data across
// ω buckets.
//
// The paper argues ω = 2 is harmful: a user can then influence two bucket
// gradients, the Gaussian sum query's sensitivity becomes ω·C, and the
// noise *variance* quadruples (∝ ω²) — which more than offsets the
// marginally improved per-bucket signal. ([21]'s evaluation split data
// without re-scaling noise, which silently weakens the guarantee.)
//
// Usage: ablation_split_factor [--scale=small|paper] [--seed=N]

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace plp::bench {
namespace {

void Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchOptions(argc, argv);
  const Workload workload = BuildWorkload(options);
  PrintBanner("Ablation A1: data split factor omega", options, workload);

  std::printf("eps=2 sigma=2.5 lambda=4, random floor HR@10=%.4f\n\n",
              RandomFloorHr10(workload, 50, options.seed));
  TablePrinter table(
      {"omega", "noise_stddev_multiplier", "steps", "HR@10"});
  for (int32_t omega : {1, 2, 3}) {
    // Stage selection by config: the ω bound lives in the Grouper stage;
    // the NoisyAggregator rescales its noise to the ω·C sensitivity.
    core::PlpConfig config = DefaultPlpConfig(options);
    config.split_factor = omega;
    const RunOutcome outcome = RunAndEvaluate(
        StageConfig::Private(config), workload, options.seed + 1);
    table.NewRow()
        .AddCell(static_cast<int64_t>(omega))
        .AddCell(config.noise_scale * omega * config.clip_norm, 3)
        .AddCell(outcome.steps)
        .AddCell(outcome.hit_rate_at_10);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n");
  table.PrintAligned(std::cout);
  std::printf(
      "\nPaper claim: omega=1 is best; omega=2 quadruples noise variance "
      "and hurts accuracy (Section 4.2).\n");
}

}  // namespace
}  // namespace plp::bench

int main(int argc, char** argv) {
  plp::bench::Run(argc, argv);
  return 0;
}
