// Ablation A1 (Section 4.2, Case 2): splitting a user's data across
// ω buckets.
//
// The paper argues ω = 2 is harmful: a user can then influence two bucket
// gradients, the Gaussian sum query's sensitivity becomes ω·C, and the
// noise *variance* quadruples (∝ ω²) — which more than offsets the
// marginally improved per-bucket signal. ([21]'s evaluation split data
// without re-scaling noise, which silently weakens the guarantee.)
//
// Usage: ablation_split_factor [--scale=small|paper] [--seed=N]

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/check.h"
#include "common/table_printer.h"
#include "pipeline/standard_stages.h"

namespace plp::bench {
namespace {

void Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchOptions(argc, argv);
  const Workload workload = BuildWorkload(options);
  PrintBanner("Ablation A1: data split factor omega", options, workload);

  std::printf("eps=2 sigma=2.5 lambda=4, random floor HR@10=%.4f\n\n",
              RandomFloorHr10(workload, 50, options.seed));
  TablePrinter table({"omega", "noise_stddev_multiplier", "steps", "HR@10",
                      "eps_classic", "eps_mog"});
  for (int32_t omega : {1, 2, 3}) {
    // Stage selection by config: the ω bound lives in the Grouper stage;
    // the NoisyAggregator rescales its noise to the ω·C sensitivity.
    core::PlpConfig config = DefaultPlpConfig(options);
    config.split_factor = omega;
    const RunOutcome outcome = RunAndEvaluate(
        StageConfig::Private(config), workload, options.seed + 1);

    // The group-level MoG accountant's ε for the same rounds: the user's
    // ω bucket parts enter as one atom of sensitivity ω·C (participation
    // is all-or-nothing), and the exact dominating-pair PLD of that law
    // is strictly tighter than the classic RDP bound at every ω.
    double eps_mog = 0.0;
    if (outcome.steps > 0) {
      core::PlpConfig mog_config = config;
      mog_config.accountant = "mog";
      auto mog = pipeline::MakeAccountant(mog_config);
      pipeline::RoundRecord first;
      first.step = 1;
      first.scheme = mog_config.sampling_scheme;
      first.sampling_ratio = mog_config.sampling_probability;
      first.population = workload.corpus->NumUsers();
      if (first.scheme == core::SamplingScheme::kFixedBatch) {
        first.batch_size =
            core::FixedBatchSize(workload.corpus->NumUsers(),
                                 mog_config.sampling_probability);
      }
      first.noise_multiplier = core::EffectiveNoiseMultiplier(mog_config, 1);
      first.split_factor = omega;
      auto mog_decision = mog->TrackRounds(first, outcome.steps);
      PLP_CHECK_OK(mog_decision.status());
      eps_mog = mog_decision->epsilon_after;
    }

    table.NewRow()
        .AddCell(static_cast<int64_t>(omega))
        .AddCell(config.noise_scale * omega * config.clip_norm, 3)
        .AddCell(outcome.steps)
        .AddCell(outcome.hit_rate_at_10)
        .AddCell(outcome.epsilon_spent)
        .AddCell(eps_mog);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n");
  table.PrintAligned(std::cout);
  std::printf(
      "\nPaper claim: omega=1 is best; omega=2 quadruples noise variance "
      "and hurts accuracy (Section 4.2). The eps_mog column shows the "
      "group-level Mixture-of-Gaussians accountant certifying the same "
      "rounds at or below the classic eps_classic spend — splitting is "
      "still harmful, but less of the harm is accounting slack.\n");
}

}  // namespace
}  // namespace plp::bench

int main(int argc, char** argv) {
  plp::bench::Run(argc, argv);
  return 0;
}
