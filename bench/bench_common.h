#ifndef PLP_BENCH_BENCH_COMMON_H_
#define PLP_BENCH_BENCH_COMMON_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "core/nonprivate_trainer.h"
#include "core/plp_trainer.h"
#include "data/corpus.h"
#include "data/dataset.h"
#include "eval/hit_rate.h"

namespace plp::bench {

/// Shared options of every figure bench.
///
/// --scale=small (default) runs a down-scaled synthetic city (~2.3k users,
/// 600 POIs) whose sweeps finish in minutes on one core; --scale=paper
/// clones the paper's dataset dimensions (4602 users, 5069 POIs, ~740k
/// check-ins) and hours-long budgets; --scale=large streams a synthetic
/// corpus to an on-disk PLPD store (--users/--locations, default 100k ×
/// 20k) and trains through the mmap-backed view, so the working set never
/// includes the whole corpus. --corpus_dir pins where the large corpus
/// lives (a pre-generated directory is reused; default is a
/// seed-stamped directory under the system temp dir). --full widens the
/// parameter grids to the paper's complete figure grids; --seed controls
/// all randomness; --max_steps caps every training run (steps when
/// private, epochs when not) so CI can smoke each bench in seconds
/// without a forked code path.
struct BenchOptions {
  std::string scale = "small";
  bool full = false;
  uint64_t seed = 42;
  int64_t max_steps = 0;  ///< 0 = the bench's own budget/epoch bounds

  /// Accountant / sampling-scheme overrides applied by DefaultPlpConfig
  /// (empty = keep the config defaults). Lets CI smoke any bench under
  /// --accountant=mog / --sampling_scheme=fixed_batch without a forked
  /// code path; invalid names or pairings abort with the same message
  /// PlpConfig::Validate would produce.
  std::string accountant;
  std::string sampling_scheme;

  // --scale=large knobs.
  std::string corpus_dir;       ///< empty = seed-stamped temp directory
  int32_t users = 100000;       ///< generated users at large scale
  int32_t locations = 20000;    ///< configured POIs at large scale
};

/// Parses the shared flags; aborts on an unknown scale.
BenchOptions ParseBenchOptions(int argc, char** argv);

/// The evaluation workload every figure uses: a training corpus plus
/// user-disjoint validation and test users (100 each, as in Section 5.1),
/// with leave-one-out examples prepared.
///
/// `corpus` is the polymorphic handle every bench trains through: the
/// in-RAM TrainingCorpus at small/paper scale, a zero-copy
/// store::MmapCorpus over the on-disk PLPD directory at large scale (the
/// last 200 store users are held out for evaluation there).
struct Workload {
  data::CheckInDataset train;  ///< empty at --scale=large
  std::shared_ptr<const data::CorpusView> corpus;
  std::vector<eval::EvalExample> validation;
  std::vector<eval::EvalExample> test;
};

/// Builds the workload for the chosen scale (deterministic per seed).
Workload BuildWorkload(const BenchOptions& options);

/// The PLP configuration used as the sweep baseline. Matches the paper's
/// defaults (q=0.06, σ=2.5, C=0.5, λ=4, δ=2e-4, dim=50, win=2, neg=16,
/// b=32); at small scale the server Adam learning rate is 0.03 — inside
/// the paper's tested range [0.02, 0.07] — which compensates for the
/// smaller expected bucket count of the down-scaled city. Applies
/// `options.max_steps` when set.
core::PlpConfig DefaultPlpConfig(const BenchOptions& options);

/// What a bench varies: a pipeline stage configuration, named by the
/// trainer facade that owns it plus that facade's config. Benches describe
/// WHAT to train; the single train→eval loop lives in RunAndEvaluate, so a
/// sweep cell differs from its neighbors only in config fields — never in
/// loop code.
struct StageConfig {
  static StageConfig Private(core::PlpConfig config);
  static StageConfig NonPrivate(core::NonPrivateConfig config);

  bool is_private = true;
  core::PlpConfig plp;                ///< used when is_private
  core::NonPrivateConfig nonprivate;  ///< used when !is_private

  /// > 0: record an EvalPoint every N steps (private) / epochs
  /// (non-private), plus one at the final index.
  int64_t eval_every = 0;
  /// false: skip hit-rate evaluation entirely (timing-only runs).
  bool evaluate = true;
};

/// One periodic evaluation snapshot (eval_every > 0).
struct EvalPoint {
  int64_t index = 0;       ///< step (private) or epoch (non-private)
  double mean_loss = 0.0;  ///< that round's mean local loss
  std::array<double, 3> validation_hr{};  ///< HR@{5,10,20}, validation users
  std::array<double, 3> test_hr{};        ///< HR@{5,10,20}, test users
};

/// Result of one train→eval run. Deterministic per (config, seed).
struct RunOutcome {
  double hit_rate_at_10 = 0.0;            ///< = validation_hr[1]
  std::array<double, 3> validation_hr{};  ///< final HR@{5,10,20}
  int64_t steps = 0;  ///< steps executed (private) / epochs (non-private)
  double epsilon_spent = 0.0;  ///< 0 for non-private runs
  double wall_seconds = 0.0;   ///< training time (evaluation excluded)
  sgns::SgnsModel model;       ///< for bench-specific extra evaluation
  std::vector<EvalPoint> trajectory;  ///< empty unless eval_every > 0
};

/// THE shared train→eval loop: trains `config` through the pipeline engine
/// (via its trainer facade) and evaluates the result on the workload's
/// validation users.
RunOutcome RunAndEvaluate(const StageConfig& config, const Workload& workload,
                          uint64_t seed);

/// Shorthand for RunAndEvaluate(StageConfig::Private(config), ...).
RunOutcome RunPrivate(const core::PlpConfig& config,
                      const Workload& workload, uint64_t seed);

/// HR@10 of an untrained (random-embedding) model — the floor every DP
/// curve should be compared against.
double RandomFloorHr10(const Workload& workload, int32_t embedding_dim,
                       uint64_t seed);

/// HR@k of a trained model on a prepared example set.
double EvalHr(const sgns::SgnsModel& model,
              const std::vector<eval::EvalExample>& examples, int32_t k);

/// Prints the standard bench banner (figure id, scale, workload shape).
void PrintBanner(const std::string& figure, const BenchOptions& options,
                 const Workload& workload);

}  // namespace plp::bench

#endif  // PLP_BENCH_BENCH_COMMON_H_
