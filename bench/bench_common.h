#ifndef PLP_BENCH_BENCH_COMMON_H_
#define PLP_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/flags.h"
#include "core/plp_trainer.h"
#include "data/corpus.h"
#include "data/dataset.h"
#include "eval/hit_rate.h"

namespace plp::bench {

/// Shared options of every figure bench.
///
/// --scale=small (default) runs a down-scaled synthetic city (~2.3k users,
/// 600 POIs) whose sweeps finish in minutes on one core; --scale=paper
/// clones the paper's dataset dimensions (4602 users, 5069 POIs, ~740k
/// check-ins) and hours-long budgets. --full widens the parameter grids to
/// the paper's complete figure grids; --seed controls all randomness.
struct BenchOptions {
  std::string scale = "small";
  bool full = false;
  uint64_t seed = 42;
};

/// Parses the shared flags; aborts on an unknown scale.
BenchOptions ParseBenchOptions(int argc, char** argv);

/// The evaluation workload every figure uses: a filtered training set plus
/// user-disjoint validation and test users (100 each, as in Section 5.1),
/// with leave-one-out examples prepared.
struct Workload {
  data::CheckInDataset train;
  data::TrainingCorpus corpus;
  std::vector<eval::EvalExample> validation;
  std::vector<eval::EvalExample> test;
};

/// Builds the workload for the chosen scale (deterministic per seed).
Workload BuildWorkload(const BenchOptions& options);

/// The PLP configuration used as the sweep baseline. Matches the paper's
/// defaults (q=0.06, σ=2.5, C=0.5, λ=4, δ=2e-4, dim=50, win=2, neg=16,
/// b=32); at small scale the server Adam learning rate is 0.03 — inside
/// the paper's tested range [0.02, 0.07] — which compensates for the
/// smaller expected bucket count of the down-scaled city.
core::PlpConfig DefaultPlpConfig(const BenchOptions& options);

/// Trains with `config` and returns {HR@10 on the validation users, the
/// train result}. Deterministic per (config, seed).
struct RunOutcome {
  double hit_rate_at_10 = 0.0;
  int64_t steps = 0;
  double epsilon_spent = 0.0;
  double wall_seconds = 0.0;
};
RunOutcome RunPrivate(const core::PlpConfig& config,
                      const Workload& workload, uint64_t seed);

/// HR@10 of an untrained (random-embedding) model — the floor every DP
/// curve should be compared against.
double RandomFloorHr10(const Workload& workload, int32_t embedding_dim,
                       uint64_t seed);

/// HR@k of a trained model on a prepared example set.
double EvalHr(const sgns::SgnsModel& model,
              const std::vector<eval::EvalExample>& examples, int32_t k);

/// Prints the standard bench banner (figure id, scale, workload shape).
void PrintBanner(const std::string& figure, const BenchOptions& options,
                 const Workload& workload);

}  // namespace plp::bench

#endif  // PLP_BENCH_BENCH_COMMON_H_
