// Ablation A4 (Section 3.2): sampled softmax (uniform candidates) vs the
// classic SGNS logistic loss.
//
// The paper chooses a sampled softmax with a *uniform* candidate
// distribution because estimating the location frequency distribution from
// user data would itself leak privacy. This bench compares the two loss
// functions under identical DP training budgets, plus the non-private
// reference for each.
//
// Usage: ablation_loss [--scale=small|paper] [--seed=N]

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "core/nonprivate_trainer.h"

namespace plp::bench {
namespace {

const char* Name(sgns::LossKind loss) {
  return loss == sgns::LossKind::kSampledSoftmax ? "sampled_softmax"
                                                 : "sgns_logistic";
}

void Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchOptions(argc, argv);
  const Workload workload = BuildWorkload(options);
  PrintBanner("Ablation A4: sampled softmax vs SGNS logistic loss", options,
              workload);

  TablePrinter table({"loss", "setting", "steps_or_epochs", "HR@10"});
  for (sgns::LossKind loss :
       {sgns::LossKind::kSampledSoftmax, sgns::LossKind::kSgnsLogistic}) {
    // Stage selection by config: the loss parameterizes the LocalUpdater
    // of whichever stage set (private or non-private) is being run — the
    // engine and train→eval loop are identical across all four cells.
    {
      core::NonPrivateConfig config;
      config.sgns.loss = loss;
      config.epochs = options.scale == "paper" ? 50 : 8;
      if (options.max_steps > 0) {
        config.epochs = std::min(config.epochs, options.max_steps);
      }
      const RunOutcome outcome = RunAndEvaluate(
          StageConfig::NonPrivate(config), workload, options.seed + 1);
      table.NewRow()
          .AddCell(std::string(Name(loss)))
          .AddCell("non-private")
          .AddCell(config.epochs)
          .AddCell(outcome.hit_rate_at_10);
      std::printf(".");
      std::fflush(stdout);
    }
    {
      core::PlpConfig config = DefaultPlpConfig(options);
      config.sgns.loss = loss;
      const RunOutcome outcome = RunAndEvaluate(
          StageConfig::Private(config), workload, options.seed + 1);
      table.NewRow()
          .AddCell(std::string(Name(loss)))
          .AddCell("private eps=2")
          .AddCell(outcome.steps)
          .AddCell(outcome.hit_rate_at_10);
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n\n");
  table.PrintAligned(std::cout);
  std::printf(
      "\nClaim: both losses train; the uniform sampled softmax is the "
      "privacy-safe choice (no frequency estimation) at comparable "
      "accuracy.\n");
}

}  // namespace
}  // namespace plp::bench

int main(int argc, char** argv) {
  plp::bench::Run(argc, argv);
  return 0;
}
