// Figure 7: PLP vs DP-SGD while varying the privacy budget ε.
//
// Reproduces the paper's Figure 7: HR@10 of PLP (λ = 6, λ = 4) and the
// user-level DP-SGD baseline as ε grows, at σ fixed and q ∈ {0.06, 0.10}.
// Expected shape: every method improves with more budget; PLP dominates
// DP-SGD; larger λ helps.
//
// The paper runs σ = 1.5; at --scale=small the down-scaled city needs more
// steps to learn, so the default is σ = 2.5 there (σ = 1.5 at
// --scale=paper or via --sigma).
//
// Usage: fig07_privacy_budget [--scale=small|paper] [--full] [--seed=N]
//                             [--sigma=S] [--eps=0.5,1,2,3]

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace plp::bench {
namespace {

void Run(int argc, char** argv) {
  auto flags = FlagParser::Parse(argc, argv);
  PLP_CHECK_OK(flags.status());
  const BenchOptions options = ParseBenchOptions(argc, argv);
  const Workload workload = BuildWorkload(options);
  PrintBanner("Figure 7: PLP vs DP-SGD, varying privacy budget", options,
              workload);

  const double sigma =
      flags->GetDouble("sigma", options.scale == "paper" ? 1.5 : 2.5);
  const std::vector<double> eps_grid = flags->GetDoubleList(
      "eps", options.full ? std::vector<double>{0.5, 1, 2, 3, 4}
                          : std::vector<double>{0.5, 1, 2, 3});
  const std::vector<double> q_grid =
      options.full ? std::vector<double>{0.06, 0.10}
                   : std::vector<double>{0.06};

  struct Method {
    const char* name;
    int32_t lambda;
    bool single_gradient;
  };
  // DP-SGD is the baseline of Section 5.2: per-user single clipped
  // gradients (no grouping, no local optimization).
  const std::vector<Method> methods = {{"PLP(l=6)", 6, false},
                                       {"PLP(l=4)", 4, false},
                                       {"DP-SGD", 1, true}};

  std::printf("sigma=%.2f, random floor HR@10=%.4f\n\n", sigma,
              RandomFloorHr10(workload, 50, options.seed));
  TablePrinter table({"q", "eps", "method", "steps", "eps_spent", "HR@10"});
  for (double q : q_grid) {
    for (double eps : eps_grid) {
      for (const Method& method : methods) {
        core::PlpConfig config = DefaultPlpConfig(options);
        config.sampling_probability = q;
        config.noise_scale = sigma;
        config.epsilon_budget = eps;
        config.grouping_factor = method.lambda;
        if (method.single_gradient) {
          config.local_update = core::LocalUpdateMode::kSingleGradient;
        }
        const RunOutcome outcome = RunAndEvaluate(
            StageConfig::Private(config), workload, options.seed + 1);
        table.NewRow()
            .AddCell(q, 2)
            .AddCell(eps, 1)
            .AddCell(std::string(method.name))
            .AddCell(outcome.steps)
            .AddCell(outcome.epsilon_spent, 3)
            .AddCell(outcome.hit_rate_at_10);
        std::printf(".");
        std::fflush(stdout);
      }
    }
  }
  std::printf("\n\n");
  table.PrintAligned(std::cout);
  std::printf(
      "\nPaper shape: accuracy grows with eps for all methods; "
      "PLP(l=6) >= PLP(l=4) > DP-SGD at every budget.\n");
}

}  // namespace
}  // namespace plp::bench

int main(int argc, char** argv) {
  plp::bench::Run(argc, argv);
  return 0;
}
