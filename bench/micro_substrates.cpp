// Micro-benchmarks of the hot substrates (google-benchmark): RNG draws,
// RowMap vs std::unordered_map, skip-gram batch gradients, the local
// overlay vs dense model copy, subsampled-Gaussian RDP evaluation, and the
// synthetic generator.

#include <unordered_map>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "data/synthetic_generator.h"
#include "privacy/rdp_accountant.h"
#include "sgns/local_model.h"
#include "sgns/loss.h"
#include "sgns/model.h"
#include "sgns/pairs.h"
#include "sgns/row_map.h"

namespace plp {
namespace {

void BM_RngGaussian(benchmark::State& state) {
  Rng rng(1);
  double sink = 0.0;
  for (auto _ : state) sink += rng.Gaussian();
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngGaussian);

void BM_RngUniformInt(benchmark::State& state) {
  Rng rng(1);
  uint64_t sink = 0;
  for (auto _ : state) sink += rng.UniformInt(uint64_t{5069});
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngUniformInt);

// The libm exp/sigmoid calls the bounded LUTs replaced on the SGNS hot
// path, benchmarked against the tables over the same argument stream.
void BM_SigmoidLibm(benchmark::State& state) {
  Rng rng(11);
  double sink = 0.0;
  for (auto _ : state) {
    sink += SigmoidReference(rng.Uniform(-10.0, 10.0));
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_SigmoidLibm);

void BM_SigmoidLut(benchmark::State& state) {
  Rng rng(11);
  const SigmoidLut& lut = SigmoidLut::Get();
  double sink = 0.0;
  for (auto _ : state) sink += lut(rng.Uniform(-10.0, 10.0));
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_SigmoidLut);

void BM_ExpNegLibm(benchmark::State& state) {
  Rng rng(12);
  double sink = 0.0;
  for (auto _ : state) sink += ExpNegReference(rng.Uniform(-20.0, 0.0));
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ExpNegLibm);

void BM_ExpNegLut(benchmark::State& state) {
  Rng rng(12);
  const ExpNegLut& lut = ExpNegLut::Get();
  double sink = 0.0;
  for (auto _ : state) sink += lut(rng.Uniform(-20.0, 0.0));
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ExpNegLut);

void BM_DotKernel(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(14);
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.Uniform(-1.0, 1.0);
    b[i] = rng.Uniform(-1.0, 1.0);
  }
  double sink = 0.0;
  for (auto _ : state) sink += DotKernel(a.data(), b.data(), n);
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_DotKernel)->Arg(50)->Arg(512);

void BM_DotKernelPortable(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(14);
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.Uniform(-1.0, 1.0);
    b[i] = rng.Uniform(-1.0, 1.0);
  }
  double sink = 0.0;
  for (auto _ : state) sink += DotKernelPortable(a.data(), b.data(), n);
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_DotKernelPortable)->Arg(50)->Arg(512);

// Quantized serving-scan kernels: one fp16/int8 snapshot row against a
// float32 profile. Dispatched (F16C/AVX2 when present) vs portable, same
// lengths as the float kernels so the per-element costs line up.
void BM_DotF16Kernel(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(14);
  std::vector<uint16_t> a(n);
  std::vector<float> b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = FloatToHalf(static_cast<float>(rng.Uniform(-1.0, 1.0)));
    b[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  // DoNotOptimize inside the loop: these kernels are inline header
  // functions, and a sink consumed only after the loop lets the compiler
  // hoist the whole call out of it (measured: a bogus ~2 ns flatline).
  for (auto _ : state) {
    float sink = DotF16Kernel(a.data(), b.data(), n);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_DotF16Kernel)->Arg(50)->Arg(512);

void BM_DotF16KernelPortable(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(14);
  std::vector<uint16_t> a(n);
  std::vector<float> b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = FloatToHalf(static_cast<float>(rng.Uniform(-1.0, 1.0)));
    b[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  // DoNotOptimize inside the loop: these kernels are inline header
  // functions, and a sink consumed only after the loop lets the compiler
  // hoist the whole call out of it (measured: a bogus ~2 ns flatline).
  for (auto _ : state) {
    float sink = DotF16KernelPortable(a.data(), b.data(), n);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_DotF16KernelPortable)->Arg(50)->Arg(512);

void BM_DotI8Kernel(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(14);
  std::vector<int8_t> a(n);
  std::vector<float> b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int8_t>(rng.UniformInt(-127, 127));
    b[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  // DoNotOptimize inside the loop: these kernels are inline header
  // functions, and a sink consumed only after the loop lets the compiler
  // hoist the whole call out of it (measured: a bogus ~2 ns flatline).
  for (auto _ : state) {
    float sink = DotI8Kernel(a.data(), b.data(), n);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_DotI8Kernel)->Arg(50)->Arg(512);

void BM_DotI8KernelPortable(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(14);
  std::vector<int8_t> a(n);
  std::vector<float> b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int8_t>(rng.UniformInt(-127, 127));
    b[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  // DoNotOptimize inside the loop: these kernels are inline header
  // functions, and a sink consumed only after the loop lets the compiler
  // hoist the whole call out of it (measured: a bogus ~2 ns flatline).
  for (auto _ : state) {
    float sink = DotI8KernelPortable(a.data(), b.data(), n);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_DotI8KernelPortable)->Arg(50)->Arg(512);

void BM_AxpyKernel(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(15);
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-1.0, 1.0);
    y[i] = rng.Uniform(-1.0, 1.0);
  }
  for (auto _ : state) {
    AxpyKernel(1e-9, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_AxpyKernel)->Arg(50)->Arg(512);

void BM_SubKernel(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(13);
  std::vector<double> a(n), b(n), out(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.Uniform(-1.0, 1.0);
    b[i] = rng.Uniform(-1.0, 1.0);
  }
  for (auto _ : state) {
    SubKernel(a.data(), b.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_SubKernel)->Arg(50)->Arg(512);

void BM_RowMapAccumulate(benchmark::State& state) {
  const int64_t keys = state.range(0);
  Rng rng(2);
  sgns::RowMap map(50);
  for (auto _ : state) {
    const int32_t key =
        static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(keys)));
    map.FindOrInsertZero(key)[0] += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RowMapAccumulate)->Arg(64)->Arg(1024)->Arg(8192);

void BM_UnorderedMapAccumulate(benchmark::State& state) {
  const int64_t keys = state.range(0);
  Rng rng(2);
  std::unordered_map<int32_t, std::vector<double>> map;
  for (auto _ : state) {
    const int32_t key =
        static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(keys)));
    auto [it, inserted] = map.try_emplace(key);
    if (inserted) it->second.assign(50, 0.0);
    it->second[0] += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnorderedMapAccumulate)->Arg(64)->Arg(1024)->Arg(8192);

sgns::SgnsModel BenchModel(int32_t locations) {
  Rng rng(3);
  sgns::SgnsConfig config;
  auto model = sgns::SgnsModel::Create(locations, config, rng);
  return std::move(model).value();
}

void BM_SgnsBatchGradient(benchmark::State& state) {
  const int32_t locations = 5069;
  const sgns::SgnsModel model = BenchModel(locations);
  sgns::SgnsConfig config;
  Rng rng(4);
  std::vector<sgns::Pair> batch;
  for (int i = 0; i < 32; ++i) {
    batch.push_back(sgns::Pair{
        static_cast<int32_t>(rng.UniformInt(uint64_t{5069})),
        static_cast<int32_t>(rng.UniformInt(uint64_t{5069}))});
  }
  for (auto _ : state) {
    sgns::SparseDelta gradient(config.embedding_dim);
    benchmark::DoNotOptimize(sgns::AccumulateBatchGradient(
        model, batch, config, locations, rng, gradient));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_SgnsBatchGradient);

void BM_LocalOverlayTouch(benchmark::State& state) {
  const sgns::SgnsModel model = BenchModel(5069);
  Rng rng(5);
  for (auto _ : state) {
    sgns::LocalModel local(model);
    for (int i = 0; i < 256; ++i) {
      local.MutableInRow(
          static_cast<int32_t>(rng.UniformInt(uint64_t{5069})))[0] += 0.1;
    }
    benchmark::DoNotOptimize(local.ExtractDelta());
  }
}
BENCHMARK(BM_LocalOverlayTouch);

void BM_DenseModelCopy(benchmark::State& state) {
  const sgns::SgnsModel model = BenchModel(5069);
  for (auto _ : state) {
    sgns::SgnsModel copy = model;  // the per-bucket cost of line 16
    benchmark::DoNotOptimize(copy.bias(0));
  }
}
BENCHMARK(BM_DenseModelCopy);

void BM_SubsampledGaussianRdpStep(benchmark::State& state) {
  privacy::RdpAccountant accountant;
  for (auto _ : state) {
    benchmark::DoNotOptimize(accountant.StepRdp(0.06, 2.5));
  }
}
BENCHMARK(BM_SubsampledGaussianRdpStep);

void BM_SyntheticGenerator(benchmark::State& state) {
  data::SyntheticConfig config = data::SmallSyntheticConfig();
  config.num_users = 200;
  config.num_locations = 200;
  for (auto _ : state) {
    Rng rng(6);
    auto dataset = data::GenerateSyntheticCheckIns(config, rng);
    benchmark::DoNotOptimize(dataset->num_checkins());
  }
}
BENCHMARK(BM_SyntheticGenerator);

}  // namespace
}  // namespace plp

BENCHMARK_MAIN();
