// serving_throughput — load generator for the plp::serve engine.
//
//   serving_throughput [--locations=600] [--dim=50] [--users=5000]
//                      [--requests=200000] [--k=10] [--batch=64]
//                      [--threads=4] [--swaps=20] [--seed=42]
//                      [--json=BENCH_serving.json]
//
// Three phases over a synthetic fixture model:
//   1. single  — one thread, synchronous Recommend in a tight loop (QPS
//                and latency quantiles of the bare scoring path);
//   2. batched — the same request stream pushed through RecommendBatch
//                micro-batches across the worker pool;
//   3. swap    — phase 1 traffic while a publisher hot-swaps alternating
//                snapshots; reports the worst Publish stall and the p99
//                under swap pressure.
//
// Results print as a table and are written as JSON (--json) so CI can
// archive BENCH_serving.json and trend the numbers across commits.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "serve/serving_engine.h"
#include "sgns/model.h"

namespace {

using plp::serve::Request;
using plp::serve::Response;

struct PhaseResult {
  double qps = 0.0;
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
};

plp::sgns::SgnsModel MakeFixtureModel(int32_t locations, int32_t dim,
                                      uint64_t seed) {
  plp::Rng rng(seed);
  plp::sgns::SgnsConfig config;
  config.embedding_dim = dim;
  config.init_scale = 1.0;  // well-spread rows, no training needed
  auto model = plp::sgns::SgnsModel::Create(locations, config, rng);
  PLP_CHECK_OK(model.status());
  return std::move(model).value();
}

Request RandomRequest(plp::Rng& rng, int64_t users, int32_t locations,
                      int32_t k) {
  Request request;
  request.user_id =
      static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(users)));
  request.new_checkin = static_cast<int32_t>(
      rng.UniformInt(static_cast<uint64_t>(locations)));
  request.k = k;
  return request;
}

/// Latency quantiles of the *delta* this phase added to the histogram are
/// not separable, so each phase uses a fresh engine-level histogram by
/// reading quantiles right after its run (phases run on separate engines).
PhaseResult QuantilesOf(const plp::serve::Metrics& metrics, double qps) {
  PhaseResult result;
  result.qps = qps;
  result.p50_us = metrics.latency.QuantileUpperBoundMicros(0.50);
  result.p95_us = metrics.latency.QuantileUpperBoundMicros(0.95);
  result.p99_us = metrics.latency.QuantileUpperBoundMicros(0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = plp::FlagParser::Parse(argc, argv);
  PLP_CHECK_OK(flags_or.status());
  const plp::FlagParser& flags = flags_or.value();

  const int32_t locations =
      static_cast<int32_t>(flags.GetInt("locations", 600));
  const int32_t dim = static_cast<int32_t>(flags.GetInt("dim", 50));
  const int64_t users = flags.GetInt("users", 5000);
  const int64_t requests = flags.GetInt("requests", 200000);
  const int32_t k = static_cast<int32_t>(flags.GetInt("k", 10));
  const int32_t batch = static_cast<int32_t>(flags.GetInt("batch", 64));
  const int32_t threads = static_cast<int32_t>(flags.GetInt("threads", 4));
  const int64_t swaps = flags.GetInt("swaps", 20);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string json_path =
      flags.GetString("json", "BENCH_serving.json");

  std::printf("serving_throughput: L=%d dim=%d users=%lld requests=%lld "
              "k=%d batch=%d threads=%d\n",
              locations, dim, static_cast<long long>(users),
              static_cast<long long>(requests), k, batch, threads);

  const plp::sgns::SgnsModel model_a = MakeFixtureModel(locations, dim, seed);
  const plp::sgns::SgnsModel model_b =
      MakeFixtureModel(locations, dim, seed + 1);

  plp::serve::ServingConfig config;
  config.num_threads = threads;
  config.max_batch = batch;
  config.sessions.capacity = static_cast<size_t>(users) + 16;

  // Phase 1: single-thread synchronous loop.
  PhaseResult single;
  {
    plp::serve::ServingEngine engine(config);
    PLP_CHECK_OK(engine.PublishModel(model_a, 1));
    plp::Rng rng(seed);
    // Warm the session store so steady-state requests hit real histories.
    for (int64_t u = 0; u < users; ++u) {
      engine.Recommend(RandomRequest(rng, users, locations, k));
    }
    plp::Stopwatch watch;
    for (int64_t i = 0; i < requests; ++i) {
      const Response r =
          engine.Recommend(RandomRequest(rng, users, locations, k));
      PLP_CHECK(r.status.ok());
    }
    const double elapsed = watch.ElapsedSeconds();
    single = QuantilesOf(engine.metrics(),
                         static_cast<double>(requests) / elapsed);
    std::printf("single : %.0f qps  p50<=%llu us  p99<=%llu us\n",
                single.qps, static_cast<unsigned long long>(single.p50_us),
                static_cast<unsigned long long>(single.p99_us));
  }

  // Phase 2: micro-batched execution across the pool.
  PhaseResult batched;
  {
    plp::serve::ServingEngine engine(config);
    PLP_CHECK_OK(engine.PublishModel(model_a, 1));
    plp::Rng rng(seed + 17);
    const int64_t chunk = static_cast<int64_t>(batch) * threads * 4;
    plp::Stopwatch watch;
    int64_t sent = 0;
    while (sent < requests) {
      const int64_t n = std::min<int64_t>(chunk, requests - sent);
      std::vector<Request> wave;
      wave.reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        wave.push_back(RandomRequest(rng, users, locations, k));
      }
      for (const Response& r : engine.RecommendBatch(std::move(wave))) {
        PLP_CHECK(r.status.ok());
      }
      sent += n;
    }
    const double elapsed = watch.ElapsedSeconds();
    batched = QuantilesOf(engine.metrics(),
                          static_cast<double>(requests) / elapsed);
    std::printf("batched: %.0f qps  p50<=%llu us  p99<=%llu us\n",
                batched.qps,
                static_cast<unsigned long long>(batched.p50_us),
                static_cast<unsigned long long>(batched.p99_us));
  }

  // Phase 3: hot-swap pressure — publisher thread alternates snapshots
  // while the request loop runs; the stall is the worst Publish latency,
  // and the request p99 shows reader-side impact.
  PhaseResult swap_phase;
  double swap_stall_us_max = 0.0;
  {
    plp::serve::ServingEngine engine(config);
    PLP_CHECK_OK(engine.PublishModel(model_a, 1));
    const int64_t swap_requests = std::max<int64_t>(requests / 4, 1);
    std::atomic<bool> stop{false};
    std::thread publisher([&] {
      uint64_t version = 2;
      for (int64_t s = 0; s < swaps && !stop.load(); ++s) {
        const plp::sgns::SgnsModel& next =
            (s % 2 == 0) ? model_b : model_a;
        plp::Stopwatch swap_watch;
        PLP_CHECK_OK(engine.PublishModel(next, version++));
        swap_stall_us_max =
            std::max(swap_stall_us_max, swap_watch.ElapsedMillis() * 1e3);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    plp::Rng rng(seed + 29);
    plp::Stopwatch watch;
    for (int64_t i = 0; i < swap_requests; ++i) {
      const Response r =
          engine.Recommend(RandomRequest(rng, users, locations, k));
      PLP_CHECK(r.status.ok());
    }
    const double elapsed = watch.ElapsedSeconds();
    stop.store(true);
    publisher.join();
    swap_phase = QuantilesOf(engine.metrics(),
                             static_cast<double>(swap_requests) / elapsed);
    std::printf("swap   : %.0f qps  p99<=%llu us  worst publish %.0f us "
                "(%llu swaps)\n",
                swap_phase.qps,
                static_cast<unsigned long long>(swap_phase.p99_us),
                swap_stall_us_max,
                static_cast<unsigned long long>(
                    engine.metrics().model_swaps.load()));
  }

  plp::TablePrinter table({"phase", "qps", "p50_us_le", "p95_us_le",
                           "p99_us_le"});
  auto add = [&table](const std::string& name, const PhaseResult& r) {
    table.NewRow();
    table.AddCell(name);
    table.AddCell(r.qps, 0);
    table.AddCell(static_cast<int64_t>(r.p50_us));
    table.AddCell(static_cast<int64_t>(r.p95_us));
    table.AddCell(static_cast<int64_t>(r.p99_us));
  };
  add("single", single);
  add("batched", batched);
  add("swap", swap_phase);
  table.PrintAligned(std::cout);

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"serving_throughput\",\n"
       << "  \"locations\": " << locations << ",\n"
       << "  \"dim\": " << dim << ",\n"
       << "  \"users\": " << users << ",\n"
       << "  \"requests\": " << requests << ",\n"
       << "  \"k\": " << k << ",\n"
       << "  \"batch\": " << batch << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"qps_single_thread\": " << single.qps << ",\n"
       << "  \"p50_us_single\": " << single.p50_us << ",\n"
       << "  \"p95_us_single\": " << single.p95_us << ",\n"
       << "  \"p99_us_single\": " << single.p99_us << ",\n"
       << "  \"qps_batched\": " << batched.qps << ",\n"
       << "  \"p99_us_batched\": " << batched.p99_us << ",\n"
       << "  \"qps_under_swaps\": " << swap_phase.qps << ",\n"
       << "  \"p99_us_under_swaps\": " << swap_phase.p99_us << ",\n"
       << "  \"swap_stall_us_max\": " << swap_stall_us_max << "\n"
       << "}\n";
  if (!json) {
    std::cerr << "error: cannot write " << json_path << "\n";
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
