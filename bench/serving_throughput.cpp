// serving_throughput — load generator for the plp::serve tier.
//
//   serving_throughput [--locations=20000] [--dim=64] [--groups=50]
//                      [--spread=0.08] [--users=5000]
//                      [--k=10] [--shards=4] [--format=int8] [--ivf=true]
//                      [--nprobe=0] [--capacity_requests=30000]
//                      [--duration_s=4] [--overload_s=1.5]
//                      [--rate=0] [--overload_factor=3]
//                      [--swap_interval_ms=750] [--timeout_ms=50]
//                      [--seed=42] [--json=BENCH_serving.json]
//                      [--min_qps=0] [--min_speedup=0]
//
// Two measurements over a synthetic fixture vocabulary:
//
//   1. capacity — closed-loop saturation (one caller thread per shard,
//      synchronous Recommend in a tight loop) of (a) the BASELINE tier:
//      one shard, exact float32 scan — the reference configuration every
//      other number is judged against; and (b) the OPTIMIZED tier:
//      --shards shards serving --format snapshots through the IVF-pruned
//      scan. `speedup` is (b)/(a) on the same host.
//
//   2. open loop — the honest load measurement. A generator thread fires
//      requests at a FIXED arrival rate (auto: --steady_frac of measured
//      optimized capacity) regardless of how fast the tier drains them,
//      stamping
//      each request with its *scheduled* arrival time, so reported
//      latency includes every microsecond a request waited because the
//      system was behind (no coordinated omission). Traffic is mixed:
//      session queries, periodic cross-shard hot swaps of prebuilt
//      snapshots, and a closing overload segment at overload_factor× the
//      steady rate to exercise admission control. Reports achieved
//      throughput, p50/p99/p999, and shed rate per segment.
//
// Results print as a table and are written as JSON (--json) so CI can
// archive BENCH_serving.json and trend the numbers across commits. A
// positive --min_qps (optimized capacity floor) or --min_speedup turns
// the run into a CI gate.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "serve/sharded_engine.h"
#include "sgns/model_io.h"

namespace {

using plp::serve::Request;
using plp::serve::Response;
using Clock = std::chrono::steady_clock;

struct Traffic {
  int64_t users = 0;
  int32_t locations = 0;
  int32_t k = 10;
};

struct OpenLoopResult {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;  ///< OK responses per wall second
  uint64_t submitted = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;      ///< overloaded + deadline-expired
  uint64_t errors = 0;    ///< anything else non-OK
  double shed_rate = 0.0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
  int64_t p999_us = 0;
};

/// Clustered unit-norm vocabulary: rows scatter (per-dim noise `spread`)
/// around `groups` unit directions — the neighborhood structure trained
/// embeddings actually have, and the regime the IVF-pruned scan is
/// specified for. An isotropic fixture would make approximate top-k look
/// either uselessly easy (any candidate is as good as another) or
/// impossibly hard (recall has no structure to exploit); neither is the
/// production workload.
plp::sgns::DeployedEmbeddings MakeFixture(int32_t locations, int32_t dim,
                                          int32_t groups, double spread,
                                          uint64_t seed) {
  plp::Rng rng(seed);
  std::vector<std::vector<double>> centers(
      static_cast<size_t>(groups), std::vector<double>(dim));
  for (auto& c : centers) {
    double sq = 0.0;
    for (double& v : c) {
      v = rng.Gaussian();
      sq += v * v;
    }
    const double inv = 1.0 / std::sqrt(sq);
    for (double& v : c) v *= inv;
  }
  plp::sgns::DeployedEmbeddings deployed;
  deployed.num_locations = locations;
  deployed.dim = dim;
  deployed.embeddings.resize(static_cast<size_t>(locations) * dim);
  for (int32_t r = 0; r < locations; ++r) {
    const auto& c = centers[static_cast<size_t>(r % groups)];
    double* row = deployed.embeddings.data() + static_cast<size_t>(r) * dim;
    double sq = 0.0;
    for (int32_t d = 0; d < dim; ++d) {
      row[d] = c[static_cast<size_t>(d)] + spread * rng.Gaussian();
      sq += row[d] * row[d];
    }
    const double inv = 1.0 / std::sqrt(sq);
    for (int32_t d = 0; d < dim; ++d) row[d] *= inv;
  }
  return deployed;
}

Request RandomRequest(plp::Rng& rng, const Traffic& traffic) {
  Request request;
  request.user_id = static_cast<int64_t>(
      rng.UniformInt(static_cast<uint64_t>(traffic.users)));
  request.new_checkin = static_cast<int32_t>(
      rng.UniformInt(static_cast<uint64_t>(traffic.locations)));
  request.k = traffic.k;
  return request;
}

void WarmSessions(plp::serve::ShardedServingEngine& engine, plp::Rng& rng,
                  const Traffic& traffic) {
  for (int64_t u = 0; u < traffic.users; ++u) {
    PLP_CHECK(engine.Recommend(RandomRequest(rng, traffic)).status.ok());
  }
}

/// Closed-loop saturation: one synchronous caller thread per shard, each
/// hammering its own user population. The aggregate rate is the tier's
/// capacity — the ceiling the open-loop phase then offers a fraction of.
double MeasureCapacity(plp::serve::ShardedServingEngine& engine,
                       const Traffic& traffic, int64_t requests,
                       uint64_t seed) {
  const size_t callers = engine.num_shards();
  const int64_t per_caller =
      std::max<int64_t>(requests / static_cast<int64_t>(callers), 1);
  std::vector<std::thread> threads;
  threads.reserve(callers);
  plp::Stopwatch watch;
  for (size_t c = 0; c < callers; ++c) {
    threads.emplace_back([&engine, &traffic, per_caller, seed, c] {
      plp::Rng rng(seed + 1000 * c);
      for (int64_t i = 0; i < per_caller; ++i) {
        PLP_CHECK(engine.Recommend(RandomRequest(rng, traffic)).status.ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed = watch.ElapsedSeconds();
  return static_cast<double>(per_caller * static_cast<int64_t>(callers)) /
         elapsed;
}

/// Open-loop segment: fixed-rate arrivals via SubmitAsync. Latency is
/// measured from each request's *scheduled* arrival (stamped into
/// Request::arrival, which Finish uses as the latency start), so a tier
/// that falls behind pays the queueing delay in its quantiles instead of
/// silently slowing the generator down.
OpenLoopResult RunOpenLoop(plp::serve::ShardedServingEngine& engine,
                           const Traffic& traffic, double rate_qps,
                           double seconds, int64_t timeout_micros,
                           uint64_t seed) {
  OpenLoopResult result;
  result.offered_qps = rate_qps;
  const auto total =
      static_cast<uint64_t>(std::llround(rate_qps * seconds));
  const auto period = std::chrono::nanoseconds(
      static_cast<int64_t>(1e9 / rate_qps));

  plp::Rng rng(seed);
  std::vector<int64_t> latencies;
  latencies.reserve(total);
  std::deque<std::future<Response>> pending;

  auto harvest = [&](bool block) {
    while (!pending.empty() &&
           (block || pending.front().wait_for(std::chrono::seconds(0)) ==
                         std::future_status::ready)) {
      const Response r = pending.front().get();
      pending.pop_front();
      if (r.status.ok()) {
        ++result.ok;
        latencies.push_back(r.latency_micros);
      } else if (r.status.code() ==
                     plp::StatusCode::kResourceExhausted ||
                 r.status.code() ==
                     plp::StatusCode::kDeadlineExceeded) {
        ++result.shed;
      } else {
        ++result.errors;
      }
    }
  };

  const Clock::time_point start = Clock::now();
  plp::Stopwatch watch;
  // Arrivals that have already fallen due are submitted together through
  // SubmitAsyncBatch — one pool lock and one condvar wakeup per batch
  // instead of one signal per request. In steady state (generator keeping
  // up) batches are size 1 and behavior is unchanged; under saturation —
  // exactly where per-request wakeups cost the most — the generator runs
  // behind schedule and the due backlog coalesces naturally. Capped so a
  // deeply backlogged generator still interleaves submission and harvest.
  constexpr size_t kMaxSubmitBatch = 64;
  std::vector<Request> batch;
  for (uint64_t i = 0; i < total;) {
    // Open loop: wait until the scheduled instant, but never skip an
    // arrival — if the host is behind, the request fires late with its
    // scheduled stamp and the lag shows up as latency. Sleeping (not
    // spinning) matters on small hosts: the generator shares cores with
    // the shard workers, and a spin-wait would starve them. Scheduler
    // wake-up jitter is fine — latency is measured from the scheduled
    // stamp, so late dispatch is *counted*, not hidden.
    std::this_thread::sleep_until(start + period * i);
    const Clock::time_point now = Clock::now();
    batch.clear();
    do {
      Request request = RandomRequest(rng, traffic);
      request.arrival = start + period * i;
      request.timeout_micros = timeout_micros;
      batch.push_back(std::move(request));
      ++i;
    } while (i < total && batch.size() < kMaxSubmitBatch &&
             start + period * i <= now);
    result.submitted += batch.size();
    for (auto& future : engine.SubmitAsyncBatch(std::move(batch))) {
      pending.push_back(std::move(future));
    }
    batch = {};
    harvest(/*block=*/false);
  }
  harvest(/*block=*/true);
  const double elapsed = watch.ElapsedSeconds();

  result.achieved_qps = static_cast<double>(result.ok) / elapsed;
  result.shed_rate =
      result.submitted == 0
          ? 0.0
          : static_cast<double>(result.shed) /
                static_cast<double>(result.submitted);
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    auto at = [&latencies](double q) {
      const size_t idx = std::min(
          latencies.size() - 1,
          static_cast<size_t>(q * static_cast<double>(latencies.size())));
      return latencies[idx];
    };
    result.p50_us = at(0.50);
    result.p99_us = at(0.99);
    result.p999_us = at(0.999);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = plp::FlagParser::Parse(argc, argv);
  PLP_CHECK_OK(flags_or.status());
  const plp::FlagParser& flags = flags_or.value();

  Traffic traffic;
  traffic.locations = static_cast<int32_t>(flags.GetInt("locations", 20000));
  traffic.users = flags.GetInt("users", 5000);
  traffic.k = static_cast<int32_t>(flags.GetInt("k", 10));
  const int32_t dim = static_cast<int32_t>(flags.GetInt("dim", 64));
  const int32_t groups = static_cast<int32_t>(flags.GetInt("groups", 50));
  const double spread = flags.GetDouble("spread", 0.08);
  // --shards=0 (the default) sizes to the host: one shard per core, up
  // to 4. Sharding exists to scale across cores — each shard carries its
  // own snapshot replica, so more shards than cores just multiplies the
  // cache footprint and *loses* throughput on small hosts.
  int32_t shards = static_cast<int32_t>(flags.GetInt("shards", 0));
  if (shards <= 0) {
    const unsigned cores = std::thread::hardware_concurrency();
    shards = static_cast<int32_t>(
        std::clamp<unsigned>(cores == 0 ? 1 : cores, 1, 4));
  }
  const std::string format_name = flags.GetString("format", "int8");
  const bool build_ivf = flags.GetBool("ivf", true);
  const int32_t nprobe = static_cast<int32_t>(flags.GetInt("nprobe", 0));
  const int64_t capacity_requests = flags.GetInt("capacity_requests", 30000);
  const double duration_s = flags.GetDouble("duration_s", 4.0);
  const double overload_s = flags.GetDouble("overload_s", 1.5);
  const double rate_flag = flags.GetDouble("rate", 0.0);
  // Steady-rate auto-sizing: the capacity phase is closed-loop (the
  // submitter blocks, costing the workers nothing), but in the open loop
  // the generator and publisher threads bill against the same cores as
  // the shard workers. When there is no spare core for the generator,
  // 60% of closed-loop capacity sits on the saturation cliff and the
  // segment measures queueing collapse instead of steady-state latency —
  // back off to 50% there. --steady_frac overrides.
  const unsigned hw_cores = std::thread::hardware_concurrency();
  const double steady_frac_default =
      hw_cores > static_cast<unsigned>(shards) ? 0.6 : 0.5;
  const double steady_frac =
      flags.GetDouble("steady_frac", steady_frac_default);
  const double overload_factor = flags.GetDouble("overload_factor", 3.0);
  const int64_t swap_interval_ms = flags.GetInt("swap_interval_ms", 750);
  const int64_t timeout_ms = flags.GetInt("timeout_ms", 50);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string json_path = flags.GetString("json", "BENCH_serving.json");
  const double min_qps = flags.GetDouble("min_qps", 0.0);
  const double min_speedup = flags.GetDouble("min_speedup", 0.0);

  auto format_or = plp::serve::ParseSnapshotFormat(format_name);
  PLP_CHECK_OK(format_or.status());

  std::printf(
      "serving_throughput: L=%d dim=%d users=%lld k=%d | optimized: "
      "shards=%d format=%s ivf=%d nprobe=%d\n",
      traffic.locations, dim, static_cast<long long>(traffic.users),
      traffic.k, shards, format_name.c_str(), build_ivf ? 1 : 0, nprobe);

  const plp::sgns::DeployedEmbeddings fixture_a =
      MakeFixture(traffic.locations, dim, groups, spread, seed);
  const plp::sgns::DeployedEmbeddings fixture_b =
      MakeFixture(traffic.locations, dim, groups, spread, seed + 1);

  // Baseline: one shard, exact float32 scan — the reference tier.
  double qps_baseline = 0.0;
  {
    plp::serve::ShardedConfig config;
    config.num_shards = 1;
    config.shard.num_threads = 1;
    config.shard.sessions.capacity = static_cast<size_t>(traffic.users) + 16;
    plp::serve::ShardedServingEngine engine(config);
    auto baseline_snapshot = plp::serve::ModelSnapshot::FromDeployed(
        fixture_a, 1, plp::serve::SnapshotOptions{});
    PLP_CHECK_OK(baseline_snapshot.status());
    PLP_CHECK_OK(engine.PublishSnapshot(std::move(baseline_snapshot).value()));
    plp::Rng rng(seed);
    WarmSessions(engine, rng, traffic);
    qps_baseline =
        MeasureCapacity(engine, traffic, capacity_requests, seed + 3);
    std::printf("capacity baseline (1 shard, f32 exact) : %.0f qps\n",
                qps_baseline);
  }

  // Optimized tier: sharded + quantized + IVF-pruned.
  plp::serve::ShardedConfig config;
  config.num_shards = shards;
  config.shard.num_threads = 1;  // one worker per shard
  config.shard.sessions.capacity = static_cast<size_t>(traffic.users) + 16;
  config.shard.snapshot.format = format_or.value();
  config.shard.snapshot.build_ivf = build_ivf;
  config.shard.nprobe = nprobe;
  plp::serve::ShardedServingEngine engine(config);
  auto optimized_snapshot = plp::serve::ModelSnapshot::FromDeployed(
      fixture_a, 1, config.shard.snapshot);
  PLP_CHECK_OK(optimized_snapshot.status());
  PLP_CHECK_OK(engine.PublishSnapshot(std::move(optimized_snapshot).value()));

  double qps_optimized = 0.0;
  {
    plp::Rng rng(seed);
    WarmSessions(engine, rng, traffic);
    qps_optimized =
        MeasureCapacity(engine, traffic, capacity_requests, seed + 5);
    std::printf("capacity optimized (%d shards, %s%s)   : %.0f qps\n",
                shards, format_name.c_str(), build_ivf ? "+ivf" : "",
                qps_optimized);
  }
  const double speedup =
      qps_baseline > 0.0 ? qps_optimized / qps_baseline : 0.0;
  std::printf("speedup over baseline: %.2fx\n", speedup);

  // Prebuild the swap target once — the publisher thread then measures
  // replicate+swap cost, not snapshot construction.
  auto snapshot_b_or = plp::serve::ModelSnapshot::FromDeployed(
      fixture_b, 2, config.shard.snapshot);
  PLP_CHECK_OK(snapshot_b_or.status());
  auto snapshot_a_or = plp::serve::ModelSnapshot::FromDeployed(
      fixture_a, 3, config.shard.snapshot);
  PLP_CHECK_OK(snapshot_a_or.status());

  // Open loop with mixed traffic: queries at a fixed rate + periodic hot
  // swaps, then an overload segment at overload_factor× the steady rate.
  const double steady_rate =
      rate_flag > 0.0 ? rate_flag : steady_frac * qps_optimized;
  std::atomic<bool> stop_swaps{false};
  double swap_stall_us_max = 0.0;
  uint64_t swaps_published = 0;
  std::thread publisher([&] {
    uint64_t version = 4;
    bool use_b = true;
    while (!stop_swaps.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(swap_interval_ms));
      if (stop_swaps.load(std::memory_order_acquire)) break;
      const auto& snapshot = use_b ? snapshot_b_or.value()
                                   : snapshot_a_or.value();
      use_b = !use_b;
      (void)version++;
      plp::Stopwatch swap_watch;
      PLP_CHECK_OK(engine.PublishSnapshot(snapshot));
      swap_stall_us_max =
          std::max(swap_stall_us_max, swap_watch.ElapsedMillis() * 1e3);
      ++swaps_published;
    }
  });

  const OpenLoopResult steady =
      RunOpenLoop(engine, traffic, steady_rate, duration_s,
                  timeout_ms * 1000, seed + 7);
  const OpenLoopResult overload =
      RunOpenLoop(engine, traffic, steady_rate * overload_factor,
                  overload_s, timeout_ms * 1000, seed + 11);
  stop_swaps.store(true, std::memory_order_release);
  publisher.join();

  auto print_segment = [](const char* name, const OpenLoopResult& r) {
    std::printf(
        "%s: offered %.0f qps, achieved %.0f qps, p50=%lld us, "
        "p99=%lld us, p999=%lld us, shed %.2f%%\n",
        name, r.offered_qps, r.achieved_qps,
        static_cast<long long>(r.p50_us), static_cast<long long>(r.p99_us),
        static_cast<long long>(r.p999_us), 100.0 * r.shed_rate);
  };
  print_segment("open-loop steady  ", steady);
  print_segment("open-loop overload", overload);
  std::printf("hot swaps during open loop: %llu (worst publish %.0f us)\n",
              static_cast<unsigned long long>(swaps_published),
              swap_stall_us_max);

  plp::TablePrinter table({"segment", "offered_qps", "achieved_qps",
                           "p50_us", "p99_us", "p999_us", "shed_pct"});
  auto add = [&table](const std::string& name, const OpenLoopResult& r) {
    table.NewRow();
    table.AddCell(name);
    table.AddCell(r.offered_qps, 0);
    table.AddCell(r.achieved_qps, 0);
    table.AddCell(r.p50_us);
    table.AddCell(r.p99_us);
    table.AddCell(r.p999_us);
    table.AddCell(100.0 * r.shed_rate, 2);
  };
  add("steady", steady);
  add("overload", overload);
  table.PrintAligned(std::cout);

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"serving_throughput\",\n"
       << "  \"locations\": " << traffic.locations << ",\n"
       << "  \"dim\": " << dim << ",\n"
       << "  \"users\": " << traffic.users << ",\n"
       << "  \"k\": " << traffic.k << ",\n"
       << "  \"shards\": " << shards << ",\n"
       << "  \"format\": \"" << format_name << "\",\n"
       << "  \"ivf\": " << (build_ivf ? "true" : "false") << ",\n"
       << "  \"nprobe\": " << nprobe << ",\n"
       << "  \"qps_baseline_capacity\": " << qps_baseline << ",\n"
       << "  \"qps_optimized_capacity\": " << qps_optimized << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"open_loop_offered_qps\": " << steady.offered_qps << ",\n"
       << "  \"open_loop_achieved_qps\": " << steady.achieved_qps << ",\n"
       << "  \"open_loop_p50_us\": " << steady.p50_us << ",\n"
       << "  \"open_loop_p99_us\": " << steady.p99_us << ",\n"
       << "  \"open_loop_p999_us\": " << steady.p999_us << ",\n"
       << "  \"open_loop_shed_rate\": " << steady.shed_rate << ",\n"
       << "  \"overload_offered_qps\": " << overload.offered_qps << ",\n"
       << "  \"overload_achieved_qps\": " << overload.achieved_qps << ",\n"
       << "  \"overload_shed_rate\": " << overload.shed_rate << ",\n"
       << "  \"swaps_during_open_loop\": " << swaps_published << ",\n"
       << "  \"swap_stall_us_max\": " << swap_stall_us_max << "\n"
       << "}\n";
  if (!json) {
    std::cerr << "error: cannot write " << json_path << "\n";
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());

  if (min_qps > 0.0 && qps_optimized < min_qps) {
    std::cerr << "FAIL: optimized capacity " << qps_optimized
              << " qps below --min_qps=" << min_qps << "\n";
    return 1;
  }
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::cerr << "FAIL: speedup " << speedup << "x below --min_speedup="
              << min_speedup << "\n";
    return 1;
  }
  return 0;
}
