#include "bench/bench_common.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "data/fixtures.h"
#include "data/store/checkin_store.h"
#include "data/store/mmap_corpus.h"
#include "data/store/store_writer.h"
#include "data/synthetic_generator.h"

namespace plp::bench {

BenchOptions ParseBenchOptions(int argc, char** argv) {
  auto flags = FlagParser::Parse(argc, argv);
  PLP_CHECK_OK(flags.status());
  BenchOptions options;
  options.scale = flags->GetString("scale", "small");
  PLP_CHECK(options.scale == "small" || options.scale == "paper" ||
            options.scale == "large");
  options.full = flags->GetBool("full", false);
  options.seed = static_cast<uint64_t>(flags->GetInt("seed", 42));
  options.max_steps = flags->GetInt("max_steps", 0);
  options.corpus_dir = flags->GetString("corpus_dir", "");
  options.users = static_cast<int32_t>(flags->GetInt("users", options.users));
  options.locations =
      static_cast<int32_t>(flags->GetInt("locations", options.locations));
  options.accountant = flags->GetString("accountant", "");
  options.sampling_scheme = flags->GetString("sampling_scheme", "");
  return options;
}

namespace {

/// The large-scale workload: a PLPD corpus on disk, trained through the
/// mmap view. The corpus is generated once per (seed, users, locations)
/// into `corpus_dir` (or a seed-stamped temp directory) and reused on
/// later runs — an already-opening directory is trusted as-is, so sweeps
/// pay the generation cost once. The last 200 store users are held out:
/// [N-200, N-100) validation, [N-100, N) test, matching the paper's
/// 100 + 100 user-disjoint split.
Workload BuildLargeWorkload(const BenchOptions& options) {
  std::string dir = options.corpus_dir;
  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() /
           ("plpd-bench-" + std::to_string(options.seed) + "-" +
            std::to_string(options.users) + "x" +
            std::to_string(options.locations)))
              .string();
  }
  auto store_or = data::store::CheckInStore::Open(dir);
  if (!store_or.ok()) {
    data::SyntheticConfig config;
    config.num_users = options.users;
    config.num_locations = options.locations;
    config.num_clusters = 64;
    auto writer_or = data::store::CheckInStoreWriter::Create(dir);
    PLP_CHECK_OK(writer_or.status());
    Rng gen_rng(options.seed);
    PLP_CHECK_OK(
        data::GenerateSyntheticCheckInsToStore(config, gen_rng, **writer_or));
    PLP_CHECK_OK((*writer_or)->Finish());
    store_or = data::store::CheckInStore::Open(dir);
    PLP_CHECK_OK(store_or.status());
  }
  std::shared_ptr<const data::store::CheckInStore> store = *store_or;
  const int32_t n = store->num_users();
  PLP_CHECK_GT(n, 400);

  Workload workload;
  workload.corpus =
      std::make_shared<data::store::MmapCorpus>(store, 0, n - 200);
  auto holdout_examples = [&store](int32_t begin, int32_t end) {
    std::vector<eval::EvalExample> examples;
    for (int32_t u = begin; u < end; ++u) {
      const auto span = store->User(u);
      eval::AppendLeaveOneOutExamples(span.locations, span.timestamps,
                                      examples);
    }
    return examples;
  };
  workload.validation = holdout_examples(n - 200, n - 100);
  workload.test = holdout_examples(n - 100, n);
  PLP_CHECK(!workload.validation.empty());
  PLP_CHECK(!workload.test.empty());
  return workload;
}

}  // namespace

Workload BuildWorkload(const BenchOptions& options) {
  if (options.scale == "large") return BuildLargeWorkload(options);
  // The corpus fixture is shared with the test suite (data/fixtures.h) so
  // every consumer of a given (seed, scale) sees the same dataset. The
  // holdout split below keeps drawing from a generator seeded identically.
  auto generated = data::MakeFixtureDataset(options.seed, options.scale);
  PLP_CHECK_OK(generated.status());
  data::CheckInDataset filtered = std::move(generated).value();
  Rng rng(options.seed);

  // Remove 100 validation then 100 test users (Section 5.1).
  auto validation_split = filtered.SplitHoldout(100, rng);
  PLP_CHECK_OK(validation_split.status());
  auto test_split = validation_split->first.SplitHoldout(100, rng);
  PLP_CHECK_OK(test_split.status());

  Workload workload;
  workload.train = std::move(test_split->first);
  auto corpus = data::BuildCorpus(workload.train);
  PLP_CHECK_OK(corpus.status());
  workload.corpus =
      std::make_shared<data::TrainingCorpus>(std::move(corpus).value());
  workload.validation =
      eval::BuildLeaveOneOutExamples(validation_split->second);
  workload.test = eval::BuildLeaveOneOutExamples(test_split->second);
  PLP_CHECK(!workload.validation.empty());
  PLP_CHECK(!workload.test.empty());
  return workload;
}

core::PlpConfig DefaultPlpConfig(const BenchOptions& options) {
  core::PlpConfig config;  // paper defaults
  if (options.scale == "small") {
    // Calibrated for the down-scaled city: a smaller server-Adam rate,
    // inside the paper's tested range [0.02, 0.07].
    config.adam.learning_rate = 0.03;
  }
  if (options.max_steps > 0) config.max_steps = options.max_steps;
  if (!options.accountant.empty()) config.accountant = options.accountant;
  if (!options.sampling_scheme.empty()) {
    auto scheme = core::ParseSamplingScheme(options.sampling_scheme);
    PLP_CHECK_OK(scheme.status());
    config.sampling_scheme = *scheme;
  }
  PLP_CHECK_OK(config.Validate());
  return config;
}

StageConfig StageConfig::Private(core::PlpConfig config) {
  StageConfig stage;
  stage.is_private = true;
  stage.plp = std::move(config);
  return stage;
}

StageConfig StageConfig::NonPrivate(core::NonPrivateConfig config) {
  StageConfig stage;
  stage.is_private = false;
  stage.nonprivate = std::move(config);
  return stage;
}

namespace {

EvalPoint EvaluatePoint(const Workload& workload, const sgns::SgnsModel& model,
                        int64_t index, double mean_loss) {
  EvalPoint point;
  point.index = index;
  point.mean_loss = mean_loss;
  constexpr std::array<int32_t, 3> kRanks = {5, 10, 20};
  for (size_t i = 0; i < kRanks.size(); ++i) {
    point.validation_hr[i] = EvalHr(model, workload.validation, kRanks[i]);
    point.test_hr[i] = EvalHr(model, workload.test, kRanks[i]);
  }
  std::printf(".");
  std::fflush(stdout);
  return point;
}

}  // namespace

RunOutcome RunAndEvaluate(const StageConfig& config, const Workload& workload,
                          uint64_t seed) {
  Rng rng(seed);
  RunOutcome outcome;
  if (config.is_private) {
    core::StepCallback callback = nullptr;
    if (config.eval_every > 0) {
      callback = [&](const core::StepMetrics& metrics,
                     const sgns::SgnsModel& model) {
        if (metrics.step % config.eval_every == 0) {
          outcome.trajectory.push_back(EvaluatePoint(
              workload, model, metrics.step, metrics.mean_local_loss));
        }
        return true;
      };
    }
    auto result = core::PlpTrainer(config.plp).Train(*workload.corpus, rng,
                                                     callback);
    PLP_CHECK_OK(result.status());
    outcome.steps = result->steps_executed;
    outcome.epsilon_spent = result->epsilon_spent;
    outcome.wall_seconds = result->wall_seconds;
    // A final trajectory point when the run stopped off-cadence (budget
    // exhaustion between eval_every multiples).
    if (config.eval_every > 0 && !result->history.empty() &&
        (outcome.trajectory.empty() ||
         outcome.trajectory.back().index != result->steps_executed)) {
      outcome.trajectory.push_back(
          EvaluatePoint(workload, result->model, result->steps_executed,
                        result->history.back().mean_local_loss));
    }
    outcome.model = std::move(result->model);
  } else {
    core::EpochCallback callback = nullptr;
    if (config.eval_every > 0) {
      callback = [&](const core::EpochMetrics& metrics,
                     const sgns::SgnsModel& model) {
        if (metrics.epoch % config.eval_every == 0 ||
            metrics.epoch == config.nonprivate.epochs) {
          outcome.trajectory.push_back(EvaluatePoint(
              workload, model, metrics.epoch, metrics.mean_loss));
        }
        return true;
      };
    }
    auto result = core::NonPrivateTrainer(config.nonprivate)
                      .Train(*workload.corpus, rng, callback);
    PLP_CHECK_OK(result.status());
    outcome.steps = static_cast<int64_t>(result->history.size());
    outcome.wall_seconds = result->wall_seconds;
    outcome.model = std::move(result->model);
  }
  if (config.evaluate) {
    constexpr std::array<int32_t, 3> kRanks = {5, 10, 20};
    for (size_t i = 0; i < kRanks.size(); ++i) {
      outcome.validation_hr[i] =
          EvalHr(outcome.model, workload.validation, kRanks[i]);
    }
    outcome.hit_rate_at_10 = outcome.validation_hr[1];
  }
  return outcome;
}

RunOutcome RunPrivate(const core::PlpConfig& config,
                      const Workload& workload, uint64_t seed) {
  return RunAndEvaluate(StageConfig::Private(config), workload, seed);
}

double RandomFloorHr10(const Workload& workload, int32_t embedding_dim,
                       uint64_t seed) {
  Rng rng(seed);
  sgns::SgnsConfig config;
  config.embedding_dim = embedding_dim;
  auto model =
      sgns::SgnsModel::Create(workload.corpus->NumLocations(), config, rng);
  PLP_CHECK_OK(model.status());
  return EvalHr(*model, workload.validation, 10);
}

double EvalHr(const sgns::SgnsModel& model,
              const std::vector<eval::EvalExample>& examples, int32_t k) {
  auto hr = eval::EvaluateHitRate(model, examples, {k});
  PLP_CHECK_OK(hr.status());
  return hr->at(k);
}

void PrintBanner(const std::string& figure, const BenchOptions& options,
                 const Workload& workload) {
  std::printf("== %s  (scale=%s%s, seed=%llu) ==\n", figure.c_str(),
              options.scale.c_str(), options.full ? ", full grid" : "",
              static_cast<unsigned long long>(options.seed));
  std::printf(
      "workload: %d train users, %d locations, %lld check-ins; "
      "%zu validation / %zu test trajectories\n\n",
      workload.corpus->NumUsers(), workload.corpus->NumLocations(),
      static_cast<long long>(workload.corpus->NumTokens()),
      workload.validation.size(), workload.test.size());
}

}  // namespace plp::bench
