// Baseline comparison: order-1 Markov chains vs the skip-gram model,
// non-private and under user-level DP.
//
// Section 6 positions Markov-chain recommenders (and their DP variant,
// Zhang et al. [63]) as the classical alternative to neural embeddings and
// notes that "due to the sparsity in check-in behavior and the
// general-purpose privacy mechanisms, their method can only extend to
// coarse spatial decompositions". This bench quantifies that: the DP
// Markov model must perturb an L×L count matrix, so the per-cell signal
// drowns, while PLP's grouped, clipped skip-gram updates survive.
//
// Usage: baseline_markov [--scale=small] [--seed=N] [--eps=2]

#include <cstdio>
#include <iostream>

#include "baselines/markov.h"
#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "core/nonprivate_trainer.h"

namespace plp::bench {
namespace {

double MarkovHr10(const baselines::MarkovModel& model,
                  const std::vector<eval::EvalExample>& examples) {
  int64_t hits = 0;
  for (const eval::EvalExample& ex : examples) {
    for (int32_t candidate : model.TopK(ex.history, 10)) {
      if (candidate == ex.label) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(examples.size());
}

void Run(int argc, char** argv) {
  auto flags = FlagParser::Parse(argc, argv);
  PLP_CHECK_OK(flags.status());
  const BenchOptions options = ParseBenchOptions(argc, argv);
  PLP_CHECK(options.scale == "small");  // Markov materializes L×L
  const Workload workload = BuildWorkload(options);
  PrintBanner("Baseline: Markov chain vs skip-gram", options, workload);
  const double eps = flags->GetDouble("eps", 2.0);

  TablePrinter table({"model", "privacy", "HR@10"});
  table.NewRow()
      .AddCell("random embedding")
      .AddCell("-")
      .AddCell(RandomFloorHr10(workload, 50, options.seed));
  {
    Rng rng(options.seed + 1);
    auto markov = baselines::MarkovModel::Train(*workload.corpus,
                                                baselines::MarkovConfig{},
                                                rng);
    PLP_CHECK_OK(markov.status());
    table.NewRow()
        .AddCell("markov order-1")
        .AddCell("none")
        .AddCell(MarkovHr10(*markov, workload.validation));
  }
  {
    baselines::MarkovConfig config;
    config.epsilon = eps;
    Rng rng(options.seed + 1);
    auto markov =
        baselines::MarkovModel::Train(*workload.corpus, config, rng);
    PLP_CHECK_OK(markov.status());
    char label[64];
    std::snprintf(label, sizeof(label), "user-level eps=%.1f", eps);
    table.NewRow()
        .AddCell("markov order-1")
        .AddCell(std::string(label))
        .AddCell(MarkovHr10(*markov, workload.validation));
  }
  {
    core::NonPrivateConfig config;
    config.epochs = 8;
    Rng rng(options.seed + 1);
    auto result =
        core::NonPrivateTrainer(config).Train(*workload.corpus, rng);
    PLP_CHECK_OK(result.status());
    table.NewRow()
        .AddCell("skip-gram")
        .AddCell("none")
        .AddCell(EvalHr(result->model, workload.validation, 10));
  }
  {
    core::PlpConfig config = DefaultPlpConfig(options);
    config.epsilon_budget = eps;
    const RunOutcome outcome =
        RunPrivate(config, workload, options.seed + 1);
    char label[64];
    std::snprintf(label, sizeof(label), "user-level (eps=%.1f, delta)",
                  eps);
    table.NewRow()
        .AddCell("PLP skip-gram")
        .AddCell(std::string(label))
        .AddCell(outcome.hit_rate_at_10);
  }
  table.PrintAligned(std::cout);
  std::printf(
      "\nClaim (Section 6): general-purpose DP on Markov counts cannot "
      "cope with check-in sparsity, while the DP skip-gram retains "
      "usable accuracy at the same user-level budget.\n");
}

}  // namespace
}  // namespace plp::bench

int main(int argc, char** argv) {
  plp::bench::Run(argc, argv);
  return 0;
}
