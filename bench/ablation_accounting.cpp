// Ablation A3 (Sections 2.3 and 6): moments accountant vs classic
// composition theorems — and the FFT privacy-loss-distribution accountant.
//
// For the paper's training regime (subsampled Gaussian mechanism with
// q ∈ {0.06, 0.10}, σ ∈ {1.5, 2.5}, δ = 2·10⁻⁴) this prints how many
// training steps each accounting method admits before a given ε budget is
// exceeded. The moments accountant (RDP) admits orders of magnitude more
// steps than naive composition and far more than advanced composition —
// the enabling observation of [Abadi et al. 2016] that PLP builds on. The
// pld_fft column (Koskela et al., arXiv:1906.03049) is tighter still.
//
// The accountant columns run the same pipeline::Accountant stages the
// training engine uses — selected by PlpConfig::accountant exactly as a
// training run would select them — so the numbers here are the step counts
// a real run admits, not a re-derivation. The composition-theorem columns
// stay closed-form (they are baselines no stage implements, on purpose).
//
// Usage: ablation_accounting [--seed=N] [--max_steps=N]
//        (pure math; scale-independent)

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "common/check.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "core/config.h"
#include "pipeline/standard_stages.h"
#include "privacy/gaussian_mechanism.h"
#include "privacy/rdp_accountant.h"

namespace plp::bench {
namespace {

constexpr double kDelta = 2e-4;
/// The paper's user count — the fixed-batch hypergeometric weights need a
/// concrete population (Poisson accounting is population-free).
constexpr int64_t kPopulation = 4602;

core::PlpConfig AccountingConfig(const std::string& accountant,
                                 privacy::RdpConversion conversion, double q,
                                 double sigma, double eps_budget) {
  core::PlpConfig config;
  config.accountant = accountant;
  config.rdp_conversion = conversion;
  config.sampling_probability = q;
  config.noise_scale = sigma;
  config.delta = kDelta;
  config.epsilon_budget = eps_budget;
  return config;
}

/// The round-1 RoundRecord a training run over `config` would stamp —
/// what the bulk TrackRounds sweep extends.
pipeline::RoundRecord FirstRound(const core::PlpConfig& config) {
  pipeline::RoundRecord round;
  round.step = 1;
  round.scheme = config.sampling_scheme;
  round.sampling_ratio = config.sampling_probability;
  round.population = kPopulation;
  if (config.sampling_scheme == core::SamplingScheme::kFixedBatch) {
    round.batch_size = core::FixedBatchSize(
        static_cast<int32_t>(kPopulation), config.sampling_probability);
  }
  round.noise_multiplier = core::EffectiveNoiseMultiplier(config, 1);
  round.split_factor = config.split_factor;
  return round;
}

/// Largest round count the configured Accountant stage admits inside the
/// budget, by binary search over [0, max_steps]. Each probe builds a fresh
/// accountant and advances it through the bulk TrackRounds path, so a
/// probe costs one ε conversion (one FFT composition for pld_fft/mog)
/// instead of one per round.
int64_t StepsAdmitted(const core::PlpConfig& config, int64_t max_steps) {
  const pipeline::RoundRecord first = FirstRound(config);
  const auto exhausted = [&config, &first](int64_t rounds) {
    auto accountant = pipeline::MakeAccountant(config);
    auto decision = accountant->TrackRounds(first, rounds);
    PLP_CHECK_OK(decision.status());
    return decision->exhausted;
  };
  if (exhausted(1)) return 0;
  if (!exhausted(max_steps)) return max_steps;
  int64_t admitted = 1, over = max_steps;
  while (over - admitted > 1) {
    const int64_t mid = admitted + (over - admitted) / 2;
    (exhausted(mid) ? over : admitted) = mid;
  }
  return admitted;
}

int64_t StepsUnderNaive(double per_step_eps, double eps_budget,
                        int64_t max_steps) {
  return std::min(max_steps,
                  static_cast<int64_t>(eps_budget / per_step_eps));
}

int64_t StepsUnderAdvanced(double per_step_eps, double eps_budget,
                           int64_t max_steps) {
  int64_t steps = 0;
  while (steps < max_steps &&
         privacy::AdvancedCompositionEpsilon(per_step_eps, steps + 1,
                                             kDelta) <= eps_budget) {
    ++steps;
  }
  return steps;
}

void Run(int argc, char** argv) {
  auto flags = plp::FlagParser::Parse(argc, argv);
  PLP_CHECK_OK(flags.status());
  const int64_t max_steps = flags->GetInt("max_steps", 200000);
  std::printf(
      "== Ablation A3: steps admitted per accounting method "
      "(delta=%.0e, cap=%lld) ==\n\n",
      kDelta, static_cast<long long>(max_steps));

  TablePrinter table({"q", "sigma", "eps_budget", "naive", "advanced",
                      "rdp_classic", "rdp_improved", "pld_fft", "mog"});
  for (double q : {0.06, 0.10}) {
    for (double sigma : {1.5, 2.5}) {
      // Per-release ε of the subsampled Gaussian for the composition
      // baselines: classic bound amplified by sampling.
      const double eps0 = privacy::AmplifyBySampling(
          privacy::GaussianEpsilon(sigma, kDelta).value(), q);
      for (double eps : {1.0, 2.0, 4.0}) {
        table.NewRow()
            .AddCell(q, 2)
            .AddCell(sigma, 1)
            .AddCell(eps, 1)
            .AddCell(StepsUnderNaive(eps0, eps, max_steps))
            .AddCell(StepsUnderAdvanced(eps0, eps, max_steps))
            .AddCell(StepsAdmitted(
                AccountingConfig("rdp", privacy::RdpConversion::kClassic, q,
                                 sigma, eps),
                max_steps))
            .AddCell(StepsAdmitted(
                AccountingConfig("rdp", privacy::RdpConversion::kImproved,
                                 q, sigma, eps),
                max_steps))
            .AddCell(StepsAdmitted(
                AccountingConfig("pld_fft", privacy::RdpConversion::kClassic,
                                 q, sigma, eps),
                max_steps))
            .AddCell(StepsAdmitted(
                AccountingConfig("mog", privacy::RdpConversion::kClassic, q,
                                 sigma, eps),
                max_steps));
        std::printf(".");
        std::fflush(stdout);
      }
    }
  }
  std::printf("\n\n");
  table.PrintAligned(std::cout);

  // Group-level grid (Section 4.2 Case 2 meets Ganesh's MoG analysis):
  // the effective multiplier already normalizes by the joint sensitivity
  // ω·C, and participation is all-or-nothing (the samplers draw whole
  // users and the grouper places all ω parts of every sampled one), so
  // BOTH columns are flat in ω. The mog column composes the exact
  // dominating-pair PLD of that law instead of the RDP bound — strictly
  // tighter in every cell — and is the only column defined for
  // fixed-batch sampling at all.
  std::printf(
      "\n== Group-level grid: steps admitted at eps=2 "
      "(q=0.06, sigma=2.5, N=%lld) ==\n\n",
      static_cast<long long>(kPopulation));
  TablePrinter grid({"scheme", "omega", "rdp_classic", "mog"});
  for (const core::SamplingScheme scheme :
       {core::SamplingScheme::kPoisson, core::SamplingScheme::kFixedBatch}) {
    for (const int32_t omega : {1, 2, 4}) {
      const auto grid_config = [&](const std::string& accountant) {
        core::PlpConfig config = AccountingConfig(
            accountant, privacy::RdpConversion::kClassic, 0.06, 2.5, 2.0);
        config.sampling_scheme = scheme;
        config.split_factor = omega;
        return config;
      };
      auto& row = grid.NewRow()
                      .AddCell(core::SamplingSchemeName(scheme))
                      .AddCell(static_cast<int64_t>(omega));
      if (scheme == core::SamplingScheme::kPoisson) {
        row.AddCell(StepsAdmitted(grid_config("rdp"), max_steps));
      } else {
        row.AddCell("n/a");  // Poisson-only accountant rejects the pairing
      }
      row.AddCell(StepsAdmitted(grid_config("mog"), max_steps));
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n\n");
  grid.PrintAligned(std::cout);
  std::printf(
      "\nClaim: the moments accountant admits far more training steps than "
      "either composition theorem at every budget — which is what makes "
      "iterative private learning feasible at all. pld_fft composes the "
      "exact privacy-loss distribution and beats the classic RDP "
      "conversion throughout; at large step counts its pessimistic "
      "grid rounding (error linear in steps) can concede the lead to the "
      "improved RDP conversion. The mog column composes the group-level "
      "Mixture-of-Gaussians PLD (Ganesh, arXiv:2401.10294) of the "
      "pipeline's all-or-nothing participation law (whole users are "
      "sampled, all omega parts of a sampled user enter the round), which "
      "under Poisson coincides with pld_fft's dominating pair at every "
      "omega. In the grid above it admits strictly more steps than the "
      "classic RDP bound in every cell — flat in omega, since sigma is "
      "already the joint-sensitivity multiplier — while also covering "
      "fixed-batch sampling, which no Poisson-only accountant may "
      "account.\n");
}

}  // namespace
}  // namespace plp::bench

int main(int argc, char** argv) {
  plp::bench::Run(argc, argv);
  return 0;
}
