// Ablation A3 (Sections 2.3 and 6): moments accountant vs classic
// composition theorems.
//
// For the paper's training regime (subsampled Gaussian mechanism with
// q ∈ {0.06, 0.10}, σ ∈ {1.5, 2.5}, δ = 2·10⁻⁴) this prints how many
// training steps each accounting method admits before a given ε budget is
// exceeded. The moments accountant (RDP) admits orders of magnitude more
// steps than naive composition and far more than advanced composition —
// the enabling observation of [Abadi et al. 2016] that PLP builds on.
//
// Usage: ablation_accounting [--seed=N] (pure math; scale-independent)

#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "common/flags.h"
#include "common/table_printer.h"
#include "privacy/gaussian_mechanism.h"
#include "privacy/rdp_accountant.h"

namespace plp::bench {
namespace {

constexpr double kDelta = 2e-4;
constexpr int64_t kMaxSteps = 200000;

int64_t StepsUnderRdp(double q, double sigma, double eps_budget,
                      privacy::RdpConversion conversion) {
  privacy::RdpAccountant accountant;
  const std::vector<double> step = accountant.StepRdp(q, sigma);
  int64_t steps = 0;
  while (steps < kMaxSteps) {
    accountant.AddPrecomputedSteps(step, 1);
    if (accountant.GetEpsilon(kDelta, conversion).value() > eps_budget) {
      break;
    }
    ++steps;
  }
  return steps;
}

int64_t StepsUnderNaive(double per_step_eps, double eps_budget) {
  return static_cast<int64_t>(eps_budget / per_step_eps);
}

int64_t StepsUnderAdvanced(double per_step_eps, double eps_budget) {
  int64_t steps = 0;
  while (steps < kMaxSteps &&
         privacy::AdvancedCompositionEpsilon(per_step_eps, steps + 1,
                                             kDelta) <= eps_budget) {
    ++steps;
  }
  return steps;
}

void Run(int argc, char** argv) {
  auto flags = plp::FlagParser::Parse(argc, argv);
  PLP_CHECK_OK(flags.status());
  std::printf(
      "== Ablation A3: steps admitted per accounting method "
      "(delta=%.0e) ==\n\n",
      kDelta);

  TablePrinter table({"q", "sigma", "eps_budget", "naive", "advanced",
                      "rdp_classic", "rdp_improved"});
  for (double q : {0.06, 0.10}) {
    for (double sigma : {1.5, 2.5}) {
      // Per-release ε of the subsampled Gaussian for the composition
      // baselines: classic bound amplified by sampling.
      const double eps0 = privacy::AmplifyBySampling(
          privacy::GaussianEpsilon(sigma, kDelta).value(), q);
      for (double eps : {1.0, 2.0, 4.0}) {
        table.NewRow()
            .AddCell(q, 2)
            .AddCell(sigma, 1)
            .AddCell(eps, 1)
            .AddCell(StepsUnderNaive(eps0, eps))
            .AddCell(StepsUnderAdvanced(eps0, eps))
            .AddCell(StepsUnderRdp(q, sigma, eps,
                                   privacy::RdpConversion::kClassic))
            .AddCell(StepsUnderRdp(q, sigma, eps,
                                   privacy::RdpConversion::kImproved));
      }
    }
  }
  table.PrintAligned(std::cout);
  std::printf(
      "\nClaim: the moments accountant admits far more training steps than "
      "either composition theorem at every budget, which is what makes "
      "iterative private learning feasible at all.\n");
}

}  // namespace
}  // namespace plp::bench

int main(int argc, char** argv) {
  plp::bench::Run(argc, argv);
  return 0;
}
