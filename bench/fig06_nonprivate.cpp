// Figure 6: non-private model performance over training epochs.
//
// Reproduces the paper's Figure 6: training loss plus validation and test
// HR@{5,10,20} as epochs progress (paper: 250 epochs, best test HR@10 of
// 29.5%; the model should generalize with no visible overfitting).
//
// Usage: fig06_nonprivate [--scale=small|paper] [--seed=N] [--epochs=N]
//                         [--eval_every=N]

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "core/nonprivate_trainer.h"

namespace plp::bench {
namespace {

void Run(int argc, char** argv) {
  auto flags = FlagParser::Parse(argc, argv);
  PLP_CHECK_OK(flags.status());
  const BenchOptions options = ParseBenchOptions(argc, argv);
  const Workload workload = BuildWorkload(options);
  PrintBanner("Figure 6: non-private model performance", options, workload);
  int64_t epochs =
      flags->GetInt("epochs", options.scale == "paper" ? 250 : 30);
  if (options.max_steps > 0) epochs = std::min(epochs, options.max_steps);
  const int64_t eval_every =
      flags->GetInt("eval_every", options.scale == "paper" ? 25 : 3);

  TablePrinter table({"epoch", "train_loss", "vali_HR@5", "vali_HR@10",
                      "vali_HR@20", "test_HR@5", "test_HR@10",
                      "test_HR@20"});
  core::NonPrivateConfig config;
  config.epochs = epochs;
  StageConfig stage = StageConfig::NonPrivate(config);
  stage.eval_every = eval_every;
  const RunOutcome outcome =
      RunAndEvaluate(stage, workload, options.seed + 1);
  for (const EvalPoint& point : outcome.trajectory) {
    table.NewRow()
        .AddCell(point.index)
        .AddCell(point.mean_loss)
        .AddCell(point.validation_hr[0])
        .AddCell(point.validation_hr[1])
        .AddCell(point.validation_hr[2])
        .AddCell(point.test_hr[0])
        .AddCell(point.test_hr[1])
        .AddCell(point.test_hr[2]);
  }
  std::printf("\n\n");
  table.PrintAligned(std::cout);
  std::printf(
      "\nrandom-embedding floor: HR@10 = %.4f; trained in %.1fs\n"
      "Paper shape: loss falls monotonically; validation and test curves "
      "track each other (no overfitting); HR@5 < HR@10 < HR@20.\n",
      RandomFloorHr10(workload, config.sgns.embedding_dim,
                      options.seed + 2),
      outcome.wall_seconds);
}

}  // namespace
}  // namespace plp::bench

int main(int argc, char** argv) {
  plp::bench::Run(argc, argv);
  return 0;
}
