// Figure 11: effect of the noise scale σ.
//
// Reproduces the paper's Figure 11: HR@10 vs σ ∈ {1.0..3.0} at λ = 4 for a
// grid of (q, ε). A small σ exhausts the budget in very few steps (poor
// accuracy, especially at small ε); a larger σ buys many more steps and
// accuracy climbs, leveling off near σ = 3.
//
// Usage: fig11_noise_scale [--scale=small|paper] [--full] [--seed=N]

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace plp::bench {
namespace {

void Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchOptions(argc, argv);
  const Workload workload = BuildWorkload(options);
  PrintBanner("Figure 11: effect of noise scale sigma", options, workload);

  struct Setting {
    double q;
    double eps;
  };
  const std::vector<Setting> settings =
      options.full
          ? std::vector<Setting>{{0.06, 2}, {0.06, 4}, {0.10, 2}, {0.10, 4}}
          : std::vector<Setting>{{0.06, 2}, {0.06, 4}};
  const std::vector<double> sigmas = {1.0, 1.5, 2.0, 2.5, 3.0};

  std::printf("lambda=4 C=0.5, random floor HR@10=%.4f\n\n",
              RandomFloorHr10(workload, 50, options.seed));
  TablePrinter table({"q", "eps", "sigma", "steps", "HR@10"});
  for (const Setting& s : settings) {
    for (double sigma : sigmas) {
      core::PlpConfig config = DefaultPlpConfig(options);
      config.sampling_probability = s.q;
      config.epsilon_budget = s.eps;
      config.noise_scale = sigma;
      const RunOutcome outcome =
          RunPrivate(config, workload, options.seed + 1);
      table.NewRow()
          .AddCell(s.q, 2)
          .AddCell(s.eps, 1)
          .AddCell(sigma, 1)
          .AddCell(outcome.steps)
          .AddCell(outcome.hit_rate_at_10);
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n\n");
  table.PrintAligned(std::cout);
  std::printf(
      "\nPaper shape: poor accuracy at low sigma (few steps fit the "
      "budget, worst at small eps); best accuracy toward sigma=3, with the "
      "curve leveling off.\n");
}

}  // namespace
}  // namespace plp::bench

int main(int argc, char** argv) {
  plp::bench::Run(argc, argv);
  return 0;
}
