// Figure 10: effect of the grouping factor λ.
//
// Reproduces the paper's Figure 10: HR@10 vs λ ∈ {1..6} under a grid of
// (q, σ) settings at ε = 2, C = 0.5. Expected shape: a pronounced accuracy
// rise as λ grows from 1, leveling off around λ = 5 (and decreasing again
// for much larger λ as per-bucket noise dominates — visible with --full,
// which extends the sweep to λ = 10).
//
// Usage: fig10_grouping [--scale=small|paper] [--full] [--seed=N]
//                       [--eps=2]

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace plp::bench {
namespace {

void Run(int argc, char** argv) {
  auto flags = FlagParser::Parse(argc, argv);
  PLP_CHECK_OK(flags.status());
  const BenchOptions options = ParseBenchOptions(argc, argv);
  const Workload workload = BuildWorkload(options);
  PrintBanner("Figure 10: effect of grouping factor lambda", options,
              workload);
  const double eps = flags->GetDouble("eps", 2.0);

  struct Setting {
    double q;
    double sigma;
  };
  const std::vector<Setting> settings =
      options.full
          ? std::vector<Setting>{{0.06, 2}, {0.06, 3}, {0.10, 2}, {0.10, 3}}
          : std::vector<Setting>{{0.06, 2}, {0.06, 3}};
  std::vector<int64_t> lambdas = {1, 2, 3, 4, 5, 6};
  if (options.full) {
    lambdas.push_back(8);
    lambdas.push_back(10);
  }

  std::printf("eps=%.1f C=0.5, random floor HR@10=%.4f\n\n", eps,
              RandomFloorHr10(workload, 50, options.seed));
  TablePrinter table({"q", "sigma", "lambda", "steps", "HR@10"});
  for (const Setting& s : settings) {
    for (int64_t lambda : lambdas) {
      core::PlpConfig config = DefaultPlpConfig(options);
      config.sampling_probability = s.q;
      config.noise_scale = s.sigma;
      config.epsilon_budget = eps;
      config.grouping_factor = static_cast<int32_t>(lambda);
      const RunOutcome outcome =
          RunPrivate(config, workload, options.seed + 1);
      table.NewRow()
          .AddCell(s.q, 2)
          .AddCell(s.sigma, 1)
          .AddCell(lambda)
          .AddCell(outcome.steps)
          .AddCell(outcome.hit_rate_at_10);
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n\n");
  table.PrintAligned(std::cout);
  std::printf(
      "\nPaper shape: pronounced HR@10 increase from lambda=1, plateau "
      "around lambda=5; per-bucket noise eventually wins for large "
      "lambda.\n");
}

}  // namespace
}  // namespace plp::bench

int main(int argc, char** argv) {
  plp::bench::Run(argc, argv);
  return 0;
}
