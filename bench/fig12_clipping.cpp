// Figure 12: effect of the l2 clipping norm C.
//
// Reproduces the paper's Figure 12: HR@10 vs the per-model clipping bound C
// for (q, λ) settings at ε = 2, σ = 2.5. Smaller C lowers sensitivity (so
// relatively less noise) and wins in the considered range — but an
// arbitrarily low C destroys the update signal; --full extends the sweep
// downward to show the turn.
//
// Usage: fig12_clipping [--scale=small|paper] [--full] [--seed=N]

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace plp::bench {
namespace {

void Run(int argc, char** argv) {
  const BenchOptions options = ParseBenchOptions(argc, argv);
  const Workload workload = BuildWorkload(options);
  PrintBanner("Figure 12: effect of l2 clipping norm C", options, workload);

  struct Setting {
    double q;
    int32_t lambda;
  };
  const std::vector<Setting> settings =
      options.full ? std::vector<Setting>{{0.06, 4}, {0.10, 4}, {0.06, 6}}
                   : std::vector<Setting>{{0.06, 4}, {0.10, 4}};
  std::vector<double> clips = {0.1, 0.3, 0.5, 0.75, 1.0};
  if (options.full) clips.insert(clips.begin(), 0.02);

  std::printf("eps=2 sigma=2.5, random floor HR@10=%.4f\n\n",
              RandomFloorHr10(workload, 50, options.seed));
  TablePrinter table({"q", "lambda", "C", "steps", "HR@10"});
  for (const Setting& s : settings) {
    for (double clip : clips) {
      core::PlpConfig config = DefaultPlpConfig(options);
      config.sampling_probability = s.q;
      config.grouping_factor = s.lambda;
      config.clip_norm = clip;
      const RunOutcome outcome =
          RunPrivate(config, workload, options.seed + 1);
      table.NewRow()
          .AddCell(s.q, 2)
          .AddCell(static_cast<int64_t>(s.lambda))
          .AddCell(clip, 2)
          .AddCell(outcome.steps)
          .AddCell(outcome.hit_rate_at_10);
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n\n");
  table.PrintAligned(std::cout);
  std::printf(
      "\nPaper shape: smaller clipping bounds do better in the considered "
      "range (negative sampling keeps gradient norms low, so aggressive "
      "clipping costs little signal while cutting sensitivity).\n");
}

}  // namespace
}  // namespace plp::bench

int main(int argc, char** argv) {
  plp::bench::Run(argc, argv);
  return 0;
}
