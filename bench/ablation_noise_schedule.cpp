// Ablation A5 (Section 7 future work): flexible budget allocation across
// learning stages.
//
// The paper's conclusions propose "flexible privacy budget allocation
// strategies across different stages of the learning process, such that
// accuracy is further improved". This bench implements the simplest such
// strategy — a linearly decaying noise scale (noisy-but-cheap early steps,
// clean-but-expensive late steps) — and compares it against the constant-σ
// schedules it interpolates, all at the same total (ε, δ) budget.
//
// Usage: ablation_noise_schedule [--scale=small|paper] [--seed=N] [--eps=2]

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace plp::bench {
namespace {

void Run(int argc, char** argv) {
  auto flags = FlagParser::Parse(argc, argv);
  PLP_CHECK_OK(flags.status());
  const BenchOptions options = ParseBenchOptions(argc, argv);
  const Workload workload = BuildWorkload(options);
  PrintBanner("Ablation A5: noise-scale schedule (budget allocation)",
              options, workload);
  const double eps = flags->GetDouble("eps", 2.0);

  struct Schedule {
    const char* name;
    double sigma0;
    double sigma_final;  // 0 = constant
    int64_t decay_steps;
  };
  const std::vector<Schedule> schedules = {
      {"constant sigma=2.5", 2.5, 0.0, 0},
      {"constant sigma=1.5", 1.5, 0.0, 0},
      {"decay 3.0 -> 1.5 over 150", 3.0, 1.5, 150},
      {"decay 2.5 -> 1.0 over 200", 2.5, 1.0, 200},
  };

  std::printf("eps=%.1f lambda=4, random floor HR@10=%.4f\n\n", eps,
              RandomFloorHr10(workload, 50, options.seed));
  TablePrinter table({"schedule", "steps", "eps_spent", "HR@10"});
  for (const Schedule& s : schedules) {
    // Stage selection by config: the schedule parameterizes the
    // NoisyAggregator's per-step σ_t and the Accountant tracks the same
    // σ_t, so every schedule is charged exactly what it injects.
    core::PlpConfig config = DefaultPlpConfig(options);
    config.epsilon_budget = eps;
    config.noise_scale = s.sigma0;
    config.noise_scale_final = s.sigma_final;
    config.noise_decay_steps = s.decay_steps;
    const RunOutcome outcome = RunAndEvaluate(
        StageConfig::Private(config), workload, options.seed + 1);
    table.NewRow()
        .AddCell(std::string(s.name))
        .AddCell(outcome.steps)
        .AddCell(outcome.epsilon_spent, 3)
        .AddCell(outcome.hit_rate_at_10);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n");
  table.PrintAligned(std::cout);
  std::printf(
      "\nClaim under test (paper future work): trading noisy-cheap early "
      "steps for clean-late steps can beat any constant schedule at the "
      "same budget.\n");
}

}  // namespace
}  // namespace plp::bench

int main(int argc, char** argv) {
  plp::bench::Run(argc, argv);
  return 0;
}
