// Figure 9: runtime improvement factor of PLP over DP-SGD vs grouping
// factor λ.
//
// Reproduces the paper's Figure 9: wall-clock time per training step of
// user-level DP-SGD divided by that of PLP at λ ∈ {2..6}, for two sampling
// ratios and two noise scales. The paper's speedup comes from computing
// q·N/λ bucket updates instead of q·N per-user updates, where each update
// pays a full model copy (Φ ← θ_t). This bench runs the paper-faithful
// dense-copy cost model (PlpConfig::dense_local_copy); the library's
// default sparse overlay makes the per-bucket fixed cost much smaller, so
// production ratios are lower — that optimization is itself a contribution
// of this reimplementation (see EXPERIMENTS.md).
//
// Usage: fig09_runtime [--scale=small|paper] [--seed=N] [--steps=N]

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"

namespace plp::bench {
namespace {

double SecondsPerStep(const core::PlpConfig& base, int32_t lambda,
                      const Workload& workload, uint64_t seed,
                      int64_t steps) {
  core::PlpConfig config = base;
  config.grouping_factor = lambda;
  config.max_steps = steps;
  config.epsilon_budget = 1e9;  // time-bound, not budget-bound
  config.dense_local_copy = true;
  StageConfig stage = StageConfig::Private(config);
  stage.evaluate = false;  // timing only — skip the hit-rate pass
  const RunOutcome outcome = RunAndEvaluate(stage, workload, seed);
  PLP_CHECK_EQ(outcome.steps, steps);
  return outcome.wall_seconds / static_cast<double>(steps);
}

void Run(int argc, char** argv) {
  auto flags = FlagParser::Parse(argc, argv);
  PLP_CHECK_OK(flags.status());
  const BenchOptions options = ParseBenchOptions(argc, argv);
  const Workload workload = BuildWorkload(options);
  PrintBanner("Figure 9: runtime factor improvement of PLP over DP-SGD",
              options, workload);
  const int64_t steps = flags->GetInt("steps", 8);

  struct Setting {
    double q;
    double sigma;
  };
  const std::vector<Setting> settings = {
      {0.06, 2.5}, {0.06, 1.5}, {0.10, 2.5}, {0.10, 1.5}};

  TablePrinter table({"q", "sigma", "lambda", "dpsgd_s/step", "plp_s/step",
                      "speedup_factor"});
  for (const Setting& s : settings) {
    core::PlpConfig base = DefaultPlpConfig(options);
    base.sampling_probability = s.q;
    base.noise_scale = s.sigma;
    const double dpsgd =
        SecondsPerStep(base, 1, workload, options.seed + 1, steps);
    for (int32_t lambda : {2, 3, 4, 5, 6}) {
      const double plp =
          SecondsPerStep(base, lambda, workload, options.seed + 1, steps);
      table.NewRow()
          .AddCell(s.q, 2)
          .AddCell(s.sigma, 1)
          .AddCell(static_cast<int64_t>(lambda))
          .AddCell(dpsgd, 4)
          .AddCell(plp, 4)
          .AddCell(dpsgd / plp, 2);
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n\n");
  table.PrintAligned(std::cout);
  std::printf(
      "\nPaper shape: PLP is faster than DP-SGD and the factor grows with "
      "lambda (paper: 1.6-2.5x at q=0.06, up to 4.8x at q=0.10).\n");
}

}  // namespace
}  // namespace plp::bench

int main(int argc, char** argv) {
  plp::bench::Run(argc, argv);
  return 0;
}
