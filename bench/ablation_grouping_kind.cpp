// Ablation A2 (Section 4.1): random vs equal-frequency grouping.
//
// The paper "noticed no statistically significant benefit in model
// accuracy from equal frequency grouping than with a random grouping" and
// therefore uses random grouping. This bench repeats both over several
// seeds and runs the same paired t-test the paper applies (p < 0.01 would
// indicate a significant difference).
//
// Usage: ablation_grouping_kind [--scale=small|paper] [--seed=N]
//                               [--repeats=N]

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "common/table_printer.h"

namespace plp::bench {
namespace {

void Run(int argc, char** argv) {
  auto flags = FlagParser::Parse(argc, argv);
  PLP_CHECK_OK(flags.status());
  const BenchOptions options = ParseBenchOptions(argc, argv);
  const Workload workload = BuildWorkload(options);
  PrintBanner("Ablation A2: random vs equal-frequency grouping", options,
              workload);
  const int64_t repeats = flags->GetInt("repeats", 4);

  std::vector<double> random_hr, balanced_hr;
  TablePrinter table({"seed", "random_HR@10", "equal_frequency_HR@10"});
  for (int64_t r = 0; r < repeats; ++r) {
    const uint64_t seed = options.seed + 1 + static_cast<uint64_t>(r);
    // Stage selection by config: both runs share every stage except the
    // Grouper implementation the config picks.
    core::PlpConfig config = DefaultPlpConfig(options);
    config.grouping = core::GroupingKind::kRandom;
    const RunOutcome a =
        RunAndEvaluate(StageConfig::Private(config), workload, seed);
    config.grouping = core::GroupingKind::kEqualFrequency;
    const RunOutcome b =
        RunAndEvaluate(StageConfig::Private(config), workload, seed);
    random_hr.push_back(a.hit_rate_at_10);
    balanced_hr.push_back(b.hit_rate_at_10);
    table.NewRow()
        .AddCell(static_cast<int64_t>(seed))
        .AddCell(a.hit_rate_at_10)
        .AddCell(b.hit_rate_at_10);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n");
  table.PrintAligned(std::cout);

  if (repeats < 2) {
    std::printf("\n(paired t-test skipped: needs --repeats >= 2)\n");
    return;
  }
  auto ttest = PairedTTest(random_hr, balanced_hr);
  PLP_CHECK_OK(ttest.status());
  std::printf(
      "\npaired t-test: mean diff %.4f, t = %.3f, p = %.3f — %s at the "
      "0.01 level.\nPaper claim: no statistically significant benefit from "
      "equal-frequency grouping.\n",
      ttest->mean_difference, ttest->t_statistic, ttest->p_value,
      ttest->p_value < 0.01 ? "SIGNIFICANT" : "not significant");
}

}  // namespace
}  // namespace plp::bench

int main(int argc, char** argv) {
  plp::bench::Run(argc, argv);
  return 0;
}
