// Figure 5: non-private model hyper-parameter tuning.
//
// Reproduces the four panels of the paper's Figure 5: validation HR@{5,10,20}
// as a function of embedding dimension, skip window, batch size and negative
// samples, all around the paper's defaults (dim=50, win=2, b=32, neg=16).
//
// Usage: fig05_hyperparams [--scale=small|paper] [--full] [--seed=N]
//                          [--epochs=N]

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/table_printer.h"
#include "core/nonprivate_trainer.h"

namespace plp::bench {
namespace {

struct Sweep {
  const char* panel;
  std::vector<int64_t> values;
  void (*apply)(core::NonPrivateConfig&, int64_t);
};

void Run(int argc, char** argv) {
  auto flags = FlagParser::Parse(argc, argv);
  PLP_CHECK_OK(flags.status());
  const BenchOptions options = ParseBenchOptions(argc, argv);
  const Workload workload = BuildWorkload(options);
  PrintBanner("Figure 5: hyper-parameter tuning (non-private)", options,
              workload);
  int64_t epochs = flags->GetInt(
      "epochs", options.scale == "paper" ? 50 : 5);
  if (options.max_steps > 0) epochs = std::min(epochs, options.max_steps);

  std::vector<Sweep> sweeps = {
      {"embedding_dim",
       options.full ? std::vector<int64_t>{16, 25, 50, 75, 100, 128}
                    : std::vector<int64_t>{25, 50, 100},
       [](core::NonPrivateConfig& c, int64_t v) {
         c.sgns.embedding_dim = static_cast<int32_t>(v);
       }},
      {"window",
       options.full ? std::vector<int64_t>{1, 2, 3, 4, 5}
                    : std::vector<int64_t>{1, 2, 4},
       [](core::NonPrivateConfig& c, int64_t v) {
         c.sgns.window = static_cast<int32_t>(v);
       }},
      {"batch_size",
       options.full ? std::vector<int64_t>{16, 32, 64, 128, 256}
                    : std::vector<int64_t>{16, 32, 128},
       [](core::NonPrivateConfig& c, int64_t v) {
         c.batch_size = static_cast<int32_t>(v);
       }},
      {"negatives",
       options.full ? std::vector<int64_t>{4, 8, 16, 32, 64}
                    : std::vector<int64_t>{4, 16, 64},
       [](core::NonPrivateConfig& c, int64_t v) {
         c.sgns.negatives = static_cast<int32_t>(v);
       }},
  };

  TablePrinter table(
      {"panel", "value", "vali_HR@5", "vali_HR@10", "vali_HR@20"});
  for (const Sweep& sweep : sweeps) {
    for (int64_t value : sweep.values) {
      core::NonPrivateConfig config;
      config.epochs = epochs;
      sweep.apply(config, value);
      const RunOutcome outcome = RunAndEvaluate(
          StageConfig::NonPrivate(config), workload, options.seed + 1);
      table.NewRow()
          .AddCell(std::string(sweep.panel))
          .AddCell(value)
          .AddCell(outcome.validation_hr[0])
          .AddCell(outcome.validation_hr[1])
          .AddCell(outcome.validation_hr[2]);
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n\n");
  table.PrintAligned(std::cout);
  std::printf("\nPaper shape: accuracy plateaus for dim in [50, 150], is "
              "stable across window/batch, and peaks near neg=16.\n");
}

}  // namespace
}  // namespace plp::bench

int main(int argc, char** argv) {
  plp::bench::Run(argc, argv);
  return 0;
}
