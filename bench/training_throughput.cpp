// training_throughput — load generator for the parallel training-step
// engine (PlpTrainer + the deterministic dense-phase ops).
//
//   training_throughput [--users=2000] [--locations=2000] [--dim=50]
//                       [--steps=20] [--threads=8] [--q=0.06] [--lambda=4]
//                       [--seed=42] [--json=BENCH_training.json]
//                       [--min_steps_per_sec=0] [--skip_baseline=false]
//
// Runs Algorithm 1 at the paper's default hyper-parameters over a
// synthetic corpus, twice: single-threaded (the pre-parallel baseline
// path) and with --threads workers. Reports steps/sec for both, the
// parallel speedup, and the per-phase wall-clock breakdown of the
// multi-threaded run (sampling/grouping, local SGD, reduction, noise,
// server apply) — so a regression in one stage can't hide inside the
// aggregate. The determinism contract means both runs produce the same
// model bits; this bench only measures time.
//
// Results print as a table and are written as JSON (--json) so CI can
// archive BENCH_training.json next to BENCH_serving.json. A positive
// --min_steps_per_sec turns the bench into a smoke gate: exit 1 when the
// multi-threaded run is slower than the floor.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "core/config.h"
#include "core/plp_trainer.h"
#include "data/fixtures.h"

namespace {

struct RunResult {
  double steps_per_sec = 0.0;
  double wall_seconds = 0.0;
  plp::core::TrainPhaseSeconds phases;
  int64_t steps = 0;
};

RunResult RunTrainer(const plp::data::TrainingCorpus& corpus,
                     plp::core::PlpConfig config, int32_t threads,
                     int64_t steps, uint64_t seed) {
  config.num_threads = threads;
  config.max_steps = steps;
  plp::core::PlpTrainer trainer(config);
  plp::Rng rng(seed);
  auto result = trainer.Train(corpus, rng);
  PLP_CHECK_OK(result.status());
  PLP_CHECK_EQ(result->steps_executed, steps);
  RunResult run;
  run.steps = result->steps_executed;
  run.wall_seconds = result->wall_seconds;
  run.steps_per_sec =
      static_cast<double>(result->steps_executed) / result->wall_seconds;
  run.phases = result->phase_seconds;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = plp::FlagParser::Parse(argc, argv);
  PLP_CHECK_OK(flags_or.status());
  const plp::FlagParser& flags = flags_or.value();

  const int32_t users = static_cast<int32_t>(flags.GetInt("users", 2000));
  const int32_t locations =
      static_cast<int32_t>(flags.GetInt("locations", 2000));
  const int32_t dim = static_cast<int32_t>(flags.GetInt("dim", 50));
  const int64_t steps = flags.GetInt("steps", 20);
  const int32_t threads = static_cast<int32_t>(flags.GetInt("threads", 8));
  const double q = flags.GetDouble("q", 0.06);
  const int32_t lambda = static_cast<int32_t>(flags.GetInt("lambda", 4));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string json_path =
      flags.GetString("json", "BENCH_training.json");
  const double min_steps_per_sec = flags.GetDouble("min_steps_per_sec", 0.0);
  const bool skip_baseline = flags.GetBool("skip_baseline", false);

  std::printf("training_throughput: users=%d L=%d dim=%d steps=%lld "
              "threads=%d q=%.3f lambda=%d\n",
              users, locations, dim, static_cast<long long>(steps), threads,
              q, lambda);

  plp::data::FixtureCorpusOptions corpus_options;
  corpus_options.num_users = users;
  corpus_options.num_locations = locations;
  corpus_options.min_tokens_per_user = 10;
  corpus_options.max_tokens_per_user = 30;
  corpus_options.neighborhood = 8;  // learnable co-visitation structure
  const plp::data::TrainingCorpus corpus =
      plp::data::MakeFixtureCorpus(seed, corpus_options);

  // Paper defaults (Section 5 / config.h) with an effectively unlimited
  // budget so the run is bounded by --steps, not ε.
  plp::core::PlpConfig config;
  config.sgns.embedding_dim = dim;
  config.sampling_probability = q;
  config.grouping_factor = lambda;
  config.epsilon_budget = 1e9;

  RunResult single;
  if (!skip_baseline) {
    single = RunTrainer(corpus, config, /*threads=*/1, steps, seed);
    std::printf("1 thread  : %6.2f steps/s  (%.2fs total)\n",
                single.steps_per_sec, single.wall_seconds);
  }
  const RunResult multi = RunTrainer(corpus, config, threads, steps, seed);
  std::printf("%d threads : %6.2f steps/s  (%.2fs total)\n", threads,
              multi.steps_per_sec, multi.wall_seconds);
  const double speedup =
      skip_baseline ? 0.0 : multi.steps_per_sec / single.steps_per_sec;
  if (!skip_baseline) std::printf("speedup   : %.2fx\n", speedup);

  const plp::core::TrainPhaseSeconds& ph = multi.phases;
  const double accounted = ph.sampling_grouping + ph.local_sgd +
                           ph.reduction + ph.noise + ph.server_apply;
  plp::TablePrinter table({"phase", "seconds", "share_pct"});
  auto add = [&](const std::string& name, double seconds) {
    table.NewRow();
    table.AddCell(name);
    table.AddCell(seconds, 4);
    table.AddCell(accounted > 0.0 ? 100.0 * seconds / accounted : 0.0, 1);
  };
  add("sampling_grouping", ph.sampling_grouping);
  add("local_sgd", ph.local_sgd);
  add("reduction", ph.reduction);
  add("noise", ph.noise);
  add("server_apply", ph.server_apply);
  table.PrintAligned(std::cout);

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"training_throughput\",\n"
       << "  \"users\": " << users << ",\n"
       << "  \"locations\": " << locations << ",\n"
       << "  \"dim\": " << dim << ",\n"
       << "  \"steps\": " << steps << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"q\": " << q << ",\n"
       << "  \"lambda\": " << lambda << ",\n"
       << "  \"steps_per_sec_single\": " << single.steps_per_sec << ",\n"
       << "  \"steps_per_sec\": " << multi.steps_per_sec << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"phase_seconds\": {\n"
       << "    \"sampling_grouping\": " << ph.sampling_grouping << ",\n"
       << "    \"local_sgd\": " << ph.local_sgd << ",\n"
       << "    \"reduction\": " << ph.reduction << ",\n"
       << "    \"noise\": " << ph.noise << ",\n"
       << "    \"server_apply\": " << ph.server_apply << "\n"
       << "  }\n"
       << "}\n";
  if (!json) {
    std::cerr << "error: cannot write " << json_path << "\n";
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());

  if (min_steps_per_sec > 0.0 && multi.steps_per_sec < min_steps_per_sec) {
    std::fprintf(stderr,
                 "FAIL: %.2f steps/s below the floor of %.2f steps/s\n",
                 multi.steps_per_sec, min_steps_per_sec);
    return 1;
  }
  return 0;
}
