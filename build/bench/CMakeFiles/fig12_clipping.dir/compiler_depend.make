# Empty compiler generated dependencies file for fig12_clipping.
# This may be replaced when dependencies are built.
