file(REMOVE_RECURSE
  "CMakeFiles/fig12_clipping.dir/fig12_clipping.cpp.o"
  "CMakeFiles/fig12_clipping.dir/fig12_clipping.cpp.o.d"
  "fig12_clipping"
  "fig12_clipping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_clipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
