
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig05_hyperparams.cpp" "bench/CMakeFiles/fig05_hyperparams.dir/fig05_hyperparams.cpp.o" "gcc" "bench/CMakeFiles/fig05_hyperparams.dir/fig05_hyperparams.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/plp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/plp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/plp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/plp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/plp_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/plp_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/sgns/CMakeFiles/plp_sgns.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
