file(REMOVE_RECURSE
  "CMakeFiles/fig05_hyperparams.dir/fig05_hyperparams.cpp.o"
  "CMakeFiles/fig05_hyperparams.dir/fig05_hyperparams.cpp.o.d"
  "fig05_hyperparams"
  "fig05_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
