# Empty dependencies file for fig05_hyperparams.
# This may be replaced when dependencies are built.
