# Empty dependencies file for ablation_accounting.
# This may be replaced when dependencies are built.
