file(REMOVE_RECURSE
  "CMakeFiles/ablation_accounting.dir/ablation_accounting.cpp.o"
  "CMakeFiles/ablation_accounting.dir/ablation_accounting.cpp.o.d"
  "ablation_accounting"
  "ablation_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
