# Empty compiler generated dependencies file for fig06_nonprivate.
# This may be replaced when dependencies are built.
