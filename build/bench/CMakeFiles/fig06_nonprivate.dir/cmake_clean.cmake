file(REMOVE_RECURSE
  "CMakeFiles/fig06_nonprivate.dir/fig06_nonprivate.cpp.o"
  "CMakeFiles/fig06_nonprivate.dir/fig06_nonprivate.cpp.o.d"
  "fig06_nonprivate"
  "fig06_nonprivate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_nonprivate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
