file(REMOVE_RECURSE
  "CMakeFiles/fig13_negative_samples.dir/fig13_negative_samples.cpp.o"
  "CMakeFiles/fig13_negative_samples.dir/fig13_negative_samples.cpp.o.d"
  "fig13_negative_samples"
  "fig13_negative_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_negative_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
