# Empty dependencies file for fig13_negative_samples.
# This may be replaced when dependencies are built.
