file(REMOVE_RECURSE
  "CMakeFiles/fig07_privacy_budget.dir/fig07_privacy_budget.cpp.o"
  "CMakeFiles/fig07_privacy_budget.dir/fig07_privacy_budget.cpp.o.d"
  "fig07_privacy_budget"
  "fig07_privacy_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_privacy_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
