# Empty compiler generated dependencies file for fig07_privacy_budget.
# This may be replaced when dependencies are built.
