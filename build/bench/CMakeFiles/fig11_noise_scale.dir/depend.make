# Empty dependencies file for fig11_noise_scale.
# This may be replaced when dependencies are built.
