# Empty dependencies file for fig08_sampling_ratio.
# This may be replaced when dependencies are built.
