# Empty compiler generated dependencies file for ablation_grouping_kind.
# This may be replaced when dependencies are built.
