file(REMOVE_RECURSE
  "CMakeFiles/ablation_grouping_kind.dir/ablation_grouping_kind.cpp.o"
  "CMakeFiles/ablation_grouping_kind.dir/ablation_grouping_kind.cpp.o.d"
  "ablation_grouping_kind"
  "ablation_grouping_kind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_grouping_kind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
