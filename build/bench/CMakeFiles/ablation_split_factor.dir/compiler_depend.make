# Empty compiler generated dependencies file for ablation_split_factor.
# This may be replaced when dependencies are built.
