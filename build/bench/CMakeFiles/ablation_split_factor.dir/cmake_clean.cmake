file(REMOVE_RECURSE
  "CMakeFiles/ablation_split_factor.dir/ablation_split_factor.cpp.o"
  "CMakeFiles/ablation_split_factor.dir/ablation_split_factor.cpp.o.d"
  "ablation_split_factor"
  "ablation_split_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_split_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
