file(REMOVE_RECURSE
  "CMakeFiles/plp_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/plp_bench_common.dir/bench_common.cc.o.d"
  "libplp_bench_common.a"
  "libplp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
