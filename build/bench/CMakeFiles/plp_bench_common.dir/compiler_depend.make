# Empty compiler generated dependencies file for plp_bench_common.
# This may be replaced when dependencies are built.
