file(REMOVE_RECURSE
  "libplp_bench_common.a"
)
