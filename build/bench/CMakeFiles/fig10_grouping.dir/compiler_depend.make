# Empty compiler generated dependencies file for fig10_grouping.
# This may be replaced when dependencies are built.
