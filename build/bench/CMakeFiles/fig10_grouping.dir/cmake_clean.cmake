file(REMOVE_RECURSE
  "CMakeFiles/fig10_grouping.dir/fig10_grouping.cpp.o"
  "CMakeFiles/fig10_grouping.dir/fig10_grouping.cpp.o.d"
  "fig10_grouping"
  "fig10_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
