# Empty compiler generated dependencies file for fig09_runtime.
# This may be replaced when dependencies are built.
