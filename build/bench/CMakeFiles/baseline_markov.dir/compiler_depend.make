# Empty compiler generated dependencies file for baseline_markov.
# This may be replaced when dependencies are built.
