file(REMOVE_RECURSE
  "CMakeFiles/baseline_markov.dir/baseline_markov.cpp.o"
  "CMakeFiles/baseline_markov.dir/baseline_markov.cpp.o.d"
  "baseline_markov"
  "baseline_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
