file(REMOVE_RECURSE
  "CMakeFiles/ablation_noise_schedule.dir/ablation_noise_schedule.cpp.o"
  "CMakeFiles/ablation_noise_schedule.dir/ablation_noise_schedule.cpp.o.d"
  "ablation_noise_schedule"
  "ablation_noise_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_noise_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
