# Empty dependencies file for ablation_noise_schedule.
# This may be replaced when dependencies are built.
