
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/markov_test.cc" "tests/CMakeFiles/plp_tests.dir/baselines/markov_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/baselines/markov_test.cc.o.d"
  "/root/repo/tests/common/flags_test.cc" "tests/CMakeFiles/plp_tests.dir/common/flags_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/common/flags_test.cc.o.d"
  "/root/repo/tests/common/logging_test.cc" "tests/CMakeFiles/plp_tests.dir/common/logging_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/common/logging_test.cc.o.d"
  "/root/repo/tests/common/math_util_test.cc" "tests/CMakeFiles/plp_tests.dir/common/math_util_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/common/math_util_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/CMakeFiles/plp_tests.dir/common/rng_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/common/rng_test.cc.o.d"
  "/root/repo/tests/common/stats_test.cc" "tests/CMakeFiles/plp_tests.dir/common/stats_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/common/stats_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/plp_tests.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/common/status_test.cc.o.d"
  "/root/repo/tests/common/table_printer_test.cc" "tests/CMakeFiles/plp_tests.dir/common/table_printer_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/common/table_printer_test.cc.o.d"
  "/root/repo/tests/common/thread_pool_test.cc" "tests/CMakeFiles/plp_tests.dir/common/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/common/thread_pool_test.cc.o.d"
  "/root/repo/tests/core/config_test.cc" "tests/CMakeFiles/plp_tests.dir/core/config_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/core/config_test.cc.o.d"
  "/root/repo/tests/core/grouping_test.cc" "tests/CMakeFiles/plp_tests.dir/core/grouping_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/core/grouping_test.cc.o.d"
  "/root/repo/tests/core/noise_schedule_test.cc" "tests/CMakeFiles/plp_tests.dir/core/noise_schedule_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/core/noise_schedule_test.cc.o.d"
  "/root/repo/tests/core/parallel_trainer_test.cc" "tests/CMakeFiles/plp_tests.dir/core/parallel_trainer_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/core/parallel_trainer_test.cc.o.d"
  "/root/repo/tests/core/plp_trainer_test.cc" "tests/CMakeFiles/plp_tests.dir/core/plp_trainer_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/core/plp_trainer_test.cc.o.d"
  "/root/repo/tests/core/privacy_invariants_test.cc" "tests/CMakeFiles/plp_tests.dir/core/privacy_invariants_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/core/privacy_invariants_test.cc.o.d"
  "/root/repo/tests/core/subsampling_test.cc" "tests/CMakeFiles/plp_tests.dir/core/subsampling_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/core/subsampling_test.cc.o.d"
  "/root/repo/tests/data/corpus_test.cc" "tests/CMakeFiles/plp_tests.dir/data/corpus_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/data/corpus_test.cc.o.d"
  "/root/repo/tests/data/dataset_test.cc" "tests/CMakeFiles/plp_tests.dir/data/dataset_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/data/dataset_test.cc.o.d"
  "/root/repo/tests/data/statistics_test.cc" "tests/CMakeFiles/plp_tests.dir/data/statistics_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/data/statistics_test.cc.o.d"
  "/root/repo/tests/data/synthetic_generator_test.cc" "tests/CMakeFiles/plp_tests.dir/data/synthetic_generator_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/data/synthetic_generator_test.cc.o.d"
  "/root/repo/tests/eval/hit_rate_test.cc" "tests/CMakeFiles/plp_tests.dir/eval/hit_rate_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/eval/hit_rate_test.cc.o.d"
  "/root/repo/tests/eval/ranking_metrics_test.cc" "tests/CMakeFiles/plp_tests.dir/eval/ranking_metrics_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/eval/ranking_metrics_test.cc.o.d"
  "/root/repo/tests/eval/recommender_test.cc" "tests/CMakeFiles/plp_tests.dir/eval/recommender_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/eval/recommender_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/plp_tests.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/optim/optimizers_test.cc" "tests/CMakeFiles/plp_tests.dir/optim/optimizers_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/optim/optimizers_test.cc.o.d"
  "/root/repo/tests/privacy/gaussian_mechanism_test.cc" "tests/CMakeFiles/plp_tests.dir/privacy/gaussian_mechanism_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/privacy/gaussian_mechanism_test.cc.o.d"
  "/root/repo/tests/privacy/geo_indistinguishability_test.cc" "tests/CMakeFiles/plp_tests.dir/privacy/geo_indistinguishability_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/privacy/geo_indistinguishability_test.cc.o.d"
  "/root/repo/tests/privacy/ledger_test.cc" "tests/CMakeFiles/plp_tests.dir/privacy/ledger_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/privacy/ledger_test.cc.o.d"
  "/root/repo/tests/privacy/rdp_accountant_test.cc" "tests/CMakeFiles/plp_tests.dir/privacy/rdp_accountant_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/privacy/rdp_accountant_test.cc.o.d"
  "/root/repo/tests/sgns/local_model_test.cc" "tests/CMakeFiles/plp_tests.dir/sgns/local_model_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/sgns/local_model_test.cc.o.d"
  "/root/repo/tests/sgns/loss_test.cc" "tests/CMakeFiles/plp_tests.dir/sgns/loss_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/sgns/loss_test.cc.o.d"
  "/root/repo/tests/sgns/model_io_test.cc" "tests/CMakeFiles/plp_tests.dir/sgns/model_io_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/sgns/model_io_test.cc.o.d"
  "/root/repo/tests/sgns/model_test.cc" "tests/CMakeFiles/plp_tests.dir/sgns/model_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/sgns/model_test.cc.o.d"
  "/root/repo/tests/sgns/pairs_test.cc" "tests/CMakeFiles/plp_tests.dir/sgns/pairs_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/sgns/pairs_test.cc.o.d"
  "/root/repo/tests/sgns/row_map_test.cc" "tests/CMakeFiles/plp_tests.dir/sgns/row_map_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/sgns/row_map_test.cc.o.d"
  "/root/repo/tests/sgns/sparse_delta_test.cc" "tests/CMakeFiles/plp_tests.dir/sgns/sparse_delta_test.cc.o" "gcc" "tests/CMakeFiles/plp_tests.dir/sgns/sparse_delta_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/plp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/plp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/plp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sgns/CMakeFiles/plp_sgns.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/plp_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/plp_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/plp_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
