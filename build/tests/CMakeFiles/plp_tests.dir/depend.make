# Empty dependencies file for plp_tests.
# This may be replaced when dependencies are built.
