file(REMOVE_RECURSE
  "CMakeFiles/plp_privacy.dir/gaussian_mechanism.cc.o"
  "CMakeFiles/plp_privacy.dir/gaussian_mechanism.cc.o.d"
  "CMakeFiles/plp_privacy.dir/geo_indistinguishability.cc.o"
  "CMakeFiles/plp_privacy.dir/geo_indistinguishability.cc.o.d"
  "CMakeFiles/plp_privacy.dir/ledger.cc.o"
  "CMakeFiles/plp_privacy.dir/ledger.cc.o.d"
  "CMakeFiles/plp_privacy.dir/rdp_accountant.cc.o"
  "CMakeFiles/plp_privacy.dir/rdp_accountant.cc.o.d"
  "libplp_privacy.a"
  "libplp_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plp_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
