
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/gaussian_mechanism.cc" "src/privacy/CMakeFiles/plp_privacy.dir/gaussian_mechanism.cc.o" "gcc" "src/privacy/CMakeFiles/plp_privacy.dir/gaussian_mechanism.cc.o.d"
  "/root/repo/src/privacy/geo_indistinguishability.cc" "src/privacy/CMakeFiles/plp_privacy.dir/geo_indistinguishability.cc.o" "gcc" "src/privacy/CMakeFiles/plp_privacy.dir/geo_indistinguishability.cc.o.d"
  "/root/repo/src/privacy/ledger.cc" "src/privacy/CMakeFiles/plp_privacy.dir/ledger.cc.o" "gcc" "src/privacy/CMakeFiles/plp_privacy.dir/ledger.cc.o.d"
  "/root/repo/src/privacy/rdp_accountant.cc" "src/privacy/CMakeFiles/plp_privacy.dir/rdp_accountant.cc.o" "gcc" "src/privacy/CMakeFiles/plp_privacy.dir/rdp_accountant.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/plp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
