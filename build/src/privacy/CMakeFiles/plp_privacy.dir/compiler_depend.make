# Empty compiler generated dependencies file for plp_privacy.
# This may be replaced when dependencies are built.
