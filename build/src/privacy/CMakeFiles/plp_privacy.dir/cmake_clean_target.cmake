file(REMOVE_RECURSE
  "libplp_privacy.a"
)
