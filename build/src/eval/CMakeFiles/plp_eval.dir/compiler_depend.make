# Empty compiler generated dependencies file for plp_eval.
# This may be replaced when dependencies are built.
