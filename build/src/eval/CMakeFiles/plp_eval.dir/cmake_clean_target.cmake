file(REMOVE_RECURSE
  "libplp_eval.a"
)
