
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/hit_rate.cc" "src/eval/CMakeFiles/plp_eval.dir/hit_rate.cc.o" "gcc" "src/eval/CMakeFiles/plp_eval.dir/hit_rate.cc.o.d"
  "/root/repo/src/eval/ranking_metrics.cc" "src/eval/CMakeFiles/plp_eval.dir/ranking_metrics.cc.o" "gcc" "src/eval/CMakeFiles/plp_eval.dir/ranking_metrics.cc.o.d"
  "/root/repo/src/eval/recommender.cc" "src/eval/CMakeFiles/plp_eval.dir/recommender.cc.o" "gcc" "src/eval/CMakeFiles/plp_eval.dir/recommender.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/plp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/plp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sgns/CMakeFiles/plp_sgns.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
