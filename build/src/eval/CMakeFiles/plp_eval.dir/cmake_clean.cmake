file(REMOVE_RECURSE
  "CMakeFiles/plp_eval.dir/hit_rate.cc.o"
  "CMakeFiles/plp_eval.dir/hit_rate.cc.o.d"
  "CMakeFiles/plp_eval.dir/ranking_metrics.cc.o"
  "CMakeFiles/plp_eval.dir/ranking_metrics.cc.o.d"
  "CMakeFiles/plp_eval.dir/recommender.cc.o"
  "CMakeFiles/plp_eval.dir/recommender.cc.o.d"
  "libplp_eval.a"
  "libplp_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plp_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
