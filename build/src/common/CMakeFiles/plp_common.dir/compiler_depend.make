# Empty compiler generated dependencies file for plp_common.
# This may be replaced when dependencies are built.
