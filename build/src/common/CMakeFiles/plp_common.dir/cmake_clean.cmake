file(REMOVE_RECURSE
  "CMakeFiles/plp_common.dir/flags.cc.o"
  "CMakeFiles/plp_common.dir/flags.cc.o.d"
  "CMakeFiles/plp_common.dir/logging.cc.o"
  "CMakeFiles/plp_common.dir/logging.cc.o.d"
  "CMakeFiles/plp_common.dir/math_util.cc.o"
  "CMakeFiles/plp_common.dir/math_util.cc.o.d"
  "CMakeFiles/plp_common.dir/rng.cc.o"
  "CMakeFiles/plp_common.dir/rng.cc.o.d"
  "CMakeFiles/plp_common.dir/stats.cc.o"
  "CMakeFiles/plp_common.dir/stats.cc.o.d"
  "CMakeFiles/plp_common.dir/status.cc.o"
  "CMakeFiles/plp_common.dir/status.cc.o.d"
  "CMakeFiles/plp_common.dir/table_printer.cc.o"
  "CMakeFiles/plp_common.dir/table_printer.cc.o.d"
  "CMakeFiles/plp_common.dir/thread_pool.cc.o"
  "CMakeFiles/plp_common.dir/thread_pool.cc.o.d"
  "libplp_common.a"
  "libplp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
