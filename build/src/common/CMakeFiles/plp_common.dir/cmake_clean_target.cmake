file(REMOVE_RECURSE
  "libplp_common.a"
)
