file(REMOVE_RECURSE
  "CMakeFiles/plp_optim.dir/optimizers.cc.o"
  "CMakeFiles/plp_optim.dir/optimizers.cc.o.d"
  "libplp_optim.a"
  "libplp_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plp_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
