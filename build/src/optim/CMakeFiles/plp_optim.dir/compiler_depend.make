# Empty compiler generated dependencies file for plp_optim.
# This may be replaced when dependencies are built.
