file(REMOVE_RECURSE
  "libplp_optim.a"
)
