file(REMOVE_RECURSE
  "libplp_core.a"
)
