# Empty compiler generated dependencies file for plp_core.
# This may be replaced when dependencies are built.
