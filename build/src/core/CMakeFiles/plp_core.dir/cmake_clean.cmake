file(REMOVE_RECURSE
  "CMakeFiles/plp_core.dir/config.cc.o"
  "CMakeFiles/plp_core.dir/config.cc.o.d"
  "CMakeFiles/plp_core.dir/grouping.cc.o"
  "CMakeFiles/plp_core.dir/grouping.cc.o.d"
  "CMakeFiles/plp_core.dir/nonprivate_trainer.cc.o"
  "CMakeFiles/plp_core.dir/nonprivate_trainer.cc.o.d"
  "CMakeFiles/plp_core.dir/plp_trainer.cc.o"
  "CMakeFiles/plp_core.dir/plp_trainer.cc.o.d"
  "libplp_core.a"
  "libplp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
