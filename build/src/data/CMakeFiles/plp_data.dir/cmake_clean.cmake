file(REMOVE_RECURSE
  "CMakeFiles/plp_data.dir/corpus.cc.o"
  "CMakeFiles/plp_data.dir/corpus.cc.o.d"
  "CMakeFiles/plp_data.dir/dataset.cc.o"
  "CMakeFiles/plp_data.dir/dataset.cc.o.d"
  "CMakeFiles/plp_data.dir/statistics.cc.o"
  "CMakeFiles/plp_data.dir/statistics.cc.o.d"
  "CMakeFiles/plp_data.dir/synthetic_generator.cc.o"
  "CMakeFiles/plp_data.dir/synthetic_generator.cc.o.d"
  "libplp_data.a"
  "libplp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
