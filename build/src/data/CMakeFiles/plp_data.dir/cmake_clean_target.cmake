file(REMOVE_RECURSE
  "libplp_data.a"
)
