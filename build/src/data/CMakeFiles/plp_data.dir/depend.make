# Empty dependencies file for plp_data.
# This may be replaced when dependencies are built.
