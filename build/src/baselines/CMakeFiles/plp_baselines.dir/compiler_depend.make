# Empty compiler generated dependencies file for plp_baselines.
# This may be replaced when dependencies are built.
