file(REMOVE_RECURSE
  "CMakeFiles/plp_baselines.dir/markov.cc.o"
  "CMakeFiles/plp_baselines.dir/markov.cc.o.d"
  "libplp_baselines.a"
  "libplp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
