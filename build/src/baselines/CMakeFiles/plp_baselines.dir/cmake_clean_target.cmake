file(REMOVE_RECURSE
  "libplp_baselines.a"
)
