
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgns/local_model.cc" "src/sgns/CMakeFiles/plp_sgns.dir/local_model.cc.o" "gcc" "src/sgns/CMakeFiles/plp_sgns.dir/local_model.cc.o.d"
  "/root/repo/src/sgns/model.cc" "src/sgns/CMakeFiles/plp_sgns.dir/model.cc.o" "gcc" "src/sgns/CMakeFiles/plp_sgns.dir/model.cc.o.d"
  "/root/repo/src/sgns/model_io.cc" "src/sgns/CMakeFiles/plp_sgns.dir/model_io.cc.o" "gcc" "src/sgns/CMakeFiles/plp_sgns.dir/model_io.cc.o.d"
  "/root/repo/src/sgns/pairs.cc" "src/sgns/CMakeFiles/plp_sgns.dir/pairs.cc.o" "gcc" "src/sgns/CMakeFiles/plp_sgns.dir/pairs.cc.o.d"
  "/root/repo/src/sgns/sparse_delta.cc" "src/sgns/CMakeFiles/plp_sgns.dir/sparse_delta.cc.o" "gcc" "src/sgns/CMakeFiles/plp_sgns.dir/sparse_delta.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/plp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
