# Empty dependencies file for plp_sgns.
# This may be replaced when dependencies are built.
