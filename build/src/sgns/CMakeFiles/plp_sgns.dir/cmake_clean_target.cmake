file(REMOVE_RECURSE
  "libplp_sgns.a"
)
