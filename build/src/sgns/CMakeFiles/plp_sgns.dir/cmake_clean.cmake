file(REMOVE_RECURSE
  "CMakeFiles/plp_sgns.dir/local_model.cc.o"
  "CMakeFiles/plp_sgns.dir/local_model.cc.o.d"
  "CMakeFiles/plp_sgns.dir/model.cc.o"
  "CMakeFiles/plp_sgns.dir/model.cc.o.d"
  "CMakeFiles/plp_sgns.dir/model_io.cc.o"
  "CMakeFiles/plp_sgns.dir/model_io.cc.o.d"
  "CMakeFiles/plp_sgns.dir/pairs.cc.o"
  "CMakeFiles/plp_sgns.dir/pairs.cc.o.d"
  "CMakeFiles/plp_sgns.dir/sparse_delta.cc.o"
  "CMakeFiles/plp_sgns.dir/sparse_delta.cc.o.d"
  "libplp_sgns.a"
  "libplp_sgns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plp_sgns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
