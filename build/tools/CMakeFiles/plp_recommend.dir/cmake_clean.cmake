file(REMOVE_RECURSE
  "CMakeFiles/plp_recommend.dir/plp_recommend.cpp.o"
  "CMakeFiles/plp_recommend.dir/plp_recommend.cpp.o.d"
  "plp_recommend"
  "plp_recommend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plp_recommend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
