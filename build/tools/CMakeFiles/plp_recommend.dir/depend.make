# Empty dependencies file for plp_recommend.
# This may be replaced when dependencies are built.
