file(REMOVE_RECURSE
  "CMakeFiles/plp_train.dir/plp_train.cpp.o"
  "CMakeFiles/plp_train.dir/plp_train.cpp.o.d"
  "plp_train"
  "plp_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plp_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
