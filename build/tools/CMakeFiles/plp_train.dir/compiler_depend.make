# Empty compiler generated dependencies file for plp_train.
# This may be replaced when dependencies are built.
