file(REMOVE_RECURSE
  "CMakeFiles/private_training.dir/private_training.cpp.o"
  "CMakeFiles/private_training.dir/private_training.cpp.o.d"
  "private_training"
  "private_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
