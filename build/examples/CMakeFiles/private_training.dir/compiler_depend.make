# Empty compiler generated dependencies file for private_training.
# This may be replaced when dependencies are built.
