# Empty compiler generated dependencies file for privacy_accounting.
# This may be replaced when dependencies are built.
