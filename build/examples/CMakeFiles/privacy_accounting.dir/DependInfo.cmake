
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/privacy_accounting.cpp" "examples/CMakeFiles/privacy_accounting.dir/privacy_accounting.cpp.o" "gcc" "examples/CMakeFiles/privacy_accounting.dir/privacy_accounting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/plp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/plp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/plp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sgns/CMakeFiles/plp_sgns.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/plp_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/plp_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
