file(REMOVE_RECURSE
  "CMakeFiles/privacy_accounting.dir/privacy_accounting.cpp.o"
  "CMakeFiles/privacy_accounting.dir/privacy_accounting.cpp.o.d"
  "privacy_accounting"
  "privacy_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
