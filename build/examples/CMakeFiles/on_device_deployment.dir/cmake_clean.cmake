file(REMOVE_RECURSE
  "CMakeFiles/on_device_deployment.dir/on_device_deployment.cpp.o"
  "CMakeFiles/on_device_deployment.dir/on_device_deployment.cpp.o.d"
  "on_device_deployment"
  "on_device_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/on_device_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
