# Empty dependencies file for on_device_deployment.
# This may be replaced when dependencies are built.
