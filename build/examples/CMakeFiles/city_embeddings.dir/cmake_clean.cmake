file(REMOVE_RECURSE
  "CMakeFiles/city_embeddings.dir/city_embeddings.cpp.o"
  "CMakeFiles/city_embeddings.dir/city_embeddings.cpp.o.d"
  "city_embeddings"
  "city_embeddings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
