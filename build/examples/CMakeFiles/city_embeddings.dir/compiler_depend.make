# Empty compiler generated dependencies file for city_embeddings.
# This may be replaced when dependencies are built.
