// On-device deployment walkthrough (Section 3.3, "Model Utilization").
//
// 1. A provider trains a PLP model under user-level DP and exports only
//    the normalized embedding matrix ("to reduce communication costs,
//    only the embedding matrix is deployed").
// 2. A mobile device loads the artifact and recommends locally — neither
//    the query trajectory nor the result ever leaves the device.
// 3. If instead the device must query an untrusted provider, it obfuscates
//    its recent check-ins with geo-indistinguishability (planar Laplace,
//    Andrés et al. [3]) before sending; this example measures how much
//    recommendation quality that costs as the GeoInd ε varies.
//
// Run:  ./on_device_deployment [--seed=5] [--eps=2]

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "core/plp_trainer.h"
#include "data/corpus.h"
#include "data/synthetic_generator.h"
#include "eval/hit_rate.h"
#include "eval/recommender.h"
#include "privacy/geo_indistinguishability.h"
#include "sgns/model_io.h"

namespace {

struct Poi {
  std::vector<double> lat;
  std::vector<double> lon;
};

/// POI coordinates by dense location id (first check-in observed wins).
Poi CollectPoiCoordinates(const plp::data::CheckInDataset& dataset) {
  Poi poi;
  poi.lat.assign(static_cast<size_t>(dataset.num_locations()), 0.0);
  poi.lon.assign(static_cast<size_t>(dataset.num_locations()), 0.0);
  std::vector<char> seen(static_cast<size_t>(dataset.num_locations()), 0);
  for (int32_t u = 0; u < dataset.num_users(); ++u) {
    for (const plp::data::CheckIn& c : dataset.UserCheckIns(u)) {
      if (!seen[static_cast<size_t>(c.location)]) {
        seen[static_cast<size_t>(c.location)] = 1;
        poi.lat[static_cast<size_t>(c.location)] = c.latitude;
        poi.lon[static_cast<size_t>(c.location)] = c.longitude;
      }
    }
  }
  return poi;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = plp::FlagParser::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status() << "\n";
    return 1;
  }
  const plp::FlagParser& flags = flags_or.value();
  plp::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 5)));

  // --- Provider side: train privately, export embeddings. ---
  plp::data::SyntheticConfig data_config = plp::data::SmallSyntheticConfig();
  data_config.num_users = 900;
  data_config.num_locations = 300;
  auto dataset_or = plp::data::GenerateSyntheticCheckIns(data_config, rng);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status() << "\n";
    return 1;
  }
  plp::data::CheckInDataset dataset = dataset_or->Filter(10, 2);
  auto split_or = dataset.SplitHoldout(80, rng);
  if (!split_or.ok()) {
    std::cerr << split_or.status() << "\n";
    return 1;
  }
  auto [train_set, device_set] = std::move(split_or).value();
  auto corpus_or = plp::data::BuildCorpus(train_set);
  if (!corpus_or.ok()) {
    std::cerr << corpus_or.status() << "\n";
    return 1;
  }

  plp::core::PlpConfig train_config;
  train_config.epsilon_budget = flags.GetDouble("eps", 2.0);
  train_config.sampling_probability = 0.2;
  auto trained_or =
      plp::core::PlpTrainer(train_config).Train(*corpus_or, rng);
  if (!trained_or.ok()) {
    std::cerr << trained_or.status() << "\n";
    return 1;
  }
  std::printf("provider: trained %lld steps under (eps=%.2f, delta=%.0e) "
              "user-level DP\n",
              static_cast<long long>(trained_or->steps_executed),
              trained_or->epsilon_spent, train_config.delta);

  const std::string artifact = "/tmp/plp_embeddings.plpe";
  if (auto s = plp::sgns::SaveEmbeddings(trained_or->model, artifact);
      !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // --- Device side: load, recommend locally. ---
  auto deployed_or = plp::sgns::LoadEmbeddings(artifact);
  if (!deployed_or.ok()) {
    std::cerr << deployed_or.status() << "\n";
    return 1;
  }
  std::printf("device: downloaded %d x %d embedding matrix (%.1f KiB)\n",
              deployed_or->num_locations, deployed_or->dim,
              static_cast<double>(deployed_or->embeddings.size() * 8) /
                  1024.0);
  // The full model reconstructs an equivalent recommender; verify the
  // artifact matches the in-memory embeddings.
  const plp::eval::Recommender recommender(trained_or->model);

  const std::vector<plp::eval::EvalExample> examples =
      plp::eval::BuildLeaveOneOutExamples(device_set);
  auto hr_local = plp::eval::EvaluateHitRate(trained_or->model, examples,
                                             {10});
  if (!hr_local.ok()) {
    std::cerr << hr_local.status() << "\n";
    return 1;
  }
  std::printf("device-local recommendation (no query leaves the device): "
              "HR@10 = %.3f over %lld trajectories\n\n",
              hr_local->at(10),
              static_cast<long long>(hr_local->num_examples));

  // --- Untrusted-provider mode: obfuscate the query with GeoInd. ---
  const Poi poi = CollectPoiCoordinates(dataset);
  plp::TablePrinter table(
      {"geoind_eps_per_m", "typical_radius_m", "HR@10"});
  for (double geo_eps : {0.1, 0.02, 0.01, 0.005, 0.002}) {
    int64_t hits = 0;
    for (const plp::eval::EvalExample& ex : examples) {
      std::vector<int32_t> noisy_history;
      noisy_history.reserve(ex.history.size());
      for (int32_t l : ex.history) {
        const plp::privacy::GeoPoint truth{
            poi.lat[static_cast<size_t>(l)],
            poi.lon[static_cast<size_t>(l)]};
        auto reported =
            plp::privacy::PlanarLaplacePerturb(truth, geo_eps, rng);
        if (!reported.ok()) {
          std::cerr << reported.status() << "\n";
          return 1;
        }
        noisy_history.push_back(
            plp::privacy::NearestLocation(*reported, poi.lat, poi.lon));
      }
      for (int32_t candidate : recommender.TopK(noisy_history, 10)) {
        if (candidate == ex.label) {
          ++hits;
          break;
        }
      }
    }
    table.NewRow()
        .AddCell(geo_eps, 3)
        .AddCell(plp::privacy::PlanarLaplaceRadius(geo_eps, 0.5), 0)
        .AddCell(static_cast<double>(hits) /
                 static_cast<double>(examples.size()));
  }
  table.PrintAligned(std::cout);
  std::printf(
      "\nStronger query obfuscation (smaller GeoInd eps) degrades HR@10 "
      "toward the popularity floor — the utility price of querying an "
      "untrusted provider (Section 3.3/6).\n");
  return 0;
}
