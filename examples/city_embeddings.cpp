// City embeddings: qualitative inspection of what the skip-gram learns.
//
// Generates a synthetic city with known ground truth (each POI belongs to a
// spatial district), trains location embeddings, and then measures how well
// the embedding space recovers the city structure that was never given to
// the model: nearest neighbors of a POI should lie in the same district,
// even though the model only ever saw id sequences.
//
// Run:  ./city_embeddings [--users=600] [--locations=300] [--epochs=20]
//                         [--seed=3]

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>

#include "common/flags.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "core/nonprivate_trainer.h"
#include "data/corpus.h"
#include "data/synthetic_generator.h"
#include "eval/recommender.h"

namespace {

/// Fraction of each location's k nearest embedding neighbors that share
/// its ground-truth district.
double NeighborDistrictPurity(const plp::eval::Recommender& recommender,
                              const std::vector<int32_t>& cluster_of,
                              int32_t k) {
  double purity_sum = 0.0;
  const int32_t num_locations = recommender.num_locations();
  for (int32_t l = 0; l < num_locations; ++l) {
    const std::vector<int32_t> self = {l};
    const std::vector<int32_t> exclude = {l};
    int same = 0;
    const std::vector<int32_t> neighbors =
        recommender.TopK(self, k, exclude);
    for (int32_t n : neighbors) {
      same += cluster_of[static_cast<size_t>(n)] ==
              cluster_of[static_cast<size_t>(l)];
    }
    purity_sum += static_cast<double>(same) /
                  static_cast<double>(neighbors.size());
  }
  return purity_sum / static_cast<double>(num_locations);
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = plp::FlagParser::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status() << "\n";
    return 1;
  }
  const plp::FlagParser& flags = flags_or.value();
  plp::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 3)));

  plp::data::SyntheticConfig config = plp::data::SmallSyntheticConfig();
  config.num_users =
      static_cast<int32_t>(flags.GetInt("users", 600));
  config.num_locations =
      static_cast<int32_t>(flags.GetInt("locations", 300));
  plp::data::SyntheticGroundTruth ground_truth;
  auto dataset_or =
      plp::data::GenerateSyntheticCheckIns(config, rng, &ground_truth);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status() << "\n";
    return 1;
  }
  // No filtering here: the ground truth is aligned to the unfiltered
  // (visited) vocabulary.
  auto corpus_or = plp::data::BuildCorpus(*dataset_or);
  if (!corpus_or.ok()) {
    std::cerr << corpus_or.status() << "\n";
    return 1;
  }

  std::map<int32_t, int64_t> district_sizes;
  for (int32_t c : ground_truth.location_cluster) ++district_sizes[c];
  std::printf("city: %d POIs across %zu districts, %lld check-ins from %d "
              "users\n",
              dataset_or->num_locations(), district_sizes.size(),
              static_cast<long long>(dataset_or->num_checkins()),
              dataset_or->num_users());

  plp::core::NonPrivateConfig train_config;
  train_config.epochs = flags.GetInt("epochs", 20);
  plp::Rng train_rng(rng.NextU64());
  auto result_or = plp::core::NonPrivateTrainer(train_config)
                       .Train(*corpus_or, train_rng);
  if (!result_or.ok()) {
    std::cerr << result_or.status() << "\n";
    return 1;
  }

  const plp::eval::Recommender recommender(result_or->model);
  const double purity =
      NeighborDistrictPurity(recommender, ground_truth.location_cluster, 5);

  // Chance level: probability two random POIs share a district.
  double chance = 0.0;
  for (const auto& [district, size] : district_sizes) {
    const double p = static_cast<double>(size) /
                     static_cast<double>(dataset_or->num_locations());
    chance += p * p;
  }
  std::printf("\n5-NN district purity of learned embeddings: %.3f "
              "(chance level %.3f)\n",
              purity, chance);

  // Show a few concrete neighborhoods.
  std::printf("\nsample nearest-neighbor lists (id[district]):\n");
  for (int32_t l : {0, 7, 42}) {
    if (l >= recommender.num_locations()) continue;
    const std::vector<int32_t> self = {l};
    const std::vector<int32_t> exclude = {l};
    std::printf("  POI %d[%d] ->", l, ground_truth.location_cluster[l]);
    for (int32_t n : recommender.TopK(self, 5, exclude)) {
      std::printf(" %d[%d]", n, ground_truth.location_cluster[n]);
    }
    std::printf("\n");
  }
  std::printf("\nThe embedding space recovers the city's district "
              "structure from co-visitation alone.\n");
  return 0;
}
