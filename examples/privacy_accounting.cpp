// Privacy accounting walkthrough: how the moments accountant budgets a
// training run before any data is touched.
//
// Given (q, σ, δ) this prints the ε(δ) curve as steps compose, the number
// of steps (and data epochs) a budget admits, and the optimal Rényi order —
// everything a practitioner needs to pick PLP hyper-parameters up front.
//
// Run:  ./privacy_accounting [--q=0.06] [--sigma=2.5] [--delta=2e-4]
//                            [--eps=2] [--users=4602]

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/table_printer.h"
#include "privacy/gaussian_mechanism.h"
#include "privacy/ledger.h"
#include "privacy/rdp_accountant.h"

int main(int argc, char** argv) {
  auto flags_or = plp::FlagParser::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status() << "\n";
    return 1;
  }
  const plp::FlagParser& flags = flags_or.value();
  const double q = flags.GetDouble("q", 0.06);
  const double sigma = flags.GetDouble("sigma", 2.5);
  const double delta = flags.GetDouble("delta", 2e-4);
  const double budget = flags.GetDouble("eps", 2.0);
  const int64_t users = flags.GetInt("users", 4602);

  std::printf("subsampled Gaussian mechanism: q=%.3f sigma=%.2f "
              "delta=%.0e (N=%lld users -> ~%.0f users/step)\n\n",
              q, sigma, delta, static_cast<long long>(users),
              q * static_cast<double>(users));

  // 1. ε as a function of composed steps.
  plp::privacy::PrivacyLedger ledger(delta);
  plp::TablePrinter curve(
      {"steps", "epochs", "eps_classic", "eps_improved", "best_rdp_order"});
  const std::vector<int64_t> milestones = {1,   5,    25,   100, 250,
                                           500, 1000, 2000, 4000};
  int64_t done = 0;
  for (int64_t target : milestones) {
    while (done < target) {
      auto status = ledger.TrackStep(q, sigma);
      if (!status.ok()) {
        std::cerr << status << "\n";
        return 1;
      }
      ++done;
    }
    auto order = ledger.accountant().GetOptimalOrder(delta);
    curve.NewRow()
        .AddCell(target)
        .AddCell(static_cast<double>(target) * q, 1)
        .AddCell(ledger.CumulativeEpsilon(
                     plp::privacy::RdpConversion::kClassic),
                 3)
        .AddCell(ledger.CumulativeEpsilon(
                     plp::privacy::RdpConversion::kImproved),
                 3)
        .AddCell(order.ok() ? *order : -1);
  }
  curve.PrintAligned(std::cout);

  // 2. Steps a budget admits.
  plp::privacy::RdpAccountant accountant;
  const std::vector<double> step_rdp = accountant.StepRdp(q, sigma);
  int64_t admitted = 0;
  while (admitted < 1000000) {
    accountant.AddPrecomputedSteps(step_rdp, 1);
    auto eps = accountant.GetEpsilon(delta);
    if (!eps.ok() || *eps > budget) break;
    ++admitted;
  }
  std::printf("\nbudget eps=%.2f admits %lld steps (~%.1f data epochs at "
              "q=%.2f).\n",
              budget, static_cast<long long>(admitted),
              static_cast<double>(admitted) * q, q);

  // 3. What the classic single-shot Gaussian calibration would say.
  auto single = plp::privacy::GaussianSigma(std::min(budget, 1.0), delta,
                                            /*sensitivity=*/1.0);
  if (single.ok()) {
    std::printf(
        "for contrast, a single non-subsampled release at eps=%.2f would "
        "already need sigma=%.2f.\n",
        std::min(budget, 1.0), *single);
  }
  return 0;
}
