// Quickstart: generate a synthetic city, train a (non-private) skip-gram
// next-location model, evaluate HR@k on held-out users and print a sample
// recommendation.
//
// Run:  ./quickstart [--users=500] [--locations=400] [--epochs=25]
//                    [--seed=42]

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/rng.h"
#include "core/nonprivate_trainer.h"
#include "data/corpus.h"
#include "data/statistics.h"
#include "data/synthetic_generator.h"
#include "eval/hit_rate.h"
#include "eval/recommender.h"

int main(int argc, char** argv) {
  auto flags_or = plp::FlagParser::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status() << "\n";
    return 1;
  }
  const plp::FlagParser& flags = flags_or.value();
  plp::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));

  // 1. Data: a synthetic Foursquare-like city (see DESIGN.md).
  plp::data::SyntheticConfig data_config = plp::data::SmallSyntheticConfig();
  data_config.num_users =
      static_cast<int32_t>(flags.GetInt("users", data_config.num_users));
  data_config.num_locations = static_cast<int32_t>(
      flags.GetInt("locations", data_config.num_locations));
  auto dataset_or = plp::data::GenerateSyntheticCheckIns(data_config, rng);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status() << "\n";
    return 1;
  }
  // The paper filters users with < 10 check-ins and POIs visited by < 2
  // users (Section 5.1).
  plp::data::CheckInDataset dataset = dataset_or->Filter(10, 2);
  std::printf("%s\n", plp::data::ComputeStats(dataset).ToString().c_str());

  // 2. Hold out users for evaluation (user-disjoint, like the paper).
  const int32_t holdout = static_cast<int32_t>(
      flags.GetInt("holdout", dataset.num_users() / 10));
  auto split_or = dataset.SplitHoldout(holdout, rng);
  if (!split_or.ok()) {
    std::cerr << split_or.status() << "\n";
    return 1;
  }
  auto [train_set, test_set] = std::move(split_or).value();

  auto corpus_or = plp::data::BuildCorpus(train_set);
  if (!corpus_or.ok()) {
    std::cerr << corpus_or.status() << "\n";
    return 1;
  }

  // 3. Train the skip-gram model (paper defaults: dim 50, win 2, neg 16).
  plp::core::NonPrivateConfig train_config;
  train_config.epochs = flags.GetInt("epochs", 25);
  plp::core::NonPrivateTrainer trainer(train_config);
  auto result_or = trainer.Train(
      *corpus_or, rng,
      [](const plp::core::EpochMetrics& m, const plp::sgns::SgnsModel&) {
        if (m.epoch % 5 == 0) {
          std::printf("  epoch %3lld  loss %.4f\n",
                      static_cast<long long>(m.epoch), m.mean_loss);
        }
        return true;
      });
  if (!result_or.ok()) {
    std::cerr << result_or.status() << "\n";
    return 1;
  }
  const plp::core::NonPrivateResult& result = result_or.value();
  std::printf("trained %zu epochs in %.1fs\n", result.history.size(),
              result.wall_seconds);

  // 4. Leave-one-out evaluation on the held-out users.
  const std::vector<plp::eval::EvalExample> examples =
      plp::eval::BuildLeaveOneOutExamples(test_set);
  auto hr_or = plp::eval::EvaluateHitRate(result.model, examples, {5, 10, 20});
  if (!hr_or.ok()) {
    std::cerr << hr_or.status() << "\n";
    return 1;
  }
  std::printf("leave-one-out over %lld trajectories: HR@5 %.3f  HR@10 %.3f  "
              "HR@20 %.3f\n",
              static_cast<long long>(hr_or->num_examples), hr_or->at(5),
              hr_or->at(10), hr_or->at(20));

  // 5. A sample recommendation from the first test trajectory.
  if (!examples.empty()) {
    plp::eval::Recommender recommender(result.model);
    const auto& ex = examples.front();
    const std::vector<int32_t> top = recommender.TopK(ex.history, 5);
    std::printf("recent visits:");
    for (int32_t l : ex.history) std::printf(" %d", l);
    std::printf("\n-> recommended next:");
    for (int32_t l : top) std::printf(" %d", l);
    std::printf("   (actual next: %d)\n", ex.label);
  }
  return 0;
}
