// End-to-end user-level differentially-private training (Algorithm 1):
// generates a synthetic city, trains PLP and the DP-SGD baseline under the
// same (ε, δ) budget, and reports privacy spend and HR@10 side by side.
//
// Run:  ./private_training [--eps=2] [--sigma=2.5] [--q=0.06] [--lambda=4]
//                          [--users=500] [--locations=400] [--seed=7]

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/rng.h"
#include "core/plp_trainer.h"
#include "data/corpus.h"
#include "data/synthetic_generator.h"
#include "eval/hit_rate.h"

namespace {

struct Run {
  const char* name;
  plp::core::TrainResult result;
};

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = plp::FlagParser::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status() << "\n";
    return 1;
  }
  const plp::FlagParser& flags = flags_or.value();
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  // Dataset, filtered and split exactly like the paper (Section 5.1).
  plp::Rng data_rng(seed);
  plp::data::SyntheticConfig data_config = plp::data::SmallSyntheticConfig();
  data_config.num_users =
      static_cast<int32_t>(flags.GetInt("users", data_config.num_users));
  data_config.num_locations = static_cast<int32_t>(
      flags.GetInt("locations", data_config.num_locations));
  auto dataset_or = plp::data::GenerateSyntheticCheckIns(data_config,
                                                         data_rng);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status() << "\n";
    return 1;
  }
  plp::data::CheckInDataset dataset = dataset_or->Filter(10, 2);
  auto split_or = dataset.SplitHoldout(
      static_cast<int32_t>(flags.GetInt("holdout", dataset.num_users() / 10)),
      data_rng);
  if (!split_or.ok()) {
    std::cerr << split_or.status() << "\n";
    return 1;
  }
  auto [train_set, test_set] = std::move(split_or).value();
  auto corpus_or = plp::data::BuildCorpus(train_set);
  if (!corpus_or.ok()) {
    std::cerr << corpus_or.status() << "\n";
    return 1;
  }
  const std::vector<plp::eval::EvalExample> examples =
      plp::eval::BuildLeaveOneOutExamples(test_set);

  plp::core::PlpConfig config;
  config.epsilon_budget = flags.GetDouble("eps", 2.0);
  config.noise_scale = flags.GetDouble("sigma", 2.5);
  config.sampling_probability = flags.GetDouble("q", 0.06);
  config.grouping_factor = static_cast<int32_t>(flags.GetInt("lambda", 4));
  config.clip_norm = flags.GetDouble("clip", 0.5);
  std::printf("budget (eps=%.2f, delta=%.0e)  q=%.2f sigma=%.2f C=%.2f "
              "lambda=%d\n",
              config.epsilon_budget, config.delta,
              config.sampling_probability, config.noise_scale,
              config.clip_norm, config.grouping_factor);
  std::printf("training set: %d users, %d locations; %zu eval "
              "trajectories\n\n",
              train_set.num_users(), train_set.num_locations(),
              examples.size());

  std::vector<Run> runs;
  {
    plp::Rng rng(seed + 1);
    plp::core::PlpTrainer plp_trainer(config);
    auto r = plp_trainer.Train(
        *corpus_or, rng,
        [](const plp::core::StepMetrics& m, const plp::sgns::SgnsModel&) {
          if (m.step % 25 == 0) {
            std::printf("  [PLP] step %4lld  eps %.3f  loss %.3f  "
                        "buckets %lld\n",
                        static_cast<long long>(m.step), m.epsilon_spent,
                        m.mean_local_loss,
                        static_cast<long long>(m.num_buckets));
          }
          return true;
        });
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      return 1;
    }
    runs.push_back({"PLP", std::move(r).value()});
  }
  {
    plp::Rng rng(seed + 1);
    plp::core::DpSgdTrainer baseline(config);
    auto r = baseline.Train(*corpus_or, rng);
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      return 1;
    }
    runs.push_back({"DP-SGD", std::move(r).value()});
  }

  std::printf("\n%-8s %8s %10s %10s %10s\n", "method", "steps", "eps_spent",
              "HR@10", "seconds");
  for (const Run& run : runs) {
    auto hr = plp::eval::EvaluateHitRate(run.result.model, examples, {10});
    if (!hr.ok()) {
      std::cerr << hr.status() << "\n";
      return 1;
    }
    std::printf("%-8s %8lld %10.3f %10.3f %10.1f\n", run.name,
                static_cast<long long>(run.result.steps_executed),
                run.result.epsilon_spent, hr->at(10),
                run.result.wall_seconds);
  }
  return 0;
}
