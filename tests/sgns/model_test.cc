#include "sgns/model.h"

#include <cmath>

#include <gtest/gtest.h>
#include "common/math_util.h"

namespace plp::sgns {
namespace {

SgnsConfig SmallConfig() {
  SgnsConfig c;
  c.embedding_dim = 8;
  return c;
}

TEST(SgnsModelTest, CreateValidation) {
  Rng rng(1);
  EXPECT_FALSE(SgnsModel::Create(0, SmallConfig(), rng).ok());
  SgnsConfig bad = SmallConfig();
  bad.embedding_dim = 0;
  EXPECT_FALSE(SgnsModel::Create(10, bad, rng).ok());
  EXPECT_TRUE(SgnsModel::Create(10, SmallConfig(), rng).ok());
}

TEST(SgnsModelTest, ShapesAndParameterCount) {
  Rng rng(2);
  auto model = SgnsModel::Create(10, SmallConfig(), rng);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_locations(), 10);
  EXPECT_EQ(model->dim(), 8);
  EXPECT_EQ(model->num_parameters(), 2 * 10 * 8 + 10);
  EXPECT_EQ(model->TensorData(Tensor::kWIn).size(), 80u);
  EXPECT_EQ(model->TensorData(Tensor::kWOut).size(), 80u);
  EXPECT_EQ(model->TensorData(Tensor::kBias).size(), 10u);
  EXPECT_EQ(model->InRow(3).size(), 8u);
  EXPECT_EQ(model->OutRow(3).size(), 8u);
}

TEST(SgnsModelTest, WordToVecStyleInit) {
  // W uniform in ±0.5/dim, W' and B' zero.
  Rng rng(3);
  auto model = SgnsModel::Create(100, SmallConfig(), rng);
  ASSERT_TRUE(model.ok());
  const double bound = 0.5 / 8.0;
  bool any_nonzero = false;
  for (double w : model->TensorData(Tensor::kWIn)) {
    EXPECT_LE(std::fabs(w), bound);
    any_nonzero |= w != 0.0;
  }
  EXPECT_TRUE(any_nonzero);
  for (double w : model->TensorData(Tensor::kWOut)) EXPECT_EQ(w, 0.0);
  for (double b : model->TensorData(Tensor::kBias)) EXPECT_EQ(b, 0.0);
}

TEST(SgnsModelTest, CustomInitScale) {
  Rng rng(4);
  SgnsConfig config = SmallConfig();
  config.init_scale = 2.0;
  auto model = SgnsModel::Create(50, config, rng);
  ASSERT_TRUE(model.ok());
  double max_abs = 0.0;
  for (double w : model->TensorData(Tensor::kWIn)) {
    max_abs = std::max(max_abs, std::fabs(w));
  }
  EXPECT_GT(max_abs, 0.5);  // far beyond the default bound
  EXPECT_LE(max_abs, 2.0);
}

TEST(SgnsModelTest, RowMutationIsVisible) {
  Rng rng(5);
  auto model = SgnsModel::Create(4, SmallConfig(), rng);
  ASSERT_TRUE(model.ok());
  model->MutableInRow(2)[0] = 42.0;
  EXPECT_EQ(model->InRow(2)[0], 42.0);
  model->mutable_bias(1) = -3.0;
  EXPECT_EQ(model->bias(1), -3.0);
}

TEST(SgnsModelTest, TensorNormMatchesManual) {
  Rng rng(6);
  auto model = SgnsModel::Create(3, SmallConfig(), rng);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->TensorNorm(Tensor::kWIn),
              L2Norm(model->TensorData(Tensor::kWIn)), 1e-12);
  EXPECT_EQ(model->TensorNorm(Tensor::kWOut), 0.0);
}

TEST(SgnsModelTest, NormalizedEmbeddingsAreUnitRows) {
  Rng rng(7);
  auto model = SgnsModel::Create(20, SmallConfig(), rng);
  ASSERT_TRUE(model.ok());
  const std::vector<double> normalized = model->NormalizedEmbeddings();
  for (int32_t l = 0; l < 20; ++l) {
    const double norm =
        L2Norm({normalized.data() + static_cast<size_t>(l) * 8, 8});
    EXPECT_NEAR(norm, 1.0, 1e-12);
  }
}

TEST(SgnsModelTest, CopyIsDeep) {
  Rng rng(8);
  auto model = SgnsModel::Create(4, SmallConfig(), rng);
  ASSERT_TRUE(model.ok());
  SgnsModel copy = *model;
  copy.MutableInRow(0)[0] = 99.0;
  EXPECT_NE(model->InRow(0)[0], 99.0);
}

}  // namespace
}  // namespace plp::sgns
