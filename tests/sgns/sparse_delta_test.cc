#include "sgns/sparse_delta.h"

#include <cmath>

#include <gtest/gtest.h>
#include "common/math_util.h"
#include "common/rng.h"
#include "sgns/local_model.h"

namespace plp::sgns {
namespace {

SgnsModel MakeModel(int32_t locations, int32_t dim, uint64_t seed = 1) {
  Rng rng(seed);
  SgnsConfig config;
  config.embedding_dim = dim;
  auto model = SgnsModel::Create(locations, config, rng);
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

TEST(SparseDeltaTest, StartsEmpty) {
  SparseDelta delta(4);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.TotalNorm(), 0.0);
}

TEST(SparseDeltaTest, RowAccumulation) {
  SparseDelta delta(3);
  delta.Row(Tensor::kWIn, 2)[0] += 3.0;
  delta.Row(Tensor::kWIn, 2)[1] += 4.0;
  EXPECT_NEAR(delta.TensorNorm(Tensor::kWIn), 5.0, 1e-12);
  EXPECT_EQ(delta.NumTouchedEntries(), 1u);
}

TEST(SparseDeltaTest, BiasAccumulation) {
  SparseDelta delta(3);
  delta.AddBias(1, 2.0);
  delta.AddBias(1, 1.0);
  delta.AddBias(4, -4.0);
  EXPECT_NEAR(delta.TensorNorm(Tensor::kBias), 5.0, 1e-12);
}

TEST(SparseDeltaTest, TotalNormCombinesTensors) {
  SparseDelta delta(2);
  delta.Row(Tensor::kWIn, 0)[0] = 2.0;
  delta.Row(Tensor::kWOut, 0)[0] = 3.0;
  delta.AddBias(0, 6.0);
  EXPECT_NEAR(delta.TotalNorm(), 7.0, 1e-12);  // sqrt(4+9+36)
}

TEST(SparseDeltaTest, ScaleAndScaleTensor) {
  SparseDelta delta(2);
  delta.Row(Tensor::kWIn, 0)[0] = 2.0;
  delta.AddBias(0, 4.0);
  delta.ScaleTensor(Tensor::kBias, 0.5);
  EXPECT_NEAR(delta.TensorNorm(Tensor::kBias), 2.0, 1e-12);
  EXPECT_NEAR(delta.TensorNorm(Tensor::kWIn), 2.0, 1e-12);
  delta.Scale(2.0);
  EXPECT_NEAR(delta.TensorNorm(Tensor::kWIn), 4.0, 1e-12);
  EXPECT_NEAR(delta.TensorNorm(Tensor::kBias), 4.0, 1e-12);
}

TEST(SparseDeltaTest, ClipPerTensorNoopBelowThreshold) {
  SparseDelta delta(2);
  delta.Row(Tensor::kWIn, 0)[0] = 0.3;
  delta.ClipPerTensor(0.5);
  EXPECT_NEAR(delta.TensorNorm(Tensor::kWIn), 0.3, 1e-12);
}

TEST(SparseDeltaTest, ClipPerTensorScalesToBound) {
  SparseDelta delta(2);
  delta.Row(Tensor::kWIn, 0)[0] = 3.0;
  delta.Row(Tensor::kWIn, 0)[1] = 4.0;
  delta.Row(Tensor::kWOut, 1)[0] = 0.1;
  delta.ClipPerTensor(0.5);
  EXPECT_NEAR(delta.TensorNorm(Tensor::kWIn), 0.5, 1e-12);
  // Direction preserved: 3:4 ratio.
  double x = 0, y = 0;
  delta.ForEachRow(Tensor::kWIn, [&](int32_t, std::span<const double> row) {
    x = row[0];
    y = row[1];
  });
  EXPECT_NEAR(y / x, 4.0 / 3.0, 1e-12);
  // Small tensor untouched.
  EXPECT_NEAR(delta.TensorNorm(Tensor::kWOut), 0.1, 1e-12);
}

TEST(SparseDeltaTest, ClipPerTensorBoundsTotalByC) {
  // Per-layer clip to C/sqrt(3) guarantees total norm <= C (Section 4.1).
  const double c = 0.5;
  SparseDelta delta(4);
  Rng rng(3);
  for (int32_t r = 0; r < 10; ++r) {
    std::span<double> row = delta.Row(Tensor::kWIn, r);
    std::span<double> out = delta.Row(Tensor::kWOut, r);
    for (int d = 0; d < 4; ++d) {
      row[d] = rng.Gaussian();
      out[d] = rng.Gaussian();
    }
    delta.AddBias(r, rng.Gaussian());
  }
  delta.ClipPerTensor(c / std::sqrt(3.0));
  EXPECT_LE(delta.TotalNorm(), c + 1e-9);
}

TEST(SparseDeltaTest, ClipTotal) {
  SparseDelta delta(2);
  delta.Row(Tensor::kWIn, 0)[0] = 6.0;
  delta.AddBias(0, 8.0);
  delta.ClipTotal(5.0);
  EXPECT_NEAR(delta.TotalNorm(), 5.0, 1e-12);
  delta.ClipTotal(10.0);  // no-op below bound
  EXPECT_NEAR(delta.TotalNorm(), 5.0, 1e-12);
}

TEST(SparseDeltaTest, ApplyToMatchesAccumulateInto) {
  SgnsModel model_a = MakeModel(6, 3);
  SgnsModel model_b = model_a;

  SparseDelta delta(3);
  delta.Row(Tensor::kWIn, 1)[2] = 0.5;
  delta.Row(Tensor::kWOut, 4)[0] = -0.25;
  delta.AddBias(3, 1.5);

  // Path A: sparse apply.
  delta.ApplyTo(model_a, 2.0);
  // Path B: accumulate into dense update, then dense apply.
  DenseUpdate update(model_b);
  delta.AccumulateInto(update, 2.0);
  update.ApplyTo(model_b);

  for (int ti = 0; ti < kNumTensors; ++ti) {
    const auto t = static_cast<Tensor>(ti);
    const auto a = model_a.TensorData(t);
    const auto b = model_b.TensorData(t);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(SparseDeltaTest, ClearEmpties) {
  SparseDelta delta(2);
  delta.Row(Tensor::kWIn, 0)[0] = 1.0;
  delta.AddBias(0, 1.0);
  delta.Clear();
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.TotalNorm(), 0.0);
}

TEST(DenseUpdateTest, ZeroShape) {
  const SgnsModel model = MakeModel(5, 4);
  DenseUpdate update(model);
  EXPECT_EQ(update.TensorData(Tensor::kWIn).size(), 20u);
  EXPECT_EQ(update.TensorData(Tensor::kBias).size(), 5u);
  EXPECT_EQ(update.Norm(), 0.0);
}

TEST(DenseUpdateTest, NoiseStatistics) {
  const SgnsModel model = MakeModel(100, 50);
  DenseUpdate update(model);
  Rng rng(11);
  update.AddGaussianNoise(rng, 2.0);
  double sum = 0.0, sum_sq = 0.0;
  size_t n = 0;
  for (int ti = 0; ti < kNumTensors; ++ti) {
    for (double v : update.TensorData(static_cast<Tensor>(ti))) {
      sum += v;
      sum_sq += v * v;
      ++n;
    }
  }
  EXPECT_NEAR(sum / static_cast<double>(n), 0.0, 0.05);
  EXPECT_NEAR(sum_sq / static_cast<double>(n), 4.0, 0.1);
}

TEST(DenseUpdateTest, PerTensorNoise) {
  const SgnsModel model = MakeModel(50, 10);
  DenseUpdate update(model);
  Rng rng(13);
  update.AddGaussianNoiseToTensor(Tensor::kBias, rng, 1.0);
  EXPECT_EQ(L2Norm(update.TensorData(Tensor::kWIn)), 0.0);
  EXPECT_GT(L2Norm(update.TensorData(Tensor::kBias)), 0.0);
}

TEST(DenseUpdateTest, ScaleAndZero) {
  const SgnsModel model = MakeModel(4, 2);
  DenseUpdate update(model);
  Rng rng(17);
  update.AddGaussianNoise(rng, 1.0);
  const double norm = update.Norm();
  update.Scale(0.5);
  EXPECT_NEAR(update.Norm(), norm * 0.5, 1e-9);
  update.Zero();
  EXPECT_EQ(update.Norm(), 0.0);
}

TEST(DiffModelsTest, MatchesLocalModelExtractDelta) {
  const SgnsModel base = MakeModel(8, 4, 21);

  // Mutate a dense copy and a sparse overlay identically.
  SgnsModel dense = base;
  LocalModel overlay(base);
  dense.MutableInRow(3)[1] += 0.7;
  overlay.MutableInRow(3)[1] += 0.7;
  dense.MutableOutRow(5)[0] -= 0.2;
  overlay.MutableOutRow(5)[0] -= 0.2;
  dense.mutable_bias(2) += 1.1;
  overlay.mutable_bias(2) += 1.1;

  const SparseDelta from_diff = DiffModels(dense, base);
  const SparseDelta from_overlay = overlay.ExtractDelta();
  EXPECT_NEAR(from_diff.TotalNorm(), from_overlay.TotalNorm(), 1e-12);

  // Applying either to a fresh copy of the base gives the mutated model.
  SgnsModel rebuilt = base;
  from_diff.ApplyTo(rebuilt, 1.0);
  for (int ti = 0; ti < kNumTensors; ++ti) {
    const auto t = static_cast<Tensor>(ti);
    const auto a = rebuilt.TensorData(t);
    const auto b = dense.TensorData(t);
    for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(DiffModelsTest, IdenticalModelsGiveEmptyDelta) {
  const SgnsModel base = MakeModel(5, 3);
  EXPECT_TRUE(DiffModels(base, base).empty());
}

}  // namespace
}  // namespace plp::sgns
