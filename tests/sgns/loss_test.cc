#include "sgns/loss.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>
#include "common/rng.h"
#include "sgns/local_model.h"

namespace plp::sgns {
namespace {

constexpr int32_t kLocations = 6;
constexpr int32_t kDim = 3;

SgnsConfig TestConfig(LossKind loss) {
  SgnsConfig config;
  config.embedding_dim = kDim;
  config.negatives = 3;
  config.loss = loss;
  return config;
}

SgnsModel MakeWarmModel(uint64_t seed) {
  // Give W' and B' nonzero values so gradients flow everywhere.
  Rng rng(seed);
  SgnsConfig config = TestConfig(LossKind::kSampledSoftmax);
  auto model = SgnsModel::Create(kLocations, config, rng);
  EXPECT_TRUE(model.ok());
  for (int32_t l = 0; l < kLocations; ++l) {  // row-wise: padding stays 0.0
    for (double& v : model->MutableOutRow(l)) v = rng.Uniform(-0.3, 0.3);
  }
  for (double& v : model->MutableTensorData(Tensor::kBias)) {
    v = rng.Uniform(-0.1, 0.1);
  }
  return std::move(model).value();
}

/// Finite-difference probe. Uses ExactLossMath: the production FastLossMath
/// tables are piecewise-linear, so the FD slope of the *computed* loss
/// differs from the analytic gradient by O(table step) — far above the
/// 1e-4 tolerance below. The LUT-vs-exact error is bounded separately in
/// tests/common/math_util LUT accuracy tests.
double EvalLoss(const SgnsModel& model, std::span<const Pair> batch,
                const SgnsConfig& config, uint64_t rng_seed) {
  Rng rng(rng_seed);
  SparseDelta scratch(config.embedding_dim);
  return AccumulateBatchGradient<SgnsModel, ExactLossMath>(
             model, batch, config, kLocations, rng, scratch)
      .loss_sum;
}

class LossGradientTest : public testing::TestWithParam<LossKind> {};

TEST_P(LossGradientTest, MatchesFiniteDifferences) {
  const SgnsConfig config = TestConfig(GetParam());
  const SgnsModel model = MakeWarmModel(101);
  const std::vector<Pair> batch = {{0, 1}, {2, 3}, {4, 0}};
  constexpr uint64_t kSeed = 555;  // fixes the negative candidate draws

  Rng grad_rng(kSeed);
  SparseDelta gradient(kDim);
  const BatchStats stats = AccumulateBatchGradient<SgnsModel, ExactLossMath>(
      model, batch, config, kLocations, grad_rng, gradient);
  EXPECT_EQ(stats.num_pairs, 3);

  constexpr double kH = 1e-6;
  int checked = 0;
  auto check_entry = [&](Tensor tensor, int32_t row, int32_t d,
                         double analytic) {
    SgnsModel perturbed = model;
    // Perturb through the row accessors: with padded row storage a flat
    // row*dim+d index would land on the wrong (or padding) element.
    double& entry = tensor == Tensor::kBias
                        ? perturbed.MutableTensorData(Tensor::kBias)[
                              static_cast<size_t>(row)]
                        : (tensor == Tensor::kWIn
                               ? perturbed.MutableInRow(row)
                               : perturbed.MutableOutRow(row))[
                              static_cast<size_t>(d)];
    entry += kH;
    const double up = EvalLoss(perturbed, batch, config, kSeed);
    entry -= 2 * kH;
    const double down = EvalLoss(perturbed, batch, config, kSeed);
    const double numeric = (up - down) / (2 * kH);
    EXPECT_NEAR(analytic, numeric, 1e-4)
        << "tensor=" << static_cast<int>(tensor) << " row=" << row
        << " d=" << d;
    ++checked;
  };

  gradient.ForEachRow(Tensor::kWIn,
                      [&](int32_t row, std::span<const double> g) {
                        for (int32_t d = 0; d < kDim; ++d) {
                          check_entry(Tensor::kWIn, row, d, g[d]);
                        }
                      });
  gradient.ForEachRow(Tensor::kWOut,
                      [&](int32_t row, std::span<const double> g) {
                        for (int32_t d = 0; d < kDim; ++d) {
                          check_entry(Tensor::kWOut, row, d, g[d]);
                        }
                      });
  gradient.ForEachRow(Tensor::kBias,
                      [&](int32_t row, std::span<const double> g) {
                        check_entry(Tensor::kBias, row, 0, g[0]);
                      });
  EXPECT_GT(checked, 10);
}

INSTANTIATE_TEST_SUITE_P(BothLosses, LossGradientTest,
                         testing::Values(LossKind::kSampledSoftmax,
                                         LossKind::kSgnsLogistic),
                         [](const testing::TestParamInfo<LossKind>& info) {
                           return info.param == LossKind::kSampledSoftmax
                                      ? "SampledSoftmax"
                                      : "SgnsLogistic";
                         });

TEST(LossTest, SampledSoftmaxLossAtColdStartIsLogCandidates) {
  // At init W' = 0 and B' = 0, so every logit is 0 and the softmax over
  // neg+1 candidates is uniform: loss = log(neg + 1) exactly.
  Rng rng(7);
  SgnsConfig config = TestConfig(LossKind::kSampledSoftmax);
  auto model = SgnsModel::Create(kLocations, config, rng);
  ASSERT_TRUE(model.ok());
  const std::vector<Pair> batch = {{0, 1}};
  SparseDelta scratch(kDim);
  Rng loss_rng(9);
  const BatchStats stats = AccumulateBatchGradient(
      *model, batch, config, kLocations, loss_rng, scratch);
  EXPECT_NEAR(stats.loss_sum, std::log(4.0), 1e-12);
}

TEST(LossTest, LogisticLossAtColdStart) {
  // All logits 0: loss = (neg + 1) · log 2.
  Rng rng(7);
  SgnsConfig config = TestConfig(LossKind::kSgnsLogistic);
  auto model = SgnsModel::Create(kLocations, config, rng);
  ASSERT_TRUE(model.ok());
  const std::vector<Pair> batch = {{0, 1}};
  SparseDelta scratch(kDim);
  Rng loss_rng(9);
  const BatchStats stats = AccumulateBatchGradient(
      *model, batch, config, kLocations, loss_rng, scratch);
  EXPECT_NEAR(stats.loss_sum, 4.0 * std::log(2.0), 1e-12);
}

TEST(LossTest, GradientTouchesOnlyCandidateRows) {
  const SgnsConfig config = TestConfig(LossKind::kSampledSoftmax);
  const SgnsModel model = MakeWarmModel(33);
  const std::vector<Pair> batch = {{2, 5}};
  Rng rng(11);
  SparseDelta gradient(kDim);
  AccumulateBatchGradient(model, batch, config, kLocations, rng, gradient);
  // Exactly one input row: the target.
  size_t in_rows = 0;
  gradient.ForEachRow(Tensor::kWIn,
                      [&](int32_t row, std::span<const double>) {
                        EXPECT_EQ(row, 2);
                        ++in_rows;
                      });
  EXPECT_EQ(in_rows, 1u);
  // At most neg+1 output rows, including the true context, never the
  // target's duplicated negatives... and the true context is present.
  std::set<int32_t> out_rows;
  gradient.ForEachRow(Tensor::kWOut,
                      [&](int32_t row, std::span<const double>) {
                        out_rows.insert(row);
                      });
  EXPECT_LE(out_rows.size(), 4u);
  EXPECT_TRUE(out_rows.count(5) == 1);
}

TEST(LossTest, NegativesExcludeTrueContext) {
  // With 2 locations, every negative draw must pick the non-context one.
  SgnsConfig config = TestConfig(LossKind::kSampledSoftmax);
  config.negatives = 8;
  Rng rng(3);
  auto model = SgnsModel::Create(2, config, rng);
  ASSERT_TRUE(model.ok());
  for (int32_t l = 0; l < 2; ++l) {
    for (double& v : model->MutableOutRow(l)) v = 0.1;
  }
  const std::vector<Pair> batch = {{0, 1}};
  SparseDelta gradient(kDim);
  Rng loss_rng(5);
  AccumulateBatchGradient(*model, batch, config, /*num_locations=*/2,
                          loss_rng, gradient);
  std::set<int32_t> out_rows;
  gradient.ForEachRow(Tensor::kWOut,
                      [&](int32_t row, std::span<const double>) {
                        out_rows.insert(row);
                      });
  EXPECT_EQ(out_rows, (std::set<int32_t>{0, 1}));
}

TEST(LossTest, ApplySgdBatchReducesLossOnRepeatedBatch) {
  SgnsConfig config = TestConfig(LossKind::kSampledSoftmax);
  SgnsModel model = MakeWarmModel(77);
  const std::vector<Pair> batch = {{0, 1}, {1, 0}, {2, 3}, {3, 2}};
  Rng rng(13);
  double first_loss = 0.0, last_loss = 0.0;
  for (int iter = 0; iter < 60; ++iter) {
    const BatchStats stats =
        ApplySgdBatch(model, batch, config, kLocations, 0.2, rng);
    if (iter == 0) first_loss = stats.mean_loss();
    last_loss = stats.mean_loss();
  }
  EXPECT_LT(last_loss, first_loss * 0.8);
}

TEST(LossTest, ApplySgdBatchOnLocalModelMatchesDenseModel) {
  // The overlay path and the dense path must produce identical parameters
  // given the same RNG stream.
  const SgnsConfig config = TestConfig(LossKind::kSampledSoftmax);
  const SgnsModel base = MakeWarmModel(55);
  const std::vector<Pair> batch = {{0, 1}, {4, 2}, {3, 5}};

  SgnsModel dense = base;
  Rng rng_a(21);
  const BatchStats stats_a =
      ApplySgdBatch(dense, batch, config, kLocations, 0.1, rng_a);

  LocalModel overlay(base);
  Rng rng_b(21);
  const BatchStats stats_b =
      ApplySgdBatch(overlay, batch, config, kLocations, 0.1, rng_b);

  EXPECT_DOUBLE_EQ(stats_a.loss_sum, stats_b.loss_sum);
  const SparseDelta delta = overlay.ExtractDelta();
  SgnsModel rebuilt = base;
  delta.ApplyTo(rebuilt, 1.0);
  for (int ti = 0; ti < kNumTensors; ++ti) {
    const auto t = static_cast<Tensor>(ti);
    const auto a = dense.TensorData(t);
    const auto b = rebuilt.TensorData(t);
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i], b[i], 1e-12);
    }
  }
}

TEST(LossTest, EmptyBatchIsNoop) {
  SgnsConfig config = TestConfig(LossKind::kSampledSoftmax);
  SgnsModel model = MakeWarmModel(88);
  const SgnsModel before = model;
  Rng rng(1);
  const BatchStats stats =
      ApplySgdBatch(model, {}, config, kLocations, 0.1, rng);
  EXPECT_EQ(stats.num_pairs, 0);
  EXPECT_EQ(stats.mean_loss(), 0.0);
  for (size_t i = 0; i < model.TensorData(Tensor::kWIn).size(); ++i) {
    EXPECT_EQ(model.TensorData(Tensor::kWIn)[i],
              before.TensorData(Tensor::kWIn)[i]);
  }
}

}  // namespace
}  // namespace plp::sgns
