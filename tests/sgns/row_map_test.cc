#include "sgns/row_map.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>
#include "common/rng.h"

namespace plp::sgns {
namespace {

TEST(RowMapTest, InsertAndFind) {
  RowMap map(3);
  EXPECT_TRUE(map.empty());
  bool inserted = false;
  std::span<double> row = map.FindOrInsertZero(5, &inserted);
  EXPECT_TRUE(inserted);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 0.0);
  row[1] = 2.5;
  EXPECT_EQ(map.size(), 1u);
  const std::span<const double> found = map.Find(5);
  ASSERT_EQ(found.size(), 3u);
  EXPECT_EQ(found[1], 2.5);
}

TEST(RowMapTest, FindAbsentIsEmpty) {
  RowMap map(2);
  EXPECT_TRUE(map.Find(3).empty());
  map.FindOrInsertZero(3);
  EXPECT_TRUE(map.Find(4).empty());
  EXPECT_FALSE(map.Find(3).empty());
}

TEST(RowMapTest, SecondInsertIsNotNew) {
  RowMap map(2);
  bool inserted = false;
  map.FindOrInsertZero(7, &inserted)[0] = 1.0;
  EXPECT_TRUE(inserted);
  std::span<double> row = map.FindOrInsertZero(7, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(row[0], 1.0);  // value preserved
}

TEST(RowMapTest, GrowthPreservesContents) {
  RowMap map(4);
  for (int32_t k = 0; k < 1000; ++k) {
    map.FindOrInsertZero(k)[0] = static_cast<double>(k);
  }
  EXPECT_EQ(map.size(), 1000u);
  for (int32_t k = 0; k < 1000; ++k) {
    const std::span<const double> row = map.Find(k);
    ASSERT_FALSE(row.empty());
    EXPECT_EQ(row[0], static_cast<double>(k));
  }
}

TEST(RowMapTest, IterationInInsertionOrder) {
  RowMap map(1);
  const std::vector<int32_t> keys = {9, 2, 7, 0};
  for (int32_t k : keys) map.FindOrInsertZero(k)[0] = k * 10.0;
  std::vector<int32_t> seen;
  map.ForEach([&](int32_t key, std::span<const double> row) {
    seen.push_back(key);
    EXPECT_EQ(row[0], key * 10.0);
  });
  EXPECT_EQ(seen, keys);
}

TEST(RowMapTest, ForEachMutable) {
  RowMap map(2);
  map.FindOrInsertZero(1)[0] = 1.0;
  map.FindOrInsertZero(2)[0] = 2.0;
  map.ForEachMutable([](int32_t, std::span<double> row) { row[0] *= 3.0; });
  EXPECT_EQ(map.Find(1)[0], 3.0);
  EXPECT_EQ(map.Find(2)[0], 6.0);
}

TEST(RowMapTest, ClearKeepsCapacityAndEmpties) {
  RowMap map(2);
  for (int32_t k = 0; k < 100; ++k) map.FindOrInsertZero(k);
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_TRUE(map.Find(5).empty());
  map.FindOrInsertZero(5)[1] = 7.0;
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.Find(5)[1], 7.0);
}

TEST(RowMapTest, FindMutable) {
  RowMap map(2);
  map.FindOrInsertZero(4);
  std::span<double> row = map.FindMutable(4);
  ASSERT_FALSE(row.empty());
  row[0] = 5.0;
  EXPECT_EQ(map.Find(4)[0], 5.0);
  EXPECT_TRUE(map.FindMutable(99).empty());
}

TEST(RowMapTest, MatchesReferenceMapUnderRandomWorkload) {
  // Property test: random inserts/accumulates agree with std::map.
  RowMap map(4);
  std::map<int32_t, std::vector<double>> reference;
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    const int32_t key = static_cast<int32_t>(rng.UniformInt(uint64_t{500}));
    const int d = static_cast<int>(rng.UniformInt(uint64_t{4}));
    const double delta = rng.Uniform() - 0.5;
    map.FindOrInsertZero(key)[d] += delta;
    auto& ref = reference.try_emplace(key, std::vector<double>(4, 0.0))
                    .first->second;
    ref[d] += delta;
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [key, ref] : reference) {
    const std::span<const double> row = map.Find(key);
    ASSERT_FALSE(row.empty());
    for (int d = 0; d < 4; ++d) EXPECT_DOUBLE_EQ(row[d], ref[d]);
  }
}

TEST(RowMapTest, ScalarMode) {
  RowMap map(1);
  map.FindOrInsertZero(42)[0] = 1.5;
  EXPECT_EQ(map.dim(), 1);
  EXPECT_EQ(map.Find(42)[0], 1.5);
}

}  // namespace
}  // namespace plp::sgns
