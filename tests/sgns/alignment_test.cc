// Alignment and padding invariants of the padded row storage introduced
// for the vectorized local-update path:
//
//   * Every W/W' row pointer of an SgnsModel is 64-byte aligned — after
//     construction, copy, move, model-file load, and checkpoint
//     encode/decode — and the bias arena is aligned too.
//   * The padding tail of every row is exactly 0.0 through all of those
//     paths, which is what lets whole-storage-span comparisons and norms
//     keep working on padded arenas.
//   * RowMap (and therefore LocalModel overlays and SparseDelta
//     accumulators) hands out 64-byte-aligned rows across arena growth,
//     rehashing, and Clear()-then-reuse for SIMD-relevant widths
//     (dim >= 8); narrower rows are packed dense on purpose (padding a
//     dim-1 bias row to a cache line would 8x the arena), so only their
//     arena base is alignment-checked.

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "common/aligned.h"
#include "common/rng.h"
#include "sgns/local_model.h"
#include "sgns/model.h"
#include "sgns/model_io.h"
#include "sgns/row_map.h"
#include "sgns/sparse_delta.h"

namespace plp::sgns {
namespace {

// Dims straddling the 8-double stride quantum: sub-line, exact line, and
// just past it, plus the paper default.
const int32_t kDims[] = {1, 3, 7, 8, 9, 16, 50};
constexpr int32_t kLocations = 13;

SgnsModel MakeModel(int32_t dim, uint64_t seed = 42) {
  Rng rng(seed);
  SgnsConfig config;
  config.embedding_dim = dim;
  auto model = SgnsModel::Create(kLocations, config, rng);
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

void ExpectModelAlignedAndPadded(const SgnsModel& model) {
  const size_t dim = static_cast<size_t>(model.dim());
  ASSERT_EQ(model.row_stride(), PaddedRowStride(dim));
  for (int32_t l = 0; l < model.num_locations(); ++l) {
    EXPECT_TRUE(IsAligned(model.InRow(l).data())) << "in row " << l;
    EXPECT_TRUE(IsAligned(model.OutRow(l).data())) << "out row " << l;
  }
  EXPECT_TRUE(IsAligned(model.TensorData(Tensor::kBias).data()));
  // Padding stays exactly 0.0: walk the storage spans and check every slot
  // past the logical dim of each row.
  for (Tensor t : {Tensor::kWIn, Tensor::kWOut}) {
    const std::span<const double> storage = model.TensorData(t);
    ASSERT_EQ(storage.size(),
              static_cast<size_t>(model.num_locations()) * model.row_stride());
    for (size_t l = 0; l < static_cast<size_t>(model.num_locations()); ++l) {
      for (size_t d = dim; d < model.row_stride(); ++d) {
        EXPECT_EQ(storage[l * model.row_stride() + d], 0.0)
            << "tensor " << static_cast<int>(t) << " row " << l << " pad "
            << d;
      }
    }
  }
}

TEST(AlignmentTest, ModelRowsAlignedAfterCreate) {
  for (int32_t dim : kDims) {
    SCOPED_TRACE("dim=" + std::to_string(dim));
    const SgnsModel model = MakeModel(dim);
    ExpectModelAlignedAndPadded(model);
  }
}

TEST(AlignmentTest, ModelRowsAlignedAfterCopyAndMove) {
  const SgnsModel model = MakeModel(9);
  SgnsModel copy = model;
  ExpectModelAlignedAndPadded(copy);
  SgnsModel moved = std::move(copy);
  ExpectModelAlignedAndPadded(moved);
  SgnsModel assigned;
  assigned = std::move(moved);
  ExpectModelAlignedAndPadded(assigned);
}

TEST(AlignmentTest, ModelRowsAlignedAfterFileRoundTrip) {
  for (int32_t dim : {3, 50}) {
    SCOPED_TRACE("dim=" + std::to_string(dim));
    const SgnsModel model = MakeModel(dim);
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("plp_alignment_test_" + std::to_string(dim) + ".plpm"))
            .string();
    ASSERT_TRUE(SaveModel(model, path).ok());
    auto loaded = LoadModel(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    std::remove(path.c_str());
    ExpectModelAlignedAndPadded(*loaded);
    // And the logical parameters survived the padded round trip bitwise.
    for (int32_t l = 0; l < model.num_locations(); ++l) {
      for (int32_t d = 0; d < dim; ++d) {
        EXPECT_EQ(loaded->InRow(l)[d], model.InRow(l)[d]);
        EXPECT_EQ(loaded->OutRow(l)[d], model.OutRow(l)[d]);
      }
      EXPECT_EQ(loaded->bias(l), model.bias(l));
    }
  }
}

TEST(AlignmentTest, ModelRowsAlignedAfterCheckpointRoundTrip) {
  ckpt::TrainerSnapshot snapshot;
  snapshot.kind = ckpt::TrainerKind::kPrivate;
  snapshot.step = 5;
  snapshot.rng = Rng(77).SaveState();
  snapshot.ledger_blob = "ledger";
  snapshot.optimizer_name = "dp_adam";
  snapshot.optimizer_blob = "";
  snapshot.model = MakeModel(9);
  const std::string bytes = ckpt::EncodeSnapshot(snapshot);
  auto decoded = ckpt::DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  ExpectModelAlignedAndPadded(decoded->model);
  for (int32_t l = 0; l < snapshot.model.num_locations(); ++l) {
    for (int32_t d = 0; d < snapshot.model.dim(); ++d) {
      EXPECT_EQ(decoded->model.InRow(l)[d], snapshot.model.InRow(l)[d]);
      EXPECT_EQ(decoded->model.OutRow(l)[d], snapshot.model.OutRow(l)[d]);
    }
    EXPECT_EQ(decoded->model.bias(l), snapshot.model.bias(l));
  }
}

TEST(AlignmentTest, RowMapRowsAlignedAcrossGrowthAndReuse) {
  for (int32_t dim : kDims) {
    SCOPED_TRACE("dim=" + std::to_string(dim));
    // Narrow rows (dim < 8) are packed dense: successive rows cannot all
    // be 64-byte aligned, only the arena base is.
    const bool padded = dim >= 8;
    RowMap map(dim);
    // Enough inserts to force several rehashes and arena reallocations.
    for (int32_t key = 0; key < 200; ++key) {
      const std::span<double> row = map.FindOrInsertZero(key);
      if (padded) EXPECT_TRUE(IsAligned(row.data())) << "key " << key;
      EXPECT_EQ(row.size(), static_cast<size_t>(dim));
    }
    // Growth must not have moved earlier rows off alignment, and the first
    // row is the arena base — aligned at every width.
    bool first = true;
    map.ForEach([&](int32_t key, std::span<const double> row) {
      if (padded || first) EXPECT_TRUE(IsAligned(row.data())) << "key " << key;
      first = false;
    });
    // Clear keeps capacity; reused rows must still be aligned.
    map.Clear();
    for (int32_t key = 500; key < 550; ++key) {
      const std::span<double> row = map.FindOrInsertZero(key);
      if (padded || key == 500) {
        EXPECT_TRUE(IsAligned(row.data())) << "key " << key;
      }
    }
  }
}

TEST(AlignmentTest, LocalModelOverlayRowsAligned) {
  const SgnsModel base = MakeModel(9);
  LocalModel overlay(base);
  for (int32_t l = 0; l < base.num_locations(); ++l) {
    EXPECT_TRUE(IsAligned(overlay.MutableInRow(l).data())) << "in " << l;
    EXPECT_TRUE(IsAligned(overlay.MutableOutRow(l).data())) << "out " << l;
  }
}

TEST(AlignmentTest, SparseDeltaRowsAligned) {
  SparseDelta delta(9);
  for (int32_t row = 0; row < 64; ++row) {
    EXPECT_TRUE(IsAligned(delta.Row(Tensor::kWIn, row).data()));
    EXPECT_TRUE(IsAligned(delta.Row(Tensor::kWOut, row).data()));
  }
  delta.Clear();
  EXPECT_TRUE(IsAligned(delta.Row(Tensor::kWIn, 1000).data()));
}

}  // namespace
}  // namespace plp::sgns
