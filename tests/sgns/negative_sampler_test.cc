// UnigramTable: the word2vec count^0.75 negative-sampling law as an alias
// table. The table is the non-private sampling option (DESIGN.md "Data
// plane" — frequency-based candidate sampling leaks outside the DP
// accounting), so these tests pin its *distribution* (chi-square GOF
// against the smoothed law), its determinism, and its degenerate edges.

#include "sgns/negative_sampler.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sgns/loss.h"
#include "support/seeded_driver.h"
#include "support/statistical.h"

namespace plp::sgns {
namespace {

TEST(UnigramTableTest, ProbabilitiesFollowSmoothedLaw) {
  const std::vector<int64_t> counts = {100, 50, 10, 0, 1, 400, 30, 8};
  const double power = 0.75;
  const UnigramTable table(counts, power);
  ASSERT_EQ(table.num_locations(), 8);

  double total = 0.0;
  for (int64_t c : counts) {
    if (c > 0) total += std::pow(static_cast<double>(c), power);
  }
  double sum = 0.0;
  for (int32_t l = 0; l < 8; ++l) {
    const double expected =
        counts[static_cast<size_t>(l)] > 0
            ? std::pow(static_cast<double>(counts[static_cast<size_t>(l)]),
                       power) /
                  total
            : 0.0;
    EXPECT_NEAR(table.Probability(l), expected, 1e-12) << "location " << l;
    sum += table.Probability(l);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(UnigramTableTest, SamplesMatchLawByChiSquare) {
  // GOF of 60k frozen-seed draws against the count^0.75 law. A
  // zero-count location has probability exactly zero under the law, so it
  // must never be drawn — assert that separately and exclude its cell
  // (expected = 0 is not a valid chi-square cell).
  const std::vector<int64_t> counts = {100, 50, 10, 0, 1, 400, 30, 8, 60, 25};
  const UnigramTable table(counts, 0.75);
  Rng rng(test::SeedAt(0x9E6, 0));

  const int kDraws = 60000;
  std::vector<double> observed(counts.size(), 0.0);
  for (int i = 0; i < kDraws; ++i) {
    const int32_t l = table.Sample(rng);
    ASSERT_GE(l, 0);
    ASSERT_LT(l, table.num_locations());
    observed[static_cast<size_t>(l)] += 1.0;
  }
  EXPECT_EQ(observed[3], 0.0) << "zero-count location was sampled";

  std::vector<double> kept_observed, kept_expected;
  for (size_t l = 0; l < counts.size(); ++l) {
    if (counts[l] == 0) continue;
    kept_observed.push_back(observed[l]);
    kept_expected.push_back(table.Probability(static_cast<int32_t>(l)) *
                            kDraws);
  }
  EXPECT_TRUE(test::MatchesExpectedCounts(kept_observed, kept_expected));
}

TEST(UnigramTableTest, DeterministicForFixedSeed) {
  const std::vector<int64_t> counts = {9, 3, 27, 81, 1};
  const UnigramTable table(counts, 0.75);
  Rng a(42), b(42);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(table.Sample(a), table.Sample(b)) << "draw " << i;
  }
}

TEST(UnigramTableTest, AllZeroCountsFallBackToUniform) {
  const std::vector<int64_t> counts = {0, 0, 0, 0};
  const UnigramTable table(counts, 0.75);
  for (int32_t l = 0; l < 4; ++l) {
    EXPECT_NEAR(table.Probability(l), 0.25, 1e-12);
  }
  Rng rng(7);
  std::vector<int> seen(4, 0);
  for (int i = 0; i < 400; ++i) seen[static_cast<size_t>(table.Sample(rng))]++;
  for (int32_t l = 0; l < 4; ++l) EXPECT_GT(seen[l], 0) << "location " << l;
}

TEST(UnigramTableTest, SinglePoiAlwaysSamplesIt) {
  const std::vector<int64_t> counts = {17};
  const UnigramTable table(counts, 0.75);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(table.Sample(rng), 0);
}

TEST(DrawNegativeTest, NullTableMatchesUniformOverloadBitwise) {
  // The trailing table parameter must be a pure no-op when null: same
  // draws, same RNG consumption as the 3-arg uniform overload.
  Rng a(11), b(11);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(internal_loss::DrawNegative(a, 50, i % 50),
              internal_loss::DrawNegative(b, 50, i % 50, nullptr));
  }
  EXPECT_EQ(a.UniformInt(0, 1 << 30), b.UniformInt(0, 1 << 30));
}

TEST(DrawNegativeTest, TableDrawsAvoidExcludedLocation) {
  const std::vector<int64_t> counts = {100, 100, 100, 100};
  const UnigramTable table(counts, 0.75);
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    const int32_t exclude = i % 4;
    const int32_t c = internal_loss::DrawNegative(rng, 4, exclude, &table);
    EXPECT_NE(c, exclude);
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 4);
  }
}

TEST(DrawNegativeTest, SinglePoiDegenerateFallsBackLikeUniformPath) {
  // One location and it is excluded: retries cannot succeed, so the
  // fallback must mirror the uniform path's deterministic choice (0).
  const std::vector<int64_t> counts = {17};
  const UnigramTable table(counts, 0.75);
  Rng rng(5);
  EXPECT_EQ(internal_loss::DrawNegative(rng, 1, 0, &table), 0);
}

}  // namespace
}  // namespace plp::sgns
