#include "sgns/model_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>
#include "common/math_util.h"
#include "common/rng.h"

namespace plp::sgns {
namespace {

SgnsModel MakeModel(uint64_t seed) {
  Rng rng(seed);
  SgnsConfig config;
  config.embedding_dim = 7;
  auto model = SgnsModel::Create(13, config, rng);
  EXPECT_TRUE(model.ok());
  // Populate all tensors.
  for (double& v : model->MutableTensorData(Tensor::kWOut)) {
    v = rng.Uniform(-1, 1);
  }
  for (double& v : model->MutableTensorData(Tensor::kBias)) {
    v = rng.Uniform(-1, 1);
  }
  return std::move(model).value();
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(ModelIoTest, FullModelRoundTrip) {
  const SgnsModel model = MakeModel(3);
  const std::string path = TempPath("model_roundtrip.plpm");
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_locations(), 13);
  EXPECT_EQ(loaded->dim(), 7);
  for (int ti = 0; ti < kNumTensors; ++ti) {
    const auto t = static_cast<Tensor>(ti);
    const auto a = model.TensorData(t);
    const auto b = loaded->TensorData(t);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, EmbeddingsRoundTrip) {
  const SgnsModel model = MakeModel(5);
  const std::string path = TempPath("embeddings.plpe");
  ASSERT_TRUE(SaveEmbeddings(model, path).ok());
  auto deployed = LoadEmbeddings(path);
  ASSERT_TRUE(deployed.ok());
  EXPECT_EQ(deployed->num_locations, 13);
  EXPECT_EQ(deployed->dim, 7);
  const std::vector<double> expected = model.NormalizedEmbeddings();
  ASSERT_EQ(deployed->embeddings.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(deployed->embeddings[i], expected[i]);
  }
  // Rows are unit length (the deployment contract).
  for (int32_t l = 0; l < 13; ++l) {
    EXPECT_NEAR(L2Norm({deployed->embeddings.data() + l * 7, 7}), 1.0,
                1e-12);
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, MissingFile) {
  EXPECT_FALSE(LoadModel("/nonexistent/x.plpm").ok());
  EXPECT_FALSE(LoadEmbeddings("/nonexistent/x.plpe").ok());
}

TEST(ModelIoTest, RejectsWrongMagic) {
  const std::string path = TempPath("bad_magic.plpm");
  std::ofstream(path, std::ios::binary) << "NOPE1234567890";
  EXPECT_FALSE(LoadModel(path).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsKindMismatch) {
  // An embeddings file is not a full model and vice versa.
  const SgnsModel model = MakeModel(7);
  const std::string path = TempPath("kind_mismatch.bin");
  ASSERT_TRUE(SaveEmbeddings(model, path).ok());
  EXPECT_FALSE(LoadModel(path).ok());
  ASSERT_TRUE(SaveModel(model, path).ok());
  EXPECT_FALSE(LoadEmbeddings(path).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsTruncatedFile) {
  const SgnsModel model = MakeModel(9);
  const std::string path = TempPath("truncated.plpm");
  ASSERT_TRUE(SaveModel(model, path).ok());
  // Truncate the tensor payload.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary)
      << bytes.substr(0, bytes.size() / 2);
  EXPECT_FALSE(LoadModel(path).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsTrailingBytes) {
  const SgnsModel model = MakeModel(11);
  const std::string path = TempPath("trailing.plpm");
  ASSERT_TRUE(SaveModel(model, path).ok());
  std::ofstream(path, std::ios::binary | std::ios::app) << "extra";
  EXPECT_FALSE(LoadModel(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace plp::sgns
