#include "sgns/model_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>
#include "common/fault_injection.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace plp::sgns {
namespace {

SgnsModel MakeModel(uint64_t seed) {
  Rng rng(seed);
  SgnsConfig config;
  config.embedding_dim = 7;
  auto model = SgnsModel::Create(13, config, rng);
  EXPECT_TRUE(model.ok());
  // Populate all tensors — row-wise, so the storage padding stays 0.0 and
  // the round-trip comparisons over full storage spans remain valid
  // (loaders always produce zero padding).
  for (int32_t l = 0; l < model->num_locations(); ++l) {
    for (double& v : model->MutableOutRow(l)) v = rng.Uniform(-1, 1);
  }
  for (double& v : model->MutableTensorData(Tensor::kBias)) {
    v = rng.Uniform(-1, 1);
  }
  return std::move(model).value();
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(ModelIoTest, FullModelRoundTrip) {
  const SgnsModel model = MakeModel(3);
  const std::string path = TempPath("model_roundtrip.plpm");
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_locations(), 13);
  EXPECT_EQ(loaded->dim(), 7);
  for (int ti = 0; ti < kNumTensors; ++ti) {
    const auto t = static_cast<Tensor>(ti);
    const auto a = model.TensorData(t);
    const auto b = loaded->TensorData(t);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, EmbeddingsRoundTrip) {
  const SgnsModel model = MakeModel(5);
  const std::string path = TempPath("embeddings.plpe");
  ASSERT_TRUE(SaveEmbeddings(model, path).ok());
  auto deployed = LoadEmbeddings(path);
  ASSERT_TRUE(deployed.ok());
  EXPECT_EQ(deployed->num_locations, 13);
  EXPECT_EQ(deployed->dim, 7);
  const std::vector<double> expected = model.NormalizedEmbeddings();
  ASSERT_EQ(deployed->embeddings.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(deployed->embeddings[i], expected[i]);
  }
  // Rows are unit length (the deployment contract).
  for (int32_t l = 0; l < 13; ++l) {
    EXPECT_NEAR(L2Norm({deployed->embeddings.data() + l * 7, 7}), 1.0,
                1e-12);
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, MissingFile) {
  EXPECT_FALSE(LoadModel("/nonexistent/x.plpm").ok());
  EXPECT_FALSE(LoadEmbeddings("/nonexistent/x.plpe").ok());
}

TEST(ModelIoTest, RejectsWrongMagic) {
  const std::string path = TempPath("bad_magic.plpm");
  std::ofstream(path, std::ios::binary) << "NOPE1234567890";
  EXPECT_FALSE(LoadModel(path).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsKindMismatch) {
  // An embeddings file is not a full model and vice versa.
  const SgnsModel model = MakeModel(7);
  const std::string path = TempPath("kind_mismatch.bin");
  ASSERT_TRUE(SaveEmbeddings(model, path).ok());
  EXPECT_FALSE(LoadModel(path).ok());
  ASSERT_TRUE(SaveModel(model, path).ok());
  EXPECT_FALSE(LoadEmbeddings(path).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsTruncatedFile) {
  const SgnsModel model = MakeModel(9);
  const std::string path = TempPath("truncated.plpm");
  ASSERT_TRUE(SaveModel(model, path).ok());
  // Truncate the tensor payload.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary)
      << bytes.substr(0, bytes.size() / 2);
  EXPECT_FALSE(LoadModel(path).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsTrailingBytes) {
  const SgnsModel model = MakeModel(11);
  const std::string path = TempPath("trailing.plpm");
  ASSERT_TRUE(SaveModel(model, path).ok());
  std::ofstream(path, std::ios::binary | std::ios::app) << "extra";
  EXPECT_FALSE(LoadModel(path).ok());
  std::remove(path.c_str());
}

namespace {

// Hand-writes a header with attacker-controlled dimensions and a tiny
// payload; the loaders must reject it from the file length alone instead
// of trusting L·dim and attempting a huge allocation.
void WriteHostileHeader(const std::string& path, const char magic[4],
                        int32_t num_locations, int32_t dim) {
  std::ofstream out(path, std::ios::binary);
  out.write(magic, 4);
  const int32_t version = 1;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&num_locations),
            sizeof(num_locations));
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  const double filler = 0.5;
  out.write(reinterpret_cast<const char*>(&filler), sizeof(filler));
}

}  // namespace

TEST(ModelIoTest, RejectsOverflowingDimensionsWithoutAllocating) {
  const char full_magic[4] = {'P', 'L', 'P', 'M'};
  const char embed_magic[4] = {'P', 'L', 'P', 'E'};
  const std::string path = TempPath("hostile_header.bin");
  // L·dim ≈ 2^61: would overflow a naive L*dim*sizeof(double) and OOM a
  // trusting resize. Must fail fast as a truncated/corrupt file.
  WriteHostileHeader(path, full_magic, 0x7fffffff, 0x40000000);
  auto model = LoadModel(path);
  EXPECT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), plp::StatusCode::kInvalidArgument);
  WriteHostileHeader(path, embed_magic, 0x7fffffff, 0x7fffffff);
  auto embeddings = LoadEmbeddings(path);
  EXPECT_FALSE(embeddings.ok());
  EXPECT_EQ(embeddings.status().code(),
            plp::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsNonPositiveDimensions) {
  const char embed_magic[4] = {'P', 'L', 'P', 'E'};
  const std::string path = TempPath("bad_dims.plpe");
  WriteHostileHeader(path, embed_magic, -5, 7);
  EXPECT_FALSE(LoadEmbeddings(path).ok());
  WriteHostileHeader(path, embed_magic, 5, 0);
  EXPECT_FALSE(LoadEmbeddings(path).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsTruncatedEmbeddingsPayload) {
  const SgnsModel model = MakeModel(13);
  const std::string path = TempPath("truncated.plpe");
  ASSERT_TRUE(SaveEmbeddings(model, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Drop the last 3 bytes: payload is no longer a whole double array.
  std::ofstream(path, std::ios::binary)
      << bytes.substr(0, bytes.size() - 3);
  EXPECT_FALSE(LoadEmbeddings(path).ok());
  // Drop a whole row too.
  std::ofstream(path, std::ios::binary)
      << bytes.substr(0, bytes.size() - 7 * sizeof(double));
  EXPECT_FALSE(LoadEmbeddings(path).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, TornSaveLeavesPreviousArtifactIntact) {
  // The publish contract: SaveModel commits atomically, so a save that
  // dies mid-payload fails loudly and the previously published artifact
  // still loads — a serving process never observes a torn model.
  const SgnsModel published = MakeModel(17);
  const std::string path = TempPath("torn_save.plpm");
  ASSERT_TRUE(SaveModel(published, path).ok());

  const SgnsModel replacement = MakeModel(19);
  FaultInjection::Arm("atomic_file.mid_payload", FaultMode::kFail);
  EXPECT_FALSE(SaveModel(replacement, path).ok());
  FaultInjection::Disarm();

  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  for (int ti = 0; ti < kNumTensors; ++ti) {
    const auto t = static_cast<Tensor>(ti);
    const auto a = published.TensorData(t);
    const auto b = loaded->TensorData(t);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, TornEmbeddingsSaveLeavesPreviousArtifactIntact) {
  const SgnsModel published = MakeModel(21);
  const std::string path = TempPath("torn_save.plpe");
  ASSERT_TRUE(SaveEmbeddings(published, path).ok());

  FaultInjection::Arm("atomic_file.after_temp_write", FaultMode::kFail);
  EXPECT_FALSE(SaveEmbeddings(MakeModel(23), path).ok());
  FaultInjection::Disarm();

  auto deployed = LoadEmbeddings(path);
  ASSERT_TRUE(deployed.ok());
  const std::vector<double> expected = published.NormalizedEmbeddings();
  ASSERT_EQ(deployed->embeddings.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(deployed->embeddings[i], expected[i]);
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsHeaderOnlyFile) {
  const char full_magic[4] = {'P', 'L', 'P', 'M'};
  const std::string path = TempPath("header_only.plpm");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(full_magic, 4);
    const int32_t version = 1, locations = 4, dim = 3;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(reinterpret_cast<const char*>(&locations),
              sizeof(locations));
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  }
  EXPECT_FALSE(LoadModel(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace plp::sgns
