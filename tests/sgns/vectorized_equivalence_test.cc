// Equivalence battery for the vectorized SGNS local-update path:
//
//   * FastLossMath (bounded LUTs) vs ExactLossMath (libm): identical
//     candidate draws, identical gradient sparsity pattern, and values
//     within a bound derived from the pinned LUT interpolation error.
//   * The vectorized path is model-polymorphic: SgnsModel and LocalModel
//     produce bitwise-identical losses and gradients on the same stream.
//   * Scratch reuse (TrainScratch / PairBuffers) changes allocation only —
//     results are bitwise identical with and without it.
//   * ExtractDelta and DiffModels, now on SubKernel, are bitwise equal to
//     the strict scalar subtraction they replaced.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sgns/local_model.h"
#include "sgns/loss.h"
#include "sgns/model.h"
#include "sgns/sparse_delta.h"
#include "sgns/train_scratch.h"

namespace plp::sgns {
namespace {

constexpr int32_t kLocations = 40;
constexpr int32_t kDim = 9;  // odd and > 8: exercises the padded tail

SgnsConfig TestConfig(LossKind loss) {
  SgnsConfig config;
  config.embedding_dim = kDim;
  config.negatives = 6;
  config.loss = loss;
  return config;
}

SgnsModel MakeWarmModel(uint64_t seed) {
  Rng rng(seed);
  SgnsConfig config = TestConfig(LossKind::kSampledSoftmax);
  auto model = SgnsModel::Create(kLocations, config, rng);
  EXPECT_TRUE(model.ok());
  for (int32_t l = 0; l < kLocations; ++l) {
    for (double& v : model->MutableOutRow(l)) v = rng.Uniform(-0.4, 0.4);
    model->mutable_bias(l) = rng.Uniform(-0.1, 0.1);
  }
  return std::move(model).value();
}

std::vector<Pair> MakeBatch(Rng& rng, size_t n) {
  std::vector<Pair> batch;
  for (size_t i = 0; i < n; ++i) {
    const auto target =
        static_cast<int32_t>(rng.UniformInt(uint64_t{kLocations}));
    auto context = static_cast<int32_t>(rng.UniformInt(uint64_t{kLocations}));
    if (context == target) context = (context + 1) % kLocations;
    batch.push_back(Pair{target, context});
  }
  return batch;
}

/// Collects a SparseDelta into (tensor, row) → values for comparison.
struct FlatDelta {
  std::vector<std::vector<double>> rows[kNumTensors];
  std::vector<int32_t> keys[kNumTensors];
};

FlatDelta Flatten(SparseDelta& delta) {
  FlatDelta flat;
  for (int ti = 0; ti < kNumTensors; ++ti) {
    delta.ForEachRow(static_cast<Tensor>(ti),
                     [&](int32_t row, std::span<const double> vec) {
                       flat.keys[ti].push_back(row);
                       flat.rows[ti].emplace_back(vec.begin(), vec.end());
                     });
  }
  return flat;
}

class FastVsExactTest : public testing::TestWithParam<LossKind> {};

TEST_P(FastVsExactTest, GradientsAgreeWithinLutError) {
  const SgnsConfig config = TestConfig(GetParam());
  const SgnsModel model = MakeWarmModel(303);
  Rng batch_rng(17);
  const std::vector<Pair> batch = MakeBatch(batch_rng, 24);

  Rng rng_fast(99);
  SparseDelta grad_fast(kDim);
  const BatchStats fast = AccumulateBatchGradient<SgnsModel, FastLossMath>(
      model, batch, config, kLocations, rng_fast, grad_fast);

  Rng rng_exact(99);
  SparseDelta grad_exact(kDim);
  const BatchStats exact = AccumulateBatchGradient<SgnsModel, ExactLossMath>(
      model, batch, config, kLocations, rng_exact, grad_exact);

  // Identical RNG consumption → identical candidate draws, so the two
  // streams must stay aligned and the sparsity patterns must match.
  EXPECT_EQ(rng_fast.NextU64(), rng_exact.NextU64());
  EXPECT_EQ(fast.num_pairs, exact.num_pairs);

  // The per-candidate LUT error is < 2e-6 (exp) / 2e-7 (sigmoid); with
  // neg+1 = 7 candidates over 24 pairs the accumulated loss/gradient
  // divergence stays orders of magnitude under 1e-3, while any indexing or
  // fusion bug shows up at O(1).
  constexpr double kTol = 1e-3;
  EXPECT_NEAR(fast.loss_sum, exact.loss_sum, kTol);

  FlatDelta a = Flatten(grad_fast);
  FlatDelta b = Flatten(grad_exact);
  for (int ti = 0; ti < kNumTensors; ++ti) {
    ASSERT_EQ(a.keys[ti], b.keys[ti]) << "tensor " << ti;
    for (size_t r = 0; r < a.rows[ti].size(); ++r) {
      ASSERT_EQ(a.rows[ti][r].size(), b.rows[ti][r].size());
      for (size_t d = 0; d < a.rows[ti][r].size(); ++d) {
        EXPECT_NEAR(a.rows[ti][r][d], b.rows[ti][r][d], kTol)
            << "tensor " << ti << " row " << a.keys[ti][r] << " d " << d;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothLosses, FastVsExactTest,
                         testing::Values(LossKind::kSampledSoftmax,
                                         LossKind::kSgnsLogistic),
                         [](const testing::TestParamInfo<LossKind>& info) {
                           return info.param == LossKind::kSampledSoftmax
                                      ? "SampledSoftmax"
                                      : "SgnsLogistic";
                         });

TEST(VectorizedEquivalenceTest, DenseAndOverlayModelsBitwiseIdentical) {
  const SgnsConfig config = TestConfig(LossKind::kSampledSoftmax);
  const SgnsModel base = MakeWarmModel(404);
  Rng batch_rng(18);
  const std::vector<Pair> batch = MakeBatch(batch_rng, 16);

  Rng rng_a(7);
  SparseDelta grad_dense(kDim);
  const BatchStats dense = AccumulateBatchGradient(
      base, batch, config, kLocations, rng_a, grad_dense);

  LocalModel overlay(base);
  // Touch some rows first so reads hit both the overlay and fall-through
  // paths; copy-on-write copies must leave values bitwise unchanged.
  for (int32_t l = 0; l < kLocations; l += 3) overlay.MutableOutRow(l);
  Rng rng_b(7);
  SparseDelta grad_overlay(kDim);
  const BatchStats through_overlay = AccumulateBatchGradient(
      overlay, batch, config, kLocations, rng_b, grad_overlay);

  EXPECT_EQ(dense.loss_sum, through_overlay.loss_sum);
  FlatDelta a = Flatten(grad_dense);
  FlatDelta b = Flatten(grad_overlay);
  for (int ti = 0; ti < kNumTensors; ++ti) {
    ASSERT_EQ(a.keys[ti], b.keys[ti]);
    EXPECT_EQ(a.rows[ti], b.rows[ti]) << "tensor " << ti;
  }
}

TEST(VectorizedEquivalenceTest, ScratchReuseIsBitwiseTransparent) {
  const SgnsConfig config = TestConfig(LossKind::kSampledSoftmax);
  SgnsModel fresh = MakeWarmModel(505);
  SgnsModel reused = fresh;
  Rng batch_rng(19);
  const std::vector<Pair> batch = MakeBatch(batch_rng, 12);

  Rng rng_a(31);
  Rng rng_b(31);
  TrainScratch scratch(kDim);
  for (int step = 0; step < 4; ++step) {
    const BatchStats without = ApplySgdBatch(fresh, batch, config, kLocations,
                                             0.1, rng_a);
    const BatchStats with = ApplySgdBatch(reused, batch, config, kLocations,
                                          0.1, rng_b, &scratch);
    EXPECT_EQ(without.loss_sum, with.loss_sum) << "step " << step;
  }
  for (int32_t l = 0; l < kLocations; ++l) {
    for (int32_t d = 0; d < kDim; ++d) {
      EXPECT_EQ(fresh.InRow(l)[d], reused.InRow(l)[d]);
      EXPECT_EQ(fresh.OutRow(l)[d], reused.OutRow(l)[d]);
    }
    EXPECT_EQ(fresh.bias(l), reused.bias(l));
  }
}

TEST(VectorizedEquivalenceTest, ExtractDeltaBitwiseEqualsScalarSubtraction) {
  const SgnsModel base = MakeWarmModel(606);
  LocalModel overlay(base);
  Rng rng(23);
  for (int32_t l = 0; l < kLocations; l += 2) {
    for (double& v : overlay.MutableInRow(l)) v += rng.Uniform(-0.2, 0.2);
    for (double& v : overlay.MutableOutRow(l)) v += rng.Uniform(-0.2, 0.2);
    overlay.mutable_bias(l) += rng.Uniform(-0.05, 0.05);
  }
  SparseDelta delta = overlay.ExtractDelta();
  delta.ForEachRow(Tensor::kWIn, [&](int32_t l, std::span<const double> d) {
    for (int32_t i = 0; i < kDim; ++i) {
      EXPECT_EQ(d[i], overlay.InRow(l)[i] - base.InRow(l)[i])
          << "in row " << l << " d " << i;
    }
  });
  delta.ForEachRow(Tensor::kWOut, [&](int32_t l, std::span<const double> d) {
    for (int32_t i = 0; i < kDim; ++i) {
      EXPECT_EQ(d[i], overlay.OutRow(l)[i] - base.OutRow(l)[i])
          << "out row " << l << " d " << i;
    }
  });
  delta.ForEachRow(Tensor::kBias, [&](int32_t l, std::span<const double> d) {
    EXPECT_EQ(d[0], overlay.bias(l) - base.bias(l)) << "bias " << l;
  });
}

TEST(VectorizedEquivalenceTest, DiffModelsBitwiseEqualsScalarSubtraction) {
  const SgnsModel theta = MakeWarmModel(707);
  SgnsModel phi = theta;
  Rng rng(29);
  for (int32_t l = 1; l < kLocations; l += 4) {
    for (double& v : phi.MutableInRow(l)) v += rng.Uniform(-0.3, 0.3);
    for (double& v : phi.MutableOutRow(l)) v += rng.Uniform(-0.3, 0.3);
    phi.mutable_bias(l) += rng.Uniform(-0.1, 0.1);
  }
  SparseDelta delta = DiffModels(phi, theta);
  size_t expected_rows = 0;
  for (int32_t l = 1; l < kLocations; l += 4) ++expected_rows;
  size_t in_rows = 0;
  delta.ForEachRow(Tensor::kWIn, [&](int32_t l, std::span<const double> d) {
    ++in_rows;
    for (int32_t i = 0; i < kDim; ++i) {
      EXPECT_EQ(d[i], phi.InRow(l)[i] - theta.InRow(l)[i])
          << "in row " << l << " d " << i;
    }
  });
  EXPECT_EQ(in_rows, expected_rows) << "only perturbed rows may materialize";
  delta.ForEachRow(Tensor::kWOut, [&](int32_t l, std::span<const double> d) {
    for (int32_t i = 0; i < kDim; ++i) {
      EXPECT_EQ(d[i], phi.OutRow(l)[i] - theta.OutRow(l)[i])
          << "out row " << l << " d " << i;
    }
  });
  delta.ForEachRow(Tensor::kBias, [&](int32_t l, std::span<const double> d) {
    EXPECT_EQ(d[0], phi.bias(l) - theta.bias(l)) << "bias " << l;
  });
}

}  // namespace
}  // namespace plp::sgns
