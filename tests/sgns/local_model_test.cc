#include "sgns/local_model.h"

#include <gtest/gtest.h>
#include "common/rng.h"

namespace plp::sgns {
namespace {

SgnsModel MakeModel(int32_t locations, int32_t dim) {
  Rng rng(9);
  SgnsConfig config;
  config.embedding_dim = dim;
  auto model = SgnsModel::Create(locations, config, rng);
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

TEST(LocalModelTest, ReadsFallThroughToBase) {
  const SgnsModel base = MakeModel(5, 3);
  const LocalModel local(base);
  for (int32_t l = 0; l < 5; ++l) {
    const auto a = local.InRow(l);
    const auto b = base.InRow(l);
    for (int d = 0; d < 3; ++d) EXPECT_EQ(a[d], b[d]);
    EXPECT_EQ(local.bias(l), base.bias(l));
  }
  EXPECT_EQ(local.NumTouchedRows(), 0u);
}

TEST(LocalModelTest, WriteCopiesBaseValuesFirst) {
  const SgnsModel base = MakeModel(5, 3);
  LocalModel local(base);
  const double original = base.InRow(2)[1];
  std::span<double> row = local.MutableInRow(2);
  EXPECT_EQ(row[1], original);  // copy-on-write starts from base values
  row[1] += 10.0;
  EXPECT_EQ(local.InRow(2)[1], original + 10.0);
}

TEST(LocalModelTest, BaseIsNeverMutated) {
  const SgnsModel base = MakeModel(5, 3);
  const double original = base.InRow(1)[0];
  LocalModel local(base);
  local.MutableInRow(1)[0] = 99.0;
  local.MutableOutRow(1)[0] = 99.0;
  local.mutable_bias(1) = 99.0;
  EXPECT_EQ(base.InRow(1)[0], original);
  EXPECT_EQ(base.OutRow(1)[0], base.OutRow(1)[0]);
  EXPECT_EQ(base.bias(1), 0.0);
}

TEST(LocalModelTest, BiasCopyOnWrite) {
  SgnsModel base = MakeModel(4, 2);
  base.mutable_bias(3) = -2.5;
  LocalModel local(base);
  EXPECT_EQ(local.bias(3), -2.5);
  local.mutable_bias(3) += 1.0;
  EXPECT_EQ(local.bias(3), -1.5);
  EXPECT_EQ(base.bias(3), -2.5);
}

TEST(LocalModelTest, ExtractDeltaIsExactDifference) {
  const SgnsModel base = MakeModel(6, 2);
  LocalModel local(base);
  local.MutableInRow(0)[0] += 0.5;
  local.MutableOutRow(3)[1] -= 0.25;
  local.mutable_bias(5) += 2.0;

  const SparseDelta delta = local.ExtractDelta();
  SgnsModel rebuilt = base;
  delta.ApplyTo(rebuilt, 1.0);

  EXPECT_DOUBLE_EQ(rebuilt.InRow(0)[0], local.InRow(0)[0]);
  EXPECT_DOUBLE_EQ(rebuilt.OutRow(3)[1], local.OutRow(3)[1]);
  EXPECT_DOUBLE_EQ(rebuilt.bias(5), local.bias(5));
  // Untouched entries unchanged.
  EXPECT_DOUBLE_EQ(rebuilt.InRow(1)[0], base.InRow(1)[0]);
}

TEST(LocalModelTest, UntouchedOverlayGivesEmptyDelta) {
  const SgnsModel base = MakeModel(6, 2);
  const LocalModel local(base);
  EXPECT_TRUE(local.ExtractDelta().empty());
}

TEST(LocalModelTest, TouchedButUnchangedRowsGiveZeroNormDelta) {
  const SgnsModel base = MakeModel(6, 2);
  LocalModel local(base);
  local.MutableInRow(2);  // copy-on-write without modification
  const SparseDelta delta = local.ExtractDelta();
  EXPECT_EQ(delta.TotalNorm(), 0.0);
}

TEST(LocalModelTest, ManyRowsStressConsistency) {
  const SgnsModel base = MakeModel(200, 4);
  LocalModel local(base);
  Rng rng(13);
  std::vector<double> expected(200, 0.0);
  for (int i = 0; i < 5000; ++i) {
    const int32_t l = static_cast<int32_t>(rng.UniformInt(uint64_t{200}));
    const double d = rng.Uniform() - 0.5;
    local.MutableInRow(l)[0] += d;
    expected[l] += d;
  }
  for (int32_t l = 0; l < 200; ++l) {
    EXPECT_NEAR(local.InRow(l)[0], base.InRow(l)[0] + expected[l], 1e-9);
  }
}

}  // namespace
}  // namespace plp::sgns
