#include "sgns/pairs.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

namespace plp::sgns {
namespace {

TEST(GeneratePairsTest, EmptyAndSingleton) {
  EXPECT_TRUE(GeneratePairs({}, 2).empty());
  EXPECT_TRUE(GeneratePairs({5}, 2).empty());
}

TEST(GeneratePairsTest, PairSentence) {
  const std::vector<Pair> pairs = GeneratePairs({3, 7}, 2);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (Pair{3, 7}));
  EXPECT_EQ(pairs[1], (Pair{7, 3}));
}

TEST(GeneratePairsTest, WindowOneExactPairs) {
  // Sentence a b c with win=1: (a,b) (b,a) (b,c) (c,b).
  const std::vector<Pair> pairs = GeneratePairs({0, 1, 2}, 1);
  ASSERT_EQ(pairs.size(), 4u);
  EXPECT_EQ(pairs[0], (Pair{0, 1}));
  EXPECT_EQ(pairs[1], (Pair{1, 0}));
  EXPECT_EQ(pairs[2], (Pair{1, 2}));
  EXPECT_EQ(pairs[3], (Pair{2, 1}));
}

TEST(GeneratePairsTest, WindowTwoCountFormula) {
  // For n >> win, each position contributes 2·win pairs minus boundary
  // truncation: total = Σ_i |window(i)|.
  const std::vector<int32_t> sentence = {0, 1, 2, 3, 4, 5};
  const std::vector<Pair> pairs = GeneratePairs(sentence, 2);
  // positions: 0→2, 1→3, 2→4, 3→4, 4→3, 5→2 = 18.
  EXPECT_EQ(pairs.size(), 18u);
}

TEST(GeneratePairsTest, SymmetricWindow) {
  // Every pair (a→b) has its mirror (b→a) for symmetric windows.
  const std::vector<Pair> pairs = GeneratePairs({4, 9, 1, 7, 3}, 2);
  std::map<std::pair<int32_t, int32_t>, int> count;
  for (const Pair& p : pairs) ++count[{p.target, p.context}];
  for (const auto& [key, c] : count) {
    const auto mirror = count.find({key.second, key.first});
    ASSERT_NE(mirror, count.end());
    EXPECT_EQ(mirror->second, c);
  }
}

TEST(GeneratePairsTest, NoSelfPairsForDistinctTokens) {
  const std::vector<Pair> pairs = GeneratePairs({0, 1, 2, 3}, 3);
  for (const Pair& p : pairs) EXPECT_NE(p.target, p.context);
}

TEST(GeneratePairsTest, RepeatedTokensMayPairWithThemselves) {
  // Repeated location ids are legitimate targets/contexts of each other.
  const std::vector<Pair> pairs = GeneratePairs({5, 5}, 1);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (Pair{5, 5}));
}

TEST(MakeBatchesTest, PartitionsAllPairs) {
  std::vector<Pair> pairs;
  for (int i = 0; i < 103; ++i) pairs.push_back(Pair{i, i + 1});
  Rng rng(5);
  const auto batches = MakeBatches(pairs, 10, rng);
  ASSERT_EQ(batches.size(), 11u);
  for (size_t i = 0; i + 1 < batches.size(); ++i) {
    EXPECT_EQ(batches[i].size(), 10u);
  }
  EXPECT_EQ(batches.back().size(), 3u);
  // Multiset of pairs preserved.
  std::vector<int32_t> targets;
  for (const auto& b : batches) {
    for (const Pair& p : b) targets.push_back(p.target);
  }
  std::sort(targets.begin(), targets.end());
  for (int i = 0; i < 103; ++i) EXPECT_EQ(targets[i], i);
}

TEST(MakeBatchesTest, Shuffles) {
  std::vector<Pair> pairs;
  for (int i = 0; i < 100; ++i) pairs.push_back(Pair{i, 0});
  Rng rng(7);
  const auto batches = MakeBatches(pairs, 100, rng);
  ASSERT_EQ(batches.size(), 1u);
  bool any_moved = false;
  for (int i = 0; i < 100; ++i) any_moved |= batches[0][i].target != i;
  EXPECT_TRUE(any_moved);
}

TEST(MakeBatchesTest, EmptyInput) {
  Rng rng(7);
  EXPECT_TRUE(MakeBatches({}, 8, rng).empty());
}

TEST(MakeBatchesTest, BatchLargerThanInput) {
  Rng rng(7);
  const auto batches = MakeBatches({Pair{1, 2}}, 32, rng);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 1u);
}

}  // namespace
}  // namespace plp::sgns
