// The engine's split-bound contract (Section 4.2, Case 2): the realized ω
// of every executed round — the largest number of distinct buckets any
// single user's data reached — must never exceed the configured ω that
// the σ·ω·C noise calibration and the accountant's group-level analysis
// assume. The engine measures it after every Group, surfaces it in
// StepMetrics, and refuses to execute a violating round.

#include <algorithm>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/grouping.h"
#include "data/corpus.h"
#include "core/plp_trainer.h"
#include "data/fixtures.h"
#include "pipeline/engine.h"
#include "pipeline/standard_stages.h"

namespace plp::pipeline {
namespace {

data::TrainingCorpus TestCorpus() {
  data::FixtureCorpusOptions options;
  options.num_users = 48;
  options.num_locations = 24;
  options.neighborhood = 4;
  return data::MakeFixtureCorpus(777, options);
}

core::PlpConfig TestConfig(int32_t split_factor) {
  core::PlpConfig config;
  config.sgns.embedding_dim = 8;
  config.sgns.negatives = 4;
  config.sampling_probability = 0.25;
  config.grouping_factor = 2;
  config.split_factor = split_factor;
  config.noise_scale = 1.2;
  config.clip_norm = 0.5;
  config.epsilon_budget = 1e9;
  config.batch_size = 8;
  config.max_steps = 10;
  return config;
}

/// Runs a training and returns the per-step realized ω trace.
std::vector<int32_t> RealizedTrace(core::PlpConfig config, int32_t threads,
                                   const data::TrainingCorpus& corpus) {
  config.num_threads = threads;
  std::vector<int32_t> trace;
  Rng rng(1234);
  auto result = core::PlpTrainer(config).Train(
      corpus, rng,
      [&trace](const core::StepMetrics& metrics, const sgns::SgnsModel&) {
        trace.push_back(metrics.realized_split_factor);
        return true;
      });
  EXPECT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(trace.size(), static_cast<size_t>(result->steps_executed));
  return trace;
}

/// Every executed round of a private run reports a realized ω in
/// [1, configured ω], and the trace is bitwise identical at every thread
/// count — the measurement is part of the deterministic step, not a race.
TEST(SplitContractTest, RealizedOmegaBoundedAndThreadCountDeterministic) {
  const data::TrainingCorpus corpus = TestCorpus();
  for (int32_t omega : {1, 2}) {
    const std::vector<int32_t> t1 =
        RealizedTrace(TestConfig(omega), 1, corpus);
    ASSERT_FALSE(t1.empty());
    for (size_t i = 0; i < t1.size(); ++i) {
      EXPECT_GE(t1[i], 1) << "step " << (i + 1) << " omega=" << omega;
      EXPECT_LE(t1[i], omega) << "step " << (i + 1);
    }
    EXPECT_EQ(RealizedTrace(TestConfig(omega), 4, corpus), t1)
        << "omega=" << omega;
    EXPECT_EQ(RealizedTrace(TestConfig(omega), 8, corpus), t1)
        << "omega=" << omega;
  }
}

/// With ω = 2 and the paper's round-robin sentence split, rounds where a
/// sampled user has data in two buckets must actually occur — otherwise
/// the bound assertion above is vacuous.
TEST(SplitContractTest, SplitTwoActuallySplitsSomeRounds) {
  const data::TrainingCorpus corpus = TestCorpus();
  const std::vector<int32_t> trace =
      RealizedTrace(TestConfig(2), 1, corpus);
  int32_t max_realized = 0;
  for (int32_t r : trace) max_realized = std::max(max_realized, r);
  EXPECT_EQ(max_realized, 2);
}

/// A Grouper that duplicates every sampled user's sentences into TWO
/// buckets while the policy promises ω = 1 — exactly the unsound
/// "split without rescaling noise" configuration of [21] the engine must
/// refuse to execute.
class ViolatingGrouper : public Grouper {
 public:
  std::vector<core::Bucket> Group(const data::CorpusView& corpus,
                                  const std::vector<int32_t>& sampled,
                                  Rng&) override {
    std::vector<core::Bucket> buckets(2);
    std::vector<std::span<const int32_t>> sentences;
    for (int32_t user : sampled) {
      sentences.clear();
      corpus.AppendUserSentences(user, sentences);
      for (core::Bucket& bucket : buckets) {
        bucket.users.push_back(user);
        for (const auto& sentence : sentences) {
          bucket.sentences.emplace_back(sentence.begin(), sentence.end());
        }
      }
    }
    return buckets;
  }
};

TEST(SplitContractTest, EngineRefusesOmegaViolatingGrouper) {
  const data::TrainingCorpus corpus = TestCorpus();
  const core::PlpConfig config = TestConfig(1);
  ASSERT_TRUE(config.Validate().ok());

  StageSet stages = MakePrivateStages(config);
  stages.grouper = std::make_unique<ViolatingGrouper>();
  EngineConfig engine_config = MakePrivateEngineConfig(config);
  ASSERT_TRUE(engine_config.policy.enforce_split_bound);

  Rng rng(1234);
  TrainingEngine engine(std::move(engine_config), std::move(stages));
  auto result = engine.Train(corpus, rng, nullptr, {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("split bound"), std::string::npos)
      << result.status().message();
}

/// The honest ConfiguredGrouper under the same engine passes the bound
/// check — the negative test above fails because of the grouper, not the
/// harness.
TEST(SplitContractTest, EngineAcceptsHonestGrouper) {
  const data::TrainingCorpus corpus = TestCorpus();
  core::PlpConfig config = TestConfig(1);
  config.max_steps = 3;
  ASSERT_TRUE(config.Validate().ok());

  Rng rng(1234);
  TrainingEngine engine(MakePrivateEngineConfig(config),
                        MakePrivateStages(config));
  auto result = engine.Train(corpus, rng, nullptr, {});
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->steps_executed, 3);
}

}  // namespace
}  // namespace plp::pipeline
