#include "ckpt/checkpoint.h"

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/atomic_file.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "sgns/model.h"

namespace plp::ckpt {
namespace {

sgns::SgnsModel MakeModel(uint64_t seed, int32_t locations = 7,
                          int32_t dim = 4) {
  Rng rng(seed);
  sgns::SgnsConfig config;
  config.embedding_dim = dim;
  auto model = sgns::SgnsModel::Create(locations, config, rng);
  PLP_CHECK(model.ok());
  // Create leaves W' and B' at zero; perturb them so every tensor carries
  // distinguishable content for the round-trip comparisons below. Written
  // through the row accessors: the padding tail of the storage spans must
  // stay 0.0, and decode builds its model with zero padding.
  for (int32_t l = 0; l < locations; ++l) {
    auto out = model->MutableOutRow(l);
    for (int32_t d = 0; d < dim; ++d) {
      out[d] = 0.01 * double(l * dim + d) - 0.07;
    }
  }
  auto bias = model->MutableTensorData(sgns::Tensor::kBias);
  for (size_t i = 0; i < bias.size(); ++i) bias[i] = -0.5 + 0.2 * double(i);
  return *std::move(model);
}

TrainerSnapshot MakeSnapshot(uint64_t seed, int64_t step) {
  TrainerSnapshot snapshot;
  snapshot.kind =
      (seed % 2 == 0) ? TrainerKind::kPrivate : TrainerKind::kNonPrivate;
  snapshot.step = step;
  Rng rng(seed ^ 0x5bd1e995);
  rng.Gaussian();  // populate the Box–Muller spare
  snapshot.rng = rng.SaveState();
  snapshot.ledger_blob = std::string("\x01opaque ledger bytes\x00\x7f", 22);
  snapshot.optimizer_name = "dp_adam";
  snapshot.optimizer_blob = std::string(64, '\xee');
  snapshot.model = MakeModel(seed);
  return snapshot;
}

bool ModelsBitwiseEqual(const sgns::SgnsModel& a, const sgns::SgnsModel& b) {
  if (a.num_locations() != b.num_locations() || a.dim() != b.dim()) {
    return false;
  }
  for (int t = 0; t < sgns::kNumTensors; ++t) {
    const auto ta = a.TensorData(static_cast<sgns::Tensor>(t));
    const auto tb = b.TensorData(static_cast<sgns::Tensor>(t));
    if (ta.size() != tb.size() ||
        std::memcmp(ta.data(), tb.data(), ta.size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

TEST(SnapshotCodecTest, RoundTripPreservesEveryField) {
  for (uint64_t seed : {2u, 3u}) {  // one of each trainer kind
    const TrainerSnapshot original = MakeSnapshot(seed, /*step=*/41);
    const std::string bytes = EncodeSnapshot(original);
    auto decoded = DecodeSnapshot(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded->kind, original.kind);
    EXPECT_EQ(decoded->step, original.step);
    EXPECT_EQ(std::memcmp(decoded->rng.state, original.rng.state,
                          sizeof original.rng.state),
              0);
    EXPECT_EQ(decoded->rng.has_spare_gaussian,
              original.rng.has_spare_gaussian);
    EXPECT_EQ(std::memcmp(&decoded->rng.spare_gaussian,
                          &original.rng.spare_gaussian, sizeof(double)),
              0);
    EXPECT_EQ(decoded->ledger_blob, original.ledger_blob);
    EXPECT_EQ(decoded->optimizer_name, original.optimizer_name);
    EXPECT_EQ(decoded->optimizer_blob, original.optimizer_blob);
    EXPECT_TRUE(ModelsBitwiseEqual(decoded->model, original.model));
  }
}

TEST(SnapshotCodecTest, EverySingleBitFlipIsRejected) {
  std::string bytes = EncodeSnapshot(MakeSnapshot(5, 12));
  ASSERT_TRUE(DecodeSnapshot(bytes).ok());
  // Stride through the file (covering header, checksum, and payload) and
  // flip one bit at a time: no corruption may decode successfully.
  for (size_t byte = 0; byte < bytes.size(); byte += 13) {
    bytes[byte] = static_cast<char>(bytes[byte] ^ 0x10);
    EXPECT_FALSE(DecodeSnapshot(bytes).ok()) << "byte " << byte;
    bytes[byte] = static_cast<char>(bytes[byte] ^ 0x10);
  }
  EXPECT_TRUE(DecodeSnapshot(bytes).ok());
}

TEST(SnapshotCodecTest, EveryTruncationIsRejected) {
  const std::string bytes = EncodeSnapshot(MakeSnapshot(6, 3));
  for (size_t keep = 0; keep < bytes.size(); keep += 7) {
    EXPECT_FALSE(
        DecodeSnapshot(std::string_view(bytes).substr(0, keep)).ok())
        << "kept " << keep << " of " << bytes.size();
  }
  // Trailing garbage after a valid payload is also torn state.
  EXPECT_FALSE(DecodeSnapshot(bytes + "x").ok());
}

TEST(SnapshotCodecTest, SamplingSchemeRoundTrips) {
  for (const SamplingScheme scheme :
       {SamplingScheme::kPoisson, SamplingScheme::kFixedBatch}) {
    TrainerSnapshot snapshot = MakeSnapshot(9, 5);
    snapshot.scheme = scheme;
    auto decoded = DecodeSnapshot(EncodeSnapshot(snapshot));
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    EXPECT_EQ(decoded->scheme, scheme);
  }
}

TEST(SnapshotCodecTest, UnknownSamplingSchemeByteRejected) {
  TrainerSnapshot snapshot = MakeSnapshot(9, 5);
  snapshot.scheme = static_cast<SamplingScheme>(7);
  EXPECT_FALSE(DecodeSnapshot(EncodeSnapshot(snapshot)).ok());
}

TEST(SnapshotCodecTest, NegativeStepRejected) {
  TrainerSnapshot snapshot = MakeSnapshot(7, 1);
  snapshot.step = -1;
  EXPECT_FALSE(DecodeSnapshot(EncodeSnapshot(snapshot)).ok());
}

TEST(SnapshotCodecTest, AllZeroRngStateRejected) {
  // No valid SaveState produces the all-zero xoshiro state; a snapshot
  // claiming one must be refused rather than restored into an Rng (which
  // would abort the process).
  TrainerSnapshot snapshot = MakeSnapshot(8, 1);
  snapshot.rng = RngState{};
  EXPECT_FALSE(DecodeSnapshot(EncodeSnapshot(snapshot)).ok());
}

class CheckpointManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("plp_ckpt_test_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    FaultInjection::Disarm();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
};

TEST_F(CheckpointManagerTest, SaveThenLoadLatestReturnsNewest) {
  CheckpointManager manager(dir_.string(), /*keep_last=*/0);
  ASSERT_TRUE(manager.Init().ok());
  EXPECT_EQ(manager.LoadLatest().status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(manager.Save(MakeSnapshot(2, 10)).ok());
  ASSERT_TRUE(manager.Save(MakeSnapshot(4, 20)).ok());
  auto latest = manager.LoadLatest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->step, 20);
  EXPECT_EQ(manager.ListSteps(), (std::vector<int64_t>{10, 20}));
}

TEST_F(CheckpointManagerTest, KeepLastPrunesOldest) {
  CheckpointManager manager(dir_.string(), /*keep_last=*/2);
  ASSERT_TRUE(manager.Init().ok());
  for (int64_t step : {5, 10, 15, 20}) {
    ASSERT_TRUE(manager.Save(MakeSnapshot(2, step)).ok());
  }
  EXPECT_EQ(manager.ListSteps(), (std::vector<int64_t>{15, 20}));
}

TEST_F(CheckpointManagerTest, TornNewestFallsBackToPreviousValid) {
  CheckpointManager manager(dir_.string(), /*keep_last=*/0);
  ASSERT_TRUE(manager.Init().ok());
  ASSERT_TRUE(manager.Save(MakeSnapshot(2, 10)).ok());
  ASSERT_TRUE(manager.Save(MakeSnapshot(2, 20)).ok());
  // Simulate a crash that left the newest file torn: truncate it in place.
  auto torn = ReadFileToString(manager.PathForStep(20));
  ASSERT_TRUE(torn.ok());
  ASSERT_TRUE(
      AtomicWriteFile(manager.PathForStep(20), torn->substr(0, 37)).ok());

  auto latest = manager.LoadLatest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->step, 10);  // skipped the torn 20, loaded the good 10
}

TEST_F(CheckpointManagerTest, StepMismatchedFilenameIsSkipped) {
  CheckpointManager manager(dir_.string(), /*keep_last=*/0);
  ASSERT_TRUE(manager.Init().ok());
  ASSERT_TRUE(manager.Save(MakeSnapshot(2, 10)).ok());
  // A snapshot whose payload says step 5 under the step-30 filename is
  // inconsistent state, never a resume source.
  ASSERT_TRUE(AtomicWriteFile(manager.PathForStep(30),
                              EncodeSnapshot(MakeSnapshot(2, 5)))
                  .ok());
  auto latest = manager.LoadLatest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->step, 10);
}

TEST_F(CheckpointManagerTest, TempDebrisAndForeignFilesIgnored) {
  CheckpointManager manager(dir_.string(), /*keep_last=*/0);
  ASSERT_TRUE(manager.Init().ok());
  ASSERT_TRUE(manager.Save(MakeSnapshot(2, 7)).ok());
  // Plant the kinds of debris a killed writer or an operator leaves around.
  ASSERT_TRUE(AtomicWriteFile((dir_ / "ckpt-000000000009.plpc.tmp.123").string(),
                              "partial")
                  .ok());
  ASSERT_TRUE(AtomicWriteFile((dir_ / "notes.txt").string(), "hi").ok());
  ASSERT_TRUE(AtomicWriteFile((dir_ / "ckpt-abc.plpc").string(), "bad").ok());
  EXPECT_EQ(manager.ListSteps(), (std::vector<int64_t>{7}));
  auto latest = manager.LoadLatest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->step, 7);
}

TEST_F(CheckpointManagerTest, FaultBeforeSaveWritesNothing) {
  CheckpointManager manager(dir_.string(), /*keep_last=*/0);
  ASSERT_TRUE(manager.Init().ok());
  ASSERT_TRUE(manager.Save(MakeSnapshot(2, 10)).ok());
  FaultInjection::Arm("ckpt.before_save", FaultMode::kFail);
  EXPECT_FALSE(manager.Save(MakeSnapshot(2, 20)).ok());
  EXPECT_EQ(manager.ListSteps(), (std::vector<int64_t>{10}));
}

TEST_F(CheckpointManagerTest, FaultMidPayloadLeavesOnlyPriorCheckpoints) {
  CheckpointManager manager(dir_.string(), /*keep_last=*/0);
  ASSERT_TRUE(manager.Init().ok());
  ASSERT_TRUE(manager.Save(MakeSnapshot(2, 10)).ok());
  FaultInjection::Arm("atomic_file.mid_payload", FaultMode::kFail);
  EXPECT_FALSE(manager.Save(MakeSnapshot(2, 20)).ok());
  EXPECT_EQ(manager.ListSteps(), (std::vector<int64_t>{10}));
  EXPECT_EQ(manager.LoadLatest()->step, 10);
}

TEST_F(CheckpointManagerTest, PathForStepIsZeroPaddedAndSortable) {
  CheckpointManager manager(dir_.string());
  const std::string p9 = manager.PathForStep(9);
  const std::string p10 = manager.PathForStep(10);
  EXPECT_NE(p9.find("ckpt-000000000009.plpc"), std::string::npos);
  EXPECT_LT(p9, p10);  // lexicographic order == numeric order
}

}  // namespace
}  // namespace plp::ckpt
