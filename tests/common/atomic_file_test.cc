#include "common/atomic_file.h"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/fault_injection.h"

namespace plp {
namespace {

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("plp_atomic_file_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjection::Disarm();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  /// Non-temp entries in the test directory.
  int VisibleFiles() const {
    int n = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      if (entry.path().filename().string().find(kAtomicTempInfix) ==
          std::string::npos) {
        ++n;
      }
    }
    return n;
  }

  std::filesystem::path dir_;
};

TEST_F(AtomicFileTest, WriteThenReadRoundTrip) {
  const std::string path = Path("data.bin");
  const std::string contents("hello\0world", 11);  // embedded NUL survives
  ASSERT_TRUE(AtomicWriteFile(path, contents).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, contents);
}

TEST_F(AtomicFileTest, OverwriteReplacesAtomically) {
  const std::string path = Path("data.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "old").ok());
  ASSERT_TRUE(AtomicWriteFile(path, "new contents").ok());
  EXPECT_EQ(ReadFileToString(path).value(), "new contents");
  EXPECT_EQ(VisibleFiles(), 1);  // no temp debris after success
}

TEST_F(AtomicFileTest, ReadMissingFileIsNotFound) {
  const auto result = ReadFileToString(Path("absent"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(AtomicFileTest, FailureMidPayloadLeavesDestinationUntouched) {
  const std::string path = Path("data.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "previous snapshot").ok());
  FaultInjection::Arm("atomic_file.mid_payload", FaultMode::kFail);
  const Status status = AtomicWriteFile(path, "torn write");
  EXPECT_FALSE(status.ok());
  // The failed commit neither replaced the destination nor left a temp.
  EXPECT_EQ(ReadFileToString(path).value(), "previous snapshot");
  EXPECT_TRUE(std::filesystem::directory_iterator(dir_) !=
              std::filesystem::directory_iterator());
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().filename().string().find(kAtomicTempInfix),
              std::string::npos);
  }
}

TEST_F(AtomicFileTest, FailureAfterTempWriteLeavesDestinationUntouched) {
  const std::string path = Path("data.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "previous snapshot").ok());
  FaultInjection::Arm("atomic_file.after_temp_write", FaultMode::kFail);
  EXPECT_FALSE(AtomicWriteFile(path, "never renamed").ok());
  EXPECT_EQ(ReadFileToString(path).value(), "previous snapshot");
}

TEST_F(AtomicFileTest, FailureAfterRenameHasAlreadyCommitted) {
  // Past the rename the new contents are the visible state; the injected
  // error models a crash before the directory sync, where the commit may
  // or may not survive — readers still never observe a torn file.
  const std::string path = Path("data.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "previous snapshot").ok());
  FaultInjection::Arm("atomic_file.after_rename", FaultMode::kFail);
  EXPECT_FALSE(AtomicWriteFile(path, "committed contents").ok());
  EXPECT_EQ(ReadFileToString(path).value(), "committed contents");
}

TEST_F(AtomicFileTest, FreshWriteFailureLeavesNothingBehind) {
  const std::string path = Path("data.bin");
  FaultInjection::Arm("atomic_file.mid_payload", FaultMode::kFail);
  EXPECT_FALSE(AtomicWriteFile(path, "torn write").ok());
  EXPECT_TRUE(std::filesystem::is_empty(dir_));
}

TEST_F(AtomicFileTest, EmptyPathRejected) {
  EXPECT_EQ(AtomicWriteFile("", "x").code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace plp
