#include "common/math_util.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace plp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(LogAddTest, MatchesDirectComputation) {
  EXPECT_NEAR(LogAdd(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
}

TEST(LogAddTest, HandlesNegativeInfinity) {
  EXPECT_EQ(LogAdd(-kInf, 1.5), 1.5);
  EXPECT_EQ(LogAdd(1.5, -kInf), 1.5);
  EXPECT_EQ(LogAdd(-kInf, -kInf), -kInf);
}

TEST(LogAddTest, LargeMagnitudesAreStable) {
  // exp(1000) overflows, but log-add must not.
  EXPECT_NEAR(LogAdd(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_NEAR(LogAdd(-1000.0, -1000.0), -1000.0 + std::log(2.0), 1e-9);
}

TEST(LogSumExpTest, EmptyIsNegativeInfinity) {
  EXPECT_EQ(LogSumExp({}), -kInf);
}

TEST(LogSumExpTest, SingleElement) {
  const std::vector<double> xs = {2.5};
  EXPECT_EQ(LogSumExp(xs), 2.5);
}

TEST(LogSumExpTest, MatchesPairwiseLogAdd) {
  const std::vector<double> xs = {0.1, -3.0, 2.0, 5.5};
  double expected = -kInf;
  for (double x : xs) expected = LogAdd(expected, x);
  EXPECT_NEAR(LogSumExp(xs), expected, 1e-12);
}

TEST(LogBinomialTest, MatchesExactValues) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(LogBinomial(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomial(10, 10), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomial(52, 5), std::log(2598960.0), 1e-9);
}

TEST(LogBinomialTest, Symmetry) {
  for (int k = 0; k <= 20; ++k) {
    EXPECT_NEAR(LogBinomial(20, k), LogBinomial(20, 20 - k), 1e-10);
  }
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-6);
  EXPECT_NEAR(NormalCdf(3.0), 0.998650, 1e-5);
}

TEST(NormalCdfTest, Monotone) {
  double prev = 0.0;
  for (double x = -5.0; x <= 5.0; x += 0.25) {
    const double c = NormalCdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(IncompleteBetaTest, Boundaries) {
  EXPECT_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, UniformCase) {
  // I_x(1, 1) = x.
  for (double x = 0.1; x < 1.0; x += 0.2) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(IncompleteBetaTest, SymmetryIdentity) {
  // I_x(a, b) = 1 − I_{1−x}(b, a).
  EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 4.0, 0.3),
              1.0 - RegularizedIncompleteBeta(4.0, 2.5, 0.7), 1e-10);
}

TEST(IncompleteBetaTest, KnownValue) {
  // I_{0.5}(2, 2) = 0.5 by symmetry.
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 2.0, 0.5), 0.5, 1e-10);
}

TEST(StudentTTest, TwoSidedPValues) {
  // t = 0 → p = 1.
  EXPECT_NEAR(StudentTTwoSidedPValue(0.0, 10.0), 1.0, 1e-12);
  // Classic table value: t = 2.228, df = 10 → p ≈ 0.05.
  EXPECT_NEAR(StudentTTwoSidedPValue(2.228, 10.0), 0.05, 1e-3);
  // t = 12.706, df = 1 → p ≈ 0.05.
  EXPECT_NEAR(StudentTTwoSidedPValue(12.706, 1.0), 0.05, 1e-3);
}

TEST(StudentTTest, SymmetricInT) {
  EXPECT_NEAR(StudentTTwoSidedPValue(1.7, 8.0),
              StudentTTwoSidedPValue(-1.7, 8.0), 1e-12);
}

TEST(IncompleteGammaTest, KnownValues) {
  // P(1, x) = 1 - exp(-x) (chi-square with 2 df at 2x).
  EXPECT_NEAR(RegularizedLowerIncompleteGamma(1.0, 1.0),
              1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(RegularizedLowerIncompleteGamma(1.0, 3.0),
              1.0 - std::exp(-3.0), 1e-12);
  // P(1/2, x) = erf(√x).
  EXPECT_NEAR(RegularizedLowerIncompleteGamma(0.5, 2.0),
              std::erf(std::sqrt(2.0)), 1e-12);
  EXPECT_EQ(RegularizedLowerIncompleteGamma(3.0, 0.0), 0.0);
}

TEST(IncompleteGammaTest, UpperAndLowerSumToOne) {
  for (double a : {0.5, 1.0, 2.5, 10.0, 50.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0, 100.0}) {
      EXPECT_NEAR(RegularizedLowerIncompleteGamma(a, x) +
                      RegularizedUpperIncompleteGamma(a, x),
                  1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(IncompleteGammaTest, ChiSquareMedianOfTwoDf) {
  // Chi-square with 2 df has median 2·ln 2: P(1, ln 2) = 1/2.
  EXPECT_NEAR(RegularizedLowerIncompleteGamma(1.0, std::log(2.0)), 0.5,
              1e-12);
}

TEST(KolmogorovTest, KnownQuantiles) {
  // Classic KS critical values: Q(1.36) ≈ 0.05, Q(1.63) ≈ 0.01.
  EXPECT_NEAR(KolmogorovComplementaryCdf(1.36), 0.05, 2e-3);
  EXPECT_NEAR(KolmogorovComplementaryCdf(1.63), 0.01, 1e-3);
  EXPECT_EQ(KolmogorovComplementaryCdf(0.0), 1.0);
  EXPECT_LT(KolmogorovComplementaryCdf(3.0), 1e-6);
}

TEST(KolmogorovTest, MonotoneDecreasing) {
  double prev = 1.0;
  for (double t = 0.2; t < 2.5; t += 0.1) {
    const double q = KolmogorovComplementaryCdf(t);
    EXPECT_LE(q, prev + 1e-15);
    prev = q;
  }
}

TEST(L2NormTest, Basics) {
  const std::vector<double> v = {3.0, 4.0};
  EXPECT_NEAR(L2Norm(v), 5.0, 1e-12);
  EXPECT_EQ(L2Norm({}), 0.0);
}

TEST(DotTest, Basics) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, -5.0, 6.0};
  EXPECT_NEAR(Dot(a, b), 12.0, 1e-12);
}

TEST(NormalizeL2Test, ProducesUnitVector) {
  std::vector<double> v = {3.0, 4.0};
  NormalizeL2(v);
  EXPECT_NEAR(v[0], 0.6, 1e-12);
  EXPECT_NEAR(v[1], 0.8, 1e-12);
  EXPECT_NEAR(L2Norm(v), 1.0, 1e-12);
}

TEST(NormalizeL2Test, ZeroVectorUnchanged) {
  std::vector<double> v = {0.0, 0.0, 0.0};
  NormalizeL2(v);
  for (double x : v) EXPECT_EQ(x, 0.0);
}

TEST(ClampTest, Basics) {
  EXPECT_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

}  // namespace
}  // namespace plp
