#include "common/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace plp {
namespace {

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"a", "b", "c"});
  t.NewRow().AddCell("x").AddCell(int64_t{2}).AddCell(3.14159, 2);
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\nx,2,3.14\n");
}

TEST(TablePrinterTest, MultipleRows) {
  TablePrinter t({"k", "v"});
  t.NewRow().AddCell(int64_t{1}).AddCell(0.5, 1);
  t.NewRow().AddCell(int64_t{2}).AddCell(1.5, 1);
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "k,v\n1,0.5\n2,1.5\n");
}

TEST(TablePrinterTest, AlignedOutputContainsAllCells) {
  TablePrinter t({"metric", "value"});
  t.NewRow().AddCell("HR@10").AddCell(0.295, 3);
  std::ostringstream os;
  t.PrintAligned(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("metric"), std::string::npos);
  EXPECT_NE(out.find("HR@10"), std::string::npos);
  EXPECT_NE(out.find("0.295"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, AlignedPadsColumns) {
  TablePrinter t({"a", "long_header"});
  t.NewRow().AddCell("wide_cell_value").AddCell("x");
  std::ostringstream os;
  t.PrintAligned(os);
  std::istringstream is(os.str());
  std::string header, rule, row;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row);
  // The second column starts at the same offset in header and data rows.
  EXPECT_EQ(header.find("long_header"), row.find("x"));
}

TEST(TablePrinterTest, DoublePrecision) {
  TablePrinter t({"v"});
  t.NewRow().AddCell(1.23456789, 6);
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "v\n1.234568\n");
}

TEST(TablePrinterTest, RowsAccessor) {
  TablePrinter t({"a"});
  t.NewRow().AddCell("v1");
  ASSERT_EQ(t.rows().size(), 1u);
  EXPECT_EQ(t.rows()[0][0], "v1");
}

}  // namespace
}  // namespace plp
