// Accuracy and saturation contract of the bounded transcendental lookup
// tables (common/math_util) that back the SGNS hot loop:
//
//   * |lut − libm reference| stays under the documented bound over a dense
//     sweep of the whole in-domain range (on- and off-grid arguments).
//   * Grid-node arguments — in particular x = 0, the shifted-softmax
//     maximum — reproduce the reference value exactly.
//   * The endpoints saturate to exactly 0.0 / 1.0, and arguments far
//     outside the domain (including ±inf) clamp to the same exact values,
//     never extrapolate.
//   * Monotonicity survives interpolation, so downstream code may rely on
//     order relations between lookups.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace plp {
namespace {

// Documented in math_util.h: in-domain interpolation error is bounded by
// step²/8 · max|f''| plus the rounding of the node values themselves.
constexpr double kSigmoidMaxAbsError = 2e-7;
constexpr double kExpNegMaxAbsError = 2e-6;

/// Sweeps [lo, hi] with a step that is NOT a divisor of the table step, so
/// the probes land at ever-changing offsets inside the interpolation
/// intervals rather than on the grid.
template <typename Fn, typename Ref>
double MaxAbsErrorOverSweep(double lo, double hi, const Fn& fn,
                            const Ref& ref) {
  double max_err = 0.0;
  const double step = 1.0 / 977.0;  // prime denominator: off-grid probes
  for (double x = lo; x <= hi; x += step) {
    max_err = std::max(max_err, std::fabs(fn(x) - ref(x)));
  }
  return max_err;
}

TEST(SigmoidLutTest, MaxAbsErrorWithinBoundInDomain) {
  const SigmoidLut& lut = SigmoidLut::Get();
  // Strictly inside the bounds: the exact endpoints saturate by design
  // (|σ(−8) − 0| ≈ 3.4e-4 is the documented truncation, not interpolation
  // error) and are pinned by the saturation test below.
  const double err = MaxAbsErrorOverSweep(
      -SigmoidLut::kBound + 1e-9, SigmoidLut::kBound - 1e-9,
      [&](double x) { return lut(x); }, SigmoidReference);
  EXPECT_LT(err, kSigmoidMaxAbsError);
}

TEST(SigmoidLutTest, ExactAtInteriorGridNodes) {
  const SigmoidLut& lut = SigmoidLut::Get();
  // Every interior table node must reproduce the libm value bitwise
  // (r == 0 in the interpolation); the two boundary nodes saturate instead.
  for (size_t k = 1; k < SigmoidLut::kNumIntervals; ++k) {
    const double x =
        -SigmoidLut::kBound + static_cast<double>(k) / SigmoidLut::kInvStep;
    EXPECT_EQ(lut(x), SigmoidReference(x)) << "node " << k << " x=" << x;
  }
  EXPECT_EQ(lut(0.0), 0.5);
}

TEST(SigmoidLutTest, SaturatesExactlyAtAndBeyondBounds) {
  const SigmoidLut& lut = SigmoidLut::Get();
  EXPECT_EQ(lut(SigmoidLut::kBound), 1.0);
  EXPECT_EQ(lut(-SigmoidLut::kBound), 0.0);
  EXPECT_EQ(lut(SigmoidLut::kBound + 1e-9), 1.0);
  EXPECT_EQ(lut(-SigmoidLut::kBound - 1e-9), 0.0);
  EXPECT_EQ(lut(1e12), 1.0);
  EXPECT_EQ(lut(-1e12), 0.0);
  EXPECT_EQ(lut(std::numeric_limits<double>::infinity()), 1.0);
  EXPECT_EQ(lut(-std::numeric_limits<double>::infinity()), 0.0);
}

TEST(SigmoidLutTest, MonotoneNonDecreasing) {
  const SigmoidLut& lut = SigmoidLut::Get();
  double prev = lut(-SigmoidLut::kBound - 1.0);
  for (double x = -SigmoidLut::kBound; x <= SigmoidLut::kBound + 1.0;
       x += 1.0 / 311.0) {
    const double y = lut(x);
    EXPECT_GE(y, prev) << "x=" << x;
    prev = y;
  }
}

TEST(SigmoidLutTest, FastSigmoidWrapperDelegates) {
  const SigmoidLut& lut = SigmoidLut::Get();
  for (double x : {-9.0, -2.5, -0.3, 0.0, 0.7, 3.1, 9.0}) {
    EXPECT_EQ(FastSigmoid(x), lut(x));
  }
}

TEST(ExpNegLutTest, MaxAbsErrorWithinBoundInDomain) {
  const ExpNegLut& lut = ExpNegLut::Get();
  const double err =
      MaxAbsErrorOverSweep(-ExpNegLut::kBound, 0.0,
                           [&](double x) { return lut(x); }, ExpNegReference);
  EXPECT_LT(err, kExpNegMaxAbsError);
}

TEST(ExpNegLutTest, ExactAtGridNodes) {
  const ExpNegLut& lut = ExpNegLut::Get();
  // k = 0 is the saturated boundary (0.0, not exp(−16) ≈ 1.1e-7); every
  // other node — including x = 0, where exp must be exactly 1 — matches
  // libm bitwise.
  for (size_t k = 1; k <= ExpNegLut::kNumIntervals; ++k) {
    const double x =
        -ExpNegLut::kBound + static_cast<double>(k) / ExpNegLut::kInvStep;
    EXPECT_EQ(lut(x), ExpNegReference(x)) << "node " << k << " x=" << x;
  }
  // The fused softmax feeds logit − max here; the max itself maps to
  // exactly 1.0, which is what keeps the cold-start loss log(neg+1) exact.
  EXPECT_EQ(lut(0.0), 1.0);
}

TEST(ExpNegLutTest, SaturatesExactlyAtAndBeyondBounds) {
  const ExpNegLut& lut = ExpNegLut::Get();
  EXPECT_EQ(lut(0.0), 1.0);
  EXPECT_EQ(lut(1e-9), 1.0);   // domain is x <= 0; positives clamp to e^0
  EXPECT_EQ(lut(1e12), 1.0);
  EXPECT_EQ(lut(-ExpNegLut::kBound), 0.0);
  EXPECT_EQ(lut(-ExpNegLut::kBound - 1e-9), 0.0);
  EXPECT_EQ(lut(-1e12), 0.0);
  EXPECT_EQ(lut(-std::numeric_limits<double>::infinity()), 0.0);
}

TEST(ExpNegLutTest, MonotoneNonDecreasing) {
  const ExpNegLut& lut = ExpNegLut::Get();
  double prev = lut(-ExpNegLut::kBound - 1.0);
  for (double x = -ExpNegLut::kBound; x <= 1.0; x += 1.0 / 311.0) {
    const double y = lut(x);
    EXPECT_GE(y, prev) << "x=" << x;
    prev = y;
  }
}

TEST(FastMathTest, WarmFastMathTablesIsIdempotent) {
  WarmFastMathTables();
  const SigmoidLut* sigmoid = &SigmoidLut::Get();
  const ExpNegLut* exp_neg = &ExpNegLut::Get();
  WarmFastMathTables();
  // Same process-wide instances, same values after re-warming.
  EXPECT_EQ(sigmoid, &SigmoidLut::Get());
  EXPECT_EQ(exp_neg, &ExpNegLut::Get());
  EXPECT_EQ((*sigmoid)(0.5), SigmoidLut::Get()(0.5));
}

}  // namespace
}  // namespace plp
