#include "common/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace plp {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, MultipleWaitCycles) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace plp
