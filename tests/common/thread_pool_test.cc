#include "common/thread_pool.h"

#include <atomic>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

namespace plp {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, MultipleWaitCycles) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, ScheduleAllRunsEveryTask) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(hits.size());
  for (size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.ScheduleAll(tasks);
  pool.Wait();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ScheduleAllEmptySpanIsANoOp) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  pool.ScheduleAll(tasks);
  pool.Wait();  // must not hang — in_flight must stay balanced
}

TEST(ThreadPoolTest, ScheduleAllSingleTaskRuns) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&counter] { counter.fetch_add(1); });
  pool.ScheduleAll(tasks);
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ScheduleAllMixesWithSchedule) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 4; ++round) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 7; ++i) {
      tasks.push_back([&counter] { counter.fetch_add(1); });
    }
    pool.ScheduleAll(tasks);
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 4 * 8);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace plp
