#include "common/serialize.h"

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace plp {
namespace {

TEST(SerializeTest, ScalarRoundTrip) {
  ByteWriter writer;
  writer.U8(0xAB);
  writer.U32(0xDEADBEEF);
  writer.I32(-12345);
  writer.U64(0x0123456789ABCDEFULL);
  writer.I64(-9876543210LL);
  writer.F64(3.141592653589793);

  ByteReader reader(writer.str());
  EXPECT_EQ(reader.U8().value(), 0xAB);
  EXPECT_EQ(reader.U32().value(), 0xDEADBEEF);
  EXPECT_EQ(reader.I32().value(), -12345);
  EXPECT_EQ(reader.U64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.I64().value(), -9876543210LL);
  EXPECT_EQ(reader.F64().value(), 3.141592653589793);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, DoubleRoundTripIsBitExact) {
  // NaN payloads, infinities, denormals, and signed zero must survive.
  const std::vector<double> values = {
      0.0, -0.0, std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(), 1.0 / 3.0};
  ByteWriter writer;
  writer.DoubleVector(values);
  ByteReader reader(writer.str());
  auto decoded = reader.ReadDoubleVector(values.size());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), values.size());
  EXPECT_EQ(std::memcmp(decoded->data(), values.data(),
                        values.size() * sizeof(double)),
            0);
}

TEST(SerializeTest, TruncationIsAnErrorNotARead) {
  ByteWriter writer;
  writer.U64(42);
  for (size_t keep = 0; keep < writer.size(); ++keep) {
    ByteReader reader(std::string_view(writer.str()).substr(0, keep));
    const auto result = reader.U64();
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SerializeTest, LengthPrefixedBytesRejectsOversizedLength) {
  ByteWriter writer;
  writer.LengthPrefixedBytes("hello");
  {
    ByteReader reader(writer.str());
    auto bytes = reader.ReadLengthPrefixedBytes(5);
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(*bytes, "hello");
    EXPECT_TRUE(reader.AtEnd());
  }
  {
    ByteReader reader(writer.str());
    EXPECT_FALSE(reader.ReadLengthPrefixedBytes(4).ok());
  }
}

TEST(SerializeTest, LengthPrefixedLengthBeyondBufferFails) {
  // A corrupt length field larger than the remaining buffer must fail
  // before any allocation sized by it.
  ByteWriter writer;
  writer.U64(std::numeric_limits<uint64_t>::max());
  ByteReader reader(writer.str());
  EXPECT_FALSE(
      reader.ReadLengthPrefixedBytes(std::numeric_limits<uint64_t>::max())
          .ok());
}

TEST(SerializeTest, DoubleVectorRejectsOversizedLength) {
  ByteWriter writer;
  writer.DoubleVector(std::vector<double>{1.0, 2.0, 3.0});
  ByteReader reader(writer.str());
  EXPECT_FALSE(reader.ReadDoubleVector(2).ok());
}

TEST(SerializeTest, NestedBlobsCompose) {
  // The checkpoint idiom: a component serializes into its own writer, the
  // parent embeds the blob, and the reader peels the layers back apart.
  ByteWriter inner;
  inner.I64(7);
  inner.F64(2.5);
  ByteWriter outer;
  outer.U32(1);
  outer.LengthPrefixedBytes(inner.str());
  outer.U8(9);

  ByteReader reader(outer.str());
  EXPECT_EQ(reader.U32().value(), 1u);
  auto blob = reader.ReadLengthPrefixedBytes(reader.remaining());
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(reader.U8().value(), 9);
  EXPECT_TRUE(reader.AtEnd());
  ByteReader inner_reader(*blob);
  EXPECT_EQ(inner_reader.I64().value(), 7);
  EXPECT_EQ(inner_reader.F64().value(), 2.5);
  EXPECT_TRUE(inner_reader.AtEnd());
}

TEST(Crc64Test, KnownVector) {
  // CRC-64/XZ check value from the canonical catalogue:
  // crc64("123456789") = 0x995DC9BBDF1939FA.
  EXPECT_EQ(Crc64("123456789"), 0x995DC9BBDF1939FAULL);
  EXPECT_EQ(Crc64(""), 0u);
}

TEST(Crc64Test, DetectsEverySingleBitFlip) {
  ByteWriter writer;
  for (int i = 0; i < 32; ++i) writer.F64(static_cast<double>(i) * 0.37);
  std::string bytes = writer.Take();
  const uint64_t clean = Crc64(bytes);
  for (size_t byte = 0; byte < bytes.size(); byte += 17) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[byte] = static_cast<char>(bytes[byte] ^ (1 << bit));
      EXPECT_NE(Crc64(bytes), clean) << "byte " << byte << " bit " << bit;
      bytes[byte] = static_cast<char>(bytes[byte] ^ (1 << bit));
    }
  }
  EXPECT_EQ(Crc64(bytes), clean);
}

}  // namespace
}  // namespace plp
