#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace plp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::Ok().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad q");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad q");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad q");
}

TEST(StatusTest, AllErrorFactories) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << NotFoundError("missing");
  EXPECT_EQ(os.str(), "NOT_FOUND: missing");
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "UNIMPLEMENTED");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgumentError("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

namespace macro_helpers {

Status FailIf(bool fail) {
  if (fail) return InternalError("inner");
  return Status::Ok();
}

Status Chained(bool fail) {
  PLP_RETURN_IF_ERROR(FailIf(fail));
  return Status::Ok();
}

Result<int> MakeInt(bool fail) {
  if (fail) return NotFoundError("no int");
  return 7;
}

Result<int> Doubled(bool fail) {
  PLP_ASSIGN_OR_RETURN(const int v, MakeInt(fail));
  return v * 2;
}

}  // namespace macro_helpers

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(macro_helpers::Chained(false).ok());
  EXPECT_EQ(macro_helpers::Chained(true).code(), StatusCode::kInternal);
}

TEST(StatusMacrosTest, AssignOrReturn) {
  Result<int> ok = macro_helpers::Doubled(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 14);
  Result<int> err = macro_helpers::Doubled(true);
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace plp
