#include "common/flags.h"

#include <gtest/gtest.h>

namespace plp {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "binary");
  auto r = FlagParser::Parse(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(FlagParserTest, EqualsForm) {
  const FlagParser f = Parse({"--eps=2.5", "--name=plp"});
  EXPECT_TRUE(f.Has("eps"));
  EXPECT_EQ(f.GetDouble("eps", 0.0), 2.5);
  EXPECT_EQ(f.GetString("name", ""), "plp");
}

TEST(FlagParserTest, SpaceForm) {
  const FlagParser f = Parse({"--steps", "100"});
  EXPECT_EQ(f.GetInt("steps", 0), 100);
}

TEST(FlagParserTest, BareBooleanForm) {
  const FlagParser f = Parse({"--verbose"});
  EXPECT_TRUE(f.GetBool("verbose", false));
}

TEST(FlagParserTest, BooleanValues) {
  EXPECT_TRUE(Parse({"--a=true"}).GetBool("a", false));
  EXPECT_TRUE(Parse({"--a=1"}).GetBool("a", false));
  EXPECT_TRUE(Parse({"--a=yes"}).GetBool("a", false));
  EXPECT_FALSE(Parse({"--a=false"}).GetBool("a", true));
  EXPECT_FALSE(Parse({"--a=0"}).GetBool("a", true));
  EXPECT_FALSE(Parse({"--a=no"}).GetBool("a", true));
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  const FlagParser f = Parse({});
  EXPECT_FALSE(f.Has("x"));
  EXPECT_EQ(f.GetInt("x", 7), 7);
  EXPECT_EQ(f.GetDouble("x", 1.5), 1.5);
  EXPECT_EQ(f.GetString("x", "d"), "d");
  EXPECT_TRUE(f.GetBool("x", true));
}

TEST(FlagParserTest, PositionalArguments) {
  const FlagParser f = Parse({"input.csv", "--k=3", "output.csv"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.csv");
  EXPECT_EQ(f.positional()[1], "output.csv");
  EXPECT_EQ(f.GetInt("k", 0), 3);
}

TEST(FlagParserTest, DoubleList) {
  const FlagParser f = Parse({"--eps=0.5,1,2.5"});
  const std::vector<double> v = f.GetDoubleList("eps", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 0.5);
  EXPECT_EQ(v[1], 1.0);
  EXPECT_EQ(v[2], 2.5);
}

TEST(FlagParserTest, IntList) {
  const FlagParser f = Parse({"--lambdas=1,2,4,6"});
  const std::vector<int64_t> v = f.GetIntList("lambdas", {});
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[3], 6);
}

TEST(FlagParserTest, ListDefaultsWhenAbsent) {
  const FlagParser f = Parse({});
  EXPECT_EQ(f.GetDoubleList("eps", {1.0, 2.0}).size(), 2u);
  EXPECT_EQ(f.GetIntList("k", {3}).size(), 1u);
}

TEST(FlagParserTest, LastValueWins) {
  const FlagParser f = Parse({"--k=1", "--k=2"});
  EXPECT_EQ(f.GetInt("k", 0), 2);
}

TEST(FlagParserTest, NegativeNumberAsValue) {
  const FlagParser f = Parse({"--offset=-5"});
  EXPECT_EQ(f.GetInt("offset", 0), -5);
}

TEST(FlagParserTest, EmptyKeyIsError) {
  const char* args[] = {"binary", "--=3"};
  EXPECT_FALSE(FlagParser::Parse(2, args).ok());
}

}  // namespace
}  // namespace plp
