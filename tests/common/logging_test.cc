#include "common/logging.h"

#include <gtest/gtest.h>

namespace plp {
namespace {

class LoggingTest : public testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, DefaultLevelIsInfo) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, MacroCompilesForAllLevels) {
  // Smoke test: the macros must build and not crash at any level setting.
  SetLogLevel(LogLevel::kError);  // suppress output during the test run
  PLP_LOG(kDebug) << "debug " << 1;
  PLP_LOG(kInfo) << "info " << 2.5;
  PLP_LOG(kWarning) << "warning " << "text";
  PLP_LOG(kError) << "error";  // emitted (level == threshold)
}

TEST_F(LoggingTest, StreamedTypesAreFormatted) {
  SetLogLevel(LogLevel::kError);
  const std::string value = "payload";
  PLP_LOG(kInfo) << value << " " << 42 << " " << 1.5 << " " << true;
}

}  // namespace
}  // namespace plp
