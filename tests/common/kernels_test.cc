// Equivalence of the vectorized multi-accumulator kernels
// (common/math_util) against their strict left-to-right scalar references:
//
//   * DotKernel / SumSquaresKernel agree with the references within a
//     tight reassociation bound (a few ULPs per element of condition).
//   * AxpyKernel / ScaleKernel are element-independent, so they must be
//     *bitwise* equal to the scalar loops at every size, including tails.
//   * The span-level Dot / L2Norm wrappers delegate to the kernels
//     exactly (bitwise).

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"

namespace plp {
namespace {

// Sizes straddling the 4-wide unroll: empty, sub-width, exact multiples,
// and every tail length, plus larger odd sizes.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 15, 16, 50, 257, 1000};

std::vector<double> RandomVector(Rng& rng, size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(lo, hi);
  return v;
}

// Reassociating a sum of n terms perturbs it by at most ~n·eps·Σ|terms|.
double DotErrorBound(const std::vector<double>& a,
                     const std::vector<double>& b) {
  double condition = 0.0;
  for (size_t i = 0; i < a.size(); ++i) condition += std::fabs(a[i] * b[i]);
  const double n = static_cast<double>(a.size()) + 1.0;
  return 4.0 * n * std::numeric_limits<double>::epsilon() * condition;
}

TEST(KernelsTest, DotKernelMatchesScalarReferenceDouble) {
  Rng rng(0xD07);
  for (size_t n : kSizes) {
    const std::vector<double> a = RandomVector(rng, n, -2.0, 2.0);
    const std::vector<double> b = RandomVector(rng, n, -2.0, 2.0);
    const double kernel = DotKernel(a.data(), b.data(), n);
    const double reference = DotReference(a.data(), b.data(), n);
    EXPECT_NEAR(kernel, reference, DotErrorBound(a, b)) << "n=" << n;
  }
}

TEST(KernelsTest, DotKernelMatchesScalarReferenceFloat) {
  Rng rng(0xF7D07);
  for (size_t n : kSizes) {
    std::vector<float> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.Uniform(-2.0, 2.0));
      b[i] = static_cast<float>(rng.Uniform(-2.0, 2.0));
    }
    const float kernel = DotKernel(a.data(), b.data(), n);
    const float reference = DotReference(a.data(), b.data(), n);
    float condition = 0.0f;
    for (size_t i = 0; i < n; ++i) condition += std::fabs(a[i] * b[i]);
    const float bound = 4.0f * (static_cast<float>(n) + 1.0f) *
                        std::numeric_limits<float>::epsilon() * condition;
    EXPECT_NEAR(kernel, reference, bound) << "n=" << n;
  }
}

TEST(KernelsTest, SumSquaresKernelMatchesScalarReference) {
  Rng rng(0x55E5);
  for (size_t n : kSizes) {
    const std::vector<double> x = RandomVector(rng, n, -3.0, 3.0);
    const double kernel = SumSquaresKernel(x.data(), n);
    const double reference = SumSquaresReference(x.data(), n);
    EXPECT_NEAR(kernel, reference, DotErrorBound(x, x)) << "n=" << n;
    EXPECT_GE(kernel, 0.0);
  }
}

TEST(KernelsTest, AxpyKernelBitwiseEqualsScalarReference) {
  Rng rng(0xA471);
  for (size_t n : kSizes) {
    const std::vector<double> x = RandomVector(rng, n, -5.0, 5.0);
    std::vector<double> y_kernel = RandomVector(rng, n, -1.0, 1.0);
    std::vector<double> y_reference = y_kernel;
    const double alpha = rng.Uniform(-2.0, 2.0);
    AxpyKernel(alpha, x.data(), y_kernel.data(), n);
    AxpyReference(alpha, x.data(), y_reference.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(y_kernel[i], y_reference[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(KernelsTest, ScaleKernelBitwiseEqualsScalarLoop) {
  Rng rng(0x5CA1E);
  for (size_t n : kSizes) {
    std::vector<double> x_kernel = RandomVector(rng, n, -5.0, 5.0);
    std::vector<double> x_scalar = x_kernel;
    const double alpha = rng.Uniform(-2.0, 2.0);
    ScaleKernel(alpha, x_kernel.data(), n);
    for (double& v : x_scalar) v *= alpha;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(x_kernel[i], x_scalar[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(KernelsTest, SpanWrappersDelegateToKernelsBitwise) {
  Rng rng(0x3A9);
  const std::vector<double> a = RandomVector(rng, 129, -2.0, 2.0);
  const std::vector<double> b = RandomVector(rng, 129, -2.0, 2.0);
  EXPECT_EQ(Dot(a, b), DotKernel(a.data(), b.data(), a.size()));
  EXPECT_EQ(L2Norm(a), std::sqrt(SumSquaresKernel(a.data(), a.size())));
}

TEST(KernelsTest, KernelsHandleEmptyInput) {
  EXPECT_EQ(DotKernel<double>(nullptr, nullptr, 0), 0.0);
  EXPECT_EQ(SumSquaresKernel<double>(nullptr, 0), 0.0);
  AxpyKernel<double>(2.0, nullptr, nullptr, 0);  // must not dereference
  ScaleKernel<double>(2.0, nullptr, 0);
}

}  // namespace
}  // namespace plp
