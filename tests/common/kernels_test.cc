// Equivalence of the vectorized multi-accumulator kernels
// (common/math_util) against their strict left-to-right scalar references:
//
//   * DotKernel / SumSquaresKernel agree with the references within a
//     tight reassociation bound (a few ULPs per element of condition).
//   * AxpyKernel / ScaleKernel are element-independent, so they must be
//     *bitwise* equal to the scalar loops at every size, including tails.
//   * The runtime-dispatched double kernels (AVX2 where the CPU has it)
//     must be *bitwise* equal to the portable scalar spec at every size —
//     including the dot reduction, whose 16-lane accumulation tree is
//     defined to be reproducible by both bodies. This is what keeps golden
//     CRC pins machine-independent.
//   * The span-level Dot / L2Norm wrappers delegate to the kernels
//     exactly (bitwise).

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"

namespace plp {
namespace {

// Sizes straddling the unroll widths (4-wide element-wise, 16-wide dot):
// empty, sub-width, exact multiples, every interesting tail length, plus
// larger odd sizes.
const size_t kSizes[] = {0,  1,  2,  3,  4,  5,   6,   7,   8,
                         15, 16, 17, 31, 32, 33,  47,  48,  50,
                         63, 64, 65, 96, 257, 1000};

std::vector<double> RandomVector(Rng& rng, size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(lo, hi);
  return v;
}

// Reassociating a sum of n terms perturbs it by at most ~n·eps·Σ|terms|.
double DotErrorBound(const std::vector<double>& a,
                     const std::vector<double>& b) {
  double condition = 0.0;
  for (size_t i = 0; i < a.size(); ++i) condition += std::fabs(a[i] * b[i]);
  const double n = static_cast<double>(a.size()) + 1.0;
  return 4.0 * n * std::numeric_limits<double>::epsilon() * condition;
}

TEST(KernelsTest, DotKernelMatchesScalarReferenceDouble) {
  Rng rng(0xD07);
  for (size_t n : kSizes) {
    const std::vector<double> a = RandomVector(rng, n, -2.0, 2.0);
    const std::vector<double> b = RandomVector(rng, n, -2.0, 2.0);
    const double kernel = DotKernel(a.data(), b.data(), n);
    const double reference = DotReference(a.data(), b.data(), n);
    EXPECT_NEAR(kernel, reference, DotErrorBound(a, b)) << "n=" << n;
  }
}

TEST(KernelsTest, DotKernelMatchesScalarReferenceFloat) {
  Rng rng(0xF7D07);
  for (size_t n : kSizes) {
    std::vector<float> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.Uniform(-2.0, 2.0));
      b[i] = static_cast<float>(rng.Uniform(-2.0, 2.0));
    }
    const float kernel = DotKernel(a.data(), b.data(), n);
    const float reference = DotReference(a.data(), b.data(), n);
    float condition = 0.0f;
    for (size_t i = 0; i < n; ++i) condition += std::fabs(a[i] * b[i]);
    const float bound = 4.0f * (static_cast<float>(n) + 1.0f) *
                        std::numeric_limits<float>::epsilon() * condition;
    EXPECT_NEAR(kernel, reference, bound) << "n=" << n;
  }
}

TEST(KernelsTest, SumSquaresKernelMatchesScalarReference) {
  Rng rng(0x55E5);
  for (size_t n : kSizes) {
    const std::vector<double> x = RandomVector(rng, n, -3.0, 3.0);
    const double kernel = SumSquaresKernel(x.data(), n);
    const double reference = SumSquaresReference(x.data(), n);
    EXPECT_NEAR(kernel, reference, DotErrorBound(x, x)) << "n=" << n;
    EXPECT_GE(kernel, 0.0);
  }
}

TEST(KernelsTest, AxpyKernelBitwiseEqualsScalarReference) {
  Rng rng(0xA471);
  for (size_t n : kSizes) {
    const std::vector<double> x = RandomVector(rng, n, -5.0, 5.0);
    std::vector<double> y_kernel = RandomVector(rng, n, -1.0, 1.0);
    std::vector<double> y_reference = y_kernel;
    const double alpha = rng.Uniform(-2.0, 2.0);
    AxpyKernel(alpha, x.data(), y_kernel.data(), n);
    AxpyReference(alpha, x.data(), y_reference.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(y_kernel[i], y_reference[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(KernelsTest, ScaleKernelBitwiseEqualsScalarLoop) {
  Rng rng(0x5CA1E);
  for (size_t n : kSizes) {
    std::vector<double> x_kernel = RandomVector(rng, n, -5.0, 5.0);
    std::vector<double> x_scalar = x_kernel;
    const double alpha = rng.Uniform(-2.0, 2.0);
    ScaleKernel(alpha, x_kernel.data(), n);
    for (double& v : x_scalar) v *= alpha;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(x_kernel[i], x_scalar[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(KernelsTest, SubKernelBitwiseEqualsScalarReference) {
  Rng rng(0x5B0);
  for (size_t n : kSizes) {
    const std::vector<double> a = RandomVector(rng, n, -5.0, 5.0);
    const std::vector<double> b = RandomVector(rng, n, -5.0, 5.0);
    std::vector<double> out_kernel(n, 0.0);
    std::vector<double> out_reference(n, 0.0);
    SubKernel(a.data(), b.data(), out_kernel.data(), n);
    SubReference(a.data(), b.data(), out_reference.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out_kernel[i], out_reference[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(KernelsTest, SubKernelAllowsOutAliasingA) {
  // Element-independent: each slot is read before it is written, so callers
  // may compute a -= b in place by passing out == a.
  Rng rng(0x5B1);
  for (size_t n : kSizes) {
    std::vector<double> a = RandomVector(rng, n, -5.0, 5.0);
    const std::vector<double> a_copy = a;
    const std::vector<double> b = RandomVector(rng, n, -5.0, 5.0);
    SubKernel(a.data(), b.data(), a.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(a[i], a_copy[i] - b[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(KernelsTest, DispatchedKernelsBitwiseMatchPortableSpec) {
  // On AVX2 hardware the dispatched double kernels run the vector bodies;
  // this pins them bitwise against the portable scalar spec over every
  // size (main loop + every tail shape). On CPUs without AVX2 the
  // dispatched kernel IS the portable one and the test is trivially
  // green — either way, the two can never disagree, which is what makes
  // golden pins machine-independent.
  Rng rng(0xA5D);
  for (size_t n : kSizes) {
    const std::vector<double> a = RandomVector(rng, n, -3.0, 3.0);
    const std::vector<double> b = RandomVector(rng, n, -3.0, 3.0);
    const double alpha = rng.Uniform(-2.0, 2.0);

    EXPECT_EQ(DotKernel(a.data(), b.data(), n),
              DotKernelPortable(a.data(), b.data(), n))
        << "n=" << n;

    std::vector<double> y_dispatch = RandomVector(rng, n, -1.0, 1.0);
    std::vector<double> y_portable = y_dispatch;
    AxpyKernel(alpha, a.data(), y_dispatch.data(), n);
    AxpyKernelPortable(alpha, a.data(), y_portable.data(), n);

    std::vector<double> x_dispatch = a;
    std::vector<double> x_portable = a;
    ScaleKernel(alpha, x_dispatch.data(), n);
    ScaleKernelPortable(alpha, x_portable.data(), n);

    std::vector<double> d_dispatch(n, 0.0), d_portable(n, 0.0);
    SubKernel(a.data(), b.data(), d_dispatch.data(), n);
    SubKernelPortable(a.data(), b.data(), d_portable.data(), n);

    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(y_dispatch[i], y_portable[i]) << "axpy n=" << n << " i=" << i;
      EXPECT_EQ(x_dispatch[i], x_portable[i]) << "scale n=" << n << " i=" << i;
      EXPECT_EQ(d_dispatch[i], d_portable[i]) << "sub n=" << n << " i=" << i;
    }
  }
}

TEST(KernelsTest, DotKernelImplementsDocumentedLaneSpec) {
  // Independent re-derivation of the 16-lane reduction spec: lane j sums
  // elements i ≡ j (mod 16) over the largest multiple of 16, lanes combine
  // as u_l = (s_l + s_{l+4}) + (s_{l+8} + s_{l+12}), and the result is
  // ((u0+u1) + (u2+u3)) + tail. Bitwise — this is the contract the golden
  // CRCs are pinned against.
  Rng rng(0x1A7E);
  for (size_t n : kSizes) {
    const std::vector<double> a = RandomVector(rng, n, -2.0, 2.0);
    const std::vector<double> b = RandomVector(rng, n, -2.0, 2.0);
    double s[16] = {0.0};
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
      for (size_t j = 0; j < 16; ++j) s[j] += a[i + j] * b[i + j];
    }
    double tail = 0.0;
    for (; i < n; ++i) tail += a[i] * b[i];
    double u[4];
    for (size_t l = 0; l < 4; ++l) {
      u[l] = (s[l] + s[l + 4]) + (s[l + 8] + s[l + 12]);
    }
    const double expected = ((u[0] + u[1]) + (u[2] + u[3])) + tail;
    EXPECT_EQ(DotKernel(a.data(), b.data(), n), expected) << "n=" << n;
  }
}

TEST(KernelsTest, SpanWrappersDelegateToKernelsBitwise) {
  Rng rng(0x3A9);
  const std::vector<double> a = RandomVector(rng, 129, -2.0, 2.0);
  const std::vector<double> b = RandomVector(rng, 129, -2.0, 2.0);
  EXPECT_EQ(Dot(a, b), DotKernel(a.data(), b.data(), a.size()));
  EXPECT_EQ(L2Norm(a), std::sqrt(SumSquaresKernel(a.data(), a.size())));
}

TEST(KernelsTest, KernelsHandleEmptyInput) {
  EXPECT_EQ(DotKernel<double>(nullptr, nullptr, 0), 0.0);
  EXPECT_EQ(SumSquaresKernel<double>(nullptr, 0), 0.0);
  AxpyKernel<double>(2.0, nullptr, nullptr, 0);  // must not dereference
  ScaleKernel<double>(2.0, nullptr, 0);
  SubKernel<double>(nullptr, nullptr, nullptr, 0);
}

}  // namespace
}  // namespace plp
