#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace plp {
namespace {

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats s;
  for (double x : xs) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  // Sample variance with n-1 denominator: sum((x-5)^2) = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.Add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25 * 1000 / 999, 1e-3);
}

TEST(PairedTTestTest, RequiresEqualSizes) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_FALSE(PairedTTest(a, b).ok());
}

TEST(PairedTTestTest, RequiresTwoPairs) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {2.0};
  EXPECT_FALSE(PairedTTest(a, b).ok());
}

TEST(PairedTTestTest, IdenticalSamplesGivePOne) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  auto r = PairedTTest(a, a);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->mean_difference, 0.0);
  EXPECT_EQ(r->p_value, 1.0);
}

TEST(PairedTTestTest, ConstantShiftGivesPZero) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {2.0, 3.0, 4.0};
  auto r = PairedTTest(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->mean_difference, -1.0);
  EXPECT_EQ(r->p_value, 0.0);  // zero variance of differences
}

TEST(PairedTTestTest, KnownCase) {
  // Differences: {1, 2, 3, 4, 5}: mean 3, sd sqrt(2.5), se sqrt(0.5),
  // t = 3/sqrt(0.5) ≈ 4.2426, df = 4 → p ≈ 0.0132.
  const std::vector<double> a = {2.0, 4.0, 6.0, 8.0, 10.0};
  const std::vector<double> b = {1.0, 2.0, 3.0, 4.0, 5.0};
  auto r = PairedTTest(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->mean_difference, 3.0, 1e-12);
  EXPECT_NEAR(r->t_statistic, 4.2426, 1e-3);
  EXPECT_EQ(r->degrees_of_freedom, 4.0);
  EXPECT_NEAR(r->p_value, 0.0132, 2e-3);
}

TEST(PairedTTestTest, SignificanceDetectsRealGap) {
  // Simulates the paper's claim: method A consistently beats method B
  // across seeds → p < 0.01.
  std::vector<double> a, b;
  for (int i = 0; i < 12; ++i) {
    a.push_back(0.20 + 0.005 * (i % 3));
    b.push_back(0.10 + 0.005 * ((i + 1) % 3));
  }
  auto r = PairedTTest(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->p_value, 0.01);
  EXPECT_GT(r->mean_difference, 0.0);
}

double UniformCdf(double x) {
  if (x < 0.0) return 0.0;
  if (x > 1.0) return 1.0;
  return x;
}

TEST(KolmogorovSmirnovTest, RejectsEmptySample) {
  EXPECT_FALSE(KolmogorovSmirnovTest({}, UniformCdf).ok());
}

TEST(KolmogorovSmirnovTest, PerfectGridHasSmallStatistic) {
  // Midpoints (i+0.5)/n are the best possible fit: D = 1/(2n).
  std::vector<double> sample;
  for (int i = 0; i < 100; ++i) sample.push_back((i + 0.5) / 100.0);
  auto r = KolmogorovSmirnovTest(sample, UniformCdf);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->statistic, 0.005, 1e-12);
  EXPECT_GT(r->p_value, 0.99);
}

TEST(KolmogorovSmirnovTest, DetectsWrongDistribution) {
  // Squaring uniform samples concentrates mass near 0: strong rejection.
  std::vector<double> sample;
  for (int i = 0; i < 200; ++i) {
    const double u = (i + 0.5) / 200.0;
    sample.push_back(u * u);
  }
  auto r = KolmogorovSmirnovTest(sample, UniformCdf);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->p_value, 1e-6);
}

TEST(KolmogorovSmirnovTest, RejectsBrokenCdf) {
  const std::vector<double> sample = {0.5};
  EXPECT_FALSE(
      KolmogorovSmirnovTest(sample, [](double) { return 2.0; }).ok());
}

TEST(ChiSquareTest, ValidatesInput) {
  const std::vector<double> obs = {1.0, 2.0};
  const std::vector<double> exp_ok = {1.5, 1.5};
  const std::vector<double> exp_short = {3.0};
  const std::vector<double> exp_zero = {3.0, 0.0};
  EXPECT_FALSE(ChiSquareGoodnessOfFit(obs, exp_short).ok());
  EXPECT_FALSE(ChiSquareGoodnessOfFit(obs, exp_zero).ok());
  EXPECT_FALSE(ChiSquareGoodnessOfFit(obs, exp_ok, 1).ok());  // df = 0
  EXPECT_TRUE(ChiSquareGoodnessOfFit(obs, exp_ok).ok());
}

TEST(ChiSquareTest, ExactFitGivesPOne) {
  const std::vector<double> counts = {10.0, 20.0, 30.0};
  auto r = ChiSquareGoodnessOfFit(counts, counts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->statistic, 0.0);
  EXPECT_EQ(r->degrees_of_freedom, 2.0);
  EXPECT_NEAR(r->p_value, 1.0, 1e-12);
}

TEST(ChiSquareTest, KnownCase) {
  // Classic fair-die example: observed {5,8,9,8,10,20} over 60 rolls,
  // expected 10 each → X² = 13.4, df 5, p ≈ 0.0199.
  const std::vector<double> obs = {5.0, 8.0, 9.0, 8.0, 10.0, 20.0};
  const std::vector<double> expected(6, 10.0);
  auto r = ChiSquareGoodnessOfFit(obs, expected);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->statistic, 13.4, 1e-12);
  EXPECT_NEAR(r->p_value, 0.0199, 5e-4);
}

TEST(ZTestMeanTest, ValidatesInput) {
  const std::vector<double> sample = {1.0, 2.0};
  EXPECT_FALSE(ZTestMean({}, 0.0, 1.0).ok());
  EXPECT_FALSE(ZTestMean(sample, 0.0, 0.0).ok());
}

TEST(ZTestMeanTest, KnownCase) {
  // Mean 1, hypothesized 0, stddev 2, n = 16 → z = 2, p ≈ 0.0455.
  std::vector<double> sample(16, 1.0);
  auto r = ZTestMean(sample, 0.0, 2.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->z_statistic, 2.0, 1e-12);
  EXPECT_NEAR(r->p_value, 0.0455, 5e-4);
}

TEST(ZTestMeanTest, MatchingMeanGivesLargeP) {
  const std::vector<double> sample = {-0.5, 0.5, -0.25, 0.25};
  auto r = ZTestMean(sample, 0.0, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->z_statistic, 0.0);
  EXPECT_NEAR(r->p_value, 1.0, 1e-12);
}

}  // namespace
}  // namespace plp
