#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace plp {
namespace {

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats s;
  for (double x : xs) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  // Sample variance with n-1 denominator: sum((x-5)^2) = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.Add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25 * 1000 / 999, 1e-3);
}

TEST(PairedTTestTest, RequiresEqualSizes) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_FALSE(PairedTTest(a, b).ok());
}

TEST(PairedTTestTest, RequiresTwoPairs) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {2.0};
  EXPECT_FALSE(PairedTTest(a, b).ok());
}

TEST(PairedTTestTest, IdenticalSamplesGivePOne) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  auto r = PairedTTest(a, a);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->mean_difference, 0.0);
  EXPECT_EQ(r->p_value, 1.0);
}

TEST(PairedTTestTest, ConstantShiftGivesPZero) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {2.0, 3.0, 4.0};
  auto r = PairedTTest(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->mean_difference, -1.0);
  EXPECT_EQ(r->p_value, 0.0);  // zero variance of differences
}

TEST(PairedTTestTest, KnownCase) {
  // Differences: {1, 2, 3, 4, 5}: mean 3, sd sqrt(2.5), se sqrt(0.5),
  // t = 3/sqrt(0.5) ≈ 4.2426, df = 4 → p ≈ 0.0132.
  const std::vector<double> a = {2.0, 4.0, 6.0, 8.0, 10.0};
  const std::vector<double> b = {1.0, 2.0, 3.0, 4.0, 5.0};
  auto r = PairedTTest(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->mean_difference, 3.0, 1e-12);
  EXPECT_NEAR(r->t_statistic, 4.2426, 1e-3);
  EXPECT_EQ(r->degrees_of_freedom, 4.0);
  EXPECT_NEAR(r->p_value, 0.0132, 2e-3);
}

TEST(PairedTTestTest, SignificanceDetectsRealGap) {
  // Simulates the paper's claim: method A consistently beats method B
  // across seeds → p < 0.01.
  std::vector<double> a, b;
  for (int i = 0; i < 12; ++i) {
    a.push_back(0.20 + 0.005 * (i % 3));
    b.push_back(0.10 + 0.005 * ((i + 1) % 3));
  }
  auto r = PairedTTest(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->p_value, 0.01);
  EXPECT_GT(r->mean_difference, 0.0);
}

}  // namespace
}  // namespace plp
