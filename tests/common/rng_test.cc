#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace plp {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() != b.NextU64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.NextU64());
  EXPECT_GT(seen.size(), 95u);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(7);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanAndVariance) {
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.Uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(RngTest, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(RngTest, UniformIntBoundsAndCoverage) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(uint64_t{10});
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit in 1000 draws
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-2}, int64_t{2});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(13);
  EXPECT_EQ(rng.UniformInt(int64_t{4}, int64_t{4}), 4);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, GaussianScaled) {
  Rng rng(23);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian(5.0, 2.0);
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(sum_sq / n - mean * mean, 4.0, 0.1);
}

TEST(RngTest, GaussianZeroStddevIsDeterministic) {
  Rng rng(23);
  EXPECT_EQ(rng.Gaussian(1.5, 0.0), 1.5);
}

TEST(RngTest, AddGaussianNoiseStatistics) {
  Rng rng(29);
  std::vector<double> values(50000, 1.0);
  rng.AddGaussianNoise(values, 0.5);
  double sum = 0.0, sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += (v - 1.0) * (v - 1.0);
  }
  EXPECT_NEAR(sum / values.size(), 1.0, 0.02);
  EXPECT_NEAR(sum_sq / values.size(), 0.25, 0.01);
}

TEST(RngTest, AddGaussianNoiseZeroStddevIsNoop) {
  Rng rng(29);
  std::vector<double> values = {1.0, 2.0, 3.0};
  rng.AddGaussianNoise(values, 0.0);
  EXPECT_EQ(values, (std::vector<double>{1.0, 2.0, 3.0}));
}

class PoissonMeanTest : public testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MeanMatches) {
  const double mean = GetParam();
  Rng rng(31);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Poisson(mean));
  }
  EXPECT_NEAR(sum / n, mean, std::max(0.05, mean * 0.05));
}

INSTANTIATE_TEST_SUITE_P(SmallAndLargeMeans, PoissonMeanTest,
                         testing::Values(0.1, 1.0, 5.0, 29.0, 50.0, 200.0));

TEST(RngTest, PoissonZeroMean) {
  Rng rng(31);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(RngTest, ShuffleActuallyShuffles) {
  Rng rng(41);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(43);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(43);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementUnbiased) {
  Rng rng(47);
  std::vector<int> counts(10, 0);
  for (int rep = 0; rep < 20000; ++rep) {
    for (size_t s : rng.SampleWithoutReplacement(10, 3)) ++counts[s];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 20000.0, 0.3, 0.02);
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(100, 1.0);
  double total = 0.0;
  for (size_t k = 0; k < 100; ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfTest, PmfIsDecreasing) {
  ZipfDistribution zipf(50, 1.2);
  for (size_t k = 1; k < 50; ++k) EXPECT_LT(zipf.Pmf(k), zipf.Pmf(k - 1));
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  for (size_t k = 0; k < 10; ++k) EXPECT_NEAR(zipf.Pmf(k), 0.1, 1e-12);
}

TEST(ZipfTest, SampleFrequenciesMatchPmf) {
  ZipfDistribution zipf(20, 1.0);
  Rng rng(53);
  std::vector<int> counts(20, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (size_t k = 0; k < 20; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.Pmf(k), 0.01);
  }
}

TEST(ZipfTest, SingleElement) {
  ZipfDistribution zipf(1, 2.0);
  Rng rng(53);
  EXPECT_EQ(zipf.Sample(rng), 0u);
  EXPECT_NEAR(zipf.Pmf(0), 1.0, 1e-12);
}

TEST(AliasSamplerTest, FrequenciesMatchWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasSampler sampler(weights);
  Rng rng(59);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(rng)];
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, weights[i] / 10.0, 0.01);
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler sampler({0.0, 1.0, 0.0, 1.0});
  Rng rng(61);
  for (int i = 0; i < 10000; ++i) {
    const size_t s = sampler.Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasSamplerTest, SingleWeight) {
  AliasSampler sampler({5.0});
  Rng rng(61);
  EXPECT_EQ(sampler.Sample(rng), 0u);
}

}  // namespace
}  // namespace plp
