#include "common/fault_injection.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/status.h"

namespace plp {
namespace {

// Mirrors production call sites: a Status-returning function with one
// named point.
Status GuardedOperation(const char* point) {
  PLP_FAULT_POINT(point);
  return Status::Ok();
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjection::Disarm();
    ::unsetenv("PLP_FAULT");
  }
};

TEST_F(FaultInjectionTest, DisarmedIsInvisible) {
  EXPECT_FALSE(FaultInjection::Armed());
  EXPECT_TRUE(GuardedOperation("some.point").ok());
}

TEST_F(FaultInjectionTest, FailTriggersOnlyOnArmedPoint) {
  FaultInjection::Arm("target.point", FaultMode::kFail);
  EXPECT_TRUE(GuardedOperation("other.point").ok());
  const Status status = GuardedOperation("target.point");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST_F(FaultInjectionTest, FailIsOneShot) {
  FaultInjection::Arm("target.point", FaultMode::kFail);
  EXPECT_FALSE(GuardedOperation("target.point").ok());
  // Auto-disarmed: the cleanup/retry path must not re-fire.
  EXPECT_FALSE(FaultInjection::Armed());
  EXPECT_TRUE(GuardedOperation("target.point").ok());
}

TEST_F(FaultInjectionTest, TriggerHitCountsOneBased) {
  FaultInjection::Arm("target.point", FaultMode::kFail, /*trigger_hit=*/3);
  EXPECT_TRUE(GuardedOperation("target.point").ok());
  EXPECT_TRUE(GuardedOperation("target.point").ok());
  EXPECT_FALSE(GuardedOperation("target.point").ok());
  EXPECT_EQ(FaultInjection::HitCount(), 3);
}

TEST_F(FaultInjectionTest, DelayProceedsAndStaysArmed) {
  FaultInjection::Arm("target.point", FaultMode::kDelay, /*trigger_hit=*/1,
                      /*delay_millis=*/1);
  EXPECT_TRUE(GuardedOperation("target.point").ok());
  EXPECT_TRUE(GuardedOperation("target.point").ok());
  EXPECT_TRUE(FaultInjection::Armed());  // delay points fire every hit
}

TEST_F(FaultInjectionTest, ArmFromEnvParsesPointModeAndHit) {
  ::setenv("PLP_FAULT", "ckpt.before_save:fail@2", 1);
  FaultInjection::ArmFromEnv();
  ASSERT_TRUE(FaultInjection::Armed());
  EXPECT_TRUE(GuardedOperation("ckpt.before_save").ok());
  EXPECT_FALSE(GuardedOperation("ckpt.before_save").ok());
}

TEST_F(FaultInjectionTest, ArmFromEnvUnsetIsNoop) {
  ::unsetenv("PLP_FAULT");
  FaultInjection::ArmFromEnv();
  EXPECT_FALSE(FaultInjection::Armed());
}

TEST_F(FaultInjectionTest, ArmFromEnvDelayMode) {
  ::setenv("PLP_FAULT", "serve.execute:delay5", 1);
  FaultInjection::ArmFromEnv();
  ASSERT_TRUE(FaultInjection::Armed());
  EXPECT_TRUE(GuardedOperation("serve.execute").ok());
}

}  // namespace
}  // namespace plp
