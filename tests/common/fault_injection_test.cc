#include "common/fault_injection.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"

namespace plp {
namespace {

// Mirrors production call sites: a Status-returning function with one
// named point.
Status GuardedOperation(const char* point) {
  PLP_FAULT_POINT(point);
  return Status::Ok();
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjection::Disarm();
    ::unsetenv("PLP_FAULT");
  }
};

TEST_F(FaultInjectionTest, DisarmedIsInvisible) {
  EXPECT_FALSE(FaultInjection::Armed());
  EXPECT_TRUE(GuardedOperation("some.point").ok());
}

TEST_F(FaultInjectionTest, FailTriggersOnlyOnArmedPoint) {
  FaultInjection::Arm("target.point", FaultMode::kFail);
  EXPECT_TRUE(GuardedOperation("other.point").ok());
  const Status status = GuardedOperation("target.point");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST_F(FaultInjectionTest, FailIsOneShot) {
  FaultInjection::Arm("target.point", FaultMode::kFail);
  EXPECT_FALSE(GuardedOperation("target.point").ok());
  // Auto-disarmed: the cleanup/retry path must not re-fire.
  EXPECT_FALSE(FaultInjection::Armed());
  EXPECT_TRUE(GuardedOperation("target.point").ok());
}

TEST_F(FaultInjectionTest, TriggerHitCountsOneBased) {
  FaultInjection::Arm("target.point", FaultMode::kFail, /*trigger_hit=*/3);
  EXPECT_TRUE(GuardedOperation("target.point").ok());
  EXPECT_TRUE(GuardedOperation("target.point").ok());
  EXPECT_FALSE(GuardedOperation("target.point").ok());
  EXPECT_EQ(FaultInjection::HitCount(), 3);
}

TEST_F(FaultInjectionTest, DelayProceedsAndStaysArmed) {
  FaultInjection::Arm("target.point", FaultMode::kDelay, /*trigger_hit=*/1,
                      /*delay_millis=*/1);
  EXPECT_TRUE(GuardedOperation("target.point").ok());
  EXPECT_TRUE(GuardedOperation("target.point").ok());
  EXPECT_TRUE(FaultInjection::Armed());  // delay points fire every hit
}

TEST_F(FaultInjectionTest, ArmFromEnvParsesPointModeAndHit) {
  ::setenv("PLP_FAULT", "ckpt.before_save:fail@2", 1);
  FaultInjection::ArmFromEnv();
  ASSERT_TRUE(FaultInjection::Armed());
  EXPECT_TRUE(GuardedOperation("ckpt.before_save").ok());
  EXPECT_FALSE(GuardedOperation("ckpt.before_save").ok());
}

TEST_F(FaultInjectionTest, ArmFromEnvUnsetIsNoop) {
  ::unsetenv("PLP_FAULT");
  FaultInjection::ArmFromEnv();
  EXPECT_FALSE(FaultInjection::Armed());
}

TEST_F(FaultInjectionTest, ArmFromEnvDelayMode) {
  ::setenv("PLP_FAULT", "serve.execute:delay5", 1);
  FaultInjection::ArmFromEnv();
  ASSERT_TRUE(FaultInjection::Armed());
  EXPECT_TRUE(GuardedOperation("serve.execute").ok());
}

TEST_F(FaultInjectionTest, EveryNthFiresPeriodicallyAndStaysArmed) {
  FaultInjection::Arm("target.point", FaultMode::kFail,
                      FaultTrigger::EveryNth(3));
  for (int round = 0; round < 4; ++round) {
    EXPECT_TRUE(GuardedOperation("target.point").ok());
    EXPECT_TRUE(GuardedOperation("target.point").ok());
    EXPECT_FALSE(GuardedOperation("target.point").ok());
    // Recurring trigger: a fired kFail does NOT disarm (unlike kOnce) —
    // the retry path must be able to fail again.
    EXPECT_TRUE(FaultInjection::Armed());
  }
  EXPECT_EQ(FaultInjection::HitCount(), 12);
  EXPECT_EQ(FaultInjection::FireCount(), 4);
}

TEST_F(FaultInjectionTest, ProbabilityZeroNeverFiresOneAlwaysFires) {
  FaultInjection::Arm("target.point", FaultMode::kFail,
                      FaultTrigger::WithProbability(0.0, /*seed=*/7));
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(GuardedOperation("target.point").ok());
  }
  EXPECT_EQ(FaultInjection::FireCount(), 0);

  FaultInjection::Arm("target.point", FaultMode::kFail,
                      FaultTrigger::WithProbability(1.0, /*seed=*/7));
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(GuardedOperation("target.point").ok());
    EXPECT_TRUE(FaultInjection::Armed());  // recurring: stays armed
  }
  EXPECT_EQ(FaultInjection::FireCount(), 10);
}

TEST_F(FaultInjectionTest, ProbabilityScheduleIsDeterministicUnderSeed) {
  auto pattern_for = [](uint64_t seed) {
    FaultInjection::Arm("target.point", FaultMode::kFail,
                        FaultTrigger::WithProbability(0.5, seed));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!GuardedOperation("target.point").ok());
    }
    FaultInjection::Disarm();
    return fired;
  };
  const std::vector<bool> a = pattern_for(42);
  const std::vector<bool> b = pattern_for(42);
  const std::vector<bool> c = pattern_for(43);
  EXPECT_EQ(a, b) << "same seed must replay the identical fault schedule";
  EXPECT_NE(a, c) << "different seeds should diverge";
  // Sanity: p=0.5 over 64 hits fires a nontrivial mix of both outcomes.
  const auto fires = std::count(a.begin(), a.end(), true);
  EXPECT_GT(fires, 8);
  EXPECT_LT(fires, 56);
}

TEST_F(FaultInjectionTest, ArmFromEnvParsesEveryNth) {
  ::setenv("PLP_FAULT", "publish.promote:fail@every2", 1);
  FaultInjection::ArmFromEnv();
  ASSERT_TRUE(FaultInjection::Armed());
  EXPECT_TRUE(GuardedOperation("publish.promote").ok());
  EXPECT_FALSE(GuardedOperation("publish.promote").ok());
  EXPECT_TRUE(GuardedOperation("publish.promote").ok());
  EXPECT_FALSE(GuardedOperation("publish.promote").ok());
}

TEST_F(FaultInjectionTest, ArmFromEnvParsesProbabilityWithSeed) {
  ::setenv("PLP_FAULT", "publish.stage:fail@p1.0/9", 1);
  FaultInjection::ArmFromEnv();
  ASSERT_TRUE(FaultInjection::Armed());
  EXPECT_FALSE(GuardedOperation("publish.stage").ok());
  EXPECT_FALSE(GuardedOperation("publish.stage").ok());

  // Env-parsed p-trigger replays the same schedule as the programmatic
  // arming with the same seed.
  ::setenv("PLP_FAULT", "publish.stage:fail@p0.5/11", 1);
  FaultInjection::ArmFromEnv();
  std::vector<bool> from_env;
  for (int i = 0; i < 32; ++i) {
    from_env.push_back(!GuardedOperation("publish.stage").ok());
  }
  FaultInjection::Arm("publish.stage", FaultMode::kFail,
                      FaultTrigger::WithProbability(0.5, 11));
  std::vector<bool> programmatic;
  for (int i = 0; i < 32; ++i) {
    programmatic.push_back(!GuardedOperation("publish.stage").ok());
  }
  EXPECT_EQ(from_env, programmatic);
}

TEST_F(FaultInjectionTest, DisarmedFastPathRecordsNoHits) {
  // The disarmed fast path is one relaxed load: Hit() is never entered,
  // so no hit is ever counted against a stale spec.
  FaultInjection::Arm("target.point", FaultMode::kFail);
  FaultInjection::Disarm();
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(GuardedOperation("target.point").ok());
  }
  EXPECT_EQ(FaultInjection::HitCount(), 0);
  EXPECT_EQ(FaultInjection::FireCount(), 0);
}

}  // namespace
}  // namespace plp
