#include "serve/model_registry.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "common/fault_injection.h"
#include "common/rng.h"
#include "sgns/model.h"

namespace plp::serve {
namespace {

std::shared_ptr<const ModelSnapshot> MakeSnapshot(uint64_t version,
                                                  uint64_t seed) {
  Rng rng(seed);
  sgns::SgnsConfig config;
  config.embedding_dim = 8;
  config.init_scale = 1.0;
  auto model = sgns::SgnsModel::Create(24, config, rng);
  EXPECT_TRUE(model.ok());
  auto snapshot = ModelSnapshot::FromModel(*model, version);
  EXPECT_TRUE(snapshot.ok());
  return *snapshot;
}

TEST(ModelRegistryTest, StartsEmptyAndPublishes) {
  ModelRegistry registry;
  EXPECT_FALSE(registry.has_model());
  EXPECT_EQ(registry.Current(), nullptr);
  EXPECT_EQ(registry.generation(), 0u);

  auto snapshot = MakeSnapshot(1, 3);
  EXPECT_EQ(registry.Publish(snapshot), 1u);
  EXPECT_TRUE(registry.has_model());
  EXPECT_EQ(registry.Current(), snapshot);
  EXPECT_EQ(registry.generation(), 1u);

  EXPECT_EQ(registry.Publish(MakeSnapshot(2, 4)), 2u);
  EXPECT_EQ(registry.Current()->version(), 2u);
}

TEST(ModelRegistryTest, ConstructorSeedsInitialSnapshot) {
  ModelRegistry registry(MakeSnapshot(9, 5));
  ASSERT_TRUE(registry.has_model());
  EXPECT_EQ(registry.Current()->version(), 9u);
  EXPECT_EQ(registry.generation(), 1u);
}

TEST(ModelRegistryTest, PublishVerifiedRejectsWithoutDisturbing) {
  ModelRegistry registry;
  auto good = MakeSnapshot(1, 3);
  auto published = registry.PublishVerified(good);
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(*published, 1u);

  // Null: Status, not an abort — and the installed snapshot is untouched.
  auto null_result = registry.PublishVerified(nullptr);
  ASSERT_FALSE(null_result.ok());
  EXPECT_EQ(null_result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Current(), good);
  EXPECT_EQ(registry.generation(), 1u);

  // Failed integrity gate: same contract.
  FaultInjection::Arm("snapshot.verify", FaultMode::kFail);
  auto corrupt_result = registry.PublishVerified(MakeSnapshot(2, 4));
  FaultInjection::Disarm();
  ASSERT_FALSE(corrupt_result.ok());
  EXPECT_EQ(registry.Current(), good);
  EXPECT_EQ(registry.generation(), 1u);

  // The registry still accepts the next good snapshot.
  ASSERT_TRUE(registry.PublishVerified(MakeSnapshot(2, 4)).ok());
  EXPECT_EQ(registry.Current()->version(), 2u);
}

TEST(ModelRegistryTest, OldSnapshotDrainsAfterSwap) {
  ModelRegistry registry;
  auto old_snapshot = MakeSnapshot(1, 6);
  std::weak_ptr<const ModelSnapshot> old_watch = old_snapshot;
  registry.Publish(std::move(old_snapshot));

  // A reader pins the old snapshot across the swap…
  std::shared_ptr<const ModelSnapshot> pinned = registry.Current();
  registry.Publish(MakeSnapshot(2, 7));
  EXPECT_EQ(registry.Current()->version(), 2u);
  // …so it survives until the reader drops it.
  EXPECT_FALSE(old_watch.expired());
  pinned.reset();
  EXPECT_TRUE(old_watch.expired());
}

// The hot-swap contract under contention: 8 reader threads hammering
// Current() while a writer publishes a stream of snapshots. Readers must
// always observe a complete snapshot (valid shape, internally consistent
// checksum invariants are covered elsewhere; here we assert no nulls, no
// torn versions, and monotonic forward progress). Run under the tsan
// preset this is the subsystem's data-race proof.
TEST(ModelRegistryTest, HotSwapUnderConcurrentReaders) {
  constexpr int kReaders = 8;
  constexpr uint64_t kSwaps = 50;

  ModelRegistry registry(MakeSnapshot(1, 100));
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&registry, &stop, &reads] {
      uint64_t last_version = 0;
      // do-while: every reader samples at least once even if the writer
      // finishes all its publishes before this thread is first scheduled.
      do {
        const std::shared_ptr<const ModelSnapshot> snapshot =
            registry.Current();
        ASSERT_NE(snapshot, nullptr);
        // Versions are published in increasing order, and a pinned
        // snapshot is immutable: shape reads must be coherent.
        EXPECT_GE(snapshot->version(), last_version);
        last_version = snapshot->version();
        EXPECT_EQ(snapshot->num_locations(), 24);
        EXPECT_EQ(snapshot->dim(), 8);
        EXPECT_EQ(snapshot->embeddings().size(), 24u * 8u);
        reads.fetch_add(1, std::memory_order_relaxed);
      } while (!stop.load(std::memory_order_acquire));
    });
  }

  for (uint64_t v = 2; v <= kSwaps; ++v) {
    registry.Publish(MakeSnapshot(v, 100 + v));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(registry.generation(), kSwaps);
  EXPECT_EQ(registry.Current()->version(), kSwaps);
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
}  // namespace plp::serve
