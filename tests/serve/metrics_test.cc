#include "serve/metrics.h"

#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace plp::serve {
namespace {

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.MeanMicros(), 0.0);
  EXPECT_EQ(histogram.QuantileUpperBoundMicros(0.99), 0u);
}

TEST(LatencyHistogramTest, BucketsArePowersOfTwo) {
  LatencyHistogram histogram;
  histogram.Record(0);    // bucket 0: [0, 2)
  histogram.Record(1);    // bucket 0
  histogram.Record(2);    // bucket 1: [2, 4)
  histogram.Record(3);    // bucket 1
  histogram.Record(130);  // bucket 7: [128, 256)
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_EQ(histogram.BucketCount(0), 2u);
  EXPECT_EQ(histogram.BucketCount(1), 2u);
  EXPECT_EQ(histogram.BucketCount(7), 1u);
}

TEST(LatencyHistogramTest, QuantilesUseBucketUpperBounds) {
  LatencyHistogram histogram;
  // 90 samples at 10 µs (bucket [8, 16), upper bound 16) and 10 samples
  // at 1000 µs (bucket [512, 1024), upper bound 1024).
  for (int i = 0; i < 90; ++i) histogram.Record(10);
  for (int i = 0; i < 10; ++i) histogram.Record(1000);
  EXPECT_EQ(histogram.QuantileUpperBoundMicros(0.50), 16u);
  EXPECT_EQ(histogram.QuantileUpperBoundMicros(0.90), 16u);
  EXPECT_EQ(histogram.QuantileUpperBoundMicros(0.95), 1024u);
  EXPECT_EQ(histogram.QuantileUpperBoundMicros(0.99), 1024u);
  EXPECT_NEAR(histogram.MeanMicros(), (90.0 * 10 + 10.0 * 1000) / 100.0,
              1e-9);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllLand) {
  LatencyHistogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<uint64_t>(i % 64));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(histogram.count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, TotalsAndTable) {
  Metrics metrics;
  metrics.requests_ok.fetch_add(5);
  metrics.requests_not_found.fetch_add(2);
  metrics.requests_deadline_exceeded.fetch_add(1);
  metrics.requests_overloaded.fetch_add(4);  // shed requests are finished
  metrics.protocol_errors.fetch_add(6);      // ...but wire garbage is not
  metrics.model_swaps.fetch_add(3);
  metrics.latency.Record(100);
  EXPECT_EQ(metrics.TotalRequests(), 12u);

  std::ostringstream out;
  metrics.PrintTable(out);
  const std::string dump = out.str();
  EXPECT_NE(dump.find("requests_total"), std::string::npos);
  EXPECT_NE(dump.find("requests_ok"), std::string::npos);
  EXPECT_NE(dump.find("requests_overloaded"), std::string::npos);
  EXPECT_NE(dump.find("protocol_errors"), std::string::npos);
  EXPECT_NE(dump.find("model_swaps"), std::string::npos);
  EXPECT_NE(dump.find("latency_p99_us_le"), std::string::npos);
}

}  // namespace
}  // namespace plp::serve
