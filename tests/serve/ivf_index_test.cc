#include "serve/ivf_index.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>
#include "common/rng.h"
#include "serve/model_snapshot.h"
#include "sgns/model_io.h"

namespace plp::serve {
namespace {

/// Unit-norm row-major matrix of `num_rows` rows drawn around a handful of
/// cluster directions — the shape trained embeddings actually have (related
/// POIs point the same way), and the regime IVF pruning is built for.
std::vector<float> ClusteredRows(uint64_t seed, int32_t num_rows, int32_t dim,
                                 int32_t num_groups, double spread) {
  Rng rng(seed);
  std::vector<std::vector<double>> centers(
      static_cast<size_t>(num_groups), std::vector<double>(dim));
  for (auto& c : centers) {
    double sq = 0.0;
    for (double& v : c) {
      v = rng.Gaussian();
      sq += v * v;
    }
    const double inv = 1.0 / std::sqrt(sq);
    for (double& v : c) v *= inv;
  }
  std::vector<float> rows(static_cast<size_t>(num_rows) * dim);
  for (int32_t r = 0; r < num_rows; ++r) {
    const auto& c = centers[static_cast<size_t>(r) % num_groups];
    double sq = 0.0;
    std::vector<double> v(static_cast<size_t>(dim));
    for (int32_t d = 0; d < dim; ++d) {
      v[static_cast<size_t>(d)] =
          c[static_cast<size_t>(d)] + spread * rng.Gaussian();
      sq += v[static_cast<size_t>(d)] * v[static_cast<size_t>(d)];
    }
    const double inv = 1.0 / std::sqrt(sq);
    float* out = rows.data() + static_cast<size_t>(r) * dim;
    for (int32_t d = 0; d < dim; ++d) {
      out[d] = static_cast<float>(v[static_cast<size_t>(d)] * inv);
    }
  }
  return rows;
}

/// Snapshot over a clustered vocabulary — trained embeddings group related
/// POIs, which is exactly the structure the IVF recall contract assumes.
std::shared_ptr<const ModelSnapshot> IndexedSnapshot(uint64_t seed,
                                                     int32_t locations,
                                                     int32_t dim,
                                                     bool build_ivf = true) {
  // spread is per-dimension noise: 0.08·√32 ≈ 0.45 perturbation norm on a
  // unit center, i.e. within-group cosine ≈ 0.9 — the neighborhood
  // tightness trained embeddings actually show (that structure is why IVF
  // pruning works at all; isotropic rows would be the wrong fixture).
  const std::vector<float> rows =
      ClusteredRows(seed, locations, dim, /*num_groups=*/20, /*spread=*/0.08);
  sgns::DeployedEmbeddings deployed;
  deployed.num_locations = locations;
  deployed.dim = dim;
  deployed.embeddings.assign(rows.begin(), rows.end());
  SnapshotOptions options;
  options.build_ivf = build_ivf;
  auto snapshot = ModelSnapshot::FromDeployed(deployed, 1, options);
  EXPECT_TRUE(snapshot.ok());
  return std::move(snapshot).value();
}

double RecallAt10(const std::vector<ScoredLocation>& approx,
                  const std::vector<ScoredLocation>& exact) {
  int hits = 0;
  for (const auto& e : exact) {
    for (const auto& a : approx) {
      if (a.location == e.location) {
        ++hits;
        break;
      }
    }
  }
  return exact.empty() ? 1.0
                       : static_cast<double>(hits) /
                             static_cast<double>(exact.size());
}

TEST(IvfIndexTest, BuildIsDeterministic) {
  const auto rows = ClusteredRows(1, 300, 16, 8, 0.3);
  const IvfIndex a = IvfIndex::Build(rows.data(), 300, 16, {});
  const IvfIndex b = IvfIndex::Build(rows.data(), 300, 16, {});
  ASSERT_EQ(a.num_clusters(), b.num_clusters());
  std::vector<float> profile(rows.begin(), rows.begin() + 16);
  std::vector<int32_t> ca, cb;
  for (int32_t nprobe = 1; nprobe <= a.num_clusters(); ++nprobe) {
    a.CandidateRows(profile, nprobe, ca);
    b.CandidateRows(profile, nprobe, cb);
    EXPECT_EQ(ca, cb) << "nprobe " << nprobe;
  }
}

TEST(IvfIndexTest, PostingListsPartitionAllRows) {
  const int32_t num_rows = 257;  // deliberately not a square
  const auto rows = ClusteredRows(2, num_rows, 12, 6, 0.4);
  const IvfIndex index = IvfIndex::Build(rows.data(), num_rows, 12, {});
  // Default cluster count is 2·ceil(sqrt(L)).
  EXPECT_EQ(index.num_clusters(), 34);

  // Probing every cluster must return each row exactly once.
  std::vector<float> profile(rows.begin(), rows.begin() + 12);
  std::vector<int32_t> candidates;
  index.CandidateRows(profile, index.num_clusters(), candidates);
  ASSERT_EQ(candidates.size(), static_cast<size_t>(num_rows));
  std::vector<int32_t> sorted = candidates;
  std::sort(sorted.begin(), sorted.end());
  for (int32_t r = 0; r < num_rows; ++r) {
    EXPECT_EQ(sorted[static_cast<size_t>(r)], r);
  }
}

TEST(IvfIndexTest, NprobeClampsAndShrinksCandidates) {
  const auto rows = ClusteredRows(3, 400, 16, 10, 0.3);
  const IvfIndex index = IvfIndex::Build(rows.data(), 400, 16, {});
  std::vector<float> profile(rows.begin(), rows.begin() + 16);

  std::vector<int32_t> narrow, wide, clamped;
  index.CandidateRows(profile, 1, narrow);
  index.CandidateRows(profile, index.num_clusters(), wide);
  index.CandidateRows(profile, index.num_clusters() + 100, clamped);
  EXPECT_FALSE(narrow.empty());
  EXPECT_LT(narrow.size(), wide.size());
  EXPECT_EQ(wide.size(), 400u);
  EXPECT_EQ(clamped, wide);  // over-asking clamps to every cluster

  // nprobe <= 0 clamps up to 1.
  std::vector<int32_t> floor;
  index.CandidateRows(profile, 0, floor);
  EXPECT_EQ(floor, narrow);
}

TEST(IvfIndexTest, SingleRowAndSingleClusterDegenerate) {
  const std::vector<float> one = {1.0f, 0.0f, 0.0f, 0.0f};
  const IvfIndex index = IvfIndex::Build(one.data(), 1, 4, {});
  EXPECT_EQ(index.num_clusters(), 1);
  std::vector<int32_t> candidates;
  index.CandidateRows(one, 5, candidates);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 0);
}

// The acceptance gate: on a realistically clustered vocabulary, the pruned
// scan at the index's default probe width keeps recall@10 ≥ 0.99 averaged
// over many history-derived profiles.
TEST(IvfIndexTest, RecallGateAtDefaultNprobe) {
  const auto snapshot = IndexedSnapshot(17, 2000, 32);
  ASSERT_NE(snapshot->ivf(), nullptr);

  Rng rng(18);
  double recall_sum = 0.0;
  const int num_queries = 200;
  for (int q = 0; q < num_queries; ++q) {
    std::vector<int32_t> history;
    for (int h = 0; h < 5; ++h) {
      history.push_back(static_cast<int32_t>(rng.UniformInt(2000)));
    }
    const std::vector<float> profile = snapshot->Profile(history);
    const auto exact = TopKScores(*snapshot, profile, 10);
    const auto approx = ApproxTopKScores(*snapshot, profile, 10,
                                         /*nprobe=*/0);
    recall_sum += RecallAt10(approx, exact);
  }
  const double recall = recall_sum / num_queries;
  RecordProperty("recall_at_10", std::to_string(recall));
  EXPECT_GE(recall, 0.99) << "recall@10 gate failed at default nprobe";
}

// Negative control: the gate must actually bite. Starving the probe width
// to a single cluster on the same fixture has to push recall below the
// 0.99 bar — if this test ever fails, the gate above is vacuous.
TEST(IvfIndexTest, RecallGateFailsWhenNprobeDegraded) {
  const auto snapshot = IndexedSnapshot(17, 2000, 32);
  ASSERT_NE(snapshot->ivf(), nullptr);

  Rng rng(18);
  double recall_sum = 0.0;
  const int num_queries = 200;
  for (int q = 0; q < num_queries; ++q) {
    std::vector<int32_t> history;
    for (int h = 0; h < 5; ++h) {
      history.push_back(static_cast<int32_t>(rng.UniformInt(2000)));
    }
    const std::vector<float> profile = snapshot->Profile(history);
    const auto exact = TopKScores(*snapshot, profile, 10);
    const auto approx = ApproxTopKScores(*snapshot, profile, 10,
                                         /*nprobe=*/1);
    recall_sum += RecallAt10(approx, exact);
  }
  const double recall = recall_sum / num_queries;
  RecordProperty("degraded_recall_at_10", std::to_string(recall));
  EXPECT_LT(recall, 0.99)
      << "nprobe=1 recall did not degrade; the recall gate tests nothing";
}

TEST(IvfIndexTest, ApproxTopKFallsBackWithoutIndex) {
  const auto snapshot = IndexedSnapshot(21, 150, 16, /*build_ivf=*/false);
  ASSERT_EQ(snapshot->ivf(), nullptr);
  const std::vector<int32_t> history = {3, 77, 149};
  const std::vector<float> profile = snapshot->Profile(history);
  const auto exact = TopKScores(*snapshot, profile, 10);
  const auto approx = ApproxTopKScores(*snapshot, profile, 10, 4);
  ASSERT_EQ(approx.size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(approx[i].location, exact[i].location);
    EXPECT_EQ(approx[i].score, exact[i].score);
  }
}

TEST(IvfIndexTest, ApproxRespectsExcludeList) {
  const auto snapshot = IndexedSnapshot(23, 500, 16);
  const std::vector<int32_t> history = {5, 250, 499};
  const std::vector<float> profile = snapshot->Profile(history);
  const auto unrestricted = ApproxTopKScores(*snapshot, profile, 5, 0);
  ASSERT_FALSE(unrestricted.empty());
  const std::vector<int32_t> exclude = {unrestricted[0].location};
  const auto filtered = ApproxTopKScores(*snapshot, profile, 5, 0, exclude);
  for (const auto& s : filtered) {
    EXPECT_NE(s.location, exclude[0]);
  }
}

TEST(IvfIndexTest, MemoryBytesAccountsCentroidsAndLists) {
  const auto rows = ClusteredRows(4, 100, 8, 4, 0.3);
  const IvfIndex index = IvfIndex::Build(rows.data(), 100, 8, {});
  const size_t expected =
      static_cast<size_t>(index.num_clusters()) * 8 * sizeof(float) +
      100 * sizeof(int32_t) +
      static_cast<size_t>(index.num_clusters() + 1) * sizeof(int32_t);
  EXPECT_EQ(index.memory_bytes(), expected);
}

}  // namespace
}  // namespace plp::serve
