#include "serve/model_snapshot.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>
#include "common/rng.h"
#include "eval/recommender.h"
#include "sgns/model_io.h"

namespace plp::serve {
namespace {

sgns::SgnsModel MakeModel(uint64_t seed, int32_t locations = 40,
                          int32_t dim = 12) {
  Rng rng(seed);
  sgns::SgnsConfig config;
  config.embedding_dim = dim;
  config.init_scale = 1.0;
  auto model = sgns::SgnsModel::Create(locations, config, rng);
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(ModelSnapshotTest, BuildsUnitRowsFromModel) {
  const sgns::SgnsModel model = MakeModel(3);
  auto snapshot_or = ModelSnapshot::FromModel(model, 7);
  ASSERT_TRUE(snapshot_or.ok());
  const ModelSnapshot& snapshot = **snapshot_or;
  EXPECT_EQ(snapshot.num_locations(), 40);
  EXPECT_EQ(snapshot.dim(), 12);
  EXPECT_EQ(snapshot.version(), 7u);
  EXPECT_EQ(snapshot.memory_bytes(), 40u * 12u * sizeof(float));
  for (int32_t l = 0; l < snapshot.num_locations(); ++l) {
    float sq = 0.0f;
    for (float v : snapshot.Row(l)) sq += v * v;
    EXPECT_NEAR(sq, 1.0f, 1e-5f);
  }
}

// The acceptance bar of the serving engine: the float32 snapshot must
// reproduce eval::Recommender's TopK on identical inputs, modulo float32
// tie-breaks — so compare by per-rank score, not by id.
TEST(ModelSnapshotTest, TopKMatchesRecommender) {
  const sgns::SgnsModel model = MakeModel(11, 120, 16);
  const eval::Recommender recommender(model);
  auto snapshot_or = ModelSnapshot::FromModel(model, 1);
  ASSERT_TRUE(snapshot_or.ok());
  const ModelSnapshot& snapshot = **snapshot_or;

  const std::vector<int32_t> histories[] = {
      {0}, {5, 9, 14}, {17, 17, 3}, {100, 2, 55, 81, 7}};
  for (const auto& history : histories) {
    const int32_t k = 10;
    const std::vector<int32_t> expected = recommender.TopK(history, k);
    const std::vector<double> scores = recommender.Scores(history);
    const std::vector<float> profile = snapshot.Profile(history);
    const std::vector<ScoredLocation> got =
        TopKScores(snapshot, profile, k);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      // Same id, or a float32 near-tie: both ranked scores must agree.
      EXPECT_NEAR(got[i].score,
                  scores[static_cast<size_t>(expected[i])], 1e-4)
          << "rank " << i << ": got id " << got[i].location
          << ", recommender id " << expected[i];
      EXPECT_NEAR(got[i].score,
                  scores[static_cast<size_t>(got[i].location)], 1e-4);
    }
  }
}

TEST(ModelSnapshotTest, TopKRespectsExcludeAndK) {
  const sgns::SgnsModel model = MakeModel(5, 20, 8);
  auto snapshot_or = ModelSnapshot::FromModel(model, 1);
  ASSERT_TRUE(snapshot_or.ok());
  const ModelSnapshot& snapshot = **snapshot_or;
  const std::vector<int32_t> history = {4, 9};
  const std::vector<float> profile = snapshot.Profile(history);

  const auto all = TopKScores(snapshot, profile, 20);
  ASSERT_EQ(all.size(), 20u);
  // Scores are sorted best-first.
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i - 1].score, all[i].score);
  }
  // Excluding the winner promotes the runner-up.
  const std::vector<int32_t> exclude = {all[0].location};
  const auto without = TopKScores(snapshot, profile, 3, exclude);
  ASSERT_EQ(without.size(), 3u);
  EXPECT_EQ(without[0].location, all[1].location);
  for (const ScoredLocation& s : without) {
    EXPECT_NE(s.location, all[0].location);
  }
  // k larger than L returns every location.
  EXPECT_EQ(TopKScores(snapshot, profile, 999).size(), 20u);
}

TEST(ModelSnapshotTest, ChecksumIsStableAndContentSensitive) {
  const sgns::SgnsModel model = MakeModel(13);
  auto a = ModelSnapshot::FromModel(model, 1);
  auto b = ModelSnapshot::FromModel(model, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same content → same checksum (version is not part of the content).
  EXPECT_EQ((*a)->checksum(), (*b)->checksum());
  auto c = ModelSnapshot::FromModel(MakeModel(14), 1);
  ASSERT_TRUE(c.ok());
  EXPECT_NE((*a)->checksum(), (*c)->checksum());
}

TEST(ModelSnapshotTest, VerifyPassesOnEveryFormat) {
  const sgns::SgnsModel model = MakeModel(41);
  for (SnapshotFormat format :
       {SnapshotFormat::kFloat32, SnapshotFormat::kFloat16,
        SnapshotFormat::kInt8}) {
    SnapshotOptions options;
    options.format = format;
    auto snapshot = ModelSnapshot::FromModel(model, 1, options);
    ASSERT_TRUE(snapshot.ok());
    EXPECT_TRUE((*snapshot)->Verify().ok()) << FormatName(format);
    // Replicas carry the same bytes and the same stamp.
    EXPECT_TRUE((*snapshot)->Replicate()->Verify().ok()) << FormatName(format);
  }
}

TEST(ModelSnapshotTest, VerifyDetectsInMemoryCorruption) {
  auto snapshot_or = ModelSnapshot::FromModel(MakeModel(43), 1);
  ASSERT_TRUE(snapshot_or.ok());
  const ModelSnapshot& snapshot = **snapshot_or;
  ASSERT_TRUE(snapshot.Verify().ok());
  // Simulate a bit-flip between build and publish: the snapshot is
  // logically immutable, so reach through the read-only view.
  auto* payload = const_cast<float*>(snapshot.embeddings().data());
  const float original = payload[0];
  payload[0] = original + 1.0f;  // rows are unit-norm, so this is a change
  const Status status = snapshot.Verify();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  // Restore the exact bytes and the gate opens again — the check reads
  // the payload, not a sticky flag.
  payload[0] = original;
  EXPECT_TRUE(snapshot.Verify().ok());
}

TEST(ModelSnapshotTest, FromFileAcceptsBothFormats) {
  const sgns::SgnsModel model = MakeModel(17);
  const std::string full = TempPath("snapshot_full.plpm");
  const std::string embeddings = TempPath("snapshot_embed.plpe");
  ASSERT_TRUE(sgns::SaveModel(model, full).ok());
  ASSERT_TRUE(sgns::SaveEmbeddings(model, embeddings).ok());

  auto from_full = ModelSnapshot::FromFile(full, 1);
  auto from_embeddings = ModelSnapshot::FromFile(embeddings, 1);
  ASSERT_TRUE(from_full.ok());
  ASSERT_TRUE(from_embeddings.ok());
  // Both paths produce the same serving matrix.
  EXPECT_EQ((*from_full)->checksum(), (*from_embeddings)->checksum());
  std::remove(full.c_str());
  std::remove(embeddings.c_str());
}

TEST(ModelSnapshotTest, FromFileRejectsMissingAndCorrupt) {
  EXPECT_EQ(ModelSnapshot::FromFile("/nonexistent/m.plpm", 1)
                .status()
                .code(),
            StatusCode::kNotFound);
  const std::string path = TempPath("snapshot_corrupt.plpm");
  std::ofstream(path, std::ios::binary) << "GARBAGE GARBAGE GARBAGE";
  auto result = ModelSnapshot::FromFile(path, 1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ModelSnapshotTest, ValidateHistoryFlagsBadIds) {
  auto snapshot_or = ModelSnapshot::FromModel(MakeModel(19, 10, 4), 1);
  ASSERT_TRUE(snapshot_or.ok());
  const ModelSnapshot& snapshot = **snapshot_or;
  const std::vector<int32_t> good = {0, 9, 5};
  EXPECT_TRUE(snapshot.ValidateHistory(good).ok());
  const std::vector<int32_t> too_big = {0, 10};
  EXPECT_FALSE(snapshot.ValidateHistory(too_big).ok());
  const std::vector<int32_t> negative = {-1};
  EXPECT_FALSE(snapshot.ValidateHistory(negative).ok());
  EXPECT_FALSE(snapshot.ValidateHistory({}).ok());
}

}  // namespace
}  // namespace plp::serve
