#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>
#include "common/math_util.h"
#include "common/rng.h"
#include "serve/model_snapshot.h"
#include "sgns/model.h"

namespace plp::serve {
namespace {

sgns::SgnsModel MakeModel(uint64_t seed, int32_t locations = 50,
                          int32_t dim = 10) {
  Rng rng(seed);
  sgns::SgnsConfig config;
  config.embedding_dim = dim;
  config.init_scale = 1.0;
  auto model = sgns::SgnsModel::Create(locations, config, rng);
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

std::shared_ptr<const ModelSnapshot> MakeSnapshot(uint64_t seed,
                                                  SnapshotFormat format,
                                                  int32_t locations = 50,
                                                  int32_t dim = 10) {
  SnapshotOptions options;
  options.format = format;
  auto snapshot =
      ModelSnapshot::FromModel(MakeModel(seed, locations, dim), 1, options);
  EXPECT_TRUE(snapshot.ok());
  return std::move(snapshot).value();
}

float L1Norm(std::span<const float> v) {
  float sum = 0.0f;
  for (float x : v) sum += std::fabs(x);
  return sum;
}

// ---------------------------------------------------------------------------
// Half conversion: FloatToHalf/HalfToFloat are the software model of F16C
// vcvtps2ph/vcvtph2ps, so the dispatched and portable fp16 kernels see the
// same bits. These tests pin the conversion itself.

TEST(HalfConversionTest, RoundTripsExactHalfValues) {
  // Every value exactly representable in binary16 must survive the
  // float → half → float round trip bit-for-bit.
  const float exact[] = {0.0f,    -0.0f,  1.0f,     -1.0f,   0.5f,
                         2.0f,    1024.0f, 65504.0f, -65504.0f,
                         0.000030517578125f /* smallest normal 2^-15 */,
                         5.9604644775390625e-08f /* smallest subnormal */};
  for (float v : exact) {
    EXPECT_EQ(HalfToFloat(FloatToHalf(v)), v) << "value " << v;
  }
}

TEST(HalfConversionTest, RoundsToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half
  // (1 + 2^-10); round-to-nearest-even keeps 1.0 (even mantissa).
  EXPECT_EQ(HalfToFloat(FloatToHalf(1.0f + 0x1p-11f)), 1.0f);
  // Just above the midpoint rounds up.
  EXPECT_EQ(HalfToFloat(FloatToHalf(1.0f + 0x1p-11f + 0x1p-20f)),
            1.0f + 0x1p-10f);
  // 1 + 3·2^-11 is halfway between 1+2^-10 and 1+2^-9; the even
  // neighbour is 1+2^-9 (mantissa ..10).
  EXPECT_EQ(HalfToFloat(FloatToHalf(1.0f + 3 * 0x1p-11f)), 1.0f + 0x1p-9f);
}

TEST(HalfConversionTest, HandlesOverflowAndNan) {
  EXPECT_EQ(FloatToHalf(1.0e6f), 0x7c00u);   // +inf
  EXPECT_EQ(FloatToHalf(-1.0e6f), 0xfc00u);  // -inf
  EXPECT_EQ(FloatToHalf(std::numeric_limits<float>::infinity()), 0x7c00u);
  EXPECT_EQ(FloatToHalf(std::numeric_limits<float>::quiet_NaN()), 0x7e00u);
  // Below half the smallest subnormal flushes to signed zero.
  EXPECT_EQ(FloatToHalf(1.0e-9f), 0x0000u);
  EXPECT_EQ(FloatToHalf(-1.0e-9f), 0x8000u);
}

TEST(HalfConversionTest, RelativeErrorWithinHalfUlp) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const float v = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
    const float back = HalfToFloat(FloatToHalf(v));
    // binary16 has 11 significand bits → relative error ≤ 2^-12 + slack
    // for values in the normal range.
    EXPECT_LE(std::fabs(back - v), std::fabs(v) * 0x1p-11f + 1e-12f)
        << "value " << v;
  }
}

// ---------------------------------------------------------------------------
// Dispatched vs portable: the AVX2/F16C bodies implement the same fixed
// 16-lane reduction spec as the portable loops, and dequantization is exact
// in both, so results must be bitwise identical on every length (including
// tails of every residue mod 16).

TEST(QuantizedKernelTest, DispatchedF16MatchesPortableBitwise) {
  Rng rng(7);
  for (size_t n = 0; n <= 70; ++n) {
    std::vector<uint16_t> a(n);
    std::vector<float> b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = FloatToHalf(static_cast<float>(rng.Uniform() * 2.0 - 1.0));
      b[i] = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
    }
    const float dispatched = DotF16Kernel(a.data(), b.data(), n);
    const float portable = DotF16KernelPortable(a.data(), b.data(), n);
    EXPECT_EQ(dispatched, portable) << "length " << n;
  }
}

TEST(QuantizedKernelTest, DispatchedI8MatchesPortableBitwise) {
  Rng rng(11);
  for (size_t n = 0; n <= 70; ++n) {
    std::vector<int8_t> a(n);
    std::vector<float> b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<int8_t>(
          static_cast<int>(rng.Uniform() * 255.0) - 127);
      b[i] = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
    }
    const float dispatched = DotI8Kernel(a.data(), b.data(), n);
    const float portable = DotI8KernelPortable(a.data(), b.data(), n);
    EXPECT_EQ(dispatched, portable) << "length " << n;
  }
}

// ---------------------------------------------------------------------------
// Snapshot formats.

TEST(QuantizedSnapshotTest, FormatAndMemoryFootprint) {
  const auto f32 = MakeSnapshot(3, SnapshotFormat::kFloat32, 64, 16);
  const auto fp16 = MakeSnapshot(3, SnapshotFormat::kFloat16, 64, 16);
  const auto int8 = MakeSnapshot(3, SnapshotFormat::kInt8, 64, 16);

  EXPECT_EQ(f32->format(), SnapshotFormat::kFloat32);
  EXPECT_EQ(fp16->format(), SnapshotFormat::kFloat16);
  EXPECT_EQ(int8->format(), SnapshotFormat::kInt8);

  const size_t elems = 64u * 16u;
  EXPECT_EQ(f32->memory_bytes(), elems * sizeof(float));
  EXPECT_EQ(fp16->memory_bytes(), elems * sizeof(uint16_t));
  // int8 payload + one float32 scale per row.
  EXPECT_EQ(int8->memory_bytes(), elems * sizeof(int8_t) + 64u * sizeof(float));

  // Quantized snapshots drop the float matrix — that is the footprint win.
  EXPECT_TRUE(fp16->embeddings().empty());
  EXPECT_TRUE(int8->embeddings().empty());
}

TEST(QuantizedSnapshotTest, ChecksumsDifferAcrossFormats) {
  const auto f32 = MakeSnapshot(3, SnapshotFormat::kFloat32);
  const auto fp16 = MakeSnapshot(3, SnapshotFormat::kFloat16);
  const auto int8 = MakeSnapshot(3, SnapshotFormat::kInt8);
  EXPECT_NE(f32->checksum(), fp16->checksum());
  EXPECT_NE(f32->checksum(), int8->checksum());
  EXPECT_NE(fp16->checksum(), int8->checksum());
  // Rebuilding from the same model reproduces the same checksum.
  EXPECT_EQ(MakeSnapshot(3, SnapshotFormat::kFloat16)->checksum(),
            fp16->checksum());
}

TEST(QuantizedSnapshotTest, Fp16ScoreErrorWithinBound) {
  const int32_t locations = 200;
  const int32_t dim = 32;
  const auto exact = MakeSnapshot(5, SnapshotFormat::kFloat32, locations, dim);
  const auto fp16 = MakeSnapshot(5, SnapshotFormat::kFloat16, locations, dim);

  const std::vector<int32_t> history = {1, 17, 42, 99};
  const std::vector<float> profile = exact->Profile(history);
  // Per element the binary16 representation error is ≤ 2^-11·|v| (unit-norm
  // rows keep every coordinate in [-1, 1], well inside the normal range),
  // so |score_fp16 - score_f32| ≤ 2^-11·Σ|profile_i| plus summation slack.
  const float bound = 0x1p-11f * L1Norm(profile) + 1e-5f;
  for (int32_t l = 0; l < locations; ++l) {
    const float s_exact = exact->ScoreRow(l, profile.data());
    const float s_fp16 = fp16->ScoreRow(l, profile.data());
    EXPECT_LE(std::fabs(s_fp16 - s_exact), bound) << "row " << l;
  }
}

TEST(QuantizedSnapshotTest, Int8ScoreErrorWithinBound) {
  const int32_t locations = 200;
  const int32_t dim = 32;
  const auto exact = MakeSnapshot(5, SnapshotFormat::kFloat32, locations, dim);
  const auto int8 = MakeSnapshot(5, SnapshotFormat::kInt8, locations, dim);

  const std::vector<int32_t> history = {1, 17, 42, 99};
  const std::vector<float> profile = exact->Profile(history);
  const float l1 = L1Norm(profile);
  std::vector<float> dequantized(static_cast<size_t>(dim));
  for (int32_t l = 0; l < locations; ++l) {
    // Recover the per-row scale from the dequantized row: the quantized
    // payload holds multiples of the scale, and some coordinate hits ±127.
    int8->DequantizeRow(l, dequantized);
    float amax = 0.0f;
    for (float v : dequantized) amax = std::max(amax, std::fabs(v));
    const float scale = amax / 127.0f;
    // Rounding error per element is ≤ scale/2 → per-row score error is
    // ≤ (scale/2)·Σ|profile_i| plus float-summation slack.
    const float bound = 0.5f * scale * l1 + 1e-5f;
    const float s_exact = exact->ScoreRow(l, profile.data());
    const float s_int8 = int8->ScoreRow(l, profile.data());
    EXPECT_LE(std::fabs(s_int8 - s_exact), bound) << "row " << l;
  }
}

TEST(QuantizedSnapshotTest, DequantizedRowsNearExactRows) {
  const int32_t dim = 16;
  const auto exact = MakeSnapshot(9, SnapshotFormat::kFloat32, 40, dim);
  const auto fp16 = MakeSnapshot(9, SnapshotFormat::kFloat16, 40, dim);
  std::vector<float> row(static_cast<size_t>(dim));
  for (int32_t l = 0; l < 40; ++l) {
    fp16->DequantizeRow(l, row);
    const std::span<const float> reference = exact->Row(l);
    for (int32_t d = 0; d < dim; ++d) {
      EXPECT_LE(std::fabs(row[static_cast<size_t>(d)] -
                          reference[static_cast<size_t>(d)]),
                0x1p-11f)
          << "row " << l << " dim " << d;
    }
  }
}

TEST(QuantizedSnapshotTest, TopKOnQuantizedFormatsIsSane) {
  const auto exact = MakeSnapshot(13, SnapshotFormat::kFloat32, 100, 16);
  const auto int8 = MakeSnapshot(13, SnapshotFormat::kInt8, 100, 16);

  const std::vector<int32_t> history = {3, 50, 77};
  const auto exact_top = TopKScores(*exact, exact->Profile(history), 10);
  const auto quant_top = TopKScores(*int8, int8->Profile(history), 10);
  ASSERT_EQ(exact_top.size(), 10u);
  ASSERT_EQ(quant_top.size(), 10u);
  // Quantization perturbs scores within the tested bound; the top-10 sets
  // should still overlap heavily on a 100-row vocabulary.
  int overlap = 0;
  for (const auto& q : quant_top) {
    for (const auto& e : exact_top) {
      if (q.location == e.location) ++overlap;
    }
  }
  EXPECT_GE(overlap, 8) << "int8 top-10 diverged from exact top-10";
}

TEST(QuantizedSnapshotTest, ReplicateIsDeepCopy) {
  const auto original = MakeSnapshot(21, SnapshotFormat::kInt8, 30, 8);
  const auto replica = original->Replicate();
  ASSERT_NE(replica, nullptr);
  EXPECT_NE(replica.get(), original.get());
  EXPECT_EQ(replica->checksum(), original->checksum());
  EXPECT_EQ(replica->format(), original->format());
  EXPECT_EQ(replica->num_locations(), original->num_locations());

  // Same scores through independent storage.
  const std::vector<int32_t> history = {2, 9};
  const std::vector<float> profile = original->Profile(history);
  std::vector<float> row_a(8), row_b(8);
  for (int32_t l = 0; l < 30; ++l) {
    EXPECT_EQ(original->ScoreRow(l, profile.data()),
              replica->ScoreRow(l, profile.data()));
    original->DequantizeRow(l, row_a);
    replica->DequantizeRow(l, row_b);
    EXPECT_EQ(row_a, row_b);
  }
}

TEST(QuantizedSnapshotTest, ParseFormatSpellings) {
  EXPECT_EQ(ParseSnapshotFormat("f32").value(), SnapshotFormat::kFloat32);
  EXPECT_EQ(ParseSnapshotFormat("float32").value(), SnapshotFormat::kFloat32);
  EXPECT_EQ(ParseSnapshotFormat("fp16").value(), SnapshotFormat::kFloat16);
  EXPECT_EQ(ParseSnapshotFormat("float16").value(), SnapshotFormat::kFloat16);
  EXPECT_EQ(ParseSnapshotFormat("int8").value(), SnapshotFormat::kInt8);
  EXPECT_FALSE(ParseSnapshotFormat("bf16").ok());
  EXPECT_STREQ(FormatName(SnapshotFormat::kFloat16), "fp16");
}

}  // namespace
}  // namespace plp::serve
