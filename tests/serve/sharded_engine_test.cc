#include "serve/sharded_engine.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "common/fault_injection.h"
#include "common/rng.h"
#include "sgns/model.h"

namespace plp::serve {
namespace {

sgns::SgnsModel MakeModel(uint64_t seed, int32_t locations = 50,
                          int32_t dim = 10) {
  Rng rng(seed);
  sgns::SgnsConfig config;
  config.embedding_dim = dim;
  config.init_scale = 1.0;
  auto model = sgns::SgnsModel::Create(locations, config, rng);
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

ShardedConfig SmallShardedConfig(int32_t num_shards = 4) {
  ShardedConfig config;
  config.num_shards = num_shards;
  config.shard.num_threads = 1;  // one worker per shard — the deployment shape
  config.shard.max_batch = 4;
  config.shard.sessions.capacity = 64;
  config.shard.sessions.history_length = 8;
  return config;
}

TEST(ShardedEngineTest, RoutingIsStableAndSpreads) {
  ShardedServingEngine engine(SmallShardedConfig(4));
  ASSERT_EQ(engine.num_shards(), 4u);

  std::set<int32_t> shards_hit;
  for (int64_t user = 0; user < 256; ++user) {
    const int32_t shard = engine.ShardFor(user);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    EXPECT_EQ(engine.ShardFor(user), shard);  // same user → same shard
    shards_hit.insert(shard);
  }
  // The multiplicative hash must not collapse sequential ids onto a
  // single shard.
  EXPECT_EQ(shards_hit.size(), 4u);
}

TEST(ShardedEngineTest, ShardCountFloorsAtOne) {
  ShardedServingEngine engine(SmallShardedConfig(0));
  EXPECT_EQ(engine.num_shards(), 1u);
  EXPECT_EQ(engine.ShardFor(12345), 0);
}

TEST(ShardedEngineTest, PublishReplicatesToEveryShard) {
  const sgns::SgnsModel model = MakeModel(3);
  ShardedServingEngine engine(SmallShardedConfig(3));
  ASSERT_TRUE(engine.PublishModel(model, 7).ok());

  std::set<const ModelSnapshot*> replicas;
  uint64_t checksum = 0;
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    const auto snapshot = engine.shard(s).registry().Current();
    ASSERT_NE(snapshot, nullptr) << "shard " << s;
    EXPECT_EQ(snapshot->version(), 7u);
    if (s == 0) checksum = snapshot->checksum();
    EXPECT_EQ(snapshot->checksum(), checksum);  // same artifact…
    replicas.insert(snapshot.get());            // …different storage
  }
  EXPECT_EQ(replicas.size(), engine.num_shards());
}

TEST(ShardedEngineTest, SessionsStayOnTheOwningShard) {
  const sgns::SgnsModel model = MakeModel(3);
  ShardedServingEngine engine(SmallShardedConfig(4));
  ASSERT_TRUE(engine.PublishModel(model, 1).ok());

  Request request;
  request.user_id = 42;
  request.new_checkin = 10;
  ASSERT_TRUE(engine.Recommend(request).status.ok());
  request.new_checkin = 20;
  ASSERT_TRUE(engine.Recommend(request).status.ok());

  const size_t owner = static_cast<size_t>(engine.ShardFor(42));
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    EXPECT_EQ(engine.shard(s).sessions().size(), s == owner ? 1u : 0u)
        << "shard " << s;
  }
}

TEST(ShardedEngineTest, ShardedAnswersMatchSingleEngine) {
  const sgns::SgnsModel model = MakeModel(5);
  ShardedServingEngine sharded(SmallShardedConfig(4));
  ASSERT_TRUE(sharded.PublishModel(model, 1).ok());
  ServingConfig single_config = SmallShardedConfig().shard;
  ServingEngine single(single_config);
  ASSERT_TRUE(single.PublishModel(model, 1).ok());

  // Stateless (explicit-history) requests must be shard-invariant.
  for (int64_t user = 0; user < 32; ++user) {
    Request request;
    request.user_id = user;
    request.history = {static_cast<int32_t>(user % 50),
                       static_cast<int32_t>((user * 7) % 50)};
    request.k = 5;
    const Response a = sharded.Recommend(request);
    const Response b = single.Recommend(request);
    ASSERT_TRUE(a.status.ok());
    ASSERT_TRUE(b.status.ok());
    ASSERT_EQ(a.topk.size(), b.topk.size());
    for (size_t i = 0; i < a.topk.size(); ++i) {
      EXPECT_EQ(a.topk[i].location, b.topk[i].location);
      EXPECT_EQ(a.topk[i].score, b.topk[i].score);
    }
  }
}

TEST(ShardedEngineTest, AggregateMetricsSumsShards) {
  const sgns::SgnsModel model = MakeModel(3);
  ShardedServingEngine engine(SmallShardedConfig(4));
  ASSERT_TRUE(engine.PublishModel(model, 1).ok());

  const int64_t num_users = 64;
  for (int64_t user = 0; user < num_users; ++user) {
    Request request;
    request.user_id = user;
    request.new_checkin = static_cast<int32_t>(user % 50);
    ASSERT_TRUE(engine.Recommend(request).status.ok());
  }
  // One NOT_FOUND (session read for a user who never checked in).
  Request miss;
  miss.user_id = 9999;
  miss.new_checkin = -1;
  EXPECT_EQ(engine.Recommend(miss).status.code(), StatusCode::kNotFound);

  Metrics total;
  engine.AggregateMetrics(total);
  EXPECT_EQ(total.requests_ok.load(), static_cast<uint64_t>(num_users));
  EXPECT_EQ(total.requests_f32.load(), static_cast<uint64_t>(num_users));
  EXPECT_EQ(total.requests_not_found.load(), 1u);
  EXPECT_EQ(total.latency.count(), static_cast<uint64_t>(num_users) + 1);
  // One publish per shard.
  EXPECT_EQ(total.model_swaps.load(), engine.num_shards());
  // The aggregated swap stamp is the freshest shard's, so the age is real.
  const int64_t now = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  const double age = total.SwapAgeSeconds(now);
  EXPECT_GE(age, 0.0);
  EXPECT_LT(age, 60.0);
}

TEST(ShardedEngineTest, SwapAgeIsMinusOneBeforeAnyPublish) {
  ShardedServingEngine engine(SmallShardedConfig(2));
  Metrics total;
  engine.AggregateMetrics(total);
  EXPECT_EQ(total.SwapAgeSeconds(123456789), -1.0);
}

TEST(ShardedEngineTest, AsyncSubmissionRoutesLikeSync) {
  const sgns::SgnsModel model = MakeModel(3);
  ShardedServingEngine engine(SmallShardedConfig(4));
  ASSERT_TRUE(engine.PublishModel(model, 1).ok());

  std::vector<std::future<Response>> futures;
  for (int64_t user = 0; user < 16; ++user) {
    Request request;
    request.user_id = user;
    request.new_checkin = static_cast<int32_t>(user % 50);
    futures.push_back(engine.SubmitAsync(std::move(request)));
  }
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().status.ok());
  }
  Metrics total;
  engine.AggregateMetrics(total);
  EXPECT_EQ(total.requests_ok.load(), 16u);
}

TEST(ShardedEngineTest, BatchSubmissionScattersAcrossShardsInOrder) {
  const sgns::SgnsModel model = MakeModel(7);
  ShardedServingEngine engine(SmallShardedConfig(4));
  ASSERT_TRUE(engine.PublishModel(model, 1).ok());

  // Users chosen to span all shards; distinct k per request proves the
  // per-shard futures scatter back into submission order.
  std::vector<Request> requests(32);
  std::set<int32_t> shards_hit;
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].user_id = static_cast<int64_t>(i * 13);
    requests[i].new_checkin = static_cast<int32_t>(i % 50);
    requests[i].k = static_cast<int32_t>(1 + i % 10);
    shards_hit.insert(engine.ShardFor(requests[i].user_id));
  }
  ASSERT_GT(shards_hit.size(), 1u);  // the batch genuinely fans out

  auto futures = engine.SubmitAsyncBatch(std::move(requests));
  ASSERT_EQ(futures.size(), 32u);
  for (size_t i = 0; i < futures.size(); ++i) {
    const Response response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << response.status.message();
    EXPECT_EQ(response.topk.size(), 1 + i % 10);
  }
  Metrics total;
  engine.AggregateMetrics(total);
  EXPECT_EQ(total.requests_ok.load(), 32u);
}

TEST(ShardedEngineTest, BatchSubmissionSingleShardFastPath) {
  const sgns::SgnsModel model = MakeModel(9);
  ShardedServingEngine engine(SmallShardedConfig(1));
  ASSERT_TRUE(engine.PublishModel(model, 1).ok());
  std::vector<Request> requests(8);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].user_id = static_cast<int64_t>(i);
    requests[i].new_checkin = static_cast<int32_t>(i);
  }
  auto futures = engine.SubmitAsyncBatch(std::move(requests));
  ASSERT_EQ(futures.size(), 8u);
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
}

// The rollout scenario the serving tier exists for: a fleet hot-swaps
// between float32, fp16, and int8 snapshots while 8 reader threads hammer
// it. Must be TSan-clean; every response must come from a coherent
// snapshot (a version the publisher actually published).
TEST(ShardedEngineTest, CrossFormatHotSwapUnderConcurrentReaders) {
  const sgns::SgnsModel model = MakeModel(7, /*locations=*/80, /*dim=*/12);
  ShardedServingEngine engine(SmallShardedConfig(2));
  ASSERT_TRUE(engine.PublishModel(model, 1).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::vector<std::thread> readers;
  readers.reserve(8);
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&engine, &stop, &served, t] {
      int64_t user = 1000 * (t + 1);
      while (!stop.load(std::memory_order_acquire)) {
        Request request;
        request.user_id = user++;
        request.history = {static_cast<int32_t>(user % 80),
                           static_cast<int32_t>((user * 3) % 80)};
        request.k = 5;
        const Response response = engine.Recommend(request);
        ASSERT_TRUE(response.status.ok()) << response.status.message();
        ASSERT_EQ(response.topk.size(), 5u);
        ASSERT_GE(response.model_version, 1u);
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Publisher: cycle f32 → fp16 → int8 snapshots of the same model.
  const SnapshotFormat cycle[] = {SnapshotFormat::kFloat16,
                                  SnapshotFormat::kInt8,
                                  SnapshotFormat::kFloat32};
  for (uint64_t swap = 0; swap < 30; ++swap) {
    SnapshotOptions options;
    options.format = cycle[swap % 3];
    auto snapshot = ModelSnapshot::FromModel(model, swap + 2, options);
    ASSERT_TRUE(snapshot.ok());
    ASSERT_TRUE(engine.PublishSnapshot(std::move(snapshot).value()).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_GT(served.load(), 0u);
  Metrics total;
  engine.AggregateMetrics(total);
  EXPECT_EQ(total.requests_ok.load(), served.load());
  // All three format counters saw traffic, and they partition requests_ok.
  EXPECT_EQ(total.requests_f32.load() + total.requests_fp16.load() +
                total.requests_int8.load(),
            total.requests_ok.load());
  EXPECT_GT(total.requests_fp16.load() + total.requests_int8.load(), 0u);
}

// A corrupt artifact arrives while readers are hammering the fleet: the
// publish must be rejected as a Status (no abort), no shard may swap, no
// reader may ever observe anything but a published version, and the next
// good publish must land normally.
TEST(ShardedEngineTest, CorruptPublishUnderReadersLeavesFleetUntouched) {
  const sgns::SgnsModel model_a = MakeModel(51);
  const sgns::SgnsModel model_b = MakeModel(52);
  ShardedServingEngine engine(SmallShardedConfig(4));
  ASSERT_TRUE(engine.PublishModel(model_a, 1).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad_responses{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&engine, &stop, &bad_responses, t] {
      int64_t user = t * 1000;
      while (!stop.load(std::memory_order_relaxed)) {
        Request request;
        request.user_id = user++;
        request.history = {1, 2, 3};
        request.k = 3;
        const Response response = engine.Recommend(request);
        const bool version_ok =
            response.model_version == 1 || response.model_version == 2;
        if (!response.status.ok() || !version_ok) {
          bad_responses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // The corrupt publish: the integrity gate fails, the call reports it,
  // and every shard keeps serving version 1.
  FaultInjection::Arm("snapshot.verify", FaultMode::kFail);
  const Status rejected = engine.PublishModel(model_b, 99);
  FaultInjection::Disarm();
  ASSERT_FALSE(rejected.ok());
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    EXPECT_EQ(engine.shard(s).registry().generation(), 1u);
    ASSERT_NE(engine.shard(s).registry().Current(), nullptr);
    EXPECT_EQ(engine.shard(s).registry().Current()->version(), 1u);
  }

  // Recovery: the next good snapshot lands on every shard.
  ASSERT_TRUE(engine.PublishModel(model_b, 2).ok());
  stop.store(true);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(bad_responses.load(), 0u);
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    EXPECT_EQ(engine.shard(s).registry().generation(), 2u);
    EXPECT_EQ(engine.shard(s).registry().Current()->version(), 2u);
  }
}

TEST(ShardedEngineTest, PublishSnapshotRejectsNull) {
  ShardedServingEngine engine(SmallShardedConfig(2));
  EXPECT_EQ(engine.PublishSnapshot(nullptr).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace plp::serve
