#include "serve/serving_engine.h"

#include <chrono>
#include <future>
#include <vector>

#include <gtest/gtest.h>
#include "common/fault_injection.h"
#include "common/rng.h"
#include "eval/recommender.h"
#include "sgns/model.h"

namespace plp::serve {
namespace {

sgns::SgnsModel MakeModel(uint64_t seed, int32_t locations = 50,
                          int32_t dim = 10) {
  Rng rng(seed);
  sgns::SgnsConfig config;
  config.embedding_dim = dim;
  config.init_scale = 1.0;
  auto model = sgns::SgnsModel::Create(locations, config, rng);
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

ServingConfig SmallConfig() {
  ServingConfig config;
  config.num_threads = 2;
  config.max_batch = 4;
  config.sessions.capacity = 64;
  config.sessions.history_length = 8;
  return config;
}

TEST(ServingEngineTest, FailsClosedWithoutModel) {
  ServingEngine engine(SmallConfig());
  Request request;
  request.user_id = 1;
  request.new_checkin = 3;
  const Response response = engine.Recommend(request);
  EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(response.topk.empty());
  EXPECT_EQ(engine.metrics().requests_no_model.load(), 1u);
}

TEST(ServingEngineTest, SessionFlowMatchesRecommender) {
  const sgns::SgnsModel model = MakeModel(3);
  const eval::Recommender recommender(model);
  ServingEngine engine(SmallConfig());
  ASSERT_TRUE(engine.PublishModel(model, 5).ok());

  // Three check-ins accumulate into the session; the third response must
  // score the full history exactly like the batch-eval recommender.
  Request request;
  request.user_id = 77;
  request.k = 8;
  request.new_checkin = 10;
  engine.Recommend(request);
  request.new_checkin = 20;
  engine.Recommend(request);
  request.new_checkin = 30;
  const Response response = engine.Recommend(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.model_version, 5u);
  ASSERT_EQ(response.topk.size(), 8u);

  const std::vector<int32_t> history = {10, 20, 30};
  const std::vector<double> scores = recommender.Scores(history);
  const std::vector<int32_t> expected = recommender.TopK(history, 8);
  for (size_t i = 0; i < response.topk.size(); ++i) {
    EXPECT_NEAR(response.topk[i].score,
                scores[static_cast<size_t>(expected[i])], 1e-4);
  }
  EXPECT_EQ(engine.metrics().requests_ok.load(), 3u);
  EXPECT_EQ(engine.sessions().size(), 1u);
}

TEST(ServingEngineTest, ExplicitHistoryBypassesSessions) {
  ServingEngine engine(SmallConfig());
  ASSERT_TRUE(engine.PublishModel(MakeModel(5), 1).ok());
  Request request;
  request.history = {1, 2, 3};
  request.k = 5;
  const Response response = engine.Recommend(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.topk.size(), 5u);
  EXPECT_EQ(engine.sessions().size(), 0u);
}

TEST(ServingEngineTest, PerRequestErrorsDontPoisonState) {
  ServingEngine engine(SmallConfig());
  ASSERT_TRUE(engine.PublishModel(MakeModel(7, 20, 6), 1).ok());

  // Unknown session.
  Request read_only;
  read_only.user_id = 404;
  EXPECT_EQ(engine.Recommend(read_only).status.code(),
            StatusCode::kNotFound);

  // Out-of-vocabulary check-in is rejected before touching the session.
  Request bad_checkin;
  bad_checkin.user_id = 1;
  bad_checkin.new_checkin = 999;
  EXPECT_EQ(engine.Recommend(bad_checkin).status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.sessions().size(), 0u);

  // Bad explicit history and bad k.
  Request bad_history;
  bad_history.history = {0, -4};
  EXPECT_EQ(engine.Recommend(bad_history).status.code(),
            StatusCode::kInvalidArgument);
  Request bad_k;
  bad_k.history = {1};
  bad_k.k = 0;
  EXPECT_EQ(engine.Recommend(bad_k).status.code(),
            StatusCode::kInvalidArgument);
  // k beyond the vocabulary is rejected, not silently clamped.
  Request oversized_k;
  oversized_k.history = {1};
  oversized_k.k = 21;
  EXPECT_EQ(engine.Recommend(oversized_k).status.code(),
            StatusCode::kInvalidArgument);
  Request bad_exclude;
  bad_exclude.history = {1};
  bad_exclude.exclude = {50};
  EXPECT_EQ(engine.Recommend(bad_exclude).status.code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(engine.metrics().requests_invalid_argument.load(), 5u);
  EXPECT_EQ(engine.metrics().requests_not_found.load(), 1u);

  // The engine still serves.
  Request good;
  good.history = {1, 2};
  EXPECT_TRUE(engine.Recommend(good).status.ok());
}

TEST(ServingEngineTest, DeadlineShedsStaleRequests) {
  ServingEngine engine(SmallConfig());
  ASSERT_TRUE(engine.PublishModel(MakeModel(9), 1).ok());
  Request request;
  request.history = {1, 2};
  request.timeout_micros = 50;
  // Arrived 10 ms ago — far past its 50 µs budget.
  request.arrival = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(10);
  const Response response = engine.Recommend(request);
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(response.topk.empty());
  EXPECT_EQ(engine.metrics().requests_deadline_exceeded.load(), 1u);

  // A fresh request with the same budget succeeds.
  request.arrival = {};
  EXPECT_TRUE(engine.Recommend(request).status.ok());
}

TEST(ServingEngineTest, BatchMatchesIndividualExecution) {
  const sgns::SgnsModel model = MakeModel(11);
  ServingEngine engine(SmallConfig());
  ASSERT_TRUE(engine.PublishModel(model, 2).ok());

  std::vector<Request> batch;
  Rng rng(13);
  for (int i = 0; i < 10; ++i) {
    Request request;
    request.history = {static_cast<int32_t>(rng.UniformInt(50u)),
                       static_cast<int32_t>(rng.UniformInt(50u))};
    request.k = 6;
    batch.push_back(request);
  }
  // One request in the middle is broken; only it may fail.
  batch[4].history = {-3};

  const std::vector<Response> responses = engine.RecommendBatch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    if (i == 4) {
      EXPECT_EQ(responses[i].status.code(), StatusCode::kInvalidArgument);
      continue;
    }
    ASSERT_TRUE(responses[i].status.ok()) << "request " << i;
    const Response solo = engine.Recommend(batch[i]);
    ASSERT_EQ(responses[i].topk.size(), solo.topk.size());
    for (size_t j = 0; j < solo.topk.size(); ++j) {
      EXPECT_EQ(responses[i].topk[j].location, solo.topk[j].location);
      EXPECT_EQ(responses[i].topk[j].score, solo.topk[j].score);
    }
  }
  // 10 requests at max_batch=4 → 3 micro-batches.
  EXPECT_EQ(engine.metrics().batches.load(), 3u);
  EXPECT_EQ(engine.metrics().batched_requests.load(), 10u);
}

TEST(ServingEngineTest, QueuedExpiredRequestsAreRejectedUnderLoad) {
  // The queued-expired path under concurrent load: every worker is slowed
  // by an injected 5 ms of queue residency while a burst of requests with
  // 1 ms budgets lands on the pool. Each must come back DEADLINE_EXCEEDED
  // — never a stale answer — and be counted.
  ServingEngine engine(SmallConfig());
  ASSERT_TRUE(engine.PublishModel(MakeModel(21), 1).ok());
  FaultInjection::Arm("serve.execute", FaultMode::kDelay, /*trigger_hit=*/1,
                      /*delay_millis=*/5);

  constexpr int kBurst = 16;
  std::vector<std::future<Response>> futures;
  futures.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    Request request;
    request.history = {1, 2};
    request.timeout_micros = 1000;  // 1 ms budget vs 5 ms injected delay
    futures.push_back(engine.SubmitAsync(request));
  }
  for (auto& future : futures) {
    const Response response = future.get();
    EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(response.topk.empty());
  }
  FaultInjection::Disarm();
  EXPECT_EQ(engine.metrics().requests_deadline_exceeded.load(),
            static_cast<uint64_t>(kBurst));

  // With the congestion gone the same deadline is comfortable.
  Request fresh;
  fresh.history = {1, 2};
  fresh.timeout_micros = 1000000;
  EXPECT_TRUE(engine.SubmitAsync(fresh).get().status.ok());
}

TEST(ServingEngineTest, DeadlineAppliesInBatchesToo) {
  ServingEngine engine(SmallConfig());
  ASSERT_TRUE(engine.PublishModel(MakeModel(23), 1).ok());
  std::vector<Request> batch(6);
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].history = {1, 2, 3};
    batch[i].k = 4;
    if (i % 2 == 1) {
      batch[i].timeout_micros = 50;
      batch[i].arrival = std::chrono::steady_clock::now() -
                         std::chrono::milliseconds(10);
    }
  }
  const std::vector<Response> responses = engine.RecommendBatch(batch);
  for (size_t i = 0; i < responses.size(); ++i) {
    if (i % 2 == 1) {
      EXPECT_EQ(responses[i].status.code(), StatusCode::kDeadlineExceeded);
    } else {
      EXPECT_TRUE(responses[i].status.ok()) << "request " << i;
    }
  }
  EXPECT_EQ(engine.metrics().requests_deadline_exceeded.load(), 3u);
}

TEST(ServingEngineTest, AsyncQueueBoundShedsWithOverloaded) {
  // One worker, each request delayed 20 ms, admission bound of 2: a burst
  // of 10 must complete at most 2 + pool-capacity requests and shed the
  // rest immediately with RESOURCE_EXHAUSTED.
  ServingConfig config = SmallConfig();
  config.num_threads = 1;
  config.max_queue = 2;
  ServingEngine engine(config);
  ASSERT_TRUE(engine.PublishModel(MakeModel(25), 1).ok());
  FaultInjection::Arm("serve.execute", FaultMode::kDelay, /*trigger_hit=*/1,
                      /*delay_millis=*/20);

  constexpr int kBurst = 10;
  std::vector<std::future<Response>> futures;
  futures.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    Request request;
    request.history = {1, 2};
    futures.push_back(engine.SubmitAsync(request));
  }
  int ok = 0, shed = 0;
  for (auto& future : futures) {
    const Response response = future.get();
    if (response.status.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(response.status.code(), StatusCode::kResourceExhausted);
      EXPECT_TRUE(response.topk.empty());
      ++shed;
    }
  }
  FaultInjection::Disarm();
  // The first two submissions are always admitted; with each execution
  // pinned at 20 ms, the burst outpaces completions and most of the rest
  // is shed (exact counts depend on scheduler timing between submits).
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GE(ok, 2);
  EXPECT_GE(shed, 1);
  EXPECT_EQ(engine.metrics().requests_overloaded.load(),
            static_cast<uint64_t>(shed));
  EXPECT_EQ(engine.metrics().requests_ok.load(), static_cast<uint64_t>(ok));
  // Shed requests count in the request total — they are finished requests.
  EXPECT_EQ(engine.metrics().TotalRequests(), static_cast<uint64_t>(kBurst));

  // The bound releases as requests finish: the engine accepts again.
  Request after;
  after.history = {3, 4};
  EXPECT_TRUE(engine.SubmitAsync(after).get().status.ok());
}

TEST(ServingEngineTest, ZeroMaxQueueDisablesShedding) {
  ServingConfig config = SmallConfig();
  config.max_queue = 0;
  ServingEngine engine(config);
  ASSERT_TRUE(engine.PublishModel(MakeModel(27), 1).ok());
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 64; ++i) {
    Request request;
    request.history = {1};
    futures.push_back(engine.SubmitAsync(request));
  }
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
  EXPECT_EQ(engine.metrics().requests_overloaded.load(), 0u);
}

TEST(ServingEngineTest, SubmitAsyncDeliversFuture) {
  ServingEngine engine(SmallConfig());
  ASSERT_TRUE(engine.PublishModel(MakeModel(15), 1).ok());
  Request request;
  request.history = {3, 4, 5};
  request.k = 4;
  std::future<Response> future = engine.SubmitAsync(request);
  const Response response = future.get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.topk.size(), 4u);
}

TEST(ServingEngineTest, SubmitAsyncBatchAnswersEachRequestInOrder) {
  ServingEngine engine(SmallConfig());
  ASSERT_TRUE(engine.PublishModel(MakeModel(31), 1).ok());

  // Distinct k per request proves future i answers request i, not merely
  // "some request" — the batch is the only thing submitted.
  std::vector<Request> requests(8);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].history = {static_cast<int32_t>(i), 5};
    requests[i].k = static_cast<int32_t>(i + 1);
  }
  auto futures = engine.SubmitAsyncBatch(std::move(requests));
  ASSERT_EQ(futures.size(), 8u);
  for (size_t i = 0; i < futures.size(); ++i) {
    const Response response = futures[i].get();
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.topk.size(), i + 1);
  }
  EXPECT_EQ(engine.metrics().requests_ok.load(), 8u);
}

TEST(ServingEngineTest, SubmitAsyncBatchMatchesSubmitAsync) {
  const sgns::SgnsModel model = MakeModel(33);
  ServingEngine batched_engine(SmallConfig());
  ServingEngine single_engine(SmallConfig());
  ASSERT_TRUE(batched_engine.PublishModel(model, 1).ok());
  ASSERT_TRUE(single_engine.PublishModel(model, 1).ok());

  std::vector<Request> requests(12);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].history = {static_cast<int32_t>(i % 50),
                           static_cast<int32_t>((i * 7) % 50)};
    requests[i].k = 5;
  }
  std::vector<Request> copy = requests;
  auto batched = batched_engine.SubmitAsyncBatch(std::move(requests));
  std::vector<std::future<Response>> singles;
  for (auto& request : copy) {
    singles.push_back(single_engine.SubmitAsync(std::move(request)));
  }
  for (size_t i = 0; i < batched.size(); ++i) {
    const Response a = batched[i].get();
    const Response b = singles[i].get();
    ASSERT_TRUE(a.status.ok());
    ASSERT_TRUE(b.status.ok());
    ASSERT_EQ(a.topk.size(), b.topk.size());
    for (size_t j = 0; j < a.topk.size(); ++j) {
      EXPECT_EQ(a.topk[j].location, b.topk[j].location);
      EXPECT_EQ(a.topk[j].score, b.topk[j].score);
    }
  }
}

TEST(ServingEngineTest, SubmitAsyncBatchShedsPastQueueBound) {
  // One worker pinned at 20 ms per request, bound of 2: a batch of 10
  // admits at most 2 + pool-capacity and sheds the rest immediately —
  // admission stays per request even though the pool push is batched.
  ServingConfig config = SmallConfig();
  config.num_threads = 1;
  config.max_queue = 2;
  ServingEngine engine(config);
  ASSERT_TRUE(engine.PublishModel(MakeModel(35), 1).ok());
  FaultInjection::Arm("serve.execute", FaultMode::kDelay, /*trigger_hit=*/1,
                      /*delay_millis=*/20);

  std::vector<Request> requests(10);
  for (auto& request : requests) request.history = {1, 2};
  auto futures = engine.SubmitAsyncBatch(std::move(requests));
  int ok = 0, shed = 0;
  for (auto& future : futures) {
    const Response response = future.get();
    if (response.status.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(response.status.code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  FaultInjection::Disarm();
  EXPECT_EQ(ok + shed, 10);
  // The whole batch is stamped before any task can run, so exactly
  // max_queue requests are admitted — no completion can race admission.
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(shed, 8);
  EXPECT_EQ(engine.metrics().requests_overloaded.load(),
            static_cast<uint64_t>(shed));
}

TEST(ServingEngineTest, SubmitAsyncBatchEmptyIsANoOp) {
  ServingEngine engine(SmallConfig());
  ASSERT_TRUE(engine.PublishModel(MakeModel(37), 1).ok());
  auto futures = engine.SubmitAsyncBatch({});
  EXPECT_TRUE(futures.empty());
}

TEST(ServingEngineTest, HotSwapChangesServingModelMidSession) {
  const sgns::SgnsModel model_a = MakeModel(17, 50, 10);
  const sgns::SgnsModel model_b = MakeModel(18, 50, 10);
  ServingEngine engine(SmallConfig());
  ASSERT_TRUE(engine.PublishModel(model_a, 1).ok());

  Request request;
  request.user_id = 9;
  request.new_checkin = 12;
  EXPECT_EQ(engine.Recommend(request).model_version, 1u);

  ASSERT_TRUE(engine.PublishModel(model_b, 2).ok());
  request.new_checkin = 13;
  const Response after = engine.Recommend(request);
  EXPECT_EQ(after.model_version, 2u);
  // The session survived the swap: both check-ins are in ζ.
  const eval::Recommender recommender(model_b);
  const std::vector<int32_t> history = {12, 13};
  const std::vector<double> scores = recommender.Scores(history);
  const std::vector<int32_t> expected = recommender.TopK(history, 10);
  ASSERT_EQ(after.topk.size(), 10u);
  for (size_t i = 0; i < after.topk.size(); ++i) {
    EXPECT_NEAR(after.topk[i].score,
                scores[static_cast<size_t>(expected[i])], 1e-4);
  }
  EXPECT_EQ(engine.metrics().model_swaps.load(), 2u);

  // A swap to a smaller vocabulary turns stale sessions into per-request
  // errors, not crashes.
  ASSERT_TRUE(engine.PublishModel(MakeModel(19, 10, 10), 3).ok());
  Request stale;
  stale.user_id = 9;
  EXPECT_EQ(engine.Recommend(stale).status.code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace plp::serve
