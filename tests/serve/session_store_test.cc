#include "serve/session_store.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace plp::serve {
namespace {

SessionStore::Options SmallOptions(size_t capacity, int32_t history_length,
                                   size_t num_shards = 1) {
  SessionStore::Options options;
  options.capacity = capacity;
  options.history_length = history_length;
  options.num_shards = num_shards;
  return options;
}

TEST(SessionStoreTest, AppendBuildsHistoryOldestFirst) {
  SessionStore store(SmallOptions(10, 8));
  EXPECT_EQ(store.Append(42, 1), (std::vector<int32_t>{1}));
  EXPECT_EQ(store.Append(42, 2), (std::vector<int32_t>{1, 2}));
  EXPECT_EQ(store.Append(42, 3), (std::vector<int32_t>{1, 2, 3}));
  EXPECT_EQ(store.size(), 1u);
  auto history = store.Get(42);
  ASSERT_TRUE(history.has_value());
  EXPECT_EQ(*history, (std::vector<int32_t>{1, 2, 3}));
  EXPECT_FALSE(store.Get(7).has_value());
}

TEST(SessionStoreTest, HistoryTrimsToNewestEntries) {
  SessionStore store(SmallOptions(4, 3));
  for (int32_t l = 0; l < 10; ++l) store.Append(1, l);
  auto history = store.Get(1);
  ASSERT_TRUE(history.has_value());
  // Only the newest 3 check-ins survive.
  EXPECT_EQ(*history, (std::vector<int32_t>{7, 8, 9}));
}

TEST(SessionStoreTest, EvictsLeastRecentlyUsedAtCapacity) {
  // One shard so the LRU order is global and deterministic.
  SessionStore store(SmallOptions(3, 4, 1));
  store.Append(1, 10);
  store.Append(2, 20);
  store.Append(3, 30);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.evictions(), 0u);

  // Touch user 1 so user 2 is now the coldest…
  EXPECT_TRUE(store.Get(1).has_value());
  // …and a fourth user evicts user 2, not user 1.
  store.Append(4, 40);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_TRUE(store.Get(1).has_value());
  EXPECT_FALSE(store.Get(2).has_value());
  EXPECT_TRUE(store.Get(3).has_value());
  EXPECT_TRUE(store.Get(4).has_value());

  // An evicted user restarts with a fresh history.
  EXPECT_EQ(store.Append(2, 99), (std::vector<int32_t>{99}));
}

TEST(SessionStoreTest, CapacityBoundHoldsAcrossShards) {
  SessionStore store(SmallOptions(64, 4, 8));
  EXPECT_EQ(store.num_shards(), 8u);
  for (int64_t user = 0; user < 1000; ++user) {
    store.Append(user, static_cast<int32_t>(user % 7));
  }
  // Hard bound: per-shard capacity × shards, regardless of hash skew.
  EXPECT_LE(store.size(), store.capacity());
  EXPECT_GE(store.capacity(), 64u);
  EXPECT_GT(store.evictions(), 0u);
}

TEST(SessionStoreTest, EraseDropsSession) {
  SessionStore store(SmallOptions(8, 4));
  store.Append(5, 1);
  EXPECT_EQ(store.size(), 1u);
  store.Erase(5);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.Get(5).has_value());
  store.Erase(5);  // idempotent
}

// Striped locking smoke: concurrent appends from many users must neither
// race (tsan preset) nor lose the capacity bound.
TEST(SessionStoreTest, ConcurrentAppendsStayBounded) {
  SessionStore store(SmallOptions(128, 8, 16));
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 500; ++i) {
        const int64_t user = t * 1000 + (i % 50);
        store.Append(user, i % 32);
        store.Get(user);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(store.size(), store.capacity());
}

}  // namespace
}  // namespace plp::serve
