#include "baselines/markov.h"

#include <gtest/gtest.h>

namespace plp::baselines {
namespace {

data::TrainingCorpus ChainCorpus() {
  // Deterministic chains: users walk 0→1→2→0→1→2...; a couple also walk
  // 3→4 so those rows exist.
  data::TrainingCorpus corpus;
  corpus.num_locations = 5;
  for (int u = 0; u < 10; ++u) {
    corpus.user_sentences.push_back({{0, 1, 2, 0, 1, 2, 0, 1}});
  }
  for (int u = 0; u < 2; ++u) {
    corpus.user_sentences.push_back({{3, 4, 3, 4}});
  }
  return corpus;
}

TEST(MarkovTest, LearnsDeterministicTransitions) {
  Rng rng(1);
  auto model = MarkovModel::Train(ChainCorpus(), MarkovConfig{}, rng);
  ASSERT_TRUE(model.ok());
  // After 0 the next location is always 1.
  const std::vector<int32_t> history = {2, 0};
  EXPECT_EQ(model->TopK(history, 1), (std::vector<int32_t>{1}));
  const std::vector<int32_t> history2 = {1};
  EXPECT_EQ(model->TopK(history2, 1), (std::vector<int32_t>{2}));
}

TEST(MarkovTest, OnlyLastVisitMatters) {
  Rng rng(1);
  auto model = MarkovModel::Train(ChainCorpus(), MarkovConfig{}, rng);
  ASSERT_TRUE(model.ok());
  const std::vector<int32_t> a = {3, 4, 0};
  const std::vector<int32_t> b = {0};
  EXPECT_EQ(model->TopK(a, 3), model->TopK(b, 3));
}

TEST(MarkovTest, EmptyHistoryFallsBackToPopularity) {
  Rng rng(1);
  auto model = MarkovModel::Train(ChainCorpus(), MarkovConfig{}, rng);
  ASSERT_TRUE(model.ok());
  // Locations 1 and 2 are the most frequent successors overall; 3 and 4
  // are rare so they must rank last.
  const std::vector<int32_t> top = model->TopK({}, 5);
  ASSERT_EQ(top.size(), 5u);
  EXPECT_TRUE(top[0] == 1 || top[0] == 2);
  EXPECT_TRUE(top[3] == 3 || top[3] == 4);
  EXPECT_TRUE(top[4] == 3 || top[4] == 4);
}

TEST(MarkovTest, ScoresSumNearOneWithoutSmoothing) {
  Rng rng(1);
  MarkovConfig config;
  config.popularity_smoothing = 0.0;
  auto model = MarkovModel::Train(ChainCorpus(), config, rng);
  ASSERT_TRUE(model.ok());
  const std::vector<double> scores = model->Scores(0);
  double total = 0.0;
  for (double s : scores) total += s;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(MarkovTest, Validation) {
  Rng rng(1);
  data::TrainingCorpus empty;
  EXPECT_FALSE(MarkovModel::Train(empty, MarkovConfig{}, rng).ok());

  data::TrainingCorpus corpus = ChainCorpus();
  MarkovConfig bad;
  bad.epsilon = -1.0;
  EXPECT_FALSE(MarkovModel::Train(corpus, bad, rng).ok());
  bad = MarkovConfig{};
  bad.max_transitions_per_user = 0;
  EXPECT_FALSE(MarkovModel::Train(corpus, bad, rng).ok());
  bad = MarkovConfig{};
  bad.popularity_smoothing = -0.5;
  EXPECT_FALSE(MarkovModel::Train(corpus, bad, rng).ok());

  data::TrainingCorpus huge;
  huge.num_locations = 5000;
  huge.user_sentences.push_back({{0, 1}});
  EXPECT_FALSE(MarkovModel::Train(huge, MarkovConfig{}, rng).ok());
}

TEST(MarkovTest, DpVariantIsNoisyButDeterministicPerSeed) {
  MarkovConfig config;
  config.epsilon = 1.0;
  Rng a(7), b(7), c(8);
  auto ma = MarkovModel::Train(ChainCorpus(), config, a);
  auto mb = MarkovModel::Train(ChainCorpus(), config, b);
  auto mc = MarkovModel::Train(ChainCorpus(), config, c);
  ASSERT_TRUE(ma.ok());
  ASSERT_TRUE(mb.ok());
  ASSERT_TRUE(mc.ok());
  EXPECT_EQ(ma->Scores(0), mb->Scores(0));  // same seed, same noise
  EXPECT_NE(ma->Scores(0), mc->Scores(0));  // different seed
}

TEST(MarkovTest, DpNoiseShrinksWithEpsilon) {
  // At a huge ε the DP model should agree with the non-private argmax.
  MarkovConfig noisy;
  noisy.epsilon = 1e6;
  Rng rng(9);
  auto model = MarkovModel::Train(ChainCorpus(), noisy, rng);
  ASSERT_TRUE(model.ok());
  const std::vector<int32_t> history = {0};
  EXPECT_EQ(model->TopK(history, 1), (std::vector<int32_t>{1}));
}

TEST(MarkovTest, ContributionBoundCapsHeavyUsers) {
  // One pathological user repeats 3→3 thousands of times; with the cap the
  // aggregate still prefers the organic 0→1 transition when predicting
  // from 0 and the popularity fallback is not swamped.
  data::TrainingCorpus corpus = ChainCorpus();
  std::vector<int32_t> spam(5000, 3);
  corpus.user_sentences.push_back({spam});
  MarkovConfig config;
  config.epsilon = 8.0;
  config.max_transitions_per_user = 16;
  Rng rng(11);
  auto model = MarkovModel::Train(corpus, config, rng);
  ASSERT_TRUE(model.ok());
  const std::vector<int32_t> history = {0};
  EXPECT_EQ(model->TopK(history, 1), (std::vector<int32_t>{1}));
}

TEST(MarkovTest, NonPrivateCountsAreUncapped) {
  // Without DP the cap must not apply (full-signal baseline).
  data::TrainingCorpus corpus;
  corpus.num_locations = 3;
  std::vector<int32_t> walk;
  for (int i = 0; i < 300; ++i) walk.push_back(i % 2);  // 0↔1 many times
  corpus.user_sentences.push_back({walk});
  Rng rng(13);
  auto model = MarkovModel::Train(corpus, MarkovConfig{}, rng);
  ASSERT_TRUE(model.ok());
  const std::vector<double> scores = model->Scores(0);
  EXPECT_GT(scores[1], scores[2]);
}

}  // namespace
}  // namespace plp::baselines
