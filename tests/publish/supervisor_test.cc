#include "publish/supervisor.h"

#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>
#include "common/fault_injection.h"
#include "common/rng.h"
#include "sgns/model.h"

namespace plp::publish {
namespace {

sgns::SgnsModel MakeModel(uint64_t seed, int32_t locations = 40,
                          int32_t dim = 8) {
  Rng rng(seed);
  sgns::SgnsConfig config;
  config.embedding_dim = dim;
  config.init_scale = 1.0;
  auto model = sgns::SgnsModel::Create(locations, config, rng);
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

/// Deterministic stand-in for a retrain round: cycle c yields the model
/// seeded c, spending 0.5 ε and 10 steps.
TrainFn DeterministicTrainer() {
  return [](uint64_t cycle) -> Result<TrainedArtifact> {
    TrainedArtifact artifact;
    artifact.model = MakeModel(100 + cycle);
    artifact.epsilon_spent = 0.5;
    artifact.steps = 10;
    return artifact;
  };
}

std::string FreshDir(const char* name) {
  const std::string dir = testing::TempDir() + "/supervisor_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

SupervisorConfig FastConfig(const std::string& dir) {
  SupervisorConfig config;
  config.publisher.publish_dir = dir;
  config.publisher.recall.num_queries = 16;
  config.max_attempts = 4;
  config.backoff_initial_millis = 0;  // tests retry instantly
  config.backoff_max_millis = 0;
  config.probe_requests = 2;
  return config;
}

serve::ShardedConfig TwoShards() {
  serve::ShardedConfig config;
  config.num_shards = 2;
  config.shard.num_threads = 1;
  return config;
}

TEST(PublishSupervisorTest, CycleTrainsPublishesAndSwapsFleet) {
  const std::string dir = FreshDir("happy");
  serve::ShardedServingEngine engine(TwoShards());
  auto supervisor = PublishSupervisor::Create(FastConfig(dir), &engine);
  ASSERT_TRUE(supervisor.ok()) << supervisor.status().message();

  auto report = supervisor->RunCycle(DeterministicTrainer());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->failure.ok()) << report->failure.message();
  EXPECT_TRUE(report->published);
  EXPECT_EQ(report->published_version, 1u);
  EXPECT_EQ(report->serving_version, 1u);
  EXPECT_GE(report->swap_age_seconds, 0.0);
  EXPECT_TRUE(report->within_slo);
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    ASSERT_NE(engine.shard(s).registry().Current(), nullptr);
    EXPECT_EQ(engine.shard(s).registry().Current()->version(), 1u);
  }
  EXPECT_EQ(supervisor->cumulative_epsilon(), 0.5);

  auto second = supervisor->RunCycle(DeterministicTrainer());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->published);
  EXPECT_EQ(second->published_version, 2u);
  EXPECT_EQ(supervisor->cumulative_epsilon(), 1.0);
  EXPECT_EQ(supervisor->cumulative_steps(), 20);
  EXPECT_EQ(supervisor->publisher().ledger().last()->epsilon_spent, 1.0);
}

TEST(PublishSupervisorTest, TransientFaultRetriesWithinTheCycle) {
  const std::string dir = FreshDir("transient");
  serve::ShardedServingEngine engine(TwoShards());
  auto supervisor = PublishSupervisor::Create(FastConfig(dir), &engine);
  ASSERT_TRUE(supervisor.ok());

  // One-shot fault: the first publish attempt dies at stage, the retry
  // sails through — the cycle still ends published.
  FaultInjection::Arm("publish.stage", FaultMode::kFail);
  auto report = supervisor->RunCycle(DeterministicTrainer());
  FaultInjection::Disarm();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->published);
  EXPECT_EQ(report->publish_attempts, 2);
  EXPECT_EQ(report->serving_version, 1u);
}

TEST(PublishSupervisorTest, PersistentGateFailureDegradesNotBreaks) {
  const std::string dir = FreshDir("degraded");
  serve::ShardedServingEngine engine(TwoShards());
  auto supervisor = PublishSupervisor::Create(FastConfig(dir), &engine);
  ASSERT_TRUE(supervisor.ok());
  ASSERT_TRUE(supervisor->RunCycle(DeterministicTrainer())->published);

  // A gate that fails EVERY attempt: the cycle exhausts its retries, the
  // fleet keeps serving v1, CURRENT still names v1, ε accounting keeps
  // the spend of the failed round.
  FaultInjection::Arm("publish.validate", FaultMode::kFail,
                      FaultTrigger::EveryNth(1));
  auto degraded = supervisor->RunCycle(DeterministicTrainer());
  FaultInjection::Disarm();
  ASSERT_TRUE(degraded.ok());
  EXPECT_FALSE(degraded->published);
  EXPECT_FALSE(degraded->failure.ok());
  EXPECT_EQ(degraded->publish_attempts, 4);  // == max_attempts
  EXPECT_FALSE(degraded->rolled_back);       // CURRENT never moved
  EXPECT_EQ(degraded->serving_version, 1u);
  EXPECT_GE(degraded->swap_age_seconds, 0.0);
  EXPECT_TRUE(degraded->within_slo);
  EXPECT_EQ(*supervisor->publisher().CurrentVersion(), 1u);
  EXPECT_EQ(supervisor->cumulative_epsilon(), 1.0);  // spend never lost

  // Once the fault clears, the next cycle publishes v2 carrying the full
  // cumulative spend (1.5 = three trained rounds).
  auto recovered = supervisor->RunCycle(DeterministicTrainer());
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->published);
  EXPECT_EQ(recovered->published_version, 2u);
  EXPECT_EQ(supervisor->publisher().ledger().last()->epsilon_spent, 1.5);
}

TEST(PublishSupervisorTest, FleetSwapFailureRollsBackToLastGood) {
  const std::string dir = FreshDir("rollback");
  serve::ShardedServingEngine engine(TwoShards());
  auto supervisor = PublishSupervisor::Create(FastConfig(dir), &engine);
  ASSERT_TRUE(supervisor.ok());
  ASSERT_TRUE(supervisor->RunCycle(DeterministicTrainer())->published);

  // v2 passes every publish gate (CURRENT briefly names it), but the
  // fleet swap fails persistently → automatic rollback: CURRENT and both
  // shards return to v1.
  FaultInjection::Arm("publish.serve_swap", FaultMode::kFail,
                      FaultTrigger::EveryNth(1));
  auto report = supervisor->RunCycle(DeterministicTrainer());
  FaultInjection::Disarm();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->published);
  EXPECT_TRUE(report->rolled_back);
  EXPECT_EQ(report->serving_version, 1u);
  EXPECT_EQ(*supervisor->publisher().CurrentVersion(), 1u);
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    EXPECT_EQ(engine.shard(s).registry().Current()->version(), 1u);
  }
  // v2 remains accounted (ε spent) and promoted — rollback reverts what
  // is served, never what was paid.
  EXPECT_EQ(supervisor->publisher().ledger().last()->version, 2u);
}

TEST(PublishSupervisorTest, RestartRecoversLastGoodAndServesImmediately) {
  const std::string dir = FreshDir("restart");
  double epsilon_before = 0.0;
  {
    serve::ShardedServingEngine engine(TwoShards());
    auto supervisor = PublishSupervisor::Create(FastConfig(dir), &engine);
    ASSERT_TRUE(supervisor.ok());
    ASSERT_TRUE(supervisor->RunCycle(DeterministicTrainer())->published);
    ASSERT_TRUE(supervisor->RunCycle(DeterministicTrainer())->published);
    epsilon_before = supervisor->cumulative_epsilon();
  }
  // Fresh process, fresh engine: recovery re-publishes the verified
  // CURRENT version before any retraining happens.
  serve::ShardedServingEngine engine(TwoShards());
  auto supervisor = PublishSupervisor::Create(FastConfig(dir), &engine);
  ASSERT_TRUE(supervisor.ok()) << supervisor.status().message();
  EXPECT_EQ(supervisor->last_good_version(), 2u);
  EXPECT_EQ(supervisor->cumulative_epsilon(), epsilon_before);
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    ASSERT_NE(engine.shard(s).registry().Current(), nullptr);
    EXPECT_EQ(engine.shard(s).registry().Current()->version(), 2u);
  }
  // And the loop continues from v3.
  auto next = supervisor->RunCycle(DeterministicTrainer());
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next->published);
  EXPECT_EQ(next->published_version, 3u);
}

}  // namespace
}  // namespace plp::publish
