#include "publish/snapshot_publisher.h"

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>
#include "common/atomic_file.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "sgns/model.h"

namespace plp::publish {
namespace {

sgns::SgnsModel MakeModel(uint64_t seed, int32_t locations = 40,
                          int32_t dim = 8) {
  Rng rng(seed);
  sgns::SgnsConfig config;
  config.embedding_dim = dim;
  config.init_scale = 1.0;
  auto model = sgns::SgnsModel::Create(locations, config, rng);
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

std::string FreshDir(const char* name) {
  const std::string dir = testing::TempDir() + "/publisher_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

PublisherConfig BaseConfig(const std::string& dir) {
  PublisherConfig config;
  config.publish_dir = dir;
  config.recall.num_queries = 32;  // cheap but meaningful on test models
  return config;
}

TEST(SnapshotPublisherTest, PublishesPromotesAndSwapsCurrent) {
  const std::string dir = FreshDir("happy");
  auto publisher = SnapshotPublisher::Create(BaseConfig(dir));
  ASSERT_TRUE(publisher.ok());
  EXPECT_FALSE(publisher->CurrentVersion().ok());  // nothing published yet

  auto result = publisher->Publish(MakeModel(3), 0.5, 10);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->version, 1u);
  EXPECT_FALSE(result->resumed);
  ASSERT_NE(result->snapshot, nullptr);
  EXPECT_TRUE(std::filesystem::exists(publisher->ModelPath(1)));
  EXPECT_FALSE(std::filesystem::exists(dir + "/staging"));

  auto current = publisher->CurrentVersion();
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*current, 1u);
  EXPECT_TRUE(publisher->VerifyCurrent().ok());
  ASSERT_EQ(publisher->ledger().records().size(), 1u);
  EXPECT_EQ(publisher->ledger().last()->epsilon_spent, 0.5);
  EXPECT_EQ(publisher->ledger().last()->snapshot_checksum,
            result->snapshot->checksum());

  // Second publish becomes v2 and takes over CURRENT.
  auto second = publisher->Publish(MakeModel(4), 1.0, 20);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->version, 2u);
  EXPECT_EQ(*publisher->CurrentVersion(), 2u);
  EXPECT_TRUE(publisher->VerifyCurrent().ok());
  EXPECT_TRUE(std::filesystem::exists(publisher->ModelPath(1)));  // kept
}

TEST(SnapshotPublisherTest, EpsilonRegressionIsRejectedBeforePromote) {
  const std::string dir = FreshDir("eps_regress");
  auto publisher = SnapshotPublisher::Create(BaseConfig(dir));
  ASSERT_TRUE(publisher.ok());
  ASSERT_TRUE(publisher->Publish(MakeModel(5), 1.0, 10).ok());

  auto regressed = publisher->Publish(MakeModel(6), 0.25, 20);
  ASSERT_FALSE(regressed.ok());
  EXPECT_EQ(*publisher->CurrentVersion(), 1u);
  EXPECT_EQ(publisher->ledger().records().size(), 1u);
  EXPECT_FALSE(std::filesystem::exists(publisher->VersionDir(2)));
}

TEST(SnapshotPublisherTest, ValidateFaultFailsBeforeAnyAccounting) {
  const std::string dir = FreshDir("validate_fault");
  auto publisher = SnapshotPublisher::Create(BaseConfig(dir));
  ASSERT_TRUE(publisher.ok());

  FaultInjection::Arm("publish.validate", FaultMode::kFail);
  auto result = publisher->Publish(MakeModel(7), 0.5, 10);
  FaultInjection::Disarm();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(publisher->ledger().records().empty());
  EXPECT_FALSE(publisher->CurrentVersion().ok());
  EXPECT_FALSE(std::filesystem::exists(publisher->VersionDir(1)));

  // The same input then publishes cleanly.
  auto retried = publisher->Publish(MakeModel(7), 0.5, 10);
  ASSERT_TRUE(retried.ok());
  EXPECT_FALSE(retried->resumed);
  EXPECT_EQ(retried->version, 1u);
}

// The ε-idempotency contract: a fault AFTER the ledger append must not
// re-append on retry — the retry resumes the same version.
TEST(SnapshotPublisherTest, RetryAfterPromoteFaultResumesWithoutDoubleSpend) {
  const std::string dir = FreshDir("promote_fault");
  auto publisher = SnapshotPublisher::Create(BaseConfig(dir));
  ASSERT_TRUE(publisher.ok());
  const sgns::SgnsModel model = MakeModel(9);

  FaultInjection::Arm("publish.promote", FaultMode::kFail);
  auto failed = publisher->Publish(model, 0.5, 10);
  FaultInjection::Disarm();
  ASSERT_FALSE(failed.ok());
  // ε is accounted, but v1 is neither promoted nor CURRENT.
  ASSERT_EQ(publisher->ledger().records().size(), 1u);
  EXPECT_FALSE(publisher->CurrentVersion().ok());
  EXPECT_FALSE(std::filesystem::exists(publisher->VersionDir(1)));

  auto retried = publisher->Publish(model, 0.5, 10);
  ASSERT_TRUE(retried.ok()) << retried.status().message();
  EXPECT_TRUE(retried->resumed);
  EXPECT_EQ(retried->version, 1u);
  EXPECT_EQ(publisher->ledger().records().size(), 1u);  // counted ONCE
  EXPECT_EQ(*publisher->CurrentVersion(), 1u);
  EXPECT_TRUE(publisher->VerifyCurrent().ok());
}

TEST(SnapshotPublisherTest, RetryAfterCurrentSwapFaultResumes) {
  const std::string dir = FreshDir("swap_fault");
  auto publisher = SnapshotPublisher::Create(BaseConfig(dir));
  ASSERT_TRUE(publisher.ok());
  const sgns::SgnsModel model = MakeModel(11);

  FaultInjection::Arm("publish.current_swap", FaultMode::kFail);
  auto failed = publisher->Publish(model, 0.5, 10);
  FaultInjection::Disarm();
  ASSERT_FALSE(failed.ok());
  // Promoted and accounted, but not yet nameable.
  EXPECT_TRUE(std::filesystem::exists(publisher->ModelPath(1)));
  EXPECT_FALSE(publisher->CurrentVersion().ok());

  auto retried = publisher->Publish(model, 0.5, 10);
  ASSERT_TRUE(retried.ok());
  EXPECT_TRUE(retried->resumed);
  EXPECT_EQ(publisher->ledger().records().size(), 1u);
  EXPECT_EQ(*publisher->CurrentVersion(), 1u);
}

TEST(SnapshotPublisherTest, ImpossibleRecallGateFailsClosed) {
  const std::string dir = FreshDir("recall_gate");
  PublisherConfig config = BaseConfig(dir);
  config.snapshot.format = serve::SnapshotFormat::kInt8;
  config.snapshot.build_ivf = true;
  config.min_recall = 1.01;  // unattainable by construction
  auto publisher = SnapshotPublisher::Create(config);
  ASSERT_TRUE(publisher.ok());

  auto result = publisher->Publish(MakeModel(13, 200, 16), 0.5, 10);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(publisher->ledger().records().empty());
  EXPECT_FALSE(publisher->CurrentVersion().ok());
}

TEST(SnapshotPublisherTest, QuantizedIndexedCandidatePassesRealGate) {
  const std::string dir = FreshDir("recall_pass");
  PublisherConfig config = BaseConfig(dir);
  config.snapshot.format = serve::SnapshotFormat::kFloat16;
  config.snapshot.build_ivf = true;
  // Random-init embeddings have no cluster structure, so probe every list:
  // the gate then measures fp16 quantization loss, which is tiny.
  config.recall.nprobe = 1 << 20;
  config.min_recall = 0.95;
  auto publisher = SnapshotPublisher::Create(config);
  ASSERT_TRUE(publisher.ok());
  auto result = publisher->Publish(MakeModel(15, 200, 16), 0.5, 10);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->snapshot->format(), serve::SnapshotFormat::kFloat16);
  ASSERT_EQ(publisher->ledger().records().size(), 1u);
  EXPECT_EQ(publisher->ledger().last()->snapshot_checksum,
            result->snapshot->checksum());
  EXPECT_TRUE(publisher->VerifyCurrent().ok());
}

TEST(SnapshotPublisherTest, RollbackMovesCurrentOnlyToAccountedVersions) {
  const std::string dir = FreshDir("rollback");
  auto publisher = SnapshotPublisher::Create(BaseConfig(dir));
  ASSERT_TRUE(publisher.ok());
  ASSERT_TRUE(publisher->Publish(MakeModel(17), 0.5, 10).ok());
  ASSERT_TRUE(publisher->Publish(MakeModel(18), 1.0, 20).ok());
  ASSERT_EQ(*publisher->CurrentVersion(), 2u);

  ASSERT_TRUE(publisher->RollbackTo(1).ok());
  EXPECT_EQ(*publisher->CurrentVersion(), 1u);
  EXPECT_TRUE(publisher->VerifyCurrent().ok());
  // The ledger is untouched by rollback — ε stays spent.
  EXPECT_EQ(publisher->ledger().records().size(), 2u);
  // Unaccounted versions are not a rollback target.
  EXPECT_FALSE(publisher->RollbackTo(99).ok());
  EXPECT_EQ(*publisher->CurrentVersion(), 1u);
}

TEST(SnapshotPublisherTest, VerifyCurrentCatchesTamperedArtifact) {
  const std::string dir = FreshDir("tamper");
  auto publisher = SnapshotPublisher::Create(BaseConfig(dir));
  ASSERT_TRUE(publisher.ok());
  ASSERT_TRUE(publisher->Publish(MakeModel(19), 0.5, 10).ok());
  ASSERT_TRUE(publisher->VerifyCurrent().ok());

  auto bytes = ReadFileToString(publisher->ModelPath(1));
  ASSERT_TRUE(bytes.ok());
  std::string flipped = *bytes;
  flipped[flipped.size() - 3] ^= 0x10;
  ASSERT_TRUE(AtomicWriteFile(publisher->ModelPath(1), flipped).ok());
  EXPECT_FALSE(publisher->VerifyCurrent().ok());
}

}  // namespace
}  // namespace plp::publish
