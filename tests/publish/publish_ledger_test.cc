#include "publish/publish_ledger.h"

#include <string>

#include <gtest/gtest.h>
#include "common/atomic_file.h"
#include "common/fault_injection.h"

namespace plp::publish {
namespace {

std::string TempLedgerPath(const char* name) {
  return testing::TempDir() + "/" + name + ".plpl";
}

PublishRecord MakeRecord(uint64_t version, double epsilon, int64_t steps) {
  PublishRecord record;
  record.version = version;
  record.train_steps = steps;
  record.epsilon_spent = epsilon;
  record.model_crc64 = 0x1000 + version;
  record.snapshot_checksum = 0x2000 + version;
  return record;
}

TEST(PublishLedgerTest, StartsEmptyAndAppends) {
  const std::string path = TempLedgerPath("starts_empty");
  std::remove(path.c_str());
  auto ledger = PublishLedger::Open(path);
  ASSERT_TRUE(ledger.ok());
  EXPECT_EQ(ledger->last(), nullptr);
  EXPECT_EQ(ledger->NextVersion(), 1u);

  ASSERT_TRUE(ledger->Append(MakeRecord(1, 0.5, 10)).ok());
  ASSERT_TRUE(ledger->Append(MakeRecord(2, 1.0, 20)).ok());
  ASSERT_EQ(ledger->records().size(), 2u);
  EXPECT_EQ(ledger->last()->version, 2u);
  EXPECT_EQ(ledger->NextVersion(), 3u);
}

TEST(PublishLedgerTest, PersistsAcrossOpen) {
  const std::string path = TempLedgerPath("persists");
  std::remove(path.c_str());
  {
    auto ledger = PublishLedger::Open(path);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE(ledger->Append(MakeRecord(1, 0.5, 10)).ok());
    ASSERT_TRUE(ledger->Append(MakeRecord(2, 1.25, 20)).ok());
  }
  auto reopened = PublishLedger::Open(path);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened->records().size(), 2u);
  EXPECT_EQ(reopened->records()[0].epsilon_spent, 0.5);
  EXPECT_EQ(reopened->records()[1].epsilon_spent, 1.25);
  EXPECT_EQ(reopened->records()[1].model_crc64, 0x1000u + 2);
}

TEST(PublishLedgerTest, EncodeIsAPureFunctionOfTheChain) {
  const std::string path_a = TempLedgerPath("pure_a");
  const std::string path_b = TempLedgerPath("pure_b");
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  auto a = PublishLedger::Open(path_a);
  auto b = PublishLedger::Open(path_b);
  ASSERT_TRUE(a.ok() && b.ok());
  for (uint64_t v = 1; v <= 5; ++v) {
    ASSERT_TRUE(a->Append(MakeRecord(v, 0.5 * v, 10 * v)).ok());
    ASSERT_TRUE(b->Append(MakeRecord(v, 0.5 * v, 10 * v)).ok());
  }
  // Identical chains encode to identical bytes regardless of where they
  // live — the property the chaos harness's bit-identity check rests on.
  EXPECT_EQ(a->Encode(), b->Encode());
}

TEST(PublishLedgerTest, RejectsVersionGapsAndRegressions) {
  const std::string path = TempLedgerPath("monotone");
  std::remove(path.c_str());
  auto ledger = PublishLedger::Open(path);
  ASSERT_TRUE(ledger.ok());
  // First record must be version 1.
  EXPECT_FALSE(ledger->Append(MakeRecord(3, 0.5, 10)).ok());
  ASSERT_TRUE(ledger->Append(MakeRecord(1, 0.5, 10)).ok());
  // Version gap.
  EXPECT_FALSE(ledger->Append(MakeRecord(3, 1.0, 20)).ok());
  // ε regression.
  EXPECT_FALSE(ledger->Append(MakeRecord(2, 0.25, 20)).ok());
  // Step regression.
  EXPECT_FALSE(ledger->Append(MakeRecord(2, 1.0, 5)).ok());
  // None of the rejected appends changed anything.
  ASSERT_EQ(ledger->records().size(), 1u);
  auto reopened = PublishLedger::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->records().size(), 1u);
  // The valid continuation still lands.
  EXPECT_TRUE(ledger->Append(MakeRecord(2, 1.0, 20)).ok());
}

TEST(PublishLedgerTest, RejectsCorruptFile) {
  const std::string path = TempLedgerPath("corrupt");
  std::remove(path.c_str());
  {
    auto ledger = PublishLedger::Open(path);
    ASSERT_TRUE(ledger.ok());
    ASSERT_TRUE(ledger->Append(MakeRecord(1, 0.5, 10)).ok());
  }
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string flipped = *bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  ASSERT_TRUE(AtomicWriteFile(path, flipped).ok());
  EXPECT_FALSE(PublishLedger::Open(path).ok());
}

TEST(PublishLedgerTest, AppendFaultLeavesFileAndChainUntouched) {
  const std::string path = TempLedgerPath("fault");
  std::remove(path.c_str());
  auto ledger = PublishLedger::Open(path);
  ASSERT_TRUE(ledger.ok());
  ASSERT_TRUE(ledger->Append(MakeRecord(1, 0.5, 10)).ok());
  const std::string before = ReadFileToString(path).value();

  FaultInjection::Arm("publish.ledger_append", FaultMode::kFail);
  EXPECT_FALSE(ledger->Append(MakeRecord(2, 1.0, 20)).ok());
  FaultInjection::Disarm();

  EXPECT_EQ(ledger->records().size(), 1u);
  EXPECT_EQ(ReadFileToString(path).value(), before);
  // And the chain still extends cleanly afterwards.
  EXPECT_TRUE(ledger->Append(MakeRecord(2, 1.0, 20)).ok());
}

}  // namespace
}  // namespace plp::publish
