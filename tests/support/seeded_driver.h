#ifndef PLP_TESTS_SUPPORT_SEEDED_DRIVER_H_
#define PLP_TESTS_SUPPORT_SEEDED_DRIVER_H_

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

namespace plp::test {

/// Deterministic seed sequence for property tests: seed i is a fixed
/// mixing of `base`, so a suite's seeds never drift between runs or
/// machines. Exposed so a failing seed can be replayed in isolation.
inline uint64_t SeedAt(uint64_t base, int index) {
  // splitmix64 step — decorrelates consecutive indices.
  uint64_t z = base + 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Seeded property-test driver: runs `fn(seed)` for `count` deterministic
/// seeds derived from `base`. Each invocation is wrapped in a
/// SCOPED_TRACE naming the seed, so a gtest failure reports exactly which
/// seed to replay. Use a distinct `base` per test so suites don't share
/// streams.
template <typename Fn>
void ForEachSeed(int count, uint64_t base, Fn&& fn) {
  for (int i = 0; i < count; ++i) {
    const uint64_t seed = SeedAt(base, i);
    testing::ScopedTrace trace(
        __FILE__, __LINE__,
        "seed[" + std::to_string(i) + "] = " + std::to_string(seed));
    fn(seed);
  }
}

}  // namespace plp::test

#endif  // PLP_TESTS_SUPPORT_SEEDED_DRIVER_H_
