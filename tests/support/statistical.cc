#include "support/statistical.h"

#include "common/math_util.h"
#include "common/stats.h"

namespace plp::test {

testing::AssertionResult IsGaussianSample(std::span<const double> sample,
                                          double mean, double stddev,
                                          double alpha) {
  auto result = KolmogorovSmirnovTest(sample, [mean, stddev](double x) {
    return NormalCdf((x - mean) / stddev);
  });
  if (!result.ok()) {
    return testing::AssertionFailure() << result.status().ToString();
  }
  if (result->p_value < alpha) {
    return testing::AssertionFailure()
           << "KS test rejects N(" << mean << ", " << stddev << "²): D = "
           << result->statistic << ", p = " << result->p_value << " < alpha "
           << alpha << " (n = " << result->n << ")";
  }
  return testing::AssertionSuccess()
         << "KS p = " << result->p_value << " (D = " << result->statistic
         << ")";
}

testing::AssertionResult HasMean(std::span<const double> sample,
                                 double expected_mean, double known_stddev,
                                 double alpha) {
  auto result = ZTestMean(sample, expected_mean, known_stddev);
  if (!result.ok()) {
    return testing::AssertionFailure() << result.status().ToString();
  }
  if (result->p_value < alpha) {
    return testing::AssertionFailure()
           << "z-test rejects mean " << expected_mean << ": sample mean "
           << result->sample_mean << ", z = " << result->z_statistic
           << ", p = " << result->p_value << " < alpha " << alpha;
  }
  return testing::AssertionSuccess() << "z p = " << result->p_value;
}

testing::AssertionResult MatchesExpectedCounts(
    std::span<const double> observed, std::span<const double> expected,
    double alpha) {
  auto result = ChiSquareGoodnessOfFit(observed, expected);
  if (!result.ok()) {
    return testing::AssertionFailure() << result.status().ToString();
  }
  if (result->p_value < alpha) {
    return testing::AssertionFailure()
           << "chi-square rejects expected counts: X² = " << result->statistic
           << " (df " << result->degrees_of_freedom << "), p = "
           << result->p_value << " < alpha " << alpha;
  }
  return testing::AssertionSuccess() << "chi-square p = " << result->p_value;
}

}  // namespace plp::test
