#ifndef PLP_TESTS_SUPPORT_FIXTURES_H_
#define PLP_TESTS_SUPPORT_FIXTURES_H_

#include <cstdint>

#include "core/config.h"
#include "data/corpus.h"
#include "data/fixtures.h"

namespace plp::test {

/// Structureless corpus: every token uniform over the location space. The
/// canonical input for privacy-invariant tests, where only data *shape*
/// matters. One single-sentence user per index; sentence lengths uniform
/// in [min_tokens, max_tokens] (equal values pin the length).
data::TrainingCorpus UniformCorpus(uint64_t seed, int32_t num_users,
                                   int32_t num_locations,
                                   int32_t min_tokens = 5,
                                   int32_t max_tokens = 30);

/// Corpus with learnable co-visitation structure: each user walks inside a
/// 5-location neighborhood. The canonical input for training-dynamics
/// tests (losses decrease, signals strengthen).
data::TrainingCorpus ClusteredCorpus(uint64_t seed = 7,
                                     int32_t num_users = 60,
                                     int32_t tokens_per_user = 20,
                                     int32_t num_locations = 30);

/// Small-model trainer config sized so a full Train() finishes in
/// milliseconds: dim 8, 4 negatives, q = 0.2, λ = 3, σ = 2, 10 steps.
core::PlpConfig FastTrainerConfig();

/// The config privacy-invariant suites share: dim 6, 4 negatives,
/// q = 0.25, σ = 2, budget 5, 6 steps.
core::PlpConfig InvariantTrainerConfig();

}  // namespace plp::test

#endif  // PLP_TESTS_SUPPORT_FIXTURES_H_
