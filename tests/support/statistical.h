#ifndef PLP_TESTS_SUPPORT_STATISTICAL_H_
#define PLP_TESTS_SUPPORT_STATISTICAL_H_

#include <span>

#include <gtest/gtest.h>

namespace plp::test {

/// Statistical assertion helpers over src/common/stats.h, returning gtest
/// AssertionResults so failures carry the statistic and p-value.
///
/// `alpha` is the per-assertion false-positive rate UNDER FIXED SEEDS it
/// would be the flake rate; with this repo's fixed-seed policy a passing
/// assertion passes forever, and alpha instead bounds how unlucky the one
/// frozen draw can be. Suites use alpha = 1e-3 per assertion (documented
/// in README "Testing & verification").

/// Kolmogorov–Smirnov assertion that `sample` was drawn from
/// N(mean, stddev²). Rejects when the KS p-value falls below `alpha`.
testing::AssertionResult IsGaussianSample(std::span<const double> sample,
                                          double mean, double stddev,
                                          double alpha = 1e-3);

/// Two-sided z-test assertion that `sample` has the given mean, treating
/// `known_stddev` as the true per-observation standard deviation.
testing::AssertionResult HasMean(std::span<const double> sample,
                                 double expected_mean, double known_stddev,
                                 double alpha = 1e-3);

/// Chi-square assertion that observed cell counts match expectations.
/// Expected counts must be positive; cells with expectation < 5 should be
/// merged by the caller first.
testing::AssertionResult MatchesExpectedCounts(
    std::span<const double> observed, std::span<const double> expected,
    double alpha = 1e-3);

}  // namespace plp::test

#endif  // PLP_TESTS_SUPPORT_STATISTICAL_H_
