#include "support/fixtures.h"

namespace plp::test {

data::TrainingCorpus UniformCorpus(uint64_t seed, int32_t num_users,
                                   int32_t num_locations, int32_t min_tokens,
                                   int32_t max_tokens) {
  data::FixtureCorpusOptions options;
  options.num_users = num_users;
  options.num_locations = num_locations;
  options.min_tokens_per_user = min_tokens;
  options.max_tokens_per_user = max_tokens;
  return data::MakeFixtureCorpus(seed, options);
}

data::TrainingCorpus ClusteredCorpus(uint64_t seed, int32_t num_users,
                                     int32_t tokens_per_user,
                                     int32_t num_locations) {
  data::FixtureCorpusOptions options;
  options.num_users = num_users;
  options.num_locations = num_locations;
  options.min_tokens_per_user = tokens_per_user;
  options.max_tokens_per_user = tokens_per_user;
  options.neighborhood = 5;
  return data::MakeFixtureCorpus(seed, options);
}

core::PlpConfig FastTrainerConfig() {
  core::PlpConfig config;
  config.sgns.embedding_dim = 8;
  config.sgns.negatives = 4;
  config.sampling_probability = 0.2;
  config.grouping_factor = 3;
  config.noise_scale = 2.0;
  config.epsilon_budget = 4.0;
  config.max_steps = 10;
  return config;
}

core::PlpConfig InvariantTrainerConfig() {
  core::PlpConfig config;
  config.sgns.embedding_dim = 6;
  config.sgns.negatives = 4;
  config.sampling_probability = 0.25;
  config.noise_scale = 2.0;
  config.epsilon_budget = 5.0;
  config.max_steps = 6;
  return config;
}

}  // namespace plp::test
