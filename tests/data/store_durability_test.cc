// PLPD durability contract: a corpus directory either opens as exactly
// the bytes that were committed, or Open() fails — no torn, truncated, or
// bit-flipped state is ever silently accepted. The battery flips EVERY
// byte of the metadata files and one record shard, truncates the shard at
// every length, and checks that stray atomic-write temp files (a crash
// mid-commit) do not confuse a reopen.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/atomic_file.h"
#include "data/dataset.h"
#include "data/fixtures.h"
#include "data/store/checkin_store.h"
#include "data/store/store_writer.h"
#include "support/seeded_driver.h"

namespace plp::data::store {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteAll(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A tiny committed corpus (3 users, single shard) shared by the flip
/// batteries — small files keep every-byte sweeps fast.
std::string CommitTinyCorpus(const std::string& name) {
  const std::string dir = FreshDir(name);
  auto writer_or = CheckInStoreWriter::Create(dir);
  PLP_CHECK(writer_or.ok());
  const std::vector<std::vector<int64_t>> users = {
      {7, 3, 7, 1}, {3, 3}, {1, 7, 3}};
  int64_t t = 100;
  for (const auto& locs : users) {
    std::vector<int64_t> ts;
    for (size_t i = 0; i < locs.size(); ++i) ts.push_back(t += 60);
    PLP_CHECK((*writer_or)->AppendUser(locs, ts).ok());
  }
  PLP_CHECK((*writer_or)->Finish().ok());
  PLP_CHECK(CheckInStore::Open(dir).ok());
  return dir;
}

/// Flips every byte of `file` in turn (XOR 0xFF) and asserts that Open
/// rejects each corruption, restoring the pristine bytes between flips.
void ExpectEveryByteFlipRejected(const std::string& dir,
                                 const std::string& file) {
  const fs::path path = fs::path(dir) / file;
  const std::string pristine = ReadAll(path);
  ASSERT_GT(pristine.size(), 0u) << file;
  int accepted = 0;
  for (size_t i = 0; i < pristine.size(); ++i) {
    std::string corrupt = pristine;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    WriteAll(path, corrupt);
    if (CheckInStore::Open(dir).ok()) {
      ++accepted;
      ADD_FAILURE() << file << ": flip of byte " << i << " was accepted";
      if (accepted > 3) break;  // don't spam thousands of failures
    }
  }
  WriteAll(path, pristine);
  ASSERT_TRUE(CheckInStore::Open(dir).ok()) << "restore failed for " << file;
}

TEST(StoreDurabilityTest, EveryManifestByteFlipIsRejected) {
  const std::string dir = CommitTinyCorpus("durability-manifest");
  ExpectEveryByteFlipRejected(dir, kManifestFile);
}

TEST(StoreDurabilityTest, EveryIndexByteFlipIsRejected) {
  const std::string dir = CommitTinyCorpus("durability-index");
  ExpectEveryByteFlipRejected(dir, kIndexFile);
}

TEST(StoreDurabilityTest, EveryVocabByteFlipIsRejected) {
  const std::string dir = CommitTinyCorpus("durability-vocab");
  ExpectEveryByteFlipRejected(dir, kVocabFile);
}

TEST(StoreDurabilityTest, EveryFreqsByteFlipIsRejected) {
  const std::string dir = CommitTinyCorpus("durability-freqs");
  ExpectEveryByteFlipRejected(dir, kFreqsFile);
}

TEST(StoreDurabilityTest, EveryShardByteFlipIsRejected) {
  const std::string dir = CommitTinyCorpus("durability-shard");
  ExpectEveryByteFlipRejected(dir, ShardFileName(0));
}

TEST(StoreDurabilityTest, EveryShardTruncationIsRejected) {
  const std::string dir = CommitTinyCorpus("durability-truncate");
  const fs::path shard = fs::path(dir) / ShardFileName(0);
  const std::string pristine = ReadAll(shard);
  for (size_t len = 0; len < pristine.size(); ++len) {
    WriteAll(shard, pristine.substr(0, len));
    EXPECT_FALSE(CheckInStore::Open(dir).ok())
        << "truncation to " << len << " bytes was accepted";
  }
  WriteAll(shard, pristine);
  ASSERT_TRUE(CheckInStore::Open(dir).ok());
}

TEST(StoreDurabilityTest, MissingShardIsRejectedWithClearMessage) {
  const std::string dir = CommitTinyCorpus("durability-missing-shard");
  fs::remove(fs::path(dir) / ShardFileName(0));
  auto store_or = CheckInStore::Open(dir);
  ASSERT_FALSE(store_or.ok());
  EXPECT_NE(std::string(store_or.status().message()).find(ShardFileName(0)),
            std::string::npos)
      << store_or.status();
}

TEST(StoreDurabilityTest, StrayAtomicTempFilesDoNotBlockReopen) {
  // A crash between AtomicWriteFile's temp write and its rename leaves a
  // `*.plp_tmp.*`-style temp beside the committed files. The committed
  // corpus must still open: the manifest is the commit point and temps
  // are not part of the namespace it describes.
  const std::string dir = CommitTinyCorpus("durability-torn");
  WriteAll(fs::path(dir) / ("index.plpdi" + std::string(kAtomicTempInfix) +
                            "1234"),
           "garbage bytes from a torn write");
  WriteAll(fs::path(dir) / "shard-00001.plpds.tmp.999", "torn shard bytes");
  auto store_or = CheckInStore::Open(dir);
  ASSERT_TRUE(store_or.ok()) << store_or.status();
  EXPECT_EQ((*store_or)->num_users(), 3);
}

TEST(StoreDurabilityTest, InterruptedWriterLeavesNoOpenableCorpus) {
  // A writer that never reaches Finish() must not leave a directory that
  // opens: the manifest is written last, so its absence is the signal.
  const std::string dir = FreshDir("durability-unfinished");
  {
    auto writer_or = CheckInStoreWriter::Create(dir);
    ASSERT_TRUE(writer_or.ok());
    const std::vector<int64_t> locs = {1, 2, 3};
    const std::vector<int64_t> ts = {10, 20, 30};
    ASSERT_TRUE((*writer_or)->AppendUser(locs, ts).ok());
    // Writer destroyed without Finish() — simulated crash.
  }
  auto store_or = CheckInStore::Open(dir);
  ASSERT_FALSE(store_or.ok());
  EXPECT_EQ(store_or.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace plp::data::store
