#include "data/corpus.h"

#include <gtest/gtest.h>

namespace plp::data {
namespace {

CheckIn Make(int32_t user, int32_t location, int64_t t) {
  CheckIn c;
  c.user = user;
  c.location = location;
  c.timestamp = t;
  return c;
}

CheckInDataset TwoUserDataset() {
  // User 0: locations 0,1,2 in one burst, then 3 hours later location 0.
  // User 1: one check-in.
  auto ds = CheckInDataset::FromRecords({
      Make(0, 10, 0), Make(0, 11, 600), Make(0, 12, 1200),
      Make(0, 10, 8 * 3600),
      Make(1, 11, 50),
  });
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TEST(CorpusTest, FullHistoryIsOneSentencePerUser) {
  auto corpus = BuildCorpus(TwoUserDataset());
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->num_users(), 2);
  EXPECT_EQ(corpus->num_locations, 3);
  ASSERT_EQ(corpus->user_sentences[0].size(), 1u);
  EXPECT_EQ(corpus->user_sentences[0][0],
            (std::vector<int32_t>{0, 1, 2, 0}));
  ASSERT_EQ(corpus->user_sentences[1].size(), 1u);
  EXPECT_EQ(corpus->user_sentences[1][0], (std::vector<int32_t>{1}));
}

TEST(CorpusTest, PerSessionSplitsAtGaps) {
  CorpusOptions options;
  options.mode = SentenceMode::kPerSession;
  options.max_session_seconds = 6 * 3600;
  options.max_gap_seconds = 6 * 3600;
  auto corpus = BuildCorpus(TwoUserDataset(), options);
  ASSERT_TRUE(corpus.ok());
  ASSERT_EQ(corpus->user_sentences[0].size(), 2u);
  EXPECT_EQ(corpus->user_sentences[0][0], (std::vector<int32_t>{0, 1, 2}));
  EXPECT_EQ(corpus->user_sentences[0][1], (std::vector<int32_t>{0}));
}

TEST(CorpusTest, TokenCountMatchesCheckIns) {
  const CheckInDataset ds = TwoUserDataset();
  auto full = BuildCorpus(ds);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->num_tokens(), ds.num_checkins());
  CorpusOptions options;
  options.mode = SentenceMode::kPerSession;
  auto sessions = BuildCorpus(ds, options);
  ASSERT_TRUE(sessions.ok());
  EXPECT_EQ(sessions->num_tokens(), ds.num_checkins());
}

TEST(CorpusTest, EmptyDatasetRejected) {
  CheckInDataset empty;
  EXPECT_FALSE(BuildCorpus(empty).ok());
}

}  // namespace
}  // namespace plp::data
