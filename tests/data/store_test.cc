// PLPD check-in store: round-trip fidelity, sharded-vocabulary id
// assignment, shard rotation, zero-copy read-back equivalence with the
// in-RAM corpus, bitwise training equivalence across the two corpus
// representations, and the collect-all-violations open contract.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/plp_trainer.h"
#include "data/corpus.h"
#include "data/fixtures.h"
#include "data/statistics.h"
#include "data/store/checkin_store.h"
#include "data/store/mmap_corpus.h"
#include "data/store/store_writer.h"
#include "data/synthetic_generator.h"
#include "support/fixtures.h"
#include "support/seeded_driver.h"

namespace plp::data::store {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

CheckInDataset SmallDataset(uint64_t seed) {
  auto dataset = MakeFixtureDataset(seed, "small");
  PLP_CHECK(dataset.ok());
  return *std::move(dataset);
}

TEST(CheckInStoreTest, RoundTripsEveryUserSpan) {
  const CheckInDataset dataset = SmallDataset(test::SeedAt(0x57081, 0));
  const std::string dir = FreshDir("store-roundtrip");
  ASSERT_TRUE(WriteDatasetToStore(dataset, dir).ok());

  auto store_or = CheckInStore::Open(dir);
  ASSERT_TRUE(store_or.ok()) << store_or.status();
  const CheckInStore& store = **store_or;
  ASSERT_EQ(store.num_users(), dataset.num_users());
  ASSERT_EQ(store.num_locations(), dataset.num_locations());
  ASSERT_EQ(store.num_tokens(), dataset.num_checkins());

  for (int32_t u = 0; u < dataset.num_users(); ++u) {
    const auto& checkins = dataset.UserCheckIns(u);
    const CheckInStore::UserSpan span = store.User(u);
    ASSERT_EQ(span.locations.size(), checkins.size()) << "user " << u;
    ASSERT_EQ(span.timestamps.size(), checkins.size()) << "user " << u;
    ASSERT_EQ(store.UserTokenCount(u),
              static_cast<int64_t>(checkins.size()));
    for (size_t i = 0; i < checkins.size(); ++i) {
      EXPECT_EQ(span.locations[i], checkins[i].location);
      EXPECT_EQ(span.timestamps[i], checkins[i].timestamp);
    }
  }
}

TEST(CheckInStoreTest, TinyShardTargetRotatesShards) {
  const CheckInDataset dataset = SmallDataset(test::SeedAt(0x57081, 1));
  const std::string dir = FreshDir("store-rotation");
  StoreWriterOptions options;
  options.target_shard_bytes = 256;  // force many shards
  ASSERT_TRUE(WriteDatasetToStore(dataset, dir, options).ok());

  int shard_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".plpds") ++shard_files;
  }
  EXPECT_GT(shard_files, 1);

  auto store_or = CheckInStore::Open(dir);
  ASSERT_TRUE(store_or.ok()) << store_or.status();
  EXPECT_EQ((*store_or)->num_tokens(), dataset.num_checkins());
  const CheckInStore::UserSpan last =
      (*store_or)->User(dataset.num_users() - 1);
  const auto& checkins = dataset.UserCheckIns(dataset.num_users() - 1);
  ASSERT_EQ(last.locations.size(), checkins.size());
  EXPECT_EQ(last.locations.front(), checkins.front().location);
}

TEST(LocationVocabTest, AssignsDenseIdsInFirstAppearanceOrder) {
  LocationVocab vocab(/*num_shards=*/4);
  EXPECT_EQ(vocab.Assign(900100), 0);
  EXPECT_EQ(vocab.Assign(42), 1);
  EXPECT_EQ(vocab.Assign(900100), 0);  // stable on re-lookup
  EXPECT_EQ(vocab.Assign(7), 2);
  EXPECT_EQ(vocab.size(), 3);
  EXPECT_EQ(vocab.Lookup(42), 1);
  EXPECT_EQ(vocab.Lookup(999), -1);
}

TEST(CheckInStoreTest, RawIdVocabularySurvivesReopen) {
  const std::string dir = FreshDir("store-vocab");
  auto writer_or = CheckInStoreWriter::Create(dir);
  ASSERT_TRUE(writer_or.ok());
  // Raw ids far outside dense range; dense assignment is by first
  // appearance: 500000 -> 0, 17 -> 1, 230 -> 2.
  const std::vector<int64_t> user0 = {500000, 17, 500000};
  const std::vector<int64_t> user1 = {230, 17};
  const std::vector<int64_t> ts0 = {10, 20, 30};
  const std::vector<int64_t> ts1 = {5, 6};
  ASSERT_TRUE((*writer_or)->AppendUser(user0, ts0).ok());
  ASSERT_TRUE((*writer_or)->AppendUser(user1, ts1).ok());
  ASSERT_TRUE((*writer_or)->Finish().ok());

  auto store_or = CheckInStore::Open(dir);
  ASSERT_TRUE(store_or.ok()) << store_or.status();
  const CheckInStore& store = **store_or;
  EXPECT_EQ(store.num_locations(), 3);
  EXPECT_EQ(store.DenseLocation(500000), 0);
  EXPECT_EQ(store.DenseLocation(17), 1);
  EXPECT_EQ(store.DenseLocation(230), 2);
  EXPECT_EQ(store.DenseLocation(31337), -1);
  const CheckInStore::UserSpan span = store.User(0);
  ASSERT_EQ(span.locations.size(), 3u);
  EXPECT_EQ(span.locations[0], 0);
  EXPECT_EQ(span.locations[1], 1);
  EXPECT_EQ(span.locations[2], 0);
  // Frequencies persisted at write time: 500000 twice, 17 twice, 230 once.
  ASSERT_EQ(store.token_frequencies().size(), 3u);
  EXPECT_EQ(store.token_frequencies()[0], 2);
  EXPECT_EQ(store.token_frequencies()[1], 2);
  EXPECT_EQ(store.token_frequencies()[2], 1);
}

TEST(MmapCorpusTest, MatchesInRamCorpusExactly) {
  const CheckInDataset dataset = SmallDataset(test::SeedAt(0x57081, 2));
  auto ram_or = BuildCorpus(dataset);
  ASSERT_TRUE(ram_or.ok());
  const TrainingCorpus& ram = *ram_or;

  const std::string dir = FreshDir("store-equivalence");
  ASSERT_TRUE(WriteDatasetToStore(dataset, dir).ok());
  auto store_or = CheckInStore::Open(dir);
  ASSERT_TRUE(store_or.ok()) << store_or.status();
  const MmapCorpus mapped(*store_or);

  ASSERT_EQ(mapped.NumUsers(), ram.NumUsers());
  ASSERT_EQ(mapped.NumLocations(), ram.NumLocations());
  ASSERT_EQ(mapped.NumTokens(), ram.NumTokens());
  std::vector<std::span<const int32_t>> ram_sentences, mapped_sentences;
  for (int32_t u = 0; u < ram.NumUsers(); ++u) {
    ram_sentences.clear();
    mapped_sentences.clear();
    ram.AppendUserSentences(u, ram_sentences);
    mapped.AppendUserSentences(u, mapped_sentences);
    // kFullHistory: both views present one sentence per user, and the
    // token stream must match byte for byte.
    ASSERT_EQ(ram_sentences.size(), 1u);
    ASSERT_EQ(mapped_sentences.size(), 1u);
    ASSERT_EQ(mapped_sentences[0].size(), ram_sentences[0].size());
    for (size_t i = 0; i < ram_sentences[0].size(); ++i) {
      ASSERT_EQ(mapped_sentences[0][i], ram_sentences[0][i])
          << "user " << u << " token " << i;
    }
  }
  // The persisted frequency table equals a fresh scan of the RAM corpus.
  const std::vector<int64_t> scanned = CountTokenFrequencies(ram);
  const std::span<const int64_t> persisted = mapped.TokenFrequencies();
  ASSERT_EQ(persisted.size(), scanned.size());
  for (size_t l = 0; l < scanned.size(); ++l) {
    EXPECT_EQ(persisted[l], scanned[l]) << "location " << l;
  }
  // Streaming statistics agree on the shared fields.
  const DatasetStats ram_stats = ComputeStats(ram);
  const DatasetStats mapped_stats = ComputeStats(mapped);
  EXPECT_EQ(mapped_stats.num_checkins, ram_stats.num_checkins);
  EXPECT_EQ(mapped_stats.user_checkins_median, ram_stats.user_checkins_median);
  EXPECT_EQ(mapped_stats.location_gini, ram_stats.location_gini);
}

TEST(MmapCorpusTest, TrainingIsBitwiseIdenticalToInRamCorpus) {
  // The load-bearing property of the data plane: swapping the mmap view
  // in for the in-RAM corpus changes NOTHING about training — buckets
  // copy identical token bytes, so content-keyed bucket seeds, clipping,
  // noise, and the final model are all bit-identical.
  const CheckInDataset dataset = SmallDataset(test::SeedAt(0x57081, 3));
  auto ram_or = BuildCorpus(dataset);
  ASSERT_TRUE(ram_or.ok());
  const std::string dir = FreshDir("store-train-equivalence");
  ASSERT_TRUE(WriteDatasetToStore(dataset, dir).ok());
  auto store_or = CheckInStore::Open(dir);
  ASSERT_TRUE(store_or.ok()) << store_or.status();
  const MmapCorpus mapped(*store_or);

  core::PlpConfig config = test::FastTrainerConfig();
  const uint64_t seed = test::SeedAt(0x57081, 4);
  auto train = [&](const CorpusView& corpus) {
    Rng rng(seed);
    auto result = core::PlpTrainer(config).Train(corpus, rng);
    PLP_CHECK(result.ok());
    return *std::move(result);
  };
  const core::TrainResult a = train(*ram_or);
  const core::TrainResult b = train(mapped);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].signal_norm, b.history[i].signal_norm);
    EXPECT_EQ(a.history[i].epsilon_spent, b.history[i].epsilon_spent);
  }
  for (int t = 0; t < sgns::kNumTensors; ++t) {
    const auto xa = a.model.TensorData(static_cast<sgns::Tensor>(t));
    const auto xb = b.model.TensorData(static_cast<sgns::Tensor>(t));
    ASSERT_EQ(xa.size(), xb.size());
    int mismatches = 0;
    for (size_t i = 0; i < xa.size(); ++i) mismatches += xa[i] != xb[i];
    EXPECT_EQ(mismatches, 0) << "tensor " << t << " differs";
  }
}

TEST(MmapCorpusTest, SubRangeViewExposesUserWindow) {
  const CheckInDataset dataset = SmallDataset(test::SeedAt(0x57081, 5));
  const std::string dir = FreshDir("store-subrange");
  ASSERT_TRUE(WriteDatasetToStore(dataset, dir).ok());
  auto store_or = CheckInStore::Open(dir);
  ASSERT_TRUE(store_or.ok());
  const int32_t n = (*store_or)->num_users();
  ASSERT_GE(n, 4);
  const MmapCorpus window(*store_or, 1, 3);
  EXPECT_EQ(window.NumUsers(), 2);
  EXPECT_EQ(window.UserTokenCount(0), (*store_or)->UserTokenCount(1));
  EXPECT_EQ(window.NumTokens(),
            (*store_or)->UserTokenCount(1) + (*store_or)->UserTokenCount(2));
}

TEST(CheckInStoreTest, StreamedSyntheticCorpusOpensAndCounts) {
  // plp_corpus_gen's path: stream a down-scaled synthetic city straight
  // to disk, then mmap it back and check the totals.
  SyntheticConfig config = SmallSyntheticConfig();
  config.num_users = 40;
  config.num_locations = 60;
  config.num_clusters = 4;
  const std::string dir = FreshDir("store-streamed");
  auto writer_or = CheckInStoreWriter::Create(dir);
  ASSERT_TRUE(writer_or.ok());
  Rng rng(test::SeedAt(0x57081, 6));
  ASSERT_TRUE(
      GenerateSyntheticCheckInsToStore(config, rng, **writer_or).ok());
  const int64_t tokens = (*writer_or)->tokens_appended();
  ASSERT_TRUE((*writer_or)->Finish().ok());

  auto store_or = CheckInStore::Open(dir);
  ASSERT_TRUE(store_or.ok()) << store_or.status();
  EXPECT_EQ((*store_or)->num_users(), 40);
  EXPECT_EQ((*store_or)->num_tokens(), tokens);
  EXPECT_GT((*store_or)->num_locations(), 0);
  EXPECT_LE((*store_or)->num_locations(), 60);
}

TEST(CheckInStoreTest, MissingDirectoryIsNotFound) {
  auto store_or = CheckInStore::Open(FreshDir("store-missing"));
  ASSERT_FALSE(store_or.ok());
  EXPECT_EQ(store_or.status().code(), StatusCode::kNotFound);
}

TEST(CheckInStoreTest, OpenCollectsEveryViolationInOneMessage) {
  const CheckInDataset dataset = SmallDataset(test::SeedAt(0x57081, 7));
  const std::string dir = FreshDir("store-collect-all");
  ASSERT_TRUE(WriteDatasetToStore(dataset, dir).ok());

  // Corrupt two independent files: flip a byte mid-index and truncate the
  // first shard. Open must report BOTH in a single status.
  {
    const fs::path index = fs::path(dir) / "index.plpdi";
    std::string bytes;
    {
      std::ifstream in(index, std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(in), {});
    }
    ASSERT_GT(bytes.size(), 40u);
    bytes[bytes.size() / 2] ^= 0x5A;
    std::ofstream out(index, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  {
    const fs::path shard = fs::path(dir) / "shard-00000.plpds";
    const auto size = fs::file_size(shard);
    fs::resize_file(shard, size - 8);
  }

  auto store_or = CheckInStore::Open(dir);
  ASSERT_FALSE(store_or.ok());
  EXPECT_EQ(store_or.status().code(), StatusCode::kInvalidArgument);
  const std::string message(store_or.status().message());
  EXPECT_NE(message.find("index.plpdi"), std::string::npos) << message;
  EXPECT_NE(message.find("shard-00000.plpds"), std::string::npos) << message;
}

}  // namespace
}  // namespace plp::data::store
