#include "data/statistics.h"

#include <gtest/gtest.h>
#include "common/rng.h"
#include "data/synthetic_generator.h"

namespace plp::data {
namespace {

CheckIn Make(int32_t user, int32_t location, int64_t t) {
  CheckIn c;
  c.user = user;
  c.location = location;
  c.timestamp = t;
  return c;
}

TEST(StatisticsTest, EmptyDataset) {
  const DatasetStats stats = ComputeStats(CheckInDataset());
  EXPECT_EQ(stats.num_users, 0);
  EXPECT_EQ(stats.num_checkins, 0);
}

TEST(StatisticsTest, HandComputedCase) {
  // User 0: 3 check-ins, user 1: 1 check-in; locations 0 (3x), 1 (1x).
  auto ds = CheckInDataset::FromRecords({
      Make(0, 0, 1), Make(0, 0, 2), Make(0, 1, 3), Make(1, 0, 4),
  });
  ASSERT_TRUE(ds.ok());
  const DatasetStats stats = ComputeStats(*ds);
  EXPECT_EQ(stats.num_users, 2);
  EXPECT_EQ(stats.num_locations, 2);
  EXPECT_EQ(stats.num_checkins, 4);
  EXPECT_EQ(stats.user_checkins_mean, 2.0);
  EXPECT_EQ(stats.user_checkins_median, 3);  // sorted {1, 3}, index 1
  EXPECT_EQ(stats.user_checkins_max, 3);
  // Visit counts {1, 3}: Gini = 2(1·1 + 2·3)/(2·4) − 3/2 = 14/8 − 1.5.
  EXPECT_NEAR(stats.location_gini, 0.25, 1e-12);
  // Top 1% of 2 POIs = 1 POI (the 3-visit one): share 0.75.
  EXPECT_NEAR(stats.top1pct_share, 0.75, 1e-12);
}

TEST(StatisticsTest, UniformVisitsGiveZeroGini) {
  std::vector<CheckIn> records;
  for (int l = 0; l < 10; ++l) records.push_back(Make(0, l, l));
  auto ds = CheckInDataset::FromRecords(records);
  ASSERT_TRUE(ds.ok());
  EXPECT_NEAR(ComputeStats(*ds).location_gini, 0.0, 1e-12);
}

TEST(StatisticsTest, SyntheticCityIsSkewedAndSparse) {
  // The generator must produce the skew/sparsity properties the paper's
  // method is designed around.
  Rng rng(21);
  SyntheticConfig config = SmallSyntheticConfig();
  config.num_users = 400;
  config.num_locations = 300;
  auto ds = GenerateSyntheticCheckIns(config, rng);
  ASSERT_TRUE(ds.ok());
  const DatasetStats stats = ComputeStats(*ds);
  EXPECT_GT(stats.location_gini, 0.3);        // Zipf skew
  EXPECT_LT(stats.density, 0.25);             // sparse user × POI matrix
  EXPECT_GT(stats.user_checkins_max,          // long-tailed activity
            4 * stats.user_checkins_median);
  EXPECT_GT(stats.top1pct_share, 0.02);
}

TEST(StatisticsTest, ToStringMentionsKeyNumbers) {
  auto ds = CheckInDataset::FromRecords({Make(0, 0, 1), Make(0, 1, 2)});
  ASSERT_TRUE(ds.ok());
  const std::string s = ComputeStats(*ds).ToString();
  EXPECT_NE(s.find("1 users"), std::string::npos);
  EXPECT_NE(s.find("2 locations"), std::string::npos);
  EXPECT_NE(s.find("2 check-ins"), std::string::npos);
}

}  // namespace
}  // namespace plp::data
