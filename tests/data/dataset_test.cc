#include "data/dataset.h"

#include <cstdio>
#include <set>

#include <gtest/gtest.h>

namespace plp::data {
namespace {

CheckIn Make(int32_t user, int32_t location, int64_t t) {
  CheckIn c;
  c.user = user;
  c.location = location;
  c.timestamp = t;
  return c;
}

TEST(DatasetTest, FromRecordsDensifiesIds) {
  // Sparse ids 100, 200 for users and 7, 9 for locations.
  auto ds = CheckInDataset::FromRecords({
      Make(100, 7, 10),
      Make(200, 9, 20),
      Make(100, 9, 30),
  });
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_users(), 2);
  EXPECT_EQ(ds->num_locations(), 2);
  EXPECT_EQ(ds->num_checkins(), 3);
  EXPECT_EQ(ds->UserCheckIns(0).size(), 2u);  // user 100 → 0
  EXPECT_EQ(ds->UserCheckIns(1).size(), 1u);
}

TEST(DatasetTest, RejectsNegativeIds) {
  EXPECT_FALSE(CheckInDataset::FromRecords({Make(-1, 0, 0)}).ok());
  EXPECT_FALSE(CheckInDataset::FromRecords({Make(0, -1, 0)}).ok());
}

TEST(DatasetTest, CheckInsSortedByTime) {
  auto ds = CheckInDataset::FromRecords({
      Make(0, 0, 30),
      Make(0, 1, 10),
      Make(0, 2, 20),
  });
  ASSERT_TRUE(ds.ok());
  const auto& u = ds->UserCheckIns(0);
  EXPECT_EQ(u[0].timestamp, 10);
  EXPECT_EQ(u[1].timestamp, 20);
  EXPECT_EQ(u[2].timestamp, 30);
}

TEST(DatasetTest, EmptyDataset) {
  auto ds = CheckInDataset::FromRecords({});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_users(), 0);
  EXPECT_EQ(ds->Density(), 0.0);
}

TEST(DatasetTest, DensityCountsDistinctCells) {
  // 2 users x 2 locations; user 0 visits both (twice each), user 1 one.
  auto ds = CheckInDataset::FromRecords({
      Make(0, 0, 1), Make(0, 0, 2), Make(0, 1, 3), Make(0, 1, 4),
      Make(1, 0, 5),
  });
  ASSERT_TRUE(ds.ok());
  EXPECT_NEAR(ds->Density(), 3.0 / 4.0, 1e-12);
}

TEST(DatasetTest, FilterDropsLightUsers) {
  auto ds = CheckInDataset::FromRecords({
      Make(0, 0, 1), Make(0, 1, 2), Make(0, 0, 3),
      Make(1, 0, 1),  // only one check-in
      Make(2, 0, 1), Make(2, 1, 2), Make(2, 0, 3),
  });
  ASSERT_TRUE(ds.ok());
  const CheckInDataset filtered = ds->Filter(/*min_checkins_per_user=*/2,
                                             /*min_users_per_location=*/1);
  EXPECT_EQ(filtered.num_users(), 2);
  EXPECT_EQ(filtered.num_checkins(), 6);
}

TEST(DatasetTest, FilterDropsRareLocations) {
  // Location 1 visited only by user 0.
  auto ds = CheckInDataset::FromRecords({
      Make(0, 0, 1), Make(0, 1, 2),
      Make(1, 0, 1), Make(1, 2, 2),
      Make(2, 0, 1), Make(2, 2, 2),
  });
  ASSERT_TRUE(ds.ok());
  const CheckInDataset filtered = ds->Filter(1, 2);
  EXPECT_EQ(filtered.num_locations(), 2);  // loc 1 gone
  EXPECT_EQ(filtered.num_checkins(), 5);
}

TEST(DatasetTest, FilterDropsUsersLeftEmpty) {
  // User 1 only visits the rare location.
  auto ds = CheckInDataset::FromRecords({
      Make(0, 0, 1), Make(0, 0, 2),
      Make(1, 1, 1),
      Make(2, 0, 1),
  });
  ASSERT_TRUE(ds.ok());
  const CheckInDataset filtered = ds->Filter(1, 2);
  EXPECT_EQ(filtered.num_users(), 2);
  EXPECT_EQ(filtered.num_locations(), 1);
}

TEST(DatasetTest, FilterMatchesPaperSettingShape) {
  // min 10 check-ins per user, min 2 users per location: all survive here.
  std::vector<CheckIn> records;
  for (int u = 0; u < 3; ++u) {
    for (int i = 0; i < 12; ++i) records.push_back(Make(u, i % 4, i));
  }
  auto ds = CheckInDataset::FromRecords(records);
  ASSERT_TRUE(ds.ok());
  const CheckInDataset filtered = ds->Filter(10, 2);
  EXPECT_EQ(filtered.num_users(), 3);
  EXPECT_EQ(filtered.num_locations(), 4);
}

TEST(DatasetTest, SplitHoldoutIsDisjointAndComplete) {
  std::vector<CheckIn> records;
  for (int u = 0; u < 20; ++u) {
    records.push_back(Make(u, u % 5, u));
    records.push_back(Make(u, (u + 1) % 5, u + 100));
  }
  auto ds = CheckInDataset::FromRecords(records);
  ASSERT_TRUE(ds.ok());
  Rng rng(3);
  auto split = ds->SplitHoldout(6, rng);
  ASSERT_TRUE(split.ok());
  const auto& [train, test] = *split;
  EXPECT_EQ(train.num_users(), 14);
  EXPECT_EQ(test.num_users(), 6);
  EXPECT_EQ(train.num_checkins() + test.num_checkins(), ds->num_checkins());
  // Shared location vocabulary (ids not remapped).
  EXPECT_EQ(train.num_locations(), ds->num_locations());
  EXPECT_EQ(test.num_locations(), ds->num_locations());
}

TEST(DatasetTest, SplitHoldoutValidation) {
  auto ds = CheckInDataset::FromRecords({Make(0, 0, 1), Make(1, 0, 1)});
  ASSERT_TRUE(ds.ok());
  Rng rng(3);
  EXPECT_FALSE(ds->SplitHoldout(0, rng).ok());
  EXPECT_FALSE(ds->SplitHoldout(2, rng).ok());
  EXPECT_TRUE(ds->SplitHoldout(1, rng).ok());
}

TEST(DatasetTest, SessionizeSplitsOnDuration) {
  // Six-hour cap: check-ins at 0h, 2h, 4h, 7h → {0,2,4} then {7}.
  auto ds = CheckInDataset::FromRecords({
      Make(0, 10, 0 * 3600), Make(0, 11, 2 * 3600),
      Make(0, 12, 4 * 3600), Make(0, 13, 7 * 3600),
  });
  ASSERT_TRUE(ds.ok());
  const auto sessions = ds->Sessionize(0, 6 * 3600, 24 * 3600);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].size(), 3u);
  EXPECT_EQ(sessions[1].size(), 1u);
}

TEST(DatasetTest, SessionizeSplitsOnGap) {
  // A 5-hour gap with a 2-hour gap threshold cuts the session even though
  // the total duration is under six hours.
  auto ds = CheckInDataset::FromRecords({
      Make(0, 1, 0), Make(0, 2, 3600), Make(0, 3, 3600 * 5),
  });
  ASSERT_TRUE(ds.ok());
  const auto sessions = ds->Sessionize(0, 6 * 3600, 2 * 3600);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0], (std::vector<int32_t>{0, 1}));
  EXPECT_EQ(sessions[1], (std::vector<int32_t>{2}));
}

TEST(DatasetTest, SessionizePreservesAllTokens) {
  std::vector<CheckIn> records;
  for (int i = 0; i < 50; ++i) records.push_back(Make(0, i % 7, i * 4000));
  auto ds = CheckInDataset::FromRecords(records);
  ASSERT_TRUE(ds.ok());
  size_t total = 0;
  for (const auto& s : ds->Sessionize(0, 6 * 3600, 6 * 3600)) {
    total += s.size();
  }
  EXPECT_EQ(total, 50u);
}

TEST(DatasetTest, UserRecordCounts) {
  auto ds = CheckInDataset::FromRecords({
      Make(0, 0, 1), Make(0, 0, 2), Make(1, 0, 1),
  });
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->UserRecordCounts(), (std::vector<int64_t>{2, 1}));
}

TEST(DatasetTest, CsvRoundTrip) {
  std::vector<CheckIn> records;
  for (int i = 0; i < 10; ++i) {
    CheckIn c = Make(i % 3, i % 4, i * 100);
    c.latitude = 35.6 + 0.01 * i;
    c.longitude = 139.5 + 0.01 * i;
    records.push_back(c);
  }
  auto ds = CheckInDataset::FromRecords(records);
  ASSERT_TRUE(ds.ok());
  const std::string path = testing::TempDir() + "/plp_roundtrip.csv";
  ASSERT_TRUE(ds->SaveCsv(path).ok());
  auto loaded = CheckInDataset::LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_users(), ds->num_users());
  EXPECT_EQ(loaded->num_locations(), ds->num_locations());
  EXPECT_EQ(loaded->num_checkins(), ds->num_checkins());
  for (int32_t u = 0; u < ds->num_users(); ++u) {
    const auto& a = ds->UserCheckIns(u);
    const auto& b = loaded->UserCheckIns(u);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].location, b[i].location);
      EXPECT_EQ(a[i].timestamp, b[i].timestamp);
      EXPECT_NEAR(a[i].latitude, b[i].latitude, 1e-9);
    }
  }
  std::remove(path.c_str());
}

TEST(DatasetTest, LoadCsvMissingFile) {
  EXPECT_FALSE(CheckInDataset::LoadCsv("/nonexistent/file.csv").ok());
}

TEST(DatasetTest, LoadCsvMalformedLine) {
  const std::string path = testing::TempDir() + "/plp_bad.csv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("user,location,timestamp,latitude,longitude\n", f);
  fputs("not,a,valid,row,here\n", f);
  fclose(f);
  EXPECT_FALSE(CheckInDataset::LoadCsv(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace plp::data
