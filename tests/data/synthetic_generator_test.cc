#include "data/synthetic_generator.h"

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

namespace plp::data {
namespace {

SyntheticConfig TinyConfig() {
  SyntheticConfig c = SmallSyntheticConfig();
  c.num_users = 60;
  c.num_locations = 50;
  c.num_clusters = 4;
  c.log_checkins_mean = 3.0;
  c.log_checkins_stddev = 0.4;
  return c;
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  const SyntheticConfig config = TinyConfig();
  Rng rng_a(77), rng_b(77);
  auto a = GenerateSyntheticCheckIns(config, rng_a);
  auto b = GenerateSyntheticCheckIns(config, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_checkins(), b->num_checkins());
  for (int32_t u = 0; u < a->num_users(); ++u) {
    const auto& ca = a->UserCheckIns(u);
    const auto& cb = b->UserCheckIns(u);
    ASSERT_EQ(ca.size(), cb.size());
    for (size_t i = 0; i < ca.size(); ++i) {
      EXPECT_EQ(ca[i].location, cb[i].location);
      EXPECT_EQ(ca[i].timestamp, cb[i].timestamp);
    }
  }
}

TEST(GeneratorTest, ProducesRequestedUserCount) {
  Rng rng(1);
  auto ds = GenerateSyntheticCheckIns(TinyConfig(), rng);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_users(), 60);
  EXPECT_LE(ds->num_locations(), 50);
}

TEST(GeneratorTest, PerUserCountsWithinBounds) {
  SyntheticConfig config = TinyConfig();
  config.min_checkins_per_user = 12;
  config.max_checkins_per_user = 40;
  Rng rng(2);
  auto ds = GenerateSyntheticCheckIns(config, rng);
  ASSERT_TRUE(ds.ok());
  for (int64_t count : ds->UserRecordCounts()) {
    EXPECT_GE(count, 12);
    EXPECT_LE(count, 40);
  }
}

TEST(GeneratorTest, TimestampsAreIncreasingPerUser) {
  Rng rng(3);
  auto ds = GenerateSyntheticCheckIns(TinyConfig(), rng);
  ASSERT_TRUE(ds.ok());
  for (int32_t u = 0; u < ds->num_users(); ++u) {
    const auto& checkins = ds->UserCheckIns(u);
    for (size_t i = 1; i < checkins.size(); ++i) {
      EXPECT_GE(checkins[i].timestamp, checkins[i - 1].timestamp);
    }
  }
}

TEST(GeneratorTest, CoordinatesInsideBoundingBox) {
  Rng rng(4);
  const SyntheticConfig config = TinyConfig();
  auto ds = GenerateSyntheticCheckIns(config, rng);
  ASSERT_TRUE(ds.ok());
  for (int32_t u = 0; u < ds->num_users(); ++u) {
    for (const CheckIn& c : ds->UserCheckIns(u)) {
      EXPECT_GE(c.latitude, config.bbox.south);
      EXPECT_LE(c.latitude, config.bbox.north);
      EXPECT_GE(c.longitude, config.bbox.west);
      EXPECT_LE(c.longitude, config.bbox.east);
    }
  }
}

TEST(GeneratorTest, PopularityIsSkewed) {
  // Zipf popularity: the most visited POI should dominate the median one.
  SyntheticConfig config = TinyConfig();
  config.num_users = 200;
  Rng rng(5);
  auto ds = GenerateSyntheticCheckIns(config, rng);
  ASSERT_TRUE(ds.ok());
  std::vector<int64_t> visits(ds->num_locations(), 0);
  for (int32_t u = 0; u < ds->num_users(); ++u) {
    for (const CheckIn& c : ds->UserCheckIns(u)) ++visits[c.location];
  }
  std::sort(visits.begin(), visits.end());
  const int64_t top = visits.back();
  const int64_t median = visits[visits.size() / 2];
  EXPECT_GT(top, 4 * std::max<int64_t>(median, 1));
}

TEST(GeneratorTest, GroundTruthAlignsWithDenseLocationIds) {
  Rng rng(6);
  SyntheticGroundTruth gt;
  const SyntheticConfig config = TinyConfig();
  auto ds = GenerateSyntheticCheckIns(config, rng, &gt);
  ASSERT_TRUE(ds.ok());
  // Ground-truth arrays are compacted to the visited (dense) vocabulary.
  EXPECT_EQ(gt.location_cluster.size(),
            static_cast<size_t>(ds->num_locations()));
  EXPECT_EQ(gt.location_popularity.size(),
            static_cast<size_t>(ds->num_locations()));
  EXPECT_EQ(gt.user_home_cluster.size(),
            static_cast<size_t>(config.num_users));
  for (int32_t k : gt.location_cluster) {
    EXPECT_GE(k, 0);
    EXPECT_LT(k, config.num_clusters);
  }
  // Most clusters should own at least one visited POI.
  std::set<int32_t> clusters(gt.location_cluster.begin(),
                             gt.location_cluster.end());
  EXPECT_GE(clusters.size(), static_cast<size_t>(config.num_clusters) / 2);
}

TEST(GeneratorTest, HomeClusterDominatesVisits) {
  SyntheticConfig config = TinyConfig();
  config.home_cluster_affinity = 0.95;
  config.num_users = 100;
  Rng rng(7);
  SyntheticGroundTruth gt;
  auto ds = GenerateSyntheticCheckIns(config, rng, &gt);
  ASSERT_TRUE(ds.ok());
  int64_t home_visits = 0, total = 0;
  for (int32_t u = 0; u < ds->num_users(); ++u) {
    for (const CheckIn& c : ds->UserCheckIns(u)) {
      home_visits += gt.location_cluster[c.location] ==
                     gt.user_home_cluster[u];
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(home_visits) / total, 0.6);
}

TEST(GeneratorTest, UniqueWithinSessionHoldsAlmostAlways) {
  SyntheticConfig config = TinyConfig();
  config.unique_within_session = true;
  Rng rng(8);
  auto raw = GenerateSyntheticCheckIns(config, rng);
  ASSERT_TRUE(raw.ok());
  // The generator's sessions are short bursts; use a generous gap cut so
  // re-derived sessions align with generated ones.
  int64_t repeats = 0, total = 0;
  for (int32_t u = 0; u < raw->num_users(); ++u) {
    for (const auto& session : raw->Sessionize(u, 6 * 3600, 4 * 3600)) {
      std::unordered_set<int32_t> seen;
      for (int32_t l : session) {
        repeats += !seen.insert(l).second;
        ++total;
      }
    }
  }
  // Bounded retries may rarely admit a repeat, and re-derived sessions can
  // merge two generated sessions when the inter-session gap happens to be
  // short; both must stay tail events.
  EXPECT_LT(static_cast<double>(repeats) / total, 0.05);
}

TEST(GeneratorTest, RepeatsAllowedWhenDisabled) {
  SyntheticConfig config = TinyConfig();
  config.unique_within_session = false;
  config.return_probability = 0.95;
  Rng rng(9);
  auto raw = GenerateSyntheticCheckIns(config, rng);
  ASSERT_TRUE(raw.ok());
  int64_t repeats = 0;
  for (int32_t u = 0; u < raw->num_users(); ++u) {
    for (const auto& session : raw->Sessionize(u, 6 * 3600, 4 * 3600)) {
      std::unordered_set<int32_t> seen;
      for (int32_t l : session) repeats += !seen.insert(l).second;
    }
  }
  EXPECT_GT(repeats, 0);
}

struct BadConfigCase {
  const char* name;
  SyntheticConfig config;
};

class GeneratorValidationTest
    : public testing::TestWithParam<BadConfigCase> {};

TEST_P(GeneratorValidationTest, Rejected) {
  Rng rng(1);
  EXPECT_FALSE(GenerateSyntheticCheckIns(GetParam().config, rng).ok());
}

std::vector<BadConfigCase> BadConfigs() {
  std::vector<BadConfigCase> cases;
  auto add = [&cases](const char* name, auto mutate) {
    BadConfigCase c{name, TinyConfig()};
    mutate(c.config);
    cases.push_back(c);
  };
  add("zero_users", [](SyntheticConfig& c) { c.num_users = 0; });
  add("zero_locations", [](SyntheticConfig& c) { c.num_locations = 0; });
  add("zero_clusters", [](SyntheticConfig& c) { c.num_clusters = 0; });
  add("clusters_exceed_locations",
      [](SyntheticConfig& c) { c.num_clusters = c.num_locations + 1; });
  add("negative_zipf", [](SyntheticConfig& c) { c.zipf_exponent = -1; });
  add("bad_return_prob",
      [](SyntheticConfig& c) { c.return_probability = 1.5; });
  add("bad_affinity",
      [](SyntheticConfig& c) { c.home_cluster_affinity = -0.1; });
  add("zero_min_checkins",
      [](SyntheticConfig& c) { c.min_checkins_per_user = 0; });
  add("max_below_min", [](SyntheticConfig& c) {
    c.min_checkins_per_user = 20;
    c.max_checkins_per_user = 10;
  });
  add("zero_session_min",
      [](SyntheticConfig& c) { c.session_length_min = 0; });
  add("session_max_below_min", [](SyntheticConfig& c) {
    c.session_length_min = 5;
    c.session_length_max = 2;
  });
  add("bad_session_gap",
      [](SyntheticConfig& c) { c.mean_hours_between_sessions = 0; });
  add("bad_checkin_gap",
      [](SyntheticConfig& c) { c.mean_minutes_between_checkins = 0; });
  add("degenerate_bbox", [](SyntheticConfig& c) {
    c.bbox.north = c.bbox.south;
  });
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    BadConfigs, GeneratorValidationTest, testing::ValuesIn(BadConfigs()),
    [](const testing::TestParamInfo<BadConfigCase>& info) {
      return info.param.name;
    });

TEST(GeneratorTest, PaperConfigDimensions) {
  const SyntheticConfig c = PaperSyntheticConfig();
  EXPECT_EQ(c.num_users, 4602);
  EXPECT_EQ(c.num_locations, 5069);
}

}  // namespace
}  // namespace plp::data
