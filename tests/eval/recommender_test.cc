#include "eval/recommender.h"

#include <cmath>

#include <gtest/gtest.h>
#include "common/rng.h"

namespace plp::eval {
namespace {

/// Builds a 4-location, 2-dim model with hand-chosen embeddings:
/// l0 = (1, 0), l1 = (0.9, 0.1), l2 = (0, 1), l3 = (-1, 0).
sgns::SgnsModel HandModel() {
  Rng rng(1);
  sgns::SgnsConfig config;
  config.embedding_dim = 2;
  auto model = sgns::SgnsModel::Create(4, config, rng);
  EXPECT_TRUE(model.ok());
  const double rows[4][2] = {{1, 0}, {0.9, 0.1}, {0, 1}, {-1, 0}};
  for (int32_t l = 0; l < 4; ++l) {
    std::span<double> row = model->MutableInRow(l);
    row[0] = rows[l][0];
    row[1] = rows[l][1];
  }
  return std::move(model).value();
}

TEST(RecommenderTest, ScoresAreCosineSimilarities) {
  const Recommender rec(HandModel());
  const std::vector<int32_t> recent = {0};
  const std::vector<double> scores = rec.Scores(recent);
  ASSERT_EQ(scores.size(), 4u);
  EXPECT_NEAR(scores[0], 1.0, 1e-12);                        // itself
  EXPECT_NEAR(scores[1], 0.9 / std::hypot(0.9, 0.1), 1e-9);  // near
  EXPECT_NEAR(scores[2], 0.0, 1e-12);                        // orthogonal
  EXPECT_NEAR(scores[3], -1.0, 1e-12);                       // opposite
}

TEST(RecommenderTest, TopKOrdering) {
  const Recommender rec(HandModel());
  const std::vector<int32_t> recent = {0};
  const std::vector<int32_t> top = rec.TopK(recent, 4);
  EXPECT_EQ(top, (std::vector<int32_t>{0, 1, 2, 3}));
}

TEST(RecommenderTest, TopKRespectsK) {
  const Recommender rec(HandModel());
  const std::vector<int32_t> recent = {0};
  EXPECT_EQ(rec.TopK(recent, 2).size(), 2u);
}

TEST(RecommenderTest, ExcludeRemovesCandidates) {
  const Recommender rec(HandModel());
  const std::vector<int32_t> recent = {0};
  const std::vector<int32_t> exclude = {0, 1};
  const std::vector<int32_t> top = rec.TopK(recent, 2, exclude);
  EXPECT_EQ(top, (std::vector<int32_t>{2, 3}));
}

TEST(RecommenderTest, KLargerThanCandidatesIsCapped) {
  const Recommender rec(HandModel());
  const std::vector<int32_t> recent = {0};
  const std::vector<int32_t> exclude = {3};
  EXPECT_EQ(rec.TopK(recent, 10, exclude).size(), 3u);
}

TEST(RecommenderTest, ProfileAveragesHistory) {
  // History {0, 2}: profile ∝ (1,0)+(0,1) normalized = (0.707, 0.707);
  // location 1 (≈(0.99, 0.11) unit) scores ≈ cos(40°)... just verify it
  // beats location 3 and ranks between the two history items' neighbors.
  const Recommender rec(HandModel());
  const std::vector<int32_t> recent = {0, 2};
  const std::vector<double> scores = rec.Scores(recent);
  EXPECT_NEAR(scores[0], std::sqrt(0.5), 1e-9);
  EXPECT_NEAR(scores[2], std::sqrt(0.5), 1e-9);
  EXPECT_GT(scores[1], scores[3]);
}

TEST(RecommenderTest, EmbeddingScaleInvariance) {
  // Scaling a location's embedding must not change cosine rankings
  // (embeddings are normalized inside the recommender).
  sgns::SgnsModel model = HandModel();
  for (double& v : model.MutableInRow(1)) v *= 37.0;
  const Recommender rec(model);
  const std::vector<int32_t> recent = {0};
  const std::vector<int32_t> top = rec.TopK(recent, 4);
  EXPECT_EQ(top, (std::vector<int32_t>{0, 1, 2, 3}));
}

TEST(RecommenderTest, BuildsFromDeployedEmbeddings) {
  // The embeddings-only constructor (deployment artifact path) must score
  // identically to the model-built recommender.
  const sgns::SgnsModel model = HandModel();
  const Recommender from_model(model);
  const Recommender from_matrix(model.num_locations(), model.dim(),
                                model.NormalizedEmbeddings());
  EXPECT_EQ(from_matrix.num_locations(), from_model.num_locations());
  EXPECT_EQ(from_matrix.dim(), from_model.dim());
  const std::vector<int32_t> recent = {0, 2};
  const std::vector<double> a = from_model.Scores(recent);
  const std::vector<double> b = from_matrix.Scores(recent);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  EXPECT_EQ(from_matrix.TopK(recent, 4), from_model.TopK(recent, 4));
}

TEST(RecommenderTest, DeterministicTieBreakByIndex) {
  // Duplicate embeddings → equal scores → ascending-index order.
  Rng rng(2);
  sgns::SgnsConfig config;
  config.embedding_dim = 2;
  auto model = sgns::SgnsModel::Create(3, config, rng);
  ASSERT_TRUE(model.ok());
  for (int32_t l = 0; l < 3; ++l) {
    std::span<double> row = model->MutableInRow(l);
    row[0] = 1.0;
    row[1] = 0.0;
  }
  const Recommender rec(*model);
  const std::vector<int32_t> recent = {1};
  EXPECT_EQ(rec.TopK(recent, 3), (std::vector<int32_t>{0, 1, 2}));
}

}  // namespace
}  // namespace plp::eval
