#include "eval/hit_rate.h"

#include <gtest/gtest.h>
#include "common/rng.h"

namespace plp::eval {
namespace {

data::CheckIn Make(int32_t user, int32_t location, int64_t t) {
  data::CheckIn c;
  c.user = user;
  c.location = location;
  c.timestamp = t;
  return c;
}

/// 3 locations on a 2-dim circle so rankings are unambiguous.
sgns::SgnsModel DirectionalModel() {
  Rng rng(1);
  sgns::SgnsConfig config;
  config.embedding_dim = 2;
  auto model = sgns::SgnsModel::Create(3, config, rng);
  EXPECT_TRUE(model.ok());
  const double rows[3][2] = {{1, 0}, {0.8, 0.6}, {-1, 0}};
  for (int32_t l = 0; l < 3; ++l) {
    std::span<double> row = model->MutableInRow(l);
    row[0] = rows[l][0];
    row[1] = rows[l][1];
  }
  return std::move(model).value();
}

TEST(BuildExamplesTest, OneExamplePerMultiVisitSession) {
  // User 0: one 3-visit session and (after a long gap) one 1-visit
  // session; user 1: a 2-visit session.
  auto ds = data::CheckInDataset::FromRecords({
      Make(0, 0, 0), Make(0, 1, 600), Make(0, 2, 1200),
      Make(0, 0, 100 * 3600),
      Make(1, 2, 0), Make(1, 0, 900),
  });
  ASSERT_TRUE(ds.ok());
  const std::vector<EvalExample> examples = BuildLeaveOneOutExamples(*ds);
  ASSERT_EQ(examples.size(), 2u);
  EXPECT_EQ(examples[0].history, (std::vector<int32_t>{0, 1}));
  EXPECT_EQ(examples[0].label, 2);
  EXPECT_EQ(examples[1].history, (std::vector<int32_t>{2}));
  EXPECT_EQ(examples[1].label, 0);
}

TEST(BuildExamplesTest, SessionBoundaryRespected) {
  // Visits at 0h and 7h are different six-hour trajectories → no example.
  auto ds = data::CheckInDataset::FromRecords({
      Make(0, 0, 0), Make(0, 1, 7 * 3600),
  });
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(BuildLeaveOneOutExamples(*ds).empty());
}

TEST(EvaluateHitRateTest, PerfectAndImperfectPredictions) {
  const sgns::SgnsModel model = DirectionalModel();
  // History {0}: ranking is 0, 1, 2. Excluding nothing, label 1 has rank
  // 1 (second) → hit at k >= 2; label 2 has rank 2 → hit only at k >= 3.
  std::vector<EvalExample> examples;
  examples.push_back({{0}, 1});
  examples.push_back({{0}, 2});
  auto hr = EvaluateHitRate(model, examples, {1, 2, 3});
  ASSERT_TRUE(hr.ok());
  EXPECT_EQ(hr->num_examples, 2);
  EXPECT_NEAR(hr->at(1), 0.0, 1e-12);  // rank 0 is location 0 itself
  EXPECT_NEAR(hr->at(2), 0.5, 1e-12);
  EXPECT_NEAR(hr->at(3), 1.0, 1e-12);
}

TEST(EvaluateHitRateTest, HitRateMonotoneInK) {
  const sgns::SgnsModel model = DirectionalModel();
  std::vector<EvalExample> examples;
  examples.push_back({{0}, 1});
  examples.push_back({{1}, 0});
  examples.push_back({{2}, 1});
  auto hr = EvaluateHitRate(model, examples, {1, 2, 3});
  ASSERT_TRUE(hr.ok());
  EXPECT_LE(hr->at(1), hr->at(2));
  EXPECT_LE(hr->at(2), hr->at(3));
  EXPECT_EQ(hr->at(3), 1.0);  // k = L always hits
}

TEST(EvaluateHitRateTest, Validation) {
  const sgns::SgnsModel model = DirectionalModel();
  std::vector<EvalExample> examples;
  examples.push_back({{0}, 1});
  EXPECT_FALSE(EvaluateHitRate(model, {}, {5}).ok());
  EXPECT_FALSE(EvaluateHitRate(model, examples, {}).ok());
  EXPECT_FALSE(EvaluateHitRate(model, examples, {0}).ok());
  std::vector<EvalExample> bad_label;
  bad_label.push_back({{0}, 99});
  EXPECT_FALSE(EvaluateHitRate(model, bad_label, {1}).ok());
}

TEST(EvaluateHitRateTest, AtAbortsOnMissingK) {
  const sgns::SgnsModel model = DirectionalModel();
  std::vector<EvalExample> examples;
  examples.push_back({{0}, 1});
  auto hr = EvaluateHitRate(model, examples, {2});
  ASSERT_TRUE(hr.ok());
  EXPECT_DEATH(hr->at(5), "");
}

}  // namespace
}  // namespace plp::eval
