#include "eval/ranking_metrics.h"

#include <cmath>

#include <gtest/gtest.h>
#include "common/rng.h"

namespace plp::eval {
namespace {

/// 4 locations on known directions: from location 0 the ranking is
/// 0, 1, 2, 3 (see recommender_test.cc).
sgns::SgnsModel HandModel() {
  Rng rng(1);
  sgns::SgnsConfig config;
  config.embedding_dim = 2;
  auto model = sgns::SgnsModel::Create(4, config, rng);
  EXPECT_TRUE(model.ok());
  const double rows[4][2] = {{1, 0}, {0.9, 0.1}, {0, 1}, {-1, 0}};
  for (int32_t l = 0; l < 4; ++l) {
    std::span<double> row = model->MutableInRow(l);
    row[0] = rows[l][0];
    row[1] = rows[l][1];
  }
  return std::move(model).value();
}

TEST(RankingMetricsTest, ExactValuesOnHandModel) {
  const sgns::SgnsModel model = HandModel();
  // Ranks of the labels (history {0} → ranking 0,1,2,3):
  //   label 1 → rank 1, label 3 → rank 3.
  std::vector<EvalExample> examples;
  examples.push_back({{0}, 1});
  examples.push_back({{0}, 3});
  auto metrics = EvaluateRankingMetrics(model, examples, /*k=*/2,
                                        /*rank_cap=*/4);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->num_examples, 2);
  // MRR = (1/2 + 1/4) / 2.
  EXPECT_NEAR(metrics->mean_reciprocal_rank, 0.375, 1e-12);
  // NDCG@2: label 1 contributes 1/log2(3), label 3 is outside top-2.
  EXPECT_NEAR(metrics->ndcg_at_k, (1.0 / std::log2(3.0)) / 2.0, 1e-12);
}

TEST(RankingMetricsTest, PerfectPredictionGivesOnes) {
  const sgns::SgnsModel model = HandModel();
  std::vector<EvalExample> examples;
  examples.push_back({{1}, 1});  // label is its own nearest neighbor
  auto metrics = EvaluateRankingMetrics(model, examples, 1, 4);
  ASSERT_TRUE(metrics.ok());
  EXPECT_NEAR(metrics->mean_reciprocal_rank, 1.0, 1e-12);
  EXPECT_NEAR(metrics->ndcg_at_k, 1.0, 1e-12);
}

TEST(RankingMetricsTest, RankCapZeroesTail) {
  const sgns::SgnsModel model = HandModel();
  std::vector<EvalExample> examples;
  examples.push_back({{0}, 3});  // rank 3, outside cap 2
  auto metrics = EvaluateRankingMetrics(model, examples, 2, 2);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->mean_reciprocal_rank, 0.0);
  EXPECT_EQ(metrics->ndcg_at_k, 0.0);
}

TEST(RankingMetricsTest, NdcgBoundedByHitRateOrdering) {
  // NDCG@k <= HR@k <= MRR-implied bounds: specifically each example's
  // NDCG contribution is <= its HR@k contribution.
  const sgns::SgnsModel model = HandModel();
  std::vector<EvalExample> examples;
  examples.push_back({{0}, 1});
  examples.push_back({{0}, 2});
  examples.push_back({{2}, 3});
  auto metrics = EvaluateRankingMetrics(model, examples, 3, 4);
  auto hr = EvaluateHitRate(model, examples, {3});
  ASSERT_TRUE(metrics.ok());
  ASSERT_TRUE(hr.ok());
  EXPECT_LE(metrics->ndcg_at_k, hr->at(3) + 1e-12);
}

TEST(RankingMetricsTest, Validation) {
  const sgns::SgnsModel model = HandModel();
  std::vector<EvalExample> examples;
  examples.push_back({{0}, 1});
  EXPECT_FALSE(EvaluateRankingMetrics(model, {}, 2, 4).ok());
  EXPECT_FALSE(EvaluateRankingMetrics(model, examples, 0, 4).ok());
  EXPECT_FALSE(EvaluateRankingMetrics(model, examples, 4, 2).ok());
  std::vector<EvalExample> bad;
  bad.push_back({{0}, 42});
  EXPECT_FALSE(EvaluateRankingMetrics(model, bad, 2, 4).ok());
}

}  // namespace
}  // namespace plp::eval
