#include "privacy/mog_accountant.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serialize.h"
#include "core/plp_trainer.h"
#include "data/fixtures.h"
#include "privacy/ledger.h"
#include "privacy/pld_accountant.h"

namespace plp::privacy {
namespace {

constexpr double kDelta = 1e-5;

MogRound PoissonRound(double q, double sigma, int32_t omega, int64_t steps) {
  MogRound round;
  round.sampling = MogSampling::kPoisson;
  round.sampling_ratio = q;
  round.noise_multiplier = sigma;
  round.split_factor = omega;
  round.steps = steps;
  return round;
}

MogRound FixedBatchRound(int64_t batch, int64_t population, double sigma,
                         int32_t omega, int64_t steps) {
  MogRound round;
  round.sampling = MogSampling::kFixedBatch;
  round.sampling_ratio =
      static_cast<double>(batch) / static_cast<double>(population);
  round.batch_size = batch;
  round.population = population;
  round.noise_multiplier = sigma;
  round.split_factor = omega;
  round.steps = steps;
  return round;
}

TEST(MogAccountantTest, ZeroBeforeAnyRounds) {
  MogAccountant mog(kDelta);
  EXPECT_EQ(mog.CumulativeEpsilon(), 0.0);
  EXPECT_EQ(mog.total_steps(), 0);
  EXPECT_LE(mog.DeltaAtEpsilon(0.0), kDelta);
}

TEST(MogAccountantTest, RejectsInvalidRounds) {
  MogAccountant mog(kDelta);
  EXPECT_FALSE(mog.AddRounds(PoissonRound(0.0, 1.0, 1, 1)).ok());
  EXPECT_FALSE(mog.AddRounds(PoissonRound(1.1, 1.0, 1, 1)).ok());
  EXPECT_FALSE(mog.AddRounds(PoissonRound(0.5, 0.0, 1, 1)).ok());
  EXPECT_FALSE(mog.AddRounds(PoissonRound(0.5, 1.0, 0, 1)).ok());
  EXPECT_FALSE(mog.AddRounds(PoissonRound(0.5, 1.0, 65, 1)).ok());
  EXPECT_FALSE(mog.AddRounds(PoissonRound(0.5, 1.0, 1, 0)).ok());
  // Fixed batch requires 1 <= B <= N.
  EXPECT_FALSE(mog.AddRounds(FixedBatchRound(0, 10, 1.0, 1, 1)).ok());
  EXPECT_FALSE(mog.AddRounds(FixedBatchRound(11, 10, 1.0, 1, 1)).ok());
  EXPECT_EQ(mog.total_steps(), 0);
}

TEST(MogAccountantTest, EpsilonIncreasesWithSteps) {
  for (const MogRound& round :
       {PoissonRound(0.1, 1.5, 2, 25), FixedBatchRound(5, 50, 1.5, 2, 25)}) {
    MogAccountant mog(kDelta);
    double previous = 0.0;
    for (int run = 0; run < 6; ++run) {
      ASSERT_TRUE(mog.AddRounds(round).ok());
      const double eps = mog.CumulativeEpsilon();
      EXPECT_GT(eps, previous) << "after " << (run + 1) * 25 << " steps";
      EXPECT_TRUE(std::isfinite(eps));
      previous = eps;
    }
  }
}

TEST(MogAccountantTest, EpsilonDecreasesInSigma) {
  double previous = std::numeric_limits<double>::infinity();
  for (double sigma : {1.0, 1.5, 2.0, 3.0}) {
    MogAccountant mog(kDelta);
    ASSERT_TRUE(mog.AddRounds(PoissonRound(0.1, sigma, 2, 50)).ok());
    const double eps = mog.CumulativeEpsilon();
    EXPECT_LT(eps, previous) << "sigma=" << sigma;
    previous = eps;
  }
}

/// The pipeline samples WHOLE users and the grouper places all ω parts of
/// every sampled user into the round, so participation is all-or-nothing:
/// the dominating pair in ω·C-normalized units is (1−q)N(0,σ²) + qN(1,σ²)
/// for every ω, and — σ being the multiplier relative to the joint
/// sensitivity ω·C — ε must be bit-identical across ω. (A law with ε
/// shrinking in ω, e.g. element-wise Binomial(ω, q) weights, would mean
/// the accountant certifies more steps than the released all-or-nothing
/// mechanism supports.)
TEST(MogAccountantTest, EpsilonInvariantInOmega) {
  MogAccountant reference(kDelta);
  ASSERT_TRUE(reference.AddRounds(PoissonRound(0.25, 1.2, 1, 40)).ok());
  const double reference_eps = reference.CumulativeEpsilon();
  EXPECT_GT(reference_eps, 0.0);
  for (int32_t omega : {2, 4, 8}) {
    MogAccountant mog(kDelta);
    ASSERT_TRUE(mog.AddRounds(PoissonRound(0.25, 1.2, omega, 40)).ok());
    EXPECT_EQ(mog.CumulativeEpsilon(), reference_eps) << "omega=" << omega;
  }
}

/// q = 1, ω = 1 is a plain (unsubsampled) Gaussian, whose δ(ε) has the
/// closed form Φ(1/(2σ) − εσ) − e^ε·Φ(−1/(2σ) − εσ) [Balle & Wang 2018].
/// The pessimistic grid may overshoot slightly, never undercut.
TEST(MogAccountantTest, MatchesAnalyticGaussianAtQOne) {
  const double sigma = 2.0;
  const auto analytic_delta = [&](double eps) {
    const auto phi = [](double x) {
      return 0.5 * std::erfc(-x / std::sqrt(2.0));
    };
    return phi(1.0 / (2.0 * sigma) - eps * sigma) -
           std::exp(eps) * phi(-1.0 / (2.0 * sigma) - eps * sigma);
  };
  double lo = 0.0, hi = 16.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    (analytic_delta(mid) > kDelta ? lo : hi) = mid;
  }
  const double analytic_eps = hi;

  MogAccountant mog(kDelta);
  ASSERT_TRUE(mog.AddRounds(PoissonRound(1.0, sigma, 1, 1)).ok());
  const double mog_eps = mog.CumulativeEpsilon();
  EXPECT_GE(mog_eps, analytic_eps - 1e-6);
  EXPECT_LE(mog_eps, analytic_eps + 0.02);
}

/// Drawing all N of N users without replacement is also a sure thing:
/// fixed batch at B = N must agree with Poisson at q = 1 on the grid.
TEST(MogAccountantTest, FullBatchEqualsQOnePoisson) {
  MogAccountant poisson(kDelta);
  ASSERT_TRUE(poisson.AddRounds(PoissonRound(1.0, 1.5, 2, 10)).ok());
  MogAccountant fixed(kDelta);
  ASSERT_TRUE(fixed.AddRounds(FixedBatchRound(20, 20, 1.5, 2, 10)).ok());
  EXPECT_EQ(fixed.CumulativeEpsilon(), poisson.CumulativeEpsilon());
}

/// Under Poisson the all-or-nothing participation law IS the pld_fft
/// accountant's (1−q)N(0,σ²) + qN(1,σ²) dominating pair at every ω, and
/// the two accountants build it with the same expressions on the same
/// grid — the agreement is bit-exact, not approximate.
TEST(MogAccountantTest, PoissonMatchesPldFftAtEveryOmega) {
  const double q = 0.06, sigma = 2.5;
  const int64_t steps = 150;
  PldAccountant pld(kDelta);
  ASSERT_TRUE(pld.AddSteps(q, sigma, steps).ok());
  for (int32_t omega : {1, 2, 4}) {
    MogAccountant mog(kDelta);
    ASSERT_TRUE(mog.AddRounds(PoissonRound(q, sigma, omega, steps)).ok());
    EXPECT_EQ(mog.CumulativeEpsilon(), pld.CumulativeEpsilon())
        << "omega=" << omega;
  }
}

/// The fixed-batch marginal collapses to p = B/N, so a fixed batch and a
/// Poisson round at q = B/N compose identically.
TEST(MogAccountantTest, FixedBatchMatchesPoissonAtEqualRatio) {
  MogAccountant poisson(kDelta);
  ASSERT_TRUE(poisson.AddRounds(PoissonRound(0.06, 2.5, 2, 100)).ok());
  MogAccountant fixed(kDelta);
  ASSERT_TRUE(fixed.AddRounds(FixedBatchRound(6, 100, 2.5, 2, 100)).ok());
  EXPECT_EQ(fixed.CumulativeEpsilon(), poisson.CumulativeEpsilon());
}

/// The tentpole inequality, pinned for the ablation grid: at every
/// (scheme, ω) cell the MoG ε — the exact dominating-pair PLD of the
/// all-or-nothing participation law — is strictly below the classic-RDP
/// ε of the ω·C-sensitivity argument (both flat in ω, since σ is already
/// the joint multiplier).
TEST(MogAccountantTest, GridNeverLooserThanClassicRdp) {
  const double q = 0.06, sigma = 2.5;
  const int64_t steps = 200;
  PrivacyLedger ledger(kDelta);
  for (int64_t i = 0; i < steps; ++i) {
    ASSERT_TRUE(ledger.TrackStep(q, sigma).ok());
  }
  const double rdp_eps = ledger.CumulativeEpsilon(RdpConversion::kClassic);
  ASSERT_GT(rdp_eps, 0.0);

  constexpr int64_t kPopulation = 200;
  for (const MogSampling scheme :
       {MogSampling::kPoisson, MogSampling::kFixedBatch}) {
    for (const int32_t omega : {1, 2, 4}) {
      MogAccountant mog(kDelta);
      const MogRound round =
          scheme == MogSampling::kPoisson
              ? PoissonRound(q, sigma, omega, steps)
              : FixedBatchRound(static_cast<int64_t>(q * kPopulation),
                                kPopulation, sigma, omega, steps);
      ASSERT_TRUE(mog.AddRounds(round).ok());
      const double mog_eps = mog.CumulativeEpsilon();
      EXPECT_GT(mog_eps, 0.0);
      EXPECT_LT(mog_eps, rdp_eps)
          << "scheme=" << static_cast<int>(scheme) << " omega=" << omega;
    }
  }
}

TEST(MogAccountantTest, CoalescesIdenticalRuns) {
  MogAccountant mog(kDelta);
  ASSERT_TRUE(mog.AddRounds(PoissonRound(0.1, 1.5, 2, 10)).ok());
  ASSERT_TRUE(mog.AddRounds(PoissonRound(0.1, 1.5, 2, 5)).ok());
  ASSERT_TRUE(mog.AddRounds(FixedBatchRound(5, 50, 1.5, 2, 5)).ok());
  ASSERT_EQ(mog.entries().size(), 2u);
  EXPECT_EQ(mog.entries()[0].steps, 15);
  EXPECT_EQ(mog.total_steps(), 20);
}

TEST(MogAccountantTest, SaveRestoreRoundTripsBitIdentically) {
  MogAccountant mog(kDelta);
  ASSERT_TRUE(mog.AddRounds(PoissonRound(0.06, 2.5, 2, 120)).ok());
  ASSERT_TRUE(mog.AddRounds(FixedBatchRound(12, 200, 1.8, 4, 40)).ok());
  ByteWriter writer;
  mog.SaveState(writer);
  const std::string blob = writer.Take();

  ByteReader reader(blob);
  auto restored = MogAccountant::Restore(reader);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(restored->delta(), mog.delta());
  EXPECT_EQ(restored->total_steps(), mog.total_steps());
  // Bit-identity, not approximation: the discretization is deterministic.
  EXPECT_EQ(restored->CumulativeEpsilon(), mog.CumulativeEpsilon());

  ByteWriter writer2;
  restored->SaveState(writer2);
  EXPECT_EQ(writer2.Take(), blob);
}

TEST(MogAccountantTest, RejectsForeignAndTruncatedBlobs) {
  {
    const std::string blob("nonsense-bytes");
    ByteReader reader(blob);
    EXPECT_FALSE(MogAccountant::Restore(reader).ok());
  }
  {
    // A pld_fft blob must not parse as a MoG blob, nor vice versa.
    PldAccountant pld(kDelta);
    ASSERT_TRUE(pld.AddSteps(0.1, 1.5, 3).ok());
    ByteWriter writer;
    pld.SaveState(writer);
    const std::string blob = writer.Take();
    ByteReader reader(blob);
    EXPECT_FALSE(MogAccountant::Restore(reader).ok());
  }
  {
    MogAccountant mog(kDelta);
    ASSERT_TRUE(mog.AddRounds(PoissonRound(0.1, 1.5, 2, 3)).ok());
    ByteWriter writer;
    mog.SaveState(writer);
    std::string mog_blob = writer.Take();
    {
      ByteReader reader(mog_blob);
      EXPECT_FALSE(PldAccountant::Restore(reader).ok());
    }
    mog_blob.resize(mog_blob.size() / 2);  // truncate mid-entry
    ByteReader reader(mog_blob);
    EXPECT_FALSE(MogAccountant::Restore(reader).ok());
  }
}

/// End-to-end through the trainer facade: selecting "mog" must train, stay
/// within budget, and — being at least as tight as the RDP moments
/// ledger — fit no fewer steps into the same ε budget.
TEST(MogAccountantTest, EngineFitsAtLeastAsManyStepsAsRdp) {
  data::FixtureCorpusOptions options;
  options.num_users = 48;
  options.num_locations = 24;
  options.neighborhood = 4;
  const data::TrainingCorpus corpus = data::MakeFixtureCorpus(777, options);

  core::PlpConfig config;
  config.sgns.embedding_dim = 8;
  config.sgns.negatives = 4;
  config.sampling_probability = 0.25;
  config.grouping_factor = 2;
  config.noise_scale = 1.2;
  config.clip_norm = 0.5;
  config.batch_size = 8;
  config.epsilon_budget = 4.0;
  config.max_steps = 64;

  core::PlpConfig rdp = config;
  rdp.accountant = "rdp";
  Rng rng_rdp(99);
  auto rdp_result = core::PlpTrainer(rdp).Train(corpus, rng_rdp);
  ASSERT_TRUE(rdp_result.ok()) << rdp_result.status().message();
  ASSERT_EQ(rdp_result->stop_reason, core::StopReason::kBudgetExhausted);

  core::PlpConfig mog = config;
  mog.accountant = "mog";
  Rng rng_mog(99);
  auto mog_result = core::PlpTrainer(mog).Train(corpus, rng_mog);
  ASSERT_TRUE(mog_result.ok()) << mog_result.status().message();

  EXPECT_GE(mog_result->steps_executed, rdp_result->steps_executed);
  EXPECT_GT(mog_result->epsilon_spent, 0.0);
  EXPECT_LE(mog_result->epsilon_spent, config.epsilon_budget);
}

/// Fixed-batch sampling end to end: the FixedBatchSampler stage plus the
/// hypergeometric MoG weights — the pairing no Poisson-only accountant
/// may account — must train to completion.
TEST(MogAccountantTest, EngineTrainsFixedBatchUnderMog) {
  data::FixtureCorpusOptions options;
  options.num_users = 48;
  options.num_locations = 24;
  options.neighborhood = 4;
  const data::TrainingCorpus corpus = data::MakeFixtureCorpus(777, options);

  core::PlpConfig config;
  config.sgns.embedding_dim = 8;
  config.sgns.negatives = 4;
  config.sampling_probability = 0.25;
  config.grouping_factor = 2;
  config.noise_scale = 1.2;
  config.clip_norm = 0.5;
  config.batch_size = 8;
  config.epsilon_budget = 1e9;
  config.max_steps = 8;
  config.accountant = "mog";
  config.sampling_scheme = core::SamplingScheme::kFixedBatch;
  ASSERT_TRUE(config.Validate().ok());

  Rng rng(99);
  auto result = core::PlpTrainer(config).Train(corpus, rng);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->steps_executed, 8);
  EXPECT_GT(result->epsilon_spent, 0.0);
}

}  // namespace
}  // namespace plp::privacy
