#include "privacy/ledger.h"

#include <string>
#include <string_view>

#include <gtest/gtest.h>

namespace plp::privacy {
namespace {

TEST(LedgerTest, StartsEmpty) {
  PrivacyLedger ledger(2e-4);
  EXPECT_EQ(ledger.total_steps(), 0);
  EXPECT_EQ(ledger.CumulativeEpsilon(), 0.0);
  EXPECT_EQ(ledger.delta(), 2e-4);
}

TEST(LedgerTest, TrackStepValidation) {
  PrivacyLedger ledger(2e-4);
  EXPECT_FALSE(ledger.TrackStep(-0.1, 1.0).ok());
  EXPECT_FALSE(ledger.TrackStep(1.1, 1.0).ok());
  EXPECT_FALSE(ledger.TrackStep(0.5, -1.0).ok());
  EXPECT_TRUE(ledger.TrackStep(0.5, 1.0).ok());
}

TEST(LedgerTest, CoalescesIdenticalSteps) {
  PrivacyLedger ledger(2e-4);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ledger.TrackStep(0.06, 2.5).ok());
  }
  ASSERT_TRUE(ledger.TrackStep(0.10, 2.5).ok());
  ASSERT_EQ(ledger.entries().size(), 2u);
  EXPECT_EQ(ledger.entries()[0].steps, 10);
  EXPECT_EQ(ledger.entries()[0].sampling_probability, 0.06);
  EXPECT_EQ(ledger.entries()[1].steps, 1);
  EXPECT_EQ(ledger.total_steps(), 11);
}

TEST(LedgerTest, MatchesFreshAccountant) {
  PrivacyLedger ledger(2e-4);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ledger.TrackStep(0.06, 1.5).ok());
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ledger.TrackStep(0.10, 2.0).ok());
  }
  RdpAccountant reference;
  ASSERT_TRUE(reference.AddSteps(0.06, 1.5, 50).ok());
  ASSERT_TRUE(reference.AddSteps(0.10, 2.0, 20).ok());
  EXPECT_NEAR(ledger.CumulativeEpsilon(),
              reference.GetEpsilon(2e-4).value(), 1e-9);
}

TEST(LedgerTest, EpsilonIsMonotoneInSteps) {
  PrivacyLedger ledger(2e-4);
  double prev = 0.0;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(ledger.TrackStep(0.06, 2.0).ok());
    const double eps = ledger.CumulativeEpsilon();
    EXPECT_GT(eps, prev);
    prev = eps;
  }
}

TEST(LedgerTest, CacheSurvivesParameterSwitches) {
  // Alternate parameters to exercise the (q, σ) cache invalidation path.
  PrivacyLedger ledger(2e-4);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ledger.TrackStep(0.06, 1.5).ok());
    ASSERT_TRUE(ledger.TrackStep(0.10, 2.5).ok());
  }
  RdpAccountant reference;
  ASSERT_TRUE(reference.AddSteps(0.06, 1.5, 5).ok());
  ASSERT_TRUE(reference.AddSteps(0.10, 2.5, 5).ok());
  EXPECT_NEAR(ledger.CumulativeEpsilon(),
              reference.GetEpsilon(2e-4).value(), 1e-9);
  EXPECT_EQ(ledger.entries().size(), 10u);
}

TEST(LedgerTest, ImprovedConversionAvailable) {
  PrivacyLedger ledger(2e-4);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(ledger.TrackStep(0.06, 1.5).ok());
  }
  EXPECT_LE(ledger.CumulativeEpsilon(RdpConversion::kImproved),
            ledger.CumulativeEpsilon(RdpConversion::kClassic));
}

TEST(LedgerTest, SaveRestoreRoundTripIsBitExact) {
  PrivacyLedger original(2e-4);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(original.TrackStep(0.06, 2.5).ok());
  }
  ASSERT_TRUE(original.TrackStep(0.10, 1.5).ok());

  ByteWriter writer;
  original.SaveState(writer);
  ByteReader reader(writer.str());
  auto restored = PrivacyLedger::Restore(reader);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_TRUE(reader.AtEnd());

  EXPECT_EQ(restored->delta(), original.delta());
  EXPECT_EQ(restored->total_steps(), original.total_steps());
  ASSERT_EQ(restored->entries().size(), original.entries().size());
  for (size_t i = 0; i < original.entries().size(); ++i) {
    EXPECT_EQ(restored->entries()[i].sampling_probability,
              original.entries()[i].sampling_probability);
    EXPECT_EQ(restored->entries()[i].noise_multiplier,
              original.entries()[i].noise_multiplier);
    EXPECT_EQ(restored->entries()[i].steps, original.entries()[i].steps);
  }
  EXPECT_EQ(restored->CumulativeEpsilon(), original.CumulativeEpsilon());
  EXPECT_EQ(restored->CumulativeEpsilon(RdpConversion::kImproved),
            original.CumulativeEpsilon(RdpConversion::kImproved));
}

TEST(LedgerTest, RestoredLedgerContinuesTrackingBitExactly) {
  // The checkpoint soundness property: interrupt after 30 steps, restore,
  // track 30 more — every cumulative ε must equal the uninterrupted
  // ledger's, bit for bit (the per-step RDP cache is rebuilt, not saved).
  PrivacyLedger uninterrupted(2e-4);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(uninterrupted.TrackStep(0.06, 2.5).ok());
  }
  ByteWriter writer;
  uninterrupted.SaveState(writer);
  ByteReader reader(writer.str());
  auto restored = PrivacyLedger::Restore(reader);
  ASSERT_TRUE(restored.ok());

  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(uninterrupted.TrackStep(0.06, 2.5).ok());
    ASSERT_TRUE(restored->TrackStep(0.06, 2.5).ok());
    EXPECT_EQ(restored->CumulativeEpsilon(),
              uninterrupted.CumulativeEpsilon())
        << "step " << (31 + i);
  }
  EXPECT_EQ(restored->total_steps(), 60);
}

TEST(LedgerTest, RestoreRejectsInconsistentState) {
  PrivacyLedger ledger(2e-4);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ledger.TrackStep(0.06, 2.5).ok());
  }
  ByteWriter writer;
  ledger.SaveState(writer);
  const std::string bytes = writer.Take();

  {
    // Entry count claims 6 steps but the accountant recorded 5.
    std::string tampered = bytes;
    // delta (8) + count (8) + q (8) + sigma (8), then the entry's step
    // count as a little-endian i64: bump it by one.
    tampered[32] = static_cast<char>(tampered[32] + 1);
    ByteReader reader(tampered);
    EXPECT_FALSE(PrivacyLedger::Restore(reader).ok());
  }
  for (size_t keep = 0; keep < bytes.size(); keep += 11) {
    ByteReader reader(std::string_view(bytes).substr(0, keep));
    EXPECT_FALSE(PrivacyLedger::Restore(reader).ok()) << "kept " << keep;
  }
}

}  // namespace
}  // namespace plp::privacy
