#include "privacy/ledger.h"

#include <gtest/gtest.h>

namespace plp::privacy {
namespace {

TEST(LedgerTest, StartsEmpty) {
  PrivacyLedger ledger(2e-4);
  EXPECT_EQ(ledger.total_steps(), 0);
  EXPECT_EQ(ledger.CumulativeEpsilon(), 0.0);
  EXPECT_EQ(ledger.delta(), 2e-4);
}

TEST(LedgerTest, TrackStepValidation) {
  PrivacyLedger ledger(2e-4);
  EXPECT_FALSE(ledger.TrackStep(-0.1, 1.0).ok());
  EXPECT_FALSE(ledger.TrackStep(1.1, 1.0).ok());
  EXPECT_FALSE(ledger.TrackStep(0.5, -1.0).ok());
  EXPECT_TRUE(ledger.TrackStep(0.5, 1.0).ok());
}

TEST(LedgerTest, CoalescesIdenticalSteps) {
  PrivacyLedger ledger(2e-4);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ledger.TrackStep(0.06, 2.5).ok());
  }
  ASSERT_TRUE(ledger.TrackStep(0.10, 2.5).ok());
  ASSERT_EQ(ledger.entries().size(), 2u);
  EXPECT_EQ(ledger.entries()[0].steps, 10);
  EXPECT_EQ(ledger.entries()[0].sampling_probability, 0.06);
  EXPECT_EQ(ledger.entries()[1].steps, 1);
  EXPECT_EQ(ledger.total_steps(), 11);
}

TEST(LedgerTest, MatchesFreshAccountant) {
  PrivacyLedger ledger(2e-4);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ledger.TrackStep(0.06, 1.5).ok());
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ledger.TrackStep(0.10, 2.0).ok());
  }
  RdpAccountant reference;
  ASSERT_TRUE(reference.AddSteps(0.06, 1.5, 50).ok());
  ASSERT_TRUE(reference.AddSteps(0.10, 2.0, 20).ok());
  EXPECT_NEAR(ledger.CumulativeEpsilon(),
              reference.GetEpsilon(2e-4).value(), 1e-9);
}

TEST(LedgerTest, EpsilonIsMonotoneInSteps) {
  PrivacyLedger ledger(2e-4);
  double prev = 0.0;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(ledger.TrackStep(0.06, 2.0).ok());
    const double eps = ledger.CumulativeEpsilon();
    EXPECT_GT(eps, prev);
    prev = eps;
  }
}

TEST(LedgerTest, CacheSurvivesParameterSwitches) {
  // Alternate parameters to exercise the (q, σ) cache invalidation path.
  PrivacyLedger ledger(2e-4);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ledger.TrackStep(0.06, 1.5).ok());
    ASSERT_TRUE(ledger.TrackStep(0.10, 2.5).ok());
  }
  RdpAccountant reference;
  ASSERT_TRUE(reference.AddSteps(0.06, 1.5, 5).ok());
  ASSERT_TRUE(reference.AddSteps(0.10, 2.5, 5).ok());
  EXPECT_NEAR(ledger.CumulativeEpsilon(),
              reference.GetEpsilon(2e-4).value(), 1e-9);
  EXPECT_EQ(ledger.entries().size(), 10u);
}

TEST(LedgerTest, ImprovedConversionAvailable) {
  PrivacyLedger ledger(2e-4);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(ledger.TrackStep(0.06, 1.5).ok());
  }
  EXPECT_LE(ledger.CumulativeEpsilon(RdpConversion::kImproved),
            ledger.CumulativeEpsilon(RdpConversion::kClassic));
}

}  // namespace
}  // namespace plp::privacy
