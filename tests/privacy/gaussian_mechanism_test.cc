#include "privacy/gaussian_mechanism.h"

#include <cmath>

#include <gtest/gtest.h>

namespace plp::privacy {
namespace {

TEST(GaussianSigmaTest, MatchesClosedForm) {
  auto sigma = GaussianSigma(1.0, 1e-5, 1.0);
  ASSERT_TRUE(sigma.ok());
  EXPECT_NEAR(*sigma, std::sqrt(2.0 * std::log(1.25e5)), 1e-12);
}

TEST(GaussianSigmaTest, ScalesWithSensitivity) {
  auto a = GaussianSigma(0.5, 1e-4, 1.0);
  auto b = GaussianSigma(0.5, 1e-4, 2.0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(*b, 2.0 * *a, 1e-12);
}

TEST(GaussianSigmaTest, MoreBudgetMeansLessNoise) {
  auto tight = GaussianSigma(0.1, 1e-4, 1.0);
  auto loose = GaussianSigma(1.0, 1e-4, 1.0);
  ASSERT_TRUE(tight.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_GT(*tight, *loose);
}

TEST(GaussianSigmaTest, Validation) {
  EXPECT_FALSE(GaussianSigma(0.0, 1e-4, 1.0).ok());
  EXPECT_FALSE(GaussianSigma(1.5, 1e-4, 1.0).ok());  // classic bound range
  EXPECT_FALSE(GaussianSigma(0.5, 0.0, 1.0).ok());
  EXPECT_FALSE(GaussianSigma(0.5, 1.0, 1.0).ok());
  EXPECT_FALSE(GaussianSigma(0.5, 1e-4, 0.0).ok());
}

TEST(GaussianEpsilonTest, InvertsSigma) {
  const double eps = 0.8;
  auto sigma = GaussianSigma(eps, 1e-4, 1.0);
  ASSERT_TRUE(sigma.ok());
  auto recovered = GaussianEpsilon(*sigma, 1e-4);
  ASSERT_TRUE(recovered.ok());
  EXPECT_NEAR(*recovered, eps, 1e-12);
}

TEST(GaussianEpsilonTest, Validation) {
  EXPECT_FALSE(GaussianEpsilon(0.0, 1e-4).ok());
  EXPECT_FALSE(GaussianEpsilon(1.0, 0.0).ok());
  EXPECT_FALSE(GaussianEpsilon(1.0, 1.0).ok());
}

TEST(AmplifyBySamplingTest, Identity) {
  EXPECT_EQ(AmplifyBySampling(2.0, 1.0), 2.0);
  EXPECT_EQ(AmplifyBySampling(2.0, 0.0), 0.0);
}

TEST(AmplifyBySamplingTest, ReducesEpsilon) {
  const double amplified = AmplifyBySampling(1.0, 0.1);
  EXPECT_LT(amplified, 1.0);
  EXPECT_GT(amplified, 0.0);
  EXPECT_NEAR(amplified, std::log1p(0.1 * (std::exp(1.0) - 1.0)), 1e-12);
}

TEST(AmplifyBySamplingTest, SmallQLinearRegime) {
  // For small ε and q, amplified ε ≈ q·ε·(e^ε−1)/ε ≈ q·ε.
  const double amplified = AmplifyBySampling(0.01, 0.05);
  EXPECT_NEAR(amplified, 0.05 * 0.01, 1e-4);
}

TEST(GaussianDeltaTest, DecreasesInSigma) {
  double prev = 1.0;
  for (double sigma : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double delta = GaussianDeltaForSigma(1.0, sigma).value();
    EXPECT_LT(delta, prev);
    prev = delta;
  }
}

TEST(GaussianDeltaTest, Validation) {
  EXPECT_FALSE(GaussianDeltaForSigma(0.0, 1.0).ok());
  EXPECT_FALSE(GaussianDeltaForSigma(1.0, 0.0).ok());
}

TEST(AnalyticGaussianTest, CalibrationIsConsistent) {
  // δ(σ*(ε, δ)) == δ, across a grid including ε > 1 (where the classic
  // bound does not even apply).
  for (double eps : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    for (double delta : {1e-6, 1e-4, 1e-2}) {
      const double sigma = AnalyticGaussianSigma(eps, delta).value();
      EXPECT_NEAR(GaussianDeltaForSigma(eps, sigma).value(), delta,
                  delta * 1e-3)
          << "eps=" << eps << " delta=" << delta;
    }
  }
}

TEST(AnalyticGaussianTest, NeverLooserThanClassicBound) {
  for (double eps : {0.2, 0.5, 1.0}) {
    const double analytic = AnalyticGaussianSigma(eps, 1e-5).value();
    const double classic = GaussianSigma(eps, 1e-5, 1.0).value();
    EXPECT_LE(analytic, classic);
  }
}

TEST(AnalyticGaussianTest, WorksBeyondEpsilonOne) {
  const double sigma = AnalyticGaussianSigma(4.0, 1e-5).value();
  EXPECT_GT(sigma, 0.0);
  EXPECT_LT(sigma, 2.0);  // large ε needs little noise
}

TEST(AnalyticGaussianTest, Validation) {
  EXPECT_FALSE(AnalyticGaussianSigma(0.0, 1e-5).ok());
  EXPECT_FALSE(AnalyticGaussianSigma(1.0, 0.0).ok());
  EXPECT_FALSE(AnalyticGaussianSigma(1.0, 1.0).ok());
}

}  // namespace
}  // namespace plp::privacy
