#include "privacy/geo_indistinguishability.h"

#include <cmath>

#include <gtest/gtest.h>

namespace plp::privacy {
namespace {

TEST(LambertWTest, BranchPointAndKnownValues) {
  EXPECT_NEAR(LambertWMinusOne(-1.0 / M_E), -1.0, 1e-9);
  // W₋₁(−0.1) ≈ −3.577152063957297.
  EXPECT_NEAR(LambertWMinusOne(-0.1), -3.577152063957297, 1e-9);
  // W₋₁(−0.2) ≈ −2.542641357773526.
  EXPECT_NEAR(LambertWMinusOne(-0.2), -2.542641357773526, 1e-9);
}

TEST(LambertWTest, SatisfiesDefiningEquation) {
  for (double x : {-0.3, -0.25, -0.1, -0.05, -0.01, -1e-4}) {
    const double w = LambertWMinusOne(x);
    EXPECT_NEAR(w * std::exp(w), x, 1e-10 + 1e-8 * std::fabs(x));
    EXPECT_LE(w, -1.0);
  }
}

TEST(PlanarLaplaceRadiusTest, InvertsTheRadialCdf) {
  // C(r) = 1 − (1 + εr)·e^{−εr}; radius at quantile u must satisfy
  // C(r(u)) = u.
  const double eps = 0.01;  // per meter
  for (double u : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double r = PlanarLaplaceRadius(eps, u);
    const double cdf = 1.0 - (1.0 + eps * r) * std::exp(-eps * r);
    EXPECT_NEAR(cdf, u, 1e-9);
    EXPECT_GT(r, 0.0);
  }
}

TEST(PlanarLaplaceRadiusTest, MonotoneInQuantileAndEpsilon) {
  EXPECT_LT(PlanarLaplaceRadius(0.01, 0.3), PlanarLaplaceRadius(0.01, 0.7));
  // Stronger privacy (smaller ε) → larger radius at the same quantile.
  EXPECT_GT(PlanarLaplaceRadius(0.001, 0.5), PlanarLaplaceRadius(0.01, 0.5));
}

TEST(PlanarLaplacePerturbTest, MeanDisplacementMatchesTheory) {
  // E[r] for the planar Laplace is 2/ε.
  const double eps = 0.005;
  const GeoPoint origin{35.65, 139.70};
  Rng rng(3);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto z = PlanarLaplacePerturb(origin, eps, rng);
    ASSERT_TRUE(z.ok());
    total += ApproxDistanceMeters(origin, *z);
  }
  EXPECT_NEAR(total / n, 2.0 / eps, 0.03 * 2.0 / eps);
}

TEST(PlanarLaplacePerturbTest, RejectsBadEpsilon) {
  Rng rng(3);
  EXPECT_FALSE(PlanarLaplacePerturb(GeoPoint{}, 0.0, rng).ok());
  EXPECT_FALSE(PlanarLaplacePerturb(GeoPoint{}, -1.0, rng).ok());
}

TEST(ApproxDistanceTest, KnownDistances) {
  // One degree of latitude ≈ 111.32 km.
  EXPECT_NEAR(ApproxDistanceMeters(GeoPoint{35.0, 139.0},
                                   GeoPoint{36.0, 139.0}),
              111320.0, 10.0);
  EXPECT_EQ(ApproxDistanceMeters(GeoPoint{35.0, 139.0},
                                 GeoPoint{35.0, 139.0}),
            0.0);
}

TEST(NearestLocationTest, PicksClosestPoi) {
  const std::vector<double> lats = {35.60, 35.70, 35.65};
  const std::vector<double> lons = {139.60, 139.80, 139.70};
  EXPECT_EQ(NearestLocation(GeoPoint{35.61, 139.61}, lats, lons), 0);
  EXPECT_EQ(NearestLocation(GeoPoint{35.69, 139.79}, lats, lons), 1);
  EXPECT_EQ(NearestLocation(GeoPoint{35.65, 139.70}, lats, lons), 2);
}

TEST(NearestLocationTest, SnapRecoversTruePoiAtHighEpsilon) {
  // With weak obfuscation (large ε) the snapped POI is almost always the
  // original one when POIs are hundreds of meters apart.
  const std::vector<double> lats = {35.60, 35.70, 35.65};
  const std::vector<double> lons = {139.60, 139.80, 139.70};
  Rng rng(5);
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    auto z = PlanarLaplacePerturb(GeoPoint{35.70, 139.80}, /*eps=*/0.1, rng);
    ASSERT_TRUE(z.ok());
    correct += NearestLocation(*z, lats, lons) == 1;
  }
  EXPECT_GT(correct, 195);
}

}  // namespace
}  // namespace plp::privacy
