#include "privacy/rdp_accountant.h"

#include <cmath>
#include <limits>
#include <string>
#include <string_view>

#include <gtest/gtest.h>
#include "common/math_util.h"
#include "privacy/gaussian_mechanism.h"

namespace plp::privacy {
namespace {

TEST(SubsampledGaussianRdpTest, ZeroSamplingIsFree) {
  EXPECT_EQ(SubsampledGaussianRdp(0.0, 1.0, 2), 0.0);
  EXPECT_EQ(SubsampledGaussianRdp(0.0, 1.0, 64), 0.0);
}

TEST(SubsampledGaussianRdpTest, FullSamplingIsPlainGaussian) {
  // q = 1: RDP(α) = α / (2σ²) exactly.
  for (int64_t alpha : {2, 8, 32}) {
    for (double sigma : {0.5, 1.0, 2.5}) {
      EXPECT_NEAR(SubsampledGaussianRdp(1.0, sigma, alpha),
                  static_cast<double>(alpha) / (2.0 * sigma * sigma), 1e-12);
    }
  }
}

TEST(SubsampledGaussianRdpTest, ZeroNoiseIsInfinite) {
  EXPECT_TRUE(std::isinf(SubsampledGaussianRdp(0.5, 0.0, 2)));
}

TEST(SubsampledGaussianRdpTest, HandComputedAlphaTwo) {
  // α = 2: A = Σ_k C(2,k)(1−q)^{2−k} q^k exp(k(k−1)/(2σ²))
  //          = (1−q)² + 2q(1−q) + q²·e^{1/σ²}; RDP = log(A).
  const double q = 0.1, sigma = 1.5;
  const double expected = std::log((1 - q) * (1 - q) + 2 * q * (1 - q) +
                                   q * q * std::exp(1.0 / (sigma * sigma)));
  EXPECT_NEAR(SubsampledGaussianRdp(q, sigma, 2), expected, 1e-12);
}

TEST(SubsampledGaussianRdpTest, MonotoneInSamplingProbability) {
  double prev = 0.0;
  for (double q : {0.01, 0.05, 0.1, 0.3, 0.7, 1.0}) {
    const double rdp = SubsampledGaussianRdp(q, 1.5, 8);
    EXPECT_GT(rdp, prev);
    prev = rdp;
  }
}

TEST(SubsampledGaussianRdpTest, MonotoneDecreasingInNoise) {
  double prev = std::numeric_limits<double>::infinity();
  for (double sigma : {0.5, 1.0, 1.5, 2.5, 4.0}) {
    const double rdp = SubsampledGaussianRdp(0.1, sigma, 8);
    EXPECT_LT(rdp, prev);
    prev = rdp;
  }
}

TEST(SubsampledGaussianRdpTest, AmplificationBeatsFullBatch) {
  // Subsampling with q < 1 must cost strictly less than the plain
  // Gaussian mechanism at the same σ.
  for (int64_t alpha : {2, 4, 16, 64}) {
    EXPECT_LT(SubsampledGaussianRdp(0.06, 2.0, alpha),
              SubsampledGaussianRdp(1.0, 2.0, alpha));
  }
}

TEST(SubsampledGaussianRdpTest, QuadraticInQForSmallQ) {
  // Known asymptotic: RDP ≈ q²·α(α−1)... ~ O(q²) for small q; check the
  // ratio between q and q/2 is about 4.
  const double a = SubsampledGaussianRdp(0.02, 2.0, 4);
  const double b = SubsampledGaussianRdp(0.01, 2.0, 4);
  EXPECT_NEAR(a / b, 4.0, 0.25);
}

TEST(DefaultRdpOrdersTest, CoversSmallAndLargeOrders) {
  const std::vector<int64_t> orders = DefaultRdpOrders();
  EXPECT_GE(orders.size(), 60u);
  EXPECT_EQ(orders.front(), 2);
  EXPECT_EQ(orders.back(), 512);
  for (size_t i = 1; i < orders.size(); ++i) {
    EXPECT_GT(orders[i], orders[i - 1]);
  }
}

TEST(RdpAccountantTest, StartsAtZero) {
  RdpAccountant acc;
  auto eps = acc.GetEpsilon(1e-5);
  ASSERT_TRUE(eps.ok());
  EXPECT_EQ(*eps, 0.0);
  EXPECT_EQ(acc.total_steps(), 0);
}

TEST(RdpAccountantTest, ValidatesInputs) {
  RdpAccountant acc;
  EXPECT_FALSE(acc.AddSteps(-0.1, 1.0, 1).ok());
  EXPECT_FALSE(acc.AddSteps(1.1, 1.0, 1).ok());
  EXPECT_FALSE(acc.AddSteps(0.5, -1.0, 1).ok());
  EXPECT_FALSE(acc.AddSteps(0.5, 1.0, -1).ok());
  EXPECT_TRUE(acc.AddSteps(0.5, 1.0, 0).ok());
  EXPECT_FALSE(acc.GetEpsilon(0.0).ok());
  EXPECT_FALSE(acc.GetEpsilon(1.0).ok());
}

TEST(RdpAccountantTest, CompositionIsLinearInSteps) {
  RdpAccountant one, many;
  ASSERT_TRUE(one.AddSteps(0.06, 2.0, 1).ok());
  ASSERT_TRUE(many.AddSteps(0.06, 2.0, 100).ok());
  for (size_t i = 0; i < one.orders().size(); ++i) {
    EXPECT_NEAR(many.accumulated_rdp()[i], 100.0 * one.accumulated_rdp()[i],
                1e-9);
  }
  EXPECT_EQ(many.total_steps(), 100);
}

TEST(RdpAccountantTest, EpsilonGrowsWithSteps) {
  RdpAccountant acc;
  double prev = 0.0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(acc.AddSteps(0.06, 1.5, 50).ok());
    auto eps = acc.GetEpsilon(2e-4);
    ASSERT_TRUE(eps.ok());
    EXPECT_GT(*eps, prev);
    prev = *eps;
  }
}

TEST(RdpAccountantTest, EpsilonShrinksWithLargerDelta) {
  RdpAccountant acc;
  ASSERT_TRUE(acc.AddSteps(0.06, 1.5, 200).ok());
  auto tight = acc.GetEpsilon(1e-6);
  auto loose = acc.GetEpsilon(1e-3);
  ASSERT_TRUE(tight.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_GT(*tight, *loose);
}

TEST(RdpAccountantTest, ImprovedConversionIsAtLeastAsTight) {
  RdpAccountant acc;
  ASSERT_TRUE(acc.AddSteps(0.06, 1.5, 100).ok());
  auto classic = acc.GetEpsilon(2e-4, RdpConversion::kClassic);
  auto improved = acc.GetEpsilon(2e-4, RdpConversion::kImproved);
  ASSERT_TRUE(classic.ok());
  ASSERT_TRUE(improved.ok());
  EXPECT_LE(*improved, *classic);
}

TEST(RdpAccountantTest, SubsamplingAmplifiesPrivacy) {
  // Same σ and steps: smaller q must give smaller ε.
  RdpAccountant low_q, high_q;
  ASSERT_TRUE(low_q.AddSteps(0.04, 2.0, 100).ok());
  ASSERT_TRUE(high_q.AddSteps(0.12, 2.0, 100).ok());
  EXPECT_LT(low_q.GetEpsilon(2e-4).value(),
            high_q.GetEpsilon(2e-4).value());
}

TEST(RdpAccountantTest, MoreNoiseGivesSmallerEpsilon) {
  RdpAccountant low_noise, high_noise;
  ASSERT_TRUE(low_noise.AddSteps(0.06, 1.0, 100).ok());
  ASSERT_TRUE(high_noise.AddSteps(0.06, 3.0, 100).ok());
  EXPECT_GT(low_noise.GetEpsilon(2e-4).value(),
            high_noise.GetEpsilon(2e-4).value());
}

TEST(RdpAccountantTest, PrecomputedStepsMatchDirect) {
  RdpAccountant direct, precomputed;
  ASSERT_TRUE(direct.AddSteps(0.08, 1.7, 37).ok());
  const std::vector<double> step = precomputed.StepRdp(0.08, 1.7);
  precomputed.AddPrecomputedSteps(step, 37);
  for (size_t i = 0; i < direct.orders().size(); ++i) {
    EXPECT_NEAR(direct.accumulated_rdp()[i],
                precomputed.accumulated_rdp()[i], 1e-12);
  }
}

TEST(RdpAccountantTest, OptimalOrderIsReasonable) {
  RdpAccountant acc;
  ASSERT_TRUE(acc.AddSteps(0.06, 1.5, 100).ok());
  auto order = acc.GetOptimalOrder(2e-4);
  ASSERT_TRUE(order.ok());
  EXPECT_GE(*order, 2);
  EXPECT_LE(*order, 512);
}

TEST(RdpAccountantTest, CustomOrderGrid) {
  RdpAccountant acc({2, 4, 8});
  ASSERT_TRUE(acc.AddSteps(0.5, 1.0, 10).ok());
  EXPECT_EQ(acc.orders().size(), 3u);
  EXPECT_TRUE(acc.GetEpsilon(1e-4).ok());
}

TEST(RdpAccountantTest, MomentsAccountantBeatsComposition) {
  // The headline claim of [Abadi et al.]: the moments accountant gives a
  // far smaller ε than naive or advanced composition for many steps of a
  // subsampled Gaussian mechanism.
  const double q = 0.06, sigma = 2.5, delta = 2e-4;
  const int64_t steps = 300;

  RdpAccountant acc;
  ASSERT_TRUE(acc.AddSteps(q, sigma, steps).ok());
  const double rdp_eps = acc.GetEpsilon(delta).value();

  const double eps0 =
      AmplifyBySampling(GaussianEpsilon(sigma, delta).value(), q);
  const double naive = NaiveCompositionEpsilon(eps0, steps);
  const double advanced = AdvancedCompositionEpsilon(eps0, steps, delta);

  EXPECT_LT(rdp_eps, advanced);
  EXPECT_LT(advanced, naive);
}

TEST(CompositionTest, NaiveIsLinear) {
  EXPECT_EQ(NaiveCompositionEpsilon(0.1, 10), 1.0);
  EXPECT_EQ(NaiveCompositionEpsilon(0.1, 0), 0.0);
}

TEST(CompositionTest, AdvancedSublinearForManySteps) {
  const double eps0 = 0.01;
  const double naive = NaiveCompositionEpsilon(eps0, 10000);
  const double advanced = AdvancedCompositionEpsilon(eps0, 10000, 1e-5);
  EXPECT_LT(advanced, naive);
}

TEST(AccountantSerializationTest, RoundTripIsBitExact) {
  RdpAccountant original;
  ASSERT_TRUE(original.AddSteps(0.06, 2.5, 123).ok());
  ASSERT_TRUE(original.AddSteps(0.25, 1.5, 7).ok());

  ByteWriter writer;
  original.SaveState(writer);
  ByteReader reader(writer.str());
  auto restored = RdpAccountant::Restore(reader);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_TRUE(reader.AtEnd());

  EXPECT_EQ(restored->orders(), original.orders());
  EXPECT_EQ(restored->total_steps(), original.total_steps());
  ASSERT_EQ(restored->accumulated_rdp().size(),
            original.accumulated_rdp().size());
  for (size_t i = 0; i < original.accumulated_rdp().size(); ++i) {
    EXPECT_EQ(restored->accumulated_rdp()[i], original.accumulated_rdp()[i]);
  }
  EXPECT_EQ(restored->GetEpsilon(2e-4).value(),
            original.GetEpsilon(2e-4).value());
}

TEST(AccountantSerializationTest, RestoreRejectsTruncation) {
  RdpAccountant accountant;
  ASSERT_TRUE(accountant.AddSteps(0.06, 2.5, 10).ok());
  ByteWriter writer;
  accountant.SaveState(writer);
  const std::string bytes = writer.Take();
  for (size_t keep = 0; keep < bytes.size(); keep += 9) {
    ByteReader reader(std::string_view(bytes).substr(0, keep));
    EXPECT_FALSE(RdpAccountant::Restore(reader).ok()) << "kept " << keep;
  }
}

}  // namespace
}  // namespace plp::privacy
