#include "privacy/pld_accountant.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serialize.h"
#include "core/plp_trainer.h"
#include "data/fixtures.h"
#include "privacy/ledger.h"

namespace plp::privacy {
namespace {

constexpr double kDelta = 1e-5;

TEST(PldAccountantTest, ZeroBeforeAnySteps) {
  PldAccountant pld(kDelta);
  EXPECT_EQ(pld.CumulativeEpsilon(), 0.0);
  EXPECT_EQ(pld.total_steps(), 0);
  EXPECT_LE(pld.DeltaAtEpsilon(0.0), kDelta);
}

TEST(PldAccountantTest, RejectsInvalidSteps) {
  PldAccountant pld(kDelta);
  EXPECT_FALSE(pld.AddSteps(0.0, 1.0, 1).ok());
  EXPECT_FALSE(pld.AddSteps(1.1, 1.0, 1).ok());
  EXPECT_FALSE(pld.AddSteps(0.5, 0.0, 1).ok());
  EXPECT_FALSE(pld.AddSteps(0.5, -1.0, 1).ok());
  EXPECT_FALSE(pld.AddSteps(0.5, 1.0, 0).ok());
  EXPECT_EQ(pld.total_steps(), 0);
}

TEST(PldAccountantTest, EpsilonIncreasesWithSteps) {
  PldAccountant pld(kDelta);
  double previous = 0.0;
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE(pld.AddSteps(0.1, 1.5, 25).ok());
    const double eps = pld.CumulativeEpsilon();
    EXPECT_GT(eps, previous) << "after " << (round + 1) * 25 << " steps";
    EXPECT_TRUE(std::isfinite(eps));
    previous = eps;
  }
}

TEST(PldAccountantTest, DeltaDecreasesInEpsilon) {
  PldAccountant pld(kDelta);
  ASSERT_TRUE(pld.AddSteps(0.2, 1.2, 50).ok());
  double previous = 1.0;
  for (double eps = 0.0; eps <= 8.0; eps += 0.5) {
    const double d = pld.DeltaAtEpsilon(eps);
    EXPECT_LE(d, previous + 1e-15) << "eps=" << eps;
    EXPECT_GE(d, 0.0);
    previous = d;
  }
}

/// δ(ε) of a single unsubsampled Gaussian query (q = 1) has the closed
/// form Φ(1/(2σ) − εσ) − e^ε·Φ(−1/(2σ) − εσ) [Balle & Wang 2018]. The
/// grid discretization rounds mass pessimistically, so the accountant's ε
/// may exceed the analytic value slightly but must never undercut it.
TEST(PldAccountantTest, MatchesAnalyticGaussianAtQOne) {
  const double sigma = 2.0;
  const auto analytic_delta = [&](double eps) {
    const auto phi = [](double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); };
    return phi(1.0 / (2.0 * sigma) - eps * sigma) -
           std::exp(eps) * phi(-1.0 / (2.0 * sigma) - eps * sigma);
  };
  // Analytic ε at kDelta by bisection.
  double lo = 0.0, hi = 16.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    (analytic_delta(mid) > kDelta ? lo : hi) = mid;
  }
  const double analytic_eps = hi;

  PldAccountant pld(kDelta);
  ASSERT_TRUE(pld.AddSteps(1.0, sigma, 1).ok());
  const double pld_eps = pld.CumulativeEpsilon();
  EXPECT_GE(pld_eps, analytic_eps - 1e-6);
  EXPECT_LE(pld_eps, analytic_eps + 0.02);
}

/// The point of the FFT accountant: tighter ε than the RDP moments ledger
/// at the same (q, σ, δ, steps), never looser.
TEST(PldAccountantTest, TighterThanRdpLedger) {
  const double q = 0.06, sigma = 2.5;
  const int64_t steps = 200;
  PldAccountant pld(kDelta);
  ASSERT_TRUE(pld.AddSteps(q, sigma, steps).ok());
  PrivacyLedger ledger(kDelta);
  for (int64_t i = 0; i < steps; ++i) {
    ASSERT_TRUE(ledger.TrackStep(q, sigma).ok());
  }
  const double pld_eps = pld.CumulativeEpsilon();
  const double rdp_eps = ledger.CumulativeEpsilon(RdpConversion::kClassic);
  EXPECT_GT(pld_eps, 0.0);
  EXPECT_LT(pld_eps, rdp_eps);
}

TEST(PldAccountantTest, OverflowingGridReportsInfinity) {
  PldAccountant pld(kDelta);
  ASSERT_TRUE(pld.AddSteps(1.0, 0.05, 500).ok());
  EXPECT_TRUE(std::isinf(pld.CumulativeEpsilon()));
}

TEST(PldAccountantTest, CoalescesIdenticalRuns) {
  PldAccountant pld(kDelta);
  ASSERT_TRUE(pld.AddSteps(0.1, 1.5, 10).ok());
  ASSERT_TRUE(pld.AddSteps(0.1, 1.5, 5).ok());
  ASSERT_TRUE(pld.AddSteps(0.1, 1.0, 5).ok());
  ASSERT_EQ(pld.entries().size(), 2u);
  EXPECT_EQ(pld.entries()[0].steps, 15);
  EXPECT_EQ(pld.total_steps(), 20);
}

TEST(PldAccountantTest, SaveRestoreRoundTripsBitIdentically) {
  PldAccountant pld(kDelta);
  ASSERT_TRUE(pld.AddSteps(0.06, 2.5, 120).ok());
  ASSERT_TRUE(pld.AddSteps(0.06, 1.8, 40).ok());
  ByteWriter writer;
  pld.SaveState(writer);
  const std::string blob = writer.Take();

  ByteReader reader(blob);
  auto restored = PldAccountant::Restore(reader);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(restored->delta(), pld.delta());
  EXPECT_EQ(restored->total_steps(), pld.total_steps());
  // Bit-identity, not approximation: the discretization is deterministic.
  EXPECT_EQ(restored->CumulativeEpsilon(), pld.CumulativeEpsilon());

  ByteWriter writer2;
  restored->SaveState(writer2);
  EXPECT_EQ(writer2.Take(), blob);
}

TEST(PldAccountantTest, RejectsForeignAndTruncatedBlobs) {
  {
    // The blob must outlive the reader (ByteReader is a view).
    const std::string blob("nonsense-bytes");
    ByteReader reader(blob);
    EXPECT_FALSE(PldAccountant::Restore(reader).ok());
  }
  {
    // An RDP ledger blob must not parse as a PLD blob.
    PrivacyLedger ledger(kDelta);
    ASSERT_TRUE(ledger.TrackStep(0.1, 1.5).ok());
    ByteWriter writer;
    ledger.SaveState(writer);
    const std::string blob = writer.Take();
    ByteReader reader(blob);
    EXPECT_FALSE(PldAccountant::Restore(reader).ok());
  }
  {
    PldAccountant pld(kDelta);
    ASSERT_TRUE(pld.AddSteps(0.1, 1.5, 3).ok());
    ByteWriter writer;
    pld.SaveState(writer);
    std::string blob = writer.Take();
    blob.resize(blob.size() / 2);  // truncate mid-entry
    ByteReader reader(blob);
    EXPECT_FALSE(PldAccountant::Restore(reader).ok());
  }
}

/// End-to-end through the trainer facade: selecting "pld_fft" must train
/// successfully, and its tighter accounting must fit at least as many
/// steps into the same ε budget as the RDP ledger.
TEST(PldAccountantTest, EngineFitsMoreStepsThanRdpInSameBudget) {
  data::FixtureCorpusOptions options;
  options.num_users = 48;
  options.num_locations = 24;
  options.neighborhood = 4;
  const data::TrainingCorpus corpus = data::MakeFixtureCorpus(777, options);

  core::PlpConfig config;
  config.sgns.embedding_dim = 8;
  config.sgns.negatives = 4;
  config.sampling_probability = 0.25;
  config.grouping_factor = 2;
  config.noise_scale = 1.2;
  config.clip_norm = 0.5;
  config.batch_size = 8;
  config.epsilon_budget = 4.0;
  config.max_steps = 64;

  core::PlpConfig rdp = config;
  rdp.accountant = "rdp";
  Rng rng_rdp(99);
  auto rdp_result = core::PlpTrainer(rdp).Train(corpus, rng_rdp);
  ASSERT_TRUE(rdp_result.ok()) << rdp_result.status().message();
  ASSERT_EQ(rdp_result->stop_reason, core::StopReason::kBudgetExhausted);

  core::PlpConfig pld = config;
  pld.accountant = "pld_fft";
  Rng rng_pld(99);
  auto pld_result = core::PlpTrainer(pld).Train(corpus, rng_pld);
  ASSERT_TRUE(pld_result.ok()) << pld_result.status().message();

  EXPECT_GT(pld_result->steps_executed, rdp_result->steps_executed);
  EXPECT_GT(pld_result->epsilon_spent, 0.0);
  EXPECT_LE(pld_result->epsilon_spent, config.epsilon_budget);
}

}  // namespace
}  // namespace plp::privacy
