#include "optim/optimizers.h"

#include <cmath>

#include <gtest/gtest.h>
#include "common/rng.h"
#include "sgns/sparse_delta.h"

namespace plp::optim {
namespace {

using sgns::DenseUpdate;
using sgns::SgnsConfig;
using sgns::SgnsModel;
using sgns::SparseDelta;
using sgns::Tensor;

SgnsModel MakeModel(int32_t locations = 4, int32_t dim = 3,
                    uint64_t seed = 1) {
  Rng rng(seed);
  SgnsConfig config;
  config.embedding_dim = dim;
  auto model = SgnsModel::Create(locations, config, rng);
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

TEST(FixedStepTest, AppliesUpdateExactly) {
  SgnsModel model = MakeModel();
  const SgnsModel before = model;
  DenseUpdate update(model);
  update.TensorData(Tensor::kWIn)[0] = 0.5;
  update.TensorData(Tensor::kBias)[2] = -1.0;

  FixedStepServerOptimizer opt;
  opt.ApplyUpdate(update, model);
  EXPECT_DOUBLE_EQ(model.TensorData(Tensor::kWIn)[0],
                   before.TensorData(Tensor::kWIn)[0] + 0.5);
  EXPECT_DOUBLE_EQ(model.bias(2), before.bias(2) - 1.0);
  // Untouched coordinates unchanged.
  EXPECT_DOUBLE_EQ(model.TensorData(Tensor::kWIn)[1],
                   before.TensorData(Tensor::kWIn)[1]);
}

TEST(FixedStepTest, ScaleFactor) {
  SgnsModel model = MakeModel();
  const double before = model.TensorData(Tensor::kWIn)[0];
  DenseUpdate update(model);
  update.TensorData(Tensor::kWIn)[0] = 1.0;
  FixedStepServerOptimizer opt(0.25);
  opt.ApplyUpdate(update, model);
  EXPECT_DOUBLE_EQ(model.TensorData(Tensor::kWIn)[0], before + 0.25);
}

TEST(DpAdamTest, FirstStepMatchesManualAdam) {
  SgnsModel model = MakeModel();
  const double before = model.TensorData(Tensor::kWIn)[0];
  DenseUpdate update(model);
  update.TensorData(Tensor::kWIn)[0] = 0.8;  // ascent direction

  AdamConfig config;
  config.learning_rate = 0.1;
  DpAdamServerOptimizer opt(config);
  opt.ApplyUpdate(update, model);

  // Manual Adam with g = −0.8 at t = 1: m̂ = g, v̂ = g², so the step is
  // −lr·g/(|g| + ε) ≈ +lr.
  const double g = -0.8;
  const double expected =
      before - config.learning_rate * g / (std::fabs(g) + config.epsilon);
  EXPECT_NEAR(model.TensorData(Tensor::kWIn)[0], expected, 1e-12);
}

TEST(DpAdamTest, MovesInUpdateDirection) {
  SgnsModel model = MakeModel();
  const SgnsModel before = model;
  DenseUpdate update(model);
  update.TensorData(Tensor::kWOut)[5] = 0.3;
  update.TensorData(Tensor::kWOut)[6] = -0.3;
  DpAdamServerOptimizer opt;
  opt.ApplyUpdate(update, model);
  // Update flat indices 5 and 6 are row1[2] and row2[0] at dim 3; read the
  // model through the row accessors — its storage span is padded, so the
  // same flat index would land in the inter-row padding there.
  EXPECT_GT(model.OutRow(1)[2], before.OutRow(1)[2]);
  EXPECT_LT(model.OutRow(2)[0], before.OutRow(2)[0]);
}

TEST(DpAdamTest, MomentumPersistsAcrossSteps) {
  // After several identical updates, a zero update still moves the model
  // (first-moment momentum).
  SgnsModel model = MakeModel();
  DenseUpdate update(model);
  update.TensorData(Tensor::kWIn)[0] = 1.0;
  DpAdamServerOptimizer opt;
  for (int i = 0; i < 5; ++i) opt.ApplyUpdate(update, model);
  const double before = model.TensorData(Tensor::kWIn)[0];
  DenseUpdate zero(model);
  opt.ApplyUpdate(zero, model);
  EXPECT_NE(model.TensorData(Tensor::kWIn)[0], before);
}

TEST(MakeServerOptimizerTest, Factory) {
  EXPECT_STREQ(MakeServerOptimizer("fixed_step")->name(), "fixed_step");
  EXPECT_STREQ(MakeServerOptimizer("dp_adam")->name(), "dp_adam");
}

TEST(SparseAdamTest, FirstStepMatchesManualAdam) {
  SgnsModel model = MakeModel();
  const double before = model.TensorData(Tensor::kWIn)[0];
  SparseDelta gradient(3);
  gradient.Row(Tensor::kWIn, 0)[0] = 2.0;

  AdamConfig config;
  config.learning_rate = 0.05;
  SparseAdam adam(model, config);
  adam.ApplyGradient(gradient, 0.5, model);  // effective gradient 1.0

  // t = 1: m = (1−β1)·g, v = (1−β2)·g²; lr_t = lr·√(1−β2)/(1−β1);
  // step = −lr_t·m/(√v + ε) = −lr·g/(|g| + ...) ≈ −lr for g = 1.
  const double g = 1.0;
  const double m = (1 - config.beta1) * g;
  const double v = (1 - config.beta2) * g * g;
  const double lr_t = config.learning_rate * std::sqrt(1 - config.beta2) /
                      (1 - config.beta1);
  const double expected = before - lr_t * m / (std::sqrt(v) + config.epsilon);
  EXPECT_NEAR(model.TensorData(Tensor::kWIn)[0], expected, 1e-12);
  EXPECT_EQ(adam.step(), 1);
}

TEST(SparseAdamTest, OnlyTouchedEntriesMove) {
  SgnsModel model = MakeModel();
  const SgnsModel before = model;
  SparseDelta gradient(3);
  gradient.Row(Tensor::kWIn, 1)[2] = 1.0;
  gradient.AddBias(3, -1.0);

  SparseAdam adam(model);
  adam.ApplyGradient(gradient, 1.0, model);

  int moved = 0;
  for (int ti = 0; ti < sgns::kNumTensors; ++ti) {
    const auto t = static_cast<Tensor>(ti);
    const auto a = model.TensorData(t);
    const auto b = before.TensorData(t);
    for (size_t i = 0; i < a.size(); ++i) moved += a[i] != b[i];
  }
  EXPECT_EQ(moved, 2);
  EXPECT_LT(model.InRow(1)[2], before.InRow(1)[2]);  // descent
  EXPECT_GT(model.bias(3), before.bias(3));          // negative gradient
}

TEST(SparseAdamTest, ReducesQuadraticObjective) {
  // Minimize f(w) = ½·w² on a single coordinate: gradient = w.
  SgnsModel model = MakeModel(2, 3);
  model.MutableInRow(0)[0] = 1.0;
  AdamConfig config;
  config.learning_rate = 0.05;
  SparseAdam adam(model, config);
  for (int i = 0; i < 200; ++i) {
    SparseDelta gradient(3);
    gradient.Row(Tensor::kWIn, 0)[0] = model.InRow(0)[0];
    adam.ApplyGradient(gradient, 1.0, model);
  }
  EXPECT_LT(std::fabs(model.InRow(0)[0]), 0.05);
}

TEST(SparseAdamTest, GradScaleActsLikeBatchAverage) {
  SgnsModel a = MakeModel(2, 3, 5);
  SgnsModel b = a;
  SparseDelta g1(3);
  g1.Row(Tensor::kWIn, 0)[0] = 4.0;
  SparseDelta g2(3);
  g2.Row(Tensor::kWIn, 0)[0] = 1.0;

  SparseAdam adam_a(a);
  adam_a.ApplyGradient(g1, 0.25, a);
  SparseAdam adam_b(b);
  adam_b.ApplyGradient(g2, 1.0, b);
  EXPECT_NEAR(a.InRow(0)[0], b.InRow(0)[0], 1e-12);
}

}  // namespace
}  // namespace plp::optim
