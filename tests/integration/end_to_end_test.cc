// End-to-end pipeline tests over the synthetic city: generate → filter →
// split → corpus → train (non-private and DP) → evaluate. Sized to run in
// seconds.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/nonprivate_trainer.h"
#include "core/plp_trainer.h"
#include "data/corpus.h"
#include "data/synthetic_generator.h"
#include "eval/hit_rate.h"
#include "eval/recommender.h"

namespace plp {
namespace {

struct Pipeline {
  data::CheckInDataset train;
  data::CheckInDataset test;
  data::TrainingCorpus corpus;
  std::vector<eval::EvalExample> examples;
};

Pipeline BuildPipeline(uint64_t seed) {
  Rng rng(seed);
  data::SyntheticConfig config = data::SmallSyntheticConfig();
  config.num_users = 250;
  config.num_locations = 120;
  config.num_clusters = 6;
  config.log_checkins_mean = 3.4;
  config.log_checkins_stddev = 0.5;
  auto dataset = data::GenerateSyntheticCheckIns(config, rng);
  EXPECT_TRUE(dataset.ok());
  data::CheckInDataset filtered = dataset->Filter(10, 2);
  auto split = filtered.SplitHoldout(30, rng);
  EXPECT_TRUE(split.ok());
  Pipeline p{.train = std::move(split->first),
             .test = std::move(split->second)};
  auto corpus = data::BuildCorpus(p.train);
  EXPECT_TRUE(corpus.ok());
  p.corpus = std::move(corpus).value();
  p.examples = eval::BuildLeaveOneOutExamples(p.test);
  EXPECT_FALSE(p.examples.empty());
  return p;
}

double RandomFloorHr10(const Pipeline& p, uint64_t seed) {
  Rng rng(seed);
  sgns::SgnsConfig config;
  config.embedding_dim = 16;
  auto model = sgns::SgnsModel::Create(p.corpus.num_locations, config, rng);
  EXPECT_TRUE(model.ok());
  auto hr = eval::EvaluateHitRate(*model, p.examples, {10});
  EXPECT_TRUE(hr.ok());
  return hr->at(10);
}

TEST(EndToEndTest, NonPrivateTrainingBeatsRandomFloor) {
  const Pipeline p = BuildPipeline(404);
  const double floor = RandomFloorHr10(p, 1);

  core::NonPrivateConfig config;
  config.sgns.embedding_dim = 16;
  config.sgns.negatives = 8;
  config.epochs = 6;
  Rng rng(2);
  auto result = core::NonPrivateTrainer(config).Train(p.corpus, rng);
  ASSERT_TRUE(result.ok());
  auto hr = eval::EvaluateHitRate(result->model, p.examples, {5, 10, 20});
  ASSERT_TRUE(hr.ok());
  EXPECT_GT(hr->at(10), 2.0 * floor);
  EXPECT_LE(hr->at(5), hr->at(10));
  EXPECT_LE(hr->at(10), hr->at(20));
}

TEST(EndToEndTest, PrivateTrainingStaysWithinBudgetAndProducesUsableModel) {
  const Pipeline p = BuildPipeline(405);

  core::PlpConfig config;
  config.sgns.embedding_dim = 16;
  config.sgns.negatives = 8;
  config.sampling_probability = 0.2;
  config.grouping_factor = 4;
  config.noise_scale = 2.0;
  config.epsilon_budget = 3.0;
  config.max_steps = 40;
  Rng rng(3);
  auto result = core::PlpTrainer(config).Train(p.corpus, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->steps_executed, 0);
  EXPECT_LE(result->epsilon_spent, config.epsilon_budget);

  // The model is structurally usable downstream.
  auto hr = eval::EvaluateHitRate(result->model, p.examples, {10});
  ASSERT_TRUE(hr.ok());
  EXPECT_GE(hr->at(10), 0.0);
  EXPECT_LE(hr->at(10), 1.0);

  eval::Recommender rec(result->model);
  const std::vector<int32_t> top =
      rec.TopK(p.examples.front().history, 5);
  EXPECT_EQ(top.size(), 5u);
}

TEST(EndToEndTest, CsvRoundTripPreservesTraining) {
  // A filtered dataset has a fully-visited vocabulary, so save/load is an
  // identity (a user-split view would legitimately shrink the vocabulary).
  Rng rng(406);
  data::SyntheticConfig data_config = data::SmallSyntheticConfig();
  data_config.num_users = 150;
  data_config.num_locations = 80;
  auto generated = data::GenerateSyntheticCheckIns(data_config, rng);
  ASSERT_TRUE(generated.ok());
  const data::CheckInDataset dataset = generated->Filter(10, 2);

  const std::string path = testing::TempDir() + "/plp_e2e.csv";
  ASSERT_TRUE(dataset.SaveCsv(path).ok());
  auto loaded = data::CheckInDataset::LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_locations(), dataset.num_locations());
  auto corpus_a = data::BuildCorpus(dataset);
  auto corpus_b = data::BuildCorpus(*loaded);
  ASSERT_TRUE(corpus_a.ok());
  ASSERT_TRUE(corpus_b.ok());
  EXPECT_EQ(corpus_a->num_tokens(), corpus_b->num_tokens());
  // Identical corpora → identical training outcome for the same seed.
  core::NonPrivateConfig config;
  config.sgns.embedding_dim = 8;
  config.epochs = 1;
  Rng ra(7), rb(7);
  auto a = core::NonPrivateTrainer(config).Train(*corpus_a, ra);
  auto b = core::NonPrivateTrainer(config).Train(*corpus_b, rb);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->history.back().mean_loss, b->history.back().mean_loss);
  std::remove(path.c_str());
}

TEST(EndToEndTest, GroupingChangesTrainingDynamicsNotPrivacy) {
  // λ = 1 and λ = 6 must spend the identical privacy budget per step —
  // grouping is free privacy-wise; that is the paper's core insight.
  const Pipeline p = BuildPipeline(407);
  core::PlpConfig config;
  config.sgns.embedding_dim = 8;
  config.sgns.negatives = 4;
  config.sampling_probability = 0.2;
  config.noise_scale = 2.0;
  config.epsilon_budget = 10.0;
  config.max_steps = 5;

  auto run = [&](int32_t lambda, uint64_t seed) {
    core::PlpConfig c = config;
    c.grouping_factor = lambda;
    Rng rng(seed);
    auto r = core::PlpTrainer(c).Train(p.corpus, rng);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  };
  const core::TrainResult a = run(1, 8);
  const core::TrainResult b = run(6, 8);
  EXPECT_EQ(a.steps_executed, b.steps_executed);
  EXPECT_DOUBLE_EQ(a.epsilon_spent, b.epsilon_spent);
}

}  // namespace
}  // namespace plp
