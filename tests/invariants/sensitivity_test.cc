// DP sensitivity invariants of the Gaussian sum query (Algorithm 1 lines
// 7–9): on neighboring datasets — one user removed — the pre-noise sum of
// clipped bucket deltas moves by a bounded l2 distance.
//
// The bound depends on the bucket family:
//   * λ = 1 singleton buckets (the DP-SGD baseline): removing a user
//     removes exactly their bucket, so the sum moves by ≤ C.
//   * ω dedicated buckets per user (each holding one part of one user's
//     stream): removal deletes ω buckets, each clipped to C, so the sum
//     moves by ≤ ω·C — the paper's Section 4.2 sensitivity.
//   * shared buckets (λ > 1 users per bucket): the removed user's bucket
//     is replaced by its delta recomputed without them; both versions are
//     clipped to C, so the worst case is 2·C per touched bucket, i.e.
//     2·ω·C overall. This is the honest bound for the shared-bucket
//     pairing; the ω·C calibration matches the literature's convention
//     where the removed user's contribution is its own query row.
//
// All neighbor comparisons rely on BucketSeed's content keying: buckets
// not containing the removed user keep their exact RNG stream and hence
// their exact delta, so the only movement comes from the touched buckets.
//
// The suite ends with negative tests proving the checker would catch a
// deliberately broken mechanism (clip bound raised, ω ignored).

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "core/bucket_update.h"
#include "core/config.h"
#include "core/grouping.h"
#include "data/corpus.h"
#include "sgns/model.h"
#include "sgns/sparse_delta.h"
#include "support/fixtures.h"
#include "support/seeded_driver.h"

namespace plp::core {
namespace {

// Float slack on top of analytic bounds: sums of ~10² clipped deltas with
// entries of order 1e-1 accumulate rounding well below this.
constexpr double kTol = 1e-9;

PlpConfig SensitivityConfig() {
  PlpConfig config = test::InvariantTrainerConfig();
  // Saturate the clip: a huge local learning rate makes every bucket's
  // raw delta far larger than C, so the assertions below are exercised at
  // the clipping boundary rather than trivially inside it.
  config.local_learning_rate = 5.0;
  config.local_epochs = 2;
  return config;
}

sgns::SgnsModel MakeModel(int32_t num_locations, const PlpConfig& config,
                          uint64_t seed) {
  Rng rng(seed);
  auto model = sgns::SgnsModel::Create(num_locations, config.sgns, rng);
  PLP_CHECK(model.ok());
  return *std::move(model);
}

// The pre-noise Gaussian sum query: Σ over buckets of the clipped bucket
// delta, each bucket trained on its content-keyed RNG (exactly what
// PlpTrainer::Train does per step).
sgns::DenseUpdate SumClippedDeltas(const sgns::SgnsModel& theta,
                                   const std::vector<Bucket>& buckets,
                                   const PlpConfig& config,
                                   int32_t num_locations,
                                   uint64_t step_seed) {
  sgns::DenseUpdate sum(theta);
  for (const Bucket& bucket : buckets) {
    if (bucket.sentences.empty()) continue;
    Rng bucket_rng(BucketSeed(step_seed, bucket));
    const sgns::SparseDelta delta =
        ComputeBucketUpdate(theta, bucket, config, num_locations, bucket_rng);
    delta.AccumulateInto(sum, 1.0);
  }
  return sum;
}

double Distance(const sgns::DenseUpdate& a, const sgns::DenseUpdate& b) {
  double sq = 0.0;
  for (int t = 0; t < sgns::kNumTensors; ++t) {
    const auto xa = a.TensorData(static_cast<sgns::Tensor>(t));
    const auto xb = b.TensorData(static_cast<sgns::Tensor>(t));
    EXPECT_EQ(xa.size(), xb.size());
    for (size_t i = 0; i < xa.size(); ++i) {
      const double d = xa[i] - xb[i];
      sq += d * d;
    }
  }
  return std::sqrt(sq);
}

// The neighboring dataset's bucket list: `removed` is taken out of every
// bucket (their sentences dropped, empty buckets deleted). Requires the
// users[j] ↔ sentences[j] alignment that holds for single-sentence-per-
// user corpora — which is what the fixture builders produce — in both the
// random λ-grouping and the ω-split paths.
std::vector<Bucket> RemoveUser(const std::vector<Bucket>& buckets,
                               int32_t removed) {
  std::vector<Bucket> out;
  for (const Bucket& bucket : buckets) {
    PLP_CHECK_EQ(bucket.users.size(), bucket.sentences.size());
    Bucket kept;
    for (size_t j = 0; j < bucket.users.size(); ++j) {
      if (bucket.users[j] == removed) continue;
      kept.users.push_back(bucket.users[j]);
      kept.sentences.push_back(bucket.sentences[j]);
    }
    if (!kept.sentences.empty()) out.push_back(std::move(kept));
  }
  return out;
}

// ω dedicated buckets per user: the user's single sentence cut into ω
// contiguous parts, each its own bucket. This is the atomic bucket family
// for which the ω·C movement bound is exact.
std::vector<Bucket> DedicatedSplitBuckets(const data::TrainingCorpus& corpus,
                                          const std::vector<int32_t>& users,
                                          int32_t omega) {
  std::vector<Bucket> buckets;
  for (int32_t u : users) {
    const std::vector<int32_t>& sentence = corpus.user_sentences[u][0];
    const size_t part_len =
        (sentence.size() + static_cast<size_t>(omega) - 1) /
        static_cast<size_t>(omega);
    for (int32_t p = 0; p < omega; ++p) {
      const size_t lo = static_cast<size_t>(p) * part_len;
      if (lo >= sentence.size()) break;
      const size_t hi = std::min(sentence.size(), lo + part_len);
      Bucket bucket;
      bucket.users.push_back(u);
      bucket.sentences.emplace_back(sentence.begin() + lo,
                                    sentence.begin() + hi);
      buckets.push_back(std::move(bucket));
    }
  }
  return buckets;
}

TEST(SensitivityTest, BucketDeltaNormNeverExceedsClip) {
  const PlpConfig config = SensitivityConfig();
  test::ForEachSeed(3, /*base=*/0xA11CE, [&](uint64_t seed) {
    const data::TrainingCorpus corpus = test::UniformCorpus(seed, 40, 25);
    const sgns::SgnsModel model = MakeModel(25, config, seed ^ 1);
    Rng rng(seed ^ 2);
    const std::vector<int32_t> sampled =
        PoissonSampleUsers(corpus.num_users(), 0.5, rng);
    const std::vector<Bucket> buckets =
        BuildBuckets(corpus, sampled, config, rng);
    ASSERT_FALSE(buckets.empty());
    double max_norm = 0.0;
    for (const Bucket& bucket : buckets) {
      Rng bucket_rng(BucketSeed(rng.NextU64(), bucket));
      const sgns::SparseDelta delta = ComputeBucketUpdate(
          model, bucket, config, corpus.num_locations, bucket_rng);
      const double norm = delta.TotalNorm();
      EXPECT_LE(norm, config.clip_norm + kTol);
      max_norm = std::max(max_norm, norm);
    }
    // Non-vacuous: the huge learning rate must actually saturate the clip.
    EXPECT_GT(max_norm, 0.9 * config.clip_norm);
  });
}

TEST(SensitivityTest, DpSgdNeighborMovesAtMostClip) {
  // λ = 1, single-gradient: exactly the DP-SGD baseline's query. The
  // neighbor is rebuilt from scratch through the full grouping pipeline —
  // content-keyed bucket seeds make every surviving singleton's delta
  // identical, so the sum moves only by the removed user's clipped delta.
  PlpConfig config = SensitivityConfig();
  config.grouping_factor = 1;
  config.local_update = LocalUpdateMode::kSingleGradient;
  test::ForEachSeed(3, /*base=*/0xD9551, [&](uint64_t seed) {
    const data::TrainingCorpus corpus = test::UniformCorpus(seed, 30, 25);
    const sgns::SgnsModel model = MakeModel(25, config, seed ^ 1);
    Rng sample_rng(seed ^ 2);
    const std::vector<int32_t> sampled =
        PoissonSampleUsers(corpus.num_users(), 0.4, sample_rng);
    if (sampled.size() < 2) return;
    const uint64_t step_seed = 0xFEEDFACEULL ^ seed;

    Rng group_rng(seed ^ 3);
    const std::vector<Bucket> buckets =
        BuildBuckets(corpus, sampled, config, group_rng);
    const sgns::DenseUpdate sum = SumClippedDeltas(
        model, buckets, config, corpus.num_locations, step_seed);

    for (int32_t removed : sampled) {
      std::vector<int32_t> neighbor_sample;
      for (int32_t u : sampled) {
        if (u != removed) neighbor_sample.push_back(u);
      }
      Rng neighbor_group_rng(seed ^ 3);
      const std::vector<Bucket> neighbor_buckets = BuildBuckets(
          corpus, neighbor_sample, config, neighbor_group_rng);
      const sgns::DenseUpdate neighbor_sum =
          SumClippedDeltas(model, neighbor_buckets, config,
                           corpus.num_locations, step_seed);
      EXPECT_LE(Distance(sum, neighbor_sum), config.clip_norm + kTol);
    }
  });
}

TEST(SensitivityTest, SplitUserMovesAtMostOmegaClip) {
  // ω = 2 dedicated buckets: each user's stream is cut into two buckets of
  // their own, so removal deletes both and the sum moves by ≤ ω·C. The
  // movement must also exceed C for some user — that is what makes ω·C
  // (not C) the right calibration when data is split.
  const PlpConfig config = SensitivityConfig();
  const int32_t omega = 2;
  test::ForEachSeed(3, /*base=*/0x5D117, [&](uint64_t seed) {
    const data::TrainingCorpus corpus =
        test::UniformCorpus(seed, 20, 25, /*min_tokens=*/16,
                            /*max_tokens=*/30);
    const sgns::SgnsModel model = MakeModel(25, config, seed ^ 1);
    std::vector<int32_t> users(corpus.user_sentences.size());
    for (size_t u = 0; u < users.size(); ++u) {
      users[u] = static_cast<int32_t>(u);
    }
    const std::vector<Bucket> buckets =
        DedicatedSplitBuckets(corpus, users, omega);
    ASSERT_EQ(buckets.size(), users.size() * static_cast<size_t>(omega));
    const uint64_t step_seed = 0xB0B0ULL ^ seed;
    const sgns::DenseUpdate sum = SumClippedDeltas(
        model, buckets, config, corpus.num_locations, step_seed);

    double max_movement = 0.0;
    for (int32_t removed : users) {
      const std::vector<Bucket> neighbor_buckets =
          RemoveUser(buckets, removed);
      const sgns::DenseUpdate neighbor_sum =
          SumClippedDeltas(model, neighbor_buckets, config,
                           corpus.num_locations, step_seed);
      const double movement = Distance(sum, neighbor_sum);
      EXPECT_LE(movement, omega * config.clip_norm + kTol);
      max_movement = std::max(max_movement, movement);
    }
    // ω matters: some user's removal moves the sum by more than C, so a
    // mechanism that ignored ω and added noise calibrated to C alone
    // would be under-noised. (This is the "ω ignored" detection half of
    // the negative-test requirement.)
    EXPECT_GT(max_movement, config.clip_norm);
  });
}

TEST(SensitivityTest, GroupedNeighborMovesAtMostTwiceOmegaClip) {
  // Shared buckets (λ = 3, the paper's grouped PLP): removing a user
  // changes the one bucket containing them — its delta is recomputed
  // without their sentences. Both the old and new delta are clipped to C,
  // so the movement is at most 2·C (= 2·ω·C with ω = 1). Content keying
  // pins every untouched bucket exactly.
  PlpConfig config = SensitivityConfig();
  config.grouping_factor = 3;
  test::ForEachSeed(3, /*base=*/0x9800D, [&](uint64_t seed) {
    const data::TrainingCorpus corpus = test::UniformCorpus(seed, 36, 25);
    const sgns::SgnsModel model = MakeModel(25, config, seed ^ 1);
    Rng rng(seed ^ 2);
    const std::vector<int32_t> sampled =
        PoissonSampleUsers(corpus.num_users(), 0.5, rng);
    if (sampled.empty()) return;
    const std::vector<Bucket> buckets =
        BuildBuckets(corpus, sampled, config, rng);
    const uint64_t step_seed = 0xC0FFEEULL ^ seed;
    const sgns::DenseUpdate sum = SumClippedDeltas(
        model, buckets, config, corpus.num_locations, step_seed);

    for (int32_t removed : sampled) {
      const std::vector<Bucket> neighbor_buckets =
          RemoveUser(buckets, removed);
      const sgns::DenseUpdate neighbor_sum =
          SumClippedDeltas(model, neighbor_buckets, config,
                           corpus.num_locations, step_seed);
      EXPECT_LE(Distance(sum, neighbor_sum),
                2.0 * config.clip_norm + kTol);
    }
  });
}

TEST(SensitivityTest, NegativeRaisedClipBoundIsDetected) {
  // Deliberately break the mechanism: raise the clip bound 4× while the
  // noise (hypothetically) stays calibrated to the original C. The
  // neighbor-movement checker above must detect this — i.e. some user's
  // removal must move the sum by more than the original C. If this test
  // ever fails, the sensitivity harness has lost its teeth.
  PlpConfig honest = SensitivityConfig();
  honest.grouping_factor = 1;
  PlpConfig broken = honest;
  broken.clip_norm = 4.0 * honest.clip_norm;

  const uint64_t seed = test::SeedAt(0xBADC0DE, 0);
  const data::TrainingCorpus corpus = test::UniformCorpus(seed, 24, 25);
  const sgns::SgnsModel model = MakeModel(25, honest, seed ^ 1);
  Rng rng(seed ^ 2);
  const std::vector<int32_t> sampled =
      PoissonSampleUsers(corpus.num_users(), 0.6, rng);
  ASSERT_GE(sampled.size(), 2u);
  const std::vector<Bucket> buckets =
      BuildBuckets(corpus, sampled, honest, rng);
  const uint64_t step_seed = 0xDEAD10CCULL ^ seed;

  auto max_movement = [&](const PlpConfig& config) {
    const sgns::DenseUpdate sum = SumClippedDeltas(
        model, buckets, config, corpus.num_locations, step_seed);
    double worst = 0.0;
    for (int32_t removed : sampled) {
      const sgns::DenseUpdate neighbor_sum = SumClippedDeltas(
          model, RemoveUser(buckets, removed), config,
          corpus.num_locations, step_seed);
      worst = std::max(worst, Distance(sum, neighbor_sum));
    }
    return worst;
  };

  // Honest mechanism: within C. Broken mechanism: the checker fires.
  EXPECT_LE(max_movement(honest), honest.clip_norm + kTol);
  EXPECT_GT(max_movement(broken), honest.clip_norm);
}

}  // namespace
}  // namespace plp::core
