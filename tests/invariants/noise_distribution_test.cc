// Distributional invariants of the privacy mechanism's randomness:
//
//   * DenseUpdate::AddGaussianNoise / AddGaussianNoiseToTensor draw iid
//     N(0, stddev²) on exactly the coordinates they claim (KS test).
//   * PoissonSampleUsers realizes per-user inclusion probability q
//     (chi-square on the sample-size histogram against Binomial(N, q),
//     z-test on a single user's inclusion rate).
//   * PlpTrainer's end-to-end noise magnitude matches the σ·ω·C
//     calibration of Algorithm 1 line 9, including the ω = 2 doubling.
//
// All statistical assertions run at alpha = 1e-3 per assertion on fixed
// seeds: a passing assertion passes forever; alpha bounds how unlucky the
// frozen draw can be (see tests/support/statistical.h).

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel_ops.h"
#include "common/rng.h"
#include "core/grouping.h"
#include "core/plp_trainer.h"
#include "data/corpus.h"
#include "sgns/model.h"
#include "sgns/sparse_delta.h"
#include "support/fixtures.h"
#include "support/seeded_driver.h"
#include "support/statistical.h"

namespace plp {
namespace {

sgns::SgnsModel SmallModel(int32_t num_locations, int32_t dim,
                           uint64_t seed) {
  sgns::SgnsConfig config;
  config.embedding_dim = dim;
  Rng rng(seed);
  auto model = sgns::SgnsModel::Create(num_locations, config, rng);
  EXPECT_TRUE(model.ok());
  return *std::move(model);
}

std::vector<double> AllCoordinates(const sgns::DenseUpdate& update) {
  std::vector<double> coords;
  for (int t = 0; t < sgns::kNumTensors; ++t) {
    const auto span = update.TensorData(static_cast<sgns::Tensor>(t));
    coords.insert(coords.end(), span.begin(), span.end());
  }
  return coords;
}

TEST(NoiseDistributionTest, DenseNoiseIsCalibratedGaussian) {
  // 40 locations × dim 8 → 680 coordinates, a comfortable KS sample.
  const sgns::SgnsModel model = SmallModel(40, 8, /*seed=*/11);
  const double stddev = 3.7;
  test::ForEachSeed(3, /*base=*/0x6055, [&](uint64_t seed) {
    sgns::DenseUpdate update(model);
    Rng rng(seed);
    update.AddGaussianNoise(rng, stddev);
    const std::vector<double> coords = AllCoordinates(update);
    ASSERT_EQ(coords.size(), 40u * 8u * 2u + 40u);
    EXPECT_TRUE(test::IsGaussianSample(coords, 0.0, stddev));
    EXPECT_TRUE(test::HasMean(coords, 0.0, stddev));
  });
}

TEST(NoiseDistributionTest, BlockSeededNoiseIsCalibratedGaussian) {
  // Regression for the counter-based per-block noise streams the trainer
  // now uses (common/parallel_ops): concatenating independent per-block
  // Rngs must still produce one iid N(0, stddev²) sample over all
  // coordinates — same KS/mean gate as the sequential stream above.
  const sgns::SgnsModel model = SmallModel(40, 8, /*seed=*/11);
  const double stddev = 3.7;
  test::ForEachSeed(3, /*base=*/0x60B10C, [&](uint64_t seed) {
    sgns::DenseUpdate update(model);
    update.AddGaussianNoise(/*noise_seed=*/seed, stddev);
    const std::vector<double> coords = AllCoordinates(update);
    ASSERT_EQ(coords.size(), 40u * 8u * 2u + 40u);
    EXPECT_TRUE(test::IsGaussianSample(coords, 0.0, stddev));
    EXPECT_TRUE(test::HasMean(coords, 0.0, stddev));
  });
}

TEST(NoiseDistributionTest, BlockSeededNoiseSpansBlockBoundaries) {
  // A vector wider than one block: coordinates on both sides of the block
  // boundary come from different Rngs yet must form a single calibrated
  // Gaussian sample with no seam (per-block means included).
  const size_t kSize = 3 * kParallelOpsBlockSize / 2;
  const double stddev = 0.8;
  std::vector<double> values(kSize, 0.0);
  AddGaussianNoiseBlocks(values, test::SeedAt(0xB10C5EED, 0), stddev);
  EXPECT_TRUE(test::IsGaussianSample(values, 0.0, stddev));
  const std::vector<double> first(values.begin(),
                                  values.begin() + kParallelOpsBlockSize);
  const std::vector<double> second(values.begin() + kParallelOpsBlockSize,
                                   values.end());
  EXPECT_TRUE(test::HasMean(first, 0.0, stddev));
  EXPECT_TRUE(test::HasMean(second, 0.0, stddev));
}

TEST(NoiseDistributionTest, PerTensorSeededNoiseTouchesOnlyThatTensor) {
  // Seed-based analogue of the Rng& per-tensor leak check below.
  const sgns::SgnsModel model = SmallModel(60, 6, /*seed=*/12);
  const double stddev = 1.25;
  sgns::DenseUpdate update(model);
  update.AddGaussianNoiseToTensor(sgns::Tensor::kWOut,
                                  test::SeedAt(0x7E4509, 0), stddev);
  for (const sgns::Tensor t : {sgns::Tensor::kWIn, sgns::Tensor::kBias}) {
    for (double v : update.TensorData(t)) EXPECT_EQ(v, 0.0);
  }
  const auto noised = update.TensorData(sgns::Tensor::kWOut);
  const std::vector<double> sample(noised.begin(), noised.end());
  EXPECT_TRUE(test::IsGaussianSample(sample, 0.0, stddev));
}

TEST(NoiseDistributionTest, PerTensorNoiseTouchesOnlyThatTensor) {
  const sgns::SgnsModel model = SmallModel(60, 6, /*seed=*/12);
  const double stddev = 1.25;
  sgns::DenseUpdate update(model);
  Rng rng(test::SeedAt(0x7E4508, 0));
  update.AddGaussianNoiseToTensor(sgns::Tensor::kWOut, rng, stddev);

  // Untouched tensors stay exactly zero — noise is per-tensor, not leaked.
  for (const sgns::Tensor t : {sgns::Tensor::kWIn, sgns::Tensor::kBias}) {
    for (double v : update.TensorData(t)) EXPECT_EQ(v, 0.0);
  }
  const auto noised = update.TensorData(sgns::Tensor::kWOut);
  const std::vector<double> sample(noised.begin(), noised.end());
  EXPECT_TRUE(test::IsGaussianSample(sample, 0.0, stddev));
}

TEST(NoiseDistributionTest, PoissonSamplingRealizesRateQ) {
  // Sample-size histogram over T trials against Binomial(N, q), tail
  // cells merged until every expected count is ≥ 5.
  const int32_t kNumUsers = 50;
  const double q = 0.12;
  const int kTrials = 400;

  Rng rng(test::SeedAt(0x501550, 0));
  std::vector<int> size_counts(kNumUsers + 1, 0);
  std::vector<double> user0_included;
  for (int t = 0; t < kTrials; ++t) {
    const std::vector<int32_t> sample =
        core::PoissonSampleUsers(kNumUsers, q, rng);
    // Structural guarantees: sorted, unique, in range.
    for (size_t i = 0; i < sample.size(); ++i) {
      ASSERT_GE(sample[i], 0);
      ASSERT_LT(sample[i], kNumUsers);
      if (i > 0) {
        ASSERT_LT(sample[i - 1], sample[i]);
      }
    }
    ++size_counts[sample.size()];
    user0_included.push_back(
        !sample.empty() && sample.front() == 0 ? 1.0 : 0.0);
  }

  // Binomial(N, q) pmf via log-gamma, scaled to expected counts.
  std::vector<double> expected_all(kNumUsers + 1);
  for (int k = 0; k <= kNumUsers; ++k) {
    const double log_pmf = std::lgamma(kNumUsers + 1.0) -
                           std::lgamma(k + 1.0) -
                           std::lgamma(kNumUsers - k + 1.0) +
                           k * std::log(q) +
                           (kNumUsers - k) * std::log1p(-q);
    expected_all[k] = kTrials * std::exp(log_pmf);
  }

  // Merge from both tails into the adjacent cell until every cell's
  // expectation is ≥ 5 (standard chi-square validity rule).
  int lo = 0, hi = kNumUsers;
  while (lo < hi && expected_all[lo] < 5.0) {
    expected_all[lo + 1] += expected_all[lo];
    size_counts[lo + 1] += size_counts[lo];
    ++lo;
  }
  while (hi > lo && expected_all[hi] < 5.0) {
    expected_all[hi - 1] += expected_all[hi];
    size_counts[hi - 1] += size_counts[hi];
    --hi;
  }
  std::vector<double> observed, expected;
  for (int k = lo; k <= hi; ++k) {
    observed.push_back(static_cast<double>(size_counts[k]));
    expected.push_back(expected_all[k]);
  }
  ASSERT_GE(observed.size(), 4u);
  EXPECT_TRUE(test::MatchesExpectedCounts(observed, expected));

  // A single user's inclusion indicator has mean q, stddev √(q(1−q)).
  EXPECT_TRUE(
      test::HasMean(user0_included, q, std::sqrt(q * (1.0 - q))));
}

// A corpus whose buckets produce *zero* training pairs: every user holds a
// single token, and cross_user_windows = false keeps the window inside
// sentences. The trainer's applied update is then pure noise, exposing the
// calibration σ·ω·C directly in noisy_update_norm.
class TrainerNoiseCalibrationTest : public ::testing::Test {
 protected:
  // Mean over steps of ‖ĝ_t‖ · denominator, which for a pure-noise run
  // concentrates around σ·ω·C·√D (the mean norm of a D-dimensional
  // iid Gaussian; the χ_D correction 1 − 1/(4D) is < 0.05% here).
  static double MeanNoiseNorm(int32_t split_factor, uint64_t seed) {
    const int32_t kUsers = 60;
    const int32_t kLocations = 30;
    const data::TrainingCorpus corpus = test::UniformCorpus(
        seed, kUsers, kLocations, /*min_tokens=*/1, /*max_tokens=*/1);

    core::PlpConfig config;
    config.sgns.embedding_dim = 8;
    config.sampling_probability = 0.5;
    config.grouping_factor = 4;
    config.split_factor = split_factor;
    config.noise_scale = 2.0;
    config.clip_norm = 0.5;
    config.epsilon_budget = 1e9;
    config.max_steps = 40;
    config.cross_user_windows = false;
    config.server_optimizer = "fixed_step";

    core::PlpTrainer trainer(config);
    Rng rng(seed ^ 0xF00D);
    auto result = trainer.Train(corpus, rng);
    EXPECT_TRUE(result.ok());
    const double denominator =
        config.sampling_probability * kUsers / config.grouping_factor;
    double total = 0.0;
    for (const core::StepMetrics& m : result->history) {
      // Pure noise: the pre-noise signal must be exactly zero.
      EXPECT_EQ(m.signal_norm, 0.0);
      total += m.noisy_update_norm * denominator;
    }
    return total / static_cast<double>(result->history.size());
  }

  // D = total parameter coordinates: two L×dim matrices plus L biases.
  static constexpr double kCoords = 30.0 * 8.0 * 2.0 + 30.0;
};

TEST_F(TrainerNoiseCalibrationTest, NoiseNormMatchesSigmaOmegaC) {
  // σ = 2, ω = 1, C = 0.5 → per-coordinate stddev 1.0; the expected norm
  // is √D up to χ_D concentration. Averaged over 40 steps, the relative
  // sampling error is ≈ 0.5%, so a ±4% band is both tight and stable.
  const double mean_norm = MeanNoiseNorm(/*split_factor=*/1,
                                         test::SeedAt(0xCA11B, 0));
  const double expected = 2.0 * 1.0 * 0.5 * std::sqrt(kCoords);
  EXPECT_NEAR(mean_norm, expected, 0.04 * expected);
}

TEST_F(TrainerNoiseCalibrationTest, SplitFactorDoublesNoise) {
  // Same run with configured ω = 2: sensitivity ω·C doubles the noise.
  // (Single-token users still land in one bucket, but calibration uses
  // the *configured* ω — the guarantee must hold for the worst case.)
  const double mean_norm = MeanNoiseNorm(/*split_factor=*/2,
                                         test::SeedAt(0xCA11B, 1));
  const double expected = 2.0 * 2.0 * 0.5 * std::sqrt(kCoords);
  EXPECT_NEAR(mean_norm, expected, 0.04 * expected);
}

}  // namespace
}  // namespace plp
