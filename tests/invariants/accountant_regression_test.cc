// Regression pins for the RDP moments accountant: epsilons for the
// paper's parameter regimes against reference values computed with an
// independent implementation of the subsampled-Gaussian RDP bound
// (Mironov et al.'s log-space binomial formula over DefaultRdpOrders,
// with both the classic and the improved RDP→(ε,δ) conversions),
// evaluated in double precision outside this codebase.
//
// These values are load-bearing: the training loop stops when the
// accountant crosses the budget, so a silent accounting change alters
// every experiment's step count. Any legitimate change to the accountant
// must re-derive these constants and say why.

#include <vector>

#include <gtest/gtest.h>

#include "privacy/rdp_accountant.h"

namespace plp::privacy {
namespace {

double Epsilon(double q, double sigma, int64_t steps, double delta,
               RdpConversion conversion) {
  RdpAccountant accountant;
  const Status status = accountant.AddSteps(q, sigma, steps);
  EXPECT_TRUE(status.ok()) << status.ToString();
  auto eps = accountant.GetEpsilon(delta, conversion);
  EXPECT_TRUE(eps.ok());
  return *eps;
}

struct Reference {
  double q;
  double sigma;
  int64_t steps;
  double delta;
  double classic;
  double improved;
};

TEST(AccountantRegressionTest, PinnedEpsilons) {
  // First four rows: the paper's Section 5.1 configuration
  // (q = 0.06, σ = 2.5, δ = 2e-4) at increasing step counts; the last
  // classic value ≈ 6.3 at T = 2719 is the regime of Figure 4. Remaining
  // rows probe small-q/small-δ, the invariant-suite config, and a
  // large-q stress point.
  const std::vector<Reference> kReferences = {
      {0.06, 2.5, 1, 2e-4, 0.278175697093, 0.141463324106},
      {0.06, 2.5, 100, 2e-4, 1.153362432871, 0.876072701518},
      {0.06, 2.5, 1000, 2e-4, 3.657955980983, 3.114898558582},
      {0.06, 2.5, 2719, 2e-4, 6.306241524765, 5.556461331940},
      {0.01, 1.0, 100, 1e-5, 1.617281887460, 1.224845779636},
      {0.25, 2.0, 50, 2e-4, 4.767534134988, 4.065238469449},
      {0.5, 3.0, 500, 1e-6, 28.293737100269, 26.907442739149},
  };
  for (const Reference& ref : kReferences) {
    SCOPED_TRACE(::testing::Message()
                 << "q=" << ref.q << " sigma=" << ref.sigma
                 << " steps=" << ref.steps << " delta=" << ref.delta);
    EXPECT_NEAR(Epsilon(ref.q, ref.sigma, ref.steps, ref.delta,
                        RdpConversion::kClassic),
                ref.classic, 5e-6);
    EXPECT_NEAR(Epsilon(ref.q, ref.sigma, ref.steps, ref.delta,
                        RdpConversion::kImproved),
                ref.improved, 5e-6);
  }
}

TEST(AccountantRegressionTest, EpsilonIncreasesWithSteps) {
  double prev = 0.0;
  for (int64_t steps : {1, 10, 100, 1000, 5000}) {
    const double eps =
        Epsilon(0.06, 2.5, steps, 2e-4, RdpConversion::kClassic);
    EXPECT_GT(eps, prev);
    prev = eps;
  }
}

TEST(AccountantRegressionTest, EpsilonDecreasesWithSigma) {
  double prev = 1e300;
  for (double sigma : {1.0, 1.5, 2.5, 4.0, 8.0}) {
    const double eps =
        Epsilon(0.06, sigma, 500, 2e-4, RdpConversion::kClassic);
    EXPECT_LT(eps, prev);
    prev = eps;
  }
}

TEST(AccountantRegressionTest, EpsilonIncreasesWithSamplingRate) {
  double prev = 0.0;
  for (double q : {0.01, 0.06, 0.12, 0.25, 0.5}) {
    const double eps = Epsilon(q, 2.5, 500, 2e-4, RdpConversion::kClassic);
    EXPECT_GT(eps, prev);
    prev = eps;
  }
}

TEST(AccountantRegressionTest, ImprovedConversionIsTighter) {
  // The improved conversion must never be worse than the classic one —
  // that advantage is why it buys ~40% more steps at the same budget.
  for (int64_t steps : {1, 50, 1000}) {
    for (double q : {0.01, 0.06, 0.25}) {
      const double classic =
          Epsilon(q, 2.5, steps, 2e-4, RdpConversion::kClassic);
      const double improved =
          Epsilon(q, 2.5, steps, 2e-4, RdpConversion::kImproved);
      EXPECT_LE(improved, classic);
    }
  }
}

TEST(AccountantRegressionTest, RestoredAccountantHitsThePinnedEpsilons) {
  // Checkpoint soundness against the same external reference values as
  // PinnedEpsilons: serialize the paper-regime accountant at step 500,
  // restore it, continue to step 1000 — the restored trajectory must land
  // on the independently-computed ε(1000), and bit-identical to an
  // accountant that was never interrupted.
  RdpAccountant uninterrupted;
  ASSERT_TRUE(uninterrupted.AddSteps(0.06, 2.5, 500).ok());

  ByteWriter writer;
  uninterrupted.SaveState(writer);
  ByteReader reader(writer.str());
  auto restored = RdpAccountant::Restore(reader);
  ASSERT_TRUE(restored.ok());

  ASSERT_TRUE(uninterrupted.AddSteps(0.06, 2.5, 500).ok());
  ASSERT_TRUE(restored->AddSteps(0.06, 2.5, 500).ok());
  EXPECT_EQ(restored->total_steps(), 1000);

  EXPECT_NEAR(restored->GetEpsilon(2e-4, RdpConversion::kClassic).value(),
              3.657955980983, 5e-6);
  EXPECT_NEAR(restored->GetEpsilon(2e-4, RdpConversion::kImproved).value(),
              3.114898558582, 5e-6);
  EXPECT_EQ(restored->GetEpsilon(2e-4).value(),
            uninterrupted.GetEpsilon(2e-4).value());
}

TEST(AccountantRegressionTest, PrecomputedStepsMatchAddSteps) {
  // The bulk path (StepRdp + AddPrecomputedSteps) must agree exactly with
  // step-by-step accumulation — the trainer's ledger relies on it.
  RdpAccountant incremental;
  ASSERT_TRUE(incremental.AddSteps(0.06, 2.5, 250).ok());

  RdpAccountant bulk;
  const std::vector<double> step_rdp = bulk.StepRdp(0.06, 2.5);
  bulk.AddPrecomputedSteps(step_rdp, 250);

  auto eps_a = incremental.GetEpsilon(2e-4);
  auto eps_b = bulk.GetEpsilon(2e-4);
  ASSERT_TRUE(eps_a.ok());
  ASSERT_TRUE(eps_b.ok());
  EXPECT_DOUBLE_EQ(*eps_a, *eps_b);
}

}  // namespace
}  // namespace plp::privacy
