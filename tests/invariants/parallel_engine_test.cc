// Bitwise thread-count determinism of the dense step engine
// (common/parallel_ops + sgns/sparse_delta):
//
//   * Counter-based block noise, Zero, Scale and Norm produce identical
//     bits whether run serially or on pools of 1, 2, or 8 threads — the
//     dense-phase counterpart of the BucketSeed guarantee for local
//     training.
//   * AccumulateDeltas (the sharded parallel reduction of bucket deltas)
//     is bitwise equal to the serial accumulate loop for any pool size,
//     with overlapping and disjoint row sets, non-unit scale, and null
//     entries.
//
// Everything here compares the same code against itself across schedules,
// so the assertions are exact (EXPECT_EQ on doubles), not tolerances.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel_ops.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "sgns/model.h"
#include "sgns/sparse_delta.h"
#include "support/fixtures.h"

namespace plp {
namespace {

const size_t kPoolSizes[] = {1, 2, 8};

sgns::SgnsModel SmallModel(int32_t num_locations, int32_t dim,
                           uint64_t seed) {
  sgns::SgnsConfig config;
  config.embedding_dim = dim;
  Rng rng(seed);
  auto model = sgns::SgnsModel::Create(num_locations, config, rng);
  EXPECT_TRUE(model.ok());
  return *std::move(model);
}

std::vector<double> Coordinates(const sgns::DenseUpdate& update) {
  std::vector<double> coords;
  for (int t = 0; t < sgns::kNumTensors; ++t) {
    const auto span = update.TensorData(static_cast<sgns::Tensor>(t));
    coords.insert(coords.end(), span.begin(), span.end());
  }
  return coords;
}

void ExpectBitwiseEqual(const std::vector<double>& a,
                        const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " at coordinate " << i;
  }
}

TEST(ParallelNoiseTest, BlockNoiseBitwiseIdenticalAcrossPools) {
  // Several blocks plus a ragged tail, so work really is split.
  const size_t kSize = 3 * kParallelOpsBlockSize + 1234;
  const uint64_t kStreamSeed = 0xB10C0FF5EEDULL;

  std::vector<double> serial(kSize, 0.0);
  AddGaussianNoiseBlocks(serial, kStreamSeed, 1.5, /*pool=*/nullptr);

  for (size_t threads : kPoolSizes) {
    ThreadPool pool(threads);
    std::vector<double> pooled(kSize, 0.0);
    AddGaussianNoiseBlocks(pooled, kStreamSeed, 1.5, &pool);
    ExpectBitwiseEqual(serial, pooled, "block noise");
  }
}

TEST(ParallelNoiseTest, BlockNoiseDependsOnStreamSeedOnly) {
  // Same seed → same stream; different seed → a different stream. (Guards
  // against accidentally keying the stream on scheduling state.)
  const size_t kSize = kParallelOpsBlockSize + 17;
  std::vector<double> a(kSize, 0.0), b(kSize, 0.0), c(kSize, 0.0);
  ThreadPool pool(4);
  AddGaussianNoiseBlocks(a, /*stream_seed=*/42, 1.0, &pool);
  AddGaussianNoiseBlocks(b, /*stream_seed=*/42, 1.0, /*pool=*/nullptr);
  AddGaussianNoiseBlocks(c, /*stream_seed=*/43, 1.0, &pool);
  ExpectBitwiseEqual(a, b, "same-seed streams");
  size_t differing = 0;
  for (size_t i = 0; i < kSize; ++i) {
    if (a[i] != c[i]) ++differing;
  }
  EXPECT_GT(differing, kSize / 2);
}

TEST(ParallelNoiseTest, DenseUpdateOpsBitwiseIdenticalAcrossPools) {
  // The full dense-phase pipeline the trainer runs on a DenseUpdate:
  // Zero → seeded noise → Scale → Norm, serial vs pooled.
  const sgns::SgnsModel model = SmallModel(300, 32, /*seed=*/7);
  const uint64_t kNoiseSeed = 0xDE7E12317157ULL;

  sgns::DenseUpdate serial(model);
  serial.Zero();
  serial.AddGaussianNoise(kNoiseSeed, 2.5);
  serial.Scale(1.0 / 3.0);
  const double serial_norm = serial.Norm();
  const std::vector<double> serial_coords = Coordinates(serial);

  for (size_t threads : kPoolSizes) {
    ThreadPool pool(threads);
    sgns::DenseUpdate pooled(model);
    pooled.Zero(&pool);
    pooled.AddGaussianNoise(kNoiseSeed, 2.5, &pool);
    pooled.Scale(1.0 / 3.0, &pool);
    ASSERT_EQ(pooled.Norm(&pool), serial_norm) << threads << " threads";
    ExpectBitwiseEqual(serial_coords, Coordinates(pooled), "dense ops");
  }
}

TEST(ParallelNoiseTest, PerTensorSeededNoiseMatchesAllTensorStream) {
  // The per-tensor overload must seed the same lane the all-tensor
  // overload derives, so the two compose to identical bits.
  const sgns::SgnsModel model = SmallModel(80, 16, /*seed=*/9);
  const uint64_t kNoiseSeed = 0x9E3779B9ULL;

  sgns::DenseUpdate all(model);
  all.AddGaussianNoise(kNoiseSeed, 1.0);
  sgns::DenseUpdate per_tensor(model);
  ThreadPool pool(2);
  for (int ti = 0; ti < sgns::kNumTensors; ++ti) {
    per_tensor.AddGaussianNoiseToTensor(static_cast<sgns::Tensor>(ti),
                                        kNoiseSeed, 1.0, &pool);
  }
  ExpectBitwiseEqual(Coordinates(all), Coordinates(per_tensor),
                     "per-tensor composition");
}

// Builds a delta touching a pseudo-random subset of rows; different
// `salt`s give different (overlapping) row sets and values.
sgns::SparseDelta MakeDelta(int32_t num_locations, int32_t dim,
                            uint64_t salt) {
  sgns::SparseDelta delta(dim);
  Rng rng(salt);
  const int32_t touched = 1 + static_cast<int32_t>(
                                  rng.UniformInt(uint64_t{40}));
  for (int32_t i = 0; i < touched; ++i) {
    const int32_t row = static_cast<int32_t>(
        rng.UniformInt(static_cast<uint64_t>(num_locations)));
    std::span<double> in = delta.Row(sgns::Tensor::kWIn, row);
    for (double& v : in) v += rng.Uniform(-1.0, 1.0);
    std::span<double> out = delta.Row(sgns::Tensor::kWOut, row);
    for (double& v : out) v += rng.Uniform(-1.0, 1.0);
    delta.AddBias(row, rng.Uniform(-0.5, 0.5));
  }
  return delta;
}

TEST(ParallelReductionTest, AccumulateDeltasBitwiseEqualsSerialLoop) {
  const int32_t kLocations = 150;
  const int32_t kDim = 24;
  const sgns::SgnsModel model = SmallModel(kLocations, kDim, /*seed=*/21);
  const double kScale = 0.75;

  std::vector<sgns::SparseDelta> deltas;
  std::vector<const sgns::SparseDelta*> ptrs;
  for (uint64_t salt = 0; salt < 25; ++salt) {
    deltas.push_back(MakeDelta(kLocations, kDim, 0x5A17 + salt));
  }
  for (const auto& d : deltas) ptrs.push_back(&d);

  // Oracle: the serial accumulate loop in bucket order.
  sgns::DenseUpdate serial(model);
  for (const auto& d : deltas) d.AccumulateInto(serial, kScale);
  const std::vector<double> serial_coords = Coordinates(serial);

  // Null pool must match too (it *is* the serial loop).
  sgns::DenseUpdate no_pool(model);
  sgns::AccumulateDeltas(ptrs, kScale, no_pool, /*pool=*/nullptr);
  ExpectBitwiseEqual(serial_coords, Coordinates(no_pool), "null pool");

  for (size_t threads : kPoolSizes) {
    ThreadPool pool(threads);
    sgns::DenseUpdate pooled(model);
    sgns::AccumulateDeltas(ptrs, kScale, pooled, &pool);
    ExpectBitwiseEqual(serial_coords, Coordinates(pooled),
                       "sharded reduction");
  }
}

TEST(ParallelReductionTest, AccumulateDeltasSkipsNullEntries) {
  const int32_t kLocations = 60;
  const int32_t kDim = 8;
  const sgns::SgnsModel model = SmallModel(kLocations, kDim, /*seed=*/33);

  const sgns::SparseDelta a = MakeDelta(kLocations, kDim, 1);
  const sgns::SparseDelta b = MakeDelta(kLocations, kDim, 2);
  const std::vector<const sgns::SparseDelta*> with_nulls = {nullptr, &a,
                                                            nullptr, &b};
  sgns::DenseUpdate expected(model);
  a.AccumulateInto(expected, 1.0);
  b.AccumulateInto(expected, 1.0);

  ThreadPool pool(4);
  sgns::DenseUpdate actual(model);
  sgns::AccumulateDeltas(with_nulls, 1.0, actual, &pool);
  ExpectBitwiseEqual(Coordinates(expected), Coordinates(actual),
                     "null entries");

  // All-null input is a no-op.
  sgns::DenseUpdate untouched(model);
  const std::vector<const sgns::SparseDelta*> all_null = {nullptr, nullptr};
  sgns::AccumulateDeltas(all_null, 1.0, untouched, &pool);
  for (double v : Coordinates(untouched)) ASSERT_EQ(v, 0.0);
}

TEST(ParallelReductionTest, EmptyDeltaListLeavesSumUntouched) {
  const sgns::SgnsModel model = SmallModel(10, 4, /*seed=*/44);
  sgns::DenseUpdate sum(model);
  sum.AddGaussianNoise(/*noise_seed=*/5, 1.0);
  const std::vector<double> before = Coordinates(sum);
  sgns::AccumulateDeltas({}, 1.0, sum, /*pool=*/nullptr);
  ExpectBitwiseEqual(before, Coordinates(sum), "empty list");
}

}  // namespace
}  // namespace plp
