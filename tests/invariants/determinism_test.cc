// Thread-count determinism regressions: for a fixed seed, training is
// bitwise-identical for ANY num_threads — including the sequential path —
// because every bucket trains on an Rng keyed by the step seed and the
// bucket's content, never by scheduling (see core/bucket_update.h).
// These tests pin that guarantee across the trainer's code paths (random
// grouping, equal-frequency grouping, ω-split, DP-SGD baseline), plus the
// clipping/grouping edge cases: steps whose Poisson sample is empty, a
// single giant user, and λ larger than the sampled user count.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/bucket_update.h"
#include "core/config.h"
#include "core/grouping.h"
#include "core/plp_trainer.h"
#include "data/corpus.h"
#include "data/fixtures.h"
#include "sgns/model.h"
#include "support/fixtures.h"
#include "support/seeded_driver.h"

namespace plp::core {
namespace {

// Bitwise equality of every coordinate of every tensor. EXPECT_EQ on
// doubles is exact — that is the point.
void ExpectBitwiseEqual(const sgns::SgnsModel& a, const sgns::SgnsModel& b) {
  for (int t = 0; t < sgns::kNumTensors; ++t) {
    const auto xa = a.TensorData(static_cast<sgns::Tensor>(t));
    const auto xb = b.TensorData(static_cast<sgns::Tensor>(t));
    ASSERT_EQ(xa.size(), xb.size());
    int mismatches = 0;
    for (size_t i = 0; i < xa.size(); ++i) mismatches += xa[i] != xb[i];
    EXPECT_EQ(mismatches, 0) << "tensor " << t << " differs";
  }
}

PlpConfig DeterminismConfig() {
  PlpConfig config = test::FastTrainerConfig();
  config.sampling_probability = 0.3;
  config.grouping_factor = 2;
  config.epsilon_budget = 1e9;
  config.max_steps = 8;
  return config;
}

TrainResult TrainWithThreads(const data::TrainingCorpus& corpus,
                             PlpConfig config, int32_t threads,
                             uint64_t seed) {
  config.num_threads = threads;
  Rng rng(seed);
  auto result = PlpTrainer(config).Train(corpus, rng);
  EXPECT_TRUE(result.ok());
  return *std::move(result);
}

TEST(DeterminismTest, BitwiseIdenticalAcrossThreadCounts) {
  const data::TrainingCorpus corpus = test::ClusteredCorpus();
  const PlpConfig config = DeterminismConfig();
  test::ForEachSeed(2, /*base=*/0xDE7E12, [&](uint64_t seed) {
    const TrainResult sequential = TrainWithThreads(corpus, config, 1, seed);
    for (int32_t threads : {4, 8}) {
      const TrainResult parallel =
          TrainWithThreads(corpus, config, threads, seed);
      ASSERT_EQ(parallel.history.size(), sequential.history.size());
      ExpectBitwiseEqual(sequential.model, parallel.model);
      for (size_t i = 0; i < sequential.history.size(); ++i) {
        EXPECT_EQ(sequential.history[i].signal_norm,
                  parallel.history[i].signal_norm);
        EXPECT_EQ(sequential.history[i].noisy_update_norm,
                  parallel.history[i].noisy_update_norm);
      }
    }
  });
}

TEST(DeterminismTest, SplitPathBitwiseIdenticalAcrossThreadCounts) {
  const data::TrainingCorpus corpus = test::ClusteredCorpus();
  PlpConfig config = DeterminismConfig();
  config.split_factor = 2;
  const uint64_t seed = test::SeedAt(0x5B117D, 0);
  const TrainResult sequential = TrainWithThreads(corpus, config, 1, seed);
  for (int32_t threads : {4, 8}) {
    ExpectBitwiseEqual(sequential.model,
                       TrainWithThreads(corpus, config, threads, seed).model);
  }
}

TEST(DeterminismTest, EqualFrequencyPathBitwiseIdenticalAcrossThreadCounts) {
  const data::TrainingCorpus corpus = test::ClusteredCorpus();
  PlpConfig config = DeterminismConfig();
  config.grouping = GroupingKind::kEqualFrequency;
  const uint64_t seed = test::SeedAt(0xEFD, 0);
  const TrainResult sequential = TrainWithThreads(corpus, config, 1, seed);
  for (int32_t threads : {4, 8}) {
    ExpectBitwiseEqual(sequential.model,
                       TrainWithThreads(corpus, config, threads, seed).model);
  }
}

TEST(DeterminismTest, DpSgdBaselineBitwiseIdenticalAcrossThreadCounts) {
  const data::TrainingCorpus corpus = test::ClusteredCorpus();
  PlpConfig config = DeterminismConfig();
  const uint64_t seed = test::SeedAt(0xD950D, 0);

  auto train = [&](int32_t threads) {
    PlpConfig c = config;
    c.num_threads = threads;
    Rng rng(seed);
    auto result = DpSgdTrainer(c).Train(corpus, rng);
    EXPECT_TRUE(result.ok());
    return *std::move(result);
  };
  const TrainResult sequential = train(1);
  for (int32_t threads : {4, 8}) {
    ExpectBitwiseEqual(sequential.model, train(threads).model);
  }
}

TEST(DeterminismTest, EmptySampleStepsKeepRunsAligned) {
  // With q = 0.02 over 20 users most steps sample nobody. Empty steps
  // must (a) run — pure noise is still applied, the budget is still
  // spent — and (b) not desynchronize the noise stream: the step seed is
  // drawn even when no bucket exists, so runs stay bitwise-aligned.
  const data::TrainingCorpus corpus = test::UniformCorpus(
      test::SeedAt(0xE5A, 0), /*num_users=*/20, /*num_locations=*/15);
  PlpConfig config = DeterminismConfig();
  config.sampling_probability = 0.02;
  config.max_steps = 15;

  const uint64_t seed = test::SeedAt(0xE5A, 1);
  const TrainResult a = TrainWithThreads(corpus, config, 1, seed);
  ASSERT_EQ(a.history.size(), 15u);
  int empty_steps = 0;
  for (const StepMetrics& m : a.history) {
    if (m.sampled_users == 0) {
      ++empty_steps;
      EXPECT_EQ(m.num_buckets, 0);
      EXPECT_EQ(m.signal_norm, 0.0);
      // Noise is added regardless — an observer cannot tell an empty
      // sample from a quiet one.
      EXPECT_GT(m.noisy_update_norm, 0.0);
    }
  }
  EXPECT_GT(empty_steps, 0) << "fixture no longer produces empty samples; "
                               "lower q or reseed";
  ExpectBitwiseEqual(a.model, TrainWithThreads(corpus, config, 4, seed).model);
}

TEST(DeterminismTest, GiantUserIsClippedLikeAnyOther) {
  // One user holds 2000 tokens, 200× the others. User-level DP demands
  // their influence on each step's sum is still ≤ ω·C = C; the per-step
  // signal norm is therefore bounded by |H|·C no matter how heavy the
  // bucket. Also a determinism check on a very lopsided workload.
  const data::TrainingCorpus corpus = data::MakeGiantUserCorpus(
      test::SeedAt(0x61A47, 0), /*num_users=*/10, /*num_locations=*/25,
      /*giant_tokens=*/2000);
  PlpConfig config = DeterminismConfig();
  config.sampling_probability = 0.8;
  config.grouping_factor = 1;
  config.local_learning_rate = 5.0;  // saturate the clip
  config.max_steps = 4;

  const uint64_t seed = test::SeedAt(0x61A47, 1);
  const TrainResult result = TrainWithThreads(corpus, config, 1, seed);
  for (const StepMetrics& m : result.history) {
    EXPECT_LE(m.signal_norm,
              static_cast<double>(m.num_buckets) * config.clip_norm + 1e-9);
  }
  ExpectBitwiseEqual(result.model,
                     TrainWithThreads(corpus, config, 8, seed).model);
}

TEST(DeterminismTest, LambdaExceedingSampleFormsOneBucket) {
  const data::TrainingCorpus corpus =
      test::UniformCorpus(test::SeedAt(0x1A3BDA, 0), 12, 15);
  PlpConfig config = DeterminismConfig();
  config.grouping_factor = 50;  // λ far above any possible sample

  // Direct grouping: every sampled user lands in the single bucket.
  const std::vector<int32_t> sampled = {1, 4, 9};
  for (const GroupingKind kind :
       {GroupingKind::kRandom, GroupingKind::kEqualFrequency}) {
    PlpConfig c = config;
    c.grouping = kind;
    Rng rng(7);
    const std::vector<Bucket> buckets =
        BuildBuckets(corpus, sampled, c, rng);
    ASSERT_EQ(buckets.size(), 1u);
    EXPECT_EQ(buckets[0].users.size(), sampled.size());
  }

  // End to end: at most one bucket per step, and still deterministic.
  config.sampling_probability = 0.4;
  const uint64_t seed = test::SeedAt(0x1A3BDA, 1);
  const TrainResult result = TrainWithThreads(corpus, config, 1, seed);
  for (const StepMetrics& m : result.history) {
    EXPECT_LE(m.num_buckets, 1);
    EXPECT_EQ(m.num_buckets, m.sampled_users > 0 ? 1 : 0);
  }
  ExpectBitwiseEqual(result.model,
                     TrainWithThreads(corpus, config, 4, seed).model);
}

TEST(DeterminismTest, BucketSeedIsContentKeyed) {
  Bucket a;
  a.users = {3, 7};
  a.sentences = {{1, 2, 3}, {4, 5}};
  Bucket same = a;

  Bucket different_user = a;
  different_user.users = {3, 8};
  Bucket different_shape = a;
  different_shape.sentences = {{1, 2, 3, 4, 5}};

  const uint64_t step_seed = 0x1234;
  // Same content → same seed, regardless of where the bucket sits in the
  // step's bucket list (the function never sees an index).
  EXPECT_EQ(BucketSeed(step_seed, a), BucketSeed(step_seed, same));
  EXPECT_NE(BucketSeed(step_seed, a), BucketSeed(step_seed, different_user));
  EXPECT_NE(BucketSeed(step_seed, a), BucketSeed(step_seed, different_shape));
  EXPECT_NE(BucketSeed(step_seed, a), BucketSeed(step_seed ^ 1, a));
}

}  // namespace
}  // namespace plp::core
