#include "core/grouping.h"

#include <numeric>
#include <set>

#include <gtest/gtest.h>

namespace plp::core {
namespace {

data::TrainingCorpus MakeCorpus(const std::vector<int>& tokens_per_user) {
  data::TrainingCorpus corpus;
  corpus.num_locations = 100;
  int32_t next_token = 0;
  for (int count : tokens_per_user) {
    std::vector<int32_t> sentence;
    for (int i = 0; i < count; ++i) {
      sentence.push_back(next_token++ % corpus.num_locations);
    }
    corpus.user_sentences.push_back({std::move(sentence)});
  }
  return corpus;
}

PlpConfig BaseConfig(int32_t lambda) {
  PlpConfig config;
  config.grouping_factor = lambda;
  return config;
}

TEST(PoissonSampleTest, ProbabilityZeroAndOne) {
  Rng rng(1);
  EXPECT_TRUE(PoissonSampleUsers(100, 0.0, rng).empty());
  EXPECT_EQ(PoissonSampleUsers(100, 1.0, rng).size(), 100u);
}

TEST(PoissonSampleTest, ExpectedSize) {
  Rng rng(2);
  int64_t total = 0;
  const int reps = 2000;
  for (int i = 0; i < reps; ++i) {
    total += static_cast<int64_t>(PoissonSampleUsers(100, 0.06, rng).size());
  }
  EXPECT_NEAR(static_cast<double>(total) / reps, 6.0, 0.3);
}

TEST(PoissonSampleTest, SampleSizeVaries) {
  // Poisson (Bernoulli-per-user) sampling: the size is a random variable,
  // not a constant — the moments accountant depends on this.
  Rng rng(3);
  std::set<size_t> sizes;
  for (int i = 0; i < 100; ++i) {
    sizes.insert(PoissonSampleUsers(200, 0.1, rng).size());
  }
  EXPECT_GT(sizes.size(), 3u);
}

TEST(RandomGroupingTest, BucketSizesAreLambda) {
  const data::TrainingCorpus corpus = MakeCorpus(std::vector<int>(20, 5));
  std::vector<int32_t> sampled(17);
  std::iota(sampled.begin(), sampled.end(), 0);
  Rng rng(4);
  const auto buckets = BuildBuckets(corpus, sampled, BaseConfig(4), rng);
  ASSERT_EQ(buckets.size(), 5u);  // ceil(17/4)
  for (size_t i = 0; i + 1 < buckets.size(); ++i) {
    EXPECT_EQ(buckets[i].users.size(), 4u);
  }
  EXPECT_EQ(buckets.back().users.size(), 1u);
}

TEST(RandomGroupingTest, EveryUserExactlyOnce) {
  const data::TrainingCorpus corpus = MakeCorpus(std::vector<int>(30, 3));
  std::vector<int32_t> sampled = {0, 3, 5, 7, 11, 13, 17, 19, 23, 29};
  Rng rng(5);
  const auto buckets = BuildBuckets(corpus, sampled, BaseConfig(3), rng);
  std::multiset<int32_t> seen;
  for (const Bucket& b : buckets) {
    seen.insert(b.users.begin(), b.users.end());
  }
  EXPECT_EQ(seen.size(), sampled.size());
  for (int32_t u : sampled) EXPECT_EQ(seen.count(u), 1u);
  EXPECT_EQ(RealizedSplitFactor(buckets), 1);
}

TEST(RandomGroupingTest, TokensPreserved) {
  const data::TrainingCorpus corpus = MakeCorpus({5, 7, 9, 11, 2});
  std::vector<int32_t> sampled = {0, 1, 2, 3, 4};
  Rng rng(6);
  const auto buckets = BuildBuckets(corpus, sampled, BaseConfig(2), rng);
  int64_t total = 0;
  for (const Bucket& b : buckets) total += b.num_tokens();
  EXPECT_EQ(total, 5 + 7 + 9 + 11 + 2);
}

TEST(RandomGroupingTest, LambdaOneIsOneBucketPerUser) {
  const data::TrainingCorpus corpus = MakeCorpus(std::vector<int>(8, 4));
  std::vector<int32_t> sampled = {1, 2, 5};
  Rng rng(7);
  const auto buckets = BuildBuckets(corpus, sampled, BaseConfig(1), rng);
  ASSERT_EQ(buckets.size(), 3u);
  for (const Bucket& b : buckets) EXPECT_EQ(b.users.size(), 1u);
}

TEST(RandomGroupingTest, EmptySample) {
  const data::TrainingCorpus corpus = MakeCorpus({3, 3});
  Rng rng(8);
  EXPECT_TRUE(BuildBuckets(corpus, {}, BaseConfig(2), rng).empty());
}

TEST(EqualFrequencyTest, NeverSplitsAUser) {
  const data::TrainingCorpus corpus = MakeCorpus({50, 40, 30, 20, 10, 5});
  std::vector<int32_t> sampled = {0, 1, 2, 3, 4, 5};
  PlpConfig config = BaseConfig(2);
  config.grouping = GroupingKind::kEqualFrequency;
  Rng rng(9);
  const auto buckets = BuildBuckets(corpus, sampled, config, rng);
  EXPECT_EQ(RealizedSplitFactor(buckets), 1);
  std::multiset<int32_t> seen;
  for (const Bucket& b : buckets) {
    EXPECT_LE(b.users.size(), 2u);
    seen.insert(b.users.begin(), b.users.end());
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(EqualFrequencyTest, BalancesLoadBetterThanWorstCase) {
  // Users with skewed sizes; greedy LPT should avoid putting the two
  // biggest users together.
  const data::TrainingCorpus corpus = MakeCorpus({100, 90, 10, 8, 6, 4});
  std::vector<int32_t> sampled = {0, 1, 2, 3, 4, 5};
  PlpConfig config = BaseConfig(2);
  config.grouping = GroupingKind::kEqualFrequency;
  Rng rng(10);
  const auto buckets = BuildBuckets(corpus, sampled, config, rng);
  int64_t max_load = 0;
  for (const Bucket& b : buckets) {
    max_load = std::max(max_load, b.num_tokens());
  }
  EXPECT_LT(max_load, 190);  // 100+90 would be the unbalanced worst case
}

TEST(SplitFactorTest, OmegaTwoSplitsUsersAcrossTwoBuckets) {
  const data::TrainingCorpus corpus = MakeCorpus(std::vector<int>(12, 10));
  std::vector<int32_t> sampled;
  for (int i = 0; i < 12; ++i) sampled.push_back(i);
  PlpConfig config = BaseConfig(1);
  config.split_factor = 2;
  Rng rng(11);
  const auto buckets = BuildBuckets(corpus, sampled, config, rng);
  EXPECT_EQ(RealizedSplitFactor(buckets), 2);
  // All tokens preserved across parts.
  int64_t total = 0;
  for (const Bucket& b : buckets) total += b.num_tokens();
  EXPECT_EQ(total, 120);
}

TEST(SplitFactorTest, RealizedOmegaNeverExceedsConfigured) {
  const data::TrainingCorpus corpus = MakeCorpus(std::vector<int>(9, 12));
  std::vector<int32_t> sampled = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  for (int32_t omega : {2, 3}) {
    PlpConfig config = BaseConfig(2);
    config.split_factor = omega;
    Rng rng(12 + omega);
    const auto buckets = BuildBuckets(corpus, sampled, config, rng);
    EXPECT_LE(RealizedSplitFactor(buckets), omega);
    EXPECT_GE(RealizedSplitFactor(buckets), 2);
  }
}

TEST(SplitFactorTest, ShortUserDataYieldsFewerParts) {
  // A user with a single token cannot be split into two non-empty parts.
  const data::TrainingCorpus corpus = MakeCorpus({1});
  PlpConfig config = BaseConfig(1);
  config.split_factor = 2;
  Rng rng(14);
  const auto buckets = BuildBuckets(corpus, {0}, config, rng);
  int64_t total = 0;
  for (const Bucket& b : buckets) total += b.num_tokens();
  EXPECT_EQ(total, 1);
  EXPECT_EQ(RealizedSplitFactor(buckets), 1);
}

TEST(RealizedSplitFactorTest, EmptyBuckets) {
  EXPECT_EQ(RealizedSplitFactor({}), 0);
}

}  // namespace
}  // namespace plp::core
