#include <gtest/gtest.h>

#include "core/plp_trainer.h"
#include "data/corpus.h"
#include "support/fixtures.h"

namespace plp::core {
namespace {

data::TrainingCorpus ParallelCorpus() {
  return test::UniformCorpus(/*seed=*/17, /*num_users=*/80,
                             /*num_locations=*/25, /*min_tokens=*/12,
                             /*max_tokens=*/12);
}

PlpConfig ParallelConfig(int32_t threads) {
  PlpConfig config;
  config.sgns.embedding_dim = 6;
  config.sgns.negatives = 4;
  config.sampling_probability = 0.3;
  config.grouping_factor = 2;
  config.noise_scale = 2.0;
  config.epsilon_budget = 1e9;
  config.max_steps = 6;
  config.num_threads = threads;
  return config;
}

TEST(ParallelTrainerTest, ThreadCountDoesNotChangeResults) {
  // 2 vs 4 workers: per-bucket seeding makes the outcome
  // scheduling-independent.
  const data::TrainingCorpus corpus = ParallelCorpus();
  Rng rng_a(3), rng_b(3);
  auto two = PlpTrainer(ParallelConfig(2)).Train(corpus, rng_a);
  auto four = PlpTrainer(ParallelConfig(4)).Train(corpus, rng_b);
  ASSERT_TRUE(two.ok());
  ASSERT_TRUE(four.ok());
  const auto wa = two->model.TensorData(sgns::Tensor::kWIn);
  const auto wb = four->model.TensorData(sgns::Tensor::kWIn);
  ASSERT_EQ(wa.size(), wb.size());
  int mismatches = 0;
  for (size_t i = 0; i < wa.size(); ++i) mismatches += wa[i] != wb[i];
  EXPECT_EQ(mismatches, 0);
}

TEST(ParallelTrainerTest, ParallelRunIsReproducible) {
  const data::TrainingCorpus corpus = ParallelCorpus();
  Rng rng_a(4), rng_b(4);
  auto a = PlpTrainer(ParallelConfig(3)).Train(corpus, rng_a);
  auto b = PlpTrainer(ParallelConfig(3)).Train(corpus, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->history.back().epsilon_spent,
            b->history.back().epsilon_spent);
  const auto wa = a->model.TensorData(sgns::Tensor::kWOut);
  const auto wb = b->model.TensorData(sgns::Tensor::kWOut);
  for (size_t i = 0; i < wa.size(); ++i) EXPECT_EQ(wa[i], wb[i]);
}

TEST(ParallelTrainerTest, SequentialMatchesParallelBitwise) {
  // The sequential num_threads = 1 path derives each bucket's RNG the
  // same way the pool does (BucketSeed), so it is not merely comparable —
  // it is the identical computation. tests/invariants/determinism_test.cc
  // extends this across {1, 4, 8} and all grouping modes.
  const data::TrainingCorpus corpus = ParallelCorpus();
  Rng rng_a(5), rng_b(5);
  auto seq = PlpTrainer(ParallelConfig(1)).Train(corpus, rng_a);
  auto par = PlpTrainer(ParallelConfig(4)).Train(corpus, rng_b);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  ASSERT_EQ(seq->history.size(), par->history.size());
  for (size_t i = 0; i < seq->history.size(); ++i) {
    EXPECT_EQ(seq->history[i].signal_norm, par->history[i].signal_norm);
    EXPECT_EQ(seq->history[i].mean_local_loss,
              par->history[i].mean_local_loss);
  }
  for (int t = 0; t < sgns::kNumTensors; ++t) {
    const auto xa = seq->model.TensorData(static_cast<sgns::Tensor>(t));
    const auto xb = par->model.TensorData(static_cast<sgns::Tensor>(t));
    ASSERT_EQ(xa.size(), xb.size());
    for (size_t i = 0; i < xa.size(); ++i) EXPECT_EQ(xa[i], xb[i]);
  }
}

TEST(ParallelTrainerTest, ValidatesThreadCount) {
  PlpConfig config = ParallelConfig(0);
  EXPECT_FALSE(config.Validate().ok());
}

}  // namespace
}  // namespace plp::core
