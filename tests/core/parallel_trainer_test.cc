#include <gtest/gtest.h>

#include "core/plp_trainer.h"
#include "data/corpus.h"

namespace plp::core {
namespace {

data::TrainingCorpus ParallelCorpus() {
  data::TrainingCorpus corpus;
  corpus.num_locations = 25;
  Rng rng(17);
  for (int32_t u = 0; u < 80; ++u) {
    std::vector<int32_t> sentence;
    for (int i = 0; i < 12; ++i) {
      sentence.push_back(static_cast<int32_t>(rng.UniformInt(uint64_t{25})));
    }
    corpus.user_sentences.push_back({std::move(sentence)});
  }
  return corpus;
}

PlpConfig ParallelConfig(int32_t threads) {
  PlpConfig config;
  config.sgns.embedding_dim = 6;
  config.sgns.negatives = 4;
  config.sampling_probability = 0.3;
  config.grouping_factor = 2;
  config.noise_scale = 2.0;
  config.epsilon_budget = 1e9;
  config.max_steps = 6;
  config.num_threads = threads;
  return config;
}

TEST(ParallelTrainerTest, ThreadCountDoesNotChangeResults) {
  // 2 vs 4 workers: per-bucket seeding makes the outcome
  // scheduling-independent.
  const data::TrainingCorpus corpus = ParallelCorpus();
  Rng rng_a(3), rng_b(3);
  auto two = PlpTrainer(ParallelConfig(2)).Train(corpus, rng_a);
  auto four = PlpTrainer(ParallelConfig(4)).Train(corpus, rng_b);
  ASSERT_TRUE(two.ok());
  ASSERT_TRUE(four.ok());
  const auto wa = two->model.TensorData(sgns::Tensor::kWIn);
  const auto wb = four->model.TensorData(sgns::Tensor::kWIn);
  ASSERT_EQ(wa.size(), wb.size());
  int mismatches = 0;
  for (size_t i = 0; i < wa.size(); ++i) mismatches += wa[i] != wb[i];
  EXPECT_EQ(mismatches, 0);
}

TEST(ParallelTrainerTest, ParallelRunIsReproducible) {
  const data::TrainingCorpus corpus = ParallelCorpus();
  Rng rng_a(4), rng_b(4);
  auto a = PlpTrainer(ParallelConfig(3)).Train(corpus, rng_a);
  auto b = PlpTrainer(ParallelConfig(3)).Train(corpus, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->history.back().epsilon_spent,
            b->history.back().epsilon_spent);
  const auto wa = a->model.TensorData(sgns::Tensor::kWOut);
  const auto wb = b->model.TensorData(sgns::Tensor::kWOut);
  for (size_t i = 0; i < wa.size(); ++i) EXPECT_EQ(wa[i], wb[i]);
}

TEST(ParallelTrainerTest, ParallelTrainsComparablyToSequential) {
  // Different RNG streams, so not bit-identical — but the training
  // dynamics (loss scale, signal norms) must be in the same regime.
  const data::TrainingCorpus corpus = ParallelCorpus();
  Rng rng_a(5), rng_b(5);
  auto seq = PlpTrainer(ParallelConfig(1)).Train(corpus, rng_a);
  auto par = PlpTrainer(ParallelConfig(4)).Train(corpus, rng_b);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  ASSERT_EQ(seq->history.size(), par->history.size());
  double seq_signal = 0.0, par_signal = 0.0;
  for (const StepMetrics& m : seq->history) seq_signal += m.signal_norm;
  for (const StepMetrics& m : par->history) par_signal += m.signal_norm;
  EXPECT_GT(par_signal, 0.3 * seq_signal);
  EXPECT_LT(par_signal, 3.0 * seq_signal);
}

TEST(ParallelTrainerTest, ValidatesThreadCount) {
  PlpConfig config = ParallelConfig(0);
  EXPECT_FALSE(config.Validate().ok());
}

}  // namespace
}  // namespace plp::core
