#include <gtest/gtest.h>

#include "core/plp_trainer.h"
#include "data/corpus.h"
#include "support/fixtures.h"

namespace plp::core {
namespace {

data::TrainingCorpus ScheduleCorpus() {
  return test::UniformCorpus(/*seed=*/3, /*num_users=*/40,
                             /*num_locations=*/20, /*min_tokens=*/15,
                             /*max_tokens=*/15);
}

PlpConfig ScheduleConfig() {
  PlpConfig config;
  config.sgns.embedding_dim = 6;
  config.sgns.negatives = 4;
  config.sampling_probability = 0.25;
  config.noise_scale = 3.0;
  config.noise_scale_final = 1.0;
  config.noise_decay_steps = 4;
  config.epsilon_budget = 1e9;
  config.max_steps = 8;
  return config;
}

TEST(NoiseScheduleTest, ValidationRules) {
  PlpConfig config = ScheduleConfig();
  EXPECT_TRUE(config.Validate().ok());
  config.noise_scale_final = 5.0;  // above noise_scale
  EXPECT_FALSE(config.Validate().ok());
  config = ScheduleConfig();
  config.noise_decay_steps = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = ScheduleConfig();
  config.noise_scale_final = -1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = ScheduleConfig();
  config.noise_scale_final = 0.0;  // schedule disabled: decay steps moot
  config.noise_decay_steps = 0;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(NoiseScheduleTest, NoiseScaleAtEndpoints) {
  // The schedule's contract (core/config.h): step 1 yields noise_scale
  // exactly, every step ≥ noise_decay_steps yields noise_scale_final
  // exactly, and a disabled schedule is constant. Exact comparisons —
  // the ledger depends on these being the precise σ_t values tracked.
  PlpConfig config = ScheduleConfig();  // σ 3 → 1 over 4 steps
  EXPECT_EQ(NoiseScaleAt(config, 1), 3.0);
  EXPECT_EQ(NoiseScaleAt(config, 4), 1.0);
  EXPECT_EQ(NoiseScaleAt(config, 5), 1.0);
  EXPECT_EQ(NoiseScaleAt(config, 1000000), 1.0);
  // Interior: linear in (step − 1)/decay_steps, hence strictly decreasing.
  EXPECT_GT(NoiseScaleAt(config, 2), NoiseScaleAt(config, 3));
  EXPECT_LT(NoiseScaleAt(config, 2), 3.0);
  EXPECT_GT(NoiseScaleAt(config, 3), 1.0);

  PlpConfig disabled = ScheduleConfig();
  disabled.noise_scale_final = 0.0;
  disabled.noise_decay_steps = 0;
  EXPECT_EQ(NoiseScaleAt(disabled, 1), 3.0);
  EXPECT_EQ(NoiseScaleAt(disabled, 12345), 3.0);
}

TEST(NoiseScheduleTest, LedgerSeesDecayingSigma) {
  // With a decaying σ, later steps must consume budget faster: the
  // per-step ε increments should grow over the decay window.
  const data::TrainingCorpus corpus = ScheduleCorpus();
  Rng rng(5);
  auto result = PlpTrainer(ScheduleConfig()).Train(corpus, rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->history.size(), 8u);
  std::vector<double> increments;
  double prev = 0.0;
  for (const StepMetrics& m : result->history) {
    increments.push_back(m.epsilon_spent - prev);
    prev = m.epsilon_spent;
  }
  // σ decays over the first 4 steps, then is constant: increments rise
  // then stabilize. Compare first vs fourth increment.
  EXPECT_LT(increments[0], increments[3]);
  EXPECT_NEAR(increments[5], increments[7], increments[5] * 0.5);
}

TEST(NoiseScheduleTest, ConstantScheduleMatchesDefault) {
  // noise_scale_final == noise_scale: identical budget consumption to the
  // unscheduled trainer.
  const data::TrainingCorpus corpus = ScheduleCorpus();
  PlpConfig scheduled = ScheduleConfig();
  scheduled.noise_scale_final = scheduled.noise_scale;
  PlpConfig plain = ScheduleConfig();
  plain.noise_scale_final = 0.0;
  plain.noise_decay_steps = 0;
  Rng rng_a(7), rng_b(7);
  auto a = PlpTrainer(scheduled).Train(corpus, rng_a);
  auto b = PlpTrainer(plain).Train(corpus, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->epsilon_spent, b->epsilon_spent);
}

TEST(NoiseScheduleTest, DecaultBudgetStopsEarlierThanConstantHighSigma) {
  // A schedule that ends at σ=1 must exhaust a small budget in fewer
  // steps than constant σ=3.
  const data::TrainingCorpus corpus = ScheduleCorpus();
  PlpConfig scheduled = ScheduleConfig();
  scheduled.epsilon_budget = 3.0;
  scheduled.max_steps = 100000;
  PlpConfig constant = scheduled;
  constant.noise_scale_final = 0.0;
  constant.noise_decay_steps = 0;
  Rng rng_a(9), rng_b(9);
  auto a = PlpTrainer(scheduled).Train(corpus, rng_a);
  auto b = PlpTrainer(constant).Train(corpus, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a->steps_executed, b->steps_executed);
}

}  // namespace
}  // namespace plp::core
