#include "core/config.h"

#include <functional>

#include <gtest/gtest.h>

namespace plp::core {
namespace {

TEST(PlpConfigTest, DefaultsAreValidAndMatchPaper) {
  PlpConfig config;
  EXPECT_TRUE(config.Validate().ok());
  // Section 5.1 defaults.
  EXPECT_EQ(config.sgns.embedding_dim, 50);
  EXPECT_EQ(config.sgns.window, 2);
  EXPECT_EQ(config.sgns.negatives, 16);
  EXPECT_EQ(config.batch_size, 32);
  EXPECT_EQ(config.sampling_probability, 0.06);
  EXPECT_EQ(config.noise_scale, 2.5);
  EXPECT_EQ(config.clip_norm, 0.5);
  EXPECT_EQ(config.grouping_factor, 4);
  EXPECT_EQ(config.delta, 2e-4);
  EXPECT_EQ(config.split_factor, 1);
}

struct BadConfigCase {
  const char* name;
  std::function<void(PlpConfig&)> mutate;
};

class PlpConfigValidationTest : public testing::TestWithParam<BadConfigCase> {
};

TEST_P(PlpConfigValidationTest, Rejected) {
  PlpConfig config;
  GetParam().mutate(config);
  EXPECT_FALSE(config.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(
    BadConfigs, PlpConfigValidationTest,
    testing::ValuesIn(std::vector<BadConfigCase>{
        {"zero_dim", [](PlpConfig& c) { c.sgns.embedding_dim = 0; }},
        {"zero_window", [](PlpConfig& c) { c.sgns.window = 0; }},
        {"zero_negatives", [](PlpConfig& c) { c.sgns.negatives = 0; }},
        {"zero_q", [](PlpConfig& c) { c.sampling_probability = 0.0; }},
        {"q_above_one", [](PlpConfig& c) { c.sampling_probability = 1.5; }},
        {"zero_lambda", [](PlpConfig& c) { c.grouping_factor = 0; }},
        {"zero_omega", [](PlpConfig& c) { c.split_factor = 0; }},
        {"negative_sigma", [](PlpConfig& c) { c.noise_scale = -1.0; }},
        {"zero_clip", [](PlpConfig& c) { c.clip_norm = 0.0; }},
        {"zero_budget", [](PlpConfig& c) { c.epsilon_budget = 0.0; }},
        {"zero_delta", [](PlpConfig& c) { c.delta = 0.0; }},
        {"delta_one", [](PlpConfig& c) { c.delta = 1.0; }},
        {"zero_batch", [](PlpConfig& c) { c.batch_size = 0; }},
        {"zero_lr", [](PlpConfig& c) { c.local_learning_rate = 0.0; }},
        {"bad_optimizer", [](PlpConfig& c) { c.server_optimizer = "sgd?"; }},
        {"zero_max_steps", [](PlpConfig& c) { c.max_steps = 0; }},
    }),
    [](const testing::TestParamInfo<BadConfigCase>& info) {
      return info.param.name;
    });

TEST(PlpConfigTest, ParseSamplingSchemeRoundTrips) {
  auto poisson = ParseSamplingScheme("poisson");
  ASSERT_TRUE(poisson.ok());
  EXPECT_EQ(*poisson, SamplingScheme::kPoisson);
  EXPECT_STREQ(SamplingSchemeName(*poisson), "poisson");

  auto fixed = ParseSamplingScheme("fixed_batch");
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(*fixed, SamplingScheme::kFixedBatch);
  EXPECT_STREQ(SamplingSchemeName(*fixed), "fixed_batch");

  auto bad = ParseSamplingScheme("bernoulli");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("poisson, fixed_batch"),
            std::string::npos);
}

TEST(PlpConfigTest, AcceptsEverySupportedSchemeAccountantPair) {
  for (const char* accountant : {"rdp", "pld_fft", "mog"}) {
    PlpConfig config;
    config.accountant = accountant;
    EXPECT_TRUE(config.Validate().ok()) << accountant;
  }
  PlpConfig config;
  config.sampling_scheme = SamplingScheme::kFixedBatch;
  config.accountant = "mog";
  EXPECT_TRUE(config.Validate().ok());
}

/// Poisson-only accountants must reject fixed-batch sampling, with a
/// structured message naming the valid pairs.
TEST(PlpConfigTest, RejectsFixedBatchUnderPoissonOnlyAccountants) {
  for (const char* accountant : {"rdp", "pld_fft"}) {
    PlpConfig config;
    config.sampling_scheme = SamplingScheme::kFixedBatch;
    config.accountant = accountant;
    const Status status = config.Validate();
    ASSERT_FALSE(status.ok()) << accountant;
    EXPECT_NE(status.message().find("models Poisson sampling only"),
              std::string::npos)
        << status.message();
    EXPECT_NE(status.message().find(
                  "poisson x {rdp, pld_fft, mog} and fixed_batch x {mog}"),
              std::string::npos)
        << status.message();
  }
}

/// Validation collects every violation into one message instead of
/// stopping at the first: a bad pairing and a bad σ surface together.
TEST(PlpConfigTest, CollectsPairingViolationWithOthers) {
  PlpConfig config;
  config.sampling_scheme = SamplingScheme::kFixedBatch;
  config.accountant = "rdp";
  config.noise_scale = -1.0;
  const Status status = config.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("models Poisson sampling only"),
            std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("noise_scale"), std::string::npos)
      << status.message();
}

/// MogAccountant::AddRounds rejects ω > 64; Validate() must catch the
/// same bound up front (naming it) so a --accountant=mog run fails before
/// corpus loading instead of at the first TrackRound.
TEST(PlpConfigTest, RejectsMogAboveMaxSplitFactor) {
  PlpConfig config;
  config.accountant = "mog";
  config.split_factor = 65;
  const Status status = config.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("split_factor <= 64"), std::string::npos)
      << status.message();
  // Other accountants scale ω·C into the noise and have no such bound.
  config.accountant = "rdp";
  EXPECT_TRUE(config.Validate().ok());
  // The bound itself is valid under mog.
  config.accountant = "mog";
  config.split_factor = 64;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(PlpConfigTest, SigmaZeroIsAllowedByValidation) {
  // σ = 0 is a legal configuration value; the accountant then reports an
  // infinite per-step cost and training stops immediately.
  PlpConfig config;
  config.noise_scale = 0.0;
  EXPECT_TRUE(config.Validate().ok());
}

}  // namespace
}  // namespace plp::core
