/// Crash/resume contract of both trainers: a run interrupted at any step
/// and resumed from its newest checkpoint finishes with the bit-identical
/// model and the identical privacy-accounting trajectory of the run that
/// was never interrupted — at any thread count. (The randomized SIGKILL
/// version of these properties lives in tools/plp_crashtest.)
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "core/nonprivate_trainer.h"
#include "core/plp_trainer.h"
#include "data/fixtures.h"

namespace plp::core {
namespace {

constexpr uint64_t kSeed = 1234;
constexpr int64_t kMaxSteps = 12;

data::TrainingCorpus MakeCorpus() {
  data::FixtureCorpusOptions options;
  options.num_users = 48;
  options.num_locations = 24;
  options.neighborhood = 4;
  return data::MakeFixtureCorpus(777, options);
}

PlpConfig MakePrivateConfig(int32_t threads = 1) {
  PlpConfig config;
  config.sgns.embedding_dim = 8;
  config.sgns.negatives = 4;
  config.sampling_probability = 0.25;
  config.grouping_factor = 2;
  config.noise_scale = 1.2;
  config.clip_norm = 0.5;
  config.epsilon_budget = 1e9;  // stop on max_steps, not the budget
  config.batch_size = 8;
  config.max_steps = kMaxSteps;
  config.num_threads = threads;
  return config;
}

bool ModelsBitwiseEqual(const sgns::SgnsModel& a, const sgns::SgnsModel& b) {
  if (a.num_locations() != b.num_locations() || a.dim() != b.dim()) {
    return false;
  }
  for (int t = 0; t < sgns::kNumTensors; ++t) {
    const auto ta = a.TensorData(static_cast<sgns::Tensor>(t));
    const auto tb = b.TensorData(static_cast<sgns::Tensor>(t));
    if (ta.size() != tb.size() ||
        std::memcmp(ta.data(), tb.data(), ta.size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

class CheckpointResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("plp_resume_test_" + std::string(::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    FaultInjection::Disarm();
    std::filesystem::remove_all(dir_);
  }

  ckpt::CheckpointOptions Options(bool resume, int64_t every_steps = 1) {
    ckpt::CheckpointOptions options;
    options.dir = dir_;
    options.every_steps = every_steps;
    options.resume = resume;
    return options;
  }

  std::string dir_;
};

TEST_F(CheckpointResumeTest, PrivateResumeIsBitIdentical) {
  const data::TrainingCorpus corpus = MakeCorpus();
  const PlpTrainer trainer(MakePrivateConfig());

  Rng reference_rng(kSeed);
  auto reference = trainer.Train(corpus, reference_rng);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(reference->steps_executed, kMaxSteps);

  // Interrupted run: the callback stops training after step 5; the step-5
  // checkpoint is still committed (observe-before-commit ordering).
  Rng interrupted_rng(kSeed);
  auto interrupted = trainer.Train(
      corpus, interrupted_rng,
      [](const StepMetrics& m, const sgns::SgnsModel&) { return m.step < 5; },
      Options(/*resume=*/false));
  ASSERT_TRUE(interrupted.ok());
  ASSERT_EQ(interrupted->steps_executed, 5);
  ASSERT_EQ(interrupted->stop_reason, StopReason::kCallback);

  // Resume with a *differently seeded* Rng: every bit of resumed state,
  // including the RNG position, must come from the checkpoint.
  Rng resumed_rng(kSeed + 999);
  auto resumed = trainer.Train(corpus, resumed_rng, nullptr,
                               Options(/*resume=*/true));
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->steps_executed, kMaxSteps);
  EXPECT_TRUE(ModelsBitwiseEqual(resumed->model, reference->model));

  // Accounting trajectory: ε after every replayed step matches the
  // uninterrupted run bit-for-bit, and the final spend agrees.
  ASSERT_EQ(resumed->history.size(), static_cast<size_t>(kMaxSteps - 5));
  for (const StepMetrics& metrics : resumed->history) {
    const StepMetrics& expected =
        reference->history[static_cast<size_t>(metrics.step - 1)];
    EXPECT_EQ(metrics.epsilon_spent, expected.epsilon_spent)
        << "step " << metrics.step;
    EXPECT_EQ(metrics.noisy_update_norm, expected.noisy_update_norm)
        << "step " << metrics.step;
  }
  EXPECT_EQ(resumed->epsilon_spent, reference->epsilon_spent);
}

TEST_F(CheckpointResumeTest, PrivateResumeAfterInjectedFailure) {
  const data::TrainingCorpus corpus = MakeCorpus();
  const PlpTrainer trainer(MakePrivateConfig());

  Rng reference_rng(kSeed);
  auto reference = trainer.Train(corpus, reference_rng);
  ASSERT_TRUE(reference.ok());

  // The 4th checkpoint attempt fails hard mid-run; steps 1–3 are durable.
  FaultInjection::Arm("trainer.before_checkpoint", FaultMode::kFail,
                      /*trigger_hit=*/4);
  Rng interrupted_rng(kSeed);
  auto interrupted =
      trainer.Train(corpus, interrupted_rng, nullptr, Options(false));
  ASSERT_FALSE(interrupted.ok());
  FaultInjection::Disarm();
  ckpt::CheckpointManager manager(dir_);
  EXPECT_EQ(manager.LoadLatest()->step, 3);

  Rng resumed_rng(kSeed + 1);
  auto resumed = trainer.Train(corpus, resumed_rng, nullptr, Options(true));
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->steps_executed, kMaxSteps);
  EXPECT_TRUE(ModelsBitwiseEqual(resumed->model, reference->model));
  EXPECT_EQ(resumed->epsilon_spent, reference->epsilon_spent);
}

TEST_F(CheckpointResumeTest, CrashAtOneThreadResumeAtFourThreads) {
  const data::TrainingCorpus corpus = MakeCorpus();

  Rng reference_rng(kSeed);
  auto reference = PlpTrainer(MakePrivateConfig(1)).Train(corpus,
                                                          reference_rng);
  ASSERT_TRUE(reference.ok());

  Rng interrupted_rng(kSeed);
  auto interrupted = PlpTrainer(MakePrivateConfig(1)).Train(
      corpus, interrupted_rng,
      [](const StepMetrics& m, const sgns::SgnsModel&) { return m.step < 4; },
      Options(false));
  ASSERT_TRUE(interrupted.ok());

  // Thread count is an execution detail, not model state: resuming the
  // 1-thread run on 4 threads must land on the same bytes.
  Rng resumed_rng(kSeed + 2);
  auto resumed = PlpTrainer(MakePrivateConfig(4)).Train(corpus, resumed_rng,
                                                        nullptr,
                                                        Options(true));
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(ModelsBitwiseEqual(resumed->model, reference->model));
}

TEST_F(CheckpointResumeTest, SparseCheckpointCadenceReplaysTheGap) {
  const data::TrainingCorpus corpus = MakeCorpus();
  const PlpTrainer trainer(MakePrivateConfig());

  Rng reference_rng(kSeed);
  auto reference = trainer.Train(corpus, reference_rng);
  ASSERT_TRUE(reference.ok());

  // Checkpoint every 3 steps, stop after step 7: the newest snapshot is
  // step 6, so the resumed run re-executes step 7 (same draws, not a
  // second privacy spend) and continues.
  Rng interrupted_rng(kSeed);
  auto interrupted = trainer.Train(
      corpus, interrupted_rng,
      [](const StepMetrics& m, const sgns::SgnsModel&) { return m.step < 7; },
      Options(false, /*every_steps=*/3));
  ASSERT_TRUE(interrupted.ok());
  ckpt::CheckpointManager manager(dir_);
  ASSERT_EQ(manager.LoadLatest()->step, 6);

  Rng resumed_rng(kSeed + 3);
  auto resumed = trainer.Train(corpus, resumed_rng, nullptr,
                               Options(true, /*every_steps=*/3));
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(ModelsBitwiseEqual(resumed->model, reference->model));
  EXPECT_EQ(resumed->epsilon_spent, reference->epsilon_spent);
}

TEST_F(CheckpointResumeTest, ResumeFromEmptyDirIsAFreshStart) {
  const data::TrainingCorpus corpus = MakeCorpus();
  const PlpTrainer trainer(MakePrivateConfig());

  Rng reference_rng(kSeed);
  auto reference = trainer.Train(corpus, reference_rng);
  ASSERT_TRUE(reference.ok());

  Rng rng(kSeed);
  auto fresh = trainer.Train(corpus, rng, nullptr, Options(true));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->steps_executed, kMaxSteps);
  // Checkpoint commits consume no randomness, so a checkpointed fresh run
  // matches the never-checkpointed reference exactly.
  EXPECT_TRUE(ModelsBitwiseEqual(fresh->model, reference->model));
}

TEST_F(CheckpointResumeTest, ResumeRejectsWrongTrainerKind) {
  const data::TrainingCorpus corpus = MakeCorpus();

  NonPrivateConfig np_config;
  np_config.sgns.embedding_dim = 8;
  np_config.sgns.negatives = 4;
  np_config.batch_size = 16;
  np_config.epochs = 2;
  Rng np_rng(kSeed);
  ASSERT_TRUE(NonPrivateTrainer(np_config)
                  .Train(corpus, np_rng, nullptr, Options(false))
                  .ok());

  Rng rng(kSeed);
  auto resumed = PlpTrainer(MakePrivateConfig())
                     .Train(corpus, rng, nullptr, Options(true));
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CheckpointResumeTest, ResumeRejectsOptimizerMismatch) {
  const data::TrainingCorpus corpus = MakeCorpus();
  Rng rng(kSeed);
  ASSERT_TRUE(PlpTrainer(MakePrivateConfig())
                  .Train(corpus, rng,
                         [](const StepMetrics& m, const sgns::SgnsModel&) {
                           return m.step < 3;
                         },
                         Options(false))
                  .ok());

  PlpConfig fixed = MakePrivateConfig();
  fixed.server_optimizer = "fixed_step";
  Rng resumed_rng(kSeed);
  auto resumed =
      PlpTrainer(fixed).Train(corpus, resumed_rng, nullptr, Options(true));
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CheckpointResumeTest, ResumeRejectsModelShapeMismatch) {
  const data::TrainingCorpus corpus = MakeCorpus();
  Rng rng(kSeed);
  ASSERT_TRUE(PlpTrainer(MakePrivateConfig())
                  .Train(corpus, rng,
                         [](const StepMetrics& m, const sgns::SgnsModel&) {
                           return m.step < 3;
                         },
                         Options(false))
                  .ok());

  PlpConfig wider = MakePrivateConfig();
  wider.sgns.embedding_dim = 16;
  Rng resumed_rng(kSeed);
  auto resumed =
      PlpTrainer(wider).Train(corpus, resumed_rng, nullptr, Options(true));
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CheckpointResumeTest, ResumeRejectsDeltaMismatch) {
  const data::TrainingCorpus corpus = MakeCorpus();
  Rng rng(kSeed);
  ASSERT_TRUE(PlpTrainer(MakePrivateConfig())
                  .Train(corpus, rng,
                         [](const StepMetrics& m, const sgns::SgnsModel&) {
                           return m.step < 3;
                         },
                         Options(false))
                  .ok());

  // A ledger restored at a different δ would answer CumulativeEpsilon for
  // the wrong guarantee; the resume must refuse.
  PlpConfig other_delta = MakePrivateConfig();
  other_delta.delta = 1e-5;
  Rng resumed_rng(kSeed);
  auto resumed = PlpTrainer(other_delta)
                     .Train(corpus, resumed_rng, nullptr, Options(true));
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CheckpointResumeTest, ResumeRejectsSamplingSchemeMismatch) {
  const data::TrainingCorpus corpus = MakeCorpus();
  PlpConfig poisson = MakePrivateConfig();
  poisson.accountant = "mog";  // the only accountant legal for both schemes
  Rng rng(kSeed);
  ASSERT_TRUE(PlpTrainer(poisson)
                  .Train(corpus, rng,
                         [](const StepMetrics& m, const sgns::SgnsModel&) {
                           return m.step < 3;
                         },
                         Options(false))
                  .ok());

  // The checkpointed RNG stream and the accounted mechanism both belong to
  // the Poisson run; replaying them under fixed-batch sampling would be a
  // different mechanism with the same ledger.
  PlpConfig fixed = poisson;
  fixed.sampling_scheme = SamplingScheme::kFixedBatch;
  Rng resumed_rng(kSeed);
  auto resumed =
      PlpTrainer(fixed).Train(corpus, resumed_rng, nullptr, Options(true));
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(resumed.status().message().find("sampling scheme"),
            std::string::npos)
      << resumed.status().message();
}

TEST_F(CheckpointResumeTest, ResumeRejectsCrossAccountantBlob) {
  const data::TrainingCorpus corpus = MakeCorpus();
  Rng rng(kSeed);
  ASSERT_TRUE(PlpTrainer(MakePrivateConfig())  // accountant = "rdp"
                  .Train(corpus, rng,
                         [](const StepMetrics& m, const sgns::SgnsModel&) {
                           return m.step < 3;
                         },
                         Options(false))
                  .ok());

  // An RDP ledger blob must not restore into the MoG (or PLD) accountant:
  // the blob magics differ and the resume fails instead of misparsing.
  for (const char* accountant : {"mog", "pld_fft"}) {
    PlpConfig other = MakePrivateConfig();
    other.accountant = accountant;
    Rng resumed_rng(kSeed);
    auto resumed =
        PlpTrainer(other).Train(corpus, resumed_rng, nullptr, Options(true));
    ASSERT_FALSE(resumed.ok()) << accountant;
    EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument)
        << accountant;
  }
}

/// The full resume contract under the new pipeline pieces at once: MoG
/// accounting plus fixed-batch sampling. The resumed run must land on the
/// uninterrupted run's model and ε trajectory bit-for-bit.
TEST_F(CheckpointResumeTest, MogFixedBatchResumeIsBitIdentical) {
  const data::TrainingCorpus corpus = MakeCorpus();
  PlpConfig config = MakePrivateConfig();
  config.accountant = "mog";
  config.sampling_scheme = SamplingScheme::kFixedBatch;
  const PlpTrainer trainer(config);

  Rng reference_rng(kSeed);
  auto reference = trainer.Train(corpus, reference_rng);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(reference->steps_executed, kMaxSteps);

  Rng interrupted_rng(kSeed);
  auto interrupted = trainer.Train(
      corpus, interrupted_rng,
      [](const StepMetrics& m, const sgns::SgnsModel&) { return m.step < 5; },
      Options(/*resume=*/false));
  ASSERT_TRUE(interrupted.ok());
  ASSERT_EQ(interrupted->steps_executed, 5);

  Rng resumed_rng(kSeed + 999);
  auto resumed = trainer.Train(corpus, resumed_rng, nullptr,
                               Options(/*resume=*/true));
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  EXPECT_EQ(resumed->steps_executed, kMaxSteps);
  EXPECT_TRUE(ModelsBitwiseEqual(resumed->model, reference->model));
  for (const StepMetrics& metrics : resumed->history) {
    const StepMetrics& expected =
        reference->history[static_cast<size_t>(metrics.step - 1)];
    EXPECT_EQ(metrics.epsilon_spent, expected.epsilon_spent)
        << "step " << metrics.step;
  }
  EXPECT_EQ(resumed->epsilon_spent, reference->epsilon_spent);
}

TEST_F(CheckpointResumeTest, NonPrivateResumeIsBitIdentical) {
  const data::TrainingCorpus corpus = MakeCorpus();
  NonPrivateConfig config;
  config.sgns.embedding_dim = 8;
  config.sgns.negatives = 4;
  config.batch_size = 16;
  config.epochs = 8;
  const NonPrivateTrainer trainer(config);

  Rng reference_rng(kSeed);
  auto reference = trainer.Train(corpus, reference_rng);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(reference->history.size(), 8u);

  Rng interrupted_rng(kSeed);
  auto interrupted = trainer.Train(
      corpus, interrupted_rng,
      [](const EpochMetrics& m, const sgns::SgnsModel&) {
        return m.epoch < 3;
      },
      Options(false));
  ASSERT_TRUE(interrupted.ok());

  Rng resumed_rng(kSeed + 4);
  auto resumed = trainer.Train(corpus, resumed_rng, nullptr, Options(true));
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(ModelsBitwiseEqual(resumed->model, reference->model));
  ASSERT_EQ(resumed->history.size(), 5u);
  for (size_t i = 0; i < resumed->history.size(); ++i) {
    EXPECT_EQ(resumed->history[i].mean_loss,
              reference->history[i + 3].mean_loss)
        << "epoch " << resumed->history[i].epoch;
  }
}

TEST_F(CheckpointResumeTest, NonPrivateSubsampledResumeIsBitIdentical) {
  // With frequent-token subsampling the pair set itself is a per-epoch
  // random draw; resume must replay both the draw and the shuffle.
  const data::TrainingCorpus corpus = MakeCorpus();
  NonPrivateConfig config;
  config.sgns.embedding_dim = 8;
  config.sgns.negatives = 4;
  config.batch_size = 16;
  config.epochs = 6;
  config.subsample_threshold = 0.05;
  const NonPrivateTrainer trainer(config);

  Rng reference_rng(kSeed);
  auto reference = trainer.Train(corpus, reference_rng);
  ASSERT_TRUE(reference.ok());

  Rng interrupted_rng(kSeed);
  auto interrupted = trainer.Train(
      corpus, interrupted_rng,
      [](const EpochMetrics& m, const sgns::SgnsModel&) {
        return m.epoch < 2;
      },
      Options(false));
  ASSERT_TRUE(interrupted.ok());

  Rng resumed_rng(kSeed + 5);
  auto resumed = trainer.Train(corpus, resumed_rng, nullptr, Options(true));
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(ModelsBitwiseEqual(resumed->model, reference->model));
}

}  // namespace
}  // namespace plp::core
