// Cross-cutting differential-privacy invariants of the training loop.

#include <tuple>

#include <gtest/gtest.h>

#include "core/plp_trainer.h"
#include "data/corpus.h"
#include "support/fixtures.h"

namespace plp::core {
namespace {

data::TrainingCorpus MakeCorpus(uint64_t seed, int32_t num_users,
                                int32_t num_locations) {
  return test::UniformCorpus(seed, num_users, num_locations);
}

PlpConfig InvariantConfig() { return test::InvariantTrainerConfig(); }

TEST(PrivacyInvariantsTest, BudgetConsumptionIsDataIndependent) {
  // The ε trajectory depends only on (q, σ, δ, steps) — never on the data
  // content, user count, or model state. Radically different corpora must
  // produce identical privacy histories.
  const data::TrainingCorpus a = MakeCorpus(1, 60, 30);
  const data::TrainingCorpus b = MakeCorpus(999, 200, 80);
  Rng rng_a(5), rng_b(6);
  auto ra = PlpTrainer(InvariantConfig()).Train(a, rng_a);
  auto rb = PlpTrainer(InvariantConfig()).Train(b, rng_b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->history.size(), rb->history.size());
  for (size_t i = 0; i < ra->history.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra->history[i].epsilon_spent,
                     rb->history[i].epsilon_spent);
  }
}

class BudgetSweepTest
    : public testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(BudgetSweepTest, EpsilonNeverExceedsBudgetAndStepsMatchAccountant) {
  const double q = std::get<0>(GetParam());
  const double sigma = std::get<1>(GetParam());
  PlpConfig config = InvariantConfig();
  config.sampling_probability = q;
  config.noise_scale = sigma;
  config.epsilon_budget = 1.5;
  config.max_steps = 100000;
  const data::TrainingCorpus corpus = MakeCorpus(2, 50, 25);
  Rng rng(7);
  auto result = PlpTrainer(config).Train(corpus, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->epsilon_spent, config.epsilon_budget);

  // Replaying the accountant must predict exactly the executed step count.
  privacy::RdpAccountant accountant;
  const std::vector<double> step = accountant.StepRdp(q, sigma);
  int64_t predicted = 0;
  while (predicted < 100000) {
    accountant.AddPrecomputedSteps(step, 1);
    if (accountant.GetEpsilon(config.delta).value() >
        config.epsilon_budget) {
      break;
    }
    ++predicted;
  }
  EXPECT_EQ(result->steps_executed, predicted);
}

INSTANTIATE_TEST_SUITE_P(
    QSigmaGrid, BudgetSweepTest,
    testing::Combine(testing::Values(0.1, 0.25, 0.5),
                     testing::Values(1.0, 2.0, 3.0)),
    [](const testing::TestParamInfo<std::tuple<double, double>>& info) {
      return "q" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 100)) +
             "_sigma" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
    });

TEST(PrivacyInvariantsTest, EveryBucketDeltaWithinClipBound) {
  // signal_norm ≤ |H|·C at every step, for every grouping mode and ω.
  for (const GroupingKind grouping :
       {GroupingKind::kRandom, GroupingKind::kEqualFrequency}) {
    for (const int32_t omega : {1, 2}) {
      PlpConfig config = InvariantConfig();
      config.grouping = grouping;
      config.split_factor = omega;
      config.grouping_factor = 3;
      const data::TrainingCorpus corpus = MakeCorpus(3, 70, 40);
      Rng rng(11);
      auto result = PlpTrainer(config).Train(corpus, rng);
      ASSERT_TRUE(result.ok());
      for (const StepMetrics& m : result->history) {
        EXPECT_LE(m.signal_norm, static_cast<double>(m.num_buckets) *
                                         config.clip_norm +
                                     1e-9);
      }
    }
  }
}

TEST(PrivacyInvariantsTest, LambdaDoesNotChangePrivacyCost) {
  // Identical (q, σ, steps): ε must be identical for every λ. This is
  // the formal content of "grouping is free, privacy-wise".
  const data::TrainingCorpus corpus = MakeCorpus(4, 80, 30);
  double reference = -1.0;
  for (const int32_t lambda : {1, 2, 5, 8}) {
    PlpConfig config = InvariantConfig();
    config.grouping_factor = lambda;
    Rng rng(13);
    auto result = PlpTrainer(config).Train(corpus, rng);
    ASSERT_TRUE(result.ok());
    if (reference < 0) {
      reference = result->epsilon_spent;
    } else {
      EXPECT_DOUBLE_EQ(result->epsilon_spent, reference);
    }
  }
}

}  // namespace
}  // namespace plp::core
