#include "core/plp_trainer.h"

#include <cmath>

#include <gtest/gtest.h>
#include "core/nonprivate_trainer.h"
#include "data/corpus.h"
#include "support/fixtures.h"

namespace plp::core {
namespace {

// Thin aliases over the shared fixture library (tests/support/fixtures.h)
// so the suite reads as before while corpus generation lives in one place.
data::TrainingCorpus TinyCorpus(int32_t num_users = 60) {
  return test::ClusteredCorpus(/*seed=*/7, num_users);
}

PlpConfig FastConfig() { return test::FastTrainerConfig(); }

TEST(PlpTrainerTest, RunsAndRespectsMaxSteps) {
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng(1);
  const PlpTrainer trainer(FastConfig());
  auto result = trainer.Train(corpus, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->steps_executed, 10);
  EXPECT_EQ(result->stop_reason, StopReason::kMaxSteps);
  EXPECT_EQ(result->history.size(), 10u);
  EXPECT_GT(result->epsilon_spent, 0.0);
  EXPECT_LE(result->epsilon_spent, 4.0);
  EXPECT_GT(result->wall_seconds, 0.0);
}

TEST(PlpTrainerTest, StopsWhenBudgetExhausted) {
  PlpConfig config = FastConfig();
  config.epsilon_budget = 2.0;
  config.max_steps = 100000;
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng(2);
  auto result = PlpTrainer(config).Train(corpus, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stop_reason, StopReason::kBudgetExhausted);
  EXPECT_LE(result->epsilon_spent, 2.0);
  EXPECT_GT(result->steps_executed, 0);
  EXPECT_LT(result->steps_executed, 100000);
}

TEST(PlpTrainerTest, ZeroNoiseScaleStopsImmediately) {
  // σ = 0 has infinite per-step privacy cost: no step fits in any budget.
  PlpConfig config = FastConfig();
  config.noise_scale = 0.0;
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng(3);
  auto result = PlpTrainer(config).Train(corpus, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->steps_executed, 0);
  EXPECT_EQ(result->stop_reason, StopReason::kBudgetExhausted);
}

TEST(PlpTrainerTest, CallbackCanStopTraining) {
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng(4);
  int calls = 0;
  auto result = PlpTrainer(FastConfig())
                    .Train(corpus, rng,
                           [&calls](const StepMetrics& m,
                                    const sgns::SgnsModel&) {
                             ++calls;
                             return m.step < 3;
                           });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->steps_executed, 3);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(result->stop_reason, StopReason::kCallback);
}

TEST(PlpTrainerTest, DeterministicGivenSeed) {
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng_a(5), rng_b(5);
  auto a = PlpTrainer(FastConfig()).Train(corpus, rng_a);
  auto b = PlpTrainer(FastConfig()).Train(corpus, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto wa = a->model.TensorData(sgns::Tensor::kWIn);
  const auto wb = b->model.TensorData(sgns::Tensor::kWIn);
  for (size_t i = 0; i < wa.size(); ++i) EXPECT_EQ(wa[i], wb[i]);
}

TEST(PlpTrainerTest, EpsilonHistoryIsMonotone) {
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng(6);
  auto result = PlpTrainer(FastConfig()).Train(corpus, rng);
  ASSERT_TRUE(result.ok());
  double prev = 0.0;
  for (const StepMetrics& m : result->history) {
    EXPECT_GT(m.epsilon_spent, prev);
    prev = m.epsilon_spent;
  }
}

TEST(PlpTrainerTest, SignalNormBoundedByBucketCountTimesClip) {
  // Σ of per-bucket deltas clipped to C has norm ≤ |H|·C.
  PlpConfig config = FastConfig();
  config.clip_norm = 0.4;
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng(7);
  auto result = PlpTrainer(config).Train(corpus, rng);
  ASSERT_TRUE(result.ok());
  for (const StepMetrics& m : result->history) {
    EXPECT_LE(m.signal_norm,
              static_cast<double>(m.num_buckets) * config.clip_norm + 1e-9);
  }
}

TEST(PlpTrainerTest, BucketCountMatchesLambda) {
  PlpConfig config = FastConfig();
  config.grouping_factor = 4;
  const data::TrainingCorpus corpus = TinyCorpus(100);
  Rng rng(8);
  auto result = PlpTrainer(config).Train(corpus, rng);
  ASSERT_TRUE(result.ok());
  for (const StepMetrics& m : result->history) {
    const int64_t expected =
        (m.sampled_users + config.grouping_factor - 1) /
        config.grouping_factor;
    EXPECT_EQ(m.num_buckets, expected);
  }
}

TEST(PlpTrainerTest, DenseLocalCopyMatchesSparseOverlay) {
  // The dense-copy cost model must be bit-identical in output.
  PlpConfig config = FastConfig();
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng_a(9), rng_b(9);
  auto sparse = PlpTrainer(config).Train(corpus, rng_a);
  config.dense_local_copy = true;
  auto dense = PlpTrainer(config).Train(corpus, rng_b);
  ASSERT_TRUE(sparse.ok());
  ASSERT_TRUE(dense.ok());
  const auto wa = sparse->model.TensorData(sgns::Tensor::kWIn);
  const auto wb = dense->model.TensorData(sgns::Tensor::kWIn);
  // Row iteration order differs between the two paths, so norm summation
  // order (and hence clip factors) can differ in the last ulp.
  for (size_t i = 0; i < wa.size(); ++i) EXPECT_NEAR(wa[i], wb[i], 1e-9);
}

TEST(PlpTrainerTest, SplitFactorScalesNoise) {
  // ω = 2 must quadruple noise *variance* (σ·ω·C): with no data at all the
  // applied update is pure noise, so compare expected norms statistically.
  PlpConfig config = FastConfig();
  config.server_optimizer = "fixed_step";
  config.max_steps = 3;
  const data::TrainingCorpus corpus = TinyCorpus();

  auto mean_noisy_norm = [&](int32_t omega, uint64_t seed) {
    PlpConfig c = config;
    c.split_factor = omega;
    Rng rng(seed);
    auto result = PlpTrainer(c).Train(corpus, rng);
    EXPECT_TRUE(result.ok());
    double total = 0.0;
    for (const StepMetrics& m : result->history) {
      total += m.noisy_update_norm;
    }
    return total / static_cast<double>(result->history.size());
  };
  // The noise norm dominates the signal; ω = 2 should roughly double it.
  const double norm1 = mean_noisy_norm(1, 42);
  const double norm2 = mean_noisy_norm(2, 42);
  EXPECT_GT(norm2, 1.5 * norm1);
}

TEST(PlpTrainerTest, RejectsInvalidConfig) {
  PlpConfig config = FastConfig();
  config.clip_norm = 0.0;
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng(10);
  EXPECT_FALSE(PlpTrainer(config).Train(corpus, rng).ok());
}

TEST(PlpTrainerTest, RejectsEmptyCorpus) {
  data::TrainingCorpus corpus;
  corpus.num_locations = 10;
  Rng rng(11);
  EXPECT_FALSE(PlpTrainer(FastConfig()).Train(corpus, rng).ok());
}

TEST(PlpTrainerTest, FixedVsRealizedDenominator) {
  // Both must run; the realized-denominator mode is the ablation.
  PlpConfig config = FastConfig();
  config.fixed_denominator = false;
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng(12);
  auto result = PlpTrainer(config).Train(corpus, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->steps_executed, 10);
}

TEST(PlpTrainerTest, PerTensorNoiseModeBurnsBudgetFaster) {
  // Per-tensor noise σ·C/√3 has effective multiplier σ/√3, so the same σ
  // buys fewer steps under the same budget.
  PlpConfig config = FastConfig();
  config.max_steps = 100000;
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng_a(13), rng_b(13);
  auto dense = PlpTrainer(config).Train(corpus, rng_a);
  config.per_tensor_noise = true;
  auto per_tensor = PlpTrainer(config).Train(corpus, rng_b);
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(per_tensor.ok());
  EXPECT_GT(per_tensor->steps_executed, 0);
  EXPECT_LT(per_tensor->steps_executed, dense->steps_executed);
  EXPECT_LE(per_tensor->epsilon_spent, config.epsilon_budget);
}

TEST(PlpTrainerTest, SingleGradientModeProducesSmallerDeltas) {
  // The DP-SGD baseline takes one η-scaled gradient instead of local
  // multi-batch SGD, so its pre-noise signal is weaker.
  PlpConfig config = FastConfig();
  config.noise_scale = 1.0;  // signal_norm is measured pre-noise
  config.epsilon_budget = 1e9;
  config.max_steps = 3;
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng_a(21), rng_b(21);
  auto multi = PlpTrainer(config).Train(corpus, rng_a);
  config.local_update = LocalUpdateMode::kSingleGradient;
  auto single = PlpTrainer(config).Train(corpus, rng_b);
  ASSERT_TRUE(multi.ok());
  ASSERT_TRUE(single.ok());
  double multi_signal = 0.0, single_signal = 0.0;
  for (const StepMetrics& m : multi->history) multi_signal += m.signal_norm;
  for (const StepMetrics& m : single->history) {
    single_signal += m.signal_norm;
  }
  EXPECT_GT(single_signal, 0.0);
  EXPECT_GT(multi_signal, single_signal);
}

TEST(PlpTrainerTest, LocalEpochsStrengthenSignal) {
  PlpConfig config = FastConfig();
  config.noise_scale = 1.0;  // signal_norm is measured pre-noise
  config.epsilon_budget = 1e9;
  config.max_steps = 3;
  config.clip_norm = 1e6;  // observe raw (unclipped) delta magnitudes
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng_a(22), rng_b(22);
  auto one = PlpTrainer(config).Train(corpus, rng_a);
  config.local_epochs = 4;
  auto four = PlpTrainer(config).Train(corpus, rng_b);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(four.ok());
  double signal_one = 0.0, signal_four = 0.0;
  for (const StepMetrics& m : one->history) signal_one += m.signal_norm;
  for (const StepMetrics& m : four->history) signal_four += m.signal_norm;
  EXPECT_GT(signal_four, signal_one);
}

void ExpectModelsBitwiseEqual(const sgns::SgnsModel& a,
                              const sgns::SgnsModel& b) {
  for (int t = 0; t < sgns::kNumTensors; ++t) {
    const auto xa = a.TensorData(static_cast<sgns::Tensor>(t));
    const auto xb = b.TensorData(static_cast<sgns::Tensor>(t));
    ASSERT_EQ(xa.size(), xb.size());
    for (size_t i = 0; i < xa.size(); ++i) EXPECT_EQ(xa[i], xb[i]);
  }
}

TEST(PlpTrainerTest, BudgetExhaustedReturnsPreviousTheta) {
  // Algorithm 1 lines 11–13: when step t's budget check overruns, the
  // trainer returns θ_{t−1} — the model WITHOUT the over-budget step.
  // Verified bitwise: a budget-limited run that executed k steps must
  // equal an unlimited run truncated at max_steps = k with the same seed.
  PlpConfig limited = FastConfig();
  limited.epsilon_budget = 2.0;
  limited.max_steps = 100000;
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng_a(31);
  auto budget_run = PlpTrainer(limited).Train(corpus, rng_a);
  ASSERT_TRUE(budget_run.ok());
  ASSERT_EQ(budget_run->stop_reason, StopReason::kBudgetExhausted);
  const int64_t k = budget_run->steps_executed;
  ASSERT_GT(k, 0);

  PlpConfig truncated = limited;
  truncated.epsilon_budget = 1e9;
  truncated.max_steps = k;
  Rng rng_b(31);
  auto reference = PlpTrainer(truncated).Train(corpus, rng_b);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference->stop_reason, StopReason::kMaxSteps);
  ExpectModelsBitwiseEqual(budget_run->model, reference->model);
}

TEST(PlpTrainerTest, CallbackStopReturnsModelAtStopStep) {
  // A callback stop after step 3 returns the post-step-3 model exactly —
  // same bytes as a plain max_steps = 3 run with the same seed.
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng_a(32);
  auto stopped = PlpTrainer(FastConfig())
                     .Train(corpus, rng_a,
                            [](const StepMetrics& m, const sgns::SgnsModel&) {
                              return m.step < 3;
                            });
  ASSERT_TRUE(stopped.ok());
  ASSERT_EQ(stopped->stop_reason, StopReason::kCallback);
  ASSERT_EQ(stopped->steps_executed, 3);

  PlpConfig truncated = FastConfig();
  truncated.max_steps = 3;
  Rng rng_b(32);
  auto reference = PlpTrainer(truncated).Train(corpus, rng_b);
  ASSERT_TRUE(reference.ok());
  ExpectModelsBitwiseEqual(stopped->model, reference->model);
}

TEST(DpSgdTrainerTest, ForcesLambdaOne) {
  PlpConfig config = FastConfig();
  config.grouping_factor = 6;
  config.split_factor = 1;
  const DpSgdTrainer baseline(config);
  EXPECT_EQ(baseline.config().grouping_factor, 1);
  EXPECT_EQ(baseline.config().local_update,
            LocalUpdateMode::kSingleGradient);
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng(14);
  auto result = baseline.Train(corpus, rng);
  ASSERT_TRUE(result.ok());
  for (const StepMetrics& m : result->history) {
    EXPECT_EQ(m.num_buckets, m.sampled_users);
  }
}

TEST(NonPrivateTrainerTest, LossDecreasesOverEpochs) {
  NonPrivateConfig config;
  config.sgns.embedding_dim = 8;
  config.sgns.negatives = 4;
  config.epochs = 8;
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng(15);
  auto result = NonPrivateTrainer(config).Train(corpus, rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->history.size(), 8u);
  EXPECT_LT(result->history.back().mean_loss,
            result->history.front().mean_loss);
}

TEST(NonPrivateTrainerTest, EpochCallbackStops) {
  NonPrivateConfig config;
  config.sgns.embedding_dim = 8;
  config.epochs = 50;
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng(16);
  auto result = NonPrivateTrainer(config).Train(
      corpus, rng,
      [](const EpochMetrics& m, const sgns::SgnsModel&) {
        return m.epoch < 2;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->history.size(), 2u);
}

TEST(NonPrivateTrainerTest, Deterministic) {
  NonPrivateConfig config;
  config.sgns.embedding_dim = 8;
  config.epochs = 2;
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng a(17), b(17);
  auto ra = NonPrivateTrainer(config).Train(corpus, a);
  auto rb = NonPrivateTrainer(config).Train(corpus, b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->history.back().mean_loss, rb->history.back().mean_loss);
}

TEST(NonPrivateTrainerTest, RejectsCorpusWithoutPairs) {
  data::TrainingCorpus corpus;
  corpus.num_locations = 5;
  corpus.user_sentences.push_back({{1}});  // single-token sentence
  NonPrivateConfig config;
  Rng rng(18);
  EXPECT_FALSE(NonPrivateTrainer(config).Train(corpus, rng).ok());
}

TEST(NonPrivateTrainerTest, ValidatesConfig) {
  NonPrivateConfig config;
  config.epochs = 0;
  const data::TrainingCorpus corpus = TinyCorpus();
  Rng rng(19);
  EXPECT_FALSE(NonPrivateTrainer(config).Train(corpus, rng).ok());
}

}  // namespace
}  // namespace plp::core
