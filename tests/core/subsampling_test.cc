#include <gtest/gtest.h>

#include "core/nonprivate_trainer.h"
#include "data/corpus.h"

namespace plp::core {
namespace {

/// Corpus where token 0 is extremely frequent and the rest are rare.
data::TrainingCorpus SkewedCorpus() {
  data::TrainingCorpus corpus;
  corpus.num_locations = 10;
  Rng rng(3);
  for (int32_t u = 0; u < 30; ++u) {
    std::vector<int32_t> sentence;
    for (int i = 0; i < 40; ++i) {
      // ~70% token 0, rest uniform over 1..9.
      sentence.push_back(
          rng.Bernoulli(0.7)
              ? 0
              : static_cast<int32_t>(rng.UniformInt(int64_t{1}, int64_t{9})));
    }
    corpus.user_sentences.push_back({std::move(sentence)});
  }
  return corpus;
}

TEST(SubsamplingTest, ValidatesThreshold) {
  NonPrivateConfig config;
  config.subsample_threshold = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config.subsample_threshold = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config.subsample_threshold = 1e-3;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(SubsamplingTest, DisabledIsBitIdenticalToBaseline) {
  const data::TrainingCorpus corpus = SkewedCorpus();
  NonPrivateConfig config;
  config.sgns.embedding_dim = 6;
  config.sgns.negatives = 4;
  config.epochs = 2;
  Rng rng_a(5), rng_b(5);
  auto a = NonPrivateTrainer(config).Train(corpus, rng_a);
  config.subsample_threshold = 0.0;  // explicit off
  auto b = NonPrivateTrainer(config).Train(corpus, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->history.back().mean_loss, b->history.back().mean_loss);
}

TEST(SubsamplingTest, TrainsAndStillLearns) {
  const data::TrainingCorpus corpus = SkewedCorpus();
  NonPrivateConfig config;
  config.sgns.embedding_dim = 6;
  config.sgns.negatives = 4;
  config.epochs = 6;
  config.subsample_threshold = 0.05;
  Rng rng(7);
  auto result = NonPrivateTrainer(config).Train(corpus, rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->history.size(), 6u);
  EXPECT_LT(result->history.back().mean_loss,
            result->history.front().mean_loss);
}

TEST(SubsamplingTest, AggressiveThresholdShrinksEpochs) {
  // Indirect observation: with a tiny threshold almost every occurrence of
  // the dominant token is dropped, so epochs process fewer pairs and run
  // faster. We can't read pair counts directly, but training must still
  // succeed even when some epochs produce very few pairs.
  const data::TrainingCorpus corpus = SkewedCorpus();
  NonPrivateConfig config;
  config.sgns.embedding_dim = 4;
  config.sgns.negatives = 2;
  config.epochs = 3;
  config.subsample_threshold = 1e-4;
  Rng rng(9);
  auto result = NonPrivateTrainer(config).Train(corpus, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->history.size(), 3u);
}

}  // namespace
}  // namespace plp::core
