#ifndef PLP_TESTS_GOLDEN_GOLDEN_VARIANTS_H_
#define PLP_TESTS_GOLDEN_GOLDEN_VARIANTS_H_

// The frozen corpus and trainer configurations behind the golden
// equivalence pins. Shared between tools/plp_golden_gen (which runs them
// to *produce* tests/golden/golden_pins.h) and
// tests/pipeline/golden_equivalence_test.cc (which runs them to *assert*
// against the pins), so the two can never drift apart. Changing anything
// here invalidates the pins — regenerate them and say so in the commit.

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "core/nonprivate_trainer.h"
#include "core/plp_trainer.h"
#include "data/fixtures.h"
#include "sgns/model.h"

namespace plp::golden {

inline constexpr uint64_t kGoldenSeed = 1234;

/// Version of the training stack's *numerics* the pins were generated
/// under. Bump this (and regenerate the pins) whenever an intentional
/// change alters the bit-exact training trajectory — e.g. a different
/// transcendental approximation or reduction order. plp_golden_gen stamps
/// the value into golden_pins.h, and the golden suite fails loudly when
/// the stamp disagrees: that means the pins predate the current numerics.
///
/// History: 1 = libm exp/LogSumExp softmax path (PR 5 and earlier);
/// 2 = fused max-shifted softmax over the bounded exp/sigmoid LUTs;
/// 3 = MoG accountant composes the all-or-nothing participation law
///     (whole-user sampling), so the mog ω = 2 ε trajectory equals ω = 1
///     instead of the unsound element-wise Binomial mixture's.
inline constexpr int kGoldenNumericsVersion = 3;

/// CRC-64/XZ over the raw bytes of the three tensors in tensor order —
/// the "model fingerprint" every pin stores. Tensors are walked row-wise
/// over the logical dims, so the fingerprint is independent of the
/// in-memory row padding.
inline uint64_t ModelCrc64(const sgns::SgnsModel& model) {
  std::string bytes;
  auto append = [&bytes](std::span<const double> values) {
    bytes.append(reinterpret_cast<const char*>(values.data()),
                 values.size() * sizeof(double));
  };
  for (int32_t l = 0; l < model.num_locations(); ++l) append(model.InRow(l));
  for (int32_t l = 0; l < model.num_locations(); ++l) append(model.OutRow(l));
  append(model.TensorData(sgns::Tensor::kBias));
  return Crc64(bytes);
}

inline data::TrainingCorpus GoldenCorpus() {
  data::FixtureCorpusOptions options;
  options.num_users = 48;
  options.num_locations = 24;
  options.neighborhood = 4;
  return data::MakeFixtureCorpus(777, options);
}

inline core::PlpConfig GoldenPrivateBase() {
  core::PlpConfig config;
  config.sgns.embedding_dim = 8;
  config.sgns.negatives = 4;
  config.sampling_probability = 0.25;
  config.grouping_factor = 2;
  config.noise_scale = 1.2;
  config.clip_norm = 0.5;
  config.epsilon_budget = 1e9;
  config.batch_size = 8;
  config.max_steps = 12;
  return config;
}

struct PrivateVariant {
  const char* name;
  core::PlpConfig config;
  bool dpsgd_facade = false;
};

inline std::vector<PrivateVariant> PrivateVariants() {
  std::vector<PrivateVariant> variants;
  variants.push_back({"default", GoldenPrivateBase()});
  {
    core::PlpConfig c = GoldenPrivateBase();
    c.grouping = core::GroupingKind::kEqualFrequency;
    variants.push_back({"equal_frequency", c});
  }
  {
    core::PlpConfig c = GoldenPrivateBase();
    c.split_factor = 2;
    variants.push_back({"split2", c});
  }
  {
    core::PlpConfig c = GoldenPrivateBase();
    variants.push_back({"dpsgd", c, /*dpsgd_facade=*/true});
  }
  {
    core::PlpConfig c = GoldenPrivateBase();
    c.noise_scale = 2.0;
    c.noise_scale_final = 1.0;
    c.noise_decay_steps = 8;
    variants.push_back({"schedule", c});
  }
  {
    core::PlpConfig c = GoldenPrivateBase();
    c.server_optimizer = "fixed_step";
    variants.push_back({"fixed_step", c});
  }
  {
    core::PlpConfig c = GoldenPrivateBase();
    c.per_tensor_noise = true;
    variants.push_back({"per_tensor", c});
  }
  {
    core::PlpConfig c = GoldenPrivateBase();
    c.fixed_denominator = false;
    variants.push_back({"realized_denom", c});
  }
  {
    core::PlpConfig c = GoldenPrivateBase();
    c.epsilon_budget = 4.0;  // exhausts before max_steps at these (q, σ)
    variants.push_back({"budget", c});
  }
  {
    // Frequency-proportional negatives (non-private research option).
    // Appended LAST so every pre-existing pin keeps its position and
    // value; the uniform-path variants above must stay bit-identical.
    core::PlpConfig c = GoldenPrivateBase();
    c.sgns.negative_sampling = sgns::NegativeSamplingKind::kUnigram;
    variants.push_back({"unigram", c});
  }
  {
    // Group-level Mixture-of-Gaussians accountant (PR 10). Appended after
    // "unigram" — same convention: earlier pins keep position and value.
    core::PlpConfig c = GoldenPrivateBase();
    c.accountant = "mog";
    variants.push_back({"mog", c});
  }
  {
    // MoG under ω = 2: ε must match the ω = 1 run bit-exactly —
    // participation is all-or-nothing, so the dominating pair (and the
    // joint multiplier σ) is the same at every ω.
    core::PlpConfig c = GoldenPrivateBase();
    c.accountant = "mog";
    c.split_factor = 2;
    variants.push_back({"mog_split2", c});
  }
  {
    // Fixed-batch sampling — only accountable by mog; also exercises the
    // FixedBatchSampler stage end to end.
    core::PlpConfig c = GoldenPrivateBase();
    c.accountant = "mog";
    c.sampling_scheme = core::SamplingScheme::kFixedBatch;
    variants.push_back({"mog_fixed_batch", c});
  }
  return variants;
}

inline core::NonPrivateConfig GoldenNonPrivateBase() {
  core::NonPrivateConfig config;
  config.sgns.embedding_dim = 8;
  config.sgns.negatives = 4;
  config.batch_size = 16;
  config.epochs = 8;
  return config;
}

struct NonPrivateVariant {
  const char* name;
  core::NonPrivateConfig config;
};

inline std::vector<NonPrivateVariant> NonPrivateVariants() {
  std::vector<NonPrivateVariant> variants;
  variants.push_back({"np_default", GoldenNonPrivateBase()});
  {
    core::NonPrivateConfig c = GoldenNonPrivateBase();
    c.subsample_threshold = 0.05;
    c.epochs = 6;
    variants.push_back({"np_subsample", c});
  }
  return variants;
}

}  // namespace plp::golden

#endif  // PLP_TESTS_GOLDEN_GOLDEN_VARIANTS_H_
