// plp_recommend — next-location recommendations from a saved model.
//
//   plp_recommend --model=model.plpm --history=12,7,33 [--k=10]
//
// `--model` accepts either a full model (SaveModel output) or the
// embeddings-only deployment artifact a device would download
// (SaveEmbeddings output); the format is auto-detected. `--history` is
// the user's recent check-in location ids (most recent last); the output
// is the top-k recommended next locations with scores.

#include <cstdio>
#include <iostream>
#include <utility>

#include "common/flags.h"
#include "eval/recommender.h"
#include "sgns/model_io.h"

namespace {

// Tries the full-model format first, then the deployment format
// (Section 3.3: "only the embedding matrix is deployed" — a serving host
// often has nothing else).
plp::Result<plp::eval::Recommender> LoadRecommender(
    const std::string& path) {
  auto model_or = plp::sgns::LoadModel(path);
  if (model_or.ok()) return plp::eval::Recommender(*model_or);
  if (model_or.status().code() == plp::StatusCode::kNotFound) {
    return model_or.status();
  }
  auto deployed_or = plp::sgns::LoadEmbeddings(path);
  if (!deployed_or.ok()) {
    return plp::InvalidArgumentError(
        path + " is neither a full model (" + model_or.status().message() +
        ") nor a deployment artifact (" + deployed_or.status().message() +
        ")");
  }
  return plp::eval::Recommender(deployed_or->num_locations, deployed_or->dim,
                                std::move(deployed_or->embeddings));
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = plp::FlagParser::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::cerr << "error: " << flags_or.status() << "\n";
    return 1;
  }
  const plp::FlagParser& flags = flags_or.value();
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty() || !flags.Has("history")) {
    std::cerr << "usage: plp_recommend --model=model.plpm "
                 "--history=12,7,33 [--k=10]\n";
    return 2;
  }

  auto recommender_or = LoadRecommender(model_path);
  if (!recommender_or.ok()) {
    std::cerr << "error: " << recommender_or.status() << "\n";
    return 1;
  }
  const plp::eval::Recommender& recommender = *recommender_or;

  std::vector<int32_t> history;
  for (int64_t id : flags.GetIntList("history", {})) {
    if (id < 0 || id >= recommender.num_locations()) {
      std::cerr << "error: location id " << id
                << " outside the model vocabulary [0, "
                << recommender.num_locations() << ")\n";
      return 1;
    }
    history.push_back(static_cast<int32_t>(id));
  }
  if (history.empty()) {
    std::cerr << "error: empty history\n";
    return 1;
  }

  const int32_t k = static_cast<int32_t>(flags.GetInt("k", 10));
  const std::vector<double> scores = recommender.Scores(history);
  std::printf("# rank  location  cosine_score\n");
  int rank = 1;
  for (int32_t l : recommender.TopK(history, k)) {
    std::printf("%5d  %8d  %.6f\n", rank++, l,
                scores[static_cast<size_t>(l)]);
  }
  return 0;
}
