// plp_recommend — next-location recommendations from a saved model.
//
//   plp_recommend --model=model.plpm --history=12,7,33 [--k=10]
//
// `--history` is the user's recent check-in location ids (most recent
// last); the output is the top-k recommended next locations with scores.

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "eval/recommender.h"
#include "sgns/model_io.h"

int main(int argc, char** argv) {
  auto flags_or = plp::FlagParser::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::cerr << "error: " << flags_or.status() << "\n";
    return 1;
  }
  const plp::FlagParser& flags = flags_or.value();
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty() || !flags.Has("history")) {
    std::cerr << "usage: plp_recommend --model=model.plpm "
                 "--history=12,7,33 [--k=10]\n";
    return 2;
  }

  auto model_or = plp::sgns::LoadModel(model_path);
  if (!model_or.ok()) {
    std::cerr << "error: " << model_or.status() << "\n";
    return 1;
  }
  const plp::eval::Recommender recommender(*model_or);

  std::vector<int32_t> history;
  for (int64_t id : flags.GetIntList("history", {})) {
    if (id < 0 || id >= recommender.num_locations()) {
      std::cerr << "error: location id " << id
                << " outside the model vocabulary [0, "
                << recommender.num_locations() << ")\n";
      return 1;
    }
    history.push_back(static_cast<int32_t>(id));
  }
  if (history.empty()) {
    std::cerr << "error: empty history\n";
    return 1;
  }

  const int32_t k = static_cast<int32_t>(flags.GetInt("k", 10));
  const std::vector<double> scores = recommender.Scores(history);
  std::printf("# rank  location  cosine_score\n");
  int rank = 1;
  for (int32_t l : recommender.TopK(history, k)) {
    std::printf("%5d  %8d  %.6f\n", rank++, l,
                scores[static_cast<size_t>(l)]);
  }
  return 0;
}
