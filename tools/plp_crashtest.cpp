// plp_crashtest — randomized SIGKILL/resume crash loop for the durable
// checkpoint subsystem.
//
// Each cycle forks a child that trains with checkpointing enabled and a
// kill fault armed at a random durability point (mid checkpoint payload,
// after the temp write, after the rename, mid training step, ...). The
// parent SIGKILL-loops the child until a run finally completes, then
// asserts the recovery invariants:
//
//   1. the final model is byte-identical to an uninterrupted reference run
//      (crashes never change what is learned, at any thread count);
//   2. the privacy-accountant trajectory is monotone in the step index and
//      every replayed step reports the bit-identical ε of the reference —
//      a killed-and-replayed step is the same mechanism draw, not a second
//      budget spend;
//   3. recovery always succeeds: no torn artifact is ever loaded.
//
//   plp_crashtest [--cycles=20] [--threads=1] [--seed=1] \
//                 [--trainer=private|nonprivate] \
//                 [--work_dir=crashtest-work] [--model_out=path] [--keep]
//
// Exits 0 iff every cycle passes. Prints the CRC-64 of the final model so
// separate invocations (e.g. --threads=1 vs --threads=4) can be compared.

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/atomic_file.h"
#include "common/fault_injection.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "core/nonprivate_trainer.h"
#include "core/plp_trainer.h"
#include "data/fixtures.h"
#include "sgns/model_io.h"

namespace {

using plp::ckpt::CheckpointOptions;

// Kill points exercised by the loop, spanning the whole commit protocol
// and the training loop around it.
const char* const kKillPoints[] = {
    "atomic_file.mid_payload", "atomic_file.after_temp_write",
    "atomic_file.after_rename", "ckpt.before_save",
    "ckpt.after_save",          "trainer.after_noise",
    "trainer.before_checkpoint",
};

struct Scenario {
  bool is_private = true;
  plp::core::PlpConfig plp;
  plp::core::NonPrivateConfig nonprivate;
  plp::data::TrainingCorpus corpus;
  uint64_t train_seed = 0;
};

Scenario MakeScenario(const std::string& trainer, int threads,
                      uint64_t seed) {
  Scenario s;
  s.is_private = trainer == "private";
  s.train_seed = seed;
  plp::data::FixtureCorpusOptions corpus_options;
  corpus_options.num_users = 48;
  corpus_options.num_locations = 24;
  corpus_options.neighborhood = 4;
  s.corpus = plp::data::MakeFixtureCorpus(seed * 77 + 7, corpus_options);

  s.plp.sgns.embedding_dim = 8;
  s.plp.sgns.negatives = 4;
  s.plp.sampling_probability = 0.25;
  s.plp.grouping_factor = 2;
  s.plp.noise_scale = 1.2;
  s.plp.clip_norm = 0.5;
  s.plp.epsilon_budget = 1e9;  // stop on max_steps, not the budget
  s.plp.batch_size = 8;
  s.plp.max_steps = 24;
  s.plp.num_threads = threads;

  s.nonprivate.sgns.embedding_dim = 8;
  s.nonprivate.sgns.negatives = 4;
  s.nonprivate.batch_size = 16;
  s.nonprivate.epochs = 10;
  return s;
}

// One training run (reference or crash-loop child). Appends a line per
// step/epoch to `log_fd` (O_APPEND, single write(2) per line → atomic and
// SIGKILL-durable): "<step> <metric-as-%a>". Saves the final model to
// `model_path` on completion.
plp::Status RunTraining(const Scenario& s, const CheckpointOptions& ckpt,
                        int log_fd, const std::string& model_path) {
  auto log_line = [log_fd](int64_t step, double metric) {
    if (log_fd < 0) return;
    char line[96];
    const int n =
        std::snprintf(line, sizeof(line), "%" PRId64 " %a\n", step, metric);
    if (n > 0) {
      const ssize_t written = write(log_fd, line, static_cast<size_t>(n));
      (void)written;
    }
  };
  plp::Rng rng(s.train_seed);
  plp::sgns::SgnsModel model;
  if (s.is_private) {
    auto result = plp::core::PlpTrainer(s.plp).Train(
        s.corpus, rng,
        [&](const plp::core::StepMetrics& m, const plp::sgns::SgnsModel&) {
          log_line(m.step, m.epsilon_spent);
          return true;
        },
        ckpt);
    if (!result.ok()) return result.status();
    model = std::move(result->model);
  } else {
    auto result = plp::core::NonPrivateTrainer(s.nonprivate)
                      .Train(s.corpus, rng,
                             [&](const plp::core::EpochMetrics& m,
                                 const plp::sgns::SgnsModel&) {
                               log_line(m.epoch, m.mean_loss);
                               return true;
                             },
                             ckpt);
    if (!result.ok()) return result.status();
    model = std::move(result->model);
  }
  return plp::sgns::SaveModel(model, model_path);
}

// step → exact metric bits, parsed from a child trajectory log.
using Trajectory = std::map<int64_t, double>;

bool ParseTrajectory(const std::string& path, bool require_monotone,
                     Trajectory& out) {
  auto contents = plp::ReadFileToString(path);
  if (!contents.ok()) {
    std::fprintf(stderr, "FAIL: cannot read trajectory %s: %s\n",
                 path.c_str(), contents.status().ToString().c_str());
    return false;
  }
  size_t pos = 0;
  const std::string& text = *contents;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    int64_t step = 0;
    double metric = 0.0;
    if (std::sscanf(line.c_str(), "%" SCNd64 " %la", &step, &metric) != 2) {
      std::fprintf(stderr, "FAIL: bad trajectory line '%s'\n", line.c_str());
      return false;
    }
    const auto [it, inserted] = out.emplace(step, metric);
    // Replayed steps must reproduce the identical value: same mechanism
    // draw, not a fresh spend.
    if (!inserted && std::memcmp(&it->second, &metric, sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "FAIL: step %" PRId64 " replayed with %a, first saw %a\n",
                   step, metric, it->second);
      return false;
    }
  }
  if (require_monotone) {
    double prev = -1.0;
    for (const auto& [step, eps] : out) {
      if (eps < prev) {
        std::fprintf(stderr,
                     "FAIL: eps regressed at step %" PRId64 " (%a < %a)\n",
                     step, eps, prev);
        return false;
      }
      prev = eps;
    }
  }
  return true;
}

bool BitwiseEqual(const Trajectory& a, const Trajectory& b) {
  if (a.size() != b.size()) return false;
  for (auto ia = a.begin(), ib = b.begin(); ia != a.end(); ++ia, ++ib) {
    if (ia->first != ib->first ||
        std::memcmp(&ia->second, &ib->second, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = plp::FlagParser::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "error: %s\n", flags_or.status().ToString().c_str());
    return 2;
  }
  const plp::FlagParser& flags = flags_or.value();
  const int cycles = static_cast<int>(flags.GetInt("cycles", 20));
  const int threads = static_cast<int>(flags.GetInt("threads", 1));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string trainer = flags.GetString("trainer", "private");
  const std::string work_dir =
      flags.GetString("work_dir", "crashtest-work");
  const std::string model_out = flags.GetString("model_out", "");
  const bool keep = flags.GetBool("keep", false);
  if (trainer != "private" && trainer != "nonprivate") {
    std::fprintf(stderr, "--trainer must be private or nonprivate\n");
    return 2;
  }

  const Scenario scenario = MakeScenario(trainer, threads, seed);
  std::filesystem::create_directories(work_dir);

  // Uninterrupted reference run (no checkpointing: the checkpoint path
  // must not perturb training, so the comparison is against a run that
  // never touches it).
  const std::string reference_model = work_dir + "/reference.plpm";
  const std::string reference_log = work_dir + "/reference.log";
  std::filesystem::remove(reference_log);
  int ref_fd = open(reference_log.c_str(),
                    O_WRONLY | O_APPEND | O_CREAT | O_TRUNC, 0644);
  if (ref_fd < 0) {
    std::perror("open reference log");
    return 2;
  }
  if (auto s = RunTraining(scenario, {}, ref_fd, reference_model); !s.ok()) {
    std::fprintf(stderr, "reference run failed: %s\n", s.ToString().c_str());
    return 2;
  }
  close(ref_fd);
  auto reference_bytes = plp::ReadFileToString(reference_model);
  if (!reference_bytes.ok()) {
    std::fprintf(stderr, "cannot read reference model\n");
    return 2;
  }
  Trajectory reference_trajectory;
  if (!ParseTrajectory(reference_log, scenario.is_private,
                       reference_trajectory)) {
    return 2;
  }

  plp::Rng driver_rng(seed ^ 0xC5A5C5A5C5A5C5A5ULL);
  int total_kills = 0;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    const std::string cycle_dir =
        work_dir + "/cycle" + std::to_string(cycle);
    std::filesystem::remove_all(cycle_dir);
    std::filesystem::create_directories(cycle_dir);
    const std::string log_path = cycle_dir + "/trajectory.log";
    const std::string model_path = cycle_dir + "/final.plpm";
    CheckpointOptions ckpt;
    ckpt.dir = cycle_dir + "/ckpts";
    ckpt.every_steps = 1 + static_cast<int64_t>(driver_rng.UniformInt(3));
    ckpt.resume = true;
    ckpt.keep_last = 2;

    // Kill the child a few times at random points, then let it finish.
    const int kill_budget = 1 + static_cast<int>(driver_rng.UniformInt(3));
    int kills = 0;
    bool done = false;
    for (int attempt = 0; !done && attempt < 64; ++attempt) {
      const bool arm = kills < kill_budget;
      const char* point =
          kKillPoints[driver_rng.UniformInt(std::size(kKillPoints))];
      const int64_t hit = 1 + static_cast<int64_t>(driver_rng.UniformInt(8));
      const pid_t pid = fork();
      if (pid < 0) {
        std::perror("fork");
        return 2;
      }
      if (pid == 0) {
        // Child: arm the fault, train with resume, report via exit code.
        if (arm) {
          plp::FaultInjection::Arm(point, plp::FaultMode::kKill, hit);
        }
        const int fd =
            open(log_path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
        if (fd < 0) _exit(4);
        const plp::Status status =
            RunTraining(scenario, ckpt, fd, model_path);
        if (!status.ok()) {
          std::fprintf(stderr, "child train error: %s\n",
                       status.ToString().c_str());
          _exit(3);
        }
        _exit(0);
      }
      int wstatus = 0;
      if (waitpid(pid, &wstatus, 0) != pid) {
        std::perror("waitpid");
        return 2;
      }
      if (WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL) {
        ++kills;  // killed mid-run; resume on the next attempt
        continue;
      }
      if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) {
        done = true;
        continue;
      }
      std::fprintf(stderr, "FAIL: cycle %d child died unexpectedly "
                   "(status 0x%x, armed %s@%" PRId64 ")\n",
                   cycle, wstatus, arm ? point : "nothing", hit);
      return 1;
    }
    if (!done) {
      std::fprintf(stderr, "FAIL: cycle %d never completed\n", cycle);
      return 1;
    }
    total_kills += kills;

    auto final_bytes = plp::ReadFileToString(model_path);
    if (!final_bytes.ok() || *final_bytes != *reference_bytes) {
      std::fprintf(stderr,
                   "FAIL: cycle %d final model differs from reference\n",
                   cycle);
      return 1;
    }
    Trajectory trajectory;
    if (!ParseTrajectory(log_path, scenario.is_private, trajectory)) {
      return 1;
    }
    if (!BitwiseEqual(trajectory, reference_trajectory)) {
      std::fprintf(stderr,
                   "FAIL: cycle %d trajectory differs from reference\n",
                   cycle);
      return 1;
    }
    std::printf("cycle %2d ok (%d kill%s survived)\n", cycle, kills,
                kills == 1 ? "" : "s");
    if (!keep) std::filesystem::remove_all(cycle_dir);
  }

  if (!model_out.empty()) {
    if (auto s = plp::AtomicWriteFile(model_out, *reference_bytes); !s.ok()) {
      std::fprintf(stderr, "cannot write %s\n", model_out.c_str());
      return 2;
    }
  }
  std::printf("PASS: %d cycles, %d SIGKILLs survived, trainer=%s threads=%d "
              "final model crc64=%016" PRIx64 "\n",
              cycles, total_kills, trainer.c_str(), threads,
              plp::Crc64(*reference_bytes));
  if (!keep) {
    std::filesystem::remove_all(work_dir);
  }
  return 0;
}
