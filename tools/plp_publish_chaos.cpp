// plp_publish_chaos — randomized fault schedule for the continuous
// train→publish→serve loop.
//
// A fault-free reference run first executes N supervisor cycles against a
// deterministic trainer and captures the encoded ε ledger. The chaos run
// then repeats the same N cycles with a fail-mode fault armed at a random
// publish-path point each cycle (staging, validation gates, ledger
// append, promote, CURRENT swap, fleet swap, snapshot verify), under a
// randomized trigger (one-shot, every-nth, or per-hit probability).
// After every cycle the loop invariants are asserted:
//
//   1. the cycle still ends published, with CURRENT resolving to a
//      version that passes VerifyCurrent (never a torn or unvalidated
//      artifact);
//   2. every shard serves a snapshot whose version AND checksum match a
//      ledger record — shards never serve bytes that were not published;
//   3. at the end, the chaos ledger is bit-identical to the fault-free
//      reference ledger: no ε was lost, double-counted, or reordered by
//      any injected failure.
//
// Two forced-failure cycles close the run: a persistent validation-gate
// failure must degrade (shards keep serving the prior version, CURRENT
// unmoved, freshness SLO reported), and a persistent fleet-swap failure
// must roll back CURRENT and the fleet to the last good version. A final
// clean cycle proves the loop recovers.
//
//   plp_publish_chaos [--cycles=20] [--threads=2] [--seed=1] \
//                     [--work_dir=publish-chaos-work] [--keep]
//
// Exits 0 iff every cycle and invariant passes.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>

#include "common/fault_injection.h"
#include "common/flags.h"
#include "common/rng.h"
#include "publish/supervisor.h"
#include "sgns/model.h"

namespace {

using plp::FaultInjection;
using plp::FaultMode;
using plp::FaultTrigger;

// Every fail-capable point on the publish path. (The atomic_file.* and
// ckpt.* kill points belong to plp_crashtest; this loop injects *errors*,
// the supervisor's retry/rollback machinery is what is under test.)
const char* const kFaultPoints[] = {
    "publish.stage",        "publish.validate",     "publish.ledger_append",
    "publish.promote",      "publish.current_swap", "publish.serve_swap",
    "snapshot.verify",
};

// Deterministic retrain stand-in: cycle c always yields the model seeded
// (seed, c) and a fixed per-round spend, so the reference and chaos runs
// produce byte-identical ledgers iff accounting survived the faults.
plp::publish::TrainFn MakeTrainer(uint64_t seed) {
  return [seed](uint64_t cycle) -> plp::Result<plp::publish::TrainedArtifact> {
    plp::Rng rng(seed * 1000003 + cycle);
    plp::sgns::SgnsConfig config;
    config.embedding_dim = 8;
    config.init_scale = 1.0;
    auto model = plp::sgns::SgnsModel::Create(48, config, rng);
    if (!model.ok()) return model.status();
    plp::publish::TrainedArtifact artifact;
    artifact.model = std::move(model).value();
    artifact.epsilon_spent = 0.125 * (1 + cycle % 3);
    artifact.steps = 10 + static_cast<int64_t>(cycle % 5);
    return artifact;
  };
}

plp::publish::SupervisorConfig MakeConfig(const std::string& dir) {
  plp::publish::SupervisorConfig config;
  config.publisher.publish_dir = dir;
  config.publisher.recall.num_queries = 32;
  // High attempt budget: every chaos cycle must eventually publish so the
  // ledger bit-compare stays meaningful; short backoff keeps it fast.
  config.max_attempts = 50;
  config.backoff_initial_millis = 1;
  config.backoff_max_millis = 8;
  return config;
}

plp::serve::ShardedConfig MakeShards(int shards) {
  plp::serve::ShardedConfig config;
  config.num_shards = static_cast<size_t>(shards);
  config.shard.num_threads = 1;
  return config;
}

// Invariant 2: every shard's installed snapshot must be one of the
// published versions, matched by version number AND checksum.
bool FleetServesPublishedBytes(plp::serve::ShardedServingEngine& engine,
                               const plp::publish::PublishLedger& ledger) {
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    const auto snapshot = engine.shard(s).registry().Current();
    if (snapshot == nullptr) {
      std::fprintf(stderr, "FAIL: shard %zu serves nothing\n", s);
      return false;
    }
    bool matched = false;
    for (const auto& record : ledger.records()) {
      if (record.version == snapshot->version() &&
          record.snapshot_checksum == snapshot->checksum()) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      std::fprintf(stderr,
                   "FAIL: shard %zu serves v%" PRIu64
                   " checksum %016" PRIx64 " matching no ledger record\n",
                   s, snapshot->version(), snapshot->checksum());
      return false;
    }
  }
  return true;
}

// One randomized arming per cycle. Triggers that would fail EVERY attempt
// (every-1st) are excluded here — persistent faults get their own forced
// phases below, where degraded mode and rollback are the expectation.
std::string ArmRandomFault(plp::Rng& rng) {
  const char* point = kFaultPoints[rng.UniformInt(std::size(kFaultPoints))];
  char label[96];
  switch (rng.UniformInt(3)) {
    case 0: {
      const int64_t hit = 1 + static_cast<int64_t>(rng.UniformInt(2));
      FaultInjection::Arm(point, FaultMode::kFail, FaultTrigger::Once(hit));
      std::snprintf(label, sizeof(label), "%s:fail@%" PRId64, point, hit);
      break;
    }
    case 1: {
      const int64_t period = 2 + static_cast<int64_t>(rng.UniformInt(2));
      FaultInjection::Arm(point, FaultMode::kFail,
                          FaultTrigger::EveryNth(period));
      std::snprintf(label, sizeof(label), "%s:fail@every%" PRId64, point,
                    period);
      break;
    }
    default: {
      const double p = 0.3 + 0.1 * static_cast<double>(rng.UniformInt(4));
      const uint64_t coin_seed = rng.UniformInt(1 << 20);
      FaultInjection::Arm(point, FaultMode::kFail,
                          FaultTrigger::WithProbability(p, coin_seed));
      std::snprintf(label, sizeof(label), "%s:fail@p%.1f/%" PRIu64, point, p,
                    coin_seed);
      break;
    }
  }
  return label;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = plp::FlagParser::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "error: %s\n", flags_or.status().ToString().c_str());
    return 2;
  }
  const plp::FlagParser& flags = flags_or.value();
  const int cycles = static_cast<int>(flags.GetInt("cycles", 20));
  const int shards = static_cast<int>(flags.GetInt("threads", 2));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string work_dir =
      flags.GetString("work_dir", "publish-chaos-work");
  const bool keep = flags.GetBool("keep", false);
  if (cycles < 1 || shards < 1) {
    std::fprintf(stderr, "--cycles and --threads must be >= 1\n");
    return 2;
  }

  const plp::publish::TrainFn trainer = MakeTrainer(seed);
  std::filesystem::remove_all(work_dir);
  std::filesystem::create_directories(work_dir);

  // ---- Fault-free reference: the ledger every chaos run must reproduce.
  std::string reference_ledger;
  {
    plp::serve::ShardedServingEngine engine(MakeShards(shards));
    auto supervisor = plp::publish::PublishSupervisor::Create(
        MakeConfig(work_dir + "/reference"), &engine);
    if (!supervisor.ok()) {
      std::fprintf(stderr, "reference supervisor: %s\n",
                   supervisor.status().ToString().c_str());
      return 2;
    }
    for (int c = 0; c < cycles; ++c) {
      auto report = supervisor->RunCycle(trainer);
      if (!report.ok() || !report->published) {
        std::fprintf(stderr, "reference cycle %d failed: %s\n", c,
                     (report.ok() ? report->failure : report.status())
                         .ToString()
                         .c_str());
        return 2;
      }
    }
    reference_ledger = supervisor->publisher().ledger().Encode();
  }

  // ---- Chaos run: same trainer, same cycle count, faults armed.
  const std::string chaos_dir = work_dir + "/chaos";
  plp::serve::ShardedServingEngine engine(MakeShards(shards));
  auto supervisor = plp::publish::PublishSupervisor::Create(
      MakeConfig(chaos_dir), &engine);
  if (!supervisor.ok()) {
    std::fprintf(stderr, "chaos supervisor: %s\n",
                 supervisor.status().ToString().c_str());
    return 2;
  }
  plp::Rng driver_rng(seed ^ 0xB7E151628AED2A6AULL);
  for (int c = 0; c < cycles; ++c) {
    const std::string armed = ArmRandomFault(driver_rng);
    auto report = supervisor->RunCycle(trainer);
    const int64_t fires = FaultInjection::FireCount();
    FaultInjection::Disarm();
    if (!report.ok()) {
      std::fprintf(stderr, "FAIL: cycle %d supervisor error: %s\n", c,
                   report.status().ToString().c_str());
      return 1;
    }
    // The bit-identity precondition: every cycle accounts its round's ε
    // exactly once, published or not. (A fault schedule CAN be
    // effectively persistent — e.g. snapshot.verify@every2 fires on
    // every multi-hit fleet-swap attempt — in which case rolling back or
    // degrading is the CORRECT outcome; losing or double-counting ε
    // never is.)
    const auto& ledger = supervisor->publisher().ledger();
    if (ledger.records().size() != static_cast<size_t>(c) + 1) {
      std::fprintf(stderr,
                   "FAIL: cycle %d under %s: ledger has %zu records, "
                   "want %d (ε lost or double-counted): %s\n",
                   c, armed.c_str(), ledger.records().size(), c + 1,
                   report->failure.ToString().c_str());
      return 1;
    }
    if (auto s = supervisor->publisher().VerifyCurrent(); !s.ok()) {
      std::fprintf(stderr, "FAIL: cycle %d CURRENT does not verify: %s\n", c,
                   s.ToString().c_str());
      return 1;
    }
    const char* outcome = "published";
    if (report->published) {
      auto current = supervisor->publisher().CurrentVersion();
      if (!current.ok() || *current != ledger.last()->version) {
        std::fprintf(stderr,
                     "FAIL: cycle %d CURRENT does not name the last "
                     "accounted version\n",
                     c);
        return 1;
      }
    } else {
      // Rolled back: CURRENT must sit on the last good version. Degraded
      // with no good version yet (a cycle-0 fleet-swap failure): CURRENT
      // stays on the accounted version — still validated, just unserved.
      outcome = report->rolled_back ? "rolled-back" : "degraded";
      const uint64_t expected = supervisor->last_good_version() != 0
                                    ? supervisor->last_good_version()
                                    : ledger.last()->version;
      auto current = supervisor->publisher().CurrentVersion();
      if (!current.ok() || *current != expected) {
        std::fprintf(stderr,
                     "FAIL: cycle %d %s but CURRENT is not v%" PRIu64 "\n",
                     c, outcome, expected);
        return 1;
      }
    }
    if (supervisor->last_good_version() != 0 &&
        !FleetServesPublishedBytes(engine, ledger)) {
      return 1;
    }
    std::printf("cycle %2d %s: v%" PRIu64 " armed=%s fired=%" PRId64
                " attempts=%d/%d/%d\n",
                c, outcome,
                report->published ? report->published_version
                                  : supervisor->last_good_version(),
                armed.c_str(), fires, report->train_attempts,
                report->publish_attempts, report->swap_attempts);
  }

  // Invariant 3: ε accounting is bit-identical to the fault-free run.
  if (supervisor->publisher().ledger().Encode() != reference_ledger) {
    std::fprintf(stderr,
                 "FAIL: chaos ledger differs from the fault-free "
                 "reference (ε lost, double-counted, or reordered)\n");
    return 1;
  }

  // ---- Forced persistent gate failure: degrade, don't break.
  const uint64_t good = supervisor->last_good_version();
  FaultInjection::Arm("publish.validate", FaultMode::kFail,
                      FaultTrigger::EveryNth(1));
  auto degraded = supervisor->RunCycle(trainer);
  FaultInjection::Disarm();
  if (!degraded.ok() || degraded->published || degraded->rolled_back ||
      degraded->serving_version != good ||
      *supervisor->publisher().CurrentVersion() != good ||
      degraded->swap_age_seconds < 0 || !degraded->within_slo) {
    std::fprintf(stderr, "FAIL: persistent gate failure did not degrade "
                 "cleanly on v%" PRIu64 "\n", good);
    return 1;
  }
  std::printf("gate-failure cycle ok: degraded on v%" PRIu64
              " (swap age %.3fs within SLO)\n",
              good, degraded->swap_age_seconds);

  // ---- Forced persistent fleet-swap failure: roll back to last good.
  FaultInjection::Arm("publish.serve_swap", FaultMode::kFail,
                      FaultTrigger::EveryNth(1));
  auto swap_failed = supervisor->RunCycle(trainer);
  FaultInjection::Disarm();
  if (!swap_failed.ok() || swap_failed->published ||
      !swap_failed->rolled_back || swap_failed->serving_version != good ||
      *supervisor->publisher().CurrentVersion() != good ||
      !FleetServesPublishedBytes(engine, supervisor->publisher().ledger())) {
    std::fprintf(stderr, "FAIL: persistent fleet-swap failure did not roll "
                 "back to v%" PRIu64 "\n", good);
    return 1;
  }
  std::printf("swap-failure cycle ok: rolled back to v%" PRIu64 "\n", good);

  // ---- And the loop recovers: one clean cycle publishes again.
  auto recovered = supervisor->RunCycle(trainer);
  if (!recovered.ok() || !recovered->published ||
      recovered->published_version <= good ||
      !supervisor->publisher().VerifyCurrent().ok()) {
    std::fprintf(stderr, "FAIL: loop did not recover after forced phases\n");
    return 1;
  }
  std::printf("recovery cycle ok: v%" PRIu64 " serving everywhere\n",
              recovered->published_version);

  std::printf("PASS: %d chaos cycles + forced gate/swap failures, "
              "shards=%d seed=%" PRIu64 ", ledger bit-identical to "
              "fault-free reference\n",
              cycles, shards, seed);
  if (!keep) std::filesystem::remove_all(work_dir);
  return 0;
}
