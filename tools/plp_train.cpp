// plp_train — train a next-location model from a check-in CSV and save it.
//
// Input CSV columns: user,location,timestamp,latitude,longitude (header
// row required; ids may be sparse — they are densified by ascending id).
//
//   plp_train --input=checkins.csv --output=model.plpm \
//             [--embeddings_output=embeddings.plpe] \
//             [--private=true] [--eps=2] [--delta=2e-4] [--sigma=2.5] \
//             [--q=0.06] [--lambda=4] [--clip=0.5] [--epochs=100] \
//             [--max_steps=N] [--accountant=rdp|pld_fft|mog] \
//             [--sampling_scheme=poisson|fixed_batch] [--print_config] \
//             [--negative_sampling=uniform|unigram] [--unigram_power=0.75] \
//             [--min_user_checkins=10] [--min_location_users=2] [--seed=1] \
//             [--checkpoint_dir=ckpts] [--checkpoint_every_steps=25] \
//             [--resume] [--rss_cap_mb=0]
//
// Instead of a CSV, --corpus_dir=DIR trains straight from an on-disk PLPD
// corpus (see plp_corpus_gen): shards are memory-mapped and check-ins are
// read zero-copy, so corpus size does not bound resident memory. The two
// data sources are mutually exclusive and exactly one is required.
//
// With --private=true (default) this runs Algorithm 1 under user-level
// (ε, δ)-DP; with --private=false it runs plain Adam for --epochs passes.
//
// Configuration errors report *every* invalid field in one message, before
// any data is read. --print_config validates, dumps the resolved pipeline
// stage configuration (which implementation fills each Algorithm 1 stage),
// and exits without training.
//
// With --checkpoint_dir, training commits a durable, checksummed snapshot
// every --checkpoint_every_steps steps (epochs when --private=false);
// --resume continues from the newest valid one after a crash, replaying
// the interrupted run bit-identically.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/flags.h"
#include "common/resource_usage.h"
#include "common/rng.h"
#include "core/nonprivate_trainer.h"
#include "core/plp_trainer.h"
#include "data/corpus.h"
#include "data/statistics.h"
#include "data/store/checkin_store.h"
#include "data/store/mmap_corpus.h"
#include "pipeline/standard_stages.h"
#include "sgns/model_io.h"

namespace {

int Fail(const plp::Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

plp::sgns::NegativeSamplingKind SamplingKindFromFlags(
    const plp::FlagParser& flags) {
  return flags.GetString("negative_sampling", "uniform") == "unigram"
             ? plp::sgns::NegativeSamplingKind::kUnigram
             : plp::sgns::NegativeSamplingKind::kUniform;
}

plp::core::PlpConfig PrivateConfigFromFlags(const plp::FlagParser& flags) {
  plp::core::PlpConfig config;
  config.epsilon_budget = flags.GetDouble("eps", 2.0);
  config.delta = flags.GetDouble("delta", 2e-4);
  config.noise_scale = flags.GetDouble("sigma", 2.5);
  config.sampling_probability = flags.GetDouble("q", 0.06);
  config.grouping_factor = static_cast<int32_t>(flags.GetInt("lambda", 4));
  config.clip_norm = flags.GetDouble("clip", 0.5);
  config.accountant = flags.GetString("accountant", "rdp");
  // An unknown scheme string keeps the default here; ValidatePrivateFlags
  // reports it (alongside every config violation) before this config is
  // ever trained with.
  if (auto scheme = plp::core::ParseSamplingScheme(
          flags.GetString("sampling_scheme", "poisson"));
      scheme.ok()) {
    config.sampling_scheme = *scheme;
  }
  config.max_steps = flags.GetInt("max_steps", config.max_steps);
  config.sgns.embedding_dim = static_cast<int32_t>(flags.GetInt("dim", 50));
  config.sgns.negative_sampling = SamplingKindFromFlags(flags);
  config.sgns.unigram_power = flags.GetDouble("unigram_power", 0.75);
  config.num_threads = static_cast<int32_t>(flags.GetInt("threads", 1));
  return config;
}

plp::core::NonPrivateConfig NonPrivateConfigFromFlags(
    const plp::FlagParser& flags) {
  plp::core::NonPrivateConfig config;
  config.epochs = flags.GetInt("epochs", 100);
  config.sgns.embedding_dim = static_cast<int32_t>(flags.GetInt("dim", 50));
  config.sgns.negative_sampling = SamplingKindFromFlags(flags);
  config.sgns.unigram_power = flags.GetDouble("unigram_power", 0.75);
  return config;
}

/// Appends a violation for an unparseable --sampling_scheme. Checked for
/// every run mode: the flag only affects private runs, but a typo like
/// --sampling_scheme=fixedbatch must be diagnosed — not silently fall
/// back to the Poisson default — even with --private=false.
void AppendSamplingSchemeViolation(const plp::FlagParser& flags,
                                   std::vector<std::string>& violations) {
  const std::string scheme = flags.GetString("sampling_scheme", "poisson");
  if (!plp::core::ParseSamplingScheme(scheme).ok()) {
    violations.emplace_back(
        "unknown --sampling_scheme (expected poisson or fixed_batch): " +
        scheme);
  }
}

plp::Status JoinViolations(std::vector<std::string> violations) {
  if (violations.empty()) return plp::Status::Ok();
  std::string message;
  for (size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) message += "; ";
    message += violations[i];
  }
  return plp::InvalidArgumentError(std::move(message));
}

/// Validates the private-run flag set, collecting flag-level violations
/// (an unparseable --sampling_scheme) together with every config-level
/// violation — including the (scheme, accountant) pairing rule, whose
/// message names the valid pairs — into one kInvalidArgument.
plp::Status ValidatePrivateFlags(const plp::FlagParser& flags) {
  std::vector<std::string> violations;
  AppendSamplingSchemeViolation(flags, violations);
  if (auto s = PrivateConfigFromFlags(flags).Validate(); !s.ok()) {
    violations.emplace_back(s.message());
  }
  return JoinViolations(std::move(violations));
}

/// Validates the non-private flag set under the same collect-all contract.
plp::Status ValidateNonPrivateFlags(const plp::FlagParser& flags) {
  std::vector<std::string> violations;
  AppendSamplingSchemeViolation(flags, violations);
  if (auto s = NonPrivateConfigFromFlags(flags).Validate(); !s.ok()) {
    violations.emplace_back(s.message());
  }
  return JoinViolations(std::move(violations));
}

/// Validates the data-source flag set, collecting every violation so one
/// run reports every mistake at once (same contract as config Validate()).
plp::Status ValidateDataFlags(const plp::FlagParser& flags) {
  const std::string input = flags.GetString("input", "");
  const std::string corpus_dir = flags.GetString("corpus_dir", "");
  std::vector<std::string> violations;
  if (input.empty() && corpus_dir.empty()) {
    violations.emplace_back(
        "one data source is required: --input=checkins.csv or "
        "--corpus_dir=DIR");
  }
  if (!input.empty() && !corpus_dir.empty()) {
    violations.emplace_back(
        "--input and --corpus_dir are mutually exclusive");
  }
  if (!corpus_dir.empty() &&
      (flags.Has("min_user_checkins") || flags.Has("min_location_users"))) {
    violations.emplace_back(
        "--min_user_checkins/--min_location_users apply only to --input "
        "(PLPD corpora are ingested as-is; filter at generation time)");
  }
  const std::string sampling =
      flags.GetString("negative_sampling", "uniform");
  if (sampling != "uniform" && sampling != "unigram") {
    violations.emplace_back(
        "unknown --negative_sampling (expected uniform or unigram): " +
        sampling);
  }
  if (flags.GetInt("rss_cap_mb", 0) < 0) {
    violations.emplace_back("--rss_cap_mb must be >= 0");
  }
  if (violations.empty()) return plp::Status::Ok();
  std::string message = "invalid flags: ";
  for (size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) message += "; ";
    message += violations[i];
  }
  return plp::InvalidArgumentError(std::move(message));
}

}  // namespace

int main(int argc, char** argv) {
  plp::FaultInjection::ArmFromEnv();  // PLP_FAULT=point[:mode][@hit]
  auto flags_or = plp::FlagParser::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const plp::FlagParser& flags = flags_or.value();
  const bool is_private = flags.GetBool("private", true);

  // Validate eagerly — every invalid field is reported in one message, so
  // a misconfigured run never waits on data loading to learn about the
  // second problem.
  if (is_private) {
    if (auto s = ValidatePrivateFlags(flags); !s.ok()) {
      return Fail(s);
    }
  } else {
    if (auto s = ValidateNonPrivateFlags(flags); !s.ok()) {
      return Fail(s);
    }
  }

  if (flags.GetBool("print_config", false)) {
    if (is_private) {
      std::printf("%s", plp::pipeline::DescribeStages(
                            PrivateConfigFromFlags(flags)).c_str());
    } else {
      const plp::core::NonPrivateConfig config =
          NonPrivateConfigFromFlags(flags);
      std::printf(
          "pipeline stages (non-private baseline):\n"
          "  UserSampler      null (whole corpus every epoch)\n"
          "  Grouper          null\n"
          "  LocalUpdater     epoch_sgd(batch=%d, epochs=%lld)\n"
          "  DeltaClipper     identity\n"
          "  NoisyAggregator  zero_noise\n"
          "  Accountant       null (eps = 0)\n"
          "  ServerOptimizer  sparse_adam\n",
          config.batch_size, static_cast<long long>(config.epochs));
    }
    return 0;
  }

  const std::string input = flags.GetString("input", "");
  const std::string corpus_dir = flags.GetString("corpus_dir", "");
  const std::string output = flags.GetString("output", "");
  if (output.empty() || (input.empty() && corpus_dir.empty())) {
    std::cerr << "usage: plp_train {--input=checkins.csv | --corpus_dir=DIR}"
                 " --output=model.plpm"
                 " [--private=true --eps=2 | --private=false --epochs=100]\n";
    return 2;
  }
  if (auto s = ValidateDataFlags(flags); !s.ok()) return Fail(s);

  // Exactly one of these backs `corpus`: an in-RAM tokenization of the
  // CSV, or a zero-copy view over the memory-mapped PLPD shards.
  std::unique_ptr<plp::data::TrainingCorpus> ram_corpus;
  std::unique_ptr<plp::data::store::MmapCorpus> mmap_corpus;
  const plp::data::CorpusView* corpus = nullptr;
  if (!input.empty()) {
    auto dataset_or = plp::data::CheckInDataset::LoadCsv(input);
    if (!dataset_or.ok()) return Fail(dataset_or.status());
    const plp::data::CheckInDataset dataset = dataset_or->Filter(
        flags.GetInt("min_user_checkins", 10),
        flags.GetInt("min_location_users", 2));
    std::printf("loaded %s\n%s\n\n", input.c_str(),
                plp::data::ComputeStats(dataset).ToString().c_str());
    auto corpus_or = plp::data::BuildCorpus(dataset);
    if (!corpus_or.ok()) return Fail(corpus_or.status());
    ram_corpus = std::make_unique<plp::data::TrainingCorpus>(
        std::move(*corpus_or));
    corpus = ram_corpus.get();
  } else {
    auto store_or = plp::data::store::CheckInStore::Open(corpus_dir);
    if (!store_or.ok()) return Fail(store_or.status());
    mmap_corpus =
        std::make_unique<plp::data::store::MmapCorpus>(store_or.value());
    std::printf("mapped %s: %d users, %d locations, %lld check-ins\n\n",
                corpus_dir.c_str(), mmap_corpus->NumUsers(),
                mmap_corpus->NumLocations(),
                static_cast<long long>(mmap_corpus->NumTokens()));
    // Full statistics touch every shard page, which inflates peak RSS far
    // beyond what training needs — opt in explicitly.
    if (flags.GetBool("stats", false)) {
      std::printf("%s\n\n",
                  plp::data::ComputeStats(*mmap_corpus).ToString().c_str());
    }
    corpus = mmap_corpus.get();
  }

  plp::ckpt::CheckpointOptions checkpoint;
  checkpoint.dir = flags.GetString("checkpoint_dir", "");
  checkpoint.every_steps = flags.GetInt("checkpoint_every_steps", 25);
  checkpoint.resume = flags.GetBool("resume", false);

  plp::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  plp::sgns::SgnsModel model;
  if (is_private) {
    const plp::core::PlpConfig config = PrivateConfigFromFlags(flags);
    auto result = plp::core::PlpTrainer(config).Train(
        *corpus, rng,
        [](const plp::core::StepMetrics& m, const plp::sgns::SgnsModel&) {
          if (m.step % 50 == 0) {
            std::printf(
                "  step %5lld  eps %.3f  local loss %.3f  clipped %3.0f%%\n",
                static_cast<long long>(m.step), m.epsilon_spent,
                m.mean_local_loss, 100.0 * m.clip_fraction);
          }
          return true;
        },
        checkpoint);
    if (!result.ok()) return Fail(result.status());
    std::printf("trained %lld private steps; spent eps=%.3f at "
                "delta=%.0e (user-level, %s accountant)\n",
                static_cast<long long>(result->steps_executed),
                result->epsilon_spent, config.delta,
                config.accountant.c_str());
    model = std::move(result->model);
  } else {
    auto result = plp::core::NonPrivateTrainer(NonPrivateConfigFromFlags(flags))
                      .Train(*corpus, rng, nullptr, checkpoint);
    if (!result.ok()) return Fail(result.status());
    std::printf("trained %zu non-private epochs (final loss %.4f)\n",
                result->history.size(), result->history.back().mean_loss);
    model = std::move(result->model);
  }

  if (auto s = plp::sgns::SaveModel(model, output); !s.ok()) return Fail(s);
  std::printf("model -> %s\n", output.c_str());
  const std::string embeddings = flags.GetString("embeddings_output", "");
  if (!embeddings.empty()) {
    if (auto s = plp::sgns::SaveEmbeddings(model, embeddings); !s.ok()) {
      return Fail(s);
    }
    std::printf("deployment embeddings -> %s\n", embeddings.c_str());
  }

  const int64_t peak_rss_mb = plp::PeakRssBytes() >> 20;
  std::printf("peak RSS: %lld MiB\n", static_cast<long long>(peak_rss_mb));
  const int64_t rss_cap_mb = flags.GetInt("rss_cap_mb", 0);
  if (rss_cap_mb > 0 && peak_rss_mb > rss_cap_mb) {
    std::cerr << "error: peak RSS " << peak_rss_mb << " MiB exceeds --rss_cap_mb="
              << rss_cap_mb << "\n";
    return 3;
  }
  return 0;
}
