// plp_corpus_gen — stream a synthetic check-in corpus to an on-disk PLPD
// directory without ever materializing it in memory.
//
//   plp_corpus_gen --output_dir=corpus/ [--users=100000] [--locations=100000]
//                  [--clusters=64] [--seed=1] [--scale=small|paper|custom]
//                  [--target_shard_mb=64] [--max_checkins_per_user=2000]
//
// Each user's trajectory is generated and appended to the store writer,
// then dropped — resident memory is O(locations + users), never
// O(check-ins), so million-user corpora fit in a laptop-sized heap. The
// resulting directory is opened for training with
// `plp_train --corpus_dir=...`.
//
// --scale picks a base configuration (small = test-sized, paper = the
// paper's 4602x5069 dimensions, custom = SyntheticConfig defaults);
// --users / --locations / --clusters override it. The tool prints the
// corpus totals and the process peak RSS so scale smokes can assert a
// memory bound.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/flags.h"
#include "common/resource_usage.h"
#include "common/rng.h"
#include "data/store/store_writer.h"
#include "data/synthetic_generator.h"

namespace {

int Fail(const plp::Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = plp::FlagParser::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const plp::FlagParser& flags = flags_or.value();

  const std::string output_dir = flags.GetString("output_dir", "");
  if (output_dir.empty()) {
    std::cerr << "usage: plp_corpus_gen --output_dir=DIR [--users=N]"
                 " [--locations=L] [--clusters=K] [--seed=1]"
                 " [--scale=small|paper|custom]\n";
    return 2;
  }

  const std::string scale = flags.GetString("scale", "custom");
  plp::data::SyntheticConfig config;
  if (scale == "small") {
    config = plp::data::SmallSyntheticConfig();
  } else if (scale == "paper") {
    config = plp::data::PaperSyntheticConfig();
  } else if (scale != "custom") {
    return Fail(plp::InvalidArgumentError(
        "unknown --scale (expected small, paper, or custom): " + scale));
  }
  if (flags.Has("users")) {
    config.num_users = static_cast<int32_t>(flags.GetInt("users", 0));
  }
  if (flags.Has("locations")) {
    config.num_locations = static_cast<int32_t>(flags.GetInt("locations", 0));
  }
  if (flags.Has("clusters")) {
    config.num_clusters = static_cast<int32_t>(flags.GetInt("clusters", 0));
  }
  if (flags.Has("max_checkins_per_user")) {
    config.max_checkins_per_user =
        static_cast<int32_t>(flags.GetInt("max_checkins_per_user", 0));
  }

  plp::data::store::StoreWriterOptions options;
  options.target_shard_bytes = flags.GetInt("target_shard_mb", 64) << 20;

  auto writer_or =
      plp::data::store::CheckInStoreWriter::Create(output_dir, options);
  if (!writer_or.ok()) return Fail(writer_or.status());
  plp::data::store::CheckInStoreWriter& writer = **writer_or;

  plp::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  if (auto s = plp::data::GenerateSyntheticCheckInsToStore(config, rng, writer);
      !s.ok()) {
    return Fail(s);
  }
  if (auto s = writer.Finish(); !s.ok()) return Fail(s);

  std::printf("wrote PLPD corpus -> %s\n", output_dir.c_str());
  std::printf("  users      %d\n", writer.users_appended());
  std::printf("  locations  %d (visited; of %d configured)\n",
              writer.vocab_size(), config.num_locations);
  std::printf("  check-ins  %lld\n",
              static_cast<long long>(writer.tokens_appended()));
  std::printf("peak RSS: %lld MiB\n",
              static_cast<long long>(plp::PeakRssBytes() >> 20));
  return 0;
}
