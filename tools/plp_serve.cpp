// plp_serve — interactive next-location serving loop over stdin/stdout.
//
//   plp_serve --model=model.plpm [--threads=4] [--k=10]
//             [--capacity=100000] [--history_len=16]
//
// `--model` accepts a full model or an embeddings-only deployment
// artifact. One request per input line, one response line per request:
//
//   REC <user_id> <location_id> [k]   append a check-in to the user's
//                                     session and recommend top-k
//   HIST <l1,l2,...> [k]              stateless request with an explicit
//                                     history (no session touched)
//   SWAP <path> [version]             hot-swap to a new model file; live
//                                     requests keep the old snapshot
//   STATS                             dump the metrics table
//   QUIT                              drain and exit
//
// Successful recommendations print `OK v<version> loc:score ...`
// (best first); failures print `ERR <CODE>: <message>` and the loop
// continues — per-request errors never take the server down.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "serve/serving_engine.h"

namespace {

using plp::serve::Request;
using plp::serve::Response;
using plp::serve::ScoredLocation;

void PrintResponse(const Response& response) {
  if (!response.status.ok()) {
    std::cout << "ERR " << response.status.ToString() << "\n";
    return;
  }
  std::cout << "OK v" << response.model_version;
  for (const ScoredLocation& s : response.topk) {
    std::printf(" %d:%.6f", s.location, static_cast<double>(s.score));
  }
  std::cout << "\n";
}

std::vector<int32_t> ParseIdList(const std::string& csv) {
  std::vector<int32_t> ids;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    try {
      ids.push_back(static_cast<int32_t>(std::stol(token)));
    } catch (...) {
      return {};
    }
  }
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = plp::FlagParser::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::cerr << "error: " << flags_or.status() << "\n";
    return 1;
  }
  const plp::FlagParser& flags = flags_or.value();
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) {
    std::cerr << "usage: plp_serve --model=model.plpm [--threads=4] "
                 "[--k=10] [--capacity=100000] [--history_len=16]\n";
    return 2;
  }

  plp::serve::ServingConfig config;
  config.num_threads = static_cast<int32_t>(flags.GetInt("threads", 4));
  config.sessions.capacity =
      static_cast<size_t>(flags.GetInt("capacity", 100000));
  config.sessions.history_length =
      static_cast<int32_t>(flags.GetInt("history_len", 16));
  const int32_t default_k = static_cast<int32_t>(flags.GetInt("k", 10));

  plp::serve::ServingEngine engine(config);
  uint64_t next_version = 1;
  if (plp::Status s = engine.PublishFile(model_path, next_version);
      !s.ok()) {
    std::cerr << "error: " << s << "\n";
    return 1;
  }
  {
    const auto snapshot = engine.registry().Current();
    std::cerr << "serving " << model_path << ": "
              << snapshot->num_locations() << " locations, dim "
              << snapshot->dim() << ", checksum " << std::hex
              << snapshot->checksum() << std::dec << ", "
              << snapshot->memory_bytes() / 1024 << " KiB resident\n";
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty()) continue;

    if (command == "QUIT") break;

    if (command == "STATS") {
      engine.metrics().PrintTable(std::cout);
      continue;
    }

    if (command == "SWAP") {
      std::string path;
      in >> path;
      uint64_t version = next_version + 1;
      // A failed extraction would zero `version`; parse into a temp.
      if (uint64_t v = 0; in >> v) version = v;
      if (path.empty()) {
        std::cout << "ERR INVALID_ARGUMENT: usage: SWAP <path> [version]\n";
        continue;
      }
      if (plp::Status s = engine.PublishFile(path, version); !s.ok()) {
        std::cout << "ERR " << s.ToString() << "\n";
        continue;
      }
      next_version = version;
      const auto snapshot = engine.registry().Current();
      std::cout << "OK swapped to v" << snapshot->version() << " checksum "
                << std::hex << snapshot->checksum() << std::dec
                << " (generation " << engine.registry().generation()
                << ")\n";
      continue;
    }

    if (command == "REC") {
      Request request;
      request.k = default_k;
      if (!(in >> request.user_id >> request.new_checkin)) {
        std::cout << "ERR INVALID_ARGUMENT: usage: REC <user> <loc> [k]\n";
        continue;
      }
      if (int32_t k = 0; in >> k) request.k = k;
      PrintResponse(engine.Recommend(request));
      continue;
    }

    if (command == "HIST") {
      std::string csv;
      if (!(in >> csv)) {
        std::cout << "ERR INVALID_ARGUMENT: usage: HIST <l1,l2,...> [k]\n";
        continue;
      }
      Request request;
      request.k = default_k;
      request.history = ParseIdList(csv);
      if (request.history.empty()) {
        std::cout << "ERR INVALID_ARGUMENT: bad id list '" << csv << "'\n";
        continue;
      }
      if (int32_t k = 0; in >> k) request.k = k;
      PrintResponse(engine.Recommend(request));
      continue;
    }

    std::cout << "ERR INVALID_ARGUMENT: unknown command '" << command
              << "'\n";
  }
  engine.metrics().PrintTable(std::cerr);
  return 0;
}
