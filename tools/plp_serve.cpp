// plp_serve — interactive next-location serving loop over stdin/stdout.
//
//   plp_serve --model=model.plpm [--threads=4] [--k=10]
//             [--capacity=100000] [--history_len=16] [--max_queue=1024]
//             [--shards=1] [--format=f32] [--ivf=false] [--nprobe=0]
//
// `--model` accepts a full model or an embeddings-only deployment
// artifact. `--shards` runs the sharded engine (requests route by user
// id; sessions and metrics are per-shard, STATS aggregates them).
// `--format` stores the snapshot as f32 (exact, the default), fp16, or
// int8; `--ivf` builds the candidate-pruning index at load and
// `--nprobe` overrides its probe width (0 = the index default, which is
// the recall-gated setting). One request per input line, one response
// line per request:
//
//   REC <user_id> <location_id> [k]   append a check-in to the user's
//                                     session and recommend top-k
//   HIST <l1,l2,...> [k]              stateless request with an explicit
//                                     history (no session touched)
//   SWAP <path> [version]             hot-swap to a new model file; live
//                                     requests keep the old snapshot
//   STATS                             dump the metrics table
//   QUIT                              drain and exit
//
// Successful recommendations print `OK v<version> loc:score ...`
// (best first); failures print `ERR <CODE>: <message>` and the loop
// continues — per-request errors never take the server down. Wire-level
// garbage gets the same treatment: unknown commands, unparseable fields,
// oversized lines (> 64 KiB) and oversized id lists each produce one
// structured `ERR INVALID_ARGUMENT: ...` line and bump the
// `protocol_errors` counter instead of desynchronizing the loop. When the
// engine sheds load (`--max_queue` admission bound), the response is
// `ERR OVERLOADED: ...` and counts as `requests_overloaded`.
//
// SIGTERM/SIGINT drain gracefully: the loop stops accepting input, any
// request already handed to the engine finishes (engine teardown joins
// its workers), the final STATS table goes to stderr, and the process
// exits 0 — so an orchestrator's stop is indistinguishable from QUIT.

#include <csignal>

#include <atomic>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "serve/sharded_engine.h"

namespace {

using plp::serve::Request;
using plp::serve::Response;
using plp::serve::ScoredLocation;

// Wire-level bounds: a line (and so an id list) a client can send is
// capped so hostile or corrupted input degrades into one structured error
// instead of an unbounded allocation.
constexpr size_t kMaxLineBytes = 64 * 1024;
constexpr size_t kMaxHistoryIds = 4096;

// Set from the SIGTERM/SIGINT handler; the accept loop checks it between
// lines. The handlers are installed WITHOUT SA_RESTART so a blocking
// stdin read returns EINTR instead of resuming — a signal that lands
// mid-getline still drains promptly.
volatile std::sig_atomic_t g_drain_requested = 0;

void RequestDrain(int /*signum*/) { g_drain_requested = 1; }

void InstallDrainHandlers() {
  struct sigaction action = {};
  action.sa_handler = RequestDrain;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

void PrintResponse(const Response& response) {
  if (!response.status.ok()) {
    if (response.status.code() == plp::StatusCode::kResourceExhausted) {
      // Shed by the engine's admission bound, not a caller mistake.
      std::cout << "ERR OVERLOADED: " << response.status.message() << "\n";
      return;
    }
    std::cout << "ERR " << response.status.ToString() << "\n";
    return;
  }
  std::cout << "OK v" << response.model_version;
  for (const ScoredLocation& s : response.topk) {
    std::printf(" %d:%.6f", s.location, static_cast<double>(s.score));
  }
  std::cout << "\n";
}

std::vector<int32_t> ParseIdList(const std::string& csv) {
  std::vector<int32_t> ids;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (ids.size() >= kMaxHistoryIds) return {};
    try {
      ids.push_back(static_cast<int32_t>(std::stol(token)));
    } catch (...) {
      return {};
    }
  }
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = plp::FlagParser::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::cerr << "error: " << flags_or.status() << "\n";
    return 1;
  }
  const plp::FlagParser& flags = flags_or.value();
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) {
    std::cerr << "usage: plp_serve --model=model.plpm [--threads=4] "
                 "[--k=10] [--capacity=100000] [--history_len=16] "
                 "[--max_queue=1024] [--shards=1] [--format=f32] "
                 "[--ivf=false] [--nprobe=0]\n";
    return 2;
  }

  plp::serve::ShardedConfig config;
  config.num_shards = static_cast<int32_t>(flags.GetInt("shards", 1));
  config.shard.num_threads = static_cast<int32_t>(flags.GetInt("threads", 4));
  config.shard.sessions.capacity =
      static_cast<size_t>(flags.GetInt("capacity", 100000));
  config.shard.sessions.history_length =
      static_cast<int32_t>(flags.GetInt("history_len", 16));
  config.shard.max_queue =
      static_cast<int32_t>(flags.GetInt("max_queue", 1024));
  config.shard.nprobe = static_cast<int32_t>(flags.GetInt("nprobe", 0));
  config.shard.snapshot.build_ivf = flags.GetBool("ivf", false);
  const int32_t default_k = static_cast<int32_t>(flags.GetInt("k", 10));
  {
    auto format_or =
        plp::serve::ParseSnapshotFormat(flags.GetString("format", "f32"));
    if (!format_or.ok()) {
      std::cerr << "error: " << format_or.status() << "\n";
      return 2;
    }
    config.shard.snapshot.format = format_or.value();
  }

  plp::serve::ShardedServingEngine engine(config);
  uint64_t next_version = 1;
  if (plp::Status s = engine.PublishFile(model_path, next_version);
      !s.ok()) {
    std::cerr << "error: " << s << "\n";
    return 1;
  }
  {
    // Every shard holds an identical replica; shard 0 speaks for all.
    const auto snapshot = engine.shard(0).registry().Current();
    std::cerr << "serving " << model_path << ": "
              << snapshot->num_locations() << " locations, dim "
              << snapshot->dim() << ", format "
              << plp::serve::FormatName(snapshot->format()) << ", checksum "
              << std::hex << snapshot->checksum() << std::dec << ", "
              << snapshot->memory_bytes() / 1024 << " KiB resident, "
              << engine.num_shards() << " shard(s)\n";
  }

  // One structured error line per protocol violation; the loop always
  // stays line-synchronized with the client. Protocol errors happen
  // before any request exists to route, so they count on shard 0 — the
  // aggregated STATS view sums shards and still shows them all.
  auto protocol_error = [&engine](const std::string& message) {
    engine.shard(0).metrics().protocol_errors.fetch_add(
        1, std::memory_order_relaxed);
    std::cout << "ERR INVALID_ARGUMENT: " << message << "\n";
  };

  InstallDrainHandlers();
  std::string line;
  while (!g_drain_requested && std::getline(std::cin, line)) {
    if (g_drain_requested) break;  // signal landed mid-line
    if (line.size() > kMaxLineBytes) {
      protocol_error("line exceeds " + std::to_string(kMaxLineBytes) +
                     " bytes");
      continue;
    }
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty()) continue;

    if (command == "QUIT") break;

    if (command == "STATS") {
      engine.PrintStats(std::cout);
      continue;
    }

    if (command == "SWAP") {
      std::string path;
      in >> path;
      uint64_t version = next_version + 1;
      // A failed extraction would zero `version`; parse into a temp.
      if (uint64_t v = 0; in >> v) version = v;
      if (path.empty()) {
        protocol_error("usage: SWAP <path> [version]");
        continue;
      }
      if (plp::Status s = engine.PublishFile(path, version); !s.ok()) {
        std::cout << "ERR " << s.ToString() << "\n";
        continue;
      }
      next_version = version;
      const auto snapshot = engine.shard(0).registry().Current();
      std::cout << "OK swapped to v" << snapshot->version() << " checksum "
                << std::hex << snapshot->checksum() << std::dec
                << " (generation "
                << engine.shard(0).registry().generation() << ")\n";
      continue;
    }

    if (command == "REC") {
      Request request;
      request.k = default_k;
      if (!(in >> request.user_id >> request.new_checkin)) {
        protocol_error("usage: REC <user> <loc> [k]");
        continue;
      }
      if (int32_t k = 0; in >> k) request.k = k;
      PrintResponse(engine.Recommend(request));
      continue;
    }

    if (command == "HIST") {
      std::string csv;
      if (!(in >> csv)) {
        protocol_error("usage: HIST <l1,l2,...> [k]");
        continue;
      }
      Request request;
      request.k = default_k;
      request.history = ParseIdList(csv);
      if (request.history.empty()) {
        protocol_error("bad id list (unparseable, empty, or more than " +
                       std::to_string(kMaxHistoryIds) + " ids)");
        continue;
      }
      if (int32_t k = 0; in >> k) request.k = k;
      PrintResponse(engine.Recommend(request));
      continue;
    }

    protocol_error("unknown command '" + command + "'");
  }
  if (g_drain_requested) {
    std::cout.flush();
    std::cerr << "drain: signal received, responses flushed, exiting\n";
  }
  engine.PrintStats(std::cerr);
  return 0;
}
