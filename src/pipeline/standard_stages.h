#ifndef PLP_PIPELINE_STANDARD_STAGES_H_
#define PLP_PIPELINE_STANDARD_STAGES_H_

#include <memory>
#include <string>

#include "core/config.h"
#include "core/nonprivate_trainer.h"
#include "pipeline/engine.h"
#include "pipeline/stages.h"

namespace plp::pipeline {

/// The stage configuration of Algorithm 1 (PlpTrainer): Poisson sampler,
/// λ-grouper, per-bucket local SGD, per-tensor C/√3 clip, Gaussian sum
/// query, ledger accountant selected by `config.accountant`, and the
/// configured server optimizer. `config` must already be Validate()d.
StageSet MakePrivateStages(const core::PlpConfig& config);
EngineConfig MakePrivateEngineConfig(const core::PlpConfig& config);

/// The stage configuration of the non-private baseline: null sampler and
/// grouper, a whole-round epoch SGD updater sharing its lazy sparse Adam
/// with the "sparse_adam" server stage, identity clipper, zero-noise
/// aggregator, and the null accountant (ε = 0, never exhausts).
StageSet MakeNonPrivateStages(const core::NonPrivateConfig& config);
EngineConfig MakeNonPrivateEngineConfig(const core::NonPrivateConfig& config);

/// The accountant stage selected by `config.accountant` ("rdp" → the RDP
/// moments-accountant ledger, "pld_fft" → the FFT-composed privacy-loss-
/// distribution accountant of Koskela et al., arXiv:1906.03049, "mog" →
/// the group-level Mixture-of-Gaussians accountant of Ganesh,
/// arXiv:2401.10294 — the exact PLD of the pipeline's all-or-nothing
/// participation law, and the only one accepting fixed_batch rounds).
/// Aborts on names Validate() would reject.
std::unique_ptr<Accountant> MakeAccountant(const core::PlpConfig& config);

/// One line per stage naming the chosen implementation and its parameters
/// (plp_train --print_config).
std::string DescribeStages(const core::PlpConfig& config);

}  // namespace plp::pipeline

#endif  // PLP_PIPELINE_STANDARD_STAGES_H_
