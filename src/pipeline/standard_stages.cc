#include "pipeline/standard_stages.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/bucket_update.h"
#include "optim/optimizers.h"
#include "privacy/ledger.h"
#include "privacy/mog_accountant.h"
#include "privacy/pld_accountant.h"
#include "sgns/loss.h"
#include "sgns/pairs.h"

namespace plp::pipeline {
namespace {

// ---------------------------------------------------------------------------
// Algorithm 1 stages (PlpTrainer / DpSgdTrainer)

/// Line 5: U_sample ~ Poisson(q) over the user ids.
class PoissonSampler final : public UserSampler {
 public:
  explicit PoissonSampler(double q) : q_(q) {}

  std::vector<int32_t> Sample(const data::CorpusView& corpus,
                              Rng& rng) override {
    return core::PoissonSampleUsers(corpus.NumUsers(), q_, rng);
  }

 private:
  double q_;
};

/// Line 5, fixed-batch variant: exactly B = round(q·N) distinct users
/// every round. Only meaningful with the "mog" accountant (config
/// validation enforces the pairing).
class FixedBatchSampler final : public UserSampler {
 public:
  explicit FixedBatchSampler(double q) : q_(q) {}

  std::vector<int32_t> Sample(const data::CorpusView& corpus,
                              Rng& rng) override {
    return core::FixedBatchSampleUsers(
        corpus.NumUsers(), core::FixedBatchSize(corpus.NumUsers(), q_), rng);
  }

 private:
  double q_;
};

/// Line 6: groupData(U_sample, λ, ω) per the configured GroupingKind. The
/// split bound ω is enforced here — the ω·C sensitivity argument of the
/// aggregator is unsound without it, so violation aborts rather than
/// erroring.
class ConfiguredGrouper final : public Grouper {
 public:
  explicit ConfiguredGrouper(const core::PlpConfig& config)
      : config_(config) {}

  std::vector<core::Bucket> Group(const data::CorpusView& corpus,
                                  const std::vector<int32_t>& sampled,
                                  Rng& rng) override {
    std::vector<core::Bucket> buckets =
        core::BuildBuckets(corpus, sampled, config_, rng);
    PLP_CHECK_LE(core::RealizedSplitFactor(buckets), config_.split_factor);
    return buckets;
  }

 private:
  core::PlpConfig config_;
};

/// Lines 7–8 / 15–20: local SGD on a bucket from θ_t, raw delta out.
class BucketSgdUpdater final : public LocalUpdater {
 public:
  explicit BucketSgdUpdater(const core::PlpConfig& config)
      : config_(config) {}

  bool BucketParallel() const override { return true; }

  Status Prepare(const data::CorpusView& corpus, const sgns::SgnsModel& model,
                 Rng& rng) override {
    (void)model;
    (void)rng;  // table construction is deterministic — no draws
    if (config_.sgns.negative_sampling ==
        sgns::NegativeSamplingKind::kUnigram) {
      negative_table_.emplace(data::CountTokenFrequencies(corpus),
                              config_.sgns.unigram_power);
    }
    return Status::Ok();
  }

  void ComputeDelta(const sgns::SgnsModel& theta, const core::Bucket& bucket,
                    int32_t num_locations, Rng& bucket_rng, double* loss_out,
                    sgns::TrainScratch* scratch,
                    sgns::SparseDelta& delta) override {
    core::ComputeRawBucketDeltaInto(
        theta, bucket, config_, num_locations, bucket_rng, loss_out, scratch,
        delta, negative_table_.has_value() ? &*negative_table_ : nullptr);
  }

 private:
  core::PlpConfig config_;
  std::optional<sgns::UnigramTable> negative_table_;
};

/// Line 21 (per-layer form, Section 4.1): each tensor clipped to C/√|θ|.
class PerTensorClipper final : public DeltaClipper {
 public:
  explicit PerTensorClipper(double clip_norm) : clip_norm_(clip_norm) {}

  bool Clip(sgns::SparseDelta& delta) const override {
    return delta.ClipPerTensor(
        clip_norm_ / std::sqrt(static_cast<double>(sgns::kNumTensors)));
  }

 private:
  double clip_norm_;
};

/// Line 9: Σ + N(0, σ_t²·ω²·C²·I), then the fixed-denominator (or
/// realized-|H|) averaging of Section 4.1.
class GaussianAggregator final : public NoisyAggregator {
 public:
  explicit GaussianAggregator(const core::PlpConfig& config)
      : config_(config) {}

  void Prepare(const data::CorpusView& corpus) override {
    // Fixed-denominator estimator: E[|H|] = q·N/λ (never below 1).
    expected_buckets_ =
        std::max(1.0, config_.sampling_probability *
                          static_cast<double>(corpus.NumUsers()) /
                          static_cast<double>(config_.grouping_factor));
  }

  void Reduce(std::span<const sgns::SparseDelta* const> deltas,
              sgns::DenseUpdate& sum, ThreadPool* pool) override {
    sgns::AccumulateDeltas(deltas, 1.0, sum, pool);
  }

  void NoiseAndAverage(const AggregateContext& ctx,
                       sgns::DenseUpdate& sum) override {
    const double sigma_t = core::NoiseScaleAt(config_, ctx.step);
    const double sensitivity =
        static_cast<double>(config_.split_factor) * config_.clip_norm;
    if (config_.per_tensor_noise) {
      const double per_tensor_std =
          sigma_t * sensitivity /
          std::sqrt(static_cast<double>(sgns::kNumTensors));
      for (int ti = 0; ti < sgns::kNumTensors; ++ti) {
        sum.AddGaussianNoiseToTensor(static_cast<sgns::Tensor>(ti),
                                     ctx.noise_seed, per_tensor_std,
                                     ctx.pool);
      }
    } else {
      sum.AddGaussianNoise(ctx.noise_seed, sigma_t * sensitivity, ctx.pool);
    }
    const double denominator =
        config_.fixed_denominator
            ? expected_buckets_
            : std::max<double>(1.0, static_cast<double>(ctx.num_buckets));
    sum.Scale(1.0 / denominator, ctx.pool);
  }

 private:
  core::PlpConfig config_;
  double expected_buckets_ = 1.0;
};

/// Poisson-only accountants must refuse fixed-batch rounds — their
/// dominating pairs certify a different mechanism. Config validation
/// rejects the pairing up front; this is the stage-level backstop for
/// hand-assembled StageSets, and its message names the valid pairs.
Status RejectNonPoissonRound(const char* accountant_name,
                             const RoundRecord& round) {
  if (round.scheme == core::SamplingScheme::kPoisson) return Status::Ok();
  return InvalidArgumentError(
      std::string("accountant \"") + accountant_name +
      "\" models Poisson sampling only; valid (scheme, accountant) pairs "
      "are poisson x {rdp, pld_fft, mog} and fixed_batch x {mog}");
}

/// Lines 3 + 11–13 with the RDP moments-accountant ledger (the default).
class LedgerAccountant final : public Accountant {
 public:
  explicit LedgerAccountant(const core::PlpConfig& config)
      : config_(config), ledger_(config.delta) {}

  Result<BudgetDecision> TrackRound(const RoundRecord& round) override {
    PLP_RETURN_IF_ERROR(RejectNonPoissonRound("rdp", round));
    PLP_RETURN_IF_ERROR(
        ledger_.TrackStep(round.sampling_ratio, round.noise_multiplier));
    BudgetDecision decision;
    decision.epsilon_after =
        ledger_.CumulativeEpsilon(config_.rdp_conversion);
    decision.exhausted = decision.epsilon_after > config_.epsilon_budget;
    return decision;
  }

  Result<BudgetDecision> TrackRounds(const RoundRecord& first,
                                     int64_t count) override {
    // Bulk fast path: RDP accumulation is O(orders) per round; the
    // RDP → (ε, δ) conversion is done once at the end instead of per
    // round. σ_t is recomputed per step so the sweep stays exact under a
    // noise-decay schedule.
    PLP_RETURN_IF_ERROR(RejectNonPoissonRound("rdp", first));
    for (int64_t i = 0; i < count; ++i) {
      PLP_RETURN_IF_ERROR(ledger_.TrackStep(
          first.sampling_ratio,
          core::EffectiveNoiseMultiplier(config_, first.step + i)));
    }
    BudgetDecision decision;
    decision.epsilon_after =
        ledger_.CumulativeEpsilon(config_.rdp_conversion);
    decision.exhausted = decision.epsilon_after > config_.epsilon_budget;
    return decision;
  }

  double EpsilonSpent() const override {
    return ledger_.CumulativeEpsilon(config_.rdp_conversion);
  }

  std::string SaveBlob() const override {
    ByteWriter writer;
    ledger_.SaveState(writer);
    return writer.Take();
  }

  Status RestoreBlob(const std::string& blob, int64_t step) override {
    ByteReader reader(blob);
    PLP_ASSIGN_OR_RETURN(privacy::PrivacyLedger restored,
                         privacy::PrivacyLedger::Restore(reader));
    if (!reader.AtEnd()) {
      return InvalidArgumentError("checkpoint: trailing ledger bytes");
    }
    if (restored.delta() != config_.delta) {
      return InvalidArgumentError("checkpoint δ disagrees with config");
    }
    // Ledger-first invariant: a snapshot at step k carries exactly k
    // tracked steps — the ledger always covers the model's spends.
    if (restored.total_steps() != step) {
      return InvalidArgumentError(
          "checkpoint ledger steps disagree with step counter");
    }
    ledger_ = std::move(restored);
    return Status::Ok();
  }

 private:
  core::PlpConfig config_;
  privacy::PrivacyLedger ledger_;
};

/// Lines 3 + 11–13 with the FFT privacy-loss-distribution accountant
/// (Koskela et al.) — the pluggable-seam proof. Same tracking policy and
/// checkpoint invariants as the ledger, different (tighter) ε oracle.
class PldFftAccountant final : public Accountant {
 public:
  explicit PldFftAccountant(const core::PlpConfig& config)
      : config_(config), pld_(config.delta) {}

  Result<BudgetDecision> TrackRound(const RoundRecord& round) override {
    PLP_RETURN_IF_ERROR(RejectNonPoissonRound("pld_fft", round));
    PLP_RETURN_IF_ERROR(
        pld_.AddSteps(round.sampling_ratio, round.noise_multiplier, 1));
    BudgetDecision decision;
    decision.epsilon_after = pld_.CumulativeEpsilon();
    decision.exhausted = decision.epsilon_after > config_.epsilon_budget;
    return decision;
  }

  Result<BudgetDecision> TrackRounds(const RoundRecord& first,
                                     int64_t count) override {
    // Bulk fast path: appending entries is O(1) each; ε is composed once
    // at the end instead of per round (one FFT instead of `count`).
    PLP_RETURN_IF_ERROR(RejectNonPoissonRound("pld_fft", first));
    for (int64_t i = 0; i < count; ++i) {
      PLP_RETURN_IF_ERROR(pld_.AddSteps(
          first.sampling_ratio,
          core::EffectiveNoiseMultiplier(config_, first.step + i), 1));
    }
    BudgetDecision decision;
    decision.epsilon_after = pld_.CumulativeEpsilon();
    decision.exhausted = decision.epsilon_after > config_.epsilon_budget;
    return decision;
  }

  double EpsilonSpent() const override { return pld_.CumulativeEpsilon(); }

  std::string SaveBlob() const override {
    ByteWriter writer;
    pld_.SaveState(writer);
    return writer.Take();
  }

  Status RestoreBlob(const std::string& blob, int64_t step) override {
    ByteReader reader(blob);
    PLP_ASSIGN_OR_RETURN(privacy::PldAccountant restored,
                         privacy::PldAccountant::Restore(reader));
    if (!reader.AtEnd()) {
      return InvalidArgumentError("checkpoint: trailing ledger bytes");
    }
    if (restored.delta() != config_.delta) {
      return InvalidArgumentError("checkpoint δ disagrees with config");
    }
    if (restored.total_steps() != step) {
      return InvalidArgumentError(
          "checkpoint ledger steps disagree with step counter");
    }
    pld_ = std::move(restored);
    return Status::Ok();
  }

 private:
  core::PlpConfig config_;
  privacy::PldAccountant pld_;
};

/// One pipeline RoundRecord as `steps` identical MoG accountant rounds.
/// Poisson rounds zero the fixed-batch fields so identical mechanisms
/// coalesce (and serialize) canonically.
privacy::MogRound ToMogRound(const RoundRecord& round, int64_t steps) {
  privacy::MogRound mog;
  if (round.scheme == core::SamplingScheme::kFixedBatch) {
    mog.sampling = privacy::MogSampling::kFixedBatch;
    mog.batch_size = round.batch_size;
    mog.population = round.population;
  } else {
    mog.sampling = privacy::MogSampling::kPoisson;
  }
  mog.sampling_ratio = round.sampling_ratio;
  mog.noise_multiplier = round.noise_multiplier;
  mog.split_factor = round.split_factor;
  mog.steps = steps;
  return mog;
}

/// Lines 3 + 11–13 with the group-level Mixture-of-Gaussians accountant
/// (Ganesh, arXiv:2401.10294) — tight in ω and the only stage accountant
/// covering both sampling schemes. Same tracking policy and checkpoint
/// invariants as the ledger, ω-aware ε oracle.
class MogStageAccountant final : public Accountant {
 public:
  explicit MogStageAccountant(const core::PlpConfig& config)
      : config_(config), mog_(config.delta) {}

  Result<BudgetDecision> TrackRound(const RoundRecord& round) override {
    PLP_RETURN_IF_ERROR(mog_.AddRounds(ToMogRound(round, 1)));
    return Decide();
  }

  Result<BudgetDecision> TrackRounds(const RoundRecord& first,
                                     int64_t count) override {
    // Bulk fast path: identical-σ runs coalesce inside the accountant, so
    // a schedule-free sweep composes with one DFT power per mechanism
    // instead of one per round. σ_t is still recomputed per step for
    // schedule correctness.
    RoundRecord round = first;
    for (int64_t i = 0; i < count; ++i) {
      round.step = first.step + i;
      round.noise_multiplier =
          core::EffectiveNoiseMultiplier(config_, round.step);
      PLP_RETURN_IF_ERROR(mog_.AddRounds(ToMogRound(round, 1)));
    }
    return Decide();
  }

  double EpsilonSpent() const override { return mog_.CumulativeEpsilon(); }

  std::string SaveBlob() const override {
    ByteWriter writer;
    mog_.SaveState(writer);
    return writer.Take();
  }

  Status RestoreBlob(const std::string& blob, int64_t step) override {
    ByteReader reader(blob);
    PLP_ASSIGN_OR_RETURN(privacy::MogAccountant restored,
                         privacy::MogAccountant::Restore(reader));
    if (!reader.AtEnd()) {
      return InvalidArgumentError("checkpoint: trailing ledger bytes");
    }
    if (restored.delta() != config_.delta) {
      return InvalidArgumentError("checkpoint δ disagrees with config");
    }
    if (restored.total_steps() != step) {
      return InvalidArgumentError(
          "checkpoint ledger steps disagree with step counter");
    }
    mog_ = std::move(restored);
    return Status::Ok();
  }

 private:
  BudgetDecision Decide() const {
    BudgetDecision decision;
    decision.epsilon_after = mog_.CumulativeEpsilon();
    decision.exhausted = decision.epsilon_after > config_.epsilon_budget;
    return decision;
  }

  core::PlpConfig config_;
  privacy::MogAccountant mog_;
};

/// Line 10 through the optim::ServerOptimizer registry ("dp_adam" /
/// "fixed_step").
class OptimServerAdapter final : public ServerOptimizer {
 public:
  explicit OptimServerAdapter(std::unique_ptr<optim::ServerOptimizer> inner)
      : inner_(std::move(inner)) {}

  void Apply(const sgns::DenseUpdate& update,
             sgns::SgnsModel& model) override {
    inner_->ApplyUpdate(update, model);
  }
  const char* name() const override { return inner_->name(); }
  void SaveState(ByteWriter& writer) const override {
    inner_->SaveState(writer);
  }
  Status LoadState(ByteReader& reader,
                   const sgns::SgnsModel& model) override {
    return inner_->LoadState(reader, model);
  }

 private:
  std::unique_ptr<optim::ServerOptimizer> inner_;
};

// ---------------------------------------------------------------------------
// Non-private baseline stages: the same engine with sampling, clipping,
// noise and accounting all degenerate.

/// Samples nothing — the non-private round always uses the whole corpus.
class NullSampler final : public UserSampler {
 public:
  std::vector<int32_t> Sample(const data::CorpusView& corpus,
                              Rng& rng) override {
    (void)corpus;
    (void)rng;
    return {};
  }
};

/// Groups nothing — the whole-round updater reads the corpus directly.
class NullGrouper final : public Grouper {
 public:
  std::vector<core::Bucket> Group(const data::CorpusView& corpus,
                                  const std::vector<int32_t>& sampled,
                                  Rng& rng) override {
    (void)corpus;
    (void)sampled;
    (void)rng;
    return {};
  }
};

/// No bound on local updates.
class IdentityClipper final : public DeltaClipper {
 public:
  bool Clip(sgns::SparseDelta& delta) const override {
    (void)delta;
    return false;
  }
};

/// Sum only, σ = 0, denominator 1 — plain aggregation. Unused by the
/// whole-round updater but keeps the non-private StageSet total, so the
/// same StageSet also drives bucket-parallel updaters noise-free (the
/// sensitivity suite's pre-noise sum uses this shape).
class ZeroNoiseAggregator final : public NoisyAggregator {
 public:
  void Reduce(std::span<const sgns::SparseDelta* const> deltas,
              sgns::DenseUpdate& sum, ThreadPool* pool) override {
    sgns::AccumulateDeltas(deltas, 1.0, sum, pool);
  }
  void NoiseAndAverage(const AggregateContext& ctx,
                       sgns::DenseUpdate& sum) override {
    (void)ctx;
    (void)sum;
  }
};

/// ε = 0 forever; the checkpoint ledger blob is empty and must stay so.
class NullAccountant final : public Accountant {
 public:
  Result<BudgetDecision> TrackRound(const RoundRecord& round) override {
    (void)round;
    return BudgetDecision{};
  }
  double EpsilonSpent() const override { return 0.0; }
  std::string SaveBlob() const override { return {}; }
  Status RestoreBlob(const std::string& blob, int64_t step) override {
    (void)step;
    if (!blob.empty()) {
      return InvalidArgumentError(
          "checkpoint payload disagrees with the non-private trainer");
    }
    return Status::Ok();
  }
};

/// The non-private "server": checkpoint surface for the lazy sparse Adam
/// that the whole-round updater drives directly. Apply is a no-op — the
/// updater already folded every batch into the model.
class SparseAdamServer final : public ServerOptimizer {
 public:
  explicit SparseAdamServer(const optim::AdamConfig& config)
      : config_(config) {}

  Status Prepare(const sgns::SgnsModel& model) override {
    adam_.emplace(model, config_);
    return Status::Ok();
  }
  void Apply(const sgns::DenseUpdate& update,
             sgns::SgnsModel& model) override {
    (void)update;
    (void)model;
  }
  const char* name() const override { return "sparse_adam"; }
  void SaveState(ByteWriter& writer) const override {
    adam_->SaveState(writer);
  }
  Status LoadState(ByteReader& reader,
                   const sgns::SgnsModel& model) override {
    return adam_->LoadState(reader, model);
  }

  optim::SparseAdam* adam() { return &*adam_; }

 private:
  optim::AdamConfig config_;
  std::optional<optim::SparseAdam> adam_;
};

/// The whole non-private epoch as one round: subsample/regenerate pairs,
/// shuffle, per-batch sparse-Adam descent. Owns the main RNG stream for
/// the round; the engine draws no seeds in whole-round mode.
class EpochSgdUpdater final : public LocalUpdater {
 public:
  EpochSgdUpdater(const core::NonPrivateConfig& config,
                  SparseAdamServer* server)
      : config_(config), server_(server) {}

  bool BucketParallel() const override { return false; }

  Status Prepare(const data::CorpusView& corpus,
                 const sgns::SgnsModel& model, Rng& rng) override {
    (void)model;
    // One corpus scan feeds both the subsampling keep probabilities and
    // the unigram negative-sampling table (when either is enabled).
    const bool wants_unigram = config_.sgns.negative_sampling ==
                               sgns::NegativeSamplingKind::kUnigram;
    std::vector<int64_t> counts;
    if (wants_unigram || config_.subsample_threshold > 0.0) {
      counts = data::CountTokenFrequencies(corpus);
    }
    if (wants_unigram) {
      negative_table_.emplace(counts, config_.sgns.unigram_power);
    }
    // Per-token keep probabilities for word2vec-style subsampling of
    // frequent locations (non-private only; see the config comment).
    keep_probability_.clear();
    if (config_.subsample_threshold > 0.0) {
      int64_t total = 0;
      for (const int64_t c : counts) total += c;
      keep_probability_.resize(counts.size(), 1.0);
      for (size_t l = 0; l < counts.size(); ++l) {
        if (counts[l] == 0) continue;
        const double f =
            static_cast<double>(counts[l]) / static_cast<double>(total);
        const double ratio = config_.subsample_threshold / f;
        keep_probability_[l] = std::min(1.0, std::sqrt(ratio) + ratio);
      }
    }
    // Without subsampling the pair set is static: build it once (consuming
    // no randomness) and let every epoch shuffle a pristine-order copy.
    // With subsampling, every epoch builds a fresh pristine-order
    // subsample. Either way an epoch depends only on the RNG position at
    // its start, which is what lets a resumed run replay the remaining
    // epochs bit-identically.
    pristine_pairs_.clear();
    if (keep_probability_.empty()) {
      pristine_pairs_ = BuildPairs(corpus, rng);
      if (pristine_pairs_.empty()) {
        return InvalidArgumentError(
            "corpus produced no training pairs (sentences shorter than 2?)");
      }
    }
    return Status::Ok();
  }

  Result<double> WholeRound(const data::CorpusView& corpus,
                            sgns::SgnsModel& model, Rng& rng) override {
    all_pairs_ =
        keep_probability_.empty() ? pristine_pairs_ : BuildPairs(corpus, rng);
    rng.Shuffle(all_pairs_);
    double loss_sum = 0.0;
    int64_t pairs = 0;
    for (size_t start = 0; start < all_pairs_.size();
         start += static_cast<size_t>(config_.batch_size)) {
      const size_t end =
          std::min(all_pairs_.size(),
                   start + static_cast<size_t>(config_.batch_size));
      const std::span<const sgns::Pair> batch(all_pairs_.data() + start,
                                              end - start);
      sgns::SparseDelta gradient(config_.sgns.embedding_dim);
      const sgns::BatchStats stats = sgns::AccumulateBatchGradient(
          model, batch, config_.sgns, corpus.NumLocations(), rng, gradient,
          /*buffers=*/nullptr,
          negative_table_.has_value() ? &*negative_table_ : nullptr);
      server_->adam()->ApplyGradient(
          gradient, 1.0 / static_cast<double>(batch.size()), model);
      loss_sum += stats.loss_sum;
      pairs += stats.num_pairs;
    }
    return pairs == 0 ? 0.0 : loss_sum / static_cast<double>(pairs);
  }

 private:
  std::vector<sgns::Pair> BuildPairs(const data::CorpusView& corpus,
                                     Rng& pair_rng) const {
    std::vector<sgns::Pair> pairs;
    std::vector<std::span<const int32_t>> sentences;
    std::vector<int32_t> filtered;
    for (int32_t u = 0; u < corpus.NumUsers(); ++u) {
      sentences.clear();
      corpus.AppendUserSentences(u, sentences);
      for (const auto& s : sentences) {
        std::span<const int32_t> sentence = s;
        if (!keep_probability_.empty()) {
          filtered.clear();
          for (int32_t token : s) {
            if (pair_rng.Bernoulli(
                    keep_probability_[static_cast<size_t>(token)])) {
              filtered.push_back(token);
            }
          }
          sentence = filtered;
        }
        std::vector<sgns::Pair> p =
            sgns::GeneratePairs(sentence, config_.sgns.window);
        pairs.insert(pairs.end(), p.begin(), p.end());
      }
    }
    return pairs;
  }

  core::NonPrivateConfig config_;
  SparseAdamServer* server_;  ///< owned by the same StageSet
  std::optional<sgns::UnigramTable> negative_table_;
  std::vector<double> keep_probability_;
  std::vector<sgns::Pair> pristine_pairs_;
  std::vector<sgns::Pair> all_pairs_;
};

}  // namespace

std::unique_ptr<Accountant> MakeAccountant(const core::PlpConfig& config) {
  if (config.accountant == "rdp") {
    return std::make_unique<LedgerAccountant>(config);
  }
  if (config.accountant == "mog") {
    return std::make_unique<MogStageAccountant>(config);
  }
  PLP_CHECK(config.accountant == "pld_fft");
  return std::make_unique<PldFftAccountant>(config);
}

StageSet MakePrivateStages(const core::PlpConfig& config) {
  StageSet stages;
  if (config.sampling_scheme == core::SamplingScheme::kFixedBatch) {
    stages.sampler =
        std::make_unique<FixedBatchSampler>(config.sampling_probability);
  } else {
    stages.sampler =
        std::make_unique<PoissonSampler>(config.sampling_probability);
  }
  stages.grouper = std::make_unique<ConfiguredGrouper>(config);
  stages.updater = std::make_unique<BucketSgdUpdater>(config);
  stages.clipper = std::make_unique<PerTensorClipper>(config.clip_norm);
  stages.aggregator = std::make_unique<GaussianAggregator>(config);
  stages.accountant = MakeAccountant(config);
  stages.server = std::make_unique<OptimServerAdapter>(
      optim::MakeServerOptimizer(config.server_optimizer, config.adam));
  return stages;
}

EngineConfig MakePrivateEngineConfig(const core::PlpConfig& config) {
  EngineConfig engine;
  engine.sgns = config.sgns;
  engine.max_steps = config.max_steps;
  engine.num_threads = config.num_threads;
  engine.kind = ckpt::TrainerKind::kPrivate;
  engine.policy.scheme = config.sampling_scheme;
  engine.policy.sampling_ratio = config.sampling_probability;
  engine.policy.split_factor = config.split_factor;
  engine.policy.enforce_split_bound = true;
  engine.policy.noise_multiplier_at = [config](int64_t step) {
    return core::EffectiveNoiseMultiplier(config, step);
  };
  return engine;
}

StageSet MakeNonPrivateStages(const core::NonPrivateConfig& config) {
  StageSet stages;
  auto server = std::make_unique<SparseAdamServer>(config.adam);
  stages.updater = std::make_unique<EpochSgdUpdater>(config, server.get());
  stages.server = std::move(server);
  stages.sampler = std::make_unique<NullSampler>();
  stages.grouper = std::make_unique<NullGrouper>();
  stages.clipper = std::make_unique<IdentityClipper>();
  stages.aggregator = std::make_unique<ZeroNoiseAggregator>();
  stages.accountant = std::make_unique<NullAccountant>();
  return stages;
}

EngineConfig MakeNonPrivateEngineConfig(const core::NonPrivateConfig& config) {
  EngineConfig engine;
  engine.sgns = config.sgns;
  engine.max_steps = config.epochs;
  engine.num_threads = 1;
  engine.kind = ckpt::TrainerKind::kNonPrivate;
  return engine;
}

std::string DescribeStages(const core::PlpConfig& config) {
  const auto grouping_name = [&] {
    return config.grouping == core::GroupingKind::kRandom ? "random"
                                                          : "equal_frequency";
  };
  const auto updater_name = [&] {
    return config.local_update == core::LocalUpdateMode::kMultiBatchSgd
               ? "multi_batch_sgd"
               : "single_gradient";
  };
  std::string out;
  out += "pipeline stages (Algorithm 1):\n";
  out += "  UserSampler      " +
         std::string(core::SamplingSchemeName(config.sampling_scheme)) +
         "(q=" + std::to_string(config.sampling_probability) + ")\n";
  out += "  Grouper          " + std::string(grouping_name()) +
         "(lambda=" + std::to_string(config.grouping_factor) +
         ", omega=" + std::to_string(config.split_factor) + ")\n";
  out += "  LocalUpdater     " + std::string(updater_name()) +
         "(batch=" + std::to_string(config.batch_size) +
         ", eta=" + std::to_string(config.local_learning_rate) +
         ", local_epochs=" + std::to_string(config.local_epochs) + ")\n";
  out += "  NegativeSampler  ";
  out += config.sgns.negative_sampling == sgns::NegativeSamplingKind::kUnigram
             ? "unigram(power=" + std::to_string(config.sgns.unigram_power) +
                   ", non-private)"
             : "uniform";
  out += "\n";
  out += "  DeltaClipper     per_tensor(C=" + std::to_string(config.clip_norm) + ")\n";
  out += "  NoisyAggregator  gaussian(sigma=" + std::to_string(config.noise_scale) +
         (config.noise_scale_final > 0.0
              ? "->" + std::to_string(config.noise_scale_final)
              : "") +
         ", " + (config.fixed_denominator ? "fixed" : "realized") +
         "_denominator" + (config.per_tensor_noise ? ", per_tensor" : "") +
         ")\n";
  out += "  Accountant       " + config.accountant +
         "(delta=" + std::to_string(config.delta) +
         ", budget=" + std::to_string(config.epsilon_budget) + ")\n";
  out += "  ServerOptimizer  " + config.server_optimizer + "\n";
  return out;
}

}  // namespace plp::pipeline
