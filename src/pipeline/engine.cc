#include "pipeline/engine.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/math_util.h"
#include "common/serialize.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/bucket_update.h"
#include "sgns/sparse_delta.h"
#include "sgns/train_scratch.h"

namespace plp::pipeline {
namespace {

/// Snapshots the full mutable training state after completed step `step`.
/// The accountant/optimizer states embed as opaque blobs: each stage
/// serializes itself, the checkpoint format stays ignorant of their layout.
/// core::SamplingScheme → its checkpoint-envelope twin (plp_ckpt cannot
/// depend on plp_core, so the enum is redeclared there).
ckpt::SamplingScheme ToCkptScheme(core::SamplingScheme scheme) {
  return scheme == core::SamplingScheme::kFixedBatch
             ? ckpt::SamplingScheme::kFixedBatch
             : ckpt::SamplingScheme::kPoisson;
}

ckpt::TrainerSnapshot MakeSnapshot(ckpt::TrainerKind kind,
                                   ckpt::SamplingScheme scheme, int64_t step,
                                   const Rng& rng, const Accountant& accountant,
                                   const ServerOptimizer& server,
                                   const sgns::SgnsModel& model) {
  ckpt::TrainerSnapshot snapshot;
  snapshot.kind = kind;
  snapshot.scheme = scheme;
  snapshot.step = step;
  snapshot.rng = rng.SaveState();
  snapshot.ledger_blob = accountant.SaveBlob();
  snapshot.optimizer_name = server.name();
  ByteWriter optimizer_writer;
  server.SaveState(optimizer_writer);
  snapshot.optimizer_blob = optimizer_writer.Take();
  snapshot.model = model;
  return snapshot;
}

}  // namespace

Result<core::TrainResult> TrainingEngine::Train(
    const data::CorpusView& corpus, Rng& rng,
    const core::StepCallback& callback,
    const ckpt::CheckpointOptions& checkpoint) {
  if (corpus.NumUsers() == 0 || corpus.NumLocations() <= 0) {
    return InvalidArgumentError("empty training corpus");
  }
  // Build the bounded exp/sigmoid tables before any worker needs them, so
  // the one-time construction cost never lands inside a timed phase (and
  // never races the pool, magic statics notwithstanding).
  WarmFastMathTables();
  std::optional<ckpt::CheckpointManager> manager;
  if (checkpoint.enabled()) {
    if (checkpoint.every_steps <= 0) {
      return InvalidArgumentError("checkpoint every_steps must be > 0");
    }
    manager.emplace(checkpoint.dir, checkpoint.keep_last);
    PLP_RETURN_IF_ERROR(manager->Init());
  }

  Stopwatch stopwatch;
  PLP_ASSIGN_OR_RETURN(
      sgns::SgnsModel model,
      sgns::SgnsModel::Create(corpus.NumLocations(), config_.sgns, rng));
  PLP_RETURN_IF_ERROR(stages_.server->Prepare(model));
  PLP_RETURN_IF_ERROR(stages_.updater->Prepare(corpus, model, rng));
  stages_.aggregator->Prepare(corpus);

  // Resume overlays the freshly-initialized state: the snapshot's model,
  // accountant, optimizer moments and RNG position replace the fresh ones,
  // and the loop continues at the step after the snapshot. Every
  // cross-field consistency violation is rejected here, before any state
  // is mutated.
  int64_t start_step = 0;
  if (manager && checkpoint.resume) {
    auto loaded = manager->LoadLatest();
    if (loaded.ok()) {
      ckpt::TrainerSnapshot& snapshot = *loaded;
      if (snapshot.kind != config_.kind) {
        return InvalidArgumentError(
            "checkpoint was written by a different trainer kind");
      }
      // The accountant blob certifies rounds of a specific sampling law;
      // continuing those entries under another law would compose two
      // different mechanisms into one ε. Same rejection contract as
      // resuming under a different accountant.
      if (snapshot.scheme != ToCkptScheme(config_.policy.scheme)) {
        return InvalidArgumentError(
            "checkpoint was written under a different sampling scheme");
      }
      if (snapshot.model.num_locations() != corpus.NumLocations() ||
          snapshot.model.dim() != config_.sgns.embedding_dim) {
        return InvalidArgumentError(
            "checkpoint model shape disagrees with corpus/config");
      }
      if (snapshot.optimizer_name != stages_.server->name()) {
        return InvalidArgumentError(
            "checkpoint optimizer disagrees with config");
      }
      PLP_RETURN_IF_ERROR(
          stages_.accountant->RestoreBlob(snapshot.ledger_blob,
                                          snapshot.step));
      ByteReader optimizer_reader(snapshot.optimizer_blob);
      PLP_RETURN_IF_ERROR(
          stages_.server->LoadState(optimizer_reader, snapshot.model));
      if (!optimizer_reader.AtEnd()) {
        return InvalidArgumentError("checkpoint: trailing optimizer bytes");
      }
      model = std::move(snapshot.model);
      rng.RestoreState(snapshot.rng);
      start_step = snapshot.step;
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }

  std::unique_ptr<ThreadPool> pool;
  if (config_.num_threads > 1) {
    pool =
        std::make_unique<ThreadPool>(static_cast<size_t>(config_.num_threads));
  }

  sgns::DenseUpdate update(model);
  core::TrainResult result;
  result.model = std::move(model);
  result.steps_executed = start_step;
  if (start_step > 0) {
    result.epsilon_spent = stages_.accountant->EpsilonSpent();
  }

  // Steady-state buffers reused across steps: one TrainScratch per pool
  // worker (workers index them via ThreadPool::CurrentWorkerIndex(), the
  // sequential path uses slot 0) and one SparseDelta slot per bucket
  // (grown lazily; Clear() keeps row-map capacity).
  const size_t num_workers = pool != nullptr ? pool->num_threads() : 1;
  std::vector<sgns::TrainScratch> scratches;
  scratches.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    scratches.emplace_back(config_.sgns.embedding_dim);
  }
  std::vector<sgns::SparseDelta> deltas;
  std::vector<const sgns::SparseDelta*> delta_ptrs;
  std::vector<double> losses;
  std::vector<uint8_t> clip_engaged;
  const bool bucket_parallel = stages_.updater->BucketParallel();

  // The round template every step's RoundRecord is stamped from: the
  // policy's mechanism parameters plus the corpus-dependent population and
  // (fixed-batch) round size, resolved once.
  RoundRecord round_template;
  round_template.scheme = config_.policy.scheme;
  round_template.sampling_ratio = config_.policy.sampling_ratio;
  round_template.population = corpus.NumUsers();
  round_template.split_factor = config_.policy.split_factor;
  if (config_.policy.scheme == core::SamplingScheme::kFixedBatch) {
    round_template.batch_size = core::FixedBatchSize(
        corpus.NumUsers(), config_.policy.sampling_ratio);
  }

  for (int64_t step = start_step + 1; step <= config_.max_steps; ++step) {
    // Consume this step's budget first; if it overruns, return θ_{t-1} —
    // the model *before* this step's update (Algorithm 1 lines 11–13).
    RoundRecord round = round_template;
    round.step = step;
    round.noise_multiplier = config_.policy.noise_multiplier_at
                                 ? config_.policy.noise_multiplier_at(step)
                                 : 0.0;
    PLP_ASSIGN_OR_RETURN(const BudgetDecision decision,
                         stages_.accountant->TrackRound(round));
    if (decision.exhausted) {
      result.stop_reason = core::StopReason::kBudgetExhausted;
      break;
    }

    core::StepMetrics metrics;
    metrics.step = step;
    metrics.epsilon_spent = decision.epsilon_after;
    result.epsilon_spent = decision.epsilon_after;

    Stopwatch phase;

    // Lines 5–6: user sample, then data grouping.
    const std::vector<int32_t> sampled = stages_.sampler->Sample(corpus, rng);
    const std::vector<core::Bucket> buckets =
        stages_.grouper->Group(corpus, sampled, rng);
    metrics.sampled_users = static_cast<int64_t>(sampled.size());
    metrics.num_buckets = static_cast<int64_t>(buckets.size());
    metrics.realized_split_factor = core::RealizedSplitFactor(buckets);
    // A grouping that spreads one user past the configured ω breaks the
    // σ·ω·C sensitivity the aggregator noises for AND the ω the accountant
    // just certified — the step must not run. Structural stage bug, but
    // surfaced as a Status (not an abort) so embedding callers can see it.
    if (config_.policy.enforce_split_bound &&
        metrics.realized_split_factor > config_.policy.split_factor) {
      return InternalError(
          "grouper violated the split bound: realized omega " +
          std::to_string(metrics.realized_split_factor) +
          " > configured omega " +
          std::to_string(config_.policy.split_factor));
    }
    result.phase_seconds.sampling_grouping += phase.ElapsedSeconds();

    if (bucket_parallel) {
      // Lines 7–8 + 21: one clipped model delta per bucket. Buckets are
      // independent; every bucket's local training runs on an Rng derived
      // from the step seed and the bucket's content (BucketSeed), so the
      // result is bitwise-identical for any num_threads — the sequential
      // path is the same computation without the fan-out. Both seeds are
      // drawn even when no bucket exists so the streams stay aligned
      // across runs that sample differently.
      phase.Reset();
      update.Zero(pool.get());
      const uint64_t step_seed = rng.NextU64();
      const uint64_t noise_seed = rng.NextU64();
      while (deltas.size() < buckets.size()) {
        deltas.emplace_back(config_.sgns.embedding_dim);
      }
      losses.assign(buckets.size(), 0.0);
      clip_engaged.assign(buckets.size(), 0);
      const auto run_bucket = [&](size_t i, sgns::TrainScratch* scratch) {
        Rng bucket_rng(core::BucketSeed(step_seed, buckets[i]));
        stages_.updater->ComputeDelta(result.model, buckets[i],
                                      corpus.NumLocations(), bucket_rng,
                                      &losses[i], scratch, deltas[i]);
        clip_engaged[i] = stages_.clipper->Clip(deltas[i]) ? 1 : 0;
      };
      if (pool != nullptr && buckets.size() > 1) {
        pool->ParallelFor(buckets.size(), [&](size_t i) {
          const int worker = ThreadPool::CurrentWorkerIndex();
          run_bucket(i, worker >= 0 ? &scratches[static_cast<size_t>(worker)]
                                    : nullptr);
        });
      } else {
        for (size_t i = 0; i < buckets.size(); ++i) {
          run_bucket(i, &scratches[0]);
        }
      }
      result.phase_seconds.local_sgd += phase.ElapsedSeconds();

      // Sharded deterministic reduction of the bucket deltas (the Σ of the
      // Gaussian sum query) — bitwise equal to accumulating them serially
      // in bucket order.
      phase.Reset();
      delta_ptrs.clear();
      double loss_sum = 0.0;
      int64_t clipped = 0;
      for (size_t i = 0; i < buckets.size(); ++i) {
        delta_ptrs.push_back(&deltas[i]);
        loss_sum += losses[i];
        clipped += clip_engaged[i];
      }
      stages_.aggregator->Reduce(delta_ptrs, update, pool.get());
      metrics.mean_local_loss =
          buckets.empty() ? 0.0
                          : loss_sum / static_cast<double>(buckets.size());
      metrics.clip_fraction =
          buckets.empty() ? 0.0
                          : static_cast<double>(clipped) /
                                static_cast<double>(buckets.size());
      metrics.signal_norm = update.Norm(pool.get());
      result.phase_seconds.reduction += phase.ElapsedSeconds();

      // Line 9: noise calibrated to the sum's sensitivity, drawn from
      // counter-based per-block streams keyed on noise_seed — identical
      // output for any thread count — then the estimator's averaging.
      phase.Reset();
      AggregateContext ctx;
      ctx.step = step;
      ctx.noise_seed = noise_seed;
      ctx.num_buckets = buckets.size();
      ctx.pool = pool.get();
      stages_.aggregator->NoiseAndAverage(ctx, update);
      metrics.noisy_update_norm = update.Norm(pool.get());
      result.phase_seconds.noise += phase.ElapsedSeconds();
      PLP_FAULT_POINT("trainer.after_noise");

      // Line 10: model update.
      phase.Reset();
      stages_.server->Apply(update, result.model);
      result.phase_seconds.server_apply += phase.ElapsedSeconds();
    } else {
      // Whole-round updater (the non-private epoch trainer): the stage
      // owns the model mutation and the main RNG stream; nothing to clip,
      // aggregate or apply.
      phase.Reset();
      PLP_ASSIGN_OR_RETURN(metrics.mean_local_loss,
                           stages_.updater->WholeRound(corpus, result.model,
                                                       rng));
      result.phase_seconds.local_sgd += phase.ElapsedSeconds();
    }

    result.steps_executed = step;
    result.history.push_back(metrics);

    // Observe before committing: a crash between the callback and the
    // checkpoint replays the step (re-observing the identical metrics),
    // whereas the reverse order could persist a step no observer ever saw.
    const bool continue_training =
        !callback || callback(metrics, result.model);

    if (manager && step % checkpoint.every_steps == 0) {
      PLP_FAULT_POINT("trainer.before_checkpoint");
      PLP_RETURN_IF_ERROR(manager->Save(MakeSnapshot(
          config_.kind, ToCkptScheme(config_.policy.scheme), step, rng,
          *stages_.accountant, *stages_.server, result.model)));
    }

    if (!continue_training) {
      result.stop_reason = core::StopReason::kCallback;
      break;
    }
    if (step == config_.max_steps) {
      result.stop_reason = core::StopReason::kMaxSteps;
    }
  }

  result.wall_seconds = stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace plp::pipeline
