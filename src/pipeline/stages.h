#ifndef PLP_PIPELINE_STAGES_H_
#define PLP_PIPELINE_STAGES_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/status.h"
#include "core/grouping.h"
#include "data/corpus.h"
#include "sgns/model.h"
#include "sgns/sparse_delta.h"
#include "sgns/train_scratch.h"

namespace plp {
class ThreadPool;
}  // namespace plp

namespace plp::pipeline {

// The stage decomposition of the paper's Algorithm 1 (see DESIGN.md,
// "Pipeline architecture"). One TrainingEngine drives a StageSet through
// the step loop; PlpTrainer, DpSgdTrainer and NonPrivateTrainer are just
// different stage configurations of the same engine, and the ablation
// benches select implementations via config instead of forking the loop.
//
//   UserSampler      line 5   U_sample ~ Poisson(q)
//   Grouper          line 6   H = groupData(U_sample, λ, ω)
//   LocalUpdater     lines 7–8, 15–20   Δ_h = localUpdate(θ_t, h)
//   DeltaClipper     line 21  Δ_h ← Δ_h · min(1, C/‖Δ_h‖)
//   NoisyAggregator  line 9   ĝ_t = (ΣΔ_h + N(0, σ²ω²C²I)) / denom
//   Accountant       lines 3, 11–13   ε(δ) after each round + budget gate
//   ServerOptimizer  line 10  θ_{t+1} = serverUpdate(θ_t, ĝ_t)
//
// Determinism contract: a stage may only draw randomness from the Rng it
// is handed, in a data-independent *order* (the engine's RNG-stream
// alignment is what makes checkpoint resume and thread-count determinism
// bitwise). Stages that need no randomness must not touch the Rng at all.

/// Line 5: selects the users participating in this round.
class UserSampler {
 public:
  virtual ~UserSampler() = default;

  /// Returns the sampled user ids (ascending). Draws from `rng` only.
  virtual std::vector<int32_t> Sample(const data::CorpusView& corpus,
                                      Rng& rng) = 0;
};

/// Line 6: pools the sampled users' data into buckets of λ users.
class Grouper {
 public:
  virtual ~Grouper() = default;

  /// Builds the round's buckets. Implementations enforce their own split
  /// bound (no user's data may reach more than ω buckets — the ω·C
  /// sensitivity argument depends on it).
  virtual std::vector<core::Bucket> Group(const data::CorpusView& corpus,
                                          const std::vector<int32_t>& sampled,
                                          Rng& rng) = 0;
};

/// Lines 7–8 / 15–20: turns a bucket's data into an (unclipped) model
/// delta — or, for trainers whose update rule is not expressible as
/// independent per-bucket deltas (the non-private epoch trainer), runs the
/// whole round itself.
class LocalUpdater {
 public:
  virtual ~LocalUpdater() = default;

  /// Called once per Train() after model creation and before checkpoint
  /// resume. May precompute corpus-derived state (e.g. subsampling keep
  /// probabilities); must not consume `rng` unless that consumption is
  /// part of the trainer's pinned RNG stream.
  virtual Status Prepare(const data::CorpusView& corpus,
                         const sgns::SgnsModel& model, Rng& rng) {
    (void)corpus;
    (void)model;
    (void)rng;
    return Status::Ok();
  }

  /// True → the engine runs the bucket fan-out: per-bucket ComputeDelta on
  /// content-keyed RNGs, clip, reduce, noise, server apply. False → the
  /// engine calls WholeRound instead and skips aggregation entirely (the
  /// updater owns the model mutation and the main RNG stream).
  virtual bool BucketParallel() const = 0;

  /// Bucket-parallel mode: computes the raw (unclipped) delta of one
  /// bucket's local training at θ_t into `delta` (which is Clear()ed
  /// first — the engine hands each bucket a reusable slot so steady-state
  /// fan-out does not allocate). Must depend only on (θ_t, bucket,
  /// bucket_rng) so the engine may schedule buckets on any thread.
  /// `scratch` may be null.
  virtual void ComputeDelta(const sgns::SgnsModel& theta,
                            const core::Bucket& bucket,
                            int32_t num_locations, Rng& bucket_rng,
                            double* loss_out, sgns::TrainScratch* scratch,
                            sgns::SparseDelta& delta);

  /// Whole-round mode: one full round (epoch) mutating `model` in place,
  /// drawing from the trainer's main `rng`. Returns the round's mean loss.
  virtual Result<double> WholeRound(const data::CorpusView& corpus,
                                    sgns::SgnsModel& model, Rng& rng);
};

/// Line 21: bounds one bucket delta's contribution to the sum. Runs on the
/// same thread as the delta's ComputeDelta, immediately after it.
class DeltaClipper {
 public:
  virtual ~DeltaClipper() = default;

  /// Clips `delta` in place; returns true when the bound engaged (the
  /// engine aggregates this into StepMetrics::clip_fraction).
  virtual bool Clip(sgns::SparseDelta& delta) const = 0;
};

/// Round context handed to the aggregator's noise step.
struct AggregateContext {
  int64_t step = 0;            ///< 1-based round index
  uint64_t noise_seed = 0;     ///< counter-based noise stream key
  size_t num_buckets = 0;      ///< realized |H| this round
  ThreadPool* pool = nullptr;  ///< null → sequential
};

/// Line 9: the Gaussian sum query — Σ clipped deltas, dense noise
/// calibrated to the query's sensitivity, then averaging.
class NoisyAggregator {
 public:
  virtual ~NoisyAggregator() = default;

  /// Called once per Train() before the loop; may precompute
  /// corpus-derived constants (e.g. the fixed denominator q·N/λ).
  virtual void Prepare(const data::CorpusView& corpus) { (void)corpus; }

  /// Σ deltas into `sum` (already zeroed), in deterministic bucket order
  /// regardless of `pool` size.
  virtual void Reduce(std::span<const sgns::SparseDelta* const> deltas,
                      sgns::DenseUpdate& sum, ThreadPool* pool) = 0;

  /// Adds calibrated noise keyed on `ctx.noise_seed` and divides by the
  /// estimator's denominator, mutating `sum` into ĝ_t.
  virtual void NoiseAndAverage(const AggregateContext& ctx,
                               sgns::DenseUpdate& sum) = 0;
};

/// The accountant's verdict for one round.
struct BudgetDecision {
  double epsilon_after = 0.0;  ///< cumulative ε(δ) including this round
  bool exhausted = false;      ///< ε_after > budget → return θ_{t−1}
};

/// The mechanism parameters of one round, as the engine configured them —
/// the single source the Accountant stage consumes, so what the noise
/// stage released and what the accountant certifies can never drift apart.
/// The engine fills it from the EngineConfig's RoundPolicy every step;
/// benches fill it by hand for accounting-only sweeps.
struct RoundRecord {
  int64_t step = 0;  ///< 1-based round index
  core::SamplingScheme scheme = core::SamplingScheme::kPoisson;
  double sampling_ratio = 0.0;  ///< q (Poisson probability, or B/N intent)
  int64_t batch_size = 0;       ///< B (fixed_batch; 0 under Poisson)
  int64_t population = 0;       ///< N users in the corpus
  double noise_multiplier = 0.0;  ///< σ relative to joint sensitivity ω·C
  int32_t split_factor = 1;       ///< configured ω
};

/// Lines 3 and 11–13: tracks each round's privacy spend and gates on the
/// budget. Implementations own their conversion (RDP orders, PLD grid)
/// and must reject a RoundRecord whose sampling scheme their analysis
/// does not cover, instead of silently accounting the wrong mechanism.
class Accountant {
 public:
  virtual ~Accountant() = default;

  /// Consumes one round's budget and returns the post-round ε and the
  /// budget verdict. The engine stops *before* executing an exhausted
  /// round, so an exhausted decision's ε is never observable in a result.
  virtual Result<BudgetDecision> TrackRound(const RoundRecord& round) = 0;

  /// Accounting-only fast path used by the accounting ablation: advances
  /// `count` rounds of `first`'s mechanism starting at `first.step` and
  /// returns the decision after the last one. No budget gate is applied
  /// mid-way. The default implementation loops TrackRound with the step
  /// advancing and every other field held constant; schedule-aware
  /// accountants override it to recompute σ_t per step.
  virtual Result<BudgetDecision> TrackRounds(const RoundRecord& first,
                                             int64_t count);

  /// ε spent so far (seeds TrainResult::epsilon_spent after a resume).
  virtual double EpsilonSpent() const = 0;

  /// The checkpoint ledger blob. Restoring from `blob` written by the same
  /// accountant type at step `step` must reproduce the accountant
  /// bit-identically; mismatched blobs (wrong type, wrong δ, wrong step
  /// count) are rejected with kInvalidArgument.
  virtual std::string SaveBlob() const = 0;
  virtual Status RestoreBlob(const std::string& blob, int64_t step) = 0;
};

/// Line 10: applies ĝ_t to the global model. Distinct from
/// optim::ServerOptimizer only by the Prepare hook (stage state that needs
/// the created model's shape) and by blob-style checkpointing symmetry
/// with Accountant.
class ServerOptimizer {
 public:
  virtual ~ServerOptimizer() = default;

  /// Called once per Train() after model creation, before resume.
  virtual Status Prepare(const sgns::SgnsModel& model) {
    (void)model;
    return Status::Ok();
  }

  virtual void Apply(const sgns::DenseUpdate& update,
                     sgns::SgnsModel& model) = 0;

  /// Name recorded in checkpoints; resume rejects a mismatch.
  virtual const char* name() const = 0;

  virtual void SaveState(ByteWriter& writer) const = 0;
  virtual Status LoadState(ByteReader& reader,
                           const sgns::SgnsModel& model) = 0;
};

/// One full stage configuration — everything the engine needs besides the
/// corpus and the loop bounds.
struct StageSet {
  std::unique_ptr<UserSampler> sampler;
  std::unique_ptr<Grouper> grouper;
  std::unique_ptr<LocalUpdater> updater;
  std::unique_ptr<DeltaClipper> clipper;
  std::unique_ptr<NoisyAggregator> aggregator;
  std::unique_ptr<Accountant> accountant;
  std::unique_ptr<ServerOptimizer> server;
};

}  // namespace plp::pipeline

#endif  // PLP_PIPELINE_STAGES_H_
