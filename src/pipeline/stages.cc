#include "pipeline/stages.h"

#include "common/check.h"

namespace plp::pipeline {

void LocalUpdater::ComputeDelta(const sgns::SgnsModel& theta,
                                const core::Bucket& bucket,
                                int32_t num_locations, Rng& bucket_rng,
                                double* loss_out, sgns::TrainScratch* scratch,
                                sgns::SparseDelta& delta) {
  (void)theta;
  (void)bucket;
  (void)num_locations;
  (void)bucket_rng;
  (void)loss_out;
  (void)scratch;
  (void)delta;
  PLP_CHECK(false);  // BucketParallel() updaters must override ComputeDelta
}

Result<double> LocalUpdater::WholeRound(const data::CorpusView& corpus,
                                        sgns::SgnsModel& model, Rng& rng) {
  (void)corpus;
  (void)model;
  (void)rng;
  return InternalError("LocalUpdater does not implement WholeRound");
}

Result<BudgetDecision> Accountant::TrackRounds(const RoundRecord& first,
                                               int64_t count) {
  BudgetDecision decision;
  RoundRecord round = first;
  for (int64_t i = 0; i < count; ++i) {
    round.step = first.step + i;
    PLP_ASSIGN_OR_RETURN(decision, TrackRound(round));
  }
  return decision;
}

}  // namespace plp::pipeline
