#ifndef PLP_PIPELINE_ENGINE_H_
#define PLP_PIPELINE_ENGINE_H_

#include <cstdint>
#include <functional>

#include "ckpt/checkpoint.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/plp_trainer.h"
#include "data/corpus.h"
#include "pipeline/stages.h"
#include "sgns/model.h"

namespace plp::pipeline {

/// The per-round mechanism parameters the engine stamps into every step's
/// RoundRecord before handing it to the Accountant stage. Centralizing
/// them here (instead of letting each accountant re-derive them from its
/// own config copy) is what keeps the released mechanism and the certified
/// mechanism structurally identical.
struct RoundPolicy {
  core::SamplingScheme scheme = core::SamplingScheme::kPoisson;
  double sampling_ratio = 0.0;  ///< q
  int32_t split_factor = 1;     ///< configured ω
  /// Private runs assert realized ω ≤ configured ω after every grouping —
  /// a violating Grouper invalidates the σ·ω·C noise calibration, so the
  /// step must not execute. Off for the non-private stage set.
  bool enforce_split_bound = false;
  /// σ_t relative to the joint sensitivity ω·C at the 1-based step
  /// (schedule-aware). Null for accountant-free runs → records carry 0.
  std::function<double(int64_t)> noise_multiplier_at;
};

/// Loop bounds and scheduling for one TrainingEngine run — everything
/// about *how* the step loop executes; the StageSet holds everything about
/// *what* each step computes.
struct EngineConfig {
  sgns::SgnsConfig sgns;  ///< model shape/init (θ_0 is engine-created)
  int64_t max_steps = 0;  ///< rounds (steps for PLP, epochs non-private)
  int32_t num_threads = 1;
  ckpt::TrainerKind kind = ckpt::TrainerKind::kPrivate;
  RoundPolicy policy;
};

/// The one step loop behind every trainer (Algorithm 1's outer for-loop):
/// owns model creation, the thread pool and per-worker scratch, the
/// content-keyed bucket fan-out, phase timing, step callbacks, and the
/// checkpoint/resume protocol. Trainers are thin facades that pick a
/// StageSet; the engine guarantees the run is bitwise thread-count
/// deterministic and crash-resumable as long as the stages respect the
/// randomness contract in stages.h.
class TrainingEngine {
 public:
  TrainingEngine(EngineConfig config, StageSet stages)
      : config_(std::move(config)), stages_(std::move(stages)) {}

  /// Runs the loop. Semantics (RNG draw order, reduction shape, budget
  /// gate returning θ_{t−1}, observe-before-commit checkpointing) are
  /// pinned by the golden equivalence suite against the pre-pipeline
  /// trainers — see tests/pipeline/golden_equivalence_test.cc.
  Result<core::TrainResult> Train(const data::CorpusView& corpus,
                                  Rng& rng, const core::StepCallback& callback,
                                  const ckpt::CheckpointOptions& checkpoint);

 private:
  EngineConfig config_;
  StageSet stages_;
};

}  // namespace plp::pipeline

#endif  // PLP_PIPELINE_ENGINE_H_
