#ifndef PLP_PIPELINE_ENGINE_H_
#define PLP_PIPELINE_ENGINE_H_

#include <cstdint>

#include "ckpt/checkpoint.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/plp_trainer.h"
#include "data/corpus.h"
#include "pipeline/stages.h"
#include "sgns/model.h"

namespace plp::pipeline {

/// Loop bounds and scheduling for one TrainingEngine run — everything
/// about *how* the step loop executes; the StageSet holds everything about
/// *what* each step computes.
struct EngineConfig {
  sgns::SgnsConfig sgns;  ///< model shape/init (θ_0 is engine-created)
  int64_t max_steps = 0;  ///< rounds (steps for PLP, epochs non-private)
  int32_t num_threads = 1;
  ckpt::TrainerKind kind = ckpt::TrainerKind::kPrivate;
};

/// The one step loop behind every trainer (Algorithm 1's outer for-loop):
/// owns model creation, the thread pool and per-worker scratch, the
/// content-keyed bucket fan-out, phase timing, step callbacks, and the
/// checkpoint/resume protocol. Trainers are thin facades that pick a
/// StageSet; the engine guarantees the run is bitwise thread-count
/// deterministic and crash-resumable as long as the stages respect the
/// randomness contract in stages.h.
class TrainingEngine {
 public:
  TrainingEngine(EngineConfig config, StageSet stages)
      : config_(std::move(config)), stages_(std::move(stages)) {}

  /// Runs the loop. Semantics (RNG draw order, reduction shape, budget
  /// gate returning θ_{t−1}, observe-before-commit checkpointing) are
  /// pinned by the golden equivalence suite against the pre-pipeline
  /// trainers — see tests/pipeline/golden_equivalence_test.cc.
  Result<core::TrainResult> Train(const data::CorpusView& corpus,
                                  Rng& rng, const core::StepCallback& callback,
                                  const ckpt::CheckpointOptions& checkpoint);

 private:
  EngineConfig config_;
  StageSet stages_;
};

}  // namespace plp::pipeline

#endif  // PLP_PIPELINE_ENGINE_H_
