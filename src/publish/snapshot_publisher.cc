#include "publish/snapshot_publisher.h"

#include <fcntl.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <utility>

#include "common/atomic_file.h"
#include "common/fault_injection.h"
#include "common/serialize.h"
#include "sgns/model_io.h"

namespace plp::publish {
namespace {

constexpr std::string_view kLedgerFile = "ledger.plpl";
constexpr std::string_view kCurrentFile = "CURRENT";
constexpr std::string_view kStagingDir = "staging";
constexpr std::string_view kModelFile = "model.plpm";

/// Best-effort directory fsync after a promote rename: the version
/// directory's new name must survive power loss just like the files
/// inside it (same reasoning as step 4 of AtomicWriteFile).
void FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::string SnapshotPublisher::VersionDirName(uint64_t version) {
  return "v" + std::to_string(version);
}

std::string SnapshotPublisher::VersionDir(uint64_t version) const {
  return config_.publish_dir + "/" + VersionDirName(version);
}

std::string SnapshotPublisher::ModelPath(uint64_t version) const {
  return VersionDir(version) + "/" + std::string(kModelFile);
}

std::string SnapshotPublisher::StagingDir() const {
  return config_.publish_dir + "/" + std::string(kStagingDir);
}

std::string SnapshotPublisher::StagingModelPath() const {
  return StagingDir() + "/" + std::string(kModelFile);
}

std::string SnapshotPublisher::CurrentPath() const {
  return config_.publish_dir + "/" + std::string(kCurrentFile);
}

Result<SnapshotPublisher> SnapshotPublisher::Create(PublisherConfig config) {
  if (config.publish_dir.empty()) {
    return InvalidArgumentError("publisher: publish_dir must be set");
  }
  std::error_code ec;
  std::filesystem::create_directories(config.publish_dir, ec);
  if (ec) {
    return InternalError("publisher: cannot create " + config.publish_dir +
                         ": " + ec.message());
  }
  PLP_ASSIGN_OR_RETURN(
      PublishLedger ledger,
      PublishLedger::Open(config.publish_dir + "/" +
                          std::string(kLedgerFile)));
  return SnapshotPublisher(std::move(config), std::move(ledger));
}

Result<PublishResult> SnapshotPublisher::Publish(const sgns::SgnsModel& model,
                                                 double epsilon_spent,
                                                 int64_t train_steps) {
  // ---- stage -------------------------------------------------------
  PLP_FAULT_POINT("publish.stage");
  std::error_code ec;
  std::filesystem::create_directories(StagingDir(), ec);
  if (ec) {
    return InternalError("publish stage: cannot create staging dir: " +
                         ec.message());
  }
  PLP_RETURN_IF_ERROR(sgns::SaveModel(model, StagingModelPath()));
  PLP_ASSIGN_OR_RETURN(const std::string staged_bytes,
                       ReadFileToString(StagingModelPath()));
  const uint64_t model_crc64 = Crc64(staged_bytes);

  // Idempotent resume: if the newest ledger entry already names exactly
  // this artifact and spend, a previous attempt died AFTER its append —
  // reuse that version and do not append again. This is what makes
  // "retry the whole publish" safe against ε double-counting.
  PublishRecord prior{};
  bool resumed = false;
  if (const PublishRecord* last = ledger_.last();
      last != nullptr && last->model_crc64 == model_crc64 &&
      last->epsilon_spent == epsilon_spent &&
      last->train_steps == train_steps) {
    prior = *last;
    resumed = true;
  }
  const uint64_t version = resumed ? prior.version : ledger_.NextVersion();

  // ---- validate ----------------------------------------------------
  PLP_FAULT_POINT("publish.validate");
  // Reload from the staged bytes (not the in-memory model): what gets
  // validated is the artifact that will actually be promoted. The model
  // file loader rejects bad magic/shape; Verify() re-checks the snapshot
  // payload against its build-time checksum.
  PLP_ASSIGN_OR_RETURN(auto candidate,
                       serve::ModelSnapshot::FromFile(
                           StagingModelPath(), version, config_.snapshot));
  PLP_RETURN_IF_ERROR(candidate->Verify());
  PLP_ASSIGN_OR_RETURN(auto reference,
                       serve::ModelSnapshot::FromFile(
                           StagingModelPath(), version, serve::SnapshotOptions{}));
  for (const float value : reference->embeddings()) {
    if (!std::isfinite(value)) {
      return FailedPreconditionError(
          "publish validation: non-finite value in the embedding matrix");
    }
  }
  // Recall gate: candidates whose answers can differ from the exact f32
  // scan must stay within the recall budget against it.
  if (config_.min_recall > 0.0 &&
      (config_.snapshot.format != serve::SnapshotFormat::kFloat32 ||
       config_.snapshot.build_ivf)) {
    const double recall =
        serve::MeasureRecallAtK(*candidate, *reference, config_.recall);
    if (recall < config_.min_recall) {
      return FailedPreconditionError(
          "publish validation: recall@" + std::to_string(config_.recall.k) +
          " vs f32 is " + std::to_string(recall) + ", below the gate " +
          std::to_string(config_.min_recall));
    }
  }

  // ---- account (ledger-first) --------------------------------------
  if (resumed) {
    if (prior.snapshot_checksum != candidate->checksum()) {
      return InternalError(
          "publish resume: rebuilt snapshot checksum diverges from the "
          "accounted one — refusing to promote");
    }
  } else {
    PublishRecord record;
    record.version = version;
    record.train_steps = train_steps;
    record.epsilon_spent = epsilon_spent;
    record.model_crc64 = model_crc64;
    record.snapshot_checksum = candidate->checksum();
    PLP_RETURN_IF_ERROR(ledger_.Append(record));
  }

  // ---- promote -----------------------------------------------------
  PLP_FAULT_POINT("publish.promote");
  const std::string version_dir = VersionDir(version);
  if (std::filesystem::exists(version_dir)) {
    // A previous attempt already promoted this version; accept it only if
    // it holds bitwise the same artifact.
    PLP_ASSIGN_OR_RETURN(const std::string promoted_bytes,
                         ReadFileToString(ModelPath(version)));
    if (Crc64(promoted_bytes) != model_crc64) {
      return InternalError("publish promote: " + version_dir +
                           " exists with a different artifact");
    }
    std::filesystem::remove_all(StagingDir(), ec);
  } else {
    std::filesystem::rename(StagingDir(), version_dir, ec);
    if (ec) {
      return InternalError("publish promote: rename failed: " +
                           ec.message());
    }
    FsyncDir(config_.publish_dir);
  }

  // ---- swap CURRENT ------------------------------------------------
  PLP_FAULT_POINT("publish.current_swap");
  PLP_RETURN_IF_ERROR(
      AtomicWriteFile(CurrentPath(), VersionDirName(version)));

  PublishResult result;
  result.version = version;
  result.version_dir = version_dir;
  result.model_crc64 = model_crc64;
  result.snapshot = std::move(candidate);
  result.resumed = resumed;
  return result;
}

Status SnapshotPublisher::RollbackTo(uint64_t version) {
  bool accounted = false;
  for (const PublishRecord& record : ledger_.records()) {
    if (record.version == version) {
      accounted = true;
      break;
    }
  }
  if (!accounted) {
    return FailedPreconditionError(
        "rollback: version " + std::to_string(version) +
        " is not in the publish ledger — only accounted versions are "
        "serving-safe");
  }
  if (!std::filesystem::exists(ModelPath(version))) {
    return FailedPreconditionError("rollback: version " +
                                   std::to_string(version) +
                                   " is not promoted on disk");
  }
  PLP_FAULT_POINT("publish.current_swap");
  return AtomicWriteFile(CurrentPath(), VersionDirName(version));
}

Result<uint64_t> SnapshotPublisher::CurrentVersion() const {
  PLP_ASSIGN_OR_RETURN(const std::string contents,
                       ReadFileToString(CurrentPath()));
  if (contents.size() < 2 || contents[0] != 'v') {
    return InternalError("CURRENT is malformed: '" + contents + "'");
  }
  uint64_t version = 0;
  for (size_t i = 1; i < contents.size(); ++i) {
    const char c = contents[i];
    if (c < '0' || c > '9') {
      return InternalError("CURRENT is malformed: '" + contents + "'");
    }
    version = version * 10 + static_cast<uint64_t>(c - '0');
  }
  return version;
}

Status SnapshotPublisher::VerifyCurrent() const {
  PLP_ASSIGN_OR_RETURN(const uint64_t version, CurrentVersion());
  const PublishRecord* record = nullptr;
  for (const PublishRecord& r : ledger_.records()) {
    if (r.version == version) {
      record = &r;
      break;
    }
  }
  if (record == nullptr) {
    return InternalError("CURRENT names v" + std::to_string(version) +
                         ", which the ledger never accounted");
  }
  PLP_ASSIGN_OR_RETURN(const std::string bytes,
                       ReadFileToString(ModelPath(version)));
  if (Crc64(bytes) != record->model_crc64) {
    return InternalError("v" + std::to_string(version) +
                         " artifact bytes do not match the accounted CRC");
  }
  PLP_ASSIGN_OR_RETURN(auto snapshot,
                       serve::ModelSnapshot::FromFile(
                           ModelPath(version), version, config_.snapshot));
  PLP_RETURN_IF_ERROR(snapshot->Verify());
  if (snapshot->checksum() != record->snapshot_checksum) {
    return InternalError(
        "v" + std::to_string(version) +
        " rebuilt snapshot does not match the accounted checksum");
  }
  return Status::Ok();
}

}  // namespace plp::publish
