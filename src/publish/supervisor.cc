#include "publish/supervisor.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "serve/metrics.h"

namespace plp::publish {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int64_t SteadyMicrosNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PublishSupervisor::PublishSupervisor(SupervisorConfig config,
                                     SnapshotPublisher publisher,
                                     serve::ShardedServingEngine* engine)
    : config_(std::move(config)),
      publisher_(std::move(publisher)),
      engine_(engine),
      jitter_state_(config_.jitter_seed) {
  config_.max_attempts = std::max(config_.max_attempts, 1);
  config_.backoff_initial_millis =
      std::max<int64_t>(config_.backoff_initial_millis, 0);
  config_.backoff_max_millis = std::max<int64_t>(
      config_.backoff_max_millis, config_.backoff_initial_millis);
  config_.probe_requests = std::max(config_.probe_requests, 1);
}

Result<PublishSupervisor> PublishSupervisor::Create(
    SupervisorConfig config, serve::ShardedServingEngine* engine) {
  PLP_ASSIGN_OR_RETURN(SnapshotPublisher publisher,
                       SnapshotPublisher::Create(config.publisher));
  PublishSupervisor supervisor(std::move(config), std::move(publisher),
                               engine);

  // Restart recovery: the cumulative spend continues from the ledger (ε
  // already paid must never be re-zeroed), and a verified CURRENT version
  // becomes the last good snapshot — re-published to the fleet so a
  // restarted supervisor serves at once.
  if (const PublishRecord* last = supervisor.publisher_.ledger().last();
      last != nullptr) {
    supervisor.cumulative_epsilon_ = last->epsilon_spent;
    supervisor.cumulative_steps_ = last->train_steps;
  }
  if (auto current = supervisor.publisher_.CurrentVersion(); current.ok()) {
    PLP_RETURN_IF_ERROR(supervisor.publisher_.VerifyCurrent());
    PLP_ASSIGN_OR_RETURN(
        auto snapshot,
        serve::ModelSnapshot::FromFile(
            supervisor.publisher_.ModelPath(*current), *current,
            supervisor.config_.publisher.snapshot));
    if (engine != nullptr) {
      PLP_RETURN_IF_ERROR(engine->PublishSnapshot(snapshot));
    }
    supervisor.last_good_version_ = *current;
    supervisor.last_good_snapshot_ = std::move(snapshot);
  }
  return supervisor;
}

int64_t PublishSupervisor::BackoffMillis(int attempt) {
  const int64_t initial = config_.backoff_initial_millis;
  int64_t backoff = initial;
  for (int i = 1; i < attempt && backoff < config_.backoff_max_millis; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, config_.backoff_max_millis);
  const int64_t jitter =
      initial > 0
          ? static_cast<int64_t>(SplitMix64(jitter_state_) %
                                 static_cast<uint64_t>(initial))
          : 0;
  return backoff + jitter;
}

void PublishSupervisor::SleepBeforeRetry(int attempt) {
  const int64_t millis = BackoffMillis(attempt);
  if (millis > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(millis));
  }
}

Status PublishSupervisor::SwapIntoEngine(
    std::shared_ptr<const serve::ModelSnapshot> snapshot, int& attempts) {
  Status status = Status::Ok();
  for (int attempt = 1; attempt <= config_.max_attempts; ++attempt) {
    ++attempts;
    status = engine_->PublishSnapshot(snapshot);
    if (status.ok()) return status;
    if (attempt < config_.max_attempts) SleepBeforeRetry(attempt);
  }
  return status;
}

Status PublishSupervisor::HealthProbe(uint64_t version) {
  for (size_t s = 0; s < engine_->num_shards(); ++s) {
    for (int32_t p = 0; p < config_.probe_requests; ++p) {
      serve::Request request;
      request.history = {0};
      request.k = 1;
      const serve::Response response = engine_->shard(s).Recommend(request);
      if (!response.status.ok()) {
        return InternalError("health probe: shard " + std::to_string(s) +
                             " failed: " + response.status.message());
      }
      if (response.model_version != version) {
        return InternalError(
            "health probe: shard " + std::to_string(s) + " serves v" +
            std::to_string(response.model_version) + ", expected v" +
            std::to_string(version));
      }
    }
  }
  return Status::Ok();
}

void PublishSupervisor::Rollback(CycleReport& report) {
  if (last_good_version_ == 0 || last_good_snapshot_ == nullptr) {
    return;  // nothing good to roll back to — stay as we are
  }
  report.rolled_back = true;
  // CURRENT first (the durable pointer), then the fleet. Both retried;
  // both revert to a version that already passed every gate, so partial
  // progress here still satisfies "only validated versions are served".
  for (int attempt = 1; attempt <= config_.max_attempts; ++attempt) {
    if (publisher_.RollbackTo(last_good_version_).ok()) break;
    if (attempt < config_.max_attempts) SleepBeforeRetry(attempt);
  }
  if (engine_ != nullptr) {
    int attempts = 0;
    (void)SwapIntoEngine(last_good_snapshot_, attempts);
  }
}

void PublishSupervisor::FillServingState(CycleReport& report) const {
  if (engine_ == nullptr) {
    report.serving_version = last_good_version_;
    return;
  }
  const auto snapshot = engine_->shard(0).registry().Current();
  report.serving_version = snapshot != nullptr ? snapshot->version() : 0;
  serve::Metrics total;
  engine_->AggregateMetrics(total);
  report.swap_age_seconds = total.SwapAgeSeconds(SteadyMicrosNow());
  report.within_slo = report.swap_age_seconds >= 0.0 &&
                      report.swap_age_seconds <= config_.freshness_slo_seconds;
}

Result<CycleReport> PublishSupervisor::RunCycle(const TrainFn& train) {
  CycleReport report;
  report.cycle = cycles_run_++;

  // ---- train (retry with backoff) ----------------------------------
  Result<TrainedArtifact> artifact = InternalError("train never ran");
  for (int attempt = 1; attempt <= config_.max_attempts; ++attempt) {
    ++report.train_attempts;
    artifact = train(report.cycle);
    if (artifact.ok()) break;
    if (attempt < config_.max_attempts) SleepBeforeRetry(attempt);
  }
  if (!artifact.ok()) {
    report.failure = artifact.status();
    FillServingState(report);
    return report;
  }
  // ε is spent the moment training succeeded — account it now, publish or
  // not. A failed publish delays the durable record; the next successful
  // one carries the full cumulative spend.
  cumulative_epsilon_ += artifact->epsilon_spent;
  cumulative_steps_ += artifact->steps;

  // ---- publish (stage→validate→account→promote→swap CURRENT) -------
  Result<PublishResult> published = InternalError("publish never ran");
  for (int attempt = 1; attempt <= config_.max_attempts; ++attempt) {
    ++report.publish_attempts;
    published = publisher_.Publish(artifact->model, cumulative_epsilon_,
                                   cumulative_steps_);
    if (published.ok()) break;
    if (attempt < config_.max_attempts) SleepBeforeRetry(attempt);
  }
  if (!published.ok()) {
    // Degraded mode: CURRENT still names the last version that passed
    // its gates; shards keep serving it. Nothing to roll back — the new
    // version never became nameable.
    report.failure = published.status();
    FillServingState(report);
    return report;
  }
  report.published_version = published->version;

  // ---- fleet swap + health probe -----------------------------------
  if (engine_ != nullptr) {
    Status swapped = SwapIntoEngine(published->snapshot, report.swap_attempts);
    if (swapped.ok()) {
      swapped = HealthProbe(published->version);
    }
    if (!swapped.ok()) {
      report.failure = swapped;
      Rollback(report);
      FillServingState(report);
      return report;
    }
  }

  report.published = true;
  last_good_version_ = published->version;
  last_good_snapshot_ = published->snapshot;
  FillServingState(report);
  return report;
}

}  // namespace plp::publish
