#ifndef PLP_PUBLISH_PUBLISH_LEDGER_H_
#define PLP_PUBLISH_PUBLISH_LEDGER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace plp::publish {

/// One committed publish: the cumulative privacy spend and the artifact
/// fingerprints behind version `version`. No wall-clock field on purpose —
/// the chaos harness compares a fault-injected run's ledger byte-for-byte
/// against a fault-free reference, which only works if the payload is a
/// pure function of the publish sequence.
struct PublishRecord {
  uint64_t version = 0;       ///< dense, starting at 1
  int64_t train_steps = 0;    ///< cumulative private steps at publish time
  double epsilon_spent = 0.0; ///< cumulative ε at the trainer's fixed δ
  uint64_t model_crc64 = 0;   ///< CRC-64/XZ of the staged model artifact
  uint64_t snapshot_checksum = 0;  ///< ModelSnapshot::checksum() served
};

/// Durable cross-publish ε accounting — the ledger-first rule extended to
/// the publish loop: a version's cumulative privacy spend is on stable
/// storage BEFORE any CURRENT pointer or registry can name that version,
/// so no crash or injected fault can ever serve a model whose ε was not
/// accounted.
///
/// The file is a checksummed envelope (magic "PLPL" + format version +
/// payload size + CRC-64/XZ + payload) committed atomically as a whole on
/// every Append (common/atomic_file.h temp→fsync→rename protocol): a torn
/// or bit-flipped ledger is rejected at Open instead of silently losing ε.
///
/// Invariants, enforced on Append and re-checked on Open:
///   * versions are dense from 1 (no gaps — a gap would mean a publish
///     whose spend vanished),
///   * epsilon_spent and train_steps never decrease (ε is spent at
///     training time and can only accumulate; rollbacks revert CURRENT,
///     never the ledger).
class PublishLedger {
 public:
  /// Opens (or starts) the ledger at `path`. A missing file is an empty
  /// ledger; an unreadable or invariant-violating file is an error — a
  /// publisher must never run on top of corrupt accounting.
  static Result<PublishLedger> Open(std::string path);

  /// Validates `record` against the chain (dense version, monotone ε and
  /// steps), then durably rewrites the file before exposing the record in
  /// memory. On any failure — including the "publish.ledger_append" fault
  /// point — neither the file nor the in-memory chain has changed.
  Status Append(const PublishRecord& record);

  const std::vector<PublishRecord>& records() const { return records_; }

  /// Newest record, or nullptr on an empty ledger.
  const PublishRecord* last() const {
    return records_.empty() ? nullptr : &records_.back();
  }

  /// The version the next (non-idempotent) Append must carry.
  uint64_t NextVersion() const {
    return records_.empty() ? 1 : records_.back().version + 1;
  }

  const std::string& path() const { return path_; }

  /// Serialized envelope of the full chain — what Append writes. Exposed
  /// so the chaos harness can compare two ledgers bit-for-bit.
  std::string Encode() const;

  /// Inverse of Encode, enforcing the envelope checksum and the chain
  /// invariants.
  static Result<std::vector<PublishRecord>> Decode(std::string_view bytes);

 private:
  explicit PublishLedger(std::string path) : path_(std::move(path)) {}

  std::string path_;
  std::vector<PublishRecord> records_;
};

}  // namespace plp::publish

#endif  // PLP_PUBLISH_PUBLISH_LEDGER_H_
