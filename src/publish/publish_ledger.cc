#include "publish/publish_ledger.h"

#include <utility>

#include "common/atomic_file.h"
#include "common/fault_injection.h"
#include "common/serialize.h"

namespace plp::publish {
namespace {

constexpr char kMagic[4] = {'P', 'L', 'P', 'L'};
constexpr uint32_t kFormatVersion = 1;
// Envelope: magic + version + payload size + payload CRC-64.
constexpr size_t kEnvelopeBytes = 4 + sizeof(uint32_t) + 2 * sizeof(uint64_t);
// A ledger is one record per publish; anything past this is not a ledger.
constexpr uint64_t kMaxRecords = 1u << 20;

Status ValidateLink(const PublishRecord& prev, const PublishRecord& next) {
  if (next.version != prev.version + 1) {
    return InvalidArgumentError(
        "publish ledger: version " + std::to_string(next.version) +
        " does not extend " + std::to_string(prev.version) +
        " (versions must be dense — a gap is lost accounting)");
  }
  if (next.epsilon_spent < prev.epsilon_spent) {
    return InvalidArgumentError(
        "publish ledger: cumulative epsilon regressed (" +
        std::to_string(prev.epsilon_spent) + " -> " +
        std::to_string(next.epsilon_spent) + ")");
  }
  if (next.train_steps < prev.train_steps) {
    return InvalidArgumentError(
        "publish ledger: cumulative train steps regressed (" +
        std::to_string(prev.train_steps) + " -> " +
        std::to_string(next.train_steps) + ")");
  }
  return Status::Ok();
}

Status ValidateFirst(const PublishRecord& record) {
  if (record.version != 1) {
    return InvalidArgumentError(
        "publish ledger: first record must be version 1, got " +
        std::to_string(record.version));
  }
  if (record.epsilon_spent < 0.0 || record.train_steps < 0) {
    return InvalidArgumentError(
        "publish ledger: negative spend in first record");
  }
  return Status::Ok();
}

}  // namespace

std::string PublishLedger::Encode() const {
  ByteWriter payload;
  payload.U64(static_cast<uint64_t>(records_.size()));
  for (const PublishRecord& record : records_) {
    payload.U64(record.version);
    payload.I64(record.train_steps);
    payload.F64(record.epsilon_spent);
    payload.U64(record.model_crc64);
    payload.U64(record.snapshot_checksum);
  }
  ByteWriter envelope;
  for (char c : kMagic) envelope.U8(static_cast<uint8_t>(c));
  envelope.U32(kFormatVersion);
  envelope.U64(payload.size());
  envelope.U64(Crc64(payload.str()));
  std::string out = envelope.Take();
  out += payload.str();
  return out;
}

Result<std::vector<PublishRecord>> PublishLedger::Decode(
    std::string_view bytes) {
  if (bytes.size() < kEnvelopeBytes) {
    return InvalidArgumentError("publish ledger: truncated envelope");
  }
  ByteReader envelope(bytes.substr(0, kEnvelopeBytes));
  for (char expected : kMagic) {
    PLP_ASSIGN_OR_RETURN(const uint8_t c, envelope.U8());
    if (static_cast<char>(c) != expected) {
      return InvalidArgumentError("publish ledger: bad magic");
    }
  }
  PLP_ASSIGN_OR_RETURN(const uint32_t version, envelope.U32());
  if (version != kFormatVersion) {
    return InvalidArgumentError(
        "publish ledger: unsupported format version");
  }
  PLP_ASSIGN_OR_RETURN(const uint64_t payload_size, envelope.U64());
  PLP_ASSIGN_OR_RETURN(const uint64_t expected_crc, envelope.U64());
  if (payload_size != bytes.size() - kEnvelopeBytes) {
    return InvalidArgumentError("publish ledger: payload size mismatch");
  }
  const std::string_view payload = bytes.substr(kEnvelopeBytes);
  if (Crc64(payload) != expected_crc) {
    return InvalidArgumentError("publish ledger: checksum mismatch");
  }

  ByteReader reader(payload);
  PLP_ASSIGN_OR_RETURN(const uint64_t count, reader.U64());
  if (count > kMaxRecords) {
    return InvalidArgumentError("publish ledger: implausible record count");
  }
  std::vector<PublishRecord> records;
  records.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    PublishRecord record;
    PLP_ASSIGN_OR_RETURN(record.version, reader.U64());
    PLP_ASSIGN_OR_RETURN(record.train_steps, reader.I64());
    PLP_ASSIGN_OR_RETURN(record.epsilon_spent, reader.F64());
    PLP_ASSIGN_OR_RETURN(record.model_crc64, reader.U64());
    PLP_ASSIGN_OR_RETURN(record.snapshot_checksum, reader.U64());
    if (records.empty()) {
      PLP_RETURN_IF_ERROR(ValidateFirst(record));
    } else {
      PLP_RETURN_IF_ERROR(ValidateLink(records.back(), record));
    }
    records.push_back(record);
  }
  if (!reader.AtEnd()) {
    return InvalidArgumentError("publish ledger: trailing bytes");
  }
  return records;
}

Result<PublishLedger> PublishLedger::Open(std::string path) {
  PublishLedger ledger(std::move(path));
  auto bytes = ReadFileToString(ledger.path_);
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) {
      return ledger;  // fresh ledger — first publish will create the file
    }
    return bytes.status();
  }
  PLP_ASSIGN_OR_RETURN(ledger.records_, Decode(*bytes));
  return ledger;
}

Status PublishLedger::Append(const PublishRecord& record) {
  if (records_.empty()) {
    PLP_RETURN_IF_ERROR(ValidateFirst(record));
  } else {
    PLP_RETURN_IF_ERROR(ValidateLink(records_.back(), record));
  }
  PLP_FAULT_POINT("publish.ledger_append");
  // Commit to disk first, memory second: a failed write leaves both the
  // file and the in-memory chain exactly as they were.
  records_.push_back(record);
  std::string encoded = Encode();
  records_.pop_back();
  PLP_RETURN_IF_ERROR(AtomicWriteFile(path_, encoded));
  records_.push_back(record);
  return Status::Ok();
}

}  // namespace plp::publish
