#ifndef PLP_PUBLISH_SUPERVISOR_H_
#define PLP_PUBLISH_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "publish/snapshot_publisher.h"
#include "serve/sharded_engine.h"
#include "sgns/model.h"

namespace plp::publish {

struct SupervisorConfig {
  PublisherConfig publisher;
  /// Attempts per fallible phase (train / publish / serve-swap) before the
  /// cycle gives up and the fleet stays degraded on the last good version.
  int max_attempts = 5;
  /// Bounded exponential backoff between attempts: initial · 2^(n-1),
  /// capped at max, plus seeded jitter in [0, initial) so a fleet of
  /// supervisors never retries in lockstep.
  int64_t backoff_initial_millis = 2;
  int64_t backoff_max_millis = 200;
  uint64_t jitter_seed = 1;
  /// Staleness budget for the degraded-mode contract: when a cycle fails,
  /// shards keep serving the last good snapshot and the report flags
  /// whether its swap age still fits this SLO.
  double freshness_slo_seconds = 600.0;
  /// Post-swap health probe: this many synchronous requests per shard
  /// must answer OK from the new version before the swap counts.
  int32_t probe_requests = 4;
};

/// What one training round produced. `epsilon_spent` and `steps` are the
/// ROUND's spend (the supervisor accumulates them into the cumulative
/// totals the ledger records) — core::TrainResult maps directly.
struct TrainedArtifact {
  sgns::SgnsModel model;
  double epsilon_spent = 0.0;
  int64_t steps = 0;
};

/// Produces the next trained model. `cycle` is 0-based. The pipeline
/// engine plugs in directly: run TrainingEngine::Train and move the
/// result's model/epsilon_spent/steps_executed into a TrainedArtifact.
using TrainFn = std::function<Result<TrainedArtifact>(uint64_t cycle)>;

/// Everything one cycle did, for logs and the chaos harness.
struct CycleReport {
  uint64_t cycle = 0;
  bool published = false;    ///< a new version reached CURRENT + shards
  bool rolled_back = false;  ///< CURRENT/fleet reverted to last good
  uint64_t published_version = 0;  ///< 0 when nothing was published
  uint64_t serving_version = 0;    ///< what shards serve after the cycle
  int train_attempts = 0;
  int publish_attempts = 0;
  int swap_attempts = 0;
  Status failure;  ///< OK on a clean cycle; the terminal error otherwise
  /// Staleness of the fleet's newest swap at cycle end; -1 before any
  /// swap ever landed.
  double swap_age_seconds = -1.0;
  bool within_slo = false;
};

/// Drives the continuous retrain→validate→publish→swap loop and keeps it
/// correct under failure:
///
///   * every fallible phase retries with bounded exponential backoff and
///     seeded jitter, up to max_attempts;
///   * ε accounting is supervisor-side cumulative: a training round's
///     spend is added the moment training succeeds, so a later publish
///     failure can delay the accounting but never lose it (the next
///     successful publish records the full cumulative spend);
///   * after the fleet swap, a health probe must answer from the new
///     version on every shard; a regression triggers automatic rollback —
///     CURRENT and every shard revert to the last good version (the
///     ledger is never rewound: ε stays spent);
///   * on a terminally failed cycle the fleet degrades instead of
///     breaking: shards keep serving the last good snapshot, and the
///     report carries swap_age_seconds against the freshness SLO so the
///     operator sees exactly how stale "still serving" is.
class PublishSupervisor {
 public:
  /// Opens the publish tree. If a CURRENT version already exists and
  /// verifies, it is recovered as the last good version and (when an
  /// engine is attached) re-published to every shard — a restarted
  /// supervisor serves immediately instead of waiting out a full retrain.
  /// `engine` may be null (publish-only mode); it is borrowed, not owned.
  static Result<PublishSupervisor> Create(SupervisorConfig config,
                                          serve::ShardedServingEngine* engine);

  /// Runs one full cycle. The report's `failure` field carries the
  /// terminal error of a degraded cycle; the Result itself is only an
  /// error when the supervisor's own state is unusable.
  Result<CycleReport> RunCycle(const TrainFn& train);

  uint64_t last_good_version() const { return last_good_version_; }
  double cumulative_epsilon() const { return cumulative_epsilon_; }
  int64_t cumulative_steps() const { return cumulative_steps_; }
  const SnapshotPublisher& publisher() const { return publisher_; }

 private:
  PublishSupervisor(SupervisorConfig config, SnapshotPublisher publisher,
                    serve::ShardedServingEngine* engine);

  /// initial·2^(attempt-1) capped at max, plus seeded jitter.
  int64_t BackoffMillis(int attempt);
  void SleepBeforeRetry(int attempt);

  /// Publishes `snapshot` to every shard, with retries.
  Status SwapIntoEngine(std::shared_ptr<const serve::ModelSnapshot> snapshot,
                        int& attempts);

  /// Probes every shard: probe_requests OKs from `version` each.
  Status HealthProbe(uint64_t version);

  /// Reverts CURRENT and (best effort) the fleet to last good.
  void Rollback(CycleReport& report);

  void FillServingState(CycleReport& report) const;

  SupervisorConfig config_;
  SnapshotPublisher publisher_;
  serve::ShardedServingEngine* engine_;  ///< borrowed; may be null
  uint64_t jitter_state_;
  uint64_t cycles_run_ = 0;
  double cumulative_epsilon_ = 0.0;
  int64_t cumulative_steps_ = 0;
  uint64_t last_good_version_ = 0;  ///< 0 = nothing good yet
  std::shared_ptr<const serve::ModelSnapshot> last_good_snapshot_;
};

}  // namespace plp::publish

#endif  // PLP_PUBLISH_SUPERVISOR_H_
