#ifndef PLP_PUBLISH_SNAPSHOT_PUBLISHER_H_
#define PLP_PUBLISH_SNAPSHOT_PUBLISHER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "publish/publish_ledger.h"
#include "serve/model_snapshot.h"
#include "serve/recall_gate.h"
#include "sgns/model.h"

namespace plp::publish {

struct PublisherConfig {
  /// Root of the publish tree:
  ///   <publish_dir>/staging/model.plpm   in-flight artifact (ignorable)
  ///   <publish_dir>/v<N>/model.plpm      promoted, immutable versions
  ///   <publish_dir>/CURRENT              name of the live version ("v<N>")
  ///   <publish_dir>/ledger.plpl          the cross-publish ε ledger
  std::string publish_dir;
  /// How candidate snapshots are built (format, IVF). The serving tier
  /// must be configured identically — the ledger records the checksum of
  /// THIS build.
  serve::SnapshotOptions snapshot;
  /// Recall-gate probe schedule (seeded, deterministic).
  serve::RecallProbe recall;
  /// Candidates that answer differently from the exact float32 reference
  /// (quantized payloads, IVF-pruned scans) must measure at least this
  /// recall@k against it; ≤ 0 disables the gate. Exact f32 candidates
  /// skip the gate — they ARE the reference.
  double min_recall = 0.99;
};

/// Outcome of a successful publish.
struct PublishResult {
  uint64_t version = 0;
  std::string version_dir;    ///< <publish_dir>/v<N>, promoted
  uint64_t model_crc64 = 0;   ///< CRC-64/XZ of the committed artifact
  /// The validated candidate — exactly the build the ledger's
  /// snapshot_checksum names. Hand this to the serving tier; rebuilding
  /// from the file yields the same bytes (builds are deterministic).
  std::shared_ptr<const serve::ModelSnapshot> snapshot;
  /// True when an idempotent retry resumed a publish whose ledger entry
  /// already existed (the append was NOT repeated — ε counted once).
  bool resumed = false;
};

/// Stages, validates, accounts, and promotes trained models into a
/// versioned publish tree. Every stage is fallible and every failure
/// leaves the tree serving-safe; a retry of the same input resumes where
/// the last attempt died instead of double-spending ε:
///
///   stage     write <staging>/model.plpm     [fault "publish.stage"]
///   validate  re-read bytes + CRC, rebuild snapshot, Verify(),
///             finite-bounds re-check, recall@k-vs-f32 gate
///                                            [fault "publish.validate"]
///   account   append {version, steps, ε, crcs} to the ledger — ledger
///             first: ε is durable before the version is nameable
///                                            [fault "publish.ledger_append"]
///   promote   rename staging → v<N> (idempotent if v<N> already matches)
///                                            [fault "publish.promote"]
///   swap      CURRENT ← "v<N>" (atomic temp→fsync→rename)
///                                            [fault "publish.current_swap"]
///
/// CURRENT therefore always names a version that passed validation and
/// whose ε is accounted — the two invariants the chaos harness hammers.
class SnapshotPublisher {
 public:
  /// Creates the publish tree (mkdir -p) and opens the ledger. Fails on a
  /// corrupt ledger rather than publishing on top of lost accounting.
  static Result<SnapshotPublisher> Create(PublisherConfig config);

  /// Runs the full stage→validate→account→promote→swap sequence for one
  /// trained model. `epsilon_spent` and `train_steps` are CUMULATIVE
  /// across the deployment's lifetime (the ledger enforces monotonicity).
  /// Safe to retry verbatim after any failure.
  Result<PublishResult> Publish(const sgns::SgnsModel& model,
                                double epsilon_spent, int64_t train_steps);

  /// Points CURRENT back at an already-promoted, already-accounted
  /// version. The ledger is untouched — ε spent on the abandoned version
  /// stays spent (rollbacks revert what is SERVED, never what was PAID).
  Status RollbackTo(uint64_t version);

  /// Version named by CURRENT. NotFound before the first publish.
  Result<uint64_t> CurrentVersion() const;

  /// Invariant check (ops tooling / chaos harness): CURRENT names a
  /// ledger-accounted version, the promoted artifact's bytes match the
  /// recorded CRC, and the rebuilt snapshot matches the recorded
  /// checksum. Anything else means an unvalidated artifact is nameable.
  Status VerifyCurrent() const;

  const PublishLedger& ledger() const { return ledger_; }
  const PublisherConfig& config() const { return config_; }

  static std::string VersionDirName(uint64_t version);
  std::string VersionDir(uint64_t version) const;
  std::string ModelPath(uint64_t version) const;

 private:
  SnapshotPublisher(PublisherConfig config, PublishLedger ledger)
      : config_(std::move(config)), ledger_(std::move(ledger)) {}

  std::string StagingDir() const;
  std::string StagingModelPath() const;
  std::string CurrentPath() const;

  PublisherConfig config_;
  PublishLedger ledger_;
};

}  // namespace plp::publish

#endif  // PLP_PUBLISH_SNAPSHOT_PUBLISHER_H_
