#include "ckpt/checkpoint.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <utility>

#include "common/atomic_file.h"
#include "common/fault_injection.h"
#include "common/serialize.h"

namespace plp::ckpt {
namespace {

constexpr char kMagic[4] = {'P', 'L', 'P', 'C'};
// v1: original layout. v2: + sampling-scheme byte right after the trainer
// kind. Decoding accepts both; v1 snapshots default to Poisson sampling.
constexpr uint32_t kFormatVersion = 2;
constexpr uint32_t kMinFormatVersion = 1;
constexpr std::string_view kFilePrefix = "ckpt-";
constexpr std::string_view kFileSuffix = ".plpc";
// Envelope: magic + version + payload size + payload CRC-64.
constexpr size_t kEnvelopeBytes = 4 + sizeof(uint32_t) + 2 * sizeof(uint64_t);

void WriteRngState(const RngState& rng, ByteWriter& writer) {
  for (uint64_t word : rng.state) writer.U64(word);
  writer.F64(rng.spare_gaussian);
  writer.U8(rng.has_spare_gaussian ? 1 : 0);
}

Result<RngState> ReadRngState(ByteReader& reader) {
  RngState rng;
  for (uint64_t& word : rng.state) {
    PLP_ASSIGN_OR_RETURN(word, reader.U64());
  }
  if ((rng.state[0] | rng.state[1] | rng.state[2] | rng.state[3]) == 0) {
    return InvalidArgumentError("snapshot: all-zero RNG state");
  }
  PLP_ASSIGN_OR_RETURN(rng.spare_gaussian, reader.F64());
  PLP_ASSIGN_OR_RETURN(const uint8_t has_spare, reader.U8());
  if (has_spare > 1) {
    return InvalidArgumentError("snapshot: bad RNG spare flag");
  }
  rng.has_spare_gaussian = has_spare == 1;
  return rng;
}

/// Parses "ckpt-000000000042.plpc" → 42; nullopt for anything else
/// (including the ".tmp.<pid>" debris of killed writers).
std::optional<int64_t> StepFromFilename(std::string_view name) {
  if (name.size() <= kFilePrefix.size() + kFileSuffix.size()) {
    return std::nullopt;
  }
  if (name.substr(0, kFilePrefix.size()) != kFilePrefix) return std::nullopt;
  if (name.substr(name.size() - kFileSuffix.size()) != kFileSuffix) {
    return std::nullopt;
  }
  const std::string_view digits = name.substr(
      kFilePrefix.size(), name.size() - kFilePrefix.size() - kFileSuffix.size());
  int64_t step = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    if (step > (INT64_MAX - (c - '0')) / 10) return std::nullopt;
    step = step * 10 + (c - '0');
  }
  return step;
}

}  // namespace

std::string EncodeSnapshot(const TrainerSnapshot& snapshot) {
  ByteWriter payload;
  payload.U8(static_cast<uint8_t>(snapshot.kind));
  payload.U8(static_cast<uint8_t>(snapshot.scheme));
  payload.I64(snapshot.step);
  WriteRngState(snapshot.rng, payload);
  payload.LengthPrefixedBytes(snapshot.ledger_blob);
  payload.LengthPrefixedBytes(snapshot.optimizer_name);
  payload.LengthPrefixedBytes(snapshot.optimizer_blob);
  payload.I32(snapshot.model.num_locations());
  payload.I32(snapshot.model.dim());
  // Tensors are written row-wise over the logical dims: the payload stays
  // exactly 2·L·dim + L doubles regardless of the model's in-memory row
  // padding, so pre-padding checkpoints remain loadable (and vice versa).
  const sgns::SgnsModel& model = snapshot.model;
  for (int32_t l = 0; l < model.num_locations(); ++l) {
    payload.DoubleSpan(model.InRow(l));
  }
  for (int32_t l = 0; l < model.num_locations(); ++l) {
    payload.DoubleSpan(model.OutRow(l));
  }
  payload.DoubleSpan(model.TensorData(sgns::Tensor::kBias));

  ByteWriter envelope;
  for (char c : kMagic) envelope.U8(static_cast<uint8_t>(c));
  envelope.U32(kFormatVersion);
  envelope.U64(payload.size());
  envelope.U64(Crc64(payload.str()));
  std::string out = envelope.Take();
  out += payload.str();
  return out;
}

Result<TrainerSnapshot> DecodeSnapshot(std::string_view bytes) {
  if (bytes.size() < kEnvelopeBytes) {
    return InvalidArgumentError("checkpoint: truncated envelope");
  }
  ByteReader envelope(bytes.substr(0, kEnvelopeBytes));
  for (char expected : kMagic) {
    PLP_ASSIGN_OR_RETURN(const uint8_t c, envelope.U8());
    if (static_cast<char>(c) != expected) {
      return InvalidArgumentError("checkpoint: bad magic");
    }
  }
  PLP_ASSIGN_OR_RETURN(const uint32_t version, envelope.U32());
  if (version < kMinFormatVersion || version > kFormatVersion) {
    return InvalidArgumentError("checkpoint: unsupported format version");
  }
  PLP_ASSIGN_OR_RETURN(const uint64_t payload_size, envelope.U64());
  PLP_ASSIGN_OR_RETURN(const uint64_t expected_crc, envelope.U64());
  if (payload_size != bytes.size() - kEnvelopeBytes) {
    return InvalidArgumentError("checkpoint: payload size mismatch");
  }
  const std::string_view payload_bytes = bytes.substr(kEnvelopeBytes);
  if (Crc64(payload_bytes) != expected_crc) {
    return InvalidArgumentError("checkpoint: payload checksum mismatch");
  }

  ByteReader payload(payload_bytes);
  TrainerSnapshot snapshot;
  PLP_ASSIGN_OR_RETURN(const uint8_t kind, payload.U8());
  if (kind != static_cast<uint8_t>(TrainerKind::kPrivate) &&
      kind != static_cast<uint8_t>(TrainerKind::kNonPrivate)) {
    return InvalidArgumentError("checkpoint: unknown trainer kind");
  }
  snapshot.kind = static_cast<TrainerKind>(kind);
  if (version >= 2) {
    PLP_ASSIGN_OR_RETURN(const uint8_t scheme, payload.U8());
    if (scheme != static_cast<uint8_t>(SamplingScheme::kPoisson) &&
        scheme != static_cast<uint8_t>(SamplingScheme::kFixedBatch)) {
      return InvalidArgumentError("checkpoint: unknown sampling scheme");
    }
    snapshot.scheme = static_cast<SamplingScheme>(scheme);
  }
  PLP_ASSIGN_OR_RETURN(snapshot.step, payload.I64());
  if (snapshot.step < 0) {
    return InvalidArgumentError("checkpoint: negative step");
  }
  PLP_ASSIGN_OR_RETURN(snapshot.rng, ReadRngState(payload));
  PLP_ASSIGN_OR_RETURN(snapshot.ledger_blob,
                       payload.ReadLengthPrefixedBytes(payload.remaining()));
  PLP_ASSIGN_OR_RETURN(snapshot.optimizer_name,
                       payload.ReadLengthPrefixedBytes(payload.remaining()));
  PLP_ASSIGN_OR_RETURN(snapshot.optimizer_blob,
                       payload.ReadLengthPrefixedBytes(payload.remaining()));

  PLP_ASSIGN_OR_RETURN(const int32_t num_locations, payload.I32());
  PLP_ASSIGN_OR_RETURN(const int32_t dim, payload.I32());
  if (num_locations <= 0 || dim <= 0) {
    return InvalidArgumentError("checkpoint: bad model shape");
  }
  // {W, W', B'}: 2·L·dim + L doubles must be exactly what remains.
  const uint64_t ld =
      static_cast<uint64_t>(num_locations) * static_cast<uint64_t>(dim);
  const uint64_t expected_doubles = 2 * ld + static_cast<uint64_t>(num_locations);
  if (payload.remaining() != expected_doubles * sizeof(double)) {
    return InvalidArgumentError("checkpoint: model payload size mismatch");
  }
  Rng unused_rng(0);
  sgns::SgnsConfig config;
  config.embedding_dim = dim;
  PLP_ASSIGN_OR_RETURN(
      snapshot.model, sgns::SgnsModel::Create(num_locations, config, unused_rng));
  for (int32_t l = 0; l < num_locations; ++l) {
    PLP_RETURN_IF_ERROR(
        payload.ReadDoubleSpan(snapshot.model.MutableInRow(l)));
  }
  for (int32_t l = 0; l < num_locations; ++l) {
    PLP_RETURN_IF_ERROR(
        payload.ReadDoubleSpan(snapshot.model.MutableOutRow(l)));
  }
  PLP_RETURN_IF_ERROR(payload.ReadDoubleSpan(
      snapshot.model.MutableTensorData(sgns::Tensor::kBias)));
  if (!payload.AtEnd()) {
    return InvalidArgumentError("checkpoint: trailing bytes");
  }
  return snapshot;
}

CheckpointManager::CheckpointManager(std::string dir, int keep_last)
    : dir_(std::move(dir)), keep_last_(keep_last) {}

Status CheckpointManager::Init() const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return InternalError("cannot create checkpoint dir " + dir_ + ": " +
                         ec.message());
  }
  return Status::Ok();
}

std::string CheckpointManager::PathForStep(int64_t step) const {
  char name[64];
  std::snprintf(name, sizeof(name), "ckpt-%012" PRId64 ".plpc", step);
  return dir_ + "/" + name;
}

std::vector<int64_t> CheckpointManager::ListSteps() const {
  std::vector<int64_t> steps;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return steps;
  for (const auto& entry : it) {
    if (const auto step = StepFromFilename(entry.path().filename().string())) {
      steps.push_back(*step);
    }
  }
  std::sort(steps.begin(), steps.end());
  return steps;
}

Status CheckpointManager::Save(const TrainerSnapshot& snapshot) const {
  PLP_FAULT_POINT("ckpt.before_save");
  PLP_RETURN_IF_ERROR(
      AtomicWriteFile(PathForStep(snapshot.step), EncodeSnapshot(snapshot)));
  PLP_FAULT_POINT("ckpt.after_save");
  if (keep_last_ > 0) {
    std::vector<int64_t> steps = ListSteps();
    if (steps.size() > static_cast<size_t>(keep_last_)) {
      for (size_t i = 0; i + static_cast<size_t>(keep_last_) < steps.size();
           ++i) {
        std::error_code ec;  // pruning is best-effort
        std::filesystem::remove(PathForStep(steps[i]), ec);
      }
    }
  }
  return Status::Ok();
}

Result<TrainerSnapshot> CheckpointManager::LoadLatest() const {
  std::vector<int64_t> steps = ListSteps();
  for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
    const std::string path = PathForStep(*it);
    auto contents = ReadFileToString(path);
    if (!contents.ok()) {
      std::fprintf(stderr, "[ckpt] skipping unreadable %s: %s\n", path.c_str(),
                   contents.status().message().c_str());
      continue;
    }
    auto snapshot = DecodeSnapshot(*contents);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "[ckpt] skipping invalid %s: %s\n", path.c_str(),
                   snapshot.status().message().c_str());
      continue;
    }
    if (snapshot->step != *it) {
      std::fprintf(stderr, "[ckpt] skipping %s: step %" PRId64
                   " disagrees with filename\n", path.c_str(), snapshot->step);
      continue;
    }
    return std::move(*snapshot);
  }
  return NotFoundError("no valid checkpoint in " + dir_);
}

}  // namespace plp::ckpt
