#ifndef PLP_CKPT_CHECKPOINT_H_
#define PLP_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sgns/model.h"

namespace plp::ckpt {

/// Trainer-facing checkpoint policy, shared by PlpTrainer and
/// NonPrivateTrainer. `every_steps` counts private steps for the former
/// and epochs for the latter.
struct CheckpointOptions {
  std::string dir;          ///< empty = checkpointing disabled
  int64_t every_steps = 1;  ///< snapshot cadence; must be > 0 when enabled
  bool resume = false;      ///< load the newest valid snapshot before training
  int keep_last = 3;        ///< retained snapshots (0 = keep all)

  bool enabled() const { return !dir.empty(); }
};

/// Which trainer wrote the snapshot; restoring into the wrong trainer is
/// rejected before any state is touched.
enum class TrainerKind : uint8_t {
  kPrivate = 1,     ///< core::PlpTrainer (Algorithm 1)
  kNonPrivate = 2,  ///< core::NonPrivateTrainer
};

/// The sampling scheme the run was accounted under (mirrors
/// core::SamplingScheme — redeclared here so plp_ckpt stays independent of
/// plp_core). The accountant blob's meaning depends on it, so resuming a
/// snapshot under a different scheme is rejected exactly like resuming
/// under a different accountant.
enum class SamplingScheme : uint8_t {
  kPoisson = 1,
  kFixedBatch = 2,
};

/// Everything a trainer needs to continue bit-identically after a crash:
/// the model tensors, the optimizer moments, the privacy ledger (whose
/// accounted steps always cover every noised update already applied to the
/// model — "ledger-first"), the step counter, and the main RNG stream
/// position. The ledger and optimizer states are opaque blobs written by
/// the owning components, so this format never learns their layout.
struct TrainerSnapshot {
  TrainerKind kind = TrainerKind::kPrivate;
  /// Format v1 snapshots predate the field and decode as kPoisson (the
  /// only scheme that existed when they were written).
  SamplingScheme scheme = SamplingScheme::kPoisson;
  int64_t step = 0;  ///< completed private steps / completed epochs
  RngState rng;
  std::string ledger_blob;  ///< empty for the non-private trainer
  std::string optimizer_name;
  std::string optimizer_blob;
  sgns::SgnsModel model;
};

/// Serializes the snapshot into a self-validating envelope:
/// magic "PLPC", format version, payload size, CRC-64/XZ of the payload,
/// payload. Any torn or bit-flipped file fails the checksum before a
/// single field is parsed.
std::string EncodeSnapshot(const TrainerSnapshot& snapshot);

/// Inverse of EncodeSnapshot; InvalidArgument on bad magic/version/
/// checksum/field. Every length field is bounds-checked before allocation.
Result<TrainerSnapshot> DecodeSnapshot(std::string_view bytes);

/// Manages a directory of `ckpt-<step>.plpc` files with crash-safe commit:
/// each Save writes a temp file in the same directory, fsyncs it, renames
/// it over the final name, and fsyncs the directory — so at every instant
/// the directory holds only complete, checksummed snapshots (plus ignorable
/// temp debris from killed writers).
class CheckpointManager {
 public:
  /// `keep_last` > 0 prunes older checkpoints after each successful Save,
  /// always retaining the newest `keep_last`; 0 keeps everything.
  explicit CheckpointManager(std::string dir, int keep_last = 3);

  /// Creates the directory (and parents) if missing.
  Status Init() const;

  /// Atomically commits `snapshot` as ckpt-<step>.plpc. Fault points:
  /// "ckpt.before_save" (nothing written), "ckpt.after_save" (committed),
  /// plus the atomic_file.* points inside the commit itself.
  Status Save(const TrainerSnapshot& snapshot) const;

  /// Loads the newest decodable checkpoint, skipping (and reporting to
  /// stderr) any that fail validation — a torn newest file falls back to
  /// the previous good one. NotFound when the directory holds no valid
  /// checkpoint (fresh start).
  Result<TrainerSnapshot> LoadLatest() const;

  /// Steps of all well-named checkpoint files, ascending. Temp files and
  /// foreign names are ignored. An empty (or missing) directory yields {}.
  std::vector<int64_t> ListSteps() const;

  std::string PathForStep(int64_t step) const;
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  int keep_last_;
};

}  // namespace plp::ckpt

#endif  // PLP_CKPT_CHECKPOINT_H_
