#include "optim/optimizers.h"

#include <cmath>
#include <string>

#include "common/check.h"

namespace plp::optim {

void FixedStepServerOptimizer::ApplyUpdate(const sgns::DenseUpdate& update,
                                           sgns::SgnsModel& model) {
  // The update is unpadded while the model's W/W' rows are stride-padded:
  // walk W/W' row by row (element-wise, so identical to one flat pass).
  const size_t dim = static_cast<size_t>(model.dim());
  std::span<const double> in_src = update.TensorData(sgns::Tensor::kWIn);
  std::span<const double> out_src = update.TensorData(sgns::Tensor::kWOut);
  PLP_CHECK_EQ(in_src.size(), model.TensorNumel(sgns::Tensor::kWIn));
  for (int32_t l = 0; l < model.num_locations(); ++l) {
    const size_t base = static_cast<size_t>(l) * dim;
    std::span<double> in_dst = model.MutableInRow(l);
    std::span<double> out_dst = model.MutableOutRow(l);
    for (size_t d = 0; d < dim; ++d) in_dst[d] += scale_ * in_src[base + d];
    for (size_t d = 0; d < dim; ++d) out_dst[d] += scale_ * out_src[base + d];
  }
  std::span<double> bias_dst = model.MutableTensorData(sgns::Tensor::kBias);
  std::span<const double> bias_src = update.TensorData(sgns::Tensor::kBias);
  PLP_CHECK_EQ(bias_dst.size(), bias_src.size());
  for (size_t i = 0; i < bias_dst.size(); ++i) {
    bias_dst[i] += scale_ * bias_src[i];
  }
}

DpAdamServerOptimizer::DpAdamServerOptimizer(const AdamConfig& config)
    : config_(config) {
  PLP_CHECK_GT(config_.learning_rate, 0.0);
  PLP_CHECK(config_.beta1 >= 0.0 && config_.beta1 < 1.0);
  PLP_CHECK(config_.beta2 >= 0.0 && config_.beta2 < 1.0);
  PLP_CHECK_GT(config_.epsilon, 0.0);
}

void DpAdamServerOptimizer::ApplyUpdate(const sgns::DenseUpdate& update,
                                        sgns::SgnsModel& model) {
  ++step_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(step_));
  // Moments and the update are unpadded (logical shape); the model's W/W'
  // rows are stride-padded, so parameters are reached through row spans.
  auto advance = [&](int ti, size_t flat, double g, double& param) {
    m_[ti][flat] = config_.beta1 * m_[ti][flat] + (1.0 - config_.beta1) * g;
    v_[ti][flat] =
        config_.beta2 * v_[ti][flat] + (1.0 - config_.beta2) * g * g;
    const double m_hat = m_[ti][flat] / bc1;
    const double v_hat = v_[ti][flat] / bc2;
    param -= config_.learning_rate * m_hat /
             (std::sqrt(v_hat) + config_.epsilon);
  };
  for (int ti = 0; ti < sgns::kNumTensors; ++ti) {
    const auto t = static_cast<sgns::Tensor>(ti);
    std::span<const double> src = update.TensorData(t);
    PLP_CHECK_EQ(src.size(), model.TensorNumel(t));
    if (m_[ti].size() != src.size()) {
      m_[ti].assign(src.size(), 0.0);
      v_[ti].assign(src.size(), 0.0);
    }
    if (t == sgns::Tensor::kBias) {
      std::span<double> dst = model.MutableTensorData(t);
      for (size_t i = 0; i < src.size(); ++i) {
        // ĝ is an ascent direction; Adam consumes the (noisy) gradient −ĝ.
        advance(ti, i, -src[i], dst[i]);
      }
      continue;
    }
    const size_t dim = static_cast<size_t>(model.dim());
    for (int32_t l = 0; l < model.num_locations(); ++l) {
      std::span<double> row = t == sgns::Tensor::kWIn
                                  ? model.MutableInRow(l)
                                  : model.MutableOutRow(l);
      const size_t base = static_cast<size_t>(l) * dim;
      for (size_t d = 0; d < dim; ++d) {
        advance(ti, base + d, -src[base + d], row[d]);
      }
    }
  }
}

namespace {

// Shared blob layout for both Adam variants: step counter, then the three
// first-moment tensors, then the three second-moment tensors. Each tensor
// is length-prefixed so a restored optimizer can validate shapes against
// the model before touching its own state.
void SaveAdamMoments(int64_t step, const std::vector<double> (&m)[sgns::kNumTensors],
                     const std::vector<double> (&v)[sgns::kNumTensors], ByteWriter& writer) {
  writer.I64(step);
  for (int ti = 0; ti < sgns::kNumTensors; ++ti) writer.DoubleVector(m[ti]);
  for (int ti = 0; ti < sgns::kNumTensors; ++ti) writer.DoubleVector(v[ti]);
}

Status LoadAdamMoments(ByteReader& reader, const sgns::SgnsModel& model,
                       bool allow_empty_at_step_zero, int64_t& step,
                       std::vector<double> (&m)[sgns::kNumTensors],
                       std::vector<double> (&v)[sgns::kNumTensors]) {
  PLP_ASSIGN_OR_RETURN(const int64_t loaded_step, reader.I64());
  if (loaded_step < 0) {
    return InvalidArgumentError("optimizer state: negative step count");
  }
  std::vector<double> loaded_m[sgns::kNumTensors];
  std::vector<double> loaded_v[sgns::kNumTensors];
  for (int ti = 0; ti < sgns::kNumTensors; ++ti) {
    const auto t = static_cast<sgns::Tensor>(ti);
    const size_t expected = model.TensorNumel(t);
    PLP_ASSIGN_OR_RETURN(loaded_m[ti], reader.ReadDoubleVector(expected));
    const bool empty_ok =
        allow_empty_at_step_zero && loaded_step == 0 && loaded_m[ti].empty();
    if (loaded_m[ti].size() != expected && !empty_ok) {
      return InvalidArgumentError(
          "optimizer state: first-moment shape disagrees with model");
    }
  }
  for (int ti = 0; ti < sgns::kNumTensors; ++ti) {
    PLP_ASSIGN_OR_RETURN(loaded_v[ti],
                         reader.ReadDoubleVector(loaded_m[ti].size()));
    if (loaded_v[ti].size() != loaded_m[ti].size()) {
      return InvalidArgumentError(
          "optimizer state: moment shapes disagree with each other");
    }
  }
  step = loaded_step;
  for (int ti = 0; ti < sgns::kNumTensors; ++ti) {
    m[ti] = std::move(loaded_m[ti]);
    v[ti] = std::move(loaded_v[ti]);
  }
  return Status::Ok();
}

}  // namespace

void DpAdamServerOptimizer::SaveState(ByteWriter& writer) const {
  SaveAdamMoments(step_, m_, v_, writer);
}

Status DpAdamServerOptimizer::LoadState(ByteReader& reader,
                                        const sgns::SgnsModel& model) {
  // Moments are lazily sized on the first ApplyUpdate, so a checkpoint
  // taken before any update legitimately carries empty tensors.
  return LoadAdamMoments(reader, model, /*allow_empty_at_step_zero=*/true,
                         step_, m_, v_);
}

std::unique_ptr<ServerOptimizer> MakeServerOptimizer(const std::string& name,
                                                     const AdamConfig& adam) {
  if (name == "fixed_step") {
    return std::make_unique<FixedStepServerOptimizer>();
  }
  if (name == "dp_adam") {
    return std::make_unique<DpAdamServerOptimizer>(adam);
  }
  PLP_CHECK(false);
  return nullptr;
}

SparseAdam::SparseAdam(const sgns::SgnsModel& model, const AdamConfig& config)
    : config_(config), dim_(model.dim()) {
  PLP_CHECK_GT(config_.learning_rate, 0.0);
  for (int ti = 0; ti < sgns::kNumTensors; ++ti) {
    const auto t = static_cast<sgns::Tensor>(ti);
    m_[ti].assign(model.TensorNumel(t), 0.0);
    v_[ti].assign(model.TensorNumel(t), 0.0);
  }
}

void SparseAdam::UpdateEntry(sgns::Tensor tensor, size_t flat_index,
                             double grad, double bias_corrected_lr,
                             double& param) {
  // `flat_index` addresses the logical (unpadded) moment buffers; `param`
  // is the model entry, reached through a row span by the caller.
  const int ti = static_cast<int>(tensor);
  double& m = m_[ti][flat_index];
  double& v = v_[ti][flat_index];
  m = config_.beta1 * m + (1.0 - config_.beta1) * grad;
  v = config_.beta2 * v + (1.0 - config_.beta2) * grad * grad;
  param -= bias_corrected_lr * m / (std::sqrt(v) + config_.epsilon);
}

void SparseAdam::ApplyGradient(const sgns::SparseDelta& gradient,
                               double grad_scale, sgns::SgnsModel& model) {
  PLP_CHECK_EQ(gradient.dim(), dim_);
  ++step_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(step_));
  // Fold the bias corrections into the learning rate (standard Adam
  // reformulation): lr_t = lr · √(bc2) / bc1, with moments left unscaled.
  const double lr_t = config_.learning_rate * std::sqrt(bc2) / bc1;

  gradient.ForEachRow(
      sgns::Tensor::kWIn, [&](int32_t row, std::span<const double> vec) {
        const size_t base = static_cast<size_t>(row) * dim_;
        std::span<double> params = model.MutableInRow(row);
        for (int32_t d = 0; d < dim_; ++d) {
          UpdateEntry(sgns::Tensor::kWIn, base + d, grad_scale * vec[d],
                      lr_t, params[static_cast<size_t>(d)]);
        }
      });
  gradient.ForEachRow(
      sgns::Tensor::kWOut, [&](int32_t row, std::span<const double> vec) {
        const size_t base = static_cast<size_t>(row) * dim_;
        std::span<double> params = model.MutableOutRow(row);
        for (int32_t d = 0; d < dim_; ++d) {
          UpdateEntry(sgns::Tensor::kWOut, base + d, grad_scale * vec[d],
                      lr_t, params[static_cast<size_t>(d)]);
        }
      });
  gradient.ForEachRow(
      sgns::Tensor::kBias, [&](int32_t row, std::span<const double> v) {
        UpdateEntry(sgns::Tensor::kBias, static_cast<size_t>(row),
                    grad_scale * v[0], lr_t, model.mutable_bias(row));
      });
}

void SparseAdam::SaveState(ByteWriter& writer) const {
  SaveAdamMoments(step_, m_, v_, writer);
}

Status SparseAdam::LoadState(ByteReader& reader,
                             const sgns::SgnsModel& model) {
  // Eagerly sized at construction: shapes must match the model exactly.
  PLP_RETURN_IF_ERROR(LoadAdamMoments(
      reader, model, /*allow_empty_at_step_zero=*/false, step_, m_, v_));
  if (model.dim() != dim_) {
    return InvalidArgumentError("optimizer state: model dim changed");
  }
  return Status::Ok();
}

}  // namespace plp::optim
