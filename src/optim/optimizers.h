#ifndef PLP_OPTIM_OPTIMIZERS_H_
#define PLP_OPTIM_OPTIMIZERS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "sgns/model.h"
#include "sgns/sparse_delta.h"

namespace plp::optim {

/// Adam hyper-parameters. The paper (Section 5.1) notes Adam needs little
/// tuning and uses a learning rate of 0.06.
struct AdamConfig {
  double learning_rate = 0.06;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

/// Applies the averaged (noisy) model delta ĝ_t produced by the Gaussian
/// sum query to the global model — the "Model Update" of Algorithm 1
/// line 10. Implementations own any optimizer state (e.g. Adam moments).
class ServerOptimizer {
 public:
  virtual ~ServerOptimizer() = default;

  /// Mutates `model` given the ascent-direction update ĝ_t.
  virtual void ApplyUpdate(const sgns::DenseUpdate& update,
                           sgns::SgnsModel& model) = 0;

  /// Human-readable name for logs and experiment tables.
  virtual const char* name() const = 0;

  /// Serializes the optimizer's mutable state (moments, step counter —
  /// not hyper-parameters, which the owning config re-creates). A
  /// restored optimizer applies future updates bit-identically to the
  /// uninterrupted one; checkpoint/resume depends on this.
  virtual void SaveState(ByteWriter& writer) const = 0;

  /// Restores state written by SaveState on the same optimizer type.
  /// `model` supplies the expected tensor shapes for validation.
  virtual Status LoadState(ByteReader& reader,
                           const sgns::SgnsModel& model) = 0;
};

/// Literal Algorithm 1: θ_{t+1} = θ_t + ĝ_t.
class FixedStepServerOptimizer final : public ServerOptimizer {
 public:
  /// `scale` rescales the update (1.0 = literal line 10).
  explicit FixedStepServerOptimizer(double scale = 1.0) : scale_(scale) {}

  void ApplyUpdate(const sgns::DenseUpdate& update,
                   sgns::SgnsModel& model) override;
  const char* name() const override { return "fixed_step"; }

  /// Stateless: nothing to save or restore.
  void SaveState(ByteWriter& writer) const override { (void)writer; }
  Status LoadState(ByteReader& reader,
                   const sgns::SgnsModel& model) override {
    (void)reader;
    (void)model;
    return Status::Ok();
  }

 private:
  double scale_;
};

/// Differentially-private Adam (Gylberth et al., cited in Section 5.1):
/// the server treats −ĝ_t as the gradient estimate and maintains
/// exponential moving averages of the *noisy* gradient and its square.
/// Because ĝ_t is already DP, post-processing through Adam preserves the
/// guarantee.
class DpAdamServerOptimizer final : public ServerOptimizer {
 public:
  explicit DpAdamServerOptimizer(const AdamConfig& config = {});

  void ApplyUpdate(const sgns::DenseUpdate& update,
                   sgns::SgnsModel& model) override;
  const char* name() const override { return "dp_adam"; }

  void SaveState(ByteWriter& writer) const override;
  Status LoadState(ByteReader& reader,
                   const sgns::SgnsModel& model) override;

 private:
  AdamConfig config_;
  int64_t step_ = 0;
  // Lazily sized to the model on first use; flat per-tensor state.
  std::vector<double> m_[sgns::kNumTensors];
  std::vector<double> v_[sgns::kNumTensors];
};

/// Factory by name ("fixed_step" or "dp_adam"); aborts on unknown names.
std::unique_ptr<ServerOptimizer> MakeServerOptimizer(
    const std::string& name, const AdamConfig& adam = {});

/// Lazy sparse Adam for the non-private trainer: dense first/second-moment
/// state, but only the rows present in each sparse gradient are advanced
/// (the standard "lazy Adam" used for embedding models).
class SparseAdam {
 public:
  /// Shapes the moment buffers like `model`.
  SparseAdam(const sgns::SgnsModel& model, const AdamConfig& config = {});

  /// model ← model − lr · m̂/(√v̂ + ε) over the touched entries of
  /// `gradient`, where the gradient fed to the moments is
  /// grad_scale · gradient (e.g. grad_scale = 1/batch_size).
  void ApplyGradient(const sgns::SparseDelta& gradient, double grad_scale,
                     sgns::SgnsModel& model);

  int64_t step() const { return step_; }

  /// Checkpoint support, mirroring ServerOptimizer::SaveState/LoadState.
  void SaveState(ByteWriter& writer) const;
  Status LoadState(ByteReader& reader, const sgns::SgnsModel& model);

 private:
  /// Advances the moments at `flat_index` (logical shape) and steps the
  /// model entry `param` in place.
  void UpdateEntry(sgns::Tensor tensor, size_t flat_index, double grad,
                   double bias_corrected_lr, double& param);

  AdamConfig config_;
  int32_t dim_;
  int64_t step_ = 0;
  std::vector<double> m_[sgns::kNumTensors];
  std::vector<double> v_[sgns::kNumTensors];
};

}  // namespace plp::optim

#endif  // PLP_OPTIM_OPTIMIZERS_H_
