#include "privacy/ledger.h"

#include "common/check.h"

namespace plp::privacy {

PrivacyLedger::PrivacyLedger(double delta) : delta_(delta) {
  PLP_CHECK(delta > 0.0 && delta < 1.0);
}

Status PrivacyLedger::TrackStep(double sampling_probability,
                                double noise_multiplier) {
  if (sampling_probability < 0.0 || sampling_probability > 1.0) {
    return InvalidArgumentError("sampling probability must be in [0, 1]");
  }
  if (noise_multiplier < 0.0) {
    return InvalidArgumentError("noise multiplier must be >= 0");
  }
  if (sampling_probability != cached_q_ ||
      noise_multiplier != cached_sigma_) {
    cached_q_ = sampling_probability;
    cached_sigma_ = noise_multiplier;
    cached_step_rdp_ = accountant_.StepRdp(sampling_probability,
                                           noise_multiplier);
  }
  accountant_.AddPrecomputedSteps(cached_step_rdp_, 1);
  if (!entries_.empty() &&
      entries_.back().sampling_probability == sampling_probability &&
      entries_.back().noise_multiplier == noise_multiplier) {
    ++entries_.back().steps;
  } else {
    entries_.push_back({sampling_probability, noise_multiplier, 1});
  }
  return Status::Ok();
}

void PrivacyLedger::SaveState(ByteWriter& writer) const {
  writer.F64(delta_);
  writer.U64(static_cast<uint64_t>(entries_.size()));
  for (const LedgerEntry& e : entries_) {
    writer.F64(e.sampling_probability);
    writer.F64(e.noise_multiplier);
    writer.I64(e.steps);
  }
  accountant_.SaveState(writer);
}

Result<PrivacyLedger> PrivacyLedger::Restore(ByteReader& reader) {
  PLP_ASSIGN_OR_RETURN(const double delta, reader.F64());
  if (!(delta > 0.0 && delta < 1.0)) {
    return InvalidArgumentError("ledger state: delta outside (0, 1)");
  }
  PLP_ASSIGN_OR_RETURN(const uint64_t num_entries, reader.U64());
  // Entries are coalesced runs; even one per step bounds them by the step
  // count. Reject absurd counts before allocating.
  if (num_entries > (uint64_t{1} << 32)) {
    return InvalidArgumentError("ledger state: bad entry count");
  }
  std::vector<LedgerEntry> entries(static_cast<size_t>(num_entries));
  int64_t entry_steps = 0;
  for (LedgerEntry& e : entries) {
    PLP_ASSIGN_OR_RETURN(e.sampling_probability, reader.F64());
    PLP_ASSIGN_OR_RETURN(e.noise_multiplier, reader.F64());
    PLP_ASSIGN_OR_RETURN(e.steps, reader.I64());
    if (e.sampling_probability < 0.0 || e.sampling_probability > 1.0 ||
        e.noise_multiplier < 0.0 || e.steps <= 0) {
      return InvalidArgumentError("ledger state: invalid entry");
    }
    entry_steps += e.steps;
  }
  PLP_ASSIGN_OR_RETURN(RdpAccountant accountant,
                       RdpAccountant::Restore(reader));
  if (accountant.total_steps() != entry_steps) {
    return InvalidArgumentError(
        "ledger state: entry steps disagree with accountant steps");
  }
  PrivacyLedger ledger(delta);
  ledger.entries_ = std::move(entries);
  ledger.accountant_ = std::move(accountant);
  return ledger;
}

double PrivacyLedger::CumulativeEpsilon(RdpConversion conversion) const {
  auto eps = accountant_.GetEpsilon(delta_, conversion);
  PLP_CHECK_OK(eps.status());
  return eps.value();
}

}  // namespace plp::privacy
