#include "privacy/ledger.h"

#include "common/check.h"

namespace plp::privacy {

PrivacyLedger::PrivacyLedger(double delta) : delta_(delta) {
  PLP_CHECK(delta > 0.0 && delta < 1.0);
}

Status PrivacyLedger::TrackStep(double sampling_probability,
                                double noise_multiplier) {
  if (sampling_probability < 0.0 || sampling_probability > 1.0) {
    return InvalidArgumentError("sampling probability must be in [0, 1]");
  }
  if (noise_multiplier < 0.0) {
    return InvalidArgumentError("noise multiplier must be >= 0");
  }
  if (sampling_probability != cached_q_ ||
      noise_multiplier != cached_sigma_) {
    cached_q_ = sampling_probability;
    cached_sigma_ = noise_multiplier;
    cached_step_rdp_ = accountant_.StepRdp(sampling_probability,
                                           noise_multiplier);
  }
  accountant_.AddPrecomputedSteps(cached_step_rdp_, 1);
  if (!entries_.empty() &&
      entries_.back().sampling_probability == sampling_probability &&
      entries_.back().noise_multiplier == noise_multiplier) {
    ++entries_.back().steps;
  } else {
    entries_.push_back({sampling_probability, noise_multiplier, 1});
  }
  return Status::Ok();
}

double PrivacyLedger::CumulativeEpsilon(RdpConversion conversion) const {
  auto eps = accountant_.GetEpsilon(delta_, conversion);
  PLP_CHECK_OK(eps.status());
  return eps.value();
}

}  // namespace plp::privacy
