#ifndef PLP_PRIVACY_LEDGER_H_
#define PLP_PRIVACY_LEDGER_H_

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "privacy/rdp_accountant.h"

namespace plp::privacy {

/// One coalesced run of identical private steps.
struct LedgerEntry {
  double sampling_probability = 0.0;  ///< q
  double noise_multiplier = 0.0;      ///< σ (relative to sensitivity C)
  int64_t steps = 0;
};

/// The privacy ledger of Algorithm 1 (lines 3, 11–12): records the (q, σ)
/// of every training step and answers cumulative_budget_spent() via the
/// moments accountant. "This tracker has the added benefit of allowing
/// privacy accounting at any step of the training process."
class PrivacyLedger {
 public:
  /// `delta` is fixed at construction (the paper fixes δ = 2·10⁻⁴ < 1/N).
  /// Aborts on δ outside (0, 1).
  explicit PrivacyLedger(double delta);

  /// Records one executed training step (A.track_budget). Fails on invalid
  /// q or σ.
  Status TrackStep(double sampling_probability, double noise_multiplier);

  /// ε spent so far at the ledger's δ (A.cumulative_budget_spent()).
  double CumulativeEpsilon(
      RdpConversion conversion = RdpConversion::kClassic) const;

  double delta() const { return delta_; }
  int64_t total_steps() const { return accountant_.total_steps(); }
  const std::vector<LedgerEntry>& entries() const { return entries_; }
  const RdpAccountant& accountant() const { return accountant_; }

  /// Serializes δ, the coalesced (q, σ, steps) entries, and the full
  /// accountant state. This is the "ledger-first" half of the checkpoint
  /// commit: a restored ledger answers CumulativeEpsilon bit-identically
  /// to the uninterrupted one, so no released model can ever be backed by
  /// an unrecorded budget spend. The per-step RDP cache is deliberately
  /// not persisted — it is recomputed on the first TrackStep after
  /// restore and is bit-identical by construction.
  void SaveState(ByteWriter& writer) const;
  static Result<PrivacyLedger> Restore(ByteReader& reader);

 private:
  double delta_;
  std::vector<LedgerEntry> entries_;
  RdpAccountant accountant_;
  // Per-step RDP cache for the last (q, σ) seen, so per-step tracking is
  // O(orders) adds rather than O(orders · α) exp/lgamma evaluations.
  double cached_q_ = -1.0;
  double cached_sigma_ = -1.0;
  std::vector<double> cached_step_rdp_;
};

}  // namespace plp::privacy

#endif  // PLP_PRIVACY_LEDGER_H_
