#include "privacy/gaussian_mechanism.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_util.h"

namespace plp::privacy {

Result<double> GaussianSigma(double epsilon, double delta,
                             double sensitivity) {
  if (epsilon <= 0.0 || epsilon > 1.0) {
    return InvalidArgumentError("classic Gaussian bound needs eps in (0, 1]");
  }
  if (delta <= 0.0 || delta >= 1.0) {
    return InvalidArgumentError("delta must be in (0, 1)");
  }
  if (sensitivity <= 0.0) {
    return InvalidArgumentError("sensitivity must be > 0");
  }
  return std::sqrt(2.0 * std::log(1.25 / delta)) * sensitivity / epsilon;
}

Result<double> GaussianEpsilon(double noise_multiplier, double delta) {
  if (noise_multiplier <= 0.0) {
    return InvalidArgumentError("noise multiplier must be > 0");
  }
  if (delta <= 0.0 || delta >= 1.0) {
    return InvalidArgumentError("delta must be in (0, 1)");
  }
  return std::sqrt(2.0 * std::log(1.25 / delta)) / noise_multiplier;
}

double AmplifyBySampling(double epsilon, double q) {
  if (q >= 1.0) return epsilon;
  if (q <= 0.0) return 0.0;
  return std::log1p(q * (std::exp(epsilon) - 1.0));
}

Result<double> GaussianDeltaForSigma(double epsilon,
                                     double noise_multiplier) {
  if (epsilon <= 0.0) return InvalidArgumentError("epsilon must be > 0");
  if (noise_multiplier <= 0.0) {
    return InvalidArgumentError("noise multiplier must be > 0");
  }
  const double s = noise_multiplier;
  // δ = Φ(1/(2σ) − εσ) − e^ε·Φ(−1/(2σ) − εσ), sensitivity normalized to 1.
  const double a = 1.0 / (2.0 * s) - epsilon * s;
  const double b = -1.0 / (2.0 * s) - epsilon * s;
  // e^ε·Φ(b) can overflow/underflow for extreme ε; evaluate in log space.
  const double phi_a = NormalCdf(a);
  const double phi_b = NormalCdf(b);
  double delta;
  if (phi_b > 0.0) {
    const double log_term = epsilon + std::log(phi_b);
    delta = phi_a - (log_term < 700.0 ? std::exp(log_term)
                                      : std::numeric_limits<double>::infinity());
  } else {
    delta = phi_a;
  }
  return std::max(0.0, std::min(1.0, delta));
}

Result<double> AnalyticGaussianSigma(double epsilon, double delta) {
  if (epsilon <= 0.0) return InvalidArgumentError("epsilon must be > 0");
  if (delta <= 0.0 || delta >= 1.0) {
    return InvalidArgumentError("delta must be in (0, 1)");
  }
  // δ(σ) is strictly decreasing in σ; bisect until the bracket is tight.
  double lo = 1e-6, hi = 1.0;
  while (GaussianDeltaForSigma(epsilon, hi).value() > delta) {
    hi *= 2.0;
    if (hi > 1e9) return InternalError("calibration bracket exhausted");
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (GaussianDeltaForSigma(epsilon, mid).value() > delta) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * hi) break;
  }
  return hi;  // the smallest σ in the bracket that satisfies δ(σ) <= δ
}

}  // namespace plp::privacy
