#include "privacy/mog_accountant.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace plp::privacy {
namespace {

using pld_grid::Fft;
using pld_grid::IntPow;
using pld_grid::StdNormalCdf;

constexpr uint32_t kBlobMagic = 0x31474F4D;  // "MOG1" little-endian
constexpr uint64_t kMaxEntries = 1u << 20;

/// Probability that the protected user participates in one round.
///
/// Participation is all-or-nothing: both samplers draw whole users
/// (PoissonSampleUsers / FixedBatchSampleUsers in core/grouping.cc) and
/// the ω-split grouper then places ALL ω parts of every sampled user into
/// the round's buckets, so the user's participating element count is 0 or
/// ω — never in between, and never element-wise independent. Under
/// Poisson sampling the user enters with probability q; under fixed batch
/// exactly B of the N users are drawn without replacement, so the user's
/// marginal (the Hypergeometric(N, 1, B) success probability) is B/N.
double ParticipationProbability(const MogRound& round) {
  if (round.sampling == MogSampling::kPoisson) {
    return std::min(round.sampling_ratio, 1.0);
  }
  return static_cast<double>(round.batch_size) /
         static_cast<double>(round.population);
}

/// CDF of the dominating pair P = (1−p)N(0,σ²) + pN(1,σ²). A sampled
/// user contributes all ω clipped parts, moving the query by the joint
/// sensitivity ω·C — exactly 1 in the ω·C-normalized units σ lives in —
/// so the full-participation component sits at shift 1 for every ω.
/// Same expression as the pld_fft accountant's UpperCdf, on purpose: the
/// two must produce bit-identical grids at equal p.
double UpperCdf(double p, double sigma, double x) {
  return (1.0 - p) * StdNormalCdf(x / sigma) +
         p * StdNormalCdf((x - 1.0) / sigma);
}

/// x achieving privacy loss s: the inverse of the strictly increasing
/// L(x) = log(1−p+p·e^{(2x−1)/(2σ²)}). −infinity when no x reaches s
/// (s ≤ log(1−p), the loss function's infimum).
double LossInverse(double p, double sigma, double s) {
  const double shifted = std::exp(s) - (1.0 - p);
  if (shifted <= 0.0) return -std::numeric_limits<double>::infinity();
  return 0.5 + sigma * sigma * std::log(shifted / p);
}

}  // namespace

bool MogRound::SameMechanism(const MogRound& other) const {
  return sampling == other.sampling &&
         sampling_ratio == other.sampling_ratio &&
         batch_size == other.batch_size && population == other.population &&
         noise_multiplier == other.noise_multiplier &&
         split_factor == other.split_factor;
}

MogAccountant::MogAccountant(double delta, const PldOptions& options)
    : delta_(delta), options_(options) {
  PLP_CHECK_GT(delta_, 0.0);
  PLP_CHECK_LT(delta_, 1.0);
  PLP_CHECK_GE(options_.log2_grid_size, 4);
  PLP_CHECK_LE(options_.log2_grid_size, 24);
  PLP_CHECK_GT(options_.grid_range, 0.0);
}

Status MogAccountant::AddRounds(const MogRound& round) {
  if (round.steps <= 0) return InvalidArgumentError("steps must be > 0");
  if (!(round.noise_multiplier > 0.0)) {
    return InvalidArgumentError("noise multiplier must be > 0");
  }
  if (round.split_factor < 1 || round.split_factor > kMogMaxSplitFactor) {
    return InvalidArgumentError("split factor must be in [1, 64]");
  }
  switch (round.sampling) {
    case MogSampling::kPoisson:
      if (!(round.sampling_ratio > 0.0) || round.sampling_ratio > 1.0) {
        return InvalidArgumentError(
            "Poisson sampling probability must be in (0, 1]");
      }
      break;
    case MogSampling::kFixedBatch:
      if (round.population < 1 || round.batch_size < 1 ||
          round.batch_size > round.population) {
        return InvalidArgumentError(
            "fixed batch requires 1 <= batch_size <= population");
      }
      break;
    default:
      return InvalidArgumentError("unknown MoG sampling scheme");
  }
  if (!entries_.empty() && entries_.back().SameMechanism(round)) {
    entries_.back().steps += round.steps;
  } else {
    entries_.push_back(round);
  }
  total_steps_ += round.steps;
  return Status::Ok();
}

const MogAccountant::RoundPld& MogAccountant::RoundPldFor(
    const MogRound& round) const {
  for (const RoundPld& cached : step_cache_) {
    if (cached.round.SameMechanism(round)) return cached;
  }
  const size_t n = static_cast<size_t>(1) << options_.log2_grid_size;
  const double range = options_.grid_range;
  const double width = 2.0 * range / static_cast<double>(n);

  RoundPld pld;
  pld.round = round;
  const double p = ParticipationProbability(round);
  const double sigma = round.noise_multiplier;
  // Same pessimistic binning as the pld_fft accountant (see pld_grid.h):
  // loss-ordered bin t holds the P-mass of losses in (s_t − Δ, s_t] with
  // right edge s_t = −R + (t+1)·Δ — mass rounds *up* to the edge, so
  // every bin's contribution to δ(ε) is over- rather than under-counted;
  // mass below the grid lumps into the lowest bin, mass above it is the
  // truncated tail contributing to δ in full.
  std::vector<std::complex<double>> pmf(n, {0.0, 0.0});
  double previous_cdf = 0.0;
  for (size_t t = 0; t < n; ++t) {
    const double edge = -range + static_cast<double>(t + 1) * width;
    const double x = LossInverse(p, sigma, edge);
    const double cdf = std::isinf(x) ? 0.0 : UpperCdf(p, sigma, x);
    pmf[pld_grid::WrapIndex(t, n)] = {std::max(0.0, cdf - previous_cdf),
                                      0.0};
    previous_cdf = std::max(cdf, previous_cdf);
  }
  pld.inf_mass = std::max(0.0, 1.0 - previous_cdf);
  Fft(pmf, /*inverse=*/false);
  pld.dft = std::move(pmf);
  step_cache_.push_back(std::move(pld));
  return step_cache_.back();
}

void MogAccountant::Compose(std::vector<double>& pmf,
                            double& inf_mass) const {
  const size_t n = static_cast<size_t>(1) << options_.log2_grid_size;
  std::vector<std::complex<double>> composed(n, {1.0, 0.0});
  double finite_fraction = 1.0;
  for (const MogRound& entry : entries_) {
    const RoundPld& step = RoundPldFor(entry);
    for (size_t i = 0; i < n; ++i) {
      composed[i] *= IntPow(step.dft[i], entry.steps);
    }
    finite_fraction *=
        std::pow(1.0 - step.inf_mass, static_cast<double>(entry.steps));
  }
  inf_mass = std::max(0.0, 1.0 - finite_fraction);
  if (entries_.empty()) {
    // Empty composition: point mass at loss 0 — δ(ε) = 0 for ε >= 0.
    pmf.assign(n, 0.0);
    const size_t zero_bin =
        n / 2 == 0 ? 0 : n / 2 - 1;  // right edge closest to 0 from below
    pmf[zero_bin] = 1.0;
    return;
  }
  Fft(composed, /*inverse=*/true);
  // Rotate from FFT wrap-around order back to loss-ascending order.
  pmf.resize(n);
  for (size_t t = 0; t < n; ++t) {
    pmf[t] = std::max(0.0, composed[pld_grid::WrapIndex(t, n)].real());
  }
}

double MogAccountant::DeltaAtEpsilon(double epsilon) const {
  std::vector<double> pmf;
  double inf_mass = 0.0;
  Compose(pmf, inf_mass);
  return pld_grid::DeltaAtEpsilon(pmf, inf_mass, options_.grid_range,
                                  epsilon);
}

double MogAccountant::CumulativeEpsilon() const {
  if (total_steps_ == 0) return 0.0;
  std::vector<double> pmf;
  double inf_mass = 0.0;
  Compose(pmf, inf_mass);
  return pld_grid::EpsilonForDelta(pmf, inf_mass, options_.grid_range,
                                   delta_);
}

void MogAccountant::SaveState(ByteWriter& writer) const {
  writer.U32(kBlobMagic);
  writer.F64(delta_);
  writer.I32(options_.log2_grid_size);
  writer.F64(options_.grid_range);
  writer.U64(static_cast<uint64_t>(entries_.size()));
  for (const MogRound& entry : entries_) {
    writer.U8(static_cast<uint8_t>(entry.sampling));
    writer.F64(entry.sampling_ratio);
    writer.I64(entry.batch_size);
    writer.I64(entry.population);
    writer.F64(entry.noise_multiplier);
    writer.I32(entry.split_factor);
    writer.I64(entry.steps);
  }
}

Result<MogAccountant> MogAccountant::Restore(ByteReader& reader) {
  PLP_ASSIGN_OR_RETURN(const uint32_t magic, reader.U32());
  if (magic != kBlobMagic) {
    return InvalidArgumentError("not a MoG accountant blob");
  }
  PLP_ASSIGN_OR_RETURN(const double delta, reader.F64());
  if (delta <= 0.0 || delta >= 1.0) {
    return InvalidArgumentError("MoG blob: δ out of range");
  }
  PldOptions options;
  PLP_ASSIGN_OR_RETURN(options.log2_grid_size, reader.I32());
  PLP_ASSIGN_OR_RETURN(options.grid_range, reader.F64());
  if (options.log2_grid_size < 4 || options.log2_grid_size > 24 ||
      !(options.grid_range > 0.0)) {
    return InvalidArgumentError("MoG blob: degenerate grid options");
  }
  PLP_ASSIGN_OR_RETURN(const uint64_t count, reader.U64());
  if (count > kMaxEntries) {
    return InvalidArgumentError("MoG blob: entry count too large");
  }
  MogAccountant accountant(delta, options);
  for (uint64_t i = 0; i < count; ++i) {
    MogRound round;
    PLP_ASSIGN_OR_RETURN(const uint8_t sampling, reader.U8());
    if (sampling != static_cast<uint8_t>(MogSampling::kPoisson) &&
        sampling != static_cast<uint8_t>(MogSampling::kFixedBatch)) {
      return InvalidArgumentError("MoG blob: unknown sampling scheme");
    }
    round.sampling = static_cast<MogSampling>(sampling);
    PLP_ASSIGN_OR_RETURN(round.sampling_ratio, reader.F64());
    PLP_ASSIGN_OR_RETURN(round.batch_size, reader.I64());
    PLP_ASSIGN_OR_RETURN(round.population, reader.I64());
    PLP_ASSIGN_OR_RETURN(round.noise_multiplier, reader.F64());
    PLP_ASSIGN_OR_RETURN(round.split_factor, reader.I32());
    PLP_ASSIGN_OR_RETURN(round.steps, reader.I64());
    PLP_RETURN_IF_ERROR(accountant.AddRounds(round));
  }
  return accountant;
}

}  // namespace plp::privacy
