#include "privacy/mog_accountant.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace plp::privacy {
namespace {

using pld_grid::Fft;
using pld_grid::IntPow;
using pld_grid::StdNormalCdf;

constexpr uint32_t kBlobMagic = 0x31474F4D;  // "MOG1" little-endian
constexpr uint64_t kMaxEntries = 1u << 20;
// Weights are O(ω) per mixture and the binomial/hypergeometric tails
// underflow long before this; a bound keeps blob restore allocation sane.
constexpr int32_t kMaxSplitFactor = 64;

/// log C(n, k) via lgamma (exact enough: the weights are probabilities
/// multiplied back through exp, and the mixture is renormalized against
/// nothing — each weight is its own term).
double LogChoose(int64_t n, int64_t k) {
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

/// Mixture weights w_0..w_ω: the law of how many of the protected user's
/// ω elements participate in one round under the entry's sampling scheme.
std::vector<double> MixtureWeights(const MogRound& round) {
  const int32_t omega = round.split_factor;
  std::vector<double> weights(static_cast<size_t>(omega) + 1, 0.0);
  if (round.sampling == MogSampling::kPoisson) {
    const double q = round.sampling_ratio;
    for (int32_t i = 0; i <= omega; ++i) {
      if (q >= 1.0) {
        weights[static_cast<size_t>(i)] = i == omega ? 1.0 : 0.0;
        continue;
      }
      weights[static_cast<size_t>(i)] =
          std::exp(LogChoose(omega, i) + static_cast<double>(i) * std::log(q) +
                   static_cast<double>(omega - i) * std::log1p(-q));
    }
    return weights;
  }
  // Fixed batch: B·ω of the N·ω elements drawn without replacement; the
  // group's participating count is Hypergeometric(N·ω, ω, B·ω).
  const int64_t total = round.population * omega;
  const int64_t draws = round.batch_size * omega;
  const double log_denominator = LogChoose(total, draws);
  for (int32_t i = 0; i <= omega; ++i) {
    if (i > draws || draws - i > total - omega) continue;
    weights[static_cast<size_t>(i)] =
        std::exp(LogChoose(omega, i) + LogChoose(total - omega, draws - i) -
                 log_denominator);
  }
  return weights;
}

/// CDF of the dominating mixture P = Σ_i w_i·N(i/ω, σ²).
double UpperCdf(const MogRound& round, const std::vector<double>& weights,
                double x) {
  const double u = 1.0 / static_cast<double>(round.split_factor);
  const double sigma = round.noise_multiplier;
  double cdf = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    cdf += weights[i] *
           StdNormalCdf((x - static_cast<double>(i) * u) / sigma);
  }
  return cdf;
}

/// x achieving privacy loss s: the inverse of the strictly increasing
/// L(x) = log(Σ_i a_i t^i), t = e^{x·u/σ²}, a_i = w_i·e^{−(i·u)²/(2σ²)}.
/// −infinity when no x reaches s (s ≤ log w_0, the loss infimum). The
/// polynomial Σ_{i≥1} a_i t^i is increasing and convex on t > 0, so
/// Newton from the upper bracket t ≤ (target/a_m)^{1/m} descends
/// monotonically onto the root.
double LossInverse(const MogRound& round, const std::vector<double>& weights,
                   double s) {
  const double u = 1.0 / static_cast<double>(round.split_factor);
  const double sigma = round.noise_multiplier;
  const double sigma_sq = sigma * sigma;
  std::vector<double> a(weights.size(), 0.0);
  size_t top = 0;
  for (size_t i = 1; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    const double shift = static_cast<double>(i) * u;
    a[i] = weights[i] * std::exp(-shift * shift / (2.0 * sigma_sq));
    top = i;
  }
  const double target = std::exp(s) - weights[0];
  if (target <= 0.0 || top == 0) {
    return -std::numeric_limits<double>::infinity();
  }
  const auto poly = [&](double t, double* derivative) {
    double value = 0.0;
    double slope = 0.0;
    // Horner over the dense coefficient array (top is tiny: ω <= 64).
    for (size_t i = top + 1; i-- > 1;) {
      value = value * t + a[i];
      slope = slope * t + static_cast<double>(i) * a[i];
    }
    // value currently holds Σ a_i t^{i-1}; one more multiply lands the
    // polynomial, and slope already holds Σ i·a_i t^{i-1} = f'(t).
    *derivative = slope;
    return value * t;
  };
  double t = std::exp(std::log(target / a[top]) /
                      static_cast<double>(top));
  for (int iter = 0; iter < 128; ++iter) {
    double derivative = 0.0;
    const double value = poly(t, &derivative);
    if (!(derivative > 0.0)) break;
    const double next = t - (value - target) / derivative;
    if (!(next > 0.0) || next == t) break;
    if (std::abs(next - t) <= 1e-16 * t) {
      t = next;
      break;
    }
    t = next;
  }
  return sigma_sq * std::log(t) / u;
}

}  // namespace

bool MogRound::SameMechanism(const MogRound& other) const {
  return sampling == other.sampling &&
         sampling_ratio == other.sampling_ratio &&
         batch_size == other.batch_size && population == other.population &&
         noise_multiplier == other.noise_multiplier &&
         split_factor == other.split_factor;
}

MogAccountant::MogAccountant(double delta, const PldOptions& options)
    : delta_(delta), options_(options) {
  PLP_CHECK_GT(delta_, 0.0);
  PLP_CHECK_LT(delta_, 1.0);
  PLP_CHECK_GE(options_.log2_grid_size, 4);
  PLP_CHECK_LE(options_.log2_grid_size, 24);
  PLP_CHECK_GT(options_.grid_range, 0.0);
}

Status MogAccountant::AddRounds(const MogRound& round) {
  if (round.steps <= 0) return InvalidArgumentError("steps must be > 0");
  if (!(round.noise_multiplier > 0.0)) {
    return InvalidArgumentError("noise multiplier must be > 0");
  }
  if (round.split_factor < 1 || round.split_factor > kMaxSplitFactor) {
    return InvalidArgumentError("split factor must be in [1, 64]");
  }
  switch (round.sampling) {
    case MogSampling::kPoisson:
      if (!(round.sampling_ratio > 0.0) || round.sampling_ratio > 1.0) {
        return InvalidArgumentError(
            "Poisson sampling probability must be in (0, 1]");
      }
      break;
    case MogSampling::kFixedBatch:
      if (round.population < 1 || round.batch_size < 1 ||
          round.batch_size > round.population) {
        return InvalidArgumentError(
            "fixed batch requires 1 <= batch_size <= population");
      }
      break;
    default:
      return InvalidArgumentError("unknown MoG sampling scheme");
  }
  if (!entries_.empty() && entries_.back().SameMechanism(round)) {
    entries_.back().steps += round.steps;
  } else {
    entries_.push_back(round);
  }
  total_steps_ += round.steps;
  return Status::Ok();
}

const MogAccountant::RoundPld& MogAccountant::RoundPldFor(
    const MogRound& round) const {
  for (const RoundPld& cached : step_cache_) {
    if (cached.round.SameMechanism(round)) return cached;
  }
  const size_t n = static_cast<size_t>(1) << options_.log2_grid_size;
  const double range = options_.grid_range;
  const double width = 2.0 * range / static_cast<double>(n);

  RoundPld pld;
  pld.round = round;
  const std::vector<double> weights = MixtureWeights(round);
  // Same pessimistic binning as the pld_fft accountant (see pld_grid.h):
  // loss-ordered bin t holds the P-mass of losses in (s_t − Δ, s_t] with
  // right edge s_t = −R + (t+1)·Δ — mass rounds *up* to the edge, so
  // every bin's contribution to δ(ε) is over- rather than under-counted;
  // mass below the grid lumps into the lowest bin, mass above it is the
  // truncated tail contributing to δ in full.
  std::vector<std::complex<double>> pmf(n, {0.0, 0.0});
  double previous_cdf = 0.0;
  for (size_t t = 0; t < n; ++t) {
    const double edge = -range + static_cast<double>(t + 1) * width;
    const double x = LossInverse(round, weights, edge);
    const double cdf = std::isinf(x) ? 0.0 : UpperCdf(round, weights, x);
    pmf[pld_grid::WrapIndex(t, n)] = {std::max(0.0, cdf - previous_cdf),
                                      0.0};
    previous_cdf = std::max(cdf, previous_cdf);
  }
  pld.inf_mass = std::max(0.0, 1.0 - previous_cdf);
  Fft(pmf, /*inverse=*/false);
  pld.dft = std::move(pmf);
  step_cache_.push_back(std::move(pld));
  return step_cache_.back();
}

void MogAccountant::Compose(std::vector<double>& pmf,
                            double& inf_mass) const {
  const size_t n = static_cast<size_t>(1) << options_.log2_grid_size;
  std::vector<std::complex<double>> composed(n, {1.0, 0.0});
  double finite_fraction = 1.0;
  for (const MogRound& entry : entries_) {
    const RoundPld& step = RoundPldFor(entry);
    for (size_t i = 0; i < n; ++i) {
      composed[i] *= IntPow(step.dft[i], entry.steps);
    }
    finite_fraction *=
        std::pow(1.0 - step.inf_mass, static_cast<double>(entry.steps));
  }
  inf_mass = std::max(0.0, 1.0 - finite_fraction);
  if (entries_.empty()) {
    // Empty composition: point mass at loss 0 — δ(ε) = 0 for ε >= 0.
    pmf.assign(n, 0.0);
    const size_t zero_bin =
        n / 2 == 0 ? 0 : n / 2 - 1;  // right edge closest to 0 from below
    pmf[zero_bin] = 1.0;
    return;
  }
  Fft(composed, /*inverse=*/true);
  // Rotate from FFT wrap-around order back to loss-ascending order.
  pmf.resize(n);
  for (size_t t = 0; t < n; ++t) {
    pmf[t] = std::max(0.0, composed[pld_grid::WrapIndex(t, n)].real());
  }
}

double MogAccountant::DeltaAtEpsilon(double epsilon) const {
  std::vector<double> pmf;
  double inf_mass = 0.0;
  Compose(pmf, inf_mass);
  return pld_grid::DeltaAtEpsilon(pmf, inf_mass, options_.grid_range,
                                  epsilon);
}

double MogAccountant::CumulativeEpsilon() const {
  if (total_steps_ == 0) return 0.0;
  std::vector<double> pmf;
  double inf_mass = 0.0;
  Compose(pmf, inf_mass);
  return pld_grid::EpsilonForDelta(pmf, inf_mass, options_.grid_range,
                                   delta_);
}

void MogAccountant::SaveState(ByteWriter& writer) const {
  writer.U32(kBlobMagic);
  writer.F64(delta_);
  writer.I32(options_.log2_grid_size);
  writer.F64(options_.grid_range);
  writer.U64(static_cast<uint64_t>(entries_.size()));
  for (const MogRound& entry : entries_) {
    writer.U8(static_cast<uint8_t>(entry.sampling));
    writer.F64(entry.sampling_ratio);
    writer.I64(entry.batch_size);
    writer.I64(entry.population);
    writer.F64(entry.noise_multiplier);
    writer.I32(entry.split_factor);
    writer.I64(entry.steps);
  }
}

Result<MogAccountant> MogAccountant::Restore(ByteReader& reader) {
  PLP_ASSIGN_OR_RETURN(const uint32_t magic, reader.U32());
  if (magic != kBlobMagic) {
    return InvalidArgumentError("not a MoG accountant blob");
  }
  PLP_ASSIGN_OR_RETURN(const double delta, reader.F64());
  if (delta <= 0.0 || delta >= 1.0) {
    return InvalidArgumentError("MoG blob: δ out of range");
  }
  PldOptions options;
  PLP_ASSIGN_OR_RETURN(options.log2_grid_size, reader.I32());
  PLP_ASSIGN_OR_RETURN(options.grid_range, reader.F64());
  if (options.log2_grid_size < 4 || options.log2_grid_size > 24 ||
      !(options.grid_range > 0.0)) {
    return InvalidArgumentError("MoG blob: degenerate grid options");
  }
  PLP_ASSIGN_OR_RETURN(const uint64_t count, reader.U64());
  if (count > kMaxEntries) {
    return InvalidArgumentError("MoG blob: entry count too large");
  }
  MogAccountant accountant(delta, options);
  for (uint64_t i = 0; i < count; ++i) {
    MogRound round;
    PLP_ASSIGN_OR_RETURN(const uint8_t sampling, reader.U8());
    if (sampling != static_cast<uint8_t>(MogSampling::kPoisson) &&
        sampling != static_cast<uint8_t>(MogSampling::kFixedBatch)) {
      return InvalidArgumentError("MoG blob: unknown sampling scheme");
    }
    round.sampling = static_cast<MogSampling>(sampling);
    PLP_ASSIGN_OR_RETURN(round.sampling_ratio, reader.F64());
    PLP_ASSIGN_OR_RETURN(round.batch_size, reader.I64());
    PLP_ASSIGN_OR_RETURN(round.population, reader.I64());
    PLP_ASSIGN_OR_RETURN(round.noise_multiplier, reader.F64());
    PLP_ASSIGN_OR_RETURN(round.split_factor, reader.I32());
    PLP_ASSIGN_OR_RETURN(round.steps, reader.I64());
    PLP_RETURN_IF_ERROR(accountant.AddRounds(round));
  }
  return accountant;
}

}  // namespace plp::privacy
