#ifndef PLP_PRIVACY_GEO_INDISTINGUISHABILITY_H_
#define PLP_PRIVACY_GEO_INDISTINGUISHABILITY_H_

#include <cstdint>
#include <span>

#include "common/rng.h"
#include "common/status.h"

namespace plp::privacy {

/// A geographic point in degrees.
struct GeoPoint {
  double latitude = 0.0;
  double longitude = 0.0;
};

/// Geo-indistinguishability (Andrés et al., CCS 2013 — reference [3] of
/// the paper): a location-obfuscation mechanism with
/// P(z | x) ∝ ε² / (2π) · e^{−ε·d(x, z)}, which the paper's Section 3.3
/// suggests for protecting a user's *query* trajectory ζ when the model is
/// hosted by an untrusted service provider.
///
/// Sampling is the standard polar decomposition: the angle is uniform and
/// the radius follows the Gamma(2, 1/ε) CDF, inverted via the secondary
/// branch of the Lambert W function.

/// Lambert W, branch −1: the solution w <= −1 of w·e^w = x for
/// x ∈ [−1/e, 0). Aborts outside that domain. Accurate to ~1e-12 (Halley
/// iterations).
double LambertWMinusOne(double x);

/// Draws the planar-Laplace radius (in meters) for privacy parameter
/// `epsilon_per_meter` (> 0) at uniform u ∈ (0, 1):
///   r = −(1/ε) · (W₋₁((u − 1)/e) + 1).
double PlanarLaplaceRadius(double epsilon_per_meter, double u);

/// Perturbs `point` with planar Laplace noise at `epsilon_per_meter`.
/// The radius is converted from meters to degrees with a local
/// equirectangular approximation (exact enough at city scale).
Result<GeoPoint> PlanarLaplacePerturb(const GeoPoint& point,
                                      double epsilon_per_meter, Rng& rng);

/// Great-circle-free city-scale distance in meters (equirectangular).
double ApproxDistanceMeters(const GeoPoint& a, const GeoPoint& b);

/// Index of the POI closest to `point` among the given coordinates
/// (used to snap an obfuscated report back onto the POI vocabulary).
/// Requires non-empty, equally sized spans.
int32_t NearestLocation(const GeoPoint& point,
                        std::span<const double> latitudes,
                        std::span<const double> longitudes);

}  // namespace plp::privacy

#endif  // PLP_PRIVACY_GEO_INDISTINGUISHABILITY_H_
