#ifndef PLP_PRIVACY_RDP_ACCOUNTANT_H_
#define PLP_PRIVACY_RDP_ACCOUNTANT_H_

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace plp::privacy {

/// Rényi-DP cost of ONE step of the Poisson-subsampled Gaussian mechanism
/// at integer order `alpha` >= 2 (Mironov et al., "Rényi Differential
/// Privacy of the Sampled Gaussian Mechanism"):
///
///   RDP(α) = 1/(α−1) · log Σ_{k=0}^{α} C(α,k)·(1−q)^{α−k}·q^k·
///                                 exp(k(k−1)/(2σ²))
///
/// evaluated in log space. q is the sampling probability, sigma the noise
/// multiplier (noise stddev divided by the query's l2 sensitivity).
/// Edge cases: q == 0 → 0; q == 1 → α/(2σ²); σ == 0 → +infinity.
double SubsampledGaussianRdp(double q, double sigma, int64_t alpha);

/// The default grid of Rényi orders tracked by the accountant
/// (2, 3, ..., 64 plus coarser large orders up to 512).
std::vector<int64_t> DefaultRdpOrders();

/// How an accumulated RDP curve is converted to an (ε, δ) guarantee.
enum class RdpConversion {
  /// Classic: ε = min_α [ RDP(α) + log(1/δ)/(α−1) ].
  kClassic,
  /// Tighter conversion (Canonne–Kairouz–Steinke style):
  /// ε = min_α [ RDP(α) + log((α−1)/α) − (log δ + log α)/(α−1) ].
  kImproved,
};

/// The moments accountant of [Abadi et al. 2016] in its RDP formulation:
/// tracks the Rényi divergence budget accumulated over composed subsampled
/// Gaussian steps and converts it to (ε, δ) on demand. This is the
/// `cumulative_budget_spent()` oracle of Algorithm 1.
class RdpAccountant {
 public:
  /// Uses DefaultRdpOrders().
  RdpAccountant();

  /// Custom order grid. All orders must be integers >= 2.
  explicit RdpAccountant(std::vector<int64_t> orders);

  /// Accumulates `steps` steps of a subsampled Gaussian mechanism with
  /// sampling probability `q` in [0, 1] and noise multiplier `sigma` >= 0.
  /// Fails on out-of-range parameters.
  Status AddSteps(double q, double sigma, int64_t steps);

  /// Per-order RDP of a single step with these parameters, evaluated on this
  /// accountant's order grid. Callers that execute many steps with identical
  /// (q, σ) can compute this once and feed it to AddPrecomputedSteps.
  std::vector<double> StepRdp(double q, double sigma) const;

  /// Accumulates `steps` steps whose per-order RDP was precomputed with
  /// StepRdp. `step_rdp.size()` must equal orders().size().
  void AddPrecomputedSteps(const std::vector<double>& step_rdp,
                           int64_t steps);

  /// Smallest ε such that the composition so far is (ε, δ)-DP.
  /// Requires δ in (0, 1). Returns +infinity if no finite order bounds it
  /// (e.g. σ == 0 was recorded).
  Result<double> GetEpsilon(double delta,
                            RdpConversion conversion =
                                RdpConversion::kClassic) const;

  /// The order achieving the minimum in GetEpsilon (diagnostics).
  Result<int64_t> GetOptimalOrder(double delta) const;

  const std::vector<int64_t>& orders() const { return orders_; }
  const std::vector<double>& accumulated_rdp() const { return rdp_; }
  int64_t total_steps() const { return total_steps_; }

  /// Serializes the full accountant state (orders, accumulated RDP, step
  /// count). An accountant restored from it continues composition exactly
  /// — GetEpsilon after restore+AddSteps equals the uninterrupted value
  /// bit for bit, which is what makes checkpointed accounting sound.
  void SaveState(ByteWriter& writer) const;
  static Result<RdpAccountant> Restore(ByteReader& reader);

 private:
  std::vector<int64_t> orders_;
  std::vector<double> rdp_;  ///< accumulated RDP at each order
  int64_t total_steps_ = 0;
};

/// Baselines for the accounting ablation (A3 in DESIGN.md).
///
/// Total ε after composing `steps` releases of an (eps0, delta0)-DP
/// mechanism naively: ε = steps · eps0 (δ composes as steps · delta0).
double NaiveCompositionEpsilon(double eps0, int64_t steps);

/// Advanced ("strong") composition [Dwork–Rothblum–Vadhan]: total ε at
/// additional slack δ': ε = eps0·√(2·steps·ln(1/δ')) + steps·eps0·(e^ε0 − 1).
double AdvancedCompositionEpsilon(double eps0, int64_t steps,
                                  double delta_slack);

}  // namespace plp::privacy

#endif  // PLP_PRIVACY_RDP_ACCOUNTANT_H_
