#ifndef PLP_PRIVACY_PLD_GRID_H_
#define PLP_PRIVACY_PLD_GRID_H_

#include <complex>
#include <cstdint>
#include <vector>

namespace plp::privacy {

/// Discretization of a privacy-loss distribution (Koskela et al.,
/// "Computing Tight Differential Privacy Guarantees Using FFT",
/// arXiv:1906.03049). Losses are binned on a uniform grid over
/// (−grid_range, grid_range]; n-fold composition is a pointwise power in
/// the Fourier domain. Mass falling past either end of the grid is
/// handled pessimistically: the right tail contributes to δ in full, the
/// left tail is rounded up into the lowest bin. Accuracy degrades (toward
/// over-estimating ε, never under the discretization's control knobs)
/// when the composed loss mass approaches ±grid_range — pick grid_range
/// comfortably above the target ε.
///
/// Shared by every PLD-backed accountant (the subsampled-Gaussian
/// PldAccountant and the Mixture-of-Gaussians MogAccountant), so the two
/// discretize, compose and invert δ(ε) with the exact same floating-point
/// operation sequence.
struct PldOptions {
  int32_t log2_grid_size = 15;  ///< n = 2^15 loss bins
  double grid_range = 32.0;     ///< losses discretized on (−R, R]
};

namespace pld_grid {

/// Φ(x), the standard normal CDF.
double StdNormalCdf(double x);

/// In-place iterative radix-2 FFT (inverse = true divides by n at the
/// end). data.size() must be a power of two.
void Fft(std::vector<std::complex<double>>& data, bool inverse);

/// z^k for integer k >= 1 in polar form (exact for integer exponents:
/// e^{ik(θ+2πm)} = e^{ikθ}).
std::complex<double> IntPow(std::complex<double> z, int64_t k);

/// FFT wrap-around storage index of loss-ordered bin `t`: the bin is
/// stored at (t + n/2 + 1) mod n so that array index i represents loss
/// i·Δ (negative losses in the top half). With that convention index sums
/// equal loss sums and circular convolution composes losses with no
/// origin offset; binning losses at −R + (t+1)·Δ directly by t would
/// instead shift every composition's origin by (k−1)·(R − Δ) (mod 2R)
/// after k steps.
inline size_t WrapIndex(size_t t, size_t n) { return (t + n / 2 + 1) % n; }

/// δ(ε) of a loss-ascending pmf over (−R, R] with bin right edges
/// s_j = −R + (j+1)·Δ, plus the truncated mass (which contributes to δ in
/// full): Σ_{s_j > ε} pmf[j]·(1 − e^{ε−s_j}) + inf_mass, clamped to 1.
double DeltaAtEpsilon(const std::vector<double>& pmf, double inf_mass,
                      double range, double epsilon);

/// Smallest grid-resolvable ε such that DeltaAtEpsilon(ε) <= delta, via
/// suffix-sum precomputation (each δ(ε) probe is O(log n)) and bisection
/// over [0, range]. Returns +infinity when even ε = range cannot meet
/// delta (the grid is too small for the spend).
double EpsilonForDelta(const std::vector<double>& pmf, double inf_mass,
                       double range, double delta);

}  // namespace pld_grid

}  // namespace plp::privacy

#endif  // PLP_PRIVACY_PLD_GRID_H_
