#ifndef PLP_PRIVACY_MOG_ACCOUNTANT_H_
#define PLP_PRIVACY_MOG_ACCOUNTANT_H_

#include <complex>
#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "privacy/pld_grid.h"

namespace plp::privacy {

/// How round participants are drawn, as the MoG accountant models it.
enum class MogSampling : uint8_t {
  kPoisson = 1,     ///< each user independently with probability q
  kFixedBatch = 2,  ///< exactly B of N users drawn without replacement
};

/// Upper bound on MogRound::split_factor. The accountant's ε does not
/// depend on ω (see the class comment), but ω is part of the recorded
/// mechanism and the checkpoint blob; the bound keeps restore allocation
/// sane and is enforced again by PlpConfig::Validate for --accountant=mog
/// so a misconfigured run fails before corpus loading, not at step 1.
inline constexpr int32_t kMogMaxSplitFactor = 64;

/// One coalesced run of identical Mixture-of-Gaussians rounds.
struct MogRound {
  MogSampling sampling = MogSampling::kPoisson;
  /// Poisson: per-user participation probability q in (0, 1].
  /// Fixed batch: recorded as B/N (informational; the law uses B, N).
  double sampling_ratio = 0.0;
  int64_t batch_size = 0;       ///< B (fixed batch only; 0 under Poisson)
  int64_t population = 0;       ///< N users (fixed batch only; 0 otherwise)
  double noise_multiplier = 0;  ///< σ relative to the joint sensitivity ω·C
  int32_t split_factor = 1;     ///< ω: the protected user's element count
  int64_t steps = 0;

  /// Same mechanism parameters (everything but the step count)?
  bool SameMechanism(const MogRound& other) const;
};

/// Tight group-level (ε, δ) accounting for the subsampled Gaussian
/// mechanism via the Mixture-of-Gaussians reduction (Ganesh, "Tight
/// Group-Level DP Guarantees for DP-SGD with Sampling via Mixture of
/// Gaussians Mechanisms", arXiv:2401.10294).
///
/// The protected unit is a user whose data enters a round as ω elements
/// (the ω bucket parts produced by the Grouper's split), each clipped to
/// C, so the joint l2 sensitivity is ω·C. Crucially, the pipeline samples
/// WHOLE USERS: the sampler draws user ids and the grouper then places
/// all ω parts of every sampled user into the round, so the protected
/// user's participating element count is 0 or ω — all-or-nothing,
/// perfectly correlated — and never the element-wise-independent law of
/// Ganesh's per-element setting. The general ω-component mixture
/// Σ_i w_i·N(i/ω, σ²) with Binomial/Hypergeometric weights would put
/// only mass ~q^ω (instead of q) at the full shift and therefore
/// under-report δ(ε) for ω > 1; the sound dominating pair here is the
/// two-component mixture
///
///   P = (1−p)·N(0, σ²) + p·N(1, σ²)   vs   Q = N(0, σ²),
///
/// in units where ω·C = 1 and σ is the effective multiplier, with p the
/// user's round-participation probability under the sampling scheme:
///   * Poisson:     p = q — the user enters independently each round;
///   * fixed batch: p = B/N — the marginal of drawing exactly B of the
///                  N users without replacement (Hypergeometric(N,1,B)).
/// This is exactly the pld_fft accountant's dominating pair for every ω
/// (ε is invariant in ω given the joint multiplier σ — pinned by
/// MogAccountantTest.EpsilonInvariantInOmega), strictly tighter than the
/// classic RDP conversion, and — unlike rdp/pld_fft — defined for
/// fixed-batch sampling at all.
///
/// The PLD of log(dP/dQ) is discretized on the shared pessimistic loss
/// grid (privacy/pld_grid.h) and composed across rounds by DFT pointwise
/// powers, exactly like the pld_fft accountant — so ε estimates err
/// high, never low, under the grid's control knobs.
///
/// This backs the pipeline's "mog" Accountant stage — the only stage
/// accountant whose analysis covers fixed-batch sampling.
class MogAccountant {
 public:
  /// `delta` is the fixed δ of the (ε, δ) guarantee, in (0, 1). Aborts on
  /// out-of-range δ or degenerate grid options.
  explicit MogAccountant(double delta, const PldOptions& options = {});

  /// Accumulates `round.steps` rounds of `round`'s mechanism. Consecutive
  /// same-mechanism runs coalesce into one entry. Rejects non-positive
  /// steps, σ or ω, a Poisson ratio outside (0, 1], and a fixed batch
  /// without 1 <= B <= N.
  Status AddRounds(const MogRound& round);

  /// Smallest grid-resolvable ε such that the composition so far is
  /// (ε, δ)-DP under this discretization. 0 before any round; +infinity
  /// if even ε = grid_range cannot meet δ.
  double CumulativeEpsilon() const;

  /// δ(ε) of the composition so far (test/diagnostic surface).
  double DeltaAtEpsilon(double epsilon) const;

  double delta() const { return delta_; }
  int64_t total_steps() const { return total_steps_; }
  const std::vector<MogRound>& entries() const { return entries_; }

  /// Serializes δ, the grid options, and the coalesced entries. The PLD
  /// discretizations are deterministic functions of those, so a restored
  /// accountant answers CumulativeEpsilon bit-identically. The blob is
  /// tagged ("MOG1"), so restoring an RDP or PLD blob here (or vice
  /// versa) fails instead of misparsing.
  void SaveState(ByteWriter& writer) const;
  static Result<MogAccountant> Restore(ByteReader& reader);

 private:
  struct RoundPld {
    MogRound round;  ///< steps field unused (cache key is the mechanism)
    std::vector<std::complex<double>> dft;  ///< DFT of one round's PLD
    double inf_mass = 0.0;                  ///< P[L(x) > grid_range]
  };

  const RoundPld& RoundPldFor(const MogRound& round) const;
  /// Composed PLD over all entries: the finite grid part and the total
  /// truncated mass. Empty composition → point mass at loss 0.
  void Compose(std::vector<double>& pmf, double& inf_mass) const;

  double delta_;
  PldOptions options_;
  std::vector<MogRound> entries_;
  int64_t total_steps_ = 0;
  mutable std::vector<RoundPld> step_cache_;
};

}  // namespace plp::privacy

#endif  // PLP_PRIVACY_MOG_ACCOUNTANT_H_
