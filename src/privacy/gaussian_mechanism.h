#ifndef PLP_PRIVACY_GAUSSIAN_MECHANISM_H_
#define PLP_PRIVACY_GAUSSIAN_MECHANISM_H_

#include "common/rng.h"
#include "common/status.h"

namespace plp::privacy {

/// Classic analytic calibration of the Gaussian mechanism (Theorem 2.1 /
/// [Dwork & Roth]): returns the smallest σ · sensitivity such that adding
/// N(0, σ²·S²) noise to a query with l2 sensitivity S satisfies
/// (ε, δ)-DP, i.e. σ = √(2 ln(1.25/δ)) / ε. Valid for ε ∈ (0, 1].
/// Fails outside that range or for non-positive δ/sensitivity.
Result<double> GaussianSigma(double epsilon, double delta,
                             double sensitivity);

/// Inverse of GaussianSigma: the per-release ε guaranteed by a Gaussian
/// mechanism with the given noise multiplier (σ as a multiple of the
/// sensitivity) at failure probability δ. Used by the composition baseline
/// benches. Fails for non-positive inputs. Note: the returned ε may exceed
/// 1, where the classic bound is not tight; baselines are only used for
/// qualitative comparison.
Result<double> GaussianEpsilon(double noise_multiplier, double delta);

/// Privacy amplification by subsampling (approximate, for the composition
/// baselines): a mechanism that is ε-DP on the sample is
/// log(1 + q·(e^ε − 1))-DP on the population when each record is included
/// independently with probability q.
double AmplifyBySampling(double epsilon, double q);

/// Analytic Gaussian mechanism calibration (Balle & Wang, ICML 2018):
/// the *exact* smallest σ (as a multiple of the sensitivity) such that
/// N(0, σ²·S²) noise gives (ε, δ)-DP, valid for every ε > 0 — unlike the
/// classic √(2 ln(1.25/δ))/ε bound, which only holds for ε ≤ 1 and is
/// never tighter. Solved by bisection on the exact Gaussian trade-off
///   δ(σ) = Φ(1/(2σ) − εσ) − e^ε · Φ(−1/(2σ) − εσ).
/// Fails for non-positive ε or δ outside (0, 1).
Result<double> AnalyticGaussianSigma(double epsilon, double delta);

/// The exact δ achieved by a Gaussian mechanism with the given noise
/// multiplier at privacy parameter ε (the trade-off function above).
/// Useful for verifying calibrations. Requires positive inputs.
Result<double> GaussianDeltaForSigma(double epsilon,
                                     double noise_multiplier);

}  // namespace plp::privacy

#endif  // PLP_PRIVACY_GAUSSIAN_MECHANISM_H_
