#include "privacy/rdp_accountant.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"

namespace plp::privacy {

double SubsampledGaussianRdp(double q, double sigma, int64_t alpha) {
  PLP_CHECK(q >= 0.0 && q <= 1.0);
  PLP_CHECK_GE(sigma, 0.0);
  PLP_CHECK_GE(alpha, 2);
  if (q == 0.0) return 0.0;
  if (sigma == 0.0) return std::numeric_limits<double>::infinity();
  const double a = static_cast<double>(alpha);
  if (q == 1.0) return a / (2.0 * sigma * sigma);

  const double log_q = std::log(q);
  const double log_1mq = std::log1p(-q);
  double log_sum = -std::numeric_limits<double>::infinity();
  for (int64_t k = 0; k <= alpha; ++k) {
    const double kd = static_cast<double>(k);
    const double term = LogBinomial(static_cast<int>(alpha),
                                    static_cast<int>(k)) +
                        (a - kd) * log_1mq + kd * log_q +
                        kd * (kd - 1.0) / (2.0 * sigma * sigma);
    log_sum = LogAdd(log_sum, term);
  }
  // log_sum >= 0 mathematically (the k=0 and k=1 terms already sum to a
  // value whose log is >= log((1-q)^a + a q (1-q)^{a-1} ...)); numerical
  // error can push it slightly negative, clamp.
  return std::max(0.0, log_sum) / (a - 1.0);
}

std::vector<int64_t> DefaultRdpOrders() {
  std::vector<int64_t> orders;
  for (int64_t a = 2; a <= 64; ++a) orders.push_back(a);
  for (int64_t a = 72; a <= 256; a += 8) orders.push_back(a);
  for (int64_t a = 288; a <= 512; a += 32) orders.push_back(a);
  return orders;
}

RdpAccountant::RdpAccountant() : RdpAccountant(DefaultRdpOrders()) {}

RdpAccountant::RdpAccountant(std::vector<int64_t> orders)
    : orders_(std::move(orders)) {
  PLP_CHECK(!orders_.empty());
  for (int64_t a : orders_) PLP_CHECK_GE(a, 2);
  rdp_.assign(orders_.size(), 0.0);
}

Status RdpAccountant::AddSteps(double q, double sigma, int64_t steps) {
  if (q < 0.0 || q > 1.0) {
    return InvalidArgumentError("sampling probability must be in [0, 1]");
  }
  if (sigma < 0.0) {
    return InvalidArgumentError("noise multiplier must be >= 0");
  }
  if (steps < 0) return InvalidArgumentError("steps must be >= 0");
  if (steps == 0) return Status::Ok();
  for (size_t i = 0; i < orders_.size(); ++i) {
    rdp_[i] += static_cast<double>(steps) *
               SubsampledGaussianRdp(q, sigma, orders_[i]);
  }
  total_steps_ += steps;
  return Status::Ok();
}

std::vector<double> RdpAccountant::StepRdp(double q, double sigma) const {
  std::vector<double> step(orders_.size());
  for (size_t i = 0; i < orders_.size(); ++i) {
    step[i] = SubsampledGaussianRdp(q, sigma, orders_[i]);
  }
  return step;
}

void RdpAccountant::AddPrecomputedSteps(const std::vector<double>& step_rdp,
                                        int64_t steps) {
  PLP_CHECK_EQ(step_rdp.size(), rdp_.size());
  PLP_CHECK_GE(steps, 0);
  for (size_t i = 0; i < rdp_.size(); ++i) {
    rdp_[i] += static_cast<double>(steps) * step_rdp[i];
  }
  total_steps_ += steps;
}

Result<double> RdpAccountant::GetEpsilon(double delta,
                                         RdpConversion conversion) const {
  if (delta <= 0.0 || delta >= 1.0) {
    return InvalidArgumentError("delta must be in (0, 1)");
  }
  // An empty composition is perfectly private.
  bool any_cost = false;
  for (double r : rdp_) any_cost |= r > 0.0;
  if (!any_cost) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < orders_.size(); ++i) {
    const double a = static_cast<double>(orders_[i]);
    double eps;
    if (conversion == RdpConversion::kClassic) {
      eps = rdp_[i] + std::log(1.0 / delta) / (a - 1.0);
    } else {
      eps = rdp_[i] + std::log((a - 1.0) / a) -
            (std::log(delta) + std::log(a)) / (a - 1.0);
    }
    if (eps < best) best = eps;
  }
  return std::max(0.0, best);
}

Result<int64_t> RdpAccountant::GetOptimalOrder(double delta) const {
  if (delta <= 0.0 || delta >= 1.0) {
    return InvalidArgumentError("delta must be in (0, 1)");
  }
  double best = std::numeric_limits<double>::infinity();
  int64_t best_order = orders_.front();
  for (size_t i = 0; i < orders_.size(); ++i) {
    const double a = static_cast<double>(orders_[i]);
    const double eps = rdp_[i] + std::log(1.0 / delta) / (a - 1.0);
    if (eps < best) {
      best = eps;
      best_order = orders_[i];
    }
  }
  return best_order;
}

namespace {
// Orders are small integers; a corrupt blob claiming more than this many
// is rejected before allocation.
constexpr uint64_t kMaxSerializedOrders = 1 << 16;
}  // namespace

void RdpAccountant::SaveState(ByteWriter& writer) const {
  writer.U64(static_cast<uint64_t>(orders_.size()));
  for (int64_t a : orders_) writer.I64(a);
  writer.DoubleSpan(rdp_);
  writer.I64(total_steps_);
}

Result<RdpAccountant> RdpAccountant::Restore(ByteReader& reader) {
  PLP_ASSIGN_OR_RETURN(const uint64_t num_orders, reader.U64());
  if (num_orders == 0 || num_orders > kMaxSerializedOrders) {
    return InvalidArgumentError("accountant state: bad order count");
  }
  std::vector<int64_t> orders(static_cast<size_t>(num_orders));
  for (auto& a : orders) {
    PLP_ASSIGN_OR_RETURN(a, reader.I64());
    if (a < 2) return InvalidArgumentError("accountant state: order < 2");
  }
  std::vector<double> rdp(orders.size());
  PLP_RETURN_IF_ERROR(reader.ReadDoubleSpan(rdp));
  for (double r : rdp) {
    if (!(r >= 0.0)) {  // rejects negatives and NaN
      return InvalidArgumentError("accountant state: negative RDP");
    }
  }
  PLP_ASSIGN_OR_RETURN(const int64_t total_steps, reader.I64());
  if (total_steps < 0) {
    return InvalidArgumentError("accountant state: negative step count");
  }
  RdpAccountant accountant(std::move(orders));
  accountant.rdp_ = std::move(rdp);
  accountant.total_steps_ = total_steps;
  return accountant;
}

double NaiveCompositionEpsilon(double eps0, int64_t steps) {
  PLP_CHECK_GE(eps0, 0.0);
  PLP_CHECK_GE(steps, 0);
  return eps0 * static_cast<double>(steps);
}

double AdvancedCompositionEpsilon(double eps0, int64_t steps,
                                  double delta_slack) {
  PLP_CHECK_GE(eps0, 0.0);
  PLP_CHECK_GE(steps, 0);
  PLP_CHECK(delta_slack > 0.0 && delta_slack < 1.0);
  const double k = static_cast<double>(steps);
  return eps0 * std::sqrt(2.0 * k * std::log(1.0 / delta_slack)) +
         k * eps0 * (std::exp(eps0) - 1.0);
}

}  // namespace plp::privacy
