#include "privacy/geo_indistinguishability.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace plp::privacy {
namespace {

constexpr double kEarthMetersPerDegreeLat = 111320.0;

}  // namespace

double LambertWMinusOne(double x) {
  PLP_CHECK(x >= -1.0 / M_E && x < 0.0);
  if (x == -1.0 / M_E) return -1.0;
  // Initial guess: asymptotic expansion w ≈ L1 − L2 + L2/L1 with
  // L1 = log(−x), L2 = log(−L1) (valid for the −1 branch as x → 0⁻), or
  // a series around the branch point for x near −1/e.
  double w;
  if (x > -0.27) {
    const double l1 = std::log(-x);
    const double l2 = std::log(-l1);
    w = l1 - l2 + l2 / l1;
  } else {
    const double p = -std::sqrt(2.0 * (1.0 + M_E * x));
    w = -1.0 + p - p * p / 3.0 + 11.0 * p * p * p / 72.0;
  }
  // Halley iterations on f(w) = w e^w − x.
  for (int iter = 0; iter < 64; ++iter) {
    const double ew = std::exp(w);
    const double f = w * ew - x;
    const double denom = ew * (w + 1.0) - (w + 2.0) * f / (2.0 * w + 2.0);
    const double step = f / denom;
    w -= step;
    if (std::fabs(step) < 1e-14 * (1.0 + std::fabs(w))) break;
  }
  return w;
}

double PlanarLaplaceRadius(double epsilon_per_meter, double u) {
  PLP_CHECK_GT(epsilon_per_meter, 0.0);
  PLP_CHECK(u > 0.0 && u < 1.0);
  // Inverse of the radial CDF C(r) = 1 − (1 + εr)e^{−εr}:
  // r = −(1/ε)(W₋₁((u − 1)/e) + 1).
  const double arg = (u - 1.0) / M_E;
  return -(LambertWMinusOne(arg) + 1.0) / epsilon_per_meter;
}

Result<GeoPoint> PlanarLaplacePerturb(const GeoPoint& point,
                                      double epsilon_per_meter, Rng& rng) {
  if (epsilon_per_meter <= 0.0) {
    return InvalidArgumentError("epsilon_per_meter must be > 0");
  }
  double u = rng.Uniform();
  while (u <= 0.0) u = rng.Uniform();
  const double radius = PlanarLaplaceRadius(epsilon_per_meter, u);
  const double theta = rng.Uniform(0.0, 2.0 * M_PI);
  const double meters_per_degree_lon =
      kEarthMetersPerDegreeLat *
      std::cos(point.latitude * M_PI / 180.0);
  GeoPoint out = point;
  out.latitude += radius * std::sin(theta) / kEarthMetersPerDegreeLat;
  out.longitude += radius * std::cos(theta) /
                   std::max(meters_per_degree_lon, 1.0);
  return out;
}

double ApproxDistanceMeters(const GeoPoint& a, const GeoPoint& b) {
  const double mean_lat = (a.latitude + b.latitude) / 2.0 * M_PI / 180.0;
  const double dy = (a.latitude - b.latitude) * kEarthMetersPerDegreeLat;
  const double dx = (a.longitude - b.longitude) *
                    kEarthMetersPerDegreeLat * std::cos(mean_lat);
  return std::sqrt(dx * dx + dy * dy);
}

int32_t NearestLocation(const GeoPoint& point,
                        std::span<const double> latitudes,
                        std::span<const double> longitudes) {
  PLP_CHECK(!latitudes.empty());
  PLP_CHECK_EQ(latitudes.size(), longitudes.size());
  int32_t best = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < latitudes.size(); ++i) {
    const double d = ApproxDistanceMeters(
        point, GeoPoint{latitudes[i], longitudes[i]});
    if (d < best_distance) {
      best_distance = d;
      best = static_cast<int32_t>(i);
    }
  }
  return best;
}

}  // namespace plp::privacy
