#include "privacy/pld_accountant.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "privacy/pld_grid.h"

namespace plp::privacy {
namespace {

using pld_grid::Fft;
using pld_grid::IntPow;
using pld_grid::StdNormalCdf;

constexpr uint32_t kBlobMagic = 0x31444C50;  // "PLD1" little-endian
constexpr uint64_t kMaxEntries = 1u << 20;

/// CDF of the dominating distribution P = (1−q)N(0,σ²) + qN(1,σ²).
double UpperCdf(double q, double sigma, double x) {
  return (1.0 - q) * StdNormalCdf(x / sigma) +
         q * StdNormalCdf((x - 1.0) / sigma);
}

/// x achieving privacy loss s: the inverse of the strictly increasing
/// L(x) = log(1−q+q·e^{(2x−1)/(2σ²)}). −infinity when no x reaches s
/// (s ≤ log(1−q), the loss function's infimum).
double LossInverse(double q, double sigma, double s) {
  const double shifted = std::exp(s) - (1.0 - q);
  if (shifted <= 0.0) return -std::numeric_limits<double>::infinity();
  return 0.5 + sigma * sigma * std::log(shifted / q);
}

}  // namespace

PldAccountant::PldAccountant(double delta, const PldOptions& options)
    : delta_(delta), options_(options) {
  PLP_CHECK_GT(delta_, 0.0);
  PLP_CHECK_LT(delta_, 1.0);
  PLP_CHECK_GE(options_.log2_grid_size, 4);
  PLP_CHECK_LE(options_.log2_grid_size, 24);
  PLP_CHECK_GT(options_.grid_range, 0.0);
}

Status PldAccountant::AddSteps(double q, double sigma, int64_t steps) {
  if (!(q > 0.0) || q > 1.0) {
    return InvalidArgumentError("sampling probability must be in (0, 1]");
  }
  if (!(sigma > 0.0)) {
    return InvalidArgumentError("noise multiplier must be > 0");
  }
  if (steps <= 0) return InvalidArgumentError("steps must be > 0");
  if (!entries_.empty() && entries_.back().sampling_probability == q &&
      entries_.back().noise_multiplier == sigma) {
    entries_.back().steps += steps;
  } else {
    entries_.push_back({q, sigma, steps});
  }
  total_steps_ += steps;
  return Status::Ok();
}

const PldAccountant::StepPld& PldAccountant::StepPldFor(double q,
                                                        double sigma) const {
  for (const StepPld& cached : step_cache_) {
    if (cached.q == q && cached.sigma == sigma) return cached;
  }
  const size_t n = static_cast<size_t>(1) << options_.log2_grid_size;
  const double range = options_.grid_range;
  const double width = 2.0 * range / static_cast<double>(n);

  StepPld pld;
  pld.q = q;
  pld.sigma = sigma;
  // Loss-ordered bin t (t = 0 … n−1) holds the P-mass of losses in
  // (s_t − Δ, s_t] with right edge s_t = −R + (t+1)·Δ — mass rounds *up*
  // to the edge, so every bin's contribution to δ(ε) is over- rather than
  // under-counted. Mass below the grid lumps into bin t = 0 (also
  // rounding up); mass above it is the truncated tail that contributes to
  // δ in full.
  //
  // The bin is *stored* at FFT wrap-around index (t + n/2 + 1) mod n, so
  // that array index i represents loss i·Δ (negative losses in the top
  // half). With that convention index sums equal loss sums and circular
  // convolution composes losses with no origin offset; binning losses at
  // −R + (t+1)·Δ directly by t would instead shift every composition's
  // origin by (k−1)·(R − Δ) (mod 2R) after k steps.
  std::vector<std::complex<double>> pmf(n, {0.0, 0.0});
  // The running CDF starts at 0, so everything at or below the grid's
  // bottom edge rounds up into the lowest loss bin along with its own
  // mass.
  double previous_cdf = 0.0;
  for (size_t t = 0; t < n; ++t) {
    const double edge = -range + static_cast<double>(t + 1) * width;
    const double x = LossInverse(q, sigma, edge);
    const double cdf = std::isinf(x) ? 0.0 : UpperCdf(q, sigma, x);
    const size_t raw = (t + n / 2 + 1) % n;
    pmf[raw] = {std::max(0.0, cdf - previous_cdf), 0.0};
    previous_cdf = std::max(cdf, previous_cdf);
  }
  pld.inf_mass = std::max(0.0, 1.0 - previous_cdf);
  Fft(pmf, /*inverse=*/false);
  pld.dft = std::move(pmf);
  step_cache_.push_back(std::move(pld));
  return step_cache_.back();
}

void PldAccountant::Compose(std::vector<double>& pmf,
                            double& inf_mass) const {
  const size_t n = static_cast<size_t>(1) << options_.log2_grid_size;
  std::vector<std::complex<double>> composed(n, {1.0, 0.0});
  double finite_fraction = 1.0;
  for (const PldEntry& entry : entries_) {
    const StepPld& step =
        StepPldFor(entry.sampling_probability, entry.noise_multiplier);
    for (size_t i = 0; i < n; ++i) {
      composed[i] *= IntPow(step.dft[i], entry.steps);
    }
    finite_fraction *=
        std::pow(1.0 - step.inf_mass, static_cast<double>(entry.steps));
  }
  inf_mass = std::max(0.0, 1.0 - finite_fraction);
  if (entries_.empty()) {
    // Empty composition: point mass at loss 0 — δ(ε) = 0 for ε >= 0.
    pmf.assign(n, 0.0);
    const size_t zero_bin =
        n / 2 == 0 ? 0 : n / 2 - 1;  // right edge closest to 0 from below
    pmf[zero_bin] = 1.0;
    return;
  }
  Fft(composed, /*inverse=*/true);
  // Rotate from FFT wrap-around order back to loss-ascending order (see
  // StepPldFor): loss-ordered bin t lives at raw index (t + n/2 + 1) mod n.
  pmf.resize(n);
  for (size_t t = 0; t < n; ++t) {
    pmf[t] = std::max(0.0, composed[(t + n / 2 + 1) % n].real());
  }
}

double PldAccountant::DeltaAtEpsilon(double epsilon) const {
  std::vector<double> pmf;
  double inf_mass = 0.0;
  Compose(pmf, inf_mass);
  return pld_grid::DeltaAtEpsilon(pmf, inf_mass, options_.grid_range,
                                  epsilon);
}

double PldAccountant::CumulativeEpsilon() const {
  if (total_steps_ == 0) return 0.0;
  std::vector<double> pmf;
  double inf_mass = 0.0;
  Compose(pmf, inf_mass);
  return pld_grid::EpsilonForDelta(pmf, inf_mass, options_.grid_range,
                                   delta_);
}

void PldAccountant::SaveState(ByteWriter& writer) const {
  writer.U32(kBlobMagic);
  writer.F64(delta_);
  writer.I32(options_.log2_grid_size);
  writer.F64(options_.grid_range);
  writer.U64(static_cast<uint64_t>(entries_.size()));
  for (const PldEntry& entry : entries_) {
    writer.F64(entry.sampling_probability);
    writer.F64(entry.noise_multiplier);
    writer.I64(entry.steps);
  }
}

Result<PldAccountant> PldAccountant::Restore(ByteReader& reader) {
  PLP_ASSIGN_OR_RETURN(const uint32_t magic, reader.U32());
  if (magic != kBlobMagic) {
    return InvalidArgumentError("not a PLD accountant blob");
  }
  PLP_ASSIGN_OR_RETURN(const double delta, reader.F64());
  if (delta <= 0.0 || delta >= 1.0) {
    return InvalidArgumentError("PLD blob: δ out of range");
  }
  PldOptions options;
  PLP_ASSIGN_OR_RETURN(options.log2_grid_size, reader.I32());
  PLP_ASSIGN_OR_RETURN(options.grid_range, reader.F64());
  if (options.log2_grid_size < 4 || options.log2_grid_size > 24 ||
      !(options.grid_range > 0.0)) {
    return InvalidArgumentError("PLD blob: degenerate grid options");
  }
  PLP_ASSIGN_OR_RETURN(const uint64_t count, reader.U64());
  if (count > kMaxEntries) {
    return InvalidArgumentError("PLD blob: entry count too large");
  }
  PldAccountant accountant(delta, options);
  for (uint64_t i = 0; i < count; ++i) {
    PLP_ASSIGN_OR_RETURN(const double q, reader.F64());
    PLP_ASSIGN_OR_RETURN(const double sigma, reader.F64());
    PLP_ASSIGN_OR_RETURN(const int64_t steps, reader.I64());
    PLP_RETURN_IF_ERROR(accountant.AddSteps(q, sigma, steps));
  }
  return accountant;
}

}  // namespace plp::privacy
