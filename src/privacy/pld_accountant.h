#ifndef PLP_PRIVACY_PLD_ACCOUNTANT_H_
#define PLP_PRIVACY_PLD_ACCOUNTANT_H_

#include <complex>
#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "privacy/pld_grid.h"

namespace plp::privacy {
// PldOptions (the loss-grid discretization knobs) lives in
// privacy/pld_grid.h, shared with the MoG accountant.

/// One coalesced run of identical subsampled-Gaussian steps.
struct PldEntry {
  double sampling_probability = 0.0;  ///< q
  double noise_multiplier = 0.0;      ///< σ (relative to sensitivity)
  int64_t steps = 0;
};

/// Privacy-loss-distribution accountant for the Poisson-subsampled
/// Gaussian mechanism under remove-adjacency: the dominating pair is
/// P = (1−q)·N(0,σ²) + q·N(1,σ²) against Q = N(0,σ²), whose privacy loss
/// at sample x is L(x) = log(1−q+q·e^{(2x−1)/(2σ²)}). The PLD (the
/// distribution of L(x), x ~ P) is discretized once per distinct (q, σ)
/// and composed across steps via DFT pointwise powers; δ(ε) is then the
/// standard tail functional Σ_{s>ε} PLD(s)·(1−e^{ε−s}) plus the truncated
/// mass. Tighter than the RDP moments accountant at equal (q, σ, δ) —
/// typically by 25–40% in ε over hundreds of steps.
///
/// This backs the pipeline's "pld_fft" Accountant stage (the plug-in seam
/// proof for plp::pipeline); the RDP ledger remains the default.
class PldAccountant {
 public:
  /// `delta` is the fixed δ of the (ε, δ) guarantee, in (0, 1). Aborts on
  /// out-of-range δ or degenerate grid options.
  explicit PldAccountant(double delta, const PldOptions& options = {});

  /// Accumulates `steps` steps with sampling probability `q` in (0, 1]
  /// and noise multiplier `sigma` > 0. Consecutive identical (q, σ) runs
  /// coalesce into one entry.
  Status AddSteps(double q, double sigma, int64_t steps);

  /// Smallest grid-resolvable ε such that the composition so far is
  /// (ε, δ)-DP under this discretization. 0 before any step; +infinity if
  /// even ε = grid_range cannot meet δ (grid too small for the spend).
  double CumulativeEpsilon() const;

  /// δ(ε) of the composition so far (test/diagnostic surface).
  double DeltaAtEpsilon(double epsilon) const;

  double delta() const { return delta_; }
  int64_t total_steps() const { return total_steps_; }
  const std::vector<PldEntry>& entries() const { return entries_; }

  /// Serializes δ, the grid options, and the coalesced entries. The PLD
  /// discretizations are deterministic functions of those, so a restored
  /// accountant answers CumulativeEpsilon bit-identically. The blob is
  /// tagged, so restoring an RDP-ledger blob here (or vice versa) fails
  /// instead of misparsing.
  void SaveState(ByteWriter& writer) const;
  static Result<PldAccountant> Restore(ByteReader& reader);

 private:
  struct StepPld {
    double q = 0.0;
    double sigma = 0.0;
    std::vector<std::complex<double>> dft;  ///< DFT of one step's PLD
    double inf_mass = 0.0;                  ///< P[L(x) > grid_range]
  };

  const StepPld& StepPldFor(double q, double sigma) const;
  /// Composed PLD over all entries: the finite grid part and the total
  /// truncated mass. Empty composition → point mass at loss 0.
  void Compose(std::vector<double>& pmf, double& inf_mass) const;

  double delta_;
  PldOptions options_;
  std::vector<PldEntry> entries_;
  int64_t total_steps_ = 0;
  mutable std::vector<StepPld> step_cache_;
};

}  // namespace plp::privacy

#endif  // PLP_PRIVACY_PLD_ACCOUNTANT_H_
