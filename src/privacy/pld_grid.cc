#include "privacy/pld_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace plp::privacy::pld_grid {

double StdNormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

void Fft(std::vector<std::complex<double>>& data, bool inverse) {
  const size_t n = data.size();
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI /
                         static_cast<double>(len);
    const std::complex<double> root(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> even = data[i + k];
        const std::complex<double> odd = data[i + k + len / 2] * w;
        data[i + k] = even + odd;
        data[i + k + len / 2] = even - odd;
        w *= root;
      }
    }
  }
  if (inverse) {
    for (auto& v : data) v /= static_cast<double>(n);
  }
}

std::complex<double> IntPow(std::complex<double> z, int64_t k) {
  const double r = std::abs(z);
  if (r == 0.0) return {0.0, 0.0};
  const double theta = std::arg(z);
  const double magnitude = std::exp(static_cast<double>(k) * std::log(r));
  const double phase = static_cast<double>(k) * theta;
  return {magnitude * std::cos(phase), magnitude * std::sin(phase)};
}

double DeltaAtEpsilon(const std::vector<double>& pmf, double inf_mass,
                      double range, double epsilon) {
  const size_t n = pmf.size();
  const double width = 2.0 * range / static_cast<double>(n);
  double tail = 0.0;
  // Iterate from the top of the grid down to the first edge ≤ ε; the
  // integrand (1 − e^{ε−s}) is positive only for s > ε.
  for (size_t j = n; j-- > 0;) {
    const double edge = -range + static_cast<double>(j + 1) * width;
    if (edge <= epsilon) break;
    tail += pmf[j] * (1.0 - std::exp(epsilon - edge));
  }
  return std::min(1.0, inf_mass + tail);
}

double EpsilonForDelta(const std::vector<double>& pmf, double inf_mass,
                       double range, double delta) {
  const size_t n = pmf.size();
  const double width = 2.0 * range / static_cast<double>(n);
  // Precompute suffix sums so each δ(ε) probe is O(log n): for bins above
  // a cut index c, δ = Σ_{j≥c} pmf[j] − e^ε Σ_{j≥c} pmf[j]·e^{−s_j}.
  std::vector<double> suffix_mass(n + 1, 0.0);
  std::vector<double> suffix_weighted(n + 1, 0.0);
  for (size_t j = n; j-- > 0;) {
    const double edge = -range + static_cast<double>(j + 1) * width;
    suffix_mass[j] = suffix_mass[j + 1] + pmf[j];
    suffix_weighted[j] = suffix_weighted[j + 1] + pmf[j] * std::exp(-edge);
  }
  const auto delta_at = [&](double eps) {
    // First bin whose right edge exceeds eps.
    const double position = (eps + range) / width;
    size_t cut = 0;
    if (position >= static_cast<double>(n)) {
      cut = n;
    } else if (position > 0.0) {
      cut = static_cast<size_t>(position);
      // Edges are s_j = −R + (j+1)Δ; bin j participates iff s_j > eps.
      const double edge = -range + static_cast<double>(cut + 1) * width;
      if (edge <= eps) ++cut;
    }
    if (cut >= n) return std::min(1.0, inf_mass);
    const double tail =
        suffix_mass[cut] - std::exp(eps) * suffix_weighted[cut];
    return std::min(1.0, inf_mass + std::max(0.0, tail));
  };
  if (delta_at(range) > delta) {
    return std::numeric_limits<double>::infinity();
  }
  double lo = 0.0;
  double hi = range;
  if (delta_at(lo) <= delta) return 0.0;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (delta_at(mid) <= delta) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace plp::privacy::pld_grid
