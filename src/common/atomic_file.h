#ifndef PLP_COMMON_ATOMIC_FILE_H_
#define PLP_COMMON_ATOMIC_FILE_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace plp {

/// Suffix of the temporary files AtomicWriteFile stages commits through.
/// Readers that scan directories (checkpoint discovery, model registries)
/// must ignore names containing it: a temp file is by definition possibly
/// torn.
inline constexpr std::string_view kAtomicTempInfix = ".tmp.";

/// Durably replaces `path` with `contents` using the classic crash-safe
/// commit protocol:
///
///   1. write the full contents to `<path>.tmp.<pid>` in the same
///      directory (same filesystem, so the rename below is atomic),
///   2. fsync the temp file — its bytes are on stable storage,
///   3. rename(temp, path) — POSIX atomically swaps the name to the new
///      inode; any concurrent or future reader sees either the complete
///      old file or the complete new file, never a mixture,
///   4. fsync the directory — the rename itself is durable.
///
/// A crash at any point leaves `path` either absent (if it never existed)
/// or pointing at the last fully committed contents; at worst an orphaned
/// temp file remains, which writers overwrite and readers ignore. On any
/// error the destination is untouched and the temp file is unlinked.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

/// Reads an entire file into memory. NotFound when it does not exist.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace plp

#endif  // PLP_COMMON_ATOMIC_FILE_H_
