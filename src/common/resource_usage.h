#ifndef PLP_COMMON_RESOURCE_USAGE_H_
#define PLP_COMMON_RESOURCE_USAGE_H_

#include <cstdint>

namespace plp {

/// Peak resident set size of this process in bytes (getrusage ru_maxrss),
/// or 0 where unavailable. The scale-smoke CI job and the tools' optional
/// --rss_cap_mb flag use this to catch accidental full-corpus
/// materialization: an mmap-backed training run over a million users must
/// stay bounded regardless of corpus size.
int64_t PeakRssBytes();

}  // namespace plp

#endif  // PLP_COMMON_RESOURCE_USAGE_H_
