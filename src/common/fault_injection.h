#ifndef PLP_COMMON_FAULT_INJECTION_H_
#define PLP_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace plp {

/// Named crash/error points compiled into durability-critical code paths
/// (checkpoint commit, model IO, the training loop). Production cost when
/// nothing is armed is a single relaxed atomic load per point; the match
/// logic runs only while a fault is armed.
///
/// The crash-loop driver (tools/plp_crashtest) arms a point, runs training
/// in a forked child, and asserts the recovery invariants after the child
/// is killed mid-commit. Unit tests arm kFail points to exercise error
/// paths that are otherwise unreachable (torn writes, failed commits).
///
/// Points currently compiled in:
///   atomic_file.mid_payload     half the payload written to the temp file
///   atomic_file.after_temp_write temp durable, rename not yet issued
///   atomic_file.after_rename    destination replaced, directory not synced
///   ckpt.before_save            checkpoint assembled, nothing on disk yet
///   ckpt.after_save             checkpoint committed
///   trainer.after_noise         noised update applied, checkpoint pending
///   trainer.before_checkpoint   cadence hit, commit about to start
///   serve.execute               entry of request scoring (delay injection)
enum class FaultMode {
  kKill,   ///< raise(SIGKILL): no destructors, no flushes — a power cut
  kFail,   ///< the point returns an InternalError to its caller
  kDelay,  ///< the point sleeps delay_millis, then proceeds (every hit)
};

class FaultInjection {
 public:
  /// Fast path, safe to call from any thread.
  static bool Armed() { return armed_.load(std::memory_order_acquire); }

  /// Arms `point`: kKill/kFail trigger on the `trigger_hit`-th hit
  /// (1-based) of that point and disarm afterwards; kDelay sleeps on every
  /// hit from `trigger_hit` on. Replaces any previous arming.
  static void Arm(const std::string& point, FaultMode mode,
                  int64_t trigger_hit = 1, int64_t delay_millis = 0);

  /// Clears the armed fault and hit counters.
  static void Disarm();

  /// Parses the PLP_FAULT environment variable and arms accordingly.
  /// Syntax: "point[:mode][@hit]", mode in {kill, fail, delay<ms>},
  /// e.g. PLP_FAULT="atomic_file.after_temp_write:kill@3". Unset or empty
  /// leaves injection disabled; malformed specs abort (a misarmed fault
  /// harness must never pass silently).
  static void ArmFromEnv();

  /// Slow path. Called by PLP_FAULT_POINT only while armed: returns OK
  /// when `point` is not the armed one or its trigger hit has not been
  /// reached; kills the process / returns an error / sleeps otherwise.
  static Status Hit(const char* point);

  /// Total hits recorded against the armed point (test introspection).
  static int64_t HitCount();

 private:
  static std::atomic<bool> armed_;
};

}  // namespace plp

/// Drops a fault point into a function returning plp::Status or
/// plp::Result<T>. Zero work unless a fault is armed.
#define PLP_FAULT_POINT(name)                                            \
  do {                                                                   \
    if (::plp::FaultInjection::Armed()) {                                \
      ::plp::Status plp_fault_status_ = ::plp::FaultInjection::Hit(name); \
      if (!plp_fault_status_.ok()) return plp_fault_status_;             \
    }                                                                    \
  } while (false)

#endif  // PLP_COMMON_FAULT_INJECTION_H_
