#ifndef PLP_COMMON_FAULT_INJECTION_H_
#define PLP_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace plp {

/// Named crash/error points compiled into durability-critical code paths
/// (checkpoint commit, model IO, the training loop, the publish loop).
/// Production cost when nothing is armed is a single relaxed atomic load
/// per point; the match logic runs only while a fault is armed.
///
/// The crash-loop driver (tools/plp_crashtest) arms a point, runs training
/// in a forked child, and asserts the recovery invariants after the child
/// is killed mid-commit. The publish-chaos driver (tools/plp_publish_chaos)
/// arms fail-mode faults across the publish path and asserts the loop's
/// rollback/ledger invariants. Unit tests arm kFail points to exercise
/// error paths that are otherwise unreachable (torn writes, failed
/// commits, rejected snapshots).
///
/// Points currently compiled in:
///   atomic_file.mid_payload      half the payload written to the temp file
///   atomic_file.after_temp_write temp durable, rename not yet issued
///   atomic_file.after_rename     destination replaced, directory not synced
///   ckpt.before_save             checkpoint assembled, nothing on disk yet
///   ckpt.after_save              checkpoint committed
///   trainer.after_noise          noised update applied, checkpoint pending
///   trainer.before_checkpoint    cadence hit, commit about to start
///   serve.execute                entry of request scoring (delay injection)
///   snapshot.verify              snapshot integrity re-check (publish gate)
///   publish.stage                staged artifact about to be written
///   publish.validate             validation gates about to run
///   publish.ledger_append        ε record durably committed next
///   publish.promote              versioned directory about to be created
///   publish.current_swap         CURRENT pointer about to move
///   publish.serve_swap           validated snapshot about to hot-swap in
enum class FaultMode {
  kKill,   ///< raise(SIGKILL): no destructors, no flushes — a power cut
  kFail,   ///< the point returns an InternalError to its caller
  kDelay,  ///< the point sleeps delay_millis, then proceeds
};

/// When the hits of an armed point actually fire. kOnce reproduces the
/// original behavior (fire on the n-th hit; kKill/kFail then disarm);
/// kEveryNth and kProbability model *recurring* faults — a flaky disk, a
/// lossy link — and stay armed until Disarm(), which is what a chaos loop
/// needs to exercise retry paths more than once per arming.
struct FaultTrigger {
  enum class Kind : uint8_t {
    kOnce,         ///< fire exactly on the n-th hit (1-based)
    kEveryNth,     ///< fire on every n-th hit (n, 2n, 3n, ...)
    kProbability,  ///< fire each hit with probability p (seeded stream)
  };

  Kind kind = Kind::kOnce;
  int64_t n = 1;             ///< kOnce: firing hit; kEveryNth: period
  double probability = 0.0;  ///< kProbability: per-hit firing chance
  uint64_t seed = 1;         ///< kProbability: coin-stream seed

  static FaultTrigger Once(int64_t hit = 1);
  static FaultTrigger EveryNth(int64_t period);
  /// The coin stream is a pure function of `seed` and the hit index, so a
  /// chaos schedule replays identically run to run.
  static FaultTrigger WithProbability(double p, uint64_t seed = 1);
};

class FaultInjection {
 public:
  /// Fast path, safe to call from any thread.
  static bool Armed() { return armed_.load(std::memory_order_acquire); }

  /// Arms `point` with a kOnce trigger: kKill/kFail fire on the
  /// `trigger_hit`-th hit (1-based) of that point and disarm afterwards;
  /// kDelay sleeps on every hit from `trigger_hit` on. Replaces any
  /// previous arming.
  static void Arm(const std::string& point, FaultMode mode,
                  int64_t trigger_hit = 1, int64_t delay_millis = 0);

  /// Arms `point` with an explicit trigger. kEveryNth/kProbability stay
  /// armed after firing (recurring faults); kOnce keeps the one-shot
  /// kKill/kFail semantics above. Replaces any previous arming.
  static void Arm(const std::string& point, FaultMode mode,
                  const FaultTrigger& trigger, int64_t delay_millis = 0);

  /// Clears the armed fault and hit counters.
  static void Disarm();

  /// Parses the PLP_FAULT environment variable and arms accordingly.
  /// Syntax: "point[:mode][@trigger]", mode in {kill, fail, delay<ms>},
  /// trigger one of
  ///   <N>            fire once, on the N-th hit     e.g. "@3"
  ///   every<N>       fire on every N-th hit         e.g. "@every4"
  ///   p<P>[/<seed>]  fire each hit w.p. P, seeded   e.g. "@p0.25/7"
  /// e.g. PLP_FAULT="publish.promote:fail@p0.5/42". Unset or empty leaves
  /// injection disabled; malformed specs abort (a misarmed fault harness
  /// must never pass silently).
  static void ArmFromEnv();

  /// Slow path. Called by PLP_FAULT_POINT only while armed: returns OK
  /// when `point` is not the armed one or its trigger does not fire on
  /// this hit; kills the process / returns an error / sleeps otherwise.
  static Status Hit(const char* point);

  /// Total hits recorded against the armed point (test introspection).
  static int64_t HitCount();

  /// Hits on which the trigger actually fired (test introspection).
  static int64_t FireCount();

 private:
  static std::atomic<bool> armed_;
};

}  // namespace plp

/// Drops a fault point into a function returning plp::Status or
/// plp::Result<T>. Zero work unless a fault is armed.
#define PLP_FAULT_POINT(name)                                            \
  do {                                                                   \
    if (::plp::FaultInjection::Armed()) {                                \
      ::plp::Status plp_fault_status_ = ::plp::FaultInjection::Hit(name); \
      if (!plp_fault_status_.ok()) return plp_fault_status_;             \
    }                                                                    \
  } while (false)

#endif  // PLP_COMMON_FAULT_INJECTION_H_
