#ifndef PLP_COMMON_TABLE_PRINTER_H_
#define PLP_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace plp {

/// Accumulates rows and renders them either as an aligned console table or
/// as CSV. All figure benches print their series through this class so the
/// output is both human-readable and machine-parsable.
class TablePrinter {
 public:
  /// Constructs a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Starts a new row. Subsequent Add* calls fill it left to right.
  TablePrinter& NewRow();
  TablePrinter& AddCell(std::string value);
  TablePrinter& AddCell(double value, int precision = 4);
  TablePrinter& AddCell(int64_t value);

  /// Renders with padded columns.
  void PrintAligned(std::ostream& os) const;

  /// Renders as CSV, headers first.
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace plp

#endif  // PLP_COMMON_TABLE_PRINTER_H_
