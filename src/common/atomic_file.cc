#include "common/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"

namespace plp {
namespace {

Status ErrnoError(const std::string& what, const std::string& path) {
  return InternalError(what + " failed for " + path + ": " +
                       std::strerror(errno));
}

Status WriteAll(int fd, std::string_view contents, const std::string& path) {
  size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n = ::write(fd, contents.data() + written,
                              contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// The commit sequence against an already-created temp fd. Split out so
/// the caller can centralize cleanup: any error (including an injected
/// one) unlinks the temp and leaves the destination untouched.
Status CommitViaTemp(int fd, const std::string& temp_path,
                     const std::string& path, std::string_view contents) {
  // Stage the payload in two halves with a fault point between them: a
  // kill here leaves a torn temp file — exactly the state the atomic
  // protocol must make invisible to readers of `path`.
  const size_t half = contents.size() / 2;
  PLP_RETURN_IF_ERROR(WriteAll(fd, contents.substr(0, half), temp_path));
  PLP_FAULT_POINT("atomic_file.mid_payload");
  PLP_RETURN_IF_ERROR(WriteAll(fd, contents.substr(half), temp_path));
  if (::fsync(fd) != 0) return ErrnoError("fsync", temp_path);
  PLP_FAULT_POINT("atomic_file.after_temp_write");
  if (::rename(temp_path.c_str(), path.c_str()) != 0) {
    return ErrnoError("rename", temp_path);
  }
  PLP_FAULT_POINT("atomic_file.after_rename");
  return Status::Ok();
}

Status SyncParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) return ErrnoError("open directory", dir);
  const int rc = ::fsync(dir_fd);
  ::close(dir_fd);
  if (rc != 0) return ErrnoError("fsync directory", dir);
  return Status::Ok();
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  if (path.empty()) return InvalidArgumentError("empty path");
  const std::string temp_path =
      path + std::string(kAtomicTempInfix) + std::to_string(::getpid());
  const int fd = ::open(temp_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoError("open", temp_path);

  Status status = CommitViaTemp(fd, temp_path, path, contents);
  ::close(fd);
  if (!status.ok()) {
    ::unlink(temp_path.c_str());  // best effort; never mask the root cause
    return status;
  }
  return SyncParentDirectory(path);
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open: " + path);
  std::ostringstream contents;
  contents << in.rdbuf();
  if (!in && !in.eof()) return InternalError("read failed: " + path);
  return std::move(contents).str();
}

}  // namespace plp
