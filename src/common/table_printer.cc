#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace plp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PLP_CHECK(!headers_.empty());
}

TablePrinter& TablePrinter::NewRow() {
  rows_.emplace_back();
  return *this;
}

TablePrinter& TablePrinter::AddCell(std::string value) {
  PLP_CHECK(!rows_.empty());
  PLP_CHECK_LT(rows_.back().size(), headers_.size());
  rows_.back().push_back(std::move(value));
  return *this;
}

TablePrinter& TablePrinter::AddCell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return AddCell(std::string(buf));
}

TablePrinter& TablePrinter::AddCell(int64_t value) {
  return AddCell(std::to_string(value));
}

void TablePrinter::PrintAligned(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << cell;
      if (c + 1 < headers_.size()) {
        os << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace plp
