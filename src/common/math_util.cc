#include "common/math_util.h"

#include <algorithm>
#include <cmath>
#include <limits>

#if defined(__x86_64__) && defined(__GNUC__)
#define PLP_SIMD_X86 1
#include <immintrin.h>
#endif

#include "common/check.h"

namespace plp {

double LogAdd(double a, double b) {
  if (std::isinf(a) && a < 0) return b;
  if (std::isinf(b) && b < 0) return a;
  const double m = std::max(a, b);
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

double LogSumExp(std::span<const double> xs) {
  if (xs.empty()) return -std::numeric_limits<double>::infinity();
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  if (std::isinf(m) && m < 0) return m;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - m);
  return m + std::log(sum);
}

double LogBinomial(int n, int k) {
  PLP_CHECK(k >= 0 && k <= n);
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
         std::lgamma(n - k + 1.0);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

namespace {

// Continued fraction for the incomplete beta function (Numerical Recipes'
// betacf, modified Lentz).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-14;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  PLP_CHECK_GT(a, 0.0);
  PLP_CHECK_GT(b, 0.0);
  PLP_CHECK(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return std::exp(ln_front) * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - std::exp(ln_front) * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

namespace {

// Series expansion of P(a, x), converges fast for x < a + 1 (Numerical
// Recipes' gser).
double LowerGammaSeries(double a, double x) {
  constexpr int kMaxIter = 500;
  constexpr double kEps = 3.0e-14;
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIter; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction of Q(a, x), converges fast for x >= a + 1 (Numerical
// Recipes' gcf, modified Lentz).
double UpperGammaContinuedFraction(double a, double x) {
  constexpr int kMaxIter = 500;
  constexpr double kEps = 3.0e-14;
  constexpr double kFpMin = 1.0e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double RegularizedLowerIncompleteGamma(double a, double x) {
  PLP_CHECK_GT(a, 0.0);
  PLP_CHECK(x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return LowerGammaSeries(a, x);
  return 1.0 - UpperGammaContinuedFraction(a, x);
}

double RegularizedUpperIncompleteGamma(double a, double x) {
  PLP_CHECK_GT(a, 0.0);
  PLP_CHECK(x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - LowerGammaSeries(a, x);
  return UpperGammaContinuedFraction(a, x);
}

double KolmogorovComplementaryCdf(double t) {
  PLP_CHECK(t >= 0.0);
  // The series alternates and its terms decay like exp(-2k²t²); for tiny t
  // it converges slowly and Q(t) -> 1, so short-circuit.
  if (t < 1e-3) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * t * t);
    sum += sign * term;
    if (term < 1e-16) break;
    sign = -sign;
  }
  return Clamp(2.0 * sum, 0.0, 1.0);
}

double StudentTTwoSidedPValue(double t, double df) {
  PLP_CHECK_GT(df, 0.0);
  const double x = df / (df + t * t);
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

// ---------------------------------------------------------------------------
// Dispatched double-precision kernels.
//
// The AVX2 bodies implement exactly the portable spec: the dot's four
// 256-bit accumulators hold lanes s_{4k}..s_{4k+3}, the two vaddpd
// combines produce lanes u_l = (s_l + s_{l+4}) + (s_{l+8} + s_{l+12}),
// and the final scalar combine is ((u0+u1) + (u2+u3)) + tail. Multiplies
// and adds stay separate instructions (the target below enables AVX2 but
// not FMA, so the compiler cannot contract them), which keeps every
// rounding step identical to the scalar fallback.
// ---------------------------------------------------------------------------

namespace internal_simd {
namespace {

#if PLP_SIMD_X86

__attribute__((target("avx2"))) double DotAvx2(const double* a,
                                               const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_add_pd(
        acc0, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_loadu_pd(a + i + 4),
                                             _mm256_loadu_pd(b + i + 4)));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(_mm256_loadu_pd(a + i + 8),
                                             _mm256_loadu_pd(b + i + 8)));
    acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(_mm256_loadu_pd(a + i + 12),
                                             _mm256_loadu_pd(b + i + 12)));
  }
  // Lane l of `u` is (s_l + s_{l+4}) + (s_{l+8} + s_{l+12}).
  const __m256d u =
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, u);
  double tail = 0.0;
  for (; i < n; ++i) tail += a[i] * b[i];
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail;
}

__attribute__((target("avx2"))) void AxpyAvx2(double alpha, const double* x,
                                              double* y, size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(va, _mm256_loadu_pd(x + i))));
    _mm256_storeu_pd(
        y + i + 4,
        _mm256_add_pd(_mm256_loadu_pd(y + i + 4),
                      _mm256_mul_pd(va, _mm256_loadu_pd(x + i + 4))));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(va, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2"))) void ScaleAvx2(double alpha, double* x,
                                               size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

__attribute__((target("avx2"))) void SubAvx2(const double* a, const double* b,
                                             double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

// The float32 16-lane spec mapped onto two 8-float registers: acc0 holds
// lanes s_0..s_7, acc1 holds s_8..s_15. low(acc)+high(acc) produces
// (s_l + s_{l+4}) per register, and adding the two 128-bit halves yields
// u_l = (s_l + s_{l+4}) + (s_{l+8} + s_{l+12}) — exactly the portable
// combine, term for term.
__attribute__((target("avx2"))) inline float CombineF32Spec(__m256 acc0,
                                                            __m256 acc1,
                                                            float tail) {
  const __m128 u = _mm_add_ps(
      _mm_add_ps(_mm256_castps256_ps128(acc0), _mm256_extractf128_ps(acc0, 1)),
      _mm_add_ps(_mm256_castps256_ps128(acc1),
                 _mm256_extractf128_ps(acc1, 1)));
  alignas(16) float lanes[4];
  _mm_store_ps(lanes, u);
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail;
}

// F16C vcvtph2ps is the exact conversion HalfToFloat implements, and the
// target enables f16c + avx2 but not fma, so mul/add cannot contract:
// every rounding step matches DotF16KernelPortable.
__attribute__((target("avx2,f16c"))) float DotF16Avx2(const uint16_t* a,
                                                      const float* b,
                                                      size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 a0 = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256 a1 = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i + 8)));
    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(a0, _mm256_loadu_ps(b + i)));
    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(a1, _mm256_loadu_ps(b + i + 8)));
  }
  float tail = 0.0f;
  for (; i < n; ++i) tail += HalfToFloat(a[i]) * b[i];
  return CombineF32Spec(acc0, acc1, tail);
}

__attribute__((target("avx2"))) float DotI8Avx2(const int8_t* a,
                                                const float* b, size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // Sign-extend 8 bytes to 8 int32 lanes, then convert; both exact.
    const __m256 a0 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + i))));
    const __m256 a1 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + i + 8))));
    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(a0, _mm256_loadu_ps(b + i)));
    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(a1, _mm256_loadu_ps(b + i + 8)));
  }
  float tail = 0.0f;
  for (; i < n; ++i) tail += static_cast<float>(a[i]) * b[i];
  return CombineF32Spec(acc0, acc1, tail);
}

#endif  // PLP_SIMD_X86

}  // namespace

// Constant-initialized to the portable bodies so calls during other
// translation units' static initialization are always safe.
double (*dot)(const double*, const double*, size_t) = &DotKernelPortable<double>;
void (*axpy)(double, const double*, double*, size_t) =
    &AxpyKernelPortable<double>;
void (*scale)(double, double*, size_t) = &ScaleKernelPortable<double>;
void (*sub)(const double*, const double*, double*, size_t) =
    &SubKernelPortable<double>;
float (*dot_f16)(const uint16_t*, const float*, size_t) =
    &DotF16KernelPortable;
float (*dot_i8)(const int8_t*, const float*, size_t) = &DotI8KernelPortable;

namespace {

bool avx2_active = false;
bool f16c_active = false;

#if PLP_SIMD_X86
/// Rebinds the dispatch pointers to the AVX2 bodies when the CPU has
/// them. Runs during this translation unit's static initialization —
/// before main and before any thread exists, so the writes are unsynced
/// but unobservable mid-flight; and because both bodies are bitwise
/// identical, even an earlier initializer that already called through the
/// portable default got the same answer.
const bool simd_init = [] {
  if (__builtin_cpu_supports("avx2")) {
    dot = &DotAvx2;
    axpy = &AxpyAvx2;
    scale = &ScaleAvx2;
    sub = &SubAvx2;
    dot_i8 = &DotI8Avx2;
    avx2_active = true;
    if (__builtin_cpu_supports("f16c")) {
      dot_f16 = &DotF16Avx2;
      f16c_active = true;
    }
  }
  return true;
}();
#endif  // PLP_SIMD_X86

}  // namespace

bool Avx2Active() { return avx2_active; }

bool F16cActive() { return f16c_active; }

}  // namespace internal_simd

SigmoidLut::SigmoidLut() {
  for (size_t k = 0; k <= kNumIntervals; ++k) {
    const double x = -kBound + static_cast<double>(k) / kInvStep;
    table_[k] = 1.0 / (1.0 + std::exp(-x));
  }
}

const SigmoidLut& SigmoidLut::Get() {
  static const SigmoidLut lut;
  return lut;
}

ExpNegLut::ExpNegLut() {
  for (size_t k = 0; k <= kNumIntervals; ++k) {
    const double x = -kBound + static_cast<double>(k) / kInvStep;
    table_[k] = std::exp(x);
  }
}

const ExpNegLut& ExpNegLut::Get() {
  static const ExpNegLut lut;
  return lut;
}

double FastSigmoid(double x) { return SigmoidLut::Get()(x); }

void WarmFastMathTables() {
  SigmoidLut::Get();
  ExpNegLut::Get();
}

double SigmoidReference(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double ExpNegReference(double x) { return std::exp(x); }

double L2Norm(std::span<const double> xs) {
  return std::sqrt(SumSquaresKernel(xs.data(), xs.size()));
}

double Dot(std::span<const double> a, std::span<const double> b) {
  PLP_CHECK_EQ(a.size(), b.size());
  return DotKernel(a.data(), b.data(), a.size());
}

void NormalizeL2(std::span<double> xs) {
  const double norm = L2Norm(xs);
  if (norm == 0.0) return;
  for (double& x : xs) x /= norm;
}

double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

}  // namespace plp
