#include "common/math_util.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace plp {

double LogAdd(double a, double b) {
  if (std::isinf(a) && a < 0) return b;
  if (std::isinf(b) && b < 0) return a;
  const double m = std::max(a, b);
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

double LogSumExp(std::span<const double> xs) {
  if (xs.empty()) return -std::numeric_limits<double>::infinity();
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  if (std::isinf(m) && m < 0) return m;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - m);
  return m + std::log(sum);
}

double LogBinomial(int n, int k) {
  PLP_CHECK(k >= 0 && k <= n);
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
         std::lgamma(n - k + 1.0);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

namespace {

// Continued fraction for the incomplete beta function (Numerical Recipes'
// betacf, modified Lentz).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-14;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  PLP_CHECK_GT(a, 0.0);
  PLP_CHECK_GT(b, 0.0);
  PLP_CHECK(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return std::exp(ln_front) * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - std::exp(ln_front) * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTTwoSidedPValue(double t, double df) {
  PLP_CHECK_GT(df, 0.0);
  const double x = df / (df + t * t);
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

double L2Norm(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x * x;
  return std::sqrt(s);
}

double Dot(std::span<const double> a, std::span<const double> b) {
  PLP_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void NormalizeL2(std::span<double> xs) {
  const double norm = L2Norm(xs);
  if (norm == 0.0) return;
  for (double& x : xs) x /= norm;
}

double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

}  // namespace plp
