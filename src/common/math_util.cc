#include "common/math_util.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace plp {

double LogAdd(double a, double b) {
  if (std::isinf(a) && a < 0) return b;
  if (std::isinf(b) && b < 0) return a;
  const double m = std::max(a, b);
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

double LogSumExp(std::span<const double> xs) {
  if (xs.empty()) return -std::numeric_limits<double>::infinity();
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  if (std::isinf(m) && m < 0) return m;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - m);
  return m + std::log(sum);
}

double LogBinomial(int n, int k) {
  PLP_CHECK(k >= 0 && k <= n);
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
         std::lgamma(n - k + 1.0);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

namespace {

// Continued fraction for the incomplete beta function (Numerical Recipes'
// betacf, modified Lentz).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-14;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  PLP_CHECK_GT(a, 0.0);
  PLP_CHECK_GT(b, 0.0);
  PLP_CHECK(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return std::exp(ln_front) * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - std::exp(ln_front) * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

namespace {

// Series expansion of P(a, x), converges fast for x < a + 1 (Numerical
// Recipes' gser).
double LowerGammaSeries(double a, double x) {
  constexpr int kMaxIter = 500;
  constexpr double kEps = 3.0e-14;
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIter; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction of Q(a, x), converges fast for x >= a + 1 (Numerical
// Recipes' gcf, modified Lentz).
double UpperGammaContinuedFraction(double a, double x) {
  constexpr int kMaxIter = 500;
  constexpr double kEps = 3.0e-14;
  constexpr double kFpMin = 1.0e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double RegularizedLowerIncompleteGamma(double a, double x) {
  PLP_CHECK_GT(a, 0.0);
  PLP_CHECK(x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return LowerGammaSeries(a, x);
  return 1.0 - UpperGammaContinuedFraction(a, x);
}

double RegularizedUpperIncompleteGamma(double a, double x) {
  PLP_CHECK_GT(a, 0.0);
  PLP_CHECK(x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - LowerGammaSeries(a, x);
  return UpperGammaContinuedFraction(a, x);
}

double KolmogorovComplementaryCdf(double t) {
  PLP_CHECK(t >= 0.0);
  // The series alternates and its terms decay like exp(-2k²t²); for tiny t
  // it converges slowly and Q(t) -> 1, so short-circuit.
  if (t < 1e-3) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * t * t);
    sum += sign * term;
    if (term < 1e-16) break;
    sign = -sign;
  }
  return Clamp(2.0 * sum, 0.0, 1.0);
}

double StudentTTwoSidedPValue(double t, double df) {
  PLP_CHECK_GT(df, 0.0);
  const double x = df / (df + t * t);
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

double L2Norm(std::span<const double> xs) {
  return std::sqrt(SumSquaresKernel(xs.data(), xs.size()));
}

double Dot(std::span<const double> a, std::span<const double> b) {
  PLP_CHECK_EQ(a.size(), b.size());
  return DotKernel(a.data(), b.data(), a.size());
}

void NormalizeL2(std::span<double> xs) {
  const double norm = L2Norm(xs);
  if (norm == 0.0) return;
  for (double& x : xs) x /= norm;
}

double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

}  // namespace plp
