#ifndef PLP_COMMON_STATUS_H_
#define PLP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace plp {

/// Canonical error codes, modeled after absl::StatusCode. Keep the list
/// short: only codes the library actually produces.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeToString(StatusCode code);

/// Lightweight error-or-success value used by all fallible PLP APIs.
///
/// The library does not throw exceptions; functions that can fail return a
/// Status (or Result<T>, below) and callers are expected to check it. An OK
/// status carries no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a human-readable `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory for the OK status.
  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Convenience constructors mirroring absl's.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status DeadlineExceededError(std::string message);

/// A value-or-error discriminated union (StatusOr-lite).
///
/// A Result holds either a value of type T or a non-OK Status. Accessing the
/// value of a failed Result aborts the process (see PLP_CHECK in check.h for
/// the failure idiom).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return some_t;`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status: `return SomeError(...);`.
  /// `status` must be non-OK.
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the held status: OK when a value is present.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(payload_);
  }

  /// Value accessors. Precondition: ok().
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace plp

/// Propagates a non-OK status from an expression that yields plp::Status.
#define PLP_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::plp::Status plp_status_tmp_ = (expr);       \
    if (!plp_status_tmp_.ok()) return plp_status_tmp_; \
  } while (false)

#define PLP_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define PLP_STATUS_MACROS_CONCAT_(x, y) PLP_STATUS_MACROS_CONCAT_INNER_(x, y)

/// Assigns the value of a plp::Result<T> expression to `lhs`, or propagates
/// the error. Usage: PLP_ASSIGN_OR_RETURN(auto v, MakeV());
#define PLP_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  auto PLP_STATUS_MACROS_CONCAT_(plp_result_, __LINE__) = (rexpr);        \
  if (!PLP_STATUS_MACROS_CONCAT_(plp_result_, __LINE__).ok())             \
    return PLP_STATUS_MACROS_CONCAT_(plp_result_, __LINE__).status();     \
  lhs = std::move(PLP_STATUS_MACROS_CONCAT_(plp_result_, __LINE__)).value()

#endif  // PLP_COMMON_STATUS_H_
