#ifndef PLP_COMMON_FLAGS_H_
#define PLP_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace plp {

/// Minimal `--key=value` command-line parser for the example and benchmark
/// binaries. Not a general-purpose flags library: no registration, no
/// type-checked declarations — binaries query by name with a default.
///
/// Accepted forms: `--key=value`, `--key value`, and bare `--key` (which is
/// read as boolean true). Anything not starting with `--` is collected as a
/// positional argument.
class FlagParser {
 public:
  /// Parses argv. Returns an error on malformed input (e.g. empty key).
  static Result<FlagParser> Parse(int argc, const char* const* argv);

  /// True if the flag was present on the command line.
  bool Has(const std::string& key) const;

  /// Typed getters; return `def` when the flag is absent and abort via
  /// PLP_CHECK when the value cannot be parsed as the requested type.
  std::string GetString(const std::string& key, const std::string& def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  /// Parses a comma-separated list of doubles, e.g. `--eps=0.5,1,2`.
  std::vector<double> GetDoubleList(const std::string& key,
                                    const std::vector<double>& def) const;
  std::vector<int64_t> GetIntList(const std::string& key,
                                  const std::vector<int64_t>& def) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  FlagParser() = default;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace plp

#endif  // PLP_COMMON_FLAGS_H_
